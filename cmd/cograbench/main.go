// Command cograbench regenerates the figures and tables of the
// paper's experimental study (§9). Run it with -exp to select one
// experiment or without flags for the full suite; -scale shrinks or
// grows every event count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5..fig10, table9, ablation) or 'all'")
	scale := flag.Float64("scale", 1.0, "event-count scale factor")
	twoStep := flag.Int64("twostep-budget", bench.DefaultConfig().TwoStepBudget, "work budget for SASE/Flink before DNF")
	online := flag.Int64("online-budget", bench.DefaultConfig().OnlineBudget, "work budget for GRETA/A-Seq before DNF")
	flatten := flag.Int("flatten-cap", bench.DefaultConfig().FlattenCap, "Kleene flattening cap for A-Seq/Flink")
	verify := flag.Bool("verify", true, "cross-check baseline results against COGRA")
	flag.Parse()

	cfg := bench.Config{
		Scale:         *scale,
		TwoStepBudget: *twoStep,
		OnlineBudget:  *online,
		FlattenCap:    *flatten,
		Verify:        *verify,
	}
	if *exp == "all" {
		if err := bench.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cograbench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := bench.Registry()[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "cograbench: unknown experiment %q (have %v)\n", *exp, bench.IDs())
		os.Exit(1)
	}
	fmt.Printf("== %s ==\n", e.Title)
	if err := e.Run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cograbench:", err)
		os.Exit(1)
	}
}
