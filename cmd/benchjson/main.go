// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI can publish benchmark results as an
// artifact and the performance trajectory can be tracked across PRs:
//
//	go test ./internal/bench/ -run XXX -bench . -benchmem | benchjson -o BENCH.json
//
// Each benchmark line becomes one record with the standard ns/op,
// B/op and allocs/op fields plus any custom metrics reported with
// b.ReportMetric (e.g. events/s). Non-benchmark lines are ignored;
// context lines (goos/goarch/pkg/cpu) are captured into the header.
// Repeated measurements of one benchmark (`go test -count N`) fold
// into the best observation, making reports robust to one-sided
// scheduling noise on shared machines.
//
// With -baseline the report is additionally gated against a previous
// run: every benchmark whose name matches -gate is compared on
// events/s when both sides report it (higher is better), otherwise on
// ns/op (lower is better), and the command exits non-zero when any
// gated benchmark regresses by more than -max-regress percent — or
// has vanished from the current run. Gated benchmarks reporting
// allocation metrics (`-benchmem`) are additionally compared on
// B/op and allocs/op (lower is better) against -max-alloc-regress
// percent, so an allocation regression fails the gate even when the
// wall-clock number absorbs it. CI commits the previous PR's report
// and runs
//
//	... | benchjson -o BENCH_pr5.json -baseline BENCH_pr4.json \
//	      -gate 'BenchmarkSessionSteady|BenchmarkEngineProcess'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in — recorded per result,
	// since CI concatenates the output of several `go test -bench`
	// runs before piping it here.
	Pkg        string  `json:"pkg,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every per-op and per-second measurement by unit,
	// e.g. "ns/op", "B/op", "allocs/op", "events/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole report.
type Output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "previous report to gate against (JSON written by an earlier run)")
	gate := flag.String("gate", ".", "regexp selecting the benchmarks the gate applies to")
	maxRegress := flag.Float64("max-regress", 15, "maximum tolerated regression, percent")
	maxAlloc := flag.Float64("max-alloc-regress", 15, "maximum tolerated B/op or allocs/op regression in gated benches, percent")
	flag.Parse()
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base Output
	if err := json.Unmarshal(baseData, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -gate:", err)
		os.Exit(1)
	}
	lines, failures := compare(report, &base, gateRe, *maxRegress, *maxAlloc)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d gated benchmark(s) regressed more than %g%%\n", failures, *maxRegress)
		os.Exit(1)
	}
}

// compare gates the current report against a baseline: for each
// baseline benchmark matching the gate it computes the regression on
// events/s (higher is better) when both runs report it, else on ns/op
// (lower is better), and — when both runs report them — additionally
// on the allocation dimension (B/op and allocs/op, lower is better,
// tolerance maxAlloc). It returns one human-readable line per compared
// metric and the number of failures — regressions beyond the
// tolerances, plus gated benchmarks missing from the current run
// (deleting a gated bench must not silently pass the gate).
func compare(cur, base *Output, gate *regexp.Regexp, maxRegress, maxAlloc float64) (lines []string, failures int) {
	curByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	for _, b := range base.Results {
		if !gate.MatchString(b.Name) {
			continue
		}
		c, ok := curByName[b.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %s: in baseline but missing from the current run", b.Name))
			failures++
			continue
		}
		// regress > 0 always means "got slower"; delta is the metric's
		// own signed change, so the printed number reads naturally for
		// both higher-is-better and lower-is-better metrics.
		metric, regress, delta := "events/s", 0.0, 0.0
		bv, cv := b.Metrics["events/s"], c.Metrics["events/s"]
		if bv > 0 && cv > 0 {
			delta = (cv - bv) / bv * 100
			regress = -delta
		} else if b.NsPerOp > 0 && c.NsPerOp > 0 {
			metric = "ns/op"
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			regress = delta
		} else {
			lines = append(lines, fmt.Sprintf("skip %s: no comparable metric", b.Name))
			continue
		}
		verdict := "ok  "
		if regress > maxRegress {
			verdict = "FAIL"
			failures++
		}
		lines = append(lines, fmt.Sprintf("%s %s: %s %+.1f%% vs baseline", verdict, b.Name, metric, delta))

		// Allocation dimension: a gated bench must not get sloppier even
		// when the wall-clock gate absorbs it. Zero-alloc baselines stay
		// zero-alloc: any new allocation is an unbounded relative
		// regression and fails outright.
		for _, am := range []string{"B/op", "allocs/op"} {
			ab, haveB := b.Metrics[am]
			ac, haveC := c.Metrics[am]
			if !haveB {
				continue // speed-only baseline: nothing to gate on
			}
			if !haveC {
				// Dropping -benchmem (or ReportAllocs) must not silently
				// disengage the allocation gate, exactly like a vanished
				// gated bench.
				lines = append(lines, fmt.Sprintf("FAIL %s: %s in baseline but missing from the current run", b.Name, am))
				failures++
				continue
			}
			switch {
			case ab == 0 && ac == 0:
				continue
			case ab == 0:
				lines = append(lines, fmt.Sprintf("FAIL %s: %s 0 -> %g vs baseline", b.Name, am, ac))
				failures++
			default:
				ad := (ac - ab) / ab * 100
				averdict := "ok  "
				if ad > maxAlloc {
					averdict = "FAIL"
					failures++
				}
				lines = append(lines, fmt.Sprintf("%s %s: %s %+.1f%% vs baseline", averdict, b.Name, am, ad))
			}
		}
	}
	return lines, failures
}

func parse(sc *bufio.Scanner) (*Output, error) {
	report := &Output{}
	pkg := "" // most recent pkg: header — attributed to each result
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				r.Pkg = pkg
				report.Results = append(report.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	report.Results = mergeBest(report.Results)
	return report, nil
}

// mergeBest folds duplicate benchmark records — `go test -count N`
// emits one line per run — into the best observation per (pkg, name):
// highest events/s, or lowest ns/op when events/s is absent. Noise on
// a shared machine is one-sided (interference only slows a run down),
// so the fastest run is the closest to the hardware's true capability
// and best-of-N makes the regression gate robust to it. First-seen
// order is kept.
func mergeBest(results []Result) []Result {
	idx := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		key := r.Pkg + "\x00" + r.Name
		i, seen := idx[key]
		if !seen {
			idx[key] = len(out)
			out = append(out, r)
			continue
		}
		prev := out[i]
		better := false
		if pe, ce := prev.Metrics["events/s"], r.Metrics["events/s"]; pe > 0 || ce > 0 {
			better = ce > pe
		} else {
			better = r.NsPerOp < prev.NsPerOp
		}
		if better {
			out[i] = r
		}
	}
	return out
}

// parseBench parses one result line of the form
//
//	BenchmarkName-16  20  17402628 ns/op  470733 events/s  865 B/op  112 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The
// "-GOMAXPROCS" suffix go test appends on multi-core machines is
// stripped from the name, so reports from machines with different
// core counts (a laptop baseline vs a CI runner) compare by name.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	r.NsPerOp = r.Metrics["ns/op"]
	return r, true
}
