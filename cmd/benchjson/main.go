// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI can publish benchmark results as an
// artifact and the performance trajectory can be tracked across PRs:
//
//	go test ./internal/bench/ -run XXX -bench . -benchmem | benchjson -o BENCH.json
//
// Each benchmark line becomes one record with the standard ns/op,
// B/op and allocs/op fields plus any custom metrics reported with
// b.ReportMetric (e.g. events/s). Non-benchmark lines are ignored;
// context lines (goos/goarch/pkg/cpu) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in — recorded per result,
	// since CI concatenates the output of several `go test -bench`
	// runs before piping it here.
	Pkg        string  `json:"pkg,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every per-op and per-second measurement by unit,
	// e.g. "ns/op", "B/op", "allocs/op", "events/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole report.
type Output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Output, error) {
	report := &Output{}
	pkg := "" // most recent pkg: header — attributed to each result
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				r.Pkg = pkg
				report.Results = append(report.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return report, nil
}

// parseBench parses one result line of the form
//
//	BenchmarkName-16  20  17402628 ns/op  470733 events/s  865 B/op  112 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	r.NsPerOp = r.Metrics["ns/op"]
	return r, true
}
