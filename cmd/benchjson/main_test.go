package main

import (
	"bufio"
	"strings"
	"testing"
)

// sample concatenates two `go test -bench` outputs, the way the CI
// job pipes several packages' benches through one benchjson run.
const sample = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkResolveView 	     100	       319.6 ns/op	      70 B/op	       0 allocs/op
PASS
ok  	repro/internal/core	0.100s
goos: linux
goarch: amd64
pkg: repro/internal/bench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSessionChurn8   	      20	  18545260 ns/op	    441730 events/s	 8877020 B/op	  113589 allocs/op
BenchmarkMultiQuerySharedRuntime8 	      20	  18280803 ns/op	    448120 events/s	 8657383 B/op	  112621 allocs/op
PASS
ok  	repro/internal/bench	1.186s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" {
		t.Errorf("header = %+v", report)
	}
	if len(report.Results) != 3 {
		t.Fatalf("results = %d", len(report.Results))
	}
	// Each result carries the pkg of the run it came from.
	if report.Results[0].Pkg != "repro/internal/core" {
		t.Errorf("result 0 pkg = %q", report.Results[0].Pkg)
	}
	r := report.Results[1]
	if r.Pkg != "repro/internal/bench" {
		t.Errorf("result 1 pkg = %q", r.Pkg)
	}
	if r.Name != "BenchmarkSessionChurn8" || r.Iterations != 20 {
		t.Errorf("result 1 = %+v", r)
	}
	if r.NsPerOp != 18545260 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Metrics["events/s"] != 441730 || r.Metrics["allocs/op"] != 113589 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n"))); err == nil {
		t.Error("empty bench output accepted")
	}
}

func TestParseBenchMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX twenty 5 ns/op",
		"BenchmarkX 20 abc ns/op",
		"BenchmarkX 20 5",
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("parseBench(%q) accepted", line)
		}
	}
}
