package main

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
)

// sample concatenates two `go test -bench` outputs, the way the CI
// job pipes several packages' benches through one benchjson run.
const sample = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkResolveView 	     100	       319.6 ns/op	      70 B/op	       0 allocs/op
PASS
ok  	repro/internal/core	0.100s
goos: linux
goarch: amd64
pkg: repro/internal/bench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSessionChurn8   	      20	  18545260 ns/op	    441730 events/s	 8877020 B/op	  113589 allocs/op
BenchmarkMultiQuerySharedRuntime8 	      20	  18280803 ns/op	    448120 events/s	 8657383 B/op	  112621 allocs/op
PASS
ok  	repro/internal/bench	1.186s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" {
		t.Errorf("header = %+v", report)
	}
	if len(report.Results) != 3 {
		t.Fatalf("results = %d", len(report.Results))
	}
	// Each result carries the pkg of the run it came from.
	if report.Results[0].Pkg != "repro/internal/core" {
		t.Errorf("result 0 pkg = %q", report.Results[0].Pkg)
	}
	r := report.Results[1]
	if r.Pkg != "repro/internal/bench" {
		t.Errorf("result 1 pkg = %q", r.Pkg)
	}
	if r.Name != "BenchmarkSessionChurn8" || r.Iterations != 20 {
		t.Errorf("result 1 = %+v", r)
	}
	if r.NsPerOp != 18545260 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Metrics["events/s"] != 441730 || r.Metrics["allocs/op"] != 113589 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n"))); err == nil {
		t.Error("empty bench output accepted")
	}
}

// TestMergeBestKeepsFastestRun: -count N duplicates collapse into the
// best observation (highest events/s, else lowest ns/op).
func TestMergeBestKeepsFastestRun(t *testing.T) {
	merged := mergeBest([]Result{
		res("BenchmarkA", 1000, 100),
		res("BenchmarkB", 500, 0),
		res("BenchmarkA", 900, 120), // faster duplicate
		res("BenchmarkB", 700, 0),   // slower duplicate
	})
	if len(merged) != 2 {
		t.Fatalf("merged to %d results, want 2", len(merged))
	}
	if merged[0].Name != "BenchmarkA" || merged[0].Metrics["events/s"] != 120 {
		t.Errorf("BenchmarkA merged to %+v, want the 120 events/s run", merged[0])
	}
	if merged[1].Name != "BenchmarkB" || merged[1].NsPerOp != 500 {
		t.Errorf("BenchmarkB merged to %+v, want the 500 ns/op run", merged[1])
	}
}

// TestParseBenchStripsProcsSuffix: the -GOMAXPROCS suffix varies by
// machine and must not defeat the baseline comparison.
func TestParseBenchStripsProcsSuffix(t *testing.T) {
	r, ok := parseBench("BenchmarkSessionSteady8-16 20 17402628 ns/op 470733 events/s")
	if !ok || r.Name != "BenchmarkSessionSteady8" {
		t.Errorf("parsed name = %q, ok=%v", r.Name, ok)
	}
	// Sub-benchmark names keep everything but the trailing procs count.
	r, ok = parseBench("BenchmarkFig5Contiguous/COGRA-4 10 100 ns/op")
	if !ok || r.Name != "BenchmarkFig5Contiguous/COGRA" {
		t.Errorf("parsed name = %q, ok=%v", r.Name, ok)
	}
	// A serial run has no suffix; the name passes through.
	r, ok = parseBench("BenchmarkResolveView 100 319.6 ns/op")
	if !ok || r.Name != "BenchmarkResolveView" {
		t.Errorf("parsed name = %q, ok=%v", r.Name, ok)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX twenty 5 ns/op",
		"BenchmarkX 20 abc ns/op",
		"BenchmarkX 20 5",
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("parseBench(%q) accepted", line)
		}
	}
}

// mkOutput builds a report for the gate tests.
func mkOutput(results ...Result) *Output { return &Output{Results: results} }

func res(name string, ns float64, evs float64) Result {
	m := map[string]float64{"ns/op": ns}
	if evs > 0 {
		m["events/s"] = evs
	}
	return Result{Name: name, Iterations: 1, NsPerOp: ns, Metrics: m}
}

// resAlloc is res with an allocation dimension (-benchmem output).
func resAlloc(name string, ns, evs, bytes, allocs float64) Result {
	r := res(name, ns, evs)
	r.Metrics["B/op"] = bytes
	r.Metrics["allocs/op"] = allocs
	return r
}

func TestCompareGate(t *testing.T) {
	gate := regexp.MustCompile(`BenchmarkSessionSteady|BenchmarkEngineProcess`)
	base := mkOutput(
		res("BenchmarkSessionSteady8", 1e7, 100000),
		res("BenchmarkEngineProcessTypeGrained", 1000, 0),
		res("BenchmarkUnrelated", 1000, 0),
	)

	t.Run("within-tolerance", func(t *testing.T) {
		cur := mkOutput(
			res("BenchmarkSessionSteady8", 1.1e7, 90000),      // -10% events/s
			res("BenchmarkEngineProcessTypeGrained", 1100, 0), // +10% ns/op
			res("BenchmarkUnrelated", 99999, 0),               // ungated: ignored
		)
		lines, failures := compare(cur, base, gate, 15, 15)
		if failures != 0 {
			t.Fatalf("failures = %d, lines = %v", failures, lines)
		}
		if len(lines) != 2 {
			t.Fatalf("compared %d benches, want 2 (gated only): %v", len(lines), lines)
		}
	})

	t.Run("events-per-sec-regression", func(t *testing.T) {
		cur := mkOutput(
			res("BenchmarkSessionSteady8", 1e7, 80000), // -20% events/s
			res("BenchmarkEngineProcessTypeGrained", 1000, 0),
		)
		if _, failures := compare(cur, base, gate, 15, 15); failures != 1 {
			t.Fatalf("failures = %d, want 1", failures)
		}
	})

	t.Run("nsop-regression", func(t *testing.T) {
		cur := mkOutput(
			res("BenchmarkSessionSteady8", 1e7, 100000),
			res("BenchmarkEngineProcessTypeGrained", 1300, 0), // +30% ns/op
		)
		if _, failures := compare(cur, base, gate, 15, 15); failures != 1 {
			t.Fatalf("failures = %d, want 1", failures)
		}
	})

	t.Run("improvement-passes", func(t *testing.T) {
		cur := mkOutput(
			res("BenchmarkSessionSteady8", 5e6, 200000),
			res("BenchmarkEngineProcessTypeGrained", 500, 0),
		)
		if lines, failures := compare(cur, base, gate, 15, 15); failures != 0 {
			t.Fatalf("improvement flagged: %v", lines)
		}
	})

	t.Run("missing-gated-bench-fails", func(t *testing.T) {
		cur := mkOutput(res("BenchmarkSessionSteady8", 1e7, 100000))
		if _, failures := compare(cur, base, gate, 15, 15); failures != 1 {
			t.Fatalf("failures = %d, want 1 (missing gated bench)", failures)
		}
	})
}

// TestCompareAllocGate: gated benches with -benchmem output are also
// compared on the allocation dimension — a B/op or allocs/op blow-up
// fails the gate even when events/s holds, a zero-alloc baseline stays
// zero-alloc, and baselines without the dimension gate only on speed.
func TestCompareAllocGate(t *testing.T) {
	gate := regexp.MustCompile(`BenchmarkSessionSteady|BenchmarkEngineProcess`)
	base := mkOutput(
		resAlloc("BenchmarkSessionSteady8", 1e7, 100000, 8000, 1000),
		resAlloc("BenchmarkEngineProcessTypeGrained", 1000, 0, 64, 0),
	)

	t.Run("within-tolerance", func(t *testing.T) {
		cur := mkOutput(
			resAlloc("BenchmarkSessionSteady8", 1e7, 100000, 8800, 1100), // +10% both
			resAlloc("BenchmarkEngineProcessTypeGrained", 1000, 0, 60, 0),
		)
		if lines, failures := compare(cur, base, gate, 15, 15); failures != 0 {
			t.Fatalf("failures = %d, lines = %v", failures, lines)
		}
	})

	t.Run("allocs-regression-fails-despite-speed", func(t *testing.T) {
		cur := mkOutput(
			resAlloc("BenchmarkSessionSteady8", 1e7, 110000, 8000, 1300), // +30% allocs, faster
			resAlloc("BenchmarkEngineProcessTypeGrained", 1000, 0, 64, 0),
		)
		if _, failures := compare(cur, base, gate, 15, 15); failures != 1 {
			t.Fatalf("failures = %d, want 1 (allocs/op regression)", failures)
		}
	})

	t.Run("bytes-regression-fails", func(t *testing.T) {
		cur := mkOutput(
			resAlloc("BenchmarkSessionSteady8", 1e7, 100000, 12000, 1000), // +50% B/op
			resAlloc("BenchmarkEngineProcessTypeGrained", 1000, 0, 64, 0),
		)
		if _, failures := compare(cur, base, gate, 15, 15); failures != 1 {
			t.Fatalf("failures = %d, want 1 (B/op regression)", failures)
		}
	})

	t.Run("zero-alloc-baseline-must-stay-zero", func(t *testing.T) {
		cur := mkOutput(
			resAlloc("BenchmarkSessionSteady8", 1e7, 100000, 8000, 1000),
			resAlloc("BenchmarkEngineProcessTypeGrained", 1000, 0, 64, 3), // 0 -> 3 allocs
		)
		if _, failures := compare(cur, base, gate, 15, 15); failures != 1 {
			t.Fatalf("failures = %d, want 1 (zero-alloc baseline broken)", failures)
		}
	})

	t.Run("dropping-benchmem-fails", func(t *testing.T) {
		cur := mkOutput(
			res("BenchmarkSessionSteady8", 1e7, 100000), // alloc metrics vanished
			resAlloc("BenchmarkEngineProcessTypeGrained", 1000, 0, 64, 0),
		)
		if _, failures := compare(cur, base, gate, 15, 15); failures != 2 {
			t.Fatalf("failures = %d, want 2 (B/op and allocs/op missing from the current run)", failures)
		}
	})

	t.Run("baseline-without-allocs-gates-speed-only", func(t *testing.T) {
		speedBase := mkOutput(res("BenchmarkSessionSteady8", 1e7, 100000))
		cur := mkOutput(resAlloc("BenchmarkSessionSteady8", 1e7, 100000, 1<<20, 1e6))
		if lines, failures := compare(cur, speedBase, gate, 15, 15); failures != 0 {
			t.Fatalf("alloc-less baseline produced failures: %v", lines)
		}
	})
}
