package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sessionflags"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// inline/fromFile build ordered query sources the way flag parsing
// would.
func inline(texts ...string) []querySource {
	var out []querySource
	for _, s := range texts {
		out = append(out, querySource{value: s})
	}
	return out
}

func fromFile(paths ...string) []querySource {
	var out []querySource
	for _, p := range paths {
		out = append(out, querySource{fromFile: true, value: p})
	}
	return out
}

const testCSV = `time,type,k,x:num
1,A,g,1
2,A,g,2
3,B,g,3
`

func TestRunWithQueryFileAndInput(t *testing.T) {
	qf := writeFile(t, "q.etaq", `RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`)
	in := writeFile(t, "in.csv", testCSV)
	if err := run(runCfg{sources: fromFile(qf), input: in, session: sessionflags.Flags{Workers: 1}, memory: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	in := writeFile(t, "in.csv", testCSV)
	err := run(runCfg{
		sources: inline(`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`),
		input:   in, session: sessionflags.Flags{Workers: 4}, memory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleQueries(t *testing.T) {
	in := writeFile(t, "in.csv", testCSV)
	queries := inline(
		`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`,
		`RETURN COUNT(*) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`,
	)
	if err := run(runCfg{sources: queries, input: in, session: sessionflags.Flags{Workers: 1}, memory: true}); err != nil {
		t.Fatalf("shared runtime: %v", err)
	}
	if err := run(runCfg{sources: queries, input: in, session: sessionflags.Flags{Workers: 3}, memory: true}); err != nil {
		t.Fatalf("multi executor: %v", err)
	}
	if err := run(runCfg{sources: queries, session: sessionflags.Flags{Workers: 1}, explain: true}); err != nil {
		t.Fatalf("multi explain: %v", err)
	}
}

// TestRunWithSlack: a disordered feed is accepted with -slack, both
// when stragglers are dropped (default) and when within bounds.
func TestRunWithSlack(t *testing.T) {
	disordered := `time,type,k,x:num
2,A,g,2
1,A,g,1
3,B,g,3
`
	in := writeFile(t, "in.csv", disordered)
	q := inline(`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`)
	if err := run(runCfg{sources: q, input: in, session: sessionflags.Flags{Workers: 1, Slack: 5}, stats: true}); err != nil {
		t.Fatalf("slack 5: %v", err)
	}
	// Slack 0 drops the straggler but the run succeeds (DropLate).
	if err := run(runCfg{sources: q, input: in, session: sessionflags.Flags{Workers: 1, Slack: 0}, stats: true}); err != nil {
		t.Fatalf("slack 0 drop: %v", err)
	}
	// Reject policy fails the run on the straggler.
	if err := run(runCfg{sources: q, input: in, session: sessionflags.Flags{Workers: 1, Slack: 0, RejectLate: true}}); err == nil {
		t.Fatal("slack 0 -late-reject accepted a straggler")
	}
	// Without slack the disorder fails the stream contract.
	if err := run(runCfg{sources: q, input: in, session: sessionflags.Flags{Workers: 1, Slack: -1}}); err == nil {
		t.Fatal("disordered input accepted without -slack")
	}
}

// TestRunFollow: control lines interleaved with CSV rows hot-add and
// hot-remove queries while the stream runs, for both session modes.
func TestRunFollow(t *testing.T) {
	feed := `time,type,k,x:num
1,A,g,1
+query RETURN COUNT(*) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10
2,A,g,2
3,B,g,3
-query 1
+query garbage that does not parse
-query 99
12,A,g,4
13,B,g,5
`
	in := writeFile(t, "feed.txt", feed)
	base := inline(`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`)
	for _, workers := range []int{1, 3} {
		if err := run(runCfg{sources: base, input: in, session: sessionflags.Flags{Workers: workers}, follow: true, stats: true}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	// A follow session may start with an empty fleet.
	if err := run(runCfg{input: in, session: sessionflags.Flags{Workers: 1}, follow: true}); err != nil {
		t.Fatalf("empty fleet: %v", err)
	}
}

// TestSourceFlagPreservesOrder: interleaved -file and -query flags
// keep command-line order, so [qN] labels match what the user wrote.
func TestSourceFlagPreservesOrder(t *testing.T) {
	var sources []querySource
	q := sourceFlag{&sources, false}
	f := sourceFlag{&sources, true}
	f.Set("a.etaq")
	q.Set("RETURN ...")
	f.Set("b.etaq")
	want := []querySource{
		{fromFile: true, value: "a.etaq"},
		{fromFile: false, value: "RETURN ..."},
		{fromFile: true, value: "b.etaq"},
	}
	if len(sources) != len(want) {
		t.Fatalf("sources = %v", sources)
	}
	for i := range want {
		if sources[i] != want[i] {
			t.Errorf("source %d = %+v, want %+v", i, sources[i], want[i])
		}
	}
}

func TestRunExplain(t *testing.T) {
	if err := run(runCfg{sources: inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), session: sessionflags.Flags{Workers: 1}, explain: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(runCfg{session: sessionflags.Flags{Workers: 1}}); err == nil {
		t.Error("missing query accepted")
	}
	if err := run(runCfg{sources: inline("garbage query"), session: sessionflags.Flags{Workers: 1}}); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(runCfg{sources: inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), input: "/does/not/exist.csv", session: sessionflags.Flags{Workers: 1}}); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(runCfg{sources: fromFile("/does/not/exist.q"), session: sessionflags.Flags{Workers: 1}}); err == nil {
		t.Error("missing query file accepted")
	}
	bad := writeFile(t, "bad.csv", "not,a,valid,header\n")
	if err := run(runCfg{sources: inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), input: bad, session: sessionflags.Flags{Workers: 1}}); err == nil {
		t.Error("bad CSV accepted")
	}
	if err := run(runCfg{sources: inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), input: bad, session: sessionflags.Flags{Workers: 1}, follow: true}); err == nil {
		t.Error("bad header accepted in follow mode")
	}
}
