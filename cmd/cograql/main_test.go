package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testCSV = `time,type,k,x:num
1,A,g,1
2,A,g,2
3,B,g,3
`

func TestRunWithQueryFileAndInput(t *testing.T) {
	qf := writeFile(t, "q.etaq", `RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`)
	in := writeFile(t, "in.csv", testCSV)
	if err := run("", qf, in, 1, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	in := writeFile(t, "in.csv", testCSV)
	err := run(`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`,
		"", in, 4, false, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunExplain(t *testing.T) {
	if err := run(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`, "", "", 1, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", 1, false, false); err == nil {
		t.Error("missing query accepted")
	}
	if err := run("garbage query", "", "", 1, false, false); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`, "", "/does/not/exist.csv", 1, false, false); err == nil {
		t.Error("missing input accepted")
	}
	if err := run("", "/does/not/exist.q", "", 1, false, false); err == nil {
		t.Error("missing query file accepted")
	}
	bad := writeFile(t, "bad.csv", "not,a,valid,header\n")
	if err := run(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`, "", bad, 1, false, false); err == nil {
		t.Error("bad CSV accepted")
	}
}
