package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// inline/fromFile build ordered query sources the way flag parsing
// would.
func inline(texts ...string) []querySource {
	var out []querySource
	for _, s := range texts {
		out = append(out, querySource{value: s})
	}
	return out
}

func fromFile(paths ...string) []querySource {
	var out []querySource
	for _, p := range paths {
		out = append(out, querySource{fromFile: true, value: p})
	}
	return out
}

const testCSV = `time,type,k,x:num
1,A,g,1
2,A,g,2
3,B,g,3
`

func TestRunWithQueryFileAndInput(t *testing.T) {
	qf := writeFile(t, "q.etaq", `RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`)
	in := writeFile(t, "in.csv", testCSV)
	if err := run(fromFile(qf), in, 1, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	in := writeFile(t, "in.csv", testCSV)
	err := run(inline(`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`),
		in, 4, false, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleQueries(t *testing.T) {
	in := writeFile(t, "in.csv", testCSV)
	queries := inline(
		`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`,
		`RETURN COUNT(*) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`,
	)
	if err := run(queries, in, 1, false, true); err != nil {
		t.Fatalf("shared runtime: %v", err)
	}
	if err := run(queries, in, 3, false, true); err != nil {
		t.Fatalf("multi executor: %v", err)
	}
	if err := run(queries, "", 1, true, false); err != nil {
		t.Fatalf("multi explain: %v", err)
	}
}

// TestSourceFlagPreservesOrder: interleaved -file and -query flags
// keep command-line order, so [qN] labels match what the user wrote.
func TestSourceFlagPreservesOrder(t *testing.T) {
	var sources []querySource
	q := sourceFlag{&sources, false}
	f := sourceFlag{&sources, true}
	f.Set("a.etaq")
	q.Set("RETURN ...")
	f.Set("b.etaq")
	want := []querySource{
		{fromFile: true, value: "a.etaq"},
		{fromFile: false, value: "RETURN ..."},
		{fromFile: true, value: "b.etaq"},
	}
	if len(sources) != len(want) {
		t.Fatalf("sources = %v", sources)
	}
	for i := range want {
		if sources[i] != want[i] {
			t.Errorf("source %d = %+v, want %+v", i, sources[i], want[i])
		}
	}
}

func TestRunExplain(t *testing.T) {
	if err := run(inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), "", 1, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, "", 1, false, false); err == nil {
		t.Error("missing query accepted")
	}
	if err := run(inline("garbage query"), "", 1, false, false); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), "/does/not/exist.csv", 1, false, false); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(fromFile("/does/not/exist.q"), "", 1, false, false); err == nil {
		t.Error("missing query file accepted")
	}
	bad := writeFile(t, "bad.csv", "not,a,valid,header\n")
	if err := run(inline(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), bad, 1, false, false); err == nil {
		t.Error("bad CSV accepted")
	}
}
