// Command cograql evaluates one or more event trend aggregation
// queries against a CSV event stream:
//
//	cograql -query q1.etaq -input stream.csv
//	cogragen -dataset stock | cograql -query 'RETURN company, COUNT(*)
//	    PATTERN SEQ(Stock A+, Stock B+) WHERE [company]
//	    GROUP-BY company WITHIN 100 SLIDE 100'
//
// Queries are given inline with -query or in files with -file; both
// flags repeat, and all queries execute together in one pass over the
// stream (one Session): each event is resolved once and dispatched
// only to the queries matching its type. The stream is read from
// -input or stdin. Results print one line per window and group,
// prefixed with the query's index when more than one query runs.
// -workers > 1 enables partition-parallel execution (all queries, one
// worker pool). -slack k accepts bounded disorder: events are
// re-sorted within k time units and stragglers beyond that are
// dropped and counted (or fail the run with -late-reject).
//
// -follow tails a live feed line by line and accepts control lines
// interleaved with the CSV rows, so the query fleet can change while
// the stream runs:
//
//	+query <text>   subscribe a new query mid-stream (its results
//	                start from its first fully covered window)
//	-query <id>     unsubscribe query <id> (as printed at subscribe
//	                time), flushing its open windows
//
// Long-lived sessions can bound their state: -max-reorder-depth caps
// the slack buffer (shedding its oldest events at the cap, or failing
// with backpressure under -reorder-reject), and -evict reclaims
// binding-intern memory once the windows referencing it have closed.
// -shared lets queries that differ only in RETURN share one trend
// aggregation pass, with runtime share/unshare decisions per window
// epoch; results are byte-identical to per-query execution.
//
// Crash recovery: -checkpoint <path> -checkpoint-every <n> (with
// -follow) snapshots the whole session — query fleet, window state,
// stream position — to <path> after every n accepted events. The file
// is written atomically (temp file + fsync + rename), so a crash
// mid-checkpoint never leaves a truncated snapshot; each completed
// checkpoint is logged to stderr with its stream position. -restore
// <path> resumes from a checkpoint instead of starting empty: feed it
// the stream suffix after the checkpoint position and the results
// continue byte-identically to an undisturbed run. Restored queries
// have no sinks (a snapshot cannot carry code), so their results are
// drained and printed at each checkpoint and at end of run.
//
// -stats prints an end-of-run summary: events accepted, events
// skipped by the partition router, late events dropped by the slack
// buffer, events shed at the depth cap, the buffer's peak depth and
// the catalog compaction count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	cogra "repro"
	"repro/internal/sessionflags"
)

// querySource is one query given on the command line, in flag order —
// interleaved -query and -file flags keep their relative positions, so
// [qN] result prefixes match the order the user wrote.
type querySource struct {
	fromFile bool
	value    string
}

// sourceFlag appends to a shared ordered list of query sources.
type sourceFlag struct {
	srcs     *[]querySource
	fromFile bool
}

func (f sourceFlag) String() string { return "" }

func (f sourceFlag) Set(v string) error {
	*f.srcs = append(*f.srcs, querySource{fromFile: f.fromFile, value: v})
	return nil
}

// runCfg collects the command line; run is testable over it. The
// session-shaping flags (-workers, -slack, ...) live in the shared
// sessionflags struct, the same set cograd serves.
type runCfg struct {
	sources         []querySource
	input           string
	session         sessionflags.Flags
	follow          bool
	explain         bool
	memory          bool
	stats           bool
	checkpoint      string
	checkpointEvery int
	restore         string
}

func main() {
	var cfg runCfg
	flag.Var(sourceFlag{&cfg.sources, false}, "query", "query text (SASE-style syntax); repeatable")
	flag.Var(sourceFlag{&cfg.sources, true}, "file", "file holding one query text; repeatable")
	flag.StringVar(&cfg.input, "input", "", "CSV event stream (default stdin)")
	sf := sessionflags.Register(flag.CommandLine)
	flag.BoolVar(&cfg.follow, "follow", false, "tail the feed line by line; '+query <text>' / '-query <id>' control lines change the fleet mid-stream")
	flag.BoolVar(&cfg.explain, "explain", false, "print the compiled plans and exit")
	flag.BoolVar(&cfg.memory, "memory", false, "report logical peak memory after the run")
	flag.BoolVar(&cfg.stats, "stats", false, "report an end-of-run stream summary")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "write session checkpoints to this file, atomically (requires -checkpoint-every and -follow)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 0, "checkpoint after every N accepted events (requires -checkpoint)")
	flag.StringVar(&cfg.restore, "restore", "", "resume from this checkpoint file instead of starting empty")
	flag.Parse()
	cfg.session = *sf

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cograql:", err)
		os.Exit(1)
	}
}

func run(cfg runCfg) error {
	texts := make([]string, 0, len(cfg.sources))
	for _, src := range cfg.sources {
		if !src.fromFile {
			texts = append(texts, src.value)
			continue
		}
		data, err := os.ReadFile(src.value)
		if err != nil {
			return err
		}
		texts = append(texts, string(data))
	}
	if len(texts) == 0 && !cfg.follow && cfg.restore == "" {
		return fmt.Errorf("provide -query or -file (repeatable)")
	}
	if (cfg.checkpoint != "") != (cfg.checkpointEvery > 0) {
		return fmt.Errorf("-checkpoint and -checkpoint-every go together (a path and a cadence)")
	}
	if cfg.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", cfg.checkpointEvery)
	}
	if cfg.checkpoint != "" && !cfg.follow {
		return fmt.Errorf("-checkpoint requires -follow (a batch run has no mid-stream positions to cut at)")
	}

	queries := make([]*cogra.Query, len(texts))
	for i, text := range texts {
		q, err := cogra.Parse(text)
		if err != nil {
			return fmt.Errorf("query %d: %w", i+1, err)
		}
		queries[i] = q
	}
	if cfg.explain {
		// Compile against one shared catalog, the way a session would.
		cat := cogra.NewCatalog()
		for i, q := range queries {
			plan, err := cogra.CompileIn(cat, q)
			if err != nil {
				return fmt.Errorf("query %d: %w", i+1, err)
			}
			if len(queries) > 1 {
				fmt.Printf("[q%d] %v\n", i+1, plan)
			} else {
				fmt.Println(plan)
			}
		}
		return nil
	}

	in := os.Stdin
	if cfg.input != "" {
		f, err := os.Open(cfg.input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	// The shared helper validates the cross-flag rules and builds the
	// session options; when restoring, an explicitly given -workers or
	// -groups overrides the checkpoint's topology (allowed only before
	// the stream's first event froze partition routing), while an
	// omitted flag lets the checkpoint decide.
	var opts []cogra.SessionOption
	var err error
	if cfg.restore != "" {
		opts, err = cfg.session.RestoreOptions()
	} else {
		opts, err = cfg.session.Options()
	}
	if err != nil {
		return err
	}

	var sess *cogra.Session
	var restored []*cogra.Subscription
	nextID := 0
	if cfg.restore != "" {
		// A crash mid-checkpoint leaves a stale temp file next to the
		// durable one; it is truncated by construction and must never be
		// restored from.
		if strings.HasSuffix(cfg.restore, checkpointTempSuffix) {
			return fmt.Errorf("refusing to restore from temp checkpoint %s: a crash mid-checkpoint leaves it truncated; restore from the durable path", cfg.restore)
		}
		f, err := os.Open(cfg.restore)
		if err != nil {
			return err
		}
		sess, err = cogra.Restore(f, opts...)
		f.Close()
		if err != nil {
			return fmt.Errorf("restore %s: %w", cfg.restore, err)
		}
		for _, sub := range sess.Subscriptions() {
			if sub.Active() {
				restored = append(restored, sub)
			}
		}
		// Hot-added queries number after the checkpoint's fleet, active
		// or not, matching the session's own id assignment.
		nextID = len(sess.Subscriptions())
		fmt.Fprintf(os.Stderr, "cograql: restored %d quer(ies) from %s\n", len(restored), cfg.restore)
	} else {
		sess = cogra.NewSession(opts...)
	}

	// Result lines carry a [qN] prefix whenever the fleet can exceed
	// one query, so single-query batch output stays byte-compatible
	// with earlier versions; -follow and -restore always prefix
	// (hot-adds and checkpointed fleets can hold any number).
	printResult := func(qi int, r cogra.Result) {
		if len(queries) > 1 || cfg.follow || cfg.restore != "" {
			fmt.Printf("[q%d] %v\n", qi+1, r)
		} else {
			fmt.Println(r)
		}
	}
	// Restored subscriptions carry no sinks (a snapshot cannot carry
	// code), so their results buffer and are drained here: right before
	// each checkpoint — printed results stay out of the snapshot's
	// pending buffer, so a restore never replays them — and at end of
	// run.
	drainRestored := func() {
		for _, sub := range restored {
			for _, r := range sub.Drain() {
				printResult(sub.ID(), r)
			}
		}
	}
	subscribe := func(q *cogra.Query) (*cogra.Subscription, error) {
		qi := nextID
		sub, err := sess.Subscribe(q,
			cogra.WithSink(cogra.SinkFunc(func(r cogra.Result) { printResult(qi, r) })))
		if err != nil {
			return nil, err
		}
		nextID++
		return sub, nil
	}

	subs := make(map[int]*cogra.Subscription)
	for _, sub := range restored {
		subs[sub.ID()] = sub
	}
	for i, q := range queries {
		sub, err := subscribe(q)
		if err != nil {
			return fmt.Errorf("query %d: %w", i+1, err)
		}
		subs[sub.ID()] = sub
	}
	if cfg.session.Workers > 1 && len(queries) > 0 {
		if st, err := sess.Stats(); err == nil && len(st.RoutingAttrs) == 0 {
			fmt.Fprintf(os.Stderr, "cograql: no shared partition attribute to route on; all events run on 1 of %d workers\n", cfg.session.Workers)
		}
	}

	var pushed int64
	onPush := func() error {
		pushed++
		if cfg.checkpointEvery <= 0 || pushed%int64(cfg.checkpointEvery) != 0 {
			return nil
		}
		drainRestored()
		if err := writeCheckpoint(sess, cfg.checkpoint); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "cograql: checkpoint %s @ %d events\n", cfg.checkpoint, pushed)
		return nil
	}

	if cfg.follow {
		if err := follow(in, sess, subscribe, subs, onPush); err != nil {
			return err
		}
	} else {
		events, err := cogra.ReadCSV(in)
		if err != nil {
			return err
		}
		if err := sess.PushBatch(events); err != nil {
			return err
		}
	}
	if err := sess.Close(); err != nil {
		return err
	}
	drainRestored() // Close flushed the open windows into the buffers
	if cfg.memory || cfg.stats {
		st, err := sess.Stats()
		if err != nil {
			return err
		}
		if cfg.memory {
			fmt.Fprintf(os.Stderr, "peak memory: %d bytes across %d worker(s); binding intern tables: %d bytes\n",
				st.PeakBytes, st.Workers, st.BindingInternBytes)
		}
		if cfg.stats {
			// st.Queries counts ACTIVE subscriptions — zero after Close —
			// so the summary reports how many ever subscribed.
			fmt.Fprintf(os.Stderr, "stream: %d events accepted, %d unroutable, %d dropped late, %d shed at the depth cap (reorder peak depth %d); %d quer(ies) subscribed on %d worker(s) and %d executor group(s); %d catalog compaction(s)\n",
				st.Events, st.Skipped, st.LateDropped, st.ReorderShed, st.ReorderPeakDepth, nextID, st.Workers, st.ExecutorGroups, st.CatalogCompactions)
		}
	}
	return nil
}

// follow tails the feed line by line. The first non-control line must
// be the CSV header; control lines ('+query <text>', '-query <id>')
// change the query fleet at exactly their position in the stream.
// Control errors (a bad query text, an unknown id) are reported to
// stderr and the stream continues — a typo must not kill a live tail.
func follow(in io.Reader, sess *cogra.Session,
	subscribe func(*cogra.Query) (*cogra.Subscription, error), subs map[int]*cogra.Subscription,
	onPush func() error) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var dec *cogra.CSVDecoder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "+query "):
			q, err := cogra.Parse(strings.TrimPrefix(line, "+query "))
			if err != nil {
				fmt.Fprintln(os.Stderr, "cograql: +query:", err)
				continue
			}
			sub, err := subscribe(q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cograql: +query:", err)
				continue
			}
			subs[sub.ID()] = sub
			fmt.Fprintf(os.Stderr, "cograql: subscribed [q%d]\n", sub.ID()+1)
		case strings.HasPrefix(line, "-query "):
			id, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "-query ")))
			if err != nil {
				fmt.Fprintln(os.Stderr, "cograql: -query:", err)
				continue
			}
			sub, ok := subs[id-1]
			if !ok || !sub.Active() {
				fmt.Fprintf(os.Stderr, "cograql: -query: no active query %d\n", id)
				continue
			}
			sub.Unsubscribe() // results reach the query's sink
			if sub.Active() {
				// Still attached: the unsubscribe itself was rejected
				// (Err records why); keep the entry for a retry.
				fmt.Fprintln(os.Stderr, "cograql: -query:", sub.Err())
				continue
			}
			delete(subs, id-1)
			fmt.Fprintf(os.Stderr, "cograql: unsubscribed [q%d]\n", id)
		case dec == nil:
			if strings.TrimSpace(line) == "" {
				continue
			}
			var err error
			if dec, err = cogra.NewCSVDecoder(line); err != nil {
				return err
			}
		default:
			e, err := dec.Decode(line)
			if err != nil {
				return err
			}
			if e == nil {
				continue
			}
			if err := sess.Push(e); err != nil {
				return err
			}
			if err := onPush(); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

// checkpointTempSuffix marks an in-progress checkpoint write; restore
// refuses such files.
const checkpointTempSuffix = ".tmp"

// writeCheckpoint snapshots the session to path atomically: the bytes
// go to path+".tmp", are fsynced, then renamed over path — a crash
// mid-checkpoint leaves the previous durable checkpoint intact (plus,
// at worst, a stale temp file) and never a truncated snapshot at path.
func writeCheckpoint(sess *cogra.Session, path string) error {
	tmp := path + checkpointTempSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = sess.Snapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
