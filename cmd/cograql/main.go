// Command cograql evaluates one or more event trend aggregation
// queries against a CSV event stream:
//
//	cograql -query q1.etaq -input stream.csv
//	cogragen -dataset stock | cograql -query 'RETURN company, COUNT(*)
//	    PATTERN SEQ(Stock A+, Stock B+) WHERE [company]
//	    GROUP-BY company WITHIN 100 SLIDE 100'
//
// Queries are given inline with -query or in files with -file; both
// flags repeat, and all queries execute together in one pass over the
// stream (the shared multi-query runtime): each event is resolved
// once and dispatched only to the queries matching its type. The
// stream is read from -input or stdin. Results print one line per
// window and group, prefixed with the query's index when more than
// one query runs. -workers > 1 enables partition-parallel execution
// (all queries, one worker pool).
package main

import (
	"flag"
	"fmt"
	"os"

	cogra "repro"
)

// querySource is one query given on the command line, in flag order —
// interleaved -query and -file flags keep their relative positions, so
// [qN] result prefixes match the order the user wrote.
type querySource struct {
	fromFile bool
	value    string
}

// sourceFlag appends to a shared ordered list of query sources.
type sourceFlag struct {
	srcs     *[]querySource
	fromFile bool
}

func (f sourceFlag) String() string { return "" }

func (f sourceFlag) Set(v string) error {
	*f.srcs = append(*f.srcs, querySource{fromFile: f.fromFile, value: v})
	return nil
}

func main() {
	var sources []querySource
	flag.Var(sourceFlag{&sources, false}, "query", "query text (SASE-style syntax); repeatable")
	flag.Var(sourceFlag{&sources, true}, "file", "file holding one query text; repeatable")
	input := flag.String("input", "", "CSV event stream (default stdin)")
	workers := flag.Int("workers", 1, "partition-parallel workers")
	explain := flag.Bool("explain", false, "print the compiled plans and exit")
	memory := flag.Bool("memory", false, "report logical peak memory after the run")
	flag.Parse()

	if err := run(sources, *input, *workers, *explain, *memory); err != nil {
		fmt.Fprintln(os.Stderr, "cograql:", err)
		os.Exit(1)
	}
}

func run(sources []querySource, input string, workers int, explain, memory bool) error {
	texts := make([]string, 0, len(sources))
	for _, src := range sources {
		if !src.fromFile {
			texts = append(texts, src.value)
			continue
		}
		data, err := os.ReadFile(src.value)
		if err != nil {
			return err
		}
		texts = append(texts, string(data))
	}
	if len(texts) == 0 {
		return fmt.Errorf("provide -query or -file (repeatable)")
	}

	queries := make([]*cogra.Query, len(texts))
	for i, text := range texts {
		q, err := cogra.Parse(text)
		if err != nil {
			return fmt.Errorf("query %d: %w", i+1, err)
		}
		queries[i] = q
	}
	if explain {
		// Compile against one shared catalog, the way a session would.
		cat := cogra.NewCatalog()
		for i, q := range queries {
			plan, err := cogra.CompileIn(cat, q)
			if err != nil {
				return fmt.Errorf("query %d: %w", i+1, err)
			}
			if len(queries) > 1 {
				fmt.Printf("[q%d] %v\n", i+1, plan)
			} else {
				fmt.Println(plan)
			}
		}
		return nil
	}

	in := os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := cogra.ReadCSV(in)
	if err != nil {
		return err
	}

	// Result lines carry a [qN] prefix only in multi-query runs, so
	// single-query output stays byte-compatible with earlier versions.
	printResult := func(qi int, r cogra.Result) {
		if len(queries) > 1 {
			fmt.Printf("[q%d] %v\n", qi+1, r)
		} else {
			fmt.Println(r)
		}
	}

	// One Session hosts the whole fleet: inline when workers <= 1
	// (results stream as their windows close — multi-query output
	// interleaves in watermark order, the [qN] prefix disambiguates),
	// partition-parallel otherwise (results print when gathered from
	// the workers at Close).
	var opts []cogra.SessionOption
	if workers > 1 {
		opts = append(opts, cogra.WithWorkers(workers))
	}
	sess := cogra.NewSession(opts...)
	for i, q := range queries {
		qi := i
		_, err := sess.Subscribe(q,
			cogra.OnResult(func(r cogra.Result) { printResult(qi, r) }))
		if err != nil {
			return fmt.Errorf("query %d: %w", qi+1, err)
		}
	}
	if workers > 1 {
		if st, err := sess.Stats(); err == nil && len(st.RoutingAttrs) == 0 {
			fmt.Fprintf(os.Stderr, "cograql: no shared partition attribute to route on; all events run on 1 of %d workers\n", workers)
		}
	}
	if err := sess.Run(cogra.FromSlice(events)); err != nil {
		return err
	}
	if err := sess.Close(); err != nil {
		return err
	}
	if memory {
		st, err := sess.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "peak memory: %d bytes across %d worker(s); binding intern tables: %d bytes\n",
			st.PeakBytes, st.Workers, st.BindingInternBytes)
	}
	return nil
}
