// Command cograql evaluates an event trend aggregation query against
// a CSV event stream:
//
//	cograql -query q1.etaq -input stream.csv
//	cogragen -dataset stock | cograql -query 'RETURN company, COUNT(*)
//	    PATTERN SEQ(Stock A+, Stock B+) WHERE [company]
//	    GROUP-BY company WITHIN 100 SLIDE 100'
//
// The query is given inline with -query or in a file with -file; the
// stream is read from -input or stdin. Results print one line per
// window and group. -workers > 1 enables partition-parallel execution.
package main

import (
	"flag"
	"fmt"
	"os"

	cogra "repro"
)

func main() {
	queryText := flag.String("query", "", "query text (SASE-style syntax)")
	queryFile := flag.String("file", "", "file holding the query text")
	input := flag.String("input", "", "CSV event stream (default stdin)")
	workers := flag.Int("workers", 1, "partition-parallel workers")
	explain := flag.Bool("explain", false, "print the compiled plan and exit")
	memory := flag.Bool("memory", false, "report logical peak memory after the run")
	flag.Parse()

	if err := run(*queryText, *queryFile, *input, *workers, *explain, *memory); err != nil {
		fmt.Fprintln(os.Stderr, "cograql:", err)
		os.Exit(1)
	}
}

func run(queryText, queryFile, input string, workers int, explain, memory bool) error {
	if queryText == "" && queryFile == "" {
		return fmt.Errorf("provide -query or -file")
	}
	if queryFile != "" {
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryText = string(data)
	}
	q, err := cogra.Parse(queryText)
	if err != nil {
		return err
	}
	plan, err := cogra.Compile(q)
	if err != nil {
		return err
	}
	if explain {
		fmt.Println(plan)
		return nil
	}

	in := os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := cogra.ReadCSV(in)
	if err != nil {
		return err
	}

	if workers > 1 {
		exec := cogra.NewParallelExecutor(plan, workers)
		if err := exec.Run(cogra.FromSlice(events)); err != nil {
			return err
		}
		results, err := exec.Close()
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println(r)
		}
		if memory {
			fmt.Fprintf(os.Stderr, "peak memory: %d bytes across %d workers\n", exec.PeakBytes(), workers)
		}
		return nil
	}

	var acct cogra.Accountant
	eng := cogra.NewEngine(plan, cogra.WithAccountant(&acct),
		cogra.WithResultCallback(func(r cogra.Result) { fmt.Println(r) }))
	for _, e := range events {
		if err := eng.Process(e); err != nil {
			return err
		}
	}
	eng.Close()
	if memory {
		fmt.Fprintf(os.Stderr, "peak memory: %d bytes\n", acct.Peak())
	}
	return nil
}
