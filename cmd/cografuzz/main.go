// Command cografuzz is the differential fuzzer for the COGRA engine:
// it draws seeded random scenarios (schema, query fleet, event
// stream, churn schedule, session config) from the paper's workload
// templates and replays each one through a metamorphic oracle suite —
// COGRA vs the independent baselines, and the engine against itself
// with one execution-mode axis flipped at a time (batch kernels,
// workers, slack reordering, eviction, executor groups, snapshot/
// restore, the cograd server). Failures are shrunk by delta debugging
// and written as self-contained repro files.
//
//	cografuzz -seed 1 -n 200 -out testdata/repros   # deterministic batch
//	cografuzz -budget 75s                           # CI smoke
//	cografuzz -repro testdata/repros/f.repro        # replay one failure
//	cografuzz -list                                 # show the oracle suite
//
// Exit status: 0 when every scenario passed (or a replayed repro no
// longer fails), 1 when a mismatch was found (or a replayed repro
// still fails), 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fuzz"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "base seed; scenario i is fully determined by (seed, i)")
		n        = flag.Int("n", 0, "number of scenarios to run (0: run until -budget)")
		budget   = flag.Duration("budget", 60*time.Second, "wall-clock budget when -n is 0")
		out      = flag.String("out", "", "directory for shrunk repro files (empty: report only)")
		repro    = flag.String("repro", "", "replay one repro file instead of fuzzing")
		oracles  = flag.String("oracles", "", "comma-separated oracle subset (default: all)")
		maxFail  = flag.Int("maxfail", 0, "stop after this many failing scenarios (0: unlimited)")
		noShrink = flag.Bool("noshrink", false, "report raw failing scenarios without minimizing")
		list     = flag.Bool("list", false, "list the oracle suite and exit")
		verbose  = flag.Bool("v", false, "log every scenario and shrink pass")
	)
	flag.Parse()

	if *list {
		for _, o := range fuzz.Oracles() {
			fmt.Printf("%-10s %s\n", o.Name, o.Doc)
		}
		return
	}

	if *repro != "" {
		rep, mismatch, err := fuzz.ReplayFile(*repro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cografuzz: %v\n", err)
			os.Exit(2)
		}
		if mismatch != "" {
			fmt.Printf("%s: oracle %s still fails on %s:\n%s\n", *repro, rep.Oracle, rep.Scenario, mismatch)
			os.Exit(1)
		}
		fmt.Printf("%s: oracle %s passes (%s) — the captured bug no longer reproduces\n",
			*repro, rep.Oracle, rep.Scenario)
		return
	}

	cfg := fuzz.RunConfig{
		Seed:        *seed,
		N:           *n,
		Budget:      *budget,
		OutDir:      *out,
		MaxFailures: *maxFail,
		NoShrink:    *noShrink,
		Log:         os.Stdout,
		Verbose:     *verbose,
	}
	if *oracles != "" {
		cfg.Oracles = strings.Split(*oracles, ",")
	}
	rep, err := fuzz.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cografuzz: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("cografuzz: %d scenarios, %d oracle checks, %d failures in %s (seed %d)\n",
		rep.Scenarios, rep.Checks, len(rep.Failures), rep.Elapsed.Round(time.Millisecond), *seed)
	for _, f := range rep.Failures {
		loc := f.File
		if loc == "" {
			loc = f.Scenario.String()
		}
		fmt.Printf("  scenario %d, oracle %s: %s\n", f.Index, f.Oracle, loc)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}
