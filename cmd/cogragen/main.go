// Command cogragen emits the synthetic workloads of the experimental
// study (§9.1) as CSV on stdout: stock, physical-activity,
// public-transportation and ridesharing streams.
package main

import (
	"flag"
	"fmt"
	"os"

	cogra "repro"
	"repro/internal/gen"
)

func main() {
	dataset := flag.String("dataset", "stock", "stock | activity | transit | rideshare")
	events := flag.Int("events", 10000, "number of events (trips for rideshare)")
	seed := flag.Int64("seed", 1, "random seed")
	groups := flag.Int("groups", 0, "number of groups (companies/persons/passengers/drivers); 0 = dataset default")
	flag.Parse()

	var out []*cogra.Event
	switch *dataset {
	case "stock":
		out = gen.Stock(gen.StockConfig{Seed: *seed, Events: *events, Companies: *groups})
	case "activity":
		out = gen.Activity(gen.ActivityConfig{Seed: *seed, Events: *events, Persons: *groups})
	case "transit":
		out = gen.Transit(gen.TransitConfig{Seed: *seed, Events: *events, Passengers: *groups})
	case "rideshare":
		out = gen.Rideshare(gen.RideshareConfig{Seed: *seed, Trips: *events, Drivers: *groups})
	default:
		fmt.Fprintf(os.Stderr, "cogragen: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	if err := cogra.WriteCSV(os.Stdout, out); err != nil {
		fmt.Fprintln(os.Stderr, "cogragen:", err)
		os.Exit(1)
	}
}
