// Command cograd serves cogra sessions to many tenants over the
// network: HTTP+JSON for ingest, subscribe and streaming results, a
// framed-TCP path for bulk ingest, Prometheus metrics on /metrics, and
// graceful drain — SIGTERM checkpoints every tenant session into
// -checkpoint-dir (when set) and a restarted cograd resumes them
// byte-identically, mid-window.
//
// Usage:
//
//	cograd -addr :8080 -tcp-addr :8081 -shards 4 \
//	       -checkpoint-dir /var/lib/cograd \
//	       -slack 100 -evict
//
// Session flags (-workers, -groups, -slack, ...) apply to every tenant
// session the daemon creates; they are the same flags cograql takes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/sessionflags"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		tcpAddr    = flag.String("tcp-addr", "", "framed-TCP bulk-ingest listen address (empty: disabled)")
		shards     = flag.Int("shards", 4, "session-shard pool size (tenants hash across shards)")
		ckptDir    = flag.String("checkpoint-dir", "", "snapshot tenants here on drain, restore on boot (empty: disabled)")
		maxBatch   = flag.Int("max-batch", 0, "max events per ingest request (0: unlimited)")
		maxQueries = flag.Int("max-queries", 0, "max active queries per tenant (0: unlimited)")
		ingestRate = flag.Float64("ingest-rate", 0, "per-tenant ingest quota in events/s (0: unlimited)")
	)
	sf := sessionflags.Register(flag.CommandLine)
	flag.Parse()

	if err := run(*addr, *tcpAddr, *shards, *ckptDir, *maxBatch, *maxQueries, *ingestRate, sf); err != nil {
		fmt.Fprintln(os.Stderr, "cograd:", err)
		os.Exit(1)
	}
}

func run(addr, tcpAddr string, shards int, ckptDir string, maxBatch, maxQueries int, ingestRate float64, sf *sessionflags.Flags) error {
	opts, err := sf.Options()
	if err != nil {
		return err
	}
	ropts, err := sf.RestoreOptions()
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Shards:              shards,
		SessionOptions:      opts,
		RestoreOptions:      ropts,
		CheckpointDir:       ckptDir,
		MaxBatch:            maxBatch,
		MaxQueriesPerTenant: maxQueries,
		IngestRate:          ingestRate,
		Logf:                log.Printf,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	httpLn, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 2)
	go func() { errc <- httpSrv.Serve(httpLn) }()
	log.Printf("cograd: http on %s", httpLn.Addr())

	var tcpLn net.Listener
	if tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", tcpAddr)
		if err != nil {
			return err
		}
		go func() { errc <- srv.ServeTCP(tcpLn) }()
		log.Printf("cograd: tcp ingest on %s", tcpLn.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("cograd: %s: draining", sig)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}

	// Drain order: refuse new work and checkpoint sessions first (the
	// consistent cut), then stop the listeners — in-flight streaming
	// responses observe the drain via their pulse wake-up and finish.
	if err := srv.Drain(); err != nil {
		log.Printf("cograd: drain: %v", err)
	}
	if tcpLn != nil {
		tcpLn.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("cograd: bye")
	return nil
}
