package cogra

// Checkpoint/restore: a Session can serialize its complete hosted
// state at a consistent cut and be rebuilt from those bytes such that
// the restored session is indistinguishable going forward — pushing
// the same suffix of the stream into the restored session produces
// byte-identical results and continuous Stats counters, under every
// granularity, worker configuration, slack buffer and eviction policy.
//
// The cut is consistent by construction. Inline sessions are
// single-threaded, so the caller's quiescence IS the cut. Parallel
// sessions first run the executor's control-plane barrier (Sync): when
// it returns, every worker has applied every event routed so far and
// is parked on its input channel, and the barrier's reply handshake
// gives the snapshotting goroutine a happens-before edge to read the
// workers' runtimes directly. Restore installs each worker's rebuilt
// runtime before any message is sent on its channel, which publishes
// it to the worker goroutine the same way.
//
// The snapshot serializes live state VERBATIM rather than draining it:
// the catalog's id spaces including tombstones and free lists (so
// recompiled queries re-intern to their original ids), the binding
// intern tables with their eviction stamps, every open window's
// sub-aggregators including the staged, uncommitted contributions of
// the current time stamp, the reorder buffer, and every counter a
// Stats call reports. Draining any of it would make the restored run
// observably different from the undisturbed one.
//
// What does NOT survive: sinks and callbacks (code is not data —
// restored subscriptions buffer their results for Results/Drain until
// the caller re-reads them), subscription error states, and the
// session's position in any external input source (the caller owns
// replaying the suffix).

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/snap"
	"repro/internal/stream"
)

// maxRestoreWorkers bounds the worker count accepted from a snapshot,
// so a corrupt header cannot spawn an absurd goroutine fleet.
const maxRestoreWorkers = 4096

// Snapshot writes a consistent checkpoint of the session to w in the
// versioned, CRC-protected snapshot format. The session must be
// quiescent from the caller's side (no concurrent Push); parallel
// workers are synchronized internally. The session remains fully
// usable afterwards — snapshotting is a read-only barrier, and its
// cost is paid entirely inside this call, never on the ingest path.
func (s *Session) Snapshot(w io.Writer) error {
	if s.dispatching {
		return fmt.Errorf("cogra: Snapshot from within a result sink; defer it until Push returns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cogra: Snapshot after Close: %w", ErrClosed)
	}
	if s.mx != nil {
		if err := s.mx.Sync(); err != nil {
			return err
		}
	}
	var sw snap.Writer
	sw.Int(s.cfg.workers)
	sw.Int(s.cfg.groups)
	sw.I64(s.cfg.slack)
	sw.Bool(s.cfg.reorder)
	sw.U8(uint8(s.cfg.late))
	sw.Int(s.cfg.maxDepth)
	sw.U8(uint8(s.cfg.depth))
	sw.Bool(s.cfg.evict)
	sw.Bool(s.cfg.shared)
	sw.Int(s.roPeak)
	sw.I64(s.roSeq)
	sw.I64(s.mxLast)
	sw.Bool(s.mxSaw)
	if s.cfg.reorder {
		s.ro.Snapshot(&sw)
	}
	s.cat.Snapshot(&sw)
	sw.U32(uint32(len(s.subs)))
	planIdx := map[int]int32{}
	for _, sub := range s.subs {
		sw.Bool(sub.active)
		if sub.active {
			if err := sub.plan.Query.Snapshot(&sw); err != nil {
				return err
			}
			planIdx[sub.id] = int32(sub.id)
		}
		sw.U32(uint32(len(sub.pending)))
		for _, r := range sub.pending {
			core.SnapshotResult(&sw, r)
		}
	}
	// Whether any event reached the execution layer: a restore may only
	// change the worker count while this is false (routing and
	// worker-local state are frozen by the first dispatched event).
	sawAny := s.mxSaw
	if s.rt != nil {
		sawAny = s.rt.Stats().Events > 0
	}
	sw.Bool(sawAny)
	// The execution topology is nested as one length-prefixed blob, so
	// a restore that rebuilds a fresh topology (worker-count change on
	// an event-free snapshot) can skip it wholesale.
	var tw snap.Writer
	if s.rt != nil {
		tw.U8(0)
		byRsub := map[int]int32{}
		for _, sub := range s.subs {
			if sub.active {
				byRsub[sub.rsub.ID()] = planIdx[sub.id]
			}
		}
		if err := s.rt.Snapshot(&tw, byRsub); err != nil {
			return err
		}
	} else {
		tw.U8(1)
		if err := s.mx.Snapshot(&tw, planIdx); err != nil {
			return err
		}
	}
	sw.Bytes(tw.Raw())
	if s.rt != nil {
		sw.I64(s.acct.Current())
		sw.I64(s.acct.Peak())
	}
	return sw.Frame(w)
}

// Restore rebuilds a session from a Snapshot. The restored session
// continues exactly where the snapshot was taken: pushing the
// remaining stream suffix yields byte-identical results, and Stats
// counters are continuous. Options are applied ON TOP of the
// snapshot's own configuration; the worker count may only differ from
// the snapshot's while no event had been ingested yet (the routing
// function freezes with the first event) — otherwise Restore fails
// with an error wrapping ErrFrozenRouting.
//
// Sinks are not serializable, so restored subscriptions always buffer:
// re-read results with Subscription.Results or Drain (Session.
// Subscriptions returns the restored handles, indexed by their
// original ids).
func Restore(r io.Reader, opts ...SessionOption) (*Session, error) {
	rd, err := snap.Open(r)
	if err != nil {
		return nil, err
	}
	var orig sessionCfg
	orig.workers = rd.Int()
	orig.groups = rd.Int()
	orig.slack = rd.I64()
	orig.reorder = rd.Bool()
	late := rd.U8()
	orig.maxDepth = rd.Int()
	depth := rd.U8()
	orig.evict = rd.Bool()
	orig.shared = rd.Bool()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if late > uint8(RejectLate) || depth > uint8(Reject) {
		return nil, fmt.Errorf("%w: session policy out of range (late %d, depth %d)", ErrBadSnapshot, late, depth)
	}
	if orig.workers > maxRestoreWorkers || orig.workers < 0 {
		return nil, fmt.Errorf("%w: session worker count %d", ErrBadSnapshot, orig.workers)
	}
	if orig.groups > maxRestoreWorkers || orig.groups < 0 {
		return nil, fmt.Errorf("%w: session executor group count %d", ErrBadSnapshot, orig.groups)
	}
	orig.late, orig.depth = LatePolicy(late), DepthPolicy(depth)
	cfg := orig
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Session{cfg: cfg, late: cfg.late, evict: cfg.evict}
	s.roPeak = rd.Int()
	s.roSeq = rd.I64()
	s.mxLast = rd.I64()
	s.mxSaw = rd.Bool()
	if cfg.reorder {
		s.ro = stream.NewReorderer(cfg.slack)
		if cfg.maxDepth > 0 {
			policy := stream.ShedOldest
			if cfg.depth == Reject {
				policy = stream.Reject
			}
			s.ro.SetMaxDepth(cfg.maxDepth, policy)
		}
		if orig.reorder {
			if err := s.ro.RestoreState(rd); err != nil {
				return nil, err
			}
		}
	}
	cat, err := core.RestoreCatalog(rd)
	if err != nil {
		return nil, err
	}
	s.cat = cat
	// Recompiling the surviving queries below re-interns their symbols
	// (hitting the restored ids) but also republishes the catalog,
	// advancing the epoch; remember the snapshot's marks and re-pin
	// them once the topology is rebuilt, so diagnostics stay continuous.
	epochMark, compMark := cat.Epoch(), cat.Compactions()
	nsubs := rd.Count(5)
	plans := make([]*Plan, nsubs)
	actives := make([]bool, nsubs)
	pendings := make([][]Result, nsubs)
	for id := 0; id < nsubs; id++ {
		actives[id] = rd.Bool()
		if actives[id] {
			q, err := query.RestoreQuery(rd)
			if err != nil {
				return nil, err
			}
			plan, err := core.NewPlanIn(cat, q)
			if err != nil {
				return nil, fmt.Errorf("%w: recompiling query %d: %v", ErrBadSnapshot, id, err)
			}
			plans[id] = plan
		}
		np := rd.Count(32)
		for i := 0; i < np; i++ {
			res, err := core.RestoreResult(rd)
			if err != nil {
				return nil, err
			}
			pendings[id] = append(pendings[id], res)
		}
	}
	sawAny := rd.Bool()
	blob := rd.RawBytes()
	var acctCur, acctPeak int64
	if orig.workers <= 1 && orig.groups <= 1 {
		acctCur, acctPeak = rd.I64(), rd.I64()
	}
	if err := rd.Close(); err != nil {
		return nil, err
	}

	normalize := func(n int) int {
		if n > 1 {
			return n
		}
		return 1
	}
	var engOpts []EngineOption
	if cfg.evict {
		engOpts = append(engOpts, core.WithInternEviction())
	}
	parallel := cfg.workers > 1 || cfg.groups > 1
	rsubs := make([]*runtime.Subscription, nsubs)
	msubs := make([]*stream.Sub, nsubs)
	if normalize(cfg.workers) != normalize(orig.workers) || normalize(cfg.groups) != normalize(orig.groups) {
		if sawAny {
			return nil, fmt.Errorf("cogra: restore with %d workers / %d groups from a %d-worker / %d-group snapshot after events flowed (routing is frozen): %w",
				normalize(cfg.workers), normalize(cfg.groups), normalize(orig.workers), normalize(orig.groups), ErrFrozenRouting)
		}
		// Event-free snapshot: the topology blob holds only fresh
		// construction state, so skip it and re-subscribe the surviving
		// plans against a fresh topology of the requested width.
		if parallel {
			s.mx = stream.NewMultiExecutorOn(cat, cfg.workers, engOpts...)
			if cfg.groups > 1 {
				s.mx.SetExecutorGroups(cfg.groups)
			}
			if cfg.shared {
				s.mx.EnableSharedAggregation()
			}
		} else {
			s.rt = runtime.NewOn(cat)
			if cfg.shared {
				s.rt.EnableSharedAggregation(append([]EngineOption{core.WithAccountant(&s.acct)}, engOpts...)...)
			}
		}
		for id, plan := range plans {
			if plan == nil {
				continue
			}
			if s.rt != nil {
				iopts := append([]EngineOption{core.WithAccountant(&s.acct)}, engOpts...)
				if rsubs[id], err = s.rt.SubscribePlan(plan, iopts...); err != nil {
					return nil, err
				}
			} else if msubs[id], err = s.mx.SubscribePlan(plan); err != nil {
				s.mx.Close()
				return nil, err
			}
		}
	} else {
		brd := snap.NewReader(blob)
		tag := brd.U8()
		if parallel {
			if tag != 1 {
				return nil, fmt.Errorf("%w: parallel session with an inline topology blob", ErrBadSnapshot)
			}
			mx, err := stream.RestoreMultiExecutor(cat, brd, plans, engOpts...)
			if err != nil {
				return nil, err
			}
			if err := brd.Close(); err != nil {
				mx.Close()
				return nil, err
			}
			if cfg.shared {
				// Re-arm the executor-level flag so lazily started executor
				// groups inherit sharing; worker runtimes restored with
				// sharing already on are left untouched.
				mx.EnableSharedAggregation()
			}
			s.mx = mx
			for id := range plans {
				if !actives[id] {
					continue
				}
				msub := mx.Sub(id)
				if msub == nil || !msub.Active() || msub.Plan() != plans[id] {
					mx.Close()
					return nil, fmt.Errorf("%w: subscription %d missing from the executor topology", ErrBadSnapshot, id)
				}
				msubs[id] = msub
			}
		} else {
			if tag != 0 {
				return nil, fmt.Errorf("%w: inline session with a parallel topology blob", ErrBadSnapshot)
			}
			iopts := append([]EngineOption{core.WithAccountant(&s.acct)}, engOpts...)
			rt, err := runtime.RestoreRuntime(cat, brd, plans, func(int) []EngineOption { return iopts })
			if err != nil {
				return nil, err
			}
			if err := brd.Close(); err != nil {
				return nil, err
			}
			if cfg.shared && !rt.SharedAggregationEnabled() {
				// WithSharedAggregation added at restore time over an
				// unshared snapshot: future subscribers may share.
				rt.EnableSharedAggregation(iopts...)
			}
			s.rt = rt
			for id := range plans {
				if !actives[id] {
					continue
				}
				rsub := rt.Lookup(id)
				if rsub == nil || rsub.Plan() != plans[id] {
					return nil, fmt.Errorf("%w: subscription %d missing from the runtime topology", ErrBadSnapshot, id)
				}
				rsubs[id] = rsub
			}
			s.acct.Restore(acctCur, acctPeak)
		}
	}
	for id := 0; id < nsubs; id++ {
		s.subs = append(s.subs, &Subscription{
			sess:    s,
			id:      id,
			plan:    plans[id],
			rsub:    rsubs[id],
			msub:    msubs[id],
			active:  actives[id],
			pending: pendings[id],
		})
	}
	cat.ResetEpoch(epochMark, compMark)
	return s, nil
}

// Subscriptions returns the session's subscription handles, active and
// detached, indexed by their ids — the way back to a restored
// session's queries and their buffered results.
func (s *Session) Subscriptions() []*Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Subscription(nil), s.subs...)
}
