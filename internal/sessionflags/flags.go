// Package sessionflags is the one place the session-option command
// line is defined: cograql and cograd both serve a cogra.Session, so
// they share the flags that shape one (-workers, -groups, -slack,
// -late-reject, -max-reorder-depth, -reorder-reject, -evict,
// -shared), their
// help strings, their cross-flag validation and their translation into
// []cogra.SessionOption. A binary registers the set on its FlagSet,
// parses, validates, and asks for the options:
//
//	sf := sessionflags.Register(flag.CommandLine)
//	flag.Parse()
//	opts, err := sf.Options()
//
// Keeping this in one package means a new session option lands in both
// binaries with one edit, and the two cannot drift apart in defaults
// or validation (they did once: the duplication this package removed).
package sessionflags

import (
	"flag"
	"fmt"

	cogra "repro"
)

// Flags holds the parsed session-shaping flag values. The zero value
// is NOT the flag default set: the -slack flag defaults to -1 (require
// in-order input) while the zero value means slack 0 — construct via
// Register for command lines, or fill the fields directly in tests.
type Flags struct {
	// Workers is the partition-parallel worker count (<= 1: inline).
	Workers int
	// Groups caps the independently-routed executor groups (<= 1: one).
	Groups int
	// Slack accepts events up to this many time units out of order;
	// negative means "no reorder buffer, require in-order input".
	Slack int64
	// RejectLate fails on events beyond Slack instead of dropping them.
	RejectLate bool
	// MaxDepth caps the reorder buffer (0: unbounded).
	MaxDepth int
	// RejectOverrun fails with backpressure at the depth cap instead of
	// shedding the buffer's oldest events.
	RejectOverrun bool
	// Evict bounds binding-intern memory via window-expiry epochs.
	Evict bool
	// Shared folds fingerprint-equal queries into sharing groups with
	// runtime share/unshare decisions at window boundaries.
	Shared bool

	fs *flag.FlagSet // nil when the struct was filled by hand
}

// Register defines the shared session flags on fs and returns the
// struct they parse into. Call fs.Parse before reading the fields.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{fs: fs}
	fs.IntVar(&f.Workers, "workers", 1, "partition-parallel workers per session")
	fs.IntVar(&f.Groups, "groups", 1, "cap on independently-routed executor groups: full-stream workers hosting queries subscribed mid-stream whose partition keys do not cover the frozen routing attributes; such queries cluster by partition-key signature (same signature, same group; a new signature starts a group while under the cap, then joins the least-loaded one) and an empty group retires when its last query unsubscribes")
	fs.Int64Var(&f.Slack, "slack", -1, "accept events up to this many time units out of order (-1: require in-order input)")
	fs.BoolVar(&f.RejectLate, "late-reject", false, "fail on events beyond -slack instead of dropping them")
	fs.IntVar(&f.MaxDepth, "max-reorder-depth", 0, "cap the -slack reorder buffer at this many events (0: unbounded)")
	fs.BoolVar(&f.RejectOverrun, "reorder-reject", false, "fail with backpressure when the capped reorder buffer is full, instead of shedding its oldest events")
	fs.BoolVar(&f.Evict, "evict", false, "bound binding-intern memory: reclaim slot values once no open window references them")
	fs.BoolVar(&f.Shared, "shared", false, "share trend aggregation across queries that differ only in RETURN: fingerprint-equal queries form a sharing group whose host computes the union of their aggregation specs once per trend, with a per-epoch burstiness monitor flipping between shared and per-query execution at window boundaries (results are byte-identical either way)")
	return f
}

// WasSet reports whether the named flag was given explicitly on the
// command line (false for hand-filled structs). Restoring binaries use
// it to decide whether an explicit -workers/-groups overrides the
// checkpoint's own topology.
func (f *Flags) WasSet(name string) bool {
	if f.fs == nil {
		return false
	}
	set := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

// Validate applies the cross-flag rules shared by every session-serving
// binary: silently-ignored combinations are refused, not dropped.
func (f *Flags) Validate() error {
	if f.Groups < 0 {
		return fmt.Errorf("-groups must be at least 1, got %d", f.Groups)
	}
	if f.MaxDepth < 0 {
		return fmt.Errorf("-max-reorder-depth must be non-negative (0: unbounded), got %d", f.MaxDepth)
	}
	if f.Slack < 0 && (f.MaxDepth > 0 || f.RejectOverrun || f.RejectLate) {
		return fmt.Errorf("-late-reject/-max-reorder-depth/-reorder-reject require -slack (there is no reorder buffer without it)")
	}
	if f.Slack >= 0 && f.RejectOverrun && f.MaxDepth <= 0 {
		return fmt.Errorf("-reorder-reject requires -max-reorder-depth (an unbounded buffer never exerts backpressure)")
	}
	return nil
}

// Options validates and translates the flags into session options.
func (f *Flags) Options() ([]cogra.SessionOption, error) {
	return f.options(false)
}

// RestoreOptions is Options for a binary resuming from a checkpoint:
// an explicitly given -workers/-groups is included even at its default
// value, so it overrides the checkpoint's own topology (allowed only
// while no event had been ingested); an omitted flag lets the
// checkpoint decide.
func (f *Flags) RestoreOptions() ([]cogra.SessionOption, error) {
	return f.options(true)
}

func (f *Flags) options(restoring bool) ([]cogra.SessionOption, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var opts []cogra.SessionOption
	if f.Workers > 1 || (restoring && f.WasSet("workers")) {
		opts = append(opts, cogra.WithWorkers(f.Workers))
	}
	if f.Groups > 1 || (restoring && f.WasSet("groups")) {
		opts = append(opts, cogra.WithExecutorGroups(f.Groups))
	}
	if f.Slack >= 0 {
		opts = append(opts, cogra.WithSlack(f.Slack))
		if f.RejectLate {
			opts = append(opts, cogra.WithLatePolicy(cogra.RejectLate))
		}
		if f.MaxDepth > 0 {
			opts = append(opts, cogra.WithMaxReorderDepth(f.MaxDepth))
			if f.RejectOverrun {
				opts = append(opts, cogra.WithDepthPolicy(cogra.Reject))
			}
		}
	}
	if f.Evict {
		opts = append(opts, cogra.WithInternEviction())
	}
	if f.Shared {
		opts = append(opts, cogra.WithSharedAggregation())
	}
	return opts, nil
}
