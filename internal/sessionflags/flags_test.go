package sessionflags

import (
	"flag"
	"strings"
	"testing"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultsProduceNoOptions(t *testing.T) {
	f := parse(t)
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 0 {
		t.Fatalf("default flags produced %d options, want 0", len(opts))
	}
}

func TestOptionCounts(t *testing.T) {
	// The helper is shared by two binaries; pin how many options each
	// flag combination yields so a silently-dropped flag fails here
	// rather than in a service's behavior.
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-workers", "4"}, 1},
		{[]string{"-groups", "2"}, 1},
		{[]string{"-slack", "0"}, 1},
		{[]string{"-slack", "5", "-late-reject"}, 2},
		{[]string{"-slack", "5", "-max-reorder-depth", "8"}, 2},
		{[]string{"-slack", "5", "-max-reorder-depth", "8", "-reorder-reject"}, 3},
		{[]string{"-evict"}, 1},
		{[]string{"-shared"}, 1},
		{[]string{"-workers", "4", "-groups", "2", "-slack", "1", "-evict", "-shared"}, 5},
	}
	for _, c := range cases {
		f := parse(t, c.args...)
		opts, err := f.Options()
		if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if len(opts) != c.want {
			t.Errorf("%v: %d options, want %d", c.args, len(opts), c.want)
		}
	}
}

func TestCrossFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-late-reject"},
		{"-max-reorder-depth", "4"},
		{"-reorder-reject"},
		{"-slack", "5", "-reorder-reject"}, // reject without a depth cap
		{"-max-reorder-depth", "-1", "-slack", "1"},
		{"-groups", "-2"},
	}
	for _, args := range cases {
		f := parse(t, args...)
		if _, err := f.Options(); err == nil {
			t.Errorf("%v: accepted, want a validation error", args)
		}
	}
}

func TestRestoreOptionsIncludeExplicitTopology(t *testing.T) {
	// -workers 1 is the default value, but GIVEN explicitly it must
	// reach the restored session so it overrides the checkpoint's
	// fleet size.
	f := parse(t, "-workers", "1")
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 0 {
		t.Fatalf("fresh session: explicit default -workers produced %d options, want 0", len(opts))
	}
	ropts, err := f.RestoreOptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ropts) != 1 {
		t.Fatalf("restore: explicit -workers 1 produced %d options, want 1", len(ropts))
	}
	// Omitted flags stay omitted on restore: the checkpoint decides.
	f = parse(t)
	if ropts, err = f.RestoreOptions(); err != nil || len(ropts) != 0 {
		t.Fatalf("restore with no flags: %d options (err %v), want 0", len(ropts), err)
	}
}

func TestWasSet(t *testing.T) {
	f := parse(t, "-groups", "2")
	if !f.WasSet("groups") || f.WasSet("workers") {
		t.Fatalf("WasSet(groups)=%v WasSet(workers)=%v, want true false", f.WasSet("groups"), f.WasSet("workers"))
	}
	var hand Flags // hand-filled structs never report flags as set
	if hand.WasSet("workers") {
		t.Fatal("zero-value Flags reported a set flag")
	}
}

func TestValidationMessagesNameTheFlags(t *testing.T) {
	f := parse(t, "-late-reject")
	_, err := f.Options()
	if err == nil || !strings.Contains(err.Error(), "-slack") {
		t.Fatalf("error %v does not name the missing -slack flag", err)
	}
}
