package stream

import (
	"container/heap"

	"repro/internal/event"
)

// Reorderer is a K-slack buffer that repairs bounded disorder: events
// may arrive up to Slack time units later than the maximum time stamp
// seen so far and are re-emitted strictly in (time, ID) order. Events
// arriving later than the slack allows are dropped and counted.
//
// An event is released only once the maximum seen time stamp STRICTLY
// exceeds its own time stamp plus the slack: an arrival at exactly
// maxSeen-slack is still admissible (not late), so events at that
// time stamp must stay buffered or a late tie would be emitted after
// its (time, ID) successors. The remainder is released by Flush at
// end of stream.
//
// Events must carry distinct IDs before they are offered: ties in
// (time, ID) — in particular unassigned IDs (0) on equal time stamps
// — pop from the heap in arbitrary order. Callers that buffer ahead
// of ID assignment (the Session's slack path) stamp arrival order
// onto ID-0 events first.
//
// The paper assumes in-order streams (§2.1) and cites AFA [10] for
// native disorder handling; a slack buffer in front of the engine is
// the standard way to meet the in-order contract with real sources.
type Reorderer struct {
	slack   int64
	h       eventHeap
	maxSeen int64
	sawAny  bool
	dropped int64
}

// NewReorderer builds a buffer tolerating the given slack (>= 0).
func NewReorderer(slack int64) *Reorderer {
	return &Reorderer{slack: slack}
}

type eventHeap []*event.Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].Before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event.Event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Offer inserts one possibly-disordered event and returns the events
// that became safe to emit, in order. An event older than
// maxSeen - slack is dropped (counted by Dropped).
func (r *Reorderer) Offer(e *event.Event) []*event.Event {
	if r.sawAny && e.Time < r.maxSeen-r.slack {
		r.dropped++
		return nil
	}
	heap.Push(&r.h, e)
	if !r.sawAny || e.Time > r.maxSeen {
		r.maxSeen = e.Time
		r.sawAny = true
	}
	return r.drain(r.maxSeen - r.slack)
}

// drain pops every buffered event with time strictly below the
// watermark — events AT the watermark can still acquire admissible
// ties (Offer admits time >= maxSeen-slack), so they are held.
func (r *Reorderer) drain(watermark int64) []*event.Event {
	var out []*event.Event
	for r.h.Len() > 0 && r.h[0].Time < watermark {
		out = append(out, heap.Pop(&r.h).(*event.Event))
	}
	return out
}

// Flush emits everything still buffered, in order (end of stream).
func (r *Reorderer) Flush() []*event.Event {
	var out []*event.Event
	for r.h.Len() > 0 {
		out = append(out, heap.Pop(&r.h).(*event.Event))
	}
	return out
}

// Dropped reports how many events exceeded the slack.
func (r *Reorderer) Dropped() int64 { return r.dropped }

// MaxSeen reports the largest time stamp offered so far; ok is false
// before the first event.
func (r *Reorderer) MaxSeen() (int64, bool) { return r.maxSeen, r.sawAny }

// Buffered reports the current buffer size.
func (r *Reorderer) Buffered() int { return r.h.Len() }
