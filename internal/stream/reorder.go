package stream

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/event"
)

// Reorderer is a K-slack buffer that repairs bounded disorder: events
// may arrive up to Slack time units later than the maximum time stamp
// seen so far and are re-emitted strictly in (time, ID) order. Events
// arriving later than the slack allows are dropped and counted.
//
// An event is released only once the maximum seen time stamp STRICTLY
// exceeds its own time stamp plus the slack: an arrival at exactly
// maxSeen-slack is still admissible (not late), so events at that
// time stamp must stay buffered or a late tie would be emitted after
// its (time, ID) successors. The remainder is released by Flush at
// end of stream.
//
// Events must carry distinct IDs before they are offered: ties in
// (time, ID) — in particular unassigned IDs (0) on equal time stamps
// — pop from the heap in arbitrary order. Callers that buffer ahead
// of ID assignment (the Session's slack path) stamp arrival order
// onto ID-0 events first.
//
// The buffer is unbounded by default; SetMaxDepth caps it so one
// misbehaving source (a stalled watermark with a firehose of
// in-window events) cannot balloon it. At the cap, ShedOldest
// force-drains the oldest buffered events to make room (they are
// emitted early and counted by Shed; later arrivals older than a shed
// event are dropped as late), while Reject refuses the event with an
// error wrapping core.ErrBackpressure.
//
// The paper assumes in-order streams (§2.1) and cites AFA [10] for
// native disorder handling; a slack buffer in front of the engine is
// the standard way to meet the in-order contract with real sources.
type Reorderer struct {
	slack    int64
	h        eventHeap
	maxSeen  int64
	sawAny   bool
	dropped  int64
	shed     int64
	maxDepth int
	policy   DepthPolicy
	floor    int64 // time of the last force-drained event
	hasFloor bool
	out      []*event.Event // reused emission buffer (see Offer)
}

// DepthPolicy selects what a depth-capped Reorderer does when the
// buffer is full (SetMaxDepth).
type DepthPolicy int

const (
	// ShedOldest force-drains the oldest buffered events to make room:
	// they are emitted immediately (early, but still in order relative
	// to everything emitted before and after) and counted by Shed.
	// Later arrivals older than a shed event are dropped as late —
	// shedding effectively advances the stream — and arrivals AT a shed
	// event's time stamp are admitted but may interleave out of ID
	// order with what was already shed.
	ShedOldest DepthPolicy = iota
	// Reject refuses the offered event with an error wrapping
	// core.ErrBackpressure whenever admitting it would leave the buffer
	// above the cap. An event that advances the watermark far enough to
	// release at least one buffered event is still admitted — rejecting
	// it would deadlock a healthy stream at exactly the moment it makes
	// progress. Concretely, a full buffer refuses events until stream
	// time exceeds the oldest buffered time stamp plus the slack (the
	// admission check uses the OFFERED event's time, so progress does
	// not depend on an admission having happened first): size the cap
	// for the number of events a slack window can carry, and treat
	// ErrBackpressure as throttling, not loss — the event was not
	// ingested and may be retried.
	Reject
)

// NewReorderer builds a buffer tolerating the given slack (negative
// slack is clamped to 0).
func NewReorderer(slack int64) *Reorderer {
	if slack < 0 {
		slack = 0
	}
	return &Reorderer{slack: slack}
}

// SetMaxDepth caps the buffer at n events (n <= 0: unbounded, the
// default) with the given overflow policy. Configure before the first
// Offer; lowering the cap below the current depth only takes effect as
// events drain.
func (r *Reorderer) SetMaxDepth(n int, policy DepthPolicy) {
	r.maxDepth, r.policy = n, policy
}

type eventHeap []*event.Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].Before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event.Event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// boundaryFor returns max - slack clamped against int64 underflow:
// time stamps near math.MinInt64, or a huge slack, must widen the
// window, not wrap it shut.
func (r *Reorderer) boundaryFor(max int64) int64 {
	b := max - r.slack
	if b > max {
		// slack >= 0, so the true boundary is <= max; a larger result
		// means the subtraction wrapped below math.MinInt64.
		b = math.MinInt64
	}
	return b
}

// dropBoundary returns the oldest admissible time stamp: the clamped
// maxSeen-slack, raised to the shed floor once ShedOldest has
// force-drained events (an arrival older than a shed event would be
// emitted out of order downstream).
func (r *Reorderer) dropBoundary() int64 {
	b := r.boundaryFor(r.maxSeen)
	if r.hasFloor && r.floor > b {
		b = r.floor
	}
	return b
}

// Offer inserts one possibly-disordered event and returns the events
// that became safe to emit, in order. An event older than the drop
// boundary (maxSeen - slack, raised by shedding) is dropped and
// counted by Dropped. Under a depth cap, overflow follows the
// configured policy: ShedOldest force-drains into the returned slice,
// Reject returns an error wrapping core.ErrBackpressure and does not
// ingest the event.
//
// The returned slice is a scratch buffer owned by the Reorderer,
// valid only until the next Offer or Flush call: consume (or copy)
// it before offering again.
func (r *Reorderer) Offer(e *event.Event) ([]*event.Event, error) {
	if r.sawAny && e.Time < r.dropBoundary() {
		r.dropped++
		return nil, nil
	}
	if r.maxDepth > 0 && r.policy == Reject && len(r.h) >= r.maxDepth {
		newMax := r.maxSeen
		if !r.sawAny || e.Time > newMax {
			newMax = e.Time
		}
		if !(r.h[0].Time < r.boundaryFor(newMax)) {
			return nil, fmt.Errorf("stream: reorder buffer at max depth %d: %w", r.maxDepth, core.ErrBackpressure)
		}
	}
	heap.Push(&r.h, e)
	if !r.sawAny || e.Time > r.maxSeen {
		r.maxSeen = e.Time
		r.sawAny = true
	}
	r.out = r.out[:0]
	if r.maxDepth > 0 && r.policy == ShedOldest {
		for len(r.h) > r.maxDepth {
			ev := heap.Pop(&r.h).(*event.Event)
			r.out = append(r.out, ev)
			r.floor, r.hasFloor = ev.Time, true
			r.shed++
		}
	}
	return r.drain(r.dropBoundary()), nil
}

// drain pops every buffered event with time strictly below the
// watermark — events AT the watermark can still acquire admissible
// ties (Offer admits time >= the drop boundary), so they are held.
// Appends into the shared scratch buffer and returns it.
func (r *Reorderer) drain(watermark int64) []*event.Event {
	for r.h.Len() > 0 && r.h[0].Time < watermark {
		r.out = append(r.out, heap.Pop(&r.h).(*event.Event))
	}
	return r.out
}

// Flush emits everything still buffered, in order (end of stream).
// Like Offer's, the returned slice is the Reorderer's scratch buffer,
// valid until the next Offer or Flush.
func (r *Reorderer) Flush() []*event.Event {
	r.out = r.out[:0]
	for r.h.Len() > 0 {
		r.out = append(r.out, heap.Pop(&r.h).(*event.Event))
	}
	return r.out
}

// Dropped reports how many events exceeded the slack (or arrived
// behind the shed floor).
func (r *Reorderer) Dropped() int64 { return r.dropped }

// DropBoundary reports the oldest currently-admissible time stamp:
// events strictly older are dropped. It is maxSeen-slack (clamped),
// raised to the shed floor after ShedOldest force-drains — callers
// reporting a drop should cite this value, since the slack alone does
// not explain floor-caused drops. Meaningless before the first event.
func (r *Reorderer) DropBoundary() int64 { return r.dropBoundary() }

// Shed reports how many buffered events were force-drained by the
// ShedOldest depth policy.
func (r *Reorderer) Shed() int64 { return r.shed }

// MaxSeen reports the largest time stamp offered so far; ok is false
// before the first event.
func (r *Reorderer) MaxSeen() (int64, bool) { return r.maxSeen, r.sawAny }

// Buffered reports the current buffer size.
func (r *Reorderer) Buffered() int { return r.h.Len() }
