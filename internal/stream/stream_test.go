package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func TestSliceIterator(t *testing.T) {
	evs := []*event.Event{event.New("A", 1), event.New("A", 2)}
	it := FromSlice(evs)
	for i := 0; i < 2; i++ {
		e, ok := it.Next()
		if !ok || e != evs[i] {
			t.Fatalf("pos %d: %v, %v", i, e, ok)
		}
	}
	if _, ok := it.Next(); ok {
		t.Error("iterator not exhausted")
	}
}

func TestMergeOrdersAcrossSources(t *testing.T) {
	s1 := FromSlice([]*event.Event{
		{Time: 1, ID: 1, Type: "A"}, {Time: 4, ID: 4, Type: "A"}, {Time: 9, ID: 9, Type: "A"},
	})
	s2 := FromSlice([]*event.Event{
		{Time: 2, ID: 2, Type: "B"}, {Time: 4, ID: 5, Type: "B"},
	})
	s3 := FromSlice(nil)
	m := Merge(s1, s2, s3)
	var times []int64
	var last *event.Event
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		if last != nil && e.Before(last) {
			t.Fatalf("out of order: %v after %v", e, last)
		}
		last = e
		times = append(times, e.Time)
	}
	want := []int64{1, 2, 4, 4, 9}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestMergeRandomisedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		var srcs []Iterator
		total := 0
		for s := 0; s < 1+rng.Intn(4); s++ {
			var evs []*event.Event
			tm := int64(0)
			for i := 0; i < rng.Intn(20); i++ {
				tm += int64(rng.Intn(3))
				evs = append(evs, &event.Event{Time: tm, ID: int64(iter*1000 + s*100 + i)})
			}
			total += len(evs)
			srcs = append(srcs, FromSlice(evs))
		}
		m := Merge(srcs...)
		count := 0
		var last *event.Event
		for {
			e, ok := m.Next()
			if !ok {
				break
			}
			if last != nil && e.Time < last.Time {
				t.Fatalf("iter %d: out of order", iter)
			}
			last = e
			count++
		}
		if count != total {
			t.Fatalf("iter %d: merged %d of %d events", iter, count, total)
		}
	}
}

func TestSchedulerGroupsTransactions(t *testing.T) {
	evs := []*event.Event{
		{Time: 1}, {Time: 1}, {Time: 2}, {Time: 5}, {Time: 5}, {Time: 5},
	}
	s := NewScheduler(FromSlice(evs))
	var sizes []int
	var times []int64
	for {
		tx, ok := s.NextTransaction()
		if !ok {
			break
		}
		sizes = append(sizes, len(tx.Events))
		times = append(times, tx.Time)
	}
	if fmt.Sprint(sizes) != "[2 1 3]" || fmt.Sprint(times) != "[1 2 5]" {
		t.Errorf("sizes=%v times=%v", sizes, times)
	}
	if _, ok := s.NextTransaction(); ok {
		t.Error("scheduler not exhausted")
	}
}

func TestSchedulerEmptySource(t *testing.T) {
	s := NewScheduler(FromSlice(nil))
	if _, ok := s.NextTransaction(); ok {
		t.Error("empty source produced a transaction")
	}
}

// parallelQuery is a partitioned q1-style query.
func parallelQuery() *query.Query {
	return query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Max, Alias: "M", Attr: "rate"}).
		Semantics(query.Cont).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(50, 25).
		MustBuild()
}

func parallelStream(n, groups int) []*event.Event {
	rng := rand.New(rand.NewSource(42))
	var out []*event.Event
	tm := int64(0)
	for i := 0; i < n; i++ {
		tm += int64(rng.Intn(2))
		out = append(out, event.New("M", tm).
			WithSym("patient", fmt.Sprintf("p%d", rng.Intn(groups))).
			WithNum("rate", float64(50+rng.Intn(50))))
	}
	return out
}

// TestParallelMatchesSequential is the §8 correctness claim: stream
// partitioning preserves results exactly.
func TestParallelMatchesSequential(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	events := parallelStream(500, 7)

	seqEng := core.NewEngine(plan)
	for _, e := range events {
		if err := seqEng.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	want := seqEng.Close()

	for _, workers := range []int{1, 2, 4, 8} {
		p := NewParallelExecutor(plan, workers)
		cloned := make([]*event.Event, len(events))
		for i, e := range events {
			cloned[i] = e.Clone()
		}
		if err := p.Run(FromSlice(cloned)); err != nil {
			t.Fatal(err)
		}
		got, err := p.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Wid != want[i].Wid ||
				fmt.Sprint(got[i].Group) != fmt.Sprint(want[i].Group) ||
				!agg.Equal(got[i].Values, want[i].Values) {
				t.Fatalf("workers=%d: result %d differs:\n%v\n%v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParallelSkipsKeylessEvents(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p := NewParallelExecutor(plan, 2)
	p.Process(event.New("M", 1).WithNum("rate", 60)) // no patient attr
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Skipped() != 1 {
		t.Errorf("skipped = %d", p.Skipped())
	}
}

func TestParallelLifecycleErrors(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p := NewParallelExecutor(plan, 2)
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Process(event.New("M", 1).WithSym("patient", "p").WithNum("rate", 1)); err == nil {
		t.Error("Process after Close accepted")
	}
	if _, err := p.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

func TestParallelPropagatesEngineErrors(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p := NewParallelExecutor(plan, 1)
	mk := func(tm int64) *event.Event {
		return event.New("M", tm).WithSym("patient", "p").WithNum("rate", 60)
	}
	p.Process(mk(10))
	p.Process(mk(5)) // out of order
	if _, err := p.Close(); err == nil {
		t.Error("out-of-order error not propagated")
	}
}

func TestParallelPeakBytes(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p := NewParallelExecutor(plan, 4)
	for _, e := range parallelStream(200, 5) {
		p.Process(e)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.PeakBytes() <= 0 {
		t.Error("peak bytes not tracked")
	}
}
