package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func TestSliceIterator(t *testing.T) {
	evs := []*event.Event{event.New("A", 1), event.New("A", 2)}
	it := FromSlice(evs)
	for i := 0; i < 2; i++ {
		e, ok := it.Next()
		if !ok || e != evs[i] {
			t.Fatalf("pos %d: %v, %v", i, e, ok)
		}
	}
	if _, ok := it.Next(); ok {
		t.Error("iterator not exhausted")
	}
}

func TestMergeOrdersAcrossSources(t *testing.T) {
	s1 := FromSlice([]*event.Event{
		{Time: 1, ID: 1, Type: "A"}, {Time: 4, ID: 4, Type: "A"}, {Time: 9, ID: 9, Type: "A"},
	})
	s2 := FromSlice([]*event.Event{
		{Time: 2, ID: 2, Type: "B"}, {Time: 4, ID: 5, Type: "B"},
	})
	s3 := FromSlice(nil)
	m := Merge(s1, s2, s3)
	var times []int64
	var last *event.Event
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		if last != nil && e.Before(last) {
			t.Fatalf("out of order: %v after %v", e, last)
		}
		last = e
		times = append(times, e.Time)
	}
	want := []int64{1, 2, 4, 4, 9}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestMergeRandomisedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		var srcs []Iterator
		total := 0
		for s := 0; s < 1+rng.Intn(4); s++ {
			var evs []*event.Event
			tm := int64(0)
			for i := 0; i < rng.Intn(20); i++ {
				tm += int64(rng.Intn(3))
				evs = append(evs, &event.Event{Time: tm, ID: int64(iter*1000 + s*100 + i)})
			}
			total += len(evs)
			srcs = append(srcs, FromSlice(evs))
		}
		m := Merge(srcs...)
		count := 0
		var last *event.Event
		for {
			e, ok := m.Next()
			if !ok {
				break
			}
			if last != nil && e.Time < last.Time {
				t.Fatalf("iter %d: out of order", iter)
			}
			last = e
			count++
		}
		if count != total {
			t.Fatalf("iter %d: merged %d of %d events", iter, count, total)
		}
	}
}

func TestSchedulerGroupsTransactions(t *testing.T) {
	evs := []*event.Event{
		{Time: 1}, {Time: 1}, {Time: 2}, {Time: 5}, {Time: 5}, {Time: 5},
	}
	s := NewScheduler(FromSlice(evs))
	var sizes []int
	var times []int64
	for {
		tx, ok := s.NextTransaction()
		if !ok {
			break
		}
		sizes = append(sizes, len(tx.Events))
		times = append(times, tx.Time)
	}
	if fmt.Sprint(sizes) != "[2 1 3]" || fmt.Sprint(times) != "[1 2 5]" {
		t.Errorf("sizes=%v times=%v", sizes, times)
	}
	if _, ok := s.NextTransaction(); ok {
		t.Error("scheduler not exhausted")
	}
}

func TestSchedulerEmptySource(t *testing.T) {
	s := NewScheduler(FromSlice(nil))
	if _, ok := s.NextTransaction(); ok {
		t.Error("empty source produced a transaction")
	}
}

// parallelQuery is a partitioned q1-style query.
func parallelQuery() *query.Query {
	return query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Max, Alias: "M", Attr: "rate"}).
		Semantics(query.Cont).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(50, 25).
		MustBuild()
}

func parallelStream(n, groups int) []*event.Event {
	rng := rand.New(rand.NewSource(42))
	var out []*event.Event
	tm := int64(0)
	for i := 0; i < n; i++ {
		tm += int64(rng.Intn(2))
		out = append(out, event.New("M", tm).
			WithSym("patient", fmt.Sprintf("p%d", rng.Intn(groups))).
			WithNum("rate", float64(50+rng.Intn(50))))
	}
	return out
}

// TestParallelMatchesSequential is the §8 correctness claim: stream
// partitioning preserves results exactly.
func TestParallelMatchesSequential(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	events := parallelStream(500, 7)

	seqEng := core.NewEngine(plan)
	for _, e := range events {
		if err := seqEng.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	want := seqEng.Close()

	for _, workers := range []int{1, 2, 4, 8} {
		p, err := NewParallelExecutor(plan, workers)
		if err != nil {
			t.Fatal(err)
		}
		cloned := make([]*event.Event, len(events))
		for i, e := range events {
			cloned[i] = e.Clone()
		}
		if err := p.Run(FromSlice(cloned)); err != nil {
			t.Fatal(err)
		}
		got, err := p.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Wid != want[i].Wid ||
				fmt.Sprint(got[i].Group) != fmt.Sprint(want[i].Group) ||
				!agg.Equal(got[i].Values, want[i].Values) {
				t.Fatalf("workers=%d: result %d differs:\n%v\n%v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParallelSkipsKeylessEvents(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p, err := NewParallelExecutor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Process(event.New("M", 1).WithNum("rate", 60)) // no patient attr
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Skipped() != 1 {
		t.Errorf("skipped = %d", p.Skipped())
	}
}

func TestParallelLifecycleErrors(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p, err := NewParallelExecutor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Process(event.New("M", 1).WithSym("patient", "p").WithNum("rate", 1)); err == nil {
		t.Error("Process after Close accepted")
	}
	if _, err := p.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

func TestParallelPropagatesEngineErrors(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p, err := NewParallelExecutor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tm int64) *event.Event {
		return event.New("M", tm).WithSym("patient", "p").WithNum("rate", 60)
	}
	p.Process(mk(10))
	p.Process(mk(5)) // out of order
	if _, err := p.Close(); err == nil {
		t.Error("out-of-order error not propagated")
	}
}

func TestParallelPeakBytes(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	p, err := NewParallelExecutor(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range parallelStream(200, 5) {
		p.Process(e)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.PeakBytes() <= 0 {
		t.Error("peak bytes not tracked")
	}
}

// multiQueries returns a heterogeneous query set for the multi-query
// executor: all partition by patient (the shared routing attribute),
// one adds a second partition attribute, and semantics span all three
// granularities.
func multiQueries() []*query.Query {
	return []*query.Query{
		parallelQuery(), // contiguous, pattern-grained
		query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "patient"}).
			GroupBy(query.GroupKey{Attr: "patient"}).
			Within(40, 40).
			MustBuild(),
		query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Min, Alias: "M", Attr: "rate"}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "patient"}).
			WhereEquiv(predicate.Equivalence{Attr: "ward"}).
			WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
			GroupBy(query.GroupKey{Attr: "patient"}).
			Within(60, 30).
			MustBuild(),
	}
}

func multiStream(n, groups int) []*event.Event {
	rng := rand.New(rand.NewSource(7))
	var out []*event.Event
	tm := int64(0)
	for i := 0; i < n; i++ {
		tm += int64(rng.Intn(2))
		out = append(out, event.New("M", tm).
			WithSym("patient", fmt.Sprintf("p%d", rng.Intn(groups))).
			WithSym("ward", fmt.Sprintf("w%d", rng.Intn(3))).
			WithNum("rate", float64(50+rng.Intn(50))))
	}
	return out
}

// TestMultiExecutorMatchesSoloEngines: the multi-query executor routes
// by the shared partition attributes and produces, per query, exactly
// the results of a solo engine run — for any worker count.
func TestMultiExecutorMatchesSoloEngines(t *testing.T) {
	queries := multiQueries()
	events := multiStream(600, 7)

	var want [][]core.Result
	for _, q := range queries {
		eng := core.NewEngine(core.MustPlan(q))
		for _, e := range events {
			if err := eng.Process(e.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		want = append(want, eng.Close())
	}

	for _, workers := range []int{1, 2, 4} {
		cat := core.NewCatalog()
		plans := make([]*core.Plan, len(queries))
		for i, q := range queries {
			var err error
			if plans[i], err = core.NewPlanIn(cat, q); err != nil {
				t.Fatal(err)
			}
		}
		m, err := NewMultiExecutor(plans, workers)
		if err != nil {
			t.Fatal(err)
		}
		var viaCallback []core.Result
		m.OnResult(1, func(r core.Result) { viaCallback = append(viaCallback, r) })
		cloned := make([]*event.Event, len(events))
		for i, e := range events {
			cloned[i] = e.Clone()
		}
		if err := m.Run(FromSlice(cloned)); err != nil {
			t.Fatal(err)
		}
		got, err := m.Close()
		if err != nil {
			t.Fatal(err)
		}
		got[1] = viaCallback // callback query returns through OnResult
		for qi := range queries {
			if fmt.Sprintf("%v", got[qi]) != fmt.Sprintf("%v", want[qi]) {
				t.Errorf("workers=%d query=%d: multi-executor diverges\ngot:  %v\nwant: %v",
					workers, qi, got[qi], want[qi])
			}
			if len(want[qi]) == 0 {
				t.Errorf("query %d produced no results; test is vacuous", qi)
			}
		}
	}
}

// TestMultiExecutorRejectsMixedCatalogs: plans must share a catalog.
func TestMultiExecutorRejectsMixedCatalogs(t *testing.T) {
	q := parallelQuery()
	a := core.MustPlan(q)
	b := core.MustPlan(q)
	if _, err := NewMultiExecutor([]*core.Plan{a, b}, 2); err == nil {
		t.Error("plans from different catalogs accepted")
	}
}

// TestSharedRouteAttrs pins the routing-attribute intersection rule.
func TestSharedRouteAttrs(t *testing.T) {
	cat := core.NewCatalog()
	mk := func(attrs ...string) *core.Plan {
		b := query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Any).
			Within(10, 10)
		for _, a := range attrs {
			b = b.WhereEquiv(predicate.Equivalence{Attr: a})
		}
		p, err := core.NewPlanIn(cat, b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	got := sharedRouteAttrs([]*core.Plan{mk("patient", "ward"), mk("ward", "room")})
	if fmt.Sprint(got) != "[ward]" {
		t.Errorf("sharedRouteAttrs = %v, want [ward]", got)
	}
	if got := sharedRouteAttrs([]*core.Plan{mk("patient"), mk()}); len(got) != 0 {
		t.Errorf("unpartitioned plan should clear the routing set, got %v", got)
	}
}

// TestMultiExecutorOnResultLifecycleGuards: OnResult must refuse to
// install a callback that can never fire (after Close) or for an
// unknown query, mirroring the Process-after-Close guard.
func TestMultiExecutorOnResultLifecycleGuards(t *testing.T) {
	plan := core.MustPlan(parallelQuery())
	m, err := NewMultiExecutor([]*core.Plan{plan}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.OnResult(1, func(core.Result) {}); err == nil {
		t.Error("OnResult for unknown query accepted")
	}
	if err := m.OnResult(0, func(core.Result) {}); err != nil {
		t.Errorf("OnResult before Close rejected: %v", err)
	}
	if _, err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.OnResult(0, func(core.Result) {}); err == nil {
		t.Error("OnResult after Close accepted")
	}
	if err := m.Process(event.New("M", 1)); err == nil {
		t.Error("Process after Close accepted")
	}
}

// TestMultiExecutorDynamicMembership: a query subscribed mid-stream on
// the executor joins every partition worker at one consistent stream
// position and, from its first fully covered window on, matches a solo
// engine fed the same suffix; unsubscribing flushes and returns the
// query's windows without disturbing the rest of the fleet.
func TestMultiExecutorDynamicMembership(t *testing.T) {
	queries := multiQueries()
	events := multiStream(600, 7)
	for i := range events {
		events[i].ID = int64(i + 1) // pre-assign: events fan out to workers
	}
	k := len(events) / 3
	joinTime := events[k-1].Time

	cat := core.NewCatalog()
	base, err := core.NewPlanIn(cat, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiExecutor([]*core.Plan{base}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events[:k] {
		if err := m.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	latePlan, err := core.NewPlanIn(cat, queries[1])
	if err != nil {
		t.Fatal(err)
	}
	late, err := m.SubscribePlan(latePlan)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events[k:] {
		if err := m.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	lateGot, err := late.Unsubscribe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := late.Unsubscribe(); err == nil {
		t.Error("double Unsubscribe accepted")
	}
	results, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Reference for the late joiner: a solo engine over the suffix,
	// keeping only fully covered windows (start strictly after the
	// join watermark).
	eng := core.NewEngine(core.MustPlan(queries[1]))
	for _, e := range events[k:] {
		if err := eng.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	var lateWant []core.Result
	for _, r := range eng.Close() {
		if r.Start > joinTime {
			lateWant = append(lateWant, r)
		}
	}
	if fmt.Sprintf("%v", lateGot) != fmt.Sprintf("%v", lateWant) {
		t.Errorf("late joiner diverges from suffix solo run\ngot:  %v\nwant: %v", lateGot, lateWant)
	}
	if len(lateWant) == 0 {
		t.Error("late joiner produced no results; test is vacuous")
	}

	// The founding query must be untouched by the membership changes.
	ref := core.NewEngine(core.MustPlan(queries[0]))
	for _, e := range events {
		if err := ref.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := fmt.Sprintf("%v", results[0]), fmt.Sprintf("%v", ref.Close()); got != want {
		t.Errorf("founding query diverges after churn\ngot:  %v\nwant: %v", got, want)
	}
}

// TestMultiExecutorLocalityFallback: a mid-stream query whose
// partition keys do not cover the frozen routing attributes is hosted
// on the dedicated full-stream worker and still produces exactly the
// solo-engine suffix results.
func TestMultiExecutorLocalityFallback(t *testing.T) {
	events := multiStream(600, 7)
	for i := range events {
		events[i].ID = int64(i + 1)
	}
	k := len(events) / 2
	joinTime := events[k-1].Time

	cat := core.NewCatalog()
	base, err := core.NewPlanIn(cat, parallelQuery()) // routes on [patient]
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiExecutor([]*core.Plan{base}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events[:k] {
		if err := m.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	// Keyed on ward only: [patient] is not covered, locality breaks.
	wardQ := query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "ward"}).
		GroupBy(query.GroupKey{Attr: "ward"}).
		Within(40, 40).
		MustBuild()
	wardPlan, err := core.NewPlanIn(cat, wardQ)
	if err != nil {
		t.Fatal(err)
	}
	ward, err := m.SubscribePlan(wardPlan)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 5 { // 4 partition workers + full-stream fallback
		t.Errorf("workers = %d, want 5 (fallback running)", st.Workers)
	}
	for _, e := range events[k:] {
		if err := m.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	stBefore, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wardGot, err := ward.Unsubscribe()
	if err != nil {
		t.Fatal(err)
	}
	// The fallback worker retires with its last subscriber: the stream
	// stops paying the duplicate delivery — but the fleet peak stays a
	// monotone high-water mark.
	st, err = m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Errorf("workers after fallback retirement = %d, want 4", st.Workers)
	}
	if st.PeakBytes < stBefore.PeakBytes {
		t.Errorf("peak regressed across retirement: %d -> %d", stBefore.PeakBytes, st.PeakBytes)
	}
	if _, err := m.Close(); err != nil {
		t.Fatal(err)
	}

	eng := core.NewEngine(core.MustPlan(wardQ))
	for _, e := range events[k:] {
		if err := eng.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	var want []core.Result
	for _, r := range eng.Close() {
		if r.Start > joinTime {
			want = append(want, r)
		}
	}
	if got := fmt.Sprintf("%v", wardGot); got != fmt.Sprintf("%v", want) {
		t.Errorf("fallback-hosted query diverges\ngot:  %v\nwant: %v", got, want)
	}
	if len(want) == 0 {
		t.Error("fallback query produced no results; test is vacuous")
	}
}
