package stream

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// ParallelExecutor exploits the stream partitioning of §7/§8:
// equivalence predicates and grouping split the stream into
// non-overlapping sub-streams, each processed by its own COGRA engine
// on a worker goroutine. Events are routed by hashing the partition
// key, so each worker sees an in-order sub-stream and no cross-worker
// coordination is needed; results are merged and re-ordered on Close.
type ParallelExecutor struct {
	plan    *core.Plan
	workers []*worker
	skipped int64
	closed  bool
}

type worker struct {
	in      chan *event.Event
	done    chan struct{}
	engine  *core.Engine
	acct    metrics.Accountant
	results []core.Result
	err     error
}

// NewParallelExecutor starts n workers (n >= 1). A plan without
// partition keys yields a single worker, since an unpartitioned
// stream has a single sub-stream.
func NewParallelExecutor(plan *core.Plan, n int) *ParallelExecutor {
	if n < 1 || len(plan.StreamKeys) == 0 {
		n = 1
	}
	p := &ParallelExecutor{plan: plan}
	for i := 0; i < n; i++ {
		w := &worker{
			in:   make(chan *event.Event, 1024),
			done: make(chan struct{}),
		}
		w.engine = core.NewEngine(plan, core.WithAccountant(&w.acct))
		p.workers = append(p.workers, w)
		go w.run()
	}
	return p
}

func (w *worker) run() {
	defer close(w.done)
	for e := range w.in {
		if w.err != nil {
			continue // drain after failure
		}
		w.err = w.engine.Process(e)
	}
	if w.err == nil {
		w.results = w.engine.Close()
	}
}

// Process routes one event to its partition's worker. Events without
// a partition key are counted and dropped (they belong to no
// sub-stream).
func (p *ParallelExecutor) Process(e *event.Event) error {
	if p.closed {
		return fmt.Errorf("stream: Process after Close")
	}
	key, ok := p.plan.StreamKeyOf(e)
	if !ok {
		p.skipped++
		return nil
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	w := p.workers[int(h.Sum32())%len(p.workers)]
	w.in <- e
	return nil
}

// Run consumes an entire ordered source.
func (p *ParallelExecutor) Run(src Iterator) error {
	var seq int64
	for {
		e, ok := src.Next()
		if !ok {
			return nil
		}
		seq++
		if e.ID == 0 {
			e.ID = seq
		}
		if err := p.Process(e); err != nil {
			return err
		}
	}
}

// Close drains the workers and returns all results ordered by window
// then group, exactly like a single engine would emit them.
func (p *ParallelExecutor) Close() ([]core.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("stream: double Close")
	}
	p.closed = true
	var wg sync.WaitGroup
	for _, w := range p.workers {
		close(w.in)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			<-w.done
		}(w)
	}
	wg.Wait()
	var out []core.Result
	for _, w := range p.workers {
		if w.err != nil {
			return nil, w.err
		}
		out = append(out, w.results...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wid != out[j].Wid {
			return out[i].Wid < out[j].Wid
		}
		return strings.Join(out[i].Group, "\x00") < strings.Join(out[j].Group, "\x00")
	})
	return out, nil
}

// Skipped returns the number of events without a partition key.
func (p *ParallelExecutor) Skipped() int64 { return p.skipped }

// PeakBytes returns the summed logical peak memory across workers.
func (p *ParallelExecutor) PeakBytes() int64 {
	var total int64
	for _, w := range p.workers {
		total += w.acct.Peak()
	}
	return total
}
