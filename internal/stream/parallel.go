package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// routeBatchSize is how many events the router accumulates per worker
// before handing the batch over; it amortises channel synchronisation
// over bursts while keeping per-worker latency bounded.
const routeBatchSize = 256

// ParallelExecutor exploits the stream partitioning of §7/§8:
// equivalence predicates and grouping split the stream into
// non-overlapping sub-streams, each processed by its own COGRA engine
// on a worker goroutine. Events are routed by hashing the partition
// key, so each worker sees an in-order sub-stream and no cross-worker
// coordination is needed; results are merged and re-ordered on Close.
//
// The routing hot path is allocation-free: the partition key is
// appended into a reused buffer, hashed with an inlined FNV-1a loop,
// and events travel in pooled batches instead of one channel send per
// event.
type ParallelExecutor struct {
	plan    *core.Plan
	workers []*worker
	pending []*[]*event.Event // per-worker batch under construction
	keyBuf  []byte
	pool    sync.Pool
	skipped int64
	closed  bool
}

type worker struct {
	in      chan *[]*event.Event
	done    chan struct{}
	pool    *sync.Pool
	engine  *core.Engine
	acct    metrics.Accountant
	results []core.Result
	err     error
}

// NewParallelExecutor starts n workers (n >= 1). A plan without
// partition keys yields a single worker, since an unpartitioned
// stream has a single sub-stream.
func NewParallelExecutor(plan *core.Plan, n int) *ParallelExecutor {
	if n < 1 || len(plan.StreamKeys) == 0 {
		n = 1
	}
	p := &ParallelExecutor{plan: plan}
	p.pool.New = func() any {
		b := make([]*event.Event, 0, routeBatchSize)
		return &b
	}
	p.pending = make([]*[]*event.Event, n)
	for i := 0; i < n; i++ {
		w := &worker{
			in:   make(chan *[]*event.Event, 16),
			done: make(chan struct{}),
			pool: &p.pool,
		}
		w.engine = core.NewEngine(plan, core.WithAccountant(&w.acct))
		p.workers = append(p.workers, w)
		go w.run()
	}
	return p
}

func (w *worker) run() {
	defer close(w.done)
	for batch := range w.in {
		if w.err == nil {
			for _, e := range *batch {
				if w.err = w.engine.Process(e); w.err != nil {
					break // drain after failure
				}
			}
		}
		*batch = (*batch)[:0]
		w.pool.Put(batch)
	}
	if w.err == nil {
		w.results = w.engine.Close()
	}
}

// fnv1a is the 32-bit FNV-1a hash, inlined so routing does not
// allocate a hasher per event (it matches hash/fnv exactly).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Process routes one event to its partition's worker. Events without
// a partition key are counted and dropped (they belong to no
// sub-stream). Events are delivered in batches; Close flushes any
// partial batch.
func (p *ParallelExecutor) Process(e *event.Event) error {
	if p.closed {
		return fmt.Errorf("stream: Process after Close")
	}
	keyBuf, ok := p.plan.AppendStreamKey(p.keyBuf[:0], e)
	p.keyBuf = keyBuf
	if !ok {
		p.skipped++
		return nil
	}
	wi := int(fnv1a(keyBuf) % uint32(len(p.workers)))
	batch := p.pending[wi]
	if batch == nil {
		batch = p.pool.Get().(*[]*event.Event)
		p.pending[wi] = batch
	}
	*batch = append(*batch, e)
	if len(*batch) >= routeBatchSize {
		p.workers[wi].in <- batch
		p.pending[wi] = nil
	}
	return nil
}

// Run consumes an entire ordered source.
func (p *ParallelExecutor) Run(src Iterator) error {
	var seq int64
	for {
		e, ok := src.Next()
		if !ok {
			return nil
		}
		seq++
		if e.ID == 0 {
			e.ID = seq
		}
		if err := p.Process(e); err != nil {
			return err
		}
	}
}

// Close flushes pending batches, drains the workers and returns all
// results ordered by window then group, exactly like a single engine
// would emit them.
func (p *ParallelExecutor) Close() ([]core.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("stream: double Close")
	}
	p.closed = true
	var wg sync.WaitGroup
	for i, w := range p.workers {
		if batch := p.pending[i]; batch != nil && len(*batch) > 0 {
			w.in <- batch
			p.pending[i] = nil
		}
		close(w.in)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			<-w.done
		}(w)
	}
	wg.Wait()
	var out []core.Result
	for _, w := range p.workers {
		if w.err != nil {
			return nil, w.err
		}
		out = append(out, w.results...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wid != out[j].Wid {
			return out[i].Wid < out[j].Wid
		}
		return strings.Join(out[i].Group, "\x00") < strings.Join(out[j].Group, "\x00")
	})
	return out, nil
}

// Skipped returns the number of events without a partition key.
func (p *ParallelExecutor) Skipped() int64 { return p.skipped }

// PeakBytes returns the summed logical peak memory across workers.
func (p *ParallelExecutor) PeakBytes() int64 {
	var total int64
	for _, w := range p.workers {
		total += w.acct.Peak()
	}
	return total
}
