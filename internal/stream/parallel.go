package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/runtime"
)

// routeBatchSize is how many events the router accumulates per worker
// before handing the batch over; it amortises channel synchronisation
// over bursts while keeping per-worker latency bounded.
const routeBatchSize = 256

// MultiExecutor exploits the stream partitioning of §7/§8 for a whole
// set of queries at once: every worker goroutine hosts one shared
// multi-query runtime (internal/runtime) executing all plans, and
// events are routed by hashing the partition attributes the plans have
// in common. Because the routing attributes are a subset of every
// plan's partition key, all events of any plan's sub-stream land on
// the same worker in order — no cross-worker coordination is needed,
// and each hosted engine sees exactly the sub-streams a solo run
// would. Per-query results are merged and re-ordered on Close.
//
// Routing degenerates to a single worker when the hosted plans share
// no partition attribute (some plan has an unpartitioned stream, or
// the intersection is empty): the stream then has sub-streams that
// only a single in-order pass preserves for every plan.
//
// The routing hot path is allocation-free: the routing key is appended
// into a reused buffer, hashed with an inlined FNV-1a loop, and events
// travel in pooled batches instead of one channel send per event.
type MultiExecutor struct {
	plans      []*core.Plan
	routeAttrs []string
	workers    []*mworker
	pending    []*[]*event.Event // per-worker batch under construction
	keyBuf     []byte
	pool       sync.Pool
	callbacks  []func(core.Result)
	skipped    int64
	closed     bool
}

type mworker struct {
	in   chan *[]*event.Event
	done chan struct{}
	pool *sync.Pool
	rt   *runtime.Runtime
	// acct is shared by every query the worker hosts (they run on one
	// goroutine), so the worker peak is a true simultaneous footprint.
	acct    metrics.Accountant
	results [][]core.Result
	err     error
}

// NewMultiExecutor starts n workers (n >= 1) executing all plans over
// one stream. The plans must be compiled against one shared catalog
// (core.NewPlanIn), so each worker resolves every event once for all
// of them.
func NewMultiExecutor(plans []*core.Plan, n int) (*MultiExecutor, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("stream: no plans")
	}
	cat := plans[0].Catalog()
	for i, plan := range plans[1:] {
		if plan.Catalog() != cat {
			return nil, fmt.Errorf("stream: plan %d compiled against a different catalog (use core.NewPlanIn with one shared catalog)", i+1)
		}
	}
	p := &MultiExecutor{
		plans:      plans,
		routeAttrs: sharedRouteAttrs(plans),
		callbacks:  make([]func(core.Result), len(plans)),
	}
	if n < 1 || len(p.routeAttrs) == 0 {
		n = 1
	}
	p.pool.New = func() any {
		b := make([]*event.Event, 0, routeBatchSize)
		return &b
	}
	p.pending = make([]*[]*event.Event, n)
	for i := 0; i < n; i++ {
		w := &mworker{
			in:   make(chan *[]*event.Event, 16),
			done: make(chan struct{}),
			pool: &p.pool,
			rt:   runtime.NewOn(cat),
		}
		for _, plan := range plans {
			if _, err := w.rt.SubscribePlan(plan, core.WithAccountant(&w.acct)); err != nil {
				return nil, err
			}
		}
		p.workers = append(p.workers, w)
	}
	// Goroutines start only after every worker subscribed successfully,
	// so an error return above cannot strand a blocked worker.
	for _, w := range p.workers {
		go w.run()
	}
	return p, nil
}

// sharedRouteAttrs returns the partition attributes common to every
// plan, in the first plan's declaration order. The routing key is a
// function of every plan's full partition key (the routing attributes
// are a subset of each plan's StreamKeys), so all events of any one
// sub-stream hash identically and stay worker-local; one routing value
// may still fan out into several sub-streams of a plan with extra
// partition attributes, which is harmless.
func sharedRouteAttrs(plans []*core.Plan) []string {
	var out []string
	for _, attr := range plans[0].StreamKeys {
		inAll := true
		for _, plan := range plans[1:] {
			found := false
			for _, a := range plan.StreamKeys {
				if a == attr {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, attr)
		}
	}
	return out
}

func (w *mworker) run() {
	defer close(w.done)
	for batch := range w.in {
		if w.err == nil {
			for _, e := range *batch {
				if w.err = w.rt.Process(e); w.err != nil {
					break // drain after failure
				}
			}
		}
		*batch = (*batch)[:0]
		w.pool.Put(batch)
	}
	if w.err == nil {
		w.results = w.rt.Close()
	}
}

// fnv1a is the 32-bit FNV-1a hash, inlined so routing does not
// allocate a hasher per event (it matches hash/fnv exactly).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// OnResult installs a result callback for one hosted query (by its
// index in the plans slice). Close delivers the query's merged,
// re-ordered results to the callback instead of returning them. Must
// be called before Close.
func (p *MultiExecutor) OnResult(qi int, fn func(core.Result)) {
	p.callbacks[qi] = fn
}

// Process routes one event to its partition's worker. Events missing
// a shared routing attribute are counted and dropped — such an event
// lacks part of every plan's partition key, so no plan's engine would
// admit it to a sub-stream. Events are delivered in batches; Close
// flushes any partial batch.
func (p *MultiExecutor) Process(e *event.Event) error {
	if p.closed {
		return fmt.Errorf("stream: Process after Close")
	}
	wi := 0
	if len(p.routeAttrs) > 0 {
		keyBuf, ok := core.AppendEventKey(p.keyBuf[:0], e, p.routeAttrs)
		p.keyBuf = keyBuf
		if !ok {
			p.skipped++
			return nil
		}
		wi = int(fnv1a(keyBuf) % uint32(len(p.workers)))
	}
	batch := p.pending[wi]
	if batch == nil {
		batch = p.pool.Get().(*[]*event.Event)
		p.pending[wi] = batch
	}
	*batch = append(*batch, e)
	if len(*batch) >= routeBatchSize {
		p.workers[wi].in <- batch
		p.pending[wi] = nil
	}
	return nil
}

// Run consumes an entire ordered source.
func (p *MultiExecutor) Run(src Iterator) error {
	var seq int64
	for {
		e, ok := src.Next()
		if !ok {
			return nil
		}
		seq++
		if e.ID == 0 {
			e.ID = seq
		}
		if err := p.Process(e); err != nil {
			return err
		}
	}
}

// Close flushes pending batches, drains the workers and returns each
// query's results ordered by window then group, exactly like a single
// engine would emit them — indexed by the query's position in the
// plans slice. Queries with an OnResult callback receive their results
// through it (their slot is nil).
func (p *MultiExecutor) Close() ([][]core.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("stream: double Close")
	}
	p.closed = true
	var wg sync.WaitGroup
	for i, w := range p.workers {
		if batch := p.pending[i]; batch != nil && len(*batch) > 0 {
			w.in <- batch
			p.pending[i] = nil
		}
		close(w.in)
		wg.Add(1)
		go func(w *mworker) {
			defer wg.Done()
			<-w.done
		}(w)
	}
	wg.Wait()
	for _, w := range p.workers {
		if w.err != nil {
			return nil, w.err
		}
	}
	out := make([][]core.Result, len(p.plans))
	for qi := range p.plans {
		var merged []core.Result
		for _, w := range p.workers {
			merged = append(merged, w.results[qi]...)
		}
		sortResults(merged)
		if cb := p.callbacks[qi]; cb != nil {
			for _, r := range merged {
				cb(r)
			}
			continue
		}
		out[qi] = merged
	}
	return out, nil
}

// sortResults orders merged per-worker results by window then group,
// the order a single engine emits.
func sortResults(out []core.Result) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wid != out[j].Wid {
			return out[i].Wid < out[j].Wid
		}
		return strings.Join(out[i].Group, "\x00") < strings.Join(out[j].Group, "\x00")
	})
}

// Skipped returns the number of events without a routing key.
func (p *MultiExecutor) Skipped() int64 { return p.skipped }

// Workers returns the actual worker count — 1 when the hosted plans
// share no partition attribute, regardless of what was requested.
func (p *MultiExecutor) Workers() int { return len(p.workers) }

// PeakBytes returns the summed logical peak memory across workers.
// Each worker's peak covers all queries it hosts simultaneously;
// worker peaks may occur at different times, so the sum is an upper
// bound on the fleet-wide footprint (as for ParallelExecutor).
func (p *MultiExecutor) PeakBytes() int64 {
	var total int64
	for _, w := range p.workers {
		total += w.acct.Peak()
	}
	return total
}

// ParallelExecutor runs one plan partition-parallel: the single-query
// special case of MultiExecutor, kept as its own type for the public
// API (§8, "Parallel Processing"). Each worker hosts the plan's engine
// behind a one-query runtime; routing hashes the plan's own partition
// key, so results are byte-identical to a solo engine run.
type ParallelExecutor struct {
	m *MultiExecutor
}

// NewParallelExecutor starts n workers (n >= 1). A plan without
// partition keys yields a single worker, since an unpartitioned
// stream has a single sub-stream.
func NewParallelExecutor(plan *core.Plan, n int) *ParallelExecutor {
	m, err := NewMultiExecutor([]*core.Plan{plan}, n)
	if err != nil {
		panic(err) // unreachable: one plan always shares its catalog
	}
	return &ParallelExecutor{m: m}
}

// Process routes one event to its partition's worker.
func (p *ParallelExecutor) Process(e *event.Event) error { return p.m.Process(e) }

// Run consumes an entire ordered source.
func (p *ParallelExecutor) Run(src Iterator) error { return p.m.Run(src) }

// Close flushes pending batches, drains the workers and returns all
// results ordered by window then group, exactly like a single engine
// would emit them.
func (p *ParallelExecutor) Close() ([]core.Result, error) {
	out, err := p.m.Close()
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Skipped returns the number of events without a partition key.
func (p *ParallelExecutor) Skipped() int64 { return p.m.Skipped() }

// Workers returns the actual worker count (1 for unpartitioned plans).
func (p *ParallelExecutor) Workers() int { return p.m.Workers() }

// PeakBytes returns the summed logical peak memory across workers.
func (p *ParallelExecutor) PeakBytes() int64 { return p.m.PeakBytes() }
