package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/runtime"
)

// routeBatchSize is how many events the router accumulates per worker
// before handing the batch over; it amortises channel synchronisation
// over bursts while keeping per-worker latency bounded.
const routeBatchSize = 256

// MultiExecutor exploits the stream partitioning of §7/§8 for a whole
// set of queries at once: every worker goroutine hosts one shared
// multi-query runtime (internal/runtime) executing the fleet, and
// events are routed by hashing the partition attributes the hosted
// plans have in common. Because the routing attributes are a subset of
// every plan's partition key, all events of any plan's sub-stream land
// on the same worker in order — no cross-worker coordination is
// needed, and each hosted engine sees exactly the sub-streams a solo
// run would. Per-query results are merged and re-ordered on Close.
//
// The query population is dynamic. SubscribePlan and Sub.Unsubscribe
// may be called at any stream position; membership changes travel to
// the workers over the same channels as the events (a control-plane
// message ordered after every event routed so far), so all workers
// apply them at one consistent stream prefix. A mid-stream subscriber
// is aligned to the router's watermark and reports results from the
// first fully covered window.
//
// Routing attributes are recomputed freely while no event has been
// routed. Once the stream is running the routing function is frozen
// (worker state depends on it); a late plan whose partition keys still
// cover the routing attributes joins every partition worker, and a
// late plan that breaks worker-locality (its key set does not cover
// the routing attributes) falls back to an executor group: a lazily
// started extra worker that receives every event in order and hosts
// locality-breaking subscribers. Up to k such groups run side by side
// (SetExecutorGroups); fallback plans are clustered onto groups by
// compatible partition attributes — same partition-key signature, same
// group, so plans that window the stream identically share one resolve
// pass, while incompatible fleets spread across groups and execute in
// parallel. The fallback preserves correctness for everyone at the
// cost of streaming each event once per group in addition to its
// partition worker. A group whose last subscriber leaves is retired at
// the next membership change or Sync barrier, so a shrunk fleet stops
// paying duplicate event delivery.
//
// Routing degenerates to a single worker when the hosted plans share
// no partition attribute (some plan has an unpartitioned stream, or
// the intersection is empty): the stream then has sub-streams that
// only a single in-order pass preserves for every plan.
//
// The routing hot path is allocation-free: the routing key is appended
// into a reused buffer, hashed with an inlined FNV-1a loop, and events
// travel in pooled batches instead of one channel send per event.
type MultiExecutor struct {
	cat        *core.Catalog
	engOpts    []core.Option // applied to every hosted engine (e.g. intern eviction)
	routeAttrs []string
	workers    []*mworker
	// Executor groups: lazily created full-stream workers hosting the
	// locality-breaking subscribers, clustered by partition-key
	// signature (groupSigs, parallel to groups). maxGroups caps how many
	// run side by side; empty groups are retired at membership changes
	// and Sync barriers.
	groups      []*mworker
	groupSigs   []string
	groupPend   []*[]*event.Event
	maxGroups   int
	pending     []*[]*event.Event // per-worker batch under construction
	keyBuf      []byte
	pool        sync.Pool
	subs        []*Sub // every subscription ever, indexed by id
	seq         int64
	lastTime    int64
	sawEvent    bool
	skipped     int64
	retiredPeak int64 // summed peaks of retired fallback workers
	// shared marks that every worker runtime (including ones started
	// later) runs with shared aggregation enabled; retiredFlips and
	// retiredSaved keep the flip counters of retired fallback workers,
	// mirroring retiredPeak.
	shared       bool
	retiredFlips int64
	retiredSaved int64
	closed       bool
}

// Sub is one query hosted by a MultiExecutor: the executor-level
// subscription handle, spanning the per-worker runtime subscriptions.
type Sub struct {
	m      *MultiExecutor
	id     int
	plan   *core.Plan
	cb     func(core.Result)
	active bool
	hosts  []*mworker
	wsubs  []*runtime.Subscription // parallel to hosts
}

// ID returns the subscription's id: 0-based, in subscribe order
// (constructor plans keep their slice positions).
func (s *Sub) ID() int { return s.id }

// Plan returns the hosted plan.
func (s *Sub) Plan() *core.Plan { return s.plan }

// Active reports whether the subscription still receives events.
func (s *Sub) Active() bool { return s.active }

// Unsubscribe detaches the query at the current stream position: every
// hosting worker flushes its remaining open windows, the merged
// results are returned (or delivered to the subscription's callback),
// and the query's engines and binding intern memory are released.
func (s *Sub) Unsubscribe() ([]core.Result, error) { return s.m.unsubscribe(s) }

// Drain returns the results whose windows have closed since the last
// Drain, merged across workers and ordered by window then group, and
// clears them from the workers (delivered to the callback instead when
// one is installed). Workers at different stream positions may close
// windows at different times, so consecutive drains of a parallel run
// are each internally ordered but may interleave across calls.
func (s *Sub) Drain() ([]core.Result, error) { return s.m.drain(s) }

type mworker struct {
	in      chan wmsg
	done    chan struct{}
	pool    *sync.Pool
	rt      *runtime.Runtime
	engOpts []core.Option
	// acct is shared by every query the worker hosts (they run on one
	// goroutine), so the worker peak is a true simultaneous footprint.
	acct    metrics.Accountant
	results [][]core.Result
	err     error
}

// wmsg is one unit of worker input: an event batch, or a control-plane
// message ordered against the batches on the same channel.
type wmsg struct {
	batch *[]*event.Event
	ctl   *ctlMsg
}

type ctlOp int

const (
	ctlSubscribe ctlOp = iota
	ctlUnsubscribe
	ctlDrain
	ctlStats
	ctlShare
)

// ctlMsg asks a worker to change or report its hosted state at the
// current position of its input channel. The worker always replies
// exactly once.
type ctlMsg struct {
	op       ctlOp
	plan     *core.Plan
	align    int64
	hasAlign bool
	wsub     *runtime.Subscription
	reply    chan ctlReply
}

type ctlReply struct {
	wsub         *runtime.Subscription
	results      []core.Result
	intern       int64
	peak         int64
	sharedGroups int
	shareFlips   int64
	sharedSaved  int64
	err          error
}

// NewMultiExecutor starts n workers (n >= 1) executing all plans over
// one stream. The plans must be compiled against one shared catalog
// (core.NewPlanIn), so each worker resolves every event once for all
// of them. Further queries may subscribe (and any query unsubscribe)
// while the stream runs.
func NewMultiExecutor(plans []*core.Plan, n int) (*MultiExecutor, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("stream: no plans")
	}
	cat := plans[0].Catalog()
	for i, plan := range plans[1:] {
		if plan.Catalog() != cat {
			return nil, fmt.Errorf("stream: plan %d compiled against a different catalog (use core.NewPlanIn with one shared catalog): %w", i+1, core.ErrNotHosted)
		}
	}
	m := &MultiExecutor{
		cat:        cat,
		routeAttrs: sharedRouteAttrs(plans),
		maxGroups:  1,
	}
	if n < 1 || len(m.routeAttrs) == 0 {
		n = 1
	}
	m.pool.New = func() any {
		b := make([]*event.Event, 0, routeBatchSize)
		return &b
	}
	m.pending = make([]*[]*event.Event, n)
	for i := 0; i < n; i++ {
		m.workers = append(m.workers, m.newWorker())
	}
	for _, plan := range plans {
		if _, err := m.SubscribePlan(plan); err != nil {
			m.shutdown()
			return nil, err
		}
	}
	return m, nil
}

// NewMultiExecutorOn starts an EMPTY executor with n workers (n >= 1)
// over an existing catalog — the serving-shaped entry point behind the
// public Session API, where the query population is entirely dynamic.
// Unlike NewMultiExecutor, the worker count is kept as requested even
// while the (changing) fleet shares no routing attribute: routing then
// sends every event to worker 0 and the others idle, so a membership
// change arriving before the first event can still spread the stream
// over all n. (Once an event has flowed the routing function is
// frozen — see the type comment — so a collapsed stream stays on
// worker 0 for its lifetime.)
//
// engOpts are applied to every engine the executor's workers create
// (each worker adds its own accountant after them), so session-wide
// engine policies like core.WithInternEviction reach parallel mode.
func NewMultiExecutorOn(cat *core.Catalog, n int, engOpts ...core.Option) *MultiExecutor {
	if n < 1 {
		n = 1
	}
	m := &MultiExecutor{cat: cat, engOpts: engOpts, maxGroups: 1}
	m.pool.New = func() any {
		b := make([]*event.Event, 0, routeBatchSize)
		return &b
	}
	m.pending = make([]*[]*event.Event, n)
	for i := 0; i < n; i++ {
		m.workers = append(m.workers, m.newWorker())
	}
	return m
}

// newWorker builds and starts one worker goroutine.
func (m *MultiExecutor) newWorker() *mworker {
	w := &mworker{
		in:      make(chan wmsg, 16),
		done:    make(chan struct{}),
		pool:    &m.pool,
		rt:      runtime.NewOn(m.cat),
		engOpts: m.engOpts,
	}
	if m.shared {
		// Enabled before the goroutine starts, so the worker never
		// observes the runtime flipping under it.
		w.rt.EnableSharedAggregation(w.hostOpts()...)
	}
	go w.run()
	return w
}

// hostOpts returns the engine options for engines the worker's runtime
// creates on its own behalf (sharing-group hosts): the executor-wide
// policies plus the worker's accountant, exactly like a subscriber's
// engine.
func (w *mworker) hostOpts() []core.Option {
	return append(append([]core.Option(nil), w.engOpts...), core.WithAccountant(&w.acct))
}

// EnableSharedAggregation turns runtime share/unshare decisions on in
// every worker runtime — current and future (lazily started executor
// groups inherit the setting). Call it before subscribing plans;
// queries hosted earlier never join a sharing group. Each worker takes
// its share/unshare decisions independently, so flip boundaries may
// differ across workers; per-worker results are byte-identical to an
// unshared run, and the Close-time merge is unchanged.
func (m *MultiExecutor) EnableSharedAggregation() {
	if m.shared || m.closed {
		return
	}
	m.shared = true
	m.flushPending()
	for _, w := range m.allWorkers() {
		ctl := &ctlMsg{op: ctlShare, reply: make(chan ctlReply, 1)}
		w.in <- wmsg{ctl: ctl}
		<-ctl.reply
	}
}

// shutdown closes every worker channel and waits; used on constructor
// failure before any event flowed.
func (m *MultiExecutor) shutdown() {
	m.closed = true
	for _, w := range m.allWorkers() {
		close(w.in)
	}
	for _, w := range m.allWorkers() {
		<-w.done
	}
}

// SetExecutorGroups caps how many executor groups may run side by
// side (k >= 1; the default is 1, the single-fallback-worker
// behaviour). Groups start lazily when a locality-breaking plan
// subscribes, so raising the cap takes effect for future subscribes;
// lowering it never disturbs groups already hosting subscribers —
// they shrink only by retirement when their last subscriber leaves.
func (m *MultiExecutor) SetExecutorGroups(k int) {
	if k < 1 {
		k = 1
	}
	m.maxGroups = k
}

// allWorkers returns the partition workers plus the executor groups.
func (m *MultiExecutor) allWorkers() []*mworker {
	if len(m.groups) == 0 {
		return m.workers
	}
	return append(append([]*mworker(nil), m.workers...), m.groups...)
}

// activePlans returns the plans of the active subscriptions.
func (m *MultiExecutor) activePlans() []*core.Plan {
	var out []*core.Plan
	for _, s := range m.subs {
		if s.active {
			out = append(out, s.plan)
		}
	}
	return out
}

// SubscribeOpt configures one executor-level subscription.
type SubscribeOpt func(*subOpts)

type subOpts struct {
	strict bool
}

// StrictRouting rejects the subscription with ErrFrozenRouting instead
// of falling back to an executor group when the routing is frozen and
// the plan's partition keys do not cover the routing attributes. The
// fallback preserves correctness but streams every event to the
// hosting group in addition to its partition worker; strict callers
// prefer the explicit error.
func StrictRouting() SubscribeOpt {
	return func(o *subOpts) { o.strict = true }
}

// SubscribePlan hosts an additional compiled plan, at any stream
// position. The plan must share the executor's catalog (compile with
// core.NewPlanIn against Catalog()). Before the first event the
// routing attributes are recomputed over the new fleet; mid-stream the
// routing is frozen, and the plan either joins every partition worker
// (its partition keys cover the routing attributes — sub-streams stay
// worker-local) or falls back to an executor group clustered by its
// partition-key signature (rejected with ErrFrozenRouting under
// StrictRouting). The
// subscription takes effect at one consistent stream position on
// every worker: after every event routed so far, before any event
// routed later.
func (m *MultiExecutor) SubscribePlan(plan *core.Plan, opts ...SubscribeOpt) (*Sub, error) {
	if m.closed {
		return nil, fmt.Errorf("stream: Subscribe after Close: %w", core.ErrClosed)
	}
	if plan.Catalog() != m.cat {
		return nil, fmt.Errorf("stream: plan compiled against a different catalog (use core.NewPlanIn with the executor's catalog): %w", core.ErrNotHosted)
	}
	var o subOpts
	for _, opt := range opts {
		opt(&o)
	}
	var hosts []*mworker
	switch {
	case !m.sawEvent:
		m.routeAttrs = sharedRouteAttrs(append(m.activePlans(), plan))
		hosts = m.workers
	case attrsCovered(m.routeAttrs, plan.StreamKeys):
		hosts = m.workers
	default:
		if o.strict {
			return nil, fmt.Errorf("stream: partition keys %v do not cover the frozen routing attributes %v: %w",
				plan.StreamKeys, m.routeAttrs, core.ErrFrozenRouting)
		}
		hosts = []*mworker{m.groupFor(plan)}
	}
	m.flushPending()
	sub := &Sub{m: m, id: len(m.subs), plan: plan, active: true, hosts: hosts}
	for _, w := range hosts {
		ctl := &ctlMsg{op: ctlSubscribe, plan: plan, reply: make(chan ctlReply, 1)}
		if m.sawEvent {
			ctl.align, ctl.hasAlign = m.lastTime, true
		}
		w.in <- wmsg{ctl: ctl}
		rep := <-ctl.reply
		if rep.err != nil {
			// Roll back the workers that already subscribed.
			for i, prev := range sub.hosts[:len(sub.wsubs)] {
				ctl := &ctlMsg{op: ctlUnsubscribe, wsub: sub.wsubs[i], reply: make(chan ctlReply, 1)}
				prev.in <- wmsg{ctl: ctl}
				<-ctl.reply
			}
			return nil, rep.err
		}
		sub.wsubs = append(sub.wsubs, rep.wsub)
	}
	m.subs = append(m.subs, sub)
	return sub, nil
}

// groupSig is a plan's clustering signature: its partition attributes,
// sorted and NUL-joined. Two plans with the same signature window the
// stream into the same sub-stream universe, so hosting them on one
// group shares the resolve pass and dispatch index.
func groupSig(plan *core.Plan) string {
	keys := append([]string(nil), plan.StreamKeys...)
	sort.Strings(keys)
	return strings.Join(keys, "\x00")
}

// groupFor picks (or starts) the executor group hosting a
// locality-breaking plan: an existing group with the same
// partition-key signature if one runs, a fresh group while the cap
// (SetExecutorGroups) has headroom, and otherwise the least-loaded
// group by active subscriber count.
func (m *MultiExecutor) groupFor(plan *core.Plan) *mworker {
	sig := groupSig(plan)
	for gi, g := range m.groups {
		if m.groupSigs[gi] == sig {
			return g
		}
	}
	if len(m.groups) < m.maxGroups {
		g := m.newWorker()
		m.groups = append(m.groups, g)
		m.groupSigs = append(m.groupSigs, sig)
		m.groupPend = append(m.groupPend, nil)
		return g
	}
	best, bestLoad := m.groups[0], int(^uint(0)>>1)
	for _, g := range m.groups {
		load := 0
		for _, s := range m.subs {
			if s.active && len(s.hosts) == 1 && s.hosts[0] == g {
				load++
			}
		}
		if load < bestLoad {
			best, bestLoad = g, load
		}
	}
	return best
}

// attrsCovered reports whether every routing attribute appears in the
// plan's partition keys — the condition under which the frozen routing
// function keeps the plan's sub-streams worker-local.
func attrsCovered(route, keys []string) bool {
	for _, attr := range route {
		found := false
		for _, k := range keys {
			if k == attr {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// unsubscribe implements Sub.Unsubscribe.
func (m *MultiExecutor) unsubscribe(sub *Sub) ([]core.Result, error) {
	if m.closed {
		return nil, fmt.Errorf("stream: Unsubscribe after Close: %w", core.ErrClosed)
	}
	if !sub.active {
		return nil, fmt.Errorf("stream: query %d already unsubscribed: %w", sub.id, core.ErrNotHosted)
	}
	sub.active = false
	m.flushPending()
	var merged []core.Result
	var firstErr error
	for i, w := range sub.hosts {
		ctl := &ctlMsg{op: ctlUnsubscribe, wsub: sub.wsubs[i], reply: make(chan ctlReply, 1)}
		w.in <- wmsg{ctl: ctl}
		rep := <-ctl.reply
		if rep.err != nil {
			if firstErr == nil {
				firstErr = rep.err
			}
			continue
		}
		merged = append(merged, rep.results...)
	}
	if !m.sawEvent && len(m.activePlans()) > 0 {
		// No event routed yet: the routing attributes may re-expand now
		// that the intersection spans fewer plans.
		m.routeAttrs = sharedRouteAttrs(m.activePlans())
	}
	if err := m.retireIdleGroups(); err != nil && firstErr == nil {
		firstErr = err
	}
	// Even on a partial failure the healthy workers' engines have been
	// flushed and released; return what they reported alongside the
	// error rather than destroying it.
	merged = sortResults(merged)
	if sub.cb != nil {
		for _, r := range merged {
			sub.cb(r)
		}
		return nil, firstErr
	}
	return merged, firstErr
}

// retireIdleGroups shuts down every executor group with no active
// subscription left — the shrink half of group rebalancing, run at
// membership changes and Sync barriers — so a long-lived stream stops
// paying the duplicate event delivery after a group's last subscriber
// leaves. A later locality-breaking subscribe starts a fresh group,
// aligned to the watermark like any late joiner. The caller must have
// flushed pending batches (any partial group batch was handed over).
func (m *MultiExecutor) retireIdleGroups() error {
	var firstErr error
	kept := 0
	for gi, g := range m.groups {
		busy := false
		for _, s := range m.subs {
			if s.active && len(s.hosts) == 1 && s.hosts[0] == g {
				busy = true
				break
			}
		}
		if busy {
			m.groups[kept] = g
			m.groupSigs[kept] = m.groupSigs[gi]
			m.groupPend[kept] = m.groupPend[gi]
			kept++
			continue
		}
		close(g.in)
		<-g.done
		// Peak memory is a high-water mark over the whole run: keep the
		// retired worker's contribution so the reported fleet peak stays
		// monotone. Flip counters are lifetime totals too.
		m.retiredPeak += g.acct.Peak()
		rs := g.rt.Stats()
		m.retiredFlips += rs.ShareFlips
		m.retiredSaved += rs.SharedSavedOps
		if g.err != nil && firstErr == nil {
			firstErr = g.err
		}
	}
	m.groups = m.groups[:kept]
	m.groupSigs = m.groupSigs[:kept]
	m.groupPend = m.groupPend[:kept]
	return firstErr
}

// drain implements Sub.Drain.
func (m *MultiExecutor) drain(sub *Sub) ([]core.Result, error) {
	if m.closed {
		return nil, fmt.Errorf("stream: Drain after Close: %w", core.ErrClosed)
	}
	if !sub.active {
		return nil, fmt.Errorf("stream: query %d already unsubscribed: %w", sub.id, core.ErrNotHosted)
	}
	m.flushPending()
	var merged []core.Result
	var firstErr error
	for i, w := range sub.hosts {
		ctl := &ctlMsg{op: ctlDrain, wsub: sub.wsubs[i], reply: make(chan ctlReply, 1)}
		w.in <- wmsg{ctl: ctl}
		rep := <-ctl.reply
		if rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
		merged = append(merged, rep.results...)
	}
	// Drained results are destructively taken from the worker engines;
	// hand them over even when one worker reported an error.
	merged = sortResults(merged)
	if sub.cb != nil {
		for _, r := range merged {
			sub.cb(r)
		}
		return nil, firstErr
	}
	return merged, firstErr
}

// Stats is the executor's aggregate hosted state, gathered from every
// worker at the current stream position.
type Stats struct {
	// Queries is the number of active subscriptions; Workers counts the
	// running workers (including the executor groups); Groups counts
	// the running executor groups alone.
	Queries int
	Workers int
	Groups  int
	// Events is the number of events routed; Skipped counts events that
	// lacked a routing attribute (not delivered to partition workers).
	Events  int64
	Skipped int64
	// InternedTypes/InternedAttrs are the catalog id-space sizes.
	InternedTypes int
	InternedAttrs int
	// RoutingAttrs are the partition attributes events are routed by;
	// empty means every event goes to worker 0 (no shared attribute).
	RoutingAttrs []string
	// BindingInternBytes sums the live binding intern tables across all
	// workers' engines; PeakBytes sums the workers' logical peaks.
	BindingInternBytes int64
	PeakBytes          int64
	// SharedGroups counts the sharing groups currently backed by a host
	// engine, summed across workers; ShareFlips and SharedSavedOps sum
	// the workers' share/unshare decision counters (retired fallback
	// workers keep their lifetime contributions, like PeakBytes).
	SharedGroups   int
	ShareFlips     int64
	SharedSavedOps int64
}

// Stats gathers the executor-wide statistics: each worker reports at
// its current position after receiving everything routed so far.
func (m *MultiExecutor) Stats() (Stats, error) {
	st := Stats{
		Queries:        len(m.activePlans()),
		Workers:        len(m.allWorkers()),
		Groups:         len(m.groups),
		Events:         m.seq,
		Skipped:        m.skipped,
		InternedTypes:  m.cat.NumTypes(),
		InternedAttrs:  m.cat.NumAttrs(),
		RoutingAttrs:   m.routeAttrs,
		PeakBytes:      m.retiredPeak,
		ShareFlips:     m.retiredFlips,
		SharedSavedOps: m.retiredSaved,
	}
	if m.closed {
		// Workers have exited (Close waited on them), so their state is
		// safe to read directly; the engines still hold their intern
		// tables, so the footprint stays comparable to the inline path.
		for _, w := range m.allWorkers() {
			st.PeakBytes += w.acct.Peak()
			st.BindingInternBytes += w.rt.InternBytes()
			rs := w.rt.Stats()
			st.SharedGroups += rs.SharedGroups
			st.ShareFlips += rs.ShareFlips
			st.SharedSavedOps += rs.SharedSavedOps
		}
		return st, nil
	}
	m.flushPending()
	for _, w := range m.allWorkers() {
		ctl := &ctlMsg{op: ctlStats, reply: make(chan ctlReply, 1)}
		w.in <- wmsg{ctl: ctl}
		rep := <-ctl.reply
		if rep.err != nil {
			return st, rep.err
		}
		st.BindingInternBytes += rep.intern
		st.PeakBytes += rep.peak
		st.SharedGroups += rep.sharedGroups
		st.ShareFlips += rep.shareFlips
		st.SharedSavedOps += rep.sharedSaved
	}
	return st, nil
}

// sharedRouteAttrs returns the partition attributes common to every
// plan, in the first plan's declaration order. The routing key is a
// function of every plan's full partition key (the routing attributes
// are a subset of each plan's StreamKeys), so all events of any one
// sub-stream hash identically and stay worker-local; one routing value
// may still fan out into several sub-streams of a plan with extra
// partition attributes, which is harmless.
func sharedRouteAttrs(plans []*core.Plan) []string {
	if len(plans) == 0 {
		return nil
	}
	var out []string
	for _, attr := range plans[0].StreamKeys {
		inAll := true
		for _, plan := range plans[1:] {
			if !attrsCovered([]string{attr}, plan.StreamKeys) {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, attr)
		}
	}
	return out
}

func (w *mworker) run() {
	defer close(w.done)
	for msg := range w.in {
		if msg.ctl != nil {
			w.handleCtl(msg.ctl)
			continue
		}
		if w.err == nil {
			// The batch is the unit of execution, not just of transport:
			// the runtime chunks it into equal-time, type-partitioned runs
			// for the columnar kernels (Runtime.ProcessBatch). On failure
			// the remaining input is drained without processing.
			w.err = w.rt.ProcessBatch(*msg.batch)
		}
		*msg.batch = (*msg.batch)[:0]
		w.pool.Put(msg.batch)
	}
	if w.err == nil {
		w.results = w.rt.Close()
	}
}

// handleCtl applies one control-plane message on the worker goroutine
// (the runtime is single-threaded) and always replies exactly once. A
// worker in error state refuses membership changes — the stream is
// already broken and Close will surface the error.
func (w *mworker) handleCtl(c *ctlMsg) {
	var rep ctlReply
	if c.op == ctlStats {
		// Stats stay readable even in error state: a caller polling
		// PeakBytes after a worker failure gets the accumulated peak,
		// not a silent zero (Close surfaces the error itself).
		rep.intern = w.rt.InternBytes()
		rep.peak = w.acct.Peak()
		rs := w.rt.Stats()
		rep.sharedGroups = rs.SharedGroups
		rep.shareFlips = rs.ShareFlips
		rep.sharedSaved = rs.SharedSavedOps
	} else if w.err != nil {
		rep.err = w.err
	} else {
		switch c.op {
		case ctlSubscribe:
			opts := append(append([]core.Option(nil), w.engOpts...), core.WithAccountant(&w.acct))
			if c.hasAlign {
				rep.wsub, rep.err = w.rt.SubscribePlanFrom(c.plan, c.align, opts...)
			} else {
				rep.wsub, rep.err = w.rt.SubscribePlan(c.plan, opts...)
			}
		case ctlUnsubscribe:
			rep.results, rep.err = c.wsub.Unsubscribe()
		case ctlDrain:
			rep.results = c.wsub.Drain()
		case ctlShare:
			w.rt.EnableSharedAggregation(w.hostOpts()...)
		}
	}
	c.reply <- rep
}

// fnv1a is the 32-bit FNV-1a hash, inlined so routing does not
// allocate a hasher per event (it matches hash/fnv exactly).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// OnResult installs a result callback for one hosted query (by its
// subscription id; constructor plans keep their slice positions).
// Unsubscribe, Drain and Close deliver the query's merged, re-ordered
// results to the callback instead of returning them. Installing a
// callback after Close is an error — the results were already
// returned.
func (p *MultiExecutor) OnResult(qi int, fn func(core.Result)) error {
	if p.closed {
		return fmt.Errorf("stream: OnResult after Close: %w", core.ErrClosed)
	}
	if qi < 0 || qi >= len(p.subs) {
		return fmt.Errorf("stream: OnResult for unknown query %d: %w", qi, core.ErrNotHosted)
	}
	p.subs[qi].cb = fn
	return nil
}

// Process routes one event to its partition's worker, and additionally
// to every running executor group. Events missing a shared routing
// attribute are counted and skipped for the partition workers — such
// an event lacks part of every routed plan's partition key, so no
// routed engine would admit it to a sub-stream — but they still reach
// the executor groups, whose queries route on nothing. Events are
// delivered in batches; Close flushes any partial batch.
func (p *MultiExecutor) Process(e *event.Event) error {
	if p.closed {
		return fmt.Errorf("stream: Process after Close: %w", core.ErrClosed)
	}
	p.route(e)
	return nil
}

// ProcessBatch routes a pre-sorted batch natively: the closed check is
// paid once, and the events flow straight into the per-worker batches
// under construction (no per-event re-batching) — the primary ingest
// path under Session.PushBatch.
func (p *MultiExecutor) ProcessBatch(events []*event.Event) error {
	if p.closed {
		return fmt.Errorf("stream: Process after Close: %w", core.ErrClosed)
	}
	for _, e := range events {
		p.route(e)
	}
	return nil
}

// route is the per-event body shared by Process and ProcessBatch.
func (p *MultiExecutor) route(e *event.Event) {
	p.seq++
	if e.ID == 0 {
		// Assign the stream sequence here, before fan-out: two workers
		// may observe the same event concurrently.
		e.ID = p.seq
	}
	if !p.sawEvent || e.Time > p.lastTime {
		p.lastTime = e.Time
	}
	p.sawEvent = true
	routed := true
	wi := 0
	if len(p.routeAttrs) > 0 {
		keyBuf, ok := core.AppendEventKey(p.keyBuf[:0], e, p.routeAttrs)
		p.keyBuf = keyBuf
		if !ok {
			p.skipped++
			routed = false
		} else {
			wi = int(fnv1a(keyBuf) % uint32(len(p.workers)))
		}
	}
	if routed {
		p.append(p.workers[wi], &p.pending[wi], e)
	}
	for gi, g := range p.groups {
		p.append(g, &p.groupPend[gi], e)
	}
}

// append adds an event to a worker's batch under construction, handing
// the batch over when it is full.
func (p *MultiExecutor) append(w *mworker, slot **[]*event.Event, e *event.Event) {
	batch := *slot
	if batch == nil {
		batch = p.pool.Get().(*[]*event.Event)
		*slot = batch
	}
	*batch = append(*batch, e)
	if len(*batch) >= routeBatchSize {
		w.in <- wmsg{batch: batch}
		*slot = nil
	}
}

// flushPending hands every partial batch to its worker, so a
// control-plane message sent next is ordered after every event routed
// so far.
func (p *MultiExecutor) flushPending() {
	for i, w := range p.workers {
		if batch := p.pending[i]; batch != nil && len(*batch) > 0 {
			w.in <- wmsg{batch: batch}
			p.pending[i] = nil
		}
	}
	for gi, g := range p.groups {
		if batch := p.groupPend[gi]; batch != nil && len(*batch) > 0 {
			g.in <- wmsg{batch: batch}
			p.groupPend[gi] = nil
		}
	}
}

// Run consumes an entire ordered source.
func (p *MultiExecutor) Run(src Iterator) error {
	for {
		e, ok := src.Next()
		if !ok {
			return nil
		}
		if err := p.Process(e); err != nil {
			return err
		}
	}
}

// Sync flushes every partial batch to its worker and waits until all
// workers have consumed everything routed so far — a control-plane
// barrier. RunContext uses it when its context is cancelled, so the
// workers' state reflects exactly the pushed prefix before the caller
// regains control (Drain and Stats then observe a consistent cut).
// The barrier is also the group-rebalance point: executor groups whose
// last subscriber left since the previous barrier are retired here, so
// a shrunk fleet stops paying their duplicate event delivery.
func (p *MultiExecutor) Sync() error {
	if p.closed {
		return fmt.Errorf("stream: Sync after Close: %w", core.ErrClosed)
	}
	p.flushPending()
	if err := p.retireIdleGroups(); err != nil {
		return err
	}
	for _, w := range p.allWorkers() {
		ctl := &ctlMsg{op: ctlStats, reply: make(chan ctlReply, 1)}
		w.in <- wmsg{ctl: ctl}
		if rep := <-ctl.reply; rep.err != nil {
			return rep.err
		}
	}
	return nil
}

// Close flushes pending batches, drains the workers and returns each
// query's results ordered by window then group, exactly like a single
// engine would emit them — indexed by subscription id. Slots of
// queries with an OnResult callback (delivered through it) and of
// queries that already unsubscribed (returned at Unsubscribe time)
// are nil.
func (p *MultiExecutor) Close() ([][]core.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("stream: double Close: %w", core.ErrClosed)
	}
	p.flushPending()
	p.closed = true
	workers := p.allWorkers()
	var wg sync.WaitGroup
	for _, w := range workers {
		close(w.in)
		wg.Add(1)
		go func(w *mworker) {
			defer wg.Done()
			<-w.done
		}(w)
	}
	wg.Wait()
	for _, w := range workers {
		if w.err != nil {
			return nil, w.err
		}
	}
	out := make([][]core.Result, len(p.subs))
	for _, sub := range p.subs {
		if !sub.active {
			continue
		}
		sub.active = false
		var merged []core.Result
		for i, w := range sub.hosts {
			merged = append(merged, w.results[sub.wsubs[i].ID()]...)
		}
		merged = sortResults(merged)
		if sub.cb != nil {
			for _, r := range merged {
				sub.cb(r)
			}
			continue
		}
		out[sub.id] = merged
	}
	return out, nil
}

// sortResults orders merged per-worker results by window then group,
// the order a single engine emits, and coalesces duplicates: when a
// window's partition classes were routed to different workers, each
// worker reports its own partial aggregate for the same (window,
// group) — those are disjoint trend sets, folded back into the single
// result a solo engine would have emitted (agg.MergeValues).
func sortResults(out []core.Result) []core.Result {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wid != out[j].Wid {
			return out[i].Wid < out[j].Wid
		}
		return strings.Join(out[i].Group, "\x00") < strings.Join(out[j].Group, "\x00")
	})
	w := 0
	for i := range out {
		if w > 0 && out[w-1].Wid == out[i].Wid &&
			strings.Join(out[w-1].Group, "\x00") == strings.Join(out[i].Group, "\x00") {
			agg.MergeValues(out[w-1].Values, out[i].Values)
			continue
		}
		out[w] = out[i]
		w++
	}
	return out[:w]
}

// Skipped returns the number of events without a routing key.
func (p *MultiExecutor) Skipped() int64 { return p.skipped }

// Workers returns the partition worker count — 1 when the hosted
// plans share no partition attribute, regardless of what was
// requested. Executor groups, when running, are not counted (see
// Stats).
func (p *MultiExecutor) Workers() int { return len(p.workers) }

// Catalog returns the shared catalog further plans must be compiled
// against (core.NewPlanIn).
func (p *MultiExecutor) Catalog() *core.Catalog { return p.cat }

// PeakBytes returns the summed logical peak memory across workers.
// Each worker's peak covers all queries it hosts simultaneously;
// worker peaks may occur at different times, so the sum is an upper
// bound on the fleet-wide footprint (as for ParallelExecutor). Before
// Close this is a control-plane round trip to the workers.
func (p *MultiExecutor) PeakBytes() int64 {
	st, err := p.Stats()
	if err != nil {
		return 0
	}
	return st.PeakBytes
}

// ParallelExecutor runs one plan partition-parallel: the single-query
// special case of MultiExecutor, kept as its own type for the public
// API (§8, "Parallel Processing"). Each worker hosts the plan's engine
// behind a one-query runtime; routing hashes the plan's own partition
// key, so results are byte-identical to a solo engine run.
type ParallelExecutor struct {
	m *MultiExecutor
}

// NewParallelExecutor starts n workers (n >= 1). A plan without
// partition keys yields a single worker, since an unpartitioned
// stream has a single sub-stream.
func NewParallelExecutor(plan *core.Plan, n int) (*ParallelExecutor, error) {
	m, err := NewMultiExecutor([]*core.Plan{plan}, n)
	if err != nil {
		return nil, err
	}
	return &ParallelExecutor{m: m}, nil
}

// Process routes one event to its partition's worker.
func (p *ParallelExecutor) Process(e *event.Event) error { return p.m.Process(e) }

// Run consumes an entire ordered source.
func (p *ParallelExecutor) Run(src Iterator) error { return p.m.Run(src) }

// Close flushes pending batches, drains the workers and returns all
// results ordered by window then group, exactly like a single engine
// would emit them.
func (p *ParallelExecutor) Close() ([]core.Result, error) {
	out, err := p.m.Close()
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Skipped returns the number of events without a partition key.
func (p *ParallelExecutor) Skipped() int64 { return p.m.Skipped() }

// Workers returns the actual worker count (1 for unpartitioned plans).
func (p *ParallelExecutor) Workers() int { return p.m.Workers() }

// PeakBytes returns the summed logical peak memory across workers.
func (p *ParallelExecutor) PeakBytes() int64 { return p.m.PeakBytes() }
