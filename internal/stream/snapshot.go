package stream

// Checkpoint codec for the stream layer: events, the K-slack reorder
// buffer, and the multi-query executor topology. A MultiExecutor
// snapshot must be taken at a consistent cut — after Sync() returns,
// every worker is parked on its input channel with all routed events
// applied, and the reply-channel receive gives the snapshotting
// goroutine a happens-before edge to read worker state directly.
// Restore is the mirror image: worker runtimes are installed before
// any message is sent, so the first channel send publishes them.

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/runtime"
	"repro/internal/snap"
)

// maxSnapWorkers bounds the worker count read from a snapshot, so a
// corrupt header cannot spawn an absurd goroutine fleet.
const maxSnapWorkers = 4096

// SnapshotEvent writes one event with attribute keys in sorted order,
// so the snapshot bytes do not depend on map iteration order.
func SnapshotEvent(w *snap.Writer, e *event.Event) {
	w.I64(e.Time)
	w.Str(e.Type)
	w.I64(e.ID)
	numKeys := make([]string, 0, len(e.Num))
	for k := range e.Num {
		numKeys = append(numKeys, k)
	}
	sort.Strings(numKeys)
	w.U32(uint32(len(numKeys)))
	for _, k := range numKeys {
		w.Str(k)
		w.F64(e.Num[k])
	}
	symKeys := make([]string, 0, len(e.Sym))
	for k := range e.Sym {
		symKeys = append(symKeys, k)
	}
	sort.Strings(symKeys)
	w.U32(uint32(len(symKeys)))
	for _, k := range symKeys {
		w.Str(k)
		w.Str(e.Sym[k])
	}
}

// RestoreEvent reads one event written by SnapshotEvent.
func RestoreEvent(r *snap.Reader) (*event.Event, error) {
	e := &event.Event{Time: r.I64(), Type: r.Str(), ID: r.I64()}
	n := r.Count(16)
	for i := 0; i < n; i++ {
		e.WithNum(r.Str(), r.F64())
	}
	n = r.Count(8)
	for i := 0; i < n; i++ {
		e.WithSym(r.Str(), r.Str())
	}
	return e, r.Err()
}

// Snapshot writes the reorder buffer: slack, watermark bookkeeping,
// drop/shed counters and the buffered events. The depth cap is session
// configuration, not stream state, and is re-applied by the restoring
// session.
func (r *Reorderer) Snapshot(w *snap.Writer) {
	w.I64(r.slack)
	w.I64(r.maxSeen)
	w.Bool(r.sawAny)
	w.I64(r.dropped)
	w.I64(r.shed)
	w.I64(r.floor)
	w.Bool(r.hasFloor)
	w.U32(uint32(len(r.h)))
	for _, e := range r.h {
		SnapshotEvent(w, e)
	}
}

// RestoreState loads a snapshot written by Snapshot. The buffered
// events are re-heapified; since IDs are unique before events are
// offered, the heap pops in the same (time, ID) order as the original
// buffer regardless of internal layout.
func (r *Reorderer) RestoreState(rd *snap.Reader) error {
	r.slack = rd.I64()
	if rd.Err() == nil && r.slack < 0 {
		return fmt.Errorf("%w: negative reorder slack %d", snap.ErrBadSnapshot, r.slack)
	}
	r.maxSeen = rd.I64()
	r.sawAny = rd.Bool()
	r.dropped = rd.I64()
	r.shed = rd.I64()
	r.floor = rd.I64()
	r.hasFloor = rd.Bool()
	n := rd.Count(28)
	r.h = r.h[:0]
	for i := 0; i < n; i++ {
		e, err := RestoreEvent(rd)
		if err != nil {
			return err
		}
		r.h = append(r.h, e)
	}
	heap.Init(&r.h)
	return rd.Err()
}

// Snapshot writes the executor's routing state and every worker's
// hosted runtime, then the subscription topology. planIdxBySubID maps
// an executor subscription id to the index of its plan in the
// session-level plan table (active subscriptions only). Must be called
// after Sync() with no concurrent Process — the workers are then
// parked on their input channels and their state is safe to read from
// this goroutine.
func (m *MultiExecutor) Snapshot(w *snap.Writer, planIdxBySubID map[int]int32) error {
	if m.closed {
		return fmt.Errorf("stream: Snapshot after Close: %w", core.ErrClosed)
	}
	w.U32(uint32(len(m.workers)))
	w.U32(uint32(len(m.routeAttrs)))
	for _, a := range m.routeAttrs {
		w.Str(a)
	}
	w.I64(m.seq)
	w.I64(m.lastTime)
	w.Bool(m.sawEvent)
	w.I64(m.skipped)
	w.I64(m.retiredPeak)
	w.U32(uint32(m.maxGroups))
	w.U32(uint32(len(m.groups)))
	for _, sig := range m.groupSigs {
		w.Str(sig)
	}
	for _, wk := range m.allWorkers() {
		if wk.err != nil {
			return fmt.Errorf("stream: Snapshot with failed worker: %w", wk.err)
		}
		// Per-worker plan index table, keyed by the worker-local
		// subscription ids (they diverge from executor ids on the
		// full-stream worker).
		byWsub := map[int]int32{}
		for _, s := range m.subs {
			if !s.active {
				continue
			}
			pi, ok := planIdxBySubID[s.id]
			if !ok {
				return fmt.Errorf("stream: snapshot: subscription %d has no plan index", s.id)
			}
			for i, h := range s.hosts {
				if h == wk {
					byWsub[s.wsubs[i].ID()] = pi
				}
			}
		}
		if err := wk.rt.Snapshot(w, byWsub); err != nil {
			return err
		}
		w.I64(wk.acct.Current())
		w.I64(wk.acct.Peak())
	}
	w.U32(uint32(len(m.subs)))
	for _, s := range m.subs {
		w.Bool(s.active)
		if !s.active {
			continue
		}
		if gi := m.groupIndex(s.hosts); gi >= 0 {
			w.U8(2) // hosted on one executor group
			w.U32(uint32(gi))
		} else {
			w.U8(1) // hosted on every partition worker
		}
		w.U32(uint32(len(s.wsubs)))
		for _, ws := range s.wsubs {
			w.Int(ws.ID())
		}
	}
	return nil
}

// RestoreMultiExecutor rebuilds an executor from Snapshot on a
// restored catalog. plans holds the recompiled plans indexed as during
// Snapshot; engOpts are the session-wide engine options (each worker
// adds its own accountant, as in live subscribe). The worker fleet is
// started first and each worker's runtime is installed before any
// message is sent on its channel, so the handoff is race-free.
func RestoreMultiExecutor(cat *core.Catalog, r *snap.Reader, plans []*core.Plan, engOpts ...core.Option) (*MultiExecutor, error) {
	nw := int(r.U32())
	if r.Err() == nil && (nw < 1 || nw > maxSnapWorkers) {
		return nil, fmt.Errorf("%w: executor worker count %d", snap.ErrBadSnapshot, nw)
	}
	na := r.Count(4)
	var routeAttrs []string
	for i := 0; i < na; i++ {
		routeAttrs = append(routeAttrs, r.Str())
	}
	seq := r.I64()
	lastTime := r.I64()
	sawEvent := r.Bool()
	skipped := r.I64()
	retiredPeak := r.I64()
	maxGroups := int(r.U32())
	if r.Err() == nil && (maxGroups < 1 || maxGroups > maxSnapWorkers) {
		return nil, fmt.Errorf("%w: executor group cap %d", snap.ErrBadSnapshot, maxGroups)
	}
	ng := r.Count(1)
	if r.Err() == nil && ng > maxGroups {
		return nil, fmt.Errorf("%w: %d executor groups over a cap of %d", snap.ErrBadSnapshot, ng, maxGroups)
	}
	groupSigs := make([]string, 0, ng)
	for i := 0; i < ng; i++ {
		groupSigs = append(groupSigs, r.Str())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	m := NewMultiExecutorOn(cat, nw, engOpts...)
	ok := false
	defer func() {
		if !ok {
			m.shutdown()
		}
	}()
	m.routeAttrs = routeAttrs
	m.seq, m.lastTime, m.sawEvent = seq, lastTime, sawEvent
	m.skipped, m.retiredPeak = skipped, retiredPeak
	m.maxGroups = maxGroups
	for _, sig := range groupSigs {
		m.groups = append(m.groups, m.newWorker())
		m.groupSigs = append(m.groupSigs, sig)
		m.groupPend = append(m.groupPend, nil)
	}
	for _, wk := range m.allWorkers() {
		wk := wk
		wopts := func(int) []core.Option {
			return append(append([]core.Option(nil), m.engOpts...), core.WithAccountant(&wk.acct))
		}
		rt, err := runtime.RestoreRuntime(cat, r, plans, wopts)
		if err != nil {
			return nil, err
		}
		wk.rt = rt
		cur, peak := r.I64(), r.I64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		wk.acct.Restore(cur, peak)
	}
	ns := r.Count(1)
	for id := 0; id < ns; id++ {
		if !r.Bool() {
			m.subs = append(m.subs, &Sub{m: m, id: id})
			continue
		}
		kind := r.U8()
		gi := -1
		if kind == 2 {
			gi = int(r.U32())
		}
		nh := r.Count(8)
		wsubIDs := make([]int, 0, nh)
		for i := 0; i < nh; i++ {
			wsubIDs = append(wsubIDs, r.Int())
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		var hosts []*mworker
		switch kind {
		case 1:
			hosts = m.workers
		case 2:
			if gi < 0 || gi >= len(m.groups) {
				return nil, fmt.Errorf("%w: subscription %d hosted on absent executor group %d", snap.ErrBadSnapshot, id, gi)
			}
			hosts = []*mworker{m.groups[gi]}
		default:
			return nil, fmt.Errorf("%w: subscription %d host kind %d", snap.ErrBadSnapshot, id, kind)
		}
		if nh != len(hosts) {
			return nil, fmt.Errorf("%w: subscription %d lists %d worker subscriptions for %d hosts", snap.ErrBadSnapshot, id, nh, len(hosts))
		}
		sub := &Sub{m: m, id: id, active: true, hosts: hosts}
		for i, h := range hosts {
			ws := h.rt.Lookup(wsubIDs[i])
			if ws == nil {
				return nil, fmt.Errorf("%w: subscription %d references unknown worker subscription %d", snap.ErrBadSnapshot, id, wsubIDs[i])
			}
			if sub.plan == nil {
				sub.plan = ws.Plan()
			} else if sub.plan != ws.Plan() {
				return nil, fmt.Errorf("%w: subscription %d spans workers hosting different plans", snap.ErrBadSnapshot, id)
			}
			sub.wsubs = append(sub.wsubs, ws)
		}
		m.subs = append(m.subs, sub)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	ok = true
	return m, nil
}

// groupIndex returns the index of the executor group a single-host
// subscription is hosted on, or -1 when the hosts are the partition
// workers.
func (m *MultiExecutor) groupIndex(hosts []*mworker) int {
	if len(hosts) != 1 {
		return -1
	}
	for gi, g := range m.groups {
		if g == hosts[0] {
			return gi
		}
	}
	return -1
}

// Sub returns the subscription with the given id, or nil.
func (m *MultiExecutor) Sub(id int) *Sub {
	if id < 0 || id >= len(m.subs) {
		return nil
	}
	return m.subs[id]
}
