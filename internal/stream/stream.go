// Package stream provides the stream-processing substrate of §8
// ("Parallel Processing"): ordered event sources, k-way merging of
// per-source ordered feeds, the time-driven scheduler that wraps
// simultaneous events into stream transactions, and a partition-
// parallel executor that runs one COGRA engine per sub-stream, since
// equivalence predicates and the GROUP-BY clause partition the stream
// into sub-streams that are processed independently.
package stream

import (
	"container/heap"

	"repro/internal/event"
)

// Iterator yields events in non-decreasing (time, ID) order. Next
// returns ok=false when the source is exhausted.
type Iterator interface {
	Next() (*event.Event, bool)
}

// SliceIterator replays a pre-sorted slice.
type SliceIterator struct {
	events []*event.Event
	pos    int
}

// FromSlice wraps events (already in stream order) as an Iterator.
func FromSlice(events []*event.Event) *SliceIterator {
	return &SliceIterator{events: events}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (*event.Event, bool) {
	if s.pos >= len(s.events) {
		return nil, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// mergeEntry is one head element of the k-way merge.
type mergeEntry struct {
	e   *event.Event
	src int
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].e.Time != h[j].e.Time {
		return h[i].e.Time < h[j].e.Time
	}
	if h[i].e.ID != h[j].e.ID {
		return h[i].e.ID < h[j].e.ID
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Merger merges several per-source ordered feeds into one globally
// time-ordered stream (event producers such as sensors each emit in
// order; the consumer needs a single ordered stream, §2.1).
type Merger struct {
	srcs []Iterator
	h    mergeHeap
}

// Merge builds a k-way merger over the sources.
func Merge(srcs ...Iterator) *Merger {
	m := &Merger{srcs: srcs}
	for i, src := range srcs {
		if e, ok := src.Next(); ok {
			m.h = append(m.h, mergeEntry{e: e, src: i})
		}
	}
	heap.Init(&m.h)
	return m
}

// Next implements Iterator.
func (m *Merger) Next() (*event.Event, bool) {
	if m.h.Len() == 0 {
		return nil, false
	}
	top := m.h[0]
	if e, ok := m.srcs[top.src].Next(); ok {
		m.h[0] = mergeEntry{e: e, src: top.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.e, true
}

// Transaction is a stream transaction (§8): all events carrying the
// same application time stamp, to be processed atomically before any
// event of a later time stamp.
type Transaction struct {
	Time   int64
	Events []*event.Event
}

// Scheduler is the time-driven scheduler of §8: it waits until the
// processing of all transactions with smaller time stamps has
// completed (i.e. the previous transaction was consumed), then
// extracts all events with the next time stamp and submits them as
// one transaction.
type Scheduler struct {
	src     Iterator
	pending *event.Event
	done    bool
}

// NewScheduler wraps an ordered source.
func NewScheduler(src Iterator) *Scheduler { return &Scheduler{src: src} }

// NextTransaction returns the next stream transaction, or ok=false at
// end of stream.
func (s *Scheduler) NextTransaction() (Transaction, bool) {
	if s.done && s.pending == nil {
		return Transaction{}, false
	}
	if s.pending == nil {
		e, ok := s.src.Next()
		if !ok {
			s.done = true
			return Transaction{}, false
		}
		s.pending = e
	}
	tx := Transaction{Time: s.pending.Time, Events: []*event.Event{s.pending}}
	s.pending = nil
	for {
		e, ok := s.src.Next()
		if !ok {
			s.done = true
			break
		}
		if e.Time != tx.Time {
			s.pending = e
			break
		}
		tx.Events = append(tx.Events, e)
	}
	return tx, true
}
