package stream

import (
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/query"
)

func TestReordererRepairsBoundedDisorder(t *testing.T) {
	r := NewReorderer(3)
	input := []int64{5, 3, 7, 6, 4, 10, 9, 8, 12}
	var emitted []int64
	for i, tm := range input {
		for _, e := range r.Offer(&event.Event{Time: tm, ID: int64(i)}) {
			emitted = append(emitted, e.Time)
		}
	}
	for _, e := range r.Flush() {
		emitted = append(emitted, e.Time)
	}
	if len(emitted) != len(input) {
		t.Fatalf("emitted %d of %d events", len(emitted), len(input))
	}
	for i := 1; i < len(emitted); i++ {
		if emitted[i-1] > emitted[i] {
			t.Fatalf("out of order after repair: %v", emitted)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestReordererDropsBeyondSlack(t *testing.T) {
	r := NewReorderer(2)
	r.Offer(&event.Event{Time: 10, ID: 1})
	if got := r.Offer(&event.Event{Time: 7, ID: 2}); got != nil {
		t.Errorf("too-late event emitted: %v", got)
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d", r.Dropped())
	}
	// Exactly at the boundary (10-2=8) is accepted.
	r.Offer(&event.Event{Time: 8, ID: 3})
	if r.Dropped() != 1 {
		t.Error("boundary event dropped")
	}
}

func TestReordererZeroSlackPassesThrough(t *testing.T) {
	r := NewReorderer(0)
	out := r.Offer(&event.Event{Time: 1, ID: 1})
	if len(out) != 1 {
		t.Fatalf("zero-slack buffer held the event: %v", out)
	}
	if r.Buffered() != 0 {
		t.Error("event stuck in buffer")
	}
}

// TestReordererFeedsEngine is the end-to-end contract: slack-repaired
// streams are accepted by the engine and produce the same results as
// the originally ordered stream.
func TestReordererFeedsEngine(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(20, 10).MustBuild()
	plan := core.MustPlan(q)

	rng := rand.New(rand.NewSource(4))
	var ordered []*event.Event
	tm := int64(0)
	for i := 0; i < 60; i++ {
		tm += int64(rng.Intn(3))
		ordered = append(ordered, event.New("A", tm))
	}
	ref := core.NewEngine(plan)
	for _, e := range ordered {
		if err := ref.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Close()

	// Shuffle within windows of 4 positions (disorder <= ~6 ticks).
	shuffled := make([]*event.Event, len(ordered))
	for i := range ordered {
		shuffled[i] = ordered[i].Clone()
		shuffled[i].ID = 0
	}
	for i := 0; i+3 < len(shuffled); i += 4 {
		rng.Shuffle(4, func(a, b int) {
			shuffled[i+a], shuffled[i+b] = shuffled[i+b], shuffled[i+a]
		})
	}
	re := NewReorderer(10)
	eng := core.NewEngine(plan)
	feed := func(evs []*event.Event) {
		for _, e := range evs {
			if err := eng.Process(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range shuffled {
		feed(re.Offer(e))
	}
	feed(re.Flush())
	got := eng.Close()
	if re.Dropped() != 0 {
		t.Fatalf("dropped %d within slack", re.Dropped())
	}
	if len(got) != len(want) {
		t.Fatalf("%d results vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("result %d: %v vs %v", i, got[i], want[i])
		}
	}
}
