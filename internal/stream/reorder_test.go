package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/query"
)

// mustOffer feeds one event and fails the test on a policy error. The
// returned slice is copied out of the Reorderer's scratch buffer so
// tests can accumulate emissions across calls.
func mustOffer(t *testing.T, r *Reorderer, e *event.Event) []*event.Event {
	t.Helper()
	out, err := r.Offer(e)
	if err != nil {
		t.Fatalf("Offer(%v): %v", e, err)
	}
	return append([]*event.Event(nil), out...)
}

func TestReordererRepairsBoundedDisorder(t *testing.T) {
	r := NewReorderer(3)
	input := []int64{5, 3, 7, 6, 4, 10, 9, 8, 12}
	var emitted []int64
	for i, tm := range input {
		for _, e := range mustOffer(t, r, &event.Event{Time: tm, ID: int64(i)}) {
			emitted = append(emitted, e.Time)
		}
	}
	for _, e := range r.Flush() {
		emitted = append(emitted, e.Time)
	}
	if len(emitted) != len(input) {
		t.Fatalf("emitted %d of %d events", len(emitted), len(input))
	}
	for i := 1; i < len(emitted); i++ {
		if emitted[i-1] > emitted[i] {
			t.Fatalf("out of order after repair: %v", emitted)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestReordererDropsBeyondSlack(t *testing.T) {
	r := NewReorderer(2)
	mustOffer(t, r, &event.Event{Time: 10, ID: 1})
	if got := mustOffer(t, r, &event.Event{Time: 7, ID: 2}); len(got) != 0 {
		t.Errorf("too-late event emitted: %v", got)
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d", r.Dropped())
	}
	// Exactly at the boundary (10-2=8) is accepted.
	mustOffer(t, r, &event.Event{Time: 8, ID: 3})
	if r.Dropped() != 1 {
		t.Error("boundary event dropped")
	}
}

// TestReordererTimestampTies: events sharing a time stamp re-emit in
// ID order (the stream tie-breaker), wherever they arrived in the
// disorder window.
func TestReordererTimestampTies(t *testing.T) {
	r := NewReorderer(4)
	input := []*event.Event{
		{Time: 3, ID: 5}, {Time: 3, ID: 2}, {Time: 1, ID: 1},
		{Time: 3, ID: 4}, {Time: 5, ID: 6}, {Time: 3, ID: 3},
		{Time: 9, ID: 7},
	}
	var got []*event.Event
	for _, e := range input {
		got = append(got, mustOffer(t, r, e)...)
	}
	got = append(got, r.Flush()...)
	if len(got) != len(input) {
		t.Fatalf("emitted %d of %d", len(got), len(input))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Before(got[i]) {
			t.Fatalf("emission %d not in (time, ID) order: %v then %v", i, got[i-1], got[i])
		}
	}
}

// TestReordererDuplicateIDs: duplicate (time, ID) pairs — a source
// that retries, or two sources reusing a sequence — are both kept and
// both re-emitted; the buffer deduplicates nothing.
func TestReordererDuplicateIDs(t *testing.T) {
	r := NewReorderer(2)
	var got []*event.Event
	for _, e := range []*event.Event{
		{Time: 1, ID: 1}, {Time: 2, ID: 1}, {Time: 2, ID: 1}, {Time: 4, ID: 2},
	} {
		got = append(got, mustOffer(t, r, e)...)
	}
	got = append(got, r.Flush()...)
	if len(got) != 4 {
		t.Fatalf("emitted %d events, want 4 (duplicates kept)", len(got))
	}
	dups := 0
	for _, e := range got {
		if e.Time == 2 && e.ID == 1 {
			dups++
		}
	}
	if dups != 2 {
		t.Errorf("duplicate pair emitted %d times, want 2", dups)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

// TestReordererSlackBoundaryDrops pins the drop boundary: an event at
// exactly maxSeen-slack is admitted, one time unit older is dropped,
// and the watermark never regresses when a drop happens.
func TestReordererSlackBoundaryDrops(t *testing.T) {
	r := NewReorderer(3)
	mustOffer(t, r, &event.Event{Time: 10, ID: 1})
	// The boundary event sits exactly at the watermark (maxSeen-slack):
	// admitted, but held — ties of it are still admissible.
	if got := mustOffer(t, r, &event.Event{Time: 7, ID: 2}); len(got) != 0 {
		t.Fatalf("boundary event (maxSeen-slack) released early: %v", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("boundary event counted as dropped")
	}
	if mustOffer(t, r, &event.Event{Time: 6, ID: 3}); r.Dropped() != 1 {
		t.Fatalf("dropped = %d after sub-boundary event, want 1", r.Dropped())
	}
	if max, ok := r.MaxSeen(); !ok || max != 10 {
		t.Errorf("MaxSeen = %d,%v, want 10,true", max, ok)
	}
	// A drop leaves the buffer intact: both admitted events are still
	// pending and re-emit in order on flush.
	if buf := r.Buffered(); buf != 2 {
		t.Errorf("buffered = %d, want 2", buf)
	}
	out := r.Flush()
	if len(out) != 2 || out[0].Time != 7 || out[1].Time != 10 {
		t.Errorf("flush = %v", out)
	}
}

// TestReordererBoundaryUnderflow is the regression test for the drop
// boundary wrapping: maxSeen - slack underflows int64 for time stamps
// near math.MinInt64 or a huge slack, which silently turned the
// boundary into a large POSITIVE number and dropped every admissible
// event. The clamped boundary admits everything instead.
func TestReordererBoundaryUnderflow(t *testing.T) {
	t.Run("min-int64 timestamps", func(t *testing.T) {
		r := NewReorderer(10)
		mustOffer(t, r, &event.Event{Time: math.MinInt64 + 5, ID: 1})
		// maxSeen-slack = MinInt64+5-10 wraps positive without the clamp;
		// an in-window event must stay admissible.
		if got := mustOffer(t, r, &event.Event{Time: math.MinInt64, ID: 2}); len(got) != 0 {
			t.Fatalf("held event released early: %v", got)
		}
		if r.Dropped() != 0 {
			t.Fatalf("admissible event near MinInt64 dropped (boundary wrapped)")
		}
		if out := r.Flush(); len(out) != 2 || out[0].Time != math.MinInt64 {
			t.Fatalf("flush = %v", out)
		}
	})
	t.Run("huge slack", func(t *testing.T) {
		// 10 - MaxInt64 is still representable (barely above MinInt64):
		// the boundary must sit there, not wrap.
		r := NewReorderer(math.MaxInt64)
		mustOffer(t, r, &event.Event{Time: 10, ID: 1})
		mustOffer(t, r, &event.Event{Time: math.MinInt64 + 20, ID: 2})
		// -10 - MaxInt64 underflows int64; the clamp must widen the
		// window to everything instead of wrapping it shut.
		r2 := NewReorderer(math.MaxInt64)
		mustOffer(t, r2, &event.Event{Time: -10, ID: 1})
		mustOffer(t, r2, &event.Event{Time: math.MinInt64, ID: 2})
		if r.Dropped() != 0 || r2.Dropped() != 0 {
			t.Fatalf("dropped = %d/%d under effectively-infinite slack", r.Dropped(), r2.Dropped())
		}
	})
	t.Run("negative slack clamps to zero", func(t *testing.T) {
		r := NewReorderer(-5)
		mustOffer(t, r, &event.Event{Time: 10, ID: 1})
		mustOffer(t, r, &event.Event{Time: 9, ID: 2})
		if r.Dropped() != 1 {
			t.Fatalf("negative slack must behave as 0; dropped = %d", r.Dropped())
		}
	})
}

// TestReordererShedOldest pins the ShedOldest depth policy: at the
// cap, the oldest buffered events are force-drained (in order, counted
// by Shed), later arrivals older than the shed floor are dropped as
// late, and arrivals at the floor are still admitted.
func TestReordererShedOldest(t *testing.T) {
	r := NewReorderer(100) // huge slack: only the cap bounds the buffer
	r.SetMaxDepth(3, ShedOldest)
	var got []*event.Event
	for _, e := range []*event.Event{
		{Time: 4, ID: 1}, {Time: 2, ID: 2}, {Time: 8, ID: 3},
	} {
		got = append(got, mustOffer(t, r, e)...)
	}
	if len(got) != 0 || r.Buffered() != 3 {
		t.Fatalf("cap not reached: emitted %v, buffered %d", got, r.Buffered())
	}
	// The 4th event overflows: the oldest (t=2) is force-drained.
	got = append(got, mustOffer(t, r, &event.Event{Time: 6, ID: 4})...)
	if len(got) != 1 || got[0].Time != 2 {
		t.Fatalf("shed emission = %v, want the t=2 event", got)
	}
	if r.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", r.Shed())
	}
	if r.Buffered() != 3 {
		t.Fatalf("buffered = %d after shed, want 3", r.Buffered())
	}
	// An arrival older than the shed floor would be emitted out of
	// order downstream: dropped as late, even though it is within slack.
	if out := mustOffer(t, r, &event.Event{Time: 1, ID: 5}); len(out) != 0 || r.Dropped() != 1 {
		t.Fatalf("behind-floor arrival: out=%v dropped=%d, want dropped", out, r.Dropped())
	}
	// An arrival AT the shed floor is admissible (engines accept ties).
	if mustOffer(t, r, &event.Event{Time: 2, ID: 6}); r.Dropped() != 1 {
		t.Fatalf("arrival at the shed floor dropped")
	}
	// Emission order overall stays non-decreasing in time.
	got = append(got, r.Flush()...)
	for i := 1; i < len(got); i++ {
		if got[i-1].Time > got[i].Time {
			t.Fatalf("emissions out of time order after shedding: %v", got)
		}
	}
}

// TestReordererRejectPolicy pins the Reject depth policy: a full
// buffer refuses events that would not release anything, with an error
// wrapping core.ErrBackpressure, but admits watermark-advancing events
// that drain the buffer (refusing those would deadlock the stream).
func TestReordererRejectPolicy(t *testing.T) {
	r := NewReorderer(100)
	r.SetMaxDepth(2, Reject)
	mustOffer(t, r, &event.Event{Time: 5, ID: 1})
	mustOffer(t, r, &event.Event{Time: 7, ID: 2})
	// Full, and t=6 advances nothing: rejected, not ingested.
	out, err := r.Offer(&event.Event{Time: 6, ID: 3})
	if !errors.Is(err, core.ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if len(out) != 0 || r.Buffered() != 2 || r.Dropped() != 0 {
		t.Fatalf("rejected event mutated the buffer: out=%v buffered=%d dropped=%d", out, r.Buffered(), r.Dropped())
	}
	// t=200 pushes the watermark past both buffered events: admitted,
	// and the buffer drains.
	out, err = r.Offer(&event.Event{Time: 200, ID: 4})
	if err != nil {
		t.Fatalf("watermark-advancing event rejected: %v", err)
	}
	if len(out) != 2 || out[0].Time != 5 || out[1].Time != 7 {
		t.Fatalf("drain after admit = %v", out)
	}
	if r.Buffered() != 1 {
		t.Fatalf("buffered = %d, want 1 (the new event)", r.Buffered())
	}
}

func TestReordererZeroSlackHoldsTiesOnly(t *testing.T) {
	// Slack 0 still admits ties at the current maximum, so events are
	// held until time strictly advances (their ties may be in flight)
	// and released in ID order.
	r := NewReorderer(0)
	if out := mustOffer(t, r, &event.Event{Time: 1, ID: 2}); len(out) != 0 {
		t.Fatalf("event released while its ties are admissible: %v", out)
	}
	if out := mustOffer(t, r, &event.Event{Time: 1, ID: 1}); len(out) != 0 {
		t.Fatalf("tie released early: %v", out)
	}
	out := mustOffer(t, r, &event.Event{Time: 2, ID: 3})
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 2 {
		t.Fatalf("time advance released %v, want both t=1 events in ID order", out)
	}
	if got := r.Flush(); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("flush = %v", got)
	}
}

// TestReordererBoundaryTieStaysOrdered is the regression test for the
// boundary-tie bug: with slack 2, after 3 then 5 arrive, a late tie
// at time 3 is still admissible (3 >= 5-2) — it must be emitted in ID
// order with the earlier time-3 event, not after it.
func TestReordererBoundaryTieStaysOrdered(t *testing.T) {
	r := NewReorderer(2)
	var got []*event.Event
	got = append(got, mustOffer(t, r, &event.Event{Time: 3, ID: 5})...)
	got = append(got, mustOffer(t, r, &event.Event{Time: 5, ID: 9})...)
	got = append(got, mustOffer(t, r, &event.Event{Time: 3, ID: 1})...) // boundary tie
	got = append(got, r.Flush()...)
	if r.Dropped() != 0 {
		t.Fatalf("boundary tie dropped")
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d of 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Before(got[i]) {
			t.Fatalf("emission not in (time, ID) order: %v", got)
		}
	}
}

// TestReordererOfferSteadyStateAllocs pins the scratch-buffer reuse:
// once the emission buffer has grown, steady-state Offer calls
// (including ones that drain) do not allocate.
func TestReordererOfferSteadyStateAllocs(t *testing.T) {
	r := NewReorderer(2)
	events := make([]*event.Event, 512)
	for i := range events {
		events[i] = &event.Event{Time: int64(i), ID: int64(i + 1)}
	}
	i := 0
	// Warm up heap and scratch capacity.
	for ; i < 64; i++ {
		if _, err := r.Offer(events[i]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(256, func() {
		if _, err := r.Offer(events[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 0 {
		t.Errorf("steady-state Offer allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestReordererFeedsEngine is the end-to-end contract: slack-repaired
// streams are accepted by the engine and produce the same results as
// the originally ordered stream.
func TestReordererFeedsEngine(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(20, 10).MustBuild()
	plan := core.MustPlan(q)

	rng := rand.New(rand.NewSource(4))
	var ordered []*event.Event
	tm := int64(0)
	for i := 0; i < 60; i++ {
		tm += int64(rng.Intn(3))
		ordered = append(ordered, event.New("A", tm))
	}
	ref := core.NewEngine(plan)
	for _, e := range ordered {
		if err := ref.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Close()

	// Shuffle within windows of 4 positions (disorder <= ~6 ticks).
	shuffled := make([]*event.Event, len(ordered))
	for i := range ordered {
		shuffled[i] = ordered[i].Clone()
		shuffled[i].ID = 0
	}
	for i := 0; i+3 < len(shuffled); i += 4 {
		rng.Shuffle(4, func(a, b int) {
			shuffled[i+a], shuffled[i+b] = shuffled[i+b], shuffled[i+a]
		})
	}
	re := NewReorderer(10)
	eng := core.NewEngine(plan)
	feed := func(evs []*event.Event) {
		for _, e := range evs {
			if err := eng.Process(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range shuffled {
		out, err := re.Offer(e)
		if err != nil {
			t.Fatal(err)
		}
		feed(out)
	}
	feed(re.Flush())
	got := eng.Close()
	if re.Dropped() != 0 {
		t.Fatalf("dropped %d within slack", re.Dropped())
	}
	if len(got) != len(want) {
		t.Fatalf("%d results vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("result %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// BenchmarkReordererOffer measures the slack hot path: one Offer per
// event over a mildly disordered stream. The scratch-buffer reuse
// keeps steady state at 0 allocs/op (asserted by
// TestReordererOfferSteadyStateAllocs; the bench reports it so the CI
// allocation gate tracks it too).
func BenchmarkReordererOffer(b *testing.B) {
	const n = 4096
	events := make([]*event.Event, n)
	for i := range events {
		tm := int64(i)
		if i%4 == 1 {
			tm -= 2 // bounded disorder within slack
		}
		events[i] = &event.Event{Time: tm, ID: int64(i + 1)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReorderer(4)
		for _, e := range events {
			if _, err := r.Offer(e); err != nil {
				b.Fatal(err)
			}
		}
		r.Flush()
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
