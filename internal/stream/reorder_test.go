package stream

import (
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/query"
)

func TestReordererRepairsBoundedDisorder(t *testing.T) {
	r := NewReorderer(3)
	input := []int64{5, 3, 7, 6, 4, 10, 9, 8, 12}
	var emitted []int64
	for i, tm := range input {
		for _, e := range r.Offer(&event.Event{Time: tm, ID: int64(i)}) {
			emitted = append(emitted, e.Time)
		}
	}
	for _, e := range r.Flush() {
		emitted = append(emitted, e.Time)
	}
	if len(emitted) != len(input) {
		t.Fatalf("emitted %d of %d events", len(emitted), len(input))
	}
	for i := 1; i < len(emitted); i++ {
		if emitted[i-1] > emitted[i] {
			t.Fatalf("out of order after repair: %v", emitted)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestReordererDropsBeyondSlack(t *testing.T) {
	r := NewReorderer(2)
	r.Offer(&event.Event{Time: 10, ID: 1})
	if got := r.Offer(&event.Event{Time: 7, ID: 2}); got != nil {
		t.Errorf("too-late event emitted: %v", got)
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d", r.Dropped())
	}
	// Exactly at the boundary (10-2=8) is accepted.
	r.Offer(&event.Event{Time: 8, ID: 3})
	if r.Dropped() != 1 {
		t.Error("boundary event dropped")
	}
}

// TestReordererTimestampTies: events sharing a time stamp re-emit in
// ID order (the stream tie-breaker), wherever they arrived in the
// disorder window.
func TestReordererTimestampTies(t *testing.T) {
	r := NewReorderer(4)
	input := []*event.Event{
		{Time: 3, ID: 5}, {Time: 3, ID: 2}, {Time: 1, ID: 1},
		{Time: 3, ID: 4}, {Time: 5, ID: 6}, {Time: 3, ID: 3},
		{Time: 9, ID: 7},
	}
	var got []*event.Event
	for _, e := range input {
		got = append(got, r.Offer(e)...)
	}
	got = append(got, r.Flush()...)
	if len(got) != len(input) {
		t.Fatalf("emitted %d of %d", len(got), len(input))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Before(got[i]) {
			t.Fatalf("emission %d not in (time, ID) order: %v then %v", i, got[i-1], got[i])
		}
	}
}

// TestReordererDuplicateIDs: duplicate (time, ID) pairs — a source
// that retries, or two sources reusing a sequence — are both kept and
// both re-emitted; the buffer deduplicates nothing.
func TestReordererDuplicateIDs(t *testing.T) {
	r := NewReorderer(2)
	var got []*event.Event
	for _, e := range []*event.Event{
		{Time: 1, ID: 1}, {Time: 2, ID: 1}, {Time: 2, ID: 1}, {Time: 4, ID: 2},
	} {
		got = append(got, r.Offer(e)...)
	}
	got = append(got, r.Flush()...)
	if len(got) != 4 {
		t.Fatalf("emitted %d events, want 4 (duplicates kept)", len(got))
	}
	dups := 0
	for _, e := range got {
		if e.Time == 2 && e.ID == 1 {
			dups++
		}
	}
	if dups != 2 {
		t.Errorf("duplicate pair emitted %d times, want 2", dups)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

// TestReordererSlackBoundaryDrops pins the drop boundary: an event at
// exactly maxSeen-slack is admitted, one time unit older is dropped,
// and the watermark never regresses when a drop happens.
func TestReordererSlackBoundaryDrops(t *testing.T) {
	r := NewReorderer(3)
	r.Offer(&event.Event{Time: 10, ID: 1})
	// The boundary event sits exactly at the watermark (maxSeen-slack):
	// admitted, but held — ties of it are still admissible.
	if got := r.Offer(&event.Event{Time: 7, ID: 2}); len(got) != 0 {
		t.Fatalf("boundary event (maxSeen-slack) released early: %v", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("boundary event counted as dropped")
	}
	if r.Offer(&event.Event{Time: 6, ID: 3}); r.Dropped() != 1 {
		t.Fatalf("dropped = %d after sub-boundary event, want 1", r.Dropped())
	}
	if max, ok := r.MaxSeen(); !ok || max != 10 {
		t.Errorf("MaxSeen = %d,%v, want 10,true", max, ok)
	}
	// A drop leaves the buffer intact: both admitted events are still
	// pending and re-emit in order on flush.
	if buf := r.Buffered(); buf != 2 {
		t.Errorf("buffered = %d, want 2", buf)
	}
	out := r.Flush()
	if len(out) != 2 || out[0].Time != 7 || out[1].Time != 10 {
		t.Errorf("flush = %v", out)
	}
}

func TestReordererZeroSlackHoldsTiesOnly(t *testing.T) {
	// Slack 0 still admits ties at the current maximum, so events are
	// held until time strictly advances (their ties may be in flight)
	// and released in ID order.
	r := NewReorderer(0)
	if out := r.Offer(&event.Event{Time: 1, ID: 2}); len(out) != 0 {
		t.Fatalf("event released while its ties are admissible: %v", out)
	}
	if out := r.Offer(&event.Event{Time: 1, ID: 1}); len(out) != 0 {
		t.Fatalf("tie released early: %v", out)
	}
	out := r.Offer(&event.Event{Time: 2, ID: 3})
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 2 {
		t.Fatalf("time advance released %v, want both t=1 events in ID order", out)
	}
	if got := r.Flush(); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("flush = %v", got)
	}
}

// TestReordererBoundaryTieStaysOrdered is the regression test for the
// boundary-tie bug: with slack 2, after 3 then 5 arrive, a late tie
// at time 3 is still admissible (3 >= 5-2) — it must be emitted in ID
// order with the earlier time-3 event, not after it.
func TestReordererBoundaryTieStaysOrdered(t *testing.T) {
	r := NewReorderer(2)
	var got []*event.Event
	got = append(got, r.Offer(&event.Event{Time: 3, ID: 5})...)
	got = append(got, r.Offer(&event.Event{Time: 5, ID: 9})...)
	got = append(got, r.Offer(&event.Event{Time: 3, ID: 1})...) // boundary tie
	got = append(got, r.Flush()...)
	if r.Dropped() != 0 {
		t.Fatalf("boundary tie dropped")
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d of 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Before(got[i]) {
			t.Fatalf("emission not in (time, ID) order: %v", got)
		}
	}
}

// TestReordererFeedsEngine is the end-to-end contract: slack-repaired
// streams are accepted by the engine and produce the same results as
// the originally ordered stream.
func TestReordererFeedsEngine(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(20, 10).MustBuild()
	plan := core.MustPlan(q)

	rng := rand.New(rand.NewSource(4))
	var ordered []*event.Event
	tm := int64(0)
	for i := 0; i < 60; i++ {
		tm += int64(rng.Intn(3))
		ordered = append(ordered, event.New("A", tm))
	}
	ref := core.NewEngine(plan)
	for _, e := range ordered {
		if err := ref.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Close()

	// Shuffle within windows of 4 positions (disorder <= ~6 ticks).
	shuffled := make([]*event.Event, len(ordered))
	for i := range ordered {
		shuffled[i] = ordered[i].Clone()
		shuffled[i].ID = 0
	}
	for i := 0; i+3 < len(shuffled); i += 4 {
		rng.Shuffle(4, func(a, b int) {
			shuffled[i+a], shuffled[i+b] = shuffled[i+b], shuffled[i+a]
		})
	}
	re := NewReorderer(10)
	eng := core.NewEngine(plan)
	feed := func(evs []*event.Event) {
		for _, e := range evs {
			if err := eng.Process(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range shuffled {
		feed(re.Offer(e))
	}
	feed(re.Flush())
	got := eng.Close()
	if re.Dropped() != 0 {
		t.Fatalf("dropped %d within slack", re.Dropped())
	}
	if len(got) != len(want) {
		t.Fatalf("%d results vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("result %d: %v vs %v", i, got[i], want[i])
		}
	}
}
