package pattern

import (
	"reflect"
	"strings"
	"testing"
)

// figure4Pattern is P = (SEQ(A+, B))+ from Figures 2 and 4.
func figure4Pattern() Node {
	return Plus(Seq(Plus(Type("A")), Type("B")))
}

func TestFigure4FSA(t *testing.T) {
	f := MustCompile(figure4Pattern())
	if got := f.StartAliases(); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("start = %v, want [A]", got)
	}
	if got := f.EndAliases(); !reflect.DeepEqual(got, []string{"B"}) {
		t.Errorf("end = %v, want [B]", got)
	}
	if got := f.PredTypes("A"); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("predTypes(A) = %v, want [A B]", got)
	}
	if got := f.PredTypes("B"); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("predTypes(B) = %v, want [A]", got)
	}
	if mids := f.Mid(); len(mids) != 0 {
		t.Errorf("mid = %v, want empty", mids)
	}
}

func TestQ2PatternFSA(t *testing.T) {
	// SEQ(Accept, (SEQ(Call, Cancel))+, Finish) from query q2.
	p := Seq(Type("Accept"), Plus(Seq(Type("Call"), Type("Cancel"))), Type("Finish"))
	f := MustCompile(p)
	if got := f.StartAliases(); !reflect.DeepEqual(got, []string{"Accept"}) {
		t.Errorf("start = %v", got)
	}
	if got := f.EndAliases(); !reflect.DeepEqual(got, []string{"Finish"}) {
		t.Errorf("end = %v", got)
	}
	wantPred := map[string][]string{
		"Accept": nil,
		"Call":   {"Accept", "Cancel"},
		"Cancel": {"Call"},
		"Finish": {"Cancel"},
	}
	for alias, want := range wantPred {
		got := f.PredTypes(alias)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("predTypes(%s) = %v, want %v", alias, got, want)
		}
	}
	if got := f.Mid(); !reflect.DeepEqual(got, []string{"Call", "Cancel"}) {
		t.Errorf("mid = %v, want [Call Cancel]", got)
	}
}

func TestQ3PatternFSA(t *testing.T) {
	// SEQ(Stock A+, Stock B+) from query q3: same stream type, two aliases.
	p := Seq(Plus(TypeAs("Stock", "A")), Plus(TypeAs("Stock", "B")))
	f := MustCompile(p)
	if got := f.PredTypes("A"); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("predTypes(A) = %v", got)
	}
	if got := f.PredTypes("B"); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("predTypes(B) = %v", got)
	}
	if got := f.AliasesForType("Stock"); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("aliasesForType(Stock) = %v", got)
	}
}

func TestSingleTypeKleene(t *testing.T) {
	f := MustCompile(Plus(Type("M")))
	if !f.IsStart("M") || !f.IsEnd("M") {
		t.Error("M should be both start and end")
	}
	if got := f.PredTypes("M"); !reflect.DeepEqual(got, []string{"M"}) {
		t.Errorf("predTypes(M) = %v", got)
	}
}

func TestLengthAndHasKleene(t *testing.T) {
	p := Seq(Type("A"), Plus(Seq(Type("B"), Type("C"))), Type("D"))
	if got := Length(p); got != 4 {
		t.Errorf("Length = %d, want 4", got)
	}
	if !HasKleene(p) {
		t.Error("HasKleene = false")
	}
	if HasKleene(Seq(Type("A"), Type("B"))) {
		t.Error("event sequence pattern reported as Kleene")
	}
	// Negated types do not count toward pattern length.
	pn := Seq(Type("A"), Not(Type("N")), Type("B"))
	if got := Length(pn); got != 2 {
		t.Errorf("Length with NOT = %d, want 2", got)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []Node{
		Seq(),                          // empty SEQ
		Or(),                           // empty OR
		Seq(Type("A"), Type("A")),      // duplicate alias
		Plus(&TypeNode{EventType: ""}), // empty type
		Not(Type("A")),                 // NOT outside SEQ
		&TypeNode{EventType: "A"},      // empty alias
	}
	for i, p := range cases {
		if err := Validate(p); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, p)
		}
	}
	if err := Validate(figure4Pattern()); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
}

func TestCompileRejectsBorderNegation(t *testing.T) {
	if _, err := Compile(Seq(Not(Type("N")), Type("A"))); err == nil {
		t.Error("NOT at start of SEQ accepted")
	}
	if _, err := Compile(Seq(Type("A"), Not(Type("N")))); err == nil {
		t.Error("NOT at end of SEQ accepted")
	}
}

func TestNegationConstraint(t *testing.T) {
	p := Seq(Plus(Type("A")), Not(Type("N")), Type("B"))
	f := MustCompile(p)
	if len(f.Negations) != 1 {
		t.Fatalf("negations = %d, want 1", len(f.Negations))
	}
	n := f.Negations[0]
	if !reflect.DeepEqual(n.Pred, []string{"A"}) || !reflect.DeepEqual(n.Follow, []string{"B"}) {
		t.Errorf("negation guard = pred %v follow %v", n.Pred, n.Follow)
	}
	// The positive edge A->B still exists.
	if got := f.PredTypes("B"); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("predTypes(B) = %v", got)
	}
}

func TestDesugarStar(t *testing.T) {
	// SEQ(A*, B) = SEQ(A+, B) OR B (§8).
	p := Seq(Star(Type("A")), Type("B"))
	f := MustCompile(p)
	if got := f.StartAliases(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("start = %v, want [A B]", got)
	}
	if got := f.EndAliases(); !reflect.DeepEqual(got, []string{"B"}) {
		t.Errorf("end = %v", got)
	}
	if got := f.PredTypes("B"); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("predTypes(B) = %v", got)
	}
	if !f.AcceptsAliasSeq([]string{"B"}) {
		t.Error("lone B rejected, star should allow zero As")
	}
	if !f.AcceptsAliasSeq([]string{"A", "A", "B"}) {
		t.Error("AAB rejected")
	}
}

func TestDesugarOptional(t *testing.T) {
	p := Seq(Type("A"), Opt(Type("B")), Type("C"))
	f := MustCompile(p)
	if !f.AcceptsAliasSeq([]string{"A", "C"}) || !f.AcceptsAliasSeq([]string{"A", "B", "C"}) {
		t.Error("optional B not handled")
	}
	if f.AcceptsAliasSeq([]string{"A", "B", "B", "C"}) {
		t.Error("B repeated though not Kleene")
	}
}

func TestDesugarRejectsEmptyMatch(t *testing.T) {
	for _, p := range []Node{
		Star(Type("A")),
		Opt(Type("A")),
		Seq(Star(Type("A")), Opt(Type("B"))),
	} {
		if _, err := Compile(p); err == nil {
			t.Errorf("pattern %v matching empty trend accepted", p)
		}
	}
}

func TestUnrollMinLength(t *testing.T) {
	p, err := UnrollMinLength(Plus(Type("A")), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "SEQ(A A_1, A A_2, A+)" {
		t.Errorf("unrolled = %q", got)
	}
	f := MustCompile(p)
	if f.AcceptsAliasSeq([]string{"A_1", "A_2"}) {
		t.Error("length-2 match accepted after unrolling to 3")
	}
	if !f.AcceptsAliasSeq([]string{"A_1", "A_2", "A"}) {
		t.Error("length-3 match rejected")
	}
	if !f.AcceptsAliasSeq([]string{"A_1", "A_2", "A", "A"}) {
		t.Error("length-4 match rejected")
	}
	if _, err := UnrollMinLength(Seq(Type("A"), Type("B")), 3); err == nil {
		t.Error("unrolling a SEQ accepted")
	}
	same, err := UnrollMinLength(Plus(Type("A")), 1)
	if err != nil || same.String() != "A+" {
		t.Errorf("min 1 should be identity, got %v, %v", same, err)
	}
}

func TestAcceptsAliasSeqFigure4(t *testing.T) {
	f := MustCompile(figure4Pattern())
	yes := [][]string{{"A", "B"}, {"A", "A", "B"}, {"A", "B", "A", "B"}, {"A", "A", "B", "A", "B"}}
	no := [][]string{{}, {"B"}, {"A"}, {"B", "A"}, {"A", "B", "A"}, {"A", "B", "B"}}
	for _, s := range yes {
		if !f.AcceptsAliasSeq(s) {
			t.Errorf("rejected %v", s)
		}
	}
	for _, s := range no {
		if f.AcceptsAliasSeq(s) {
			t.Errorf("accepted %v", s)
		}
	}
}

func TestFlattenFigure4(t *testing.T) {
	f := MustCompile(figure4Pattern())
	got := f.Flatten(4)
	want := [][]string{
		{"A", "B"},
		{"A", "A", "B"},
		{"A", "A", "A", "B"},
		{"A", "B", "A", "B"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Flatten(4) = %v, want %v", got, want)
	}
	for _, seq := range got {
		if !f.AcceptsAliasSeq(seq) {
			t.Errorf("flattened sequence %v not accepted", seq)
		}
	}
}

func TestFlattenMatchesCount(t *testing.T) {
	f := MustCompile(figure4Pattern())
	all := f.Flatten(9)
	byLen := map[int]uint64{}
	for _, s := range all {
		byLen[len(s)]++
	}
	for n := 1; n <= 9; n++ {
		if got := f.CountFlattened(n); got != byLen[n] {
			t.Errorf("CountFlattened(%d) = %d, enumeration found %d", n, got, byLen[n])
		}
	}
}

func TestCountFlattenedLinearPattern(t *testing.T) {
	f := MustCompile(Plus(Type("A")))
	for n := 1; n <= 5; n++ {
		if got := f.CountFlattened(n); got != 1 {
			t.Errorf("A+ has %d strings of length %d, want 1", got, n)
		}
	}
	if got := f.CountFlattened(0); got != 0 {
		t.Errorf("CountFlattened(0) = %d", got)
	}
}

func TestStringRendering(t *testing.T) {
	p := Plus(Seq(Plus(TypeAs("Stock", "A")), Type("B")))
	if got := p.String(); got != "(SEQ((Stock A)+, B))+" {
		t.Errorf("String = %q", got)
	}
	if got := Or(Type("A"), Type("B")).String(); got != "OR(A, B)" {
		t.Errorf("OR String = %q", got)
	}
	if got := Not(Type("N")).String(); got != "NOT(N)" {
		t.Errorf("NOT String = %q", got)
	}
	if got := Star(Type("A")).String(); got != "A*" {
		t.Errorf("star String = %q", got)
	}
	if got := Opt(Type("A")).String(); got != "A?" {
		t.Errorf("opt String = %q", got)
	}
}

func TestAliasesOrder(t *testing.T) {
	p := Seq(TypeAs("S", "B"), TypeAs("S", "A"), Type("C"))
	if got := Aliases(p); !reflect.DeepEqual(got, []string{"B", "A", "C"}) {
		t.Errorf("Aliases = %v", got)
	}
	if got := SortedAliases(p); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("SortedAliases = %v", got)
	}
}

func TestDisjunctionFSA(t *testing.T) {
	// OR(SEQ(A,B), C+) — disjunction support from §8.
	p := Or(Seq(Type("A"), Type("B")), Plus(Type("C")))
	f := MustCompile(p)
	if got := f.StartAliases(); !reflect.DeepEqual(got, []string{"A", "C"}) {
		t.Errorf("start = %v", got)
	}
	if got := f.EndAliases(); !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Errorf("end = %v", got)
	}
	if !f.AcceptsAliasSeq([]string{"A", "B"}) || !f.AcceptsAliasSeq([]string{"C", "C"}) {
		t.Error("valid disjunct rejected")
	}
	if f.AcceptsAliasSeq([]string{"A", "C"}) {
		t.Error("cross-disjunct sequence accepted")
	}
}

func TestFSAStringIsInformative(t *testing.T) {
	f := MustCompile(figure4Pattern())
	s := f.String()
	for _, frag := range []string{"start={A}", "end={B}", "A<-{A,B}", "B<-{A}"} {
		if !strings.Contains(s, frag) {
			t.Errorf("FSA.String() = %q missing %q", s, frag)
		}
	}
}

func TestEdges(t *testing.T) {
	f := MustCompile(figure4Pattern())
	if got := f.Edges(); !reflect.DeepEqual(got, []string{"A->A", "A->B", "B->A"}) {
		t.Errorf("Edges = %v", got)
	}
}
