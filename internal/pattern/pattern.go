// Package pattern implements the Kleene pattern model of the COGRA
// paper (§2.1, Definition 1) and its static analysis (§3.1): the
// translation of a pattern into a Finite State Automaton representation
// that exposes start/end/mid types and the predecessor-type relation
// driving every aggregation algorithm.
//
// The grammar is
//
//	P ::= E | P+ | SEQ(P1, ..., Pk)
//
// extended per §8 with Kleene star P*, optional P?, disjunction
// OR(P1,...,Pk) and negation NOT(N) inside SEQ. Star and optional are
// syntactic sugar and are rewritten away before analysis
// (SEQ(Pi*, Pj) = SEQ(Pi+, Pj) ∨ Pj, and Pi? analogously).
//
// Each leaf names an event type and binds it to an alias (the paper's
// "event type in the pattern"; q3's "Stock A+" has type Stock and
// alias A). Aliases must be unique within a pattern; the multiple-
// occurrence extension of §8 is obtained by giving distinct aliases to
// repeated types.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a node of the pattern abstract syntax tree.
type Node interface {
	fmt.Stringer
	// children returns sub-patterns for traversal.
	children() []Node
	clone() Node
}

// TypeNode is a leaf: one event type bound to an alias.
type TypeNode struct {
	// EventType is the stream event type to match, e.g. "Stock".
	EventType string
	// Alias is the pattern-local name, e.g. "A". If the query wrote a
	// bare type ("Measurement M+" aliases M; "Accept" aliases Accept),
	// the parser fills Alias in.
	Alias string
}

// SeqNode is the event sequence operator SEQ(P1, ..., Pk).
type SeqNode struct{ Parts []Node }

// PlusNode is the Kleene plus operator P+.
type PlusNode struct{ Sub Node }

// StarNode is the Kleene star operator P* (§8, sugar for (P+)?).
type StarNode struct{ Sub Node }

// OptNode is the optional operator P? (§8 sugar).
type OptNode struct{ Sub Node }

// OrNode is the disjunction operator OR(P1,...,Pk) (§8).
type OrNode struct{ Parts []Node }

// NotNode marks a negated sub-pattern NOT(N) appearing inside a SEQ
// (§8). A match of N between the surrounding positive sub-patterns
// invalidates trends that would span it.
type NotNode struct{ Sub Node }

// Type constructs a leaf with alias defaulting to the type name.
func Type(eventType string) *TypeNode {
	return &TypeNode{EventType: eventType, Alias: eventType}
}

// TypeAs constructs a leaf with an explicit alias.
func TypeAs(eventType, alias string) *TypeNode {
	return &TypeNode{EventType: eventType, Alias: alias}
}

// Seq constructs SEQ(parts...).
func Seq(parts ...Node) *SeqNode { return &SeqNode{Parts: parts} }

// Plus constructs sub+.
func Plus(sub Node) *PlusNode { return &PlusNode{Sub: sub} }

// Star constructs sub*.
func Star(sub Node) *StarNode { return &StarNode{Sub: sub} }

// Opt constructs sub?.
func Opt(sub Node) *OptNode { return &OptNode{Sub: sub} }

// Or constructs OR(parts...).
func Or(parts ...Node) *OrNode { return &OrNode{Parts: parts} }

// Not constructs NOT(sub).
func Not(sub Node) *NotNode { return &NotNode{Sub: sub} }

func (n *TypeNode) children() []Node { return nil }
func (n *SeqNode) children() []Node  { return n.Parts }
func (n *PlusNode) children() []Node { return []Node{n.Sub} }
func (n *StarNode) children() []Node { return []Node{n.Sub} }
func (n *OptNode) children() []Node  { return []Node{n.Sub} }
func (n *OrNode) children() []Node   { return n.Parts }
func (n *NotNode) children() []Node  { return []Node{n.Sub} }

// Children returns a node's direct sub-patterns in syntactic order
// (nil for leaves), for callers outside the package that need a
// generic traversal — e.g. the fuzz query generator classifying
// negated aliases.
func Children(n Node) []Node { return n.children() }

func (n *TypeNode) clone() Node { c := *n; return &c }
func (n *SeqNode) clone() Node  { return &SeqNode{Parts: cloneAll(n.Parts)} }
func (n *PlusNode) clone() Node { return &PlusNode{Sub: n.Sub.clone()} }
func (n *StarNode) clone() Node { return &StarNode{Sub: n.Sub.clone()} }
func (n *OptNode) clone() Node  { return &OptNode{Sub: n.Sub.clone()} }
func (n *OrNode) clone() Node   { return &OrNode{Parts: cloneAll(n.Parts)} }
func (n *NotNode) clone() Node  { return &NotNode{Sub: n.Sub.clone()} }

func cloneAll(parts []Node) []Node {
	out := make([]Node, len(parts))
	for i, p := range parts {
		out[i] = p.clone()
	}
	return out
}

func (n *TypeNode) String() string {
	if n.Alias != "" && n.Alias != n.EventType {
		return n.EventType + " " + n.Alias
	}
	return n.EventType
}

func (n *SeqNode) String() string {
	parts := make([]string, len(n.Parts))
	for i, p := range n.Parts {
		parts[i] = p.String()
	}
	return "SEQ(" + strings.Join(parts, ", ") + ")"
}

func (n *PlusNode) String() string { return wrap(n.Sub) + "+" }
func (n *StarNode) String() string { return wrap(n.Sub) + "*" }
func (n *OptNode) String() string  { return wrap(n.Sub) + "?" }

func (n *OrNode) String() string {
	parts := make([]string, len(n.Parts))
	for i, p := range n.Parts {
		parts[i] = p.String()
	}
	return "OR(" + strings.Join(parts, ", ") + ")"
}

func (n *NotNode) String() string { return "NOT(" + n.Sub.String() + ")" }

// wrap parenthesises composite sub-patterns under a postfix operator.
func wrap(n Node) string {
	if t, ok := n.(*TypeNode); ok && (t.Alias == "" || t.Alias == t.EventType) {
		return n.String()
	}
	return "(" + n.String() + ")"
}

// Aliases returns every alias appearing in the pattern, in left-to-
// right order of first appearance (negated sub-patterns included).
func Aliases(p Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if t, ok := n.(*TypeNode); ok {
			if !seen[t.Alias] {
				seen[t.Alias] = true
				out = append(out, t.Alias)
			}
			return
		}
		for _, c := range n.children() {
			walk(c)
		}
	}
	walk(p)
	return out
}

// Length returns the pattern length: the number of event types
// (leaves) in it (Definition 1), negated sub-patterns excluded.
func Length(p Node) int {
	n := 0
	var walk func(Node)
	walk = func(node Node) {
		switch v := node.(type) {
		case *TypeNode:
			n++
		case *NotNode:
			// negated types do not count toward the positive length
		default:
			for _, c := range v.children() {
				walk(c)
			}
		}
	}
	walk(p)
	return n
}

// HasKleene reports whether the pattern contains a Kleene plus or star
// operator, i.e. whether it is a Kleene pattern (Definition 1) matching
// trends of unbounded length.
func HasKleene(p Node) bool {
	switch v := p.(type) {
	case *PlusNode, *StarNode:
		return true
	default:
		for _, c := range v.children() {
			if HasKleene(c) {
				return true
			}
		}
		return false
	}
}

// Validate checks the structural assumptions of §2.1: aliases unique,
// SEQ/OR non-empty, negation only directly inside SEQ and not at the
// borders of the whole pattern.
func Validate(p Node) error {
	seen := map[string]bool{}
	var walk func(n Node, inSeq bool) error
	walk = func(n Node, inSeq bool) error {
		switch v := n.(type) {
		case *TypeNode:
			if v.EventType == "" {
				return fmt.Errorf("pattern: empty event type")
			}
			if v.Alias == "" {
				return fmt.Errorf("pattern: type %s has empty alias", v.EventType)
			}
			if seen[v.Alias] {
				return fmt.Errorf("pattern: duplicate alias %q (give repeated types distinct aliases, §8)", v.Alias)
			}
			seen[v.Alias] = true
			return nil
		case *SeqNode:
			if len(v.Parts) == 0 {
				return fmt.Errorf("pattern: empty SEQ")
			}
			for _, c := range v.Parts {
				if err := walk(c, true); err != nil {
					return err
				}
			}
			return nil
		case *OrNode:
			if len(v.Parts) == 0 {
				return fmt.Errorf("pattern: empty OR")
			}
			for _, c := range v.Parts {
				if err := walk(c, false); err != nil {
					return err
				}
			}
			return nil
		case *NotNode:
			if !inSeq {
				return fmt.Errorf("pattern: NOT may only appear inside SEQ")
			}
			return walk(v.Sub, false)
		case *PlusNode:
			return walk(v.Sub, false)
		case *StarNode:
			return walk(v.Sub, false)
		case *OptNode:
			return walk(v.Sub, false)
		default:
			return fmt.Errorf("pattern: unknown node %T", n)
		}
	}
	return walk(p, false)
}

// Desugar rewrites Kleene star and optional operators away (§8):
//
//	SEQ(..., P*, ...)  becomes  OR(SEQ(..., P+, ...), SEQ(..., ...))
//	SEQ(..., P?, ...)  becomes  OR(SEQ(..., P, ...), SEQ(..., ...))
//
// realised locally as P* -> OR(P+, ε) via distribution over the
// enclosing SEQ. Top-level P* / P? are rejected since a trend must
// contain at least one event. The returned pattern contains only
// TypeNode, SeqNode, PlusNode, OrNode and NotNode.
func Desugar(p Node) (Node, error) {
	out, eps, err := desugar(p)
	if err != nil {
		return nil, err
	}
	if eps || out == nil {
		return nil, fmt.Errorf("pattern: %s may match the empty trend; wrap it so at least one event is required", p)
	}
	return out, nil
}

// desugar returns the rewritten pattern plus whether it can also match
// the empty trend (ε). A nil node with eps=true is pure ε.
func desugar(p Node) (Node, bool, error) {
	switch v := p.(type) {
	case *TypeNode:
		return v.clone(), false, nil
	case *PlusNode:
		sub, eps, err := desugar(v.Sub)
		if err != nil {
			return nil, false, err
		}
		if eps {
			return nil, false, fmt.Errorf("pattern: Kleene over possibly-empty sub-pattern %s", v.Sub)
		}
		return &PlusNode{Sub: sub}, false, nil
	case *StarNode:
		sub, eps, err := desugar(v.Sub)
		if err != nil {
			return nil, false, err
		}
		if eps {
			return nil, false, fmt.Errorf("pattern: Kleene over possibly-empty sub-pattern %s", v.Sub)
		}
		return &PlusNode{Sub: sub}, true, nil
	case *OptNode:
		sub, eps, err := desugar(v.Sub)
		if err != nil {
			return nil, false, err
		}
		if eps {
			return sub, true, nil
		}
		return sub, true, nil
	case *NotNode:
		sub, eps, err := desugar(v.Sub)
		if err != nil {
			return nil, false, err
		}
		if eps {
			return nil, false, fmt.Errorf("pattern: negated sub-pattern %s may be empty", v.Sub)
		}
		return &NotNode{Sub: sub}, false, nil
	case *OrNode:
		parts := make([]Node, 0, len(v.Parts))
		anyEps := false
		for _, c := range v.Parts {
			sub, eps, err := desugar(c)
			if err != nil {
				return nil, false, err
			}
			anyEps = anyEps || eps
			if sub != nil {
				parts = append(parts, sub)
			}
		}
		if len(parts) == 0 {
			return nil, anyEps, nil
		}
		if len(parts) == 1 {
			return parts[0], anyEps, nil
		}
		return &OrNode{Parts: parts}, anyEps, nil
	case *SeqNode:
		// Distribute optionality: each part contributes either its
		// non-empty form, or nothing if it admits ε. We build the set
		// of alternative SEQ bodies; with k optional parts that is 2^k
		// alternatives, folded into a single OR. Patterns in practice
		// have very few optional parts.
		type alt struct{ parts []Node }
		alts := []alt{{}}
		for _, c := range v.Parts {
			sub, eps, err := desugar(c)
			if err != nil {
				return nil, false, err
			}
			var next []alt
			for _, a := range alts {
				if sub != nil {
					withPart := make([]Node, len(a.parts), len(a.parts)+1)
					copy(withPart, a.parts)
					next = append(next, alt{parts: append(withPart, cloneFresh(sub))})
				}
				if eps {
					next = append(next, alt{parts: a.parts})
				}
			}
			alts = next
		}
		var bodies []Node
		canEps := false
		for _, a := range alts {
			switch len(a.parts) {
			case 0:
				canEps = true
			case 1:
				bodies = append(bodies, a.parts[0])
			default:
				bodies = append(bodies, &SeqNode{Parts: a.parts})
			}
		}
		if len(bodies) == 0 {
			return nil, canEps, nil
		}
		if len(bodies) == 1 {
			return bodies[0], canEps, nil
		}
		return &OrNode{Parts: bodies}, canEps, nil
	default:
		return nil, false, fmt.Errorf("pattern: unknown node %T", p)
	}
}

// cloneFresh deep-copies a node so OR alternatives produced by Desugar
// do not share mutable structure.
func cloneFresh(n Node) Node { return n.clone() }

// UnrollMinLength rewrites P+ so trends shorter than min are excluded
// (§8 "Predicates on Minimal Trend Length"): A+ with min 3 becomes
// SEQ(A_1, A_2, A+). Unrolled copies get numbered aliases. Only
// top-level PlusNode over a single type is supported, matching the
// paper's example; other shapes return an error.
func UnrollMinLength(p Node, min int) (Node, error) {
	if min <= 1 {
		return p, nil
	}
	plus, ok := p.(*PlusNode)
	if !ok {
		return nil, fmt.Errorf("pattern: min-length unrolling needs a top-level Kleene plus, got %s", p)
	}
	leaf, ok := plus.Sub.(*TypeNode)
	if !ok {
		return nil, fmt.Errorf("pattern: min-length unrolling supports E+ only, got %s", p)
	}
	parts := make([]Node, 0, min)
	for i := 1; i < min; i++ {
		parts = append(parts, &TypeNode{
			EventType: leaf.EventType,
			Alias:     fmt.Sprintf("%s_%d", leaf.Alias, i),
		})
	}
	parts = append(parts, &PlusNode{Sub: leaf.clone()})
	return &SeqNode{Parts: parts}, nil
}

// AliasTypes maps alias -> stream event type for every leaf.
func AliasTypes(p Node) map[string]string {
	m := map[string]string{}
	var walk func(Node)
	walk = func(n Node) {
		if t, ok := n.(*TypeNode); ok {
			m[t.Alias] = t.EventType
			return
		}
		for _, c := range n.children() {
			walk(c)
		}
	}
	walk(p)
	return m
}

// SortedAliases returns the aliases sorted lexicographically; useful
// for deterministic iteration in tests and reports.
func SortedAliases(p Node) []string {
	a := Aliases(p)
	sort.Strings(a)
	return a
}
