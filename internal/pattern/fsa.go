package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// NegConstraint records one negated sub-pattern NOT(N) found between
// two positive sub-patterns inside a SEQ (§8). A match of Neg renders
// all previously matched events of the Pred aliases incompatible with
// all future events of the Follow aliases.
type NegConstraint struct {
	// Neg is the negated sub-pattern.
	Neg Node
	// Pred holds the end aliases of the positive sub-pattern preceding
	// the negation (the paper's Tp).
	Pred []string
	// Follow holds the start aliases of the positive sub-pattern
	// following the negation (the paper's Tf).
	Follow []string
}

// FSA is the Finite State Automaton representation of a pattern
// (§3.1). States are aliases ("event types in the pattern"); since an
// alias occurs exactly once, the language of alias strings is local:
// a string matches iff its first alias is a start type, its last alias
// is an end type, and every adjacent pair is connected by a transition.
// This locality is precisely what makes predecessor-type bookkeeping
// (Definition 7) sufficient for trend aggregation.
type FSA struct {
	// Pattern is the desugared pattern the FSA was built from.
	Pattern Node
	// Aliases lists the states in order of first appearance.
	Aliases []string
	// AliasType maps alias -> stream event type.
	AliasType map[string]string
	// Start is the set of start types start(P).
	Start map[string]bool
	// End is the set of end types end(P).
	End map[string]bool
	// Pred maps an alias E to P.predTypes(E), sorted.
	Pred map[string][]string
	// Succ is the inverse of Pred, sorted.
	Succ map[string][]string
	// Negations lists negated sub-patterns with their guard aliases.
	Negations []NegConstraint
	// TypeAliases maps a stream event type to the aliases matching it
	// (more than one under the multiple-occurrence extension of §8).
	TypeAliases map[string][]string
}

// Compile desugars, validates and analyses a pattern.
func Compile(p Node) (*FSA, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	d, err := Desugar(p)
	if err != nil {
		return nil, err
	}
	f := &FSA{
		Pattern:     d,
		AliasType:   AliasTypes(d),
		Start:       map[string]bool{},
		End:         map[string]bool{},
		Pred:        map[string][]string{},
		Succ:        map[string][]string{},
		TypeAliases: map[string][]string{},
	}
	f.Aliases = Aliases(d)
	edges := map[[2]string]bool{}
	starts, ends, err := f.analyse(d, edges)
	if err != nil {
		return nil, err
	}
	for _, s := range starts {
		f.Start[s] = true
	}
	for _, e := range ends {
		f.End[e] = true
	}
	predSets := map[string]map[string]bool{}
	succSets := map[string]map[string]bool{}
	for _, a := range f.Aliases {
		predSets[a] = map[string]bool{}
		succSets[a] = map[string]bool{}
	}
	for e := range edges {
		from, to := e[0], e[1]
		predSets[to][from] = true
		succSets[from][to] = true
	}
	for _, a := range f.Aliases {
		f.Pred[a] = sortedKeys(predSets[a])
		f.Succ[a] = sortedKeys(succSets[a])
		f.TypeAliases[f.AliasType[a]] = append(f.TypeAliases[f.AliasType[a]], a)
	}
	return f, nil
}

// MustCompile is Compile that panics on error; for tests and fixed
// example patterns.
func MustCompile(p Node) *FSA {
	f, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return f
}

// analyse walks the desugared tree, returning start and end alias
// lists and filling the edge set. The construction mirrors §3.1:
//
//	E:              starts = ends = {E}
//	SEQ(P1,...,Pk): ends(Pi) -> starts(Pi+1) for consecutive positive
//	                parts; NOT parts raise negation constraints
//	P+:             edges of P plus ends(P) -> starts(P) loop-back
//	OR(P1,...,Pk):  unions
func (f *FSA) analyse(p Node, edges map[[2]string]bool) (starts, ends []string, err error) {
	switch v := p.(type) {
	case *TypeNode:
		return []string{v.Alias}, []string{v.Alias}, nil
	case *PlusNode:
		s, e, err := f.analyse(v.Sub, edges)
		if err != nil {
			return nil, nil, err
		}
		for _, from := range e {
			for _, to := range s {
				edges[[2]string{from, to}] = true
			}
		}
		return s, e, nil
	case *OrNode:
		var ss, es []string
		for _, c := range v.Parts {
			s, e, err := f.analyse(c, edges)
			if err != nil {
				return nil, nil, err
			}
			ss = append(ss, s...)
			es = append(es, e...)
		}
		return ss, es, nil
	case *SeqNode:
		var prevEnds []string
		var pendingNeg []Node
		first := true
		for _, c := range v.Parts {
			if not, ok := c.(*NotNode); ok {
				if first {
					return nil, nil, fmt.Errorf("pattern: NOT at the start of SEQ")
				}
				pendingNeg = append(pendingNeg, not.Sub)
				continue
			}
			s, e, err := f.analyse(c, edges)
			if err != nil {
				return nil, nil, err
			}
			if first {
				starts = s
				first = false
			} else {
				for _, from := range prevEnds {
					for _, to := range s {
						edges[[2]string{from, to}] = true
					}
				}
				for _, neg := range pendingNeg {
					f.Negations = append(f.Negations, NegConstraint{
						Neg:    neg,
						Pred:   append([]string(nil), prevEnds...),
						Follow: append([]string(nil), s...),
					})
				}
				pendingNeg = nil
			}
			prevEnds = e
		}
		if len(pendingNeg) > 0 {
			return nil, nil, fmt.Errorf("pattern: NOT at the end of SEQ")
		}
		if first {
			return nil, nil, fmt.Errorf("pattern: SEQ with no positive parts")
		}
		return starts, prevEnds, nil
	default:
		return nil, nil, fmt.Errorf("pattern: unexpected node %T after desugaring", p)
	}
}

// PredTypes returns P.predTypes(alias) (§3.1).
func (f *FSA) PredTypes(alias string) []string { return f.Pred[alias] }

// IsStart reports whether alias is a start type of the pattern.
func (f *FSA) IsStart(alias string) bool { return f.Start[alias] }

// IsEnd reports whether alias is an end type of the pattern.
func (f *FSA) IsEnd(alias string) bool { return f.End[alias] }

// Mid returns the middle types mid(P): aliases that are neither start
// nor end types.
func (f *FSA) Mid() []string {
	var mids []string
	for _, a := range f.Aliases {
		if !f.Start[a] && !f.End[a] {
			mids = append(mids, a)
		}
	}
	return mids
}

// StartAliases returns the start types, sorted.
func (f *FSA) StartAliases() []string { return sortedKeys(f.Start) }

// EndAliases returns the end types, sorted.
func (f *FSA) EndAliases() []string { return sortedKeys(f.End) }

// Edges returns all transitions as sorted "from->to" strings; used in
// tests and debug output.
func (f *FSA) Edges() []string {
	var out []string
	for from, tos := range f.Succ {
		for _, to := range tos {
			out = append(out, from+"->"+to)
		}
	}
	sort.Strings(out)
	return out
}

// AliasesForType returns the aliases that match events of the given
// stream type.
func (f *FSA) AliasesForType(eventType string) []string {
	return f.TypeAliases[eventType]
}

// AcceptsAliasSeq reports whether a sequence of aliases is in the
// pattern language (start, adjacency, end — the local language).
func (f *FSA) AcceptsAliasSeq(seq []string) bool {
	if len(seq) == 0 {
		return false
	}
	if !f.Start[seq[0]] || !f.End[seq[len(seq)-1]] {
		return false
	}
	for i := 1; i < len(seq); i++ {
		if !contains(f.Pred[seq[i]], seq[i-1]) {
			return false
		}
	}
	return true
}

// Flatten enumerates every alias string in the pattern language with
// length at most maxLen, in order of increasing length then
// lexicographic. This is the Kleene-flattening both the A-Seq and the
// Flink baselines require (§9.1: "we flatten our queries ... a set of
// fixed-length event sequence queries that cover all possible lengths
// up to l"). The result can be exponential in maxLen for branching
// patterns; callers cap maxLen and account the cost, which is exactly
// the weakness the paper's experiments expose.
func (f *FSA) Flatten(maxLen int) [][]string {
	var out [][]string
	var cur []string
	var dfs func(last string)
	dfs = func(last string) {
		if f.End[last] {
			out = append(out, append([]string(nil), cur...))
		}
		if len(cur) >= maxLen {
			return
		}
		for _, next := range f.Succ[last] {
			cur = append(cur, next)
			dfs(next)
			cur = cur[:len(cur)-1]
		}
	}
	for _, s := range f.StartAliases() {
		cur = []string{s}
		dfs(s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// CountFlattened returns how many alias strings of length exactly n are
// in the pattern language, without materialising them (dynamic program
// over the transition relation). Used to reason about the baseline
// query-workload sizes in benchmarks.
func (f *FSA) CountFlattened(n int) uint64 {
	if n <= 0 {
		return 0
	}
	cur := map[string]uint64{}
	for a := range f.Start {
		cur[a] = 1
	}
	for step := 1; step < n; step++ {
		next := map[string]uint64{}
		for a, c := range cur {
			for _, b := range f.Succ[a] {
				next[b] += c
			}
		}
		cur = next
	}
	var total uint64
	for a, c := range cur {
		if f.End[a] {
			total += c
		}
	}
	return total
}

// String renders the FSA summary, e.g.
// "start={A} end={B} A<-{A,B} B<-{A}".
func (f *FSA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start={%s} end={%s}", strings.Join(f.StartAliases(), ","), strings.Join(f.EndAliases(), ","))
	for _, a := range f.Aliases {
		fmt.Fprintf(&b, " %s<-{%s}", a, strings.Join(f.Pred[a], ","))
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
