package agg

import "repro/internal/snap"

// Snapshot codec for aggregate nodes. A node is pure value state —
// the trend-set count plus one Aux entry per spec — so the encoding is
// positional: the owning structure knows the Specs and validates the
// Aux arity on restore.

// NodeMinBytes is the minimum encoded size of a Node, for collection
// length validation.
const NodeMinBytes = 12

// SnapshotNode writes n to w.
func SnapshotNode(w *snap.Writer, n *Node) {
	w.U64(n.Count)
	w.U32(uint32(len(n.Aux)))
	for _, a := range n.Aux {
		w.U64(a.N)
		w.F64(a.F)
		w.Bool(a.Valid)
	}
}

// RestoreNode reads a Node written by SnapshotNode.
func RestoreNode(r *snap.Reader) Node {
	n := Node{Count: r.U64()}
	k := r.Count(17)
	if k > 0 {
		n.Aux = make([]Aux, k)
		for i := range n.Aux {
			n.Aux[i] = Aux{N: r.U64(), F: r.F64(), Valid: r.Bool()}
		}
	}
	return n
}
