package agg

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func allSpecs() Specs {
	return Specs{
		{Func: CountStar},
		{Func: CountType, Alias: "A"},
		{Func: Min, Alias: "A", Attr: "x"},
		{Func: Max, Alias: "A", Attr: "x"},
		{Func: Sum, Alias: "A", Attr: "x"},
		{Func: Avg, Alias: "A", Attr: "x"},
	}
}

func ev(alias string, x float64) any {
	return TrendEvent(alias, event.New("T", 0).WithNum("x", x))
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Func: CountStar, Alias: "A"},
		{Func: CountType},
		{Func: CountType, Alias: "A", Attr: "x"},
		{Func: Min, Alias: "A"},
		{Func: Sum, Attr: "x"},
		{Func: Func(42)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%v): accepted", i, s)
		}
	}
	for _, s := range allSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%v rejected: %v", s, err)
		}
	}
	if err := (Specs{}).Validate(); err == nil {
		t.Error("empty Specs accepted")
	}
}

func TestSpecString(t *testing.T) {
	cases := map[string]Spec{
		"COUNT(*)": {Func: CountStar},
		"COUNT(A)": {Func: CountType, Alias: "A"},
		"MIN(A.x)": {Func: Min, Alias: "A", Attr: "x"},
		"MAX(A.x)": {Func: Max, Alias: "A", Attr: "x"},
		"SUM(A.x)": {Func: Sum, Alias: "A", Attr: "x"},
		"AVG(A.x)": {Func: Avg, Alias: "A", Attr: "x"},
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestFoldSingleTrend(t *testing.T) {
	ss := allSpecs()
	// Trend (a:3, b, a:5): 1 trend, 2 A-events, min 3, max 5, sum 8, avg 4.
	n := ss.FoldTrend([]any{ev("A", 3), ev("B", 100), ev("A", 5)})
	vals := ss.Report(n)
	if vals[0].Count != 1 {
		t.Errorf("COUNT(*) = %d", vals[0].Count)
	}
	if vals[1].Count != 2 {
		t.Errorf("COUNT(A) = %d", vals[1].Count)
	}
	if vals[2].F != 3 || vals[3].F != 5 || vals[4].F != 8 || vals[5].F != 4 {
		t.Errorf("min/max/sum/avg = %v/%v/%v/%v", vals[2].F, vals[3].F, vals[4].F, vals[5].F)
	}
}

func TestMergeTwoTrends(t *testing.T) {
	ss := allSpecs()
	t1 := ss.FoldTrend([]any{ev("A", 3), ev("A", 5)}) // min 3 max 5 sum 8, countA 2
	t2 := ss.FoldTrend([]any{ev("A", 1)})             // min 1 max 1 sum 1, countA 1
	final := ss.Zero()
	ss.Merge(&final, t1)
	ss.Merge(&final, t2)
	vals := ss.Report(final)
	if vals[0].Count != 2 || vals[1].Count != 3 {
		t.Errorf("counts = %d, %d", vals[0].Count, vals[1].Count)
	}
	if vals[2].F != 1 || vals[3].F != 5 || vals[4].F != 9 || vals[5].F != 3 {
		t.Errorf("min/max/sum/avg = %v/%v/%v/%v", vals[2].F, vals[3].F, vals[4].F, vals[5].F)
	}
}

func TestExtendCountsMatchPaperSemantics(t *testing.T) {
	// Extend implements: count = pred.count + started, and the target-
	// alias event adds attr*count to SUM — one contribution per trend
	// ending at the event.
	ss := Specs{{Func: CountStar}, {Func: Sum, Alias: "A", Attr: "x"}}
	pred := Node{Count: 3, Aux: []Aux{{}, {F: 10, Valid: true}}}
	e := event.New("T", 0).WithNum("x", 2)
	out := ss.Extend(pred, "A", e, 1)
	if out.Count != 4 {
		t.Errorf("count = %d, want 4", out.Count)
	}
	// sum = 10 + 2*4 = 18.
	if out.Aux[1].F != 18 {
		t.Errorf("sum = %v, want 18", out.Aux[1].F)
	}
	// Non-target alias propagates untouched.
	out2 := ss.Extend(pred, "B", e, 0)
	if out2.Count != 3 || out2.Aux[1].F != 10 {
		t.Errorf("propagation changed aggregates: %+v", out2)
	}
}

func TestExtendDoesNotMutatePred(t *testing.T) {
	ss := allSpecs()
	pred := ss.FoldTrend([]any{ev("A", 3)})
	before := ss.Clone(pred)
	_ = ss.Extend(pred, "A", event.New("T", 0).WithNum("x", 9), 1)
	if pred.Count != before.Count || pred.Aux[4].F != before.Aux[4].F {
		t.Error("Extend mutated its input")
	}
}

func TestMinMaxValidity(t *testing.T) {
	ss := Specs{{Func: Min, Alias: "A", Attr: "x"}}
	zero := ss.Zero()
	vals := ss.Report(zero)
	if vals[0].Valid {
		t.Error("MIN over zero trends reported valid")
	}
	if !strings.Contains(vals[0].String(), "null") {
		t.Errorf("invalid MIN renders %q", vals[0].String())
	}
	// A trend without any A event leaves MIN invalid.
	n := ss.FoldTrend([]any{ev("B", 7)})
	if ss.Report(n)[0].Valid {
		t.Error("MIN valid though no A event")
	}
}

func TestAvgNoEvents(t *testing.T) {
	ss := Specs{{Func: Avg, Alias: "A", Attr: "x"}}
	vals := ss.Report(ss.FoldTrend([]any{ev("B", 7)}))
	if vals[0].Valid || !math.IsNaN(vals[0].F) {
		t.Errorf("AVG over zero A-events = %+v", vals[0])
	}
}

func TestCountWrapsModulo64(t *testing.T) {
	ss := Specs{{Func: CountStar}}
	a := Node{Count: math.MaxUint64, Aux: make([]Aux, 1)}
	b := Node{Count: 2, Aux: make([]Aux, 1)}
	ss.Merge(&a, b)
	if a.Count != 1 {
		t.Errorf("wrap-around Count = %d, want 1", a.Count)
	}
}

// TestMergeIsCommutativeMonoid property-checks ⊕: commutative,
// associative, Zero identity — the algebraic core the granularities
// rely on when they reorder merges.
func TestMergeIsCommutativeMonoid(t *testing.T) {
	ss := allSpecs()
	// mk builds a node in canonical form: each aux slot only uses the
	// fields its spec reads (CountStar none, CountType N, Min/Max/Sum
	// F+Valid, Avg all), and invalid slots carry F == 0.
	mk := func(count uint64, n uint64, f float64, valid bool) Node {
		node := ss.Zero()
		node.Count = count
		if !valid {
			f = 0
		}
		for i, s := range ss {
			switch s.Func {
			case CountType:
				node.Aux[i] = Aux{N: n}
			case Min, Max, Sum:
				node.Aux[i] = Aux{F: f, Valid: valid}
			case Avg:
				node.Aux[i] = Aux{N: n, F: f, Valid: valid}
			}
		}
		return node
	}
	f := func(c1, n1 uint64, f1 float64, v1 bool, c2, n2 uint64, f2 float64, v2 bool, c3 uint64, f3 float64) bool {
		if f1 != f1 || f2 != f2 || f3 != f3 { // skip NaN inputs
			return true
		}
		// Keep magnitudes moderate: float addition is only
		// approximately associative and overflows near ±MaxFloat64.
		f1, f2, f3 = math.Mod(f1, 1e6), math.Mod(f2, 1e6), math.Mod(f3, 1e6)
		a, b, c := mk(c1, n1, f1, v1), mk(c2, n2, f2, v2), mk(c3, c3, f3, true)
		// commutativity
		ab := ss.Clone(a)
		ss.Merge(&ab, b)
		ba := ss.Clone(b)
		ss.Merge(&ba, a)
		if !nodeEq(ab, ba) {
			return false
		}
		// associativity
		abc1 := ss.Clone(ab)
		ss.Merge(&abc1, c)
		bc := ss.Clone(b)
		ss.Merge(&bc, c)
		abc2 := ss.Clone(a)
		ss.Merge(&abc2, bc)
		if !nodeEq(abc1, abc2) {
			return false
		}
		// identity
		az := ss.Clone(a)
		ss.Merge(&az, ss.Zero())
		return nodeEq(az, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestExtendDistributesOverMerge property-checks the law that makes
// coarse granularities correct: extending the merged aggregate of two
// trend sets equals merging the two extensions (started counted once).
func TestExtendDistributesOverMerge(t *testing.T) {
	ss := allSpecs()
	e := event.New("T", 0).WithNum("x", 4.5)
	f := func(c1, c2 uint64, s1 uint64, f1, f2 float64) bool {
		if f1 != f1 || f2 != f2 {
			return true
		}
		started := s1 % 2
		a := ss.Zero()
		a.Count = c1
		a.Aux[2] = Aux{F: f1, Valid: true} // min
		a.Aux[4] = Aux{F: f1, Valid: true} // sum
		b := ss.Zero()
		b.Count = c2
		b.Aux[2] = Aux{F: f2, Valid: true}
		b.Aux[4] = Aux{F: f2, Valid: true}

		merged := ss.Clone(a)
		ss.Merge(&merged, b)
		left := ss.Extend(merged, "A", e, started)

		ea := ss.Extend(a, "A", e, started)
		eb := ss.Extend(b, "A", e, 0)
		right := ss.Clone(ea)
		ss.Merge(&right, eb)
		return left.Count == right.Count &&
			left.Aux[2] == right.Aux[2] &&
			floatClose(left.Aux[4].F, right.Aux[4].F)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*m
}

func nodeEq(a, b Node) bool {
	if a.Count != b.Count || len(a.Aux) != len(b.Aux) {
		return false
	}
	for i := range a.Aux {
		x, y := a.Aux[i], b.Aux[i]
		if x.N != y.N || x.Valid != y.Valid || !floatClose(x.F, y.F) {
			return false
		}
	}
	return true
}

func TestReportAndFormat(t *testing.T) {
	ss := Specs{{Func: CountStar}, {Func: Min, Alias: "M", Attr: "rate"}}
	n := ss.FoldTrend([]any{
		TrendEvent("M", event.New("Measurement", 1).WithNum("rate", 61)),
		TrendEvent("M", event.New("Measurement", 2).WithNum("rate", 65)),
	})
	got := FormatValues(ss.Report(n))
	if got != "COUNT(*)=1, MIN(M.rate)=61" {
		t.Errorf("FormatValues = %q", got)
	}
}

func TestEqual(t *testing.T) {
	ss := Specs{{Func: CountStar}, {Func: Avg, Alias: "A", Attr: "x"}}
	a := ss.Report(ss.FoldTrend([]any{ev("A", 2)}))
	b := ss.Report(ss.FoldTrend([]any{ev("A", 2)}))
	c := ss.Report(ss.FoldTrend([]any{ev("A", 3)}))
	if !Equal(a, b) {
		t.Error("identical reports unequal")
	}
	if Equal(a, c) {
		t.Error("different reports equal")
	}
	// NaN == NaN for AVG-of-nothing.
	x := ss.Report(ss.FoldTrend([]any{ev("B", 2)}))
	y := ss.Report(ss.FoldTrend([]any{ev("B", 9)}))
	if !Equal(x, y) {
		t.Error("NaN AVG reports unequal")
	}
	if Equal(a, a[:1]) {
		t.Error("length mismatch equal")
	}
}

func TestFootprint(t *testing.T) {
	if allSpecs().FootprintBytes() != 8+24*6 {
		t.Errorf("FootprintBytes = %d", allSpecs().FootprintBytes())
	}
}
