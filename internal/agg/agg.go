// Package agg implements the incremental aggregation algebra of the
// COGRA paper (§2.3, Table 8). Every aggregator in this repository —
// the three COGRA granularities, the GRETA graph baseline and the
// two-step baselines' per-trend fold — manipulates the same Node
// values with the same two operations:
//
//   - Merge (⊕): combine the aggregates of two disjoint sets of
//     (partial) trends;
//   - Extend (⊗ by one event): given the merged aggregate of all
//     partial trends a new event e continues, plus the number of fresh
//     trends e begins, produce the aggregate of all trends ending at e.
//
// Because COUNT, MIN, MAX and SUM are distributive and AVG is
// algebraic over (SUM, COUNT) [Gray et al. 1997], these two operations
// are sufficient no matter at which granularity nodes are kept —
// per event, per type or per pattern.
//
// Trend counts grow as 2^n under skip-till-any-match, so no fixed-
// width integer can hold them exactly; all counts in this repository
// are uint64 with well-defined wrap-around modulo 2^64. Every
// approach uses the same arithmetic, so cross-approach equality
// checks remain exact.
package agg

import (
	"fmt"
	"math"
	"strings"
)

// Func enumerates the aggregation functions of §2.3.
type Func int

// Aggregation functions. CountStar counts trends; the others aggregate
// over the events of one alias within each trend.
const (
	CountStar Func = iota
	CountType      // COUNT(E): total E-event occurrences across trends
	Min            // MIN(E.attr)
	Max            // MAX(E.attr)
	Sum            // SUM(E.attr)
	Avg            // AVG(E.attr) = SUM(E.attr)/COUNT(E)
)

// String renders the function name.
func (f Func) String() string {
	switch f {
	case CountStar:
		return "COUNT"
	case CountType:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	}
	return "?"
}

// Spec is one aggregation request from the RETURN clause.
type Spec struct {
	Func Func
	// Alias is the target event type in the pattern (the paper's E);
	// empty for COUNT(*).
	Alias string
	// Attr is the aggregated attribute; empty for COUNT(*) / COUNT(E).
	Attr string
}

// String renders the spec in query syntax, e.g. "MIN(M.rate)".
func (s Spec) String() string {
	switch s.Func {
	case CountStar:
		return "COUNT(*)"
	case CountType:
		return fmt.Sprintf("COUNT(%s)", s.Alias)
	default:
		return fmt.Sprintf("%s(%s.%s)", s.Func, s.Alias, s.Attr)
	}
}

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	switch s.Func {
	case CountStar:
		if s.Alias != "" || s.Attr != "" {
			return fmt.Errorf("agg: COUNT(*) takes no operand")
		}
	case CountType:
		if s.Alias == "" {
			return fmt.Errorf("agg: COUNT(E) needs an event type")
		}
		if s.Attr != "" {
			return fmt.Errorf("agg: COUNT(E) takes no attribute")
		}
	case Min, Max, Sum, Avg:
		if s.Alias == "" || s.Attr == "" {
			return fmt.Errorf("agg: %s needs E.attr", s.Func)
		}
	default:
		return fmt.Errorf("agg: unknown function %d", s.Func)
	}
	return nil
}

// Aux is the per-spec auxiliary state inside a Node: N carries event
// counts (COUNT(E), the count half of AVG), F carries min/max/sum, and
// Valid marks whether F holds any contribution yet (a trend with no
// target-alias event contributes nothing to MIN/MAX).
type Aux struct {
	N     uint64
	F     float64
	Valid bool
}

// Node is the aggregate of a set of (partial) trends: Count is the
// number of trends in the set (the paper's e.count / E.count /
// el.count, wrapping mod 2^64) and Aux holds one entry per spec.
type Node struct {
	Count uint64
	Aux   []Aux
}

// Specs is a compiled RETURN clause; its methods implement Table 8.
type Specs []Spec

// Validate checks every spec.
func (ss Specs) Validate() error {
	if len(ss) == 0 {
		return fmt.Errorf("agg: empty RETURN clause")
	}
	for _, s := range ss {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Zero returns the aggregate of the empty trend set.
func (ss Specs) Zero() Node {
	return Node{Aux: make([]Aux, len(ss))}
}

// Clone deep-copies a node.
func (ss Specs) Clone(n Node) Node {
	out := Node{Count: n.Count, Aux: make([]Aux, len(n.Aux))}
	copy(out.Aux, n.Aux)
	return out
}

// Merge folds src into dst: the aggregate of the union of two disjoint
// trend sets.
func (ss Specs) Merge(dst *Node, src Node) {
	dst.Count += src.Count
	for i, s := range ss {
		a, b := &dst.Aux[i], src.Aux[i]
		switch s.Func {
		case CountStar:
			// Count field carries everything.
		case CountType:
			a.N += b.N
		case Min:
			if b.Valid && (!a.Valid || b.F < a.F) {
				a.F, a.Valid = b.F, true
			}
		case Max:
			if b.Valid && (!a.Valid || b.F > a.F) {
				a.F, a.Valid = b.F, true
			}
		case Sum:
			a.F += b.F
			a.Valid = a.Valid || b.Valid
		case Avg:
			a.N += b.N
			a.F += b.F
			a.Valid = a.Valid || b.Valid
		}
	}
}

// EventView is the minimal event interface Extend needs.
type EventView interface {
	NumAttr(name string) (float64, bool)
}

// Extend computes the aggregate of all trends ending at a new event e
// matched under alias: pred is the merged aggregate of every partial
// trend e continues, and started is the number of fresh trends e
// begins (1 if alias is a start type of the pattern, else 0). This is
// the ⊗ step of Table 8:
//
//	count  = pred.count + started
//	countE = pred.countE + (alias==E ? count : 0)
//	min    = alias==E ? min(pred.min, e.attr) : pred.min
//	sum    = pred.sum + (alias==E ? e.attr * count : 0)
func (ss Specs) Extend(pred Node, alias string, e EventView, started uint64) Node {
	out := ss.Clone(pred)
	out.Count = pred.Count + started
	for i, s := range ss {
		if s.Alias != alias {
			continue // events of other types only propagate (Table 8)
		}
		a := &out.Aux[i]
		switch s.Func {
		case CountType:
			a.N += out.Count
		case Min:
			if v, ok := e.NumAttr(s.Attr); ok && (!a.Valid || v < a.F) {
				a.F, a.Valid = v, true
			}
		case Max:
			if v, ok := e.NumAttr(s.Attr); ok && (!a.Valid || v > a.F) {
				a.F, a.Valid = v, true
			}
		case Sum:
			if v, ok := e.NumAttr(s.Attr); ok {
				a.F += v * float64(out.Count)
				a.Valid = true
			}
		case Avg:
			a.N += out.Count
			if v, ok := e.NumAttr(s.Attr); ok {
				a.F += v * float64(out.Count)
				a.Valid = true
			}
		}
	}
	return out
}

// SpecSource supplies the aggregated attribute value of spec i for the
// event being extended, addressed by spec index instead of attribute
// name. The COGRA runtime's per-event resolved view implements it with
// array indexing, removing the per-extend map probes of the generic
// EventView path.
type SpecSource interface {
	SpecNum(i int) (float64, bool)
}

// ExtendInto is Extend writing its result into dst, reusing dst's Aux
// storage when capacity allows, with the alias comparison precomputed:
// match[i] reports whether spec i targets the matched alias (the
// s.Alias == alias test of Extend) and e supplies attribute values by
// spec index. dst must not alias pred. Hot aggregation loops use it to
// stay allocation-free; the semantics are exactly Extend's.
func (ss Specs) ExtendInto(dst *Node, pred Node, match []bool, e SpecSource, started uint64) {
	if cap(dst.Aux) >= len(ss) {
		dst.Aux = dst.Aux[:len(ss)]
	} else {
		dst.Aux = make([]Aux, len(ss))
	}
	n := copy(dst.Aux, pred.Aux)
	for i := n; i < len(dst.Aux); i++ {
		dst.Aux[i] = Aux{}
	}
	dst.Count = pred.Count + started
	for i, s := range ss {
		if !match[i] {
			continue
		}
		a := &dst.Aux[i]
		switch s.Func {
		case CountType:
			a.N += dst.Count
		case Min:
			if v, ok := e.SpecNum(i); ok && (!a.Valid || v < a.F) {
				a.F, a.Valid = v, true
			}
		case Max:
			if v, ok := e.SpecNum(i); ok && (!a.Valid || v > a.F) {
				a.F, a.Valid = v, true
			}
		case Sum:
			if v, ok := e.SpecNum(i); ok {
				a.F += v * float64(dst.Count)
				a.Valid = true
			}
		case Avg:
			a.N += dst.Count
			if v, ok := e.SpecNum(i); ok {
				a.F += v * float64(dst.Count)
				a.Valid = true
			}
		}
	}
}

// ZeroInto resets n to the aggregate of the empty trend set, reusing
// its Aux storage.
func (ss Specs) ZeroInto(n *Node) {
	n.Count = 0
	if cap(n.Aux) >= len(ss) {
		n.Aux = n.Aux[:len(ss)]
		for i := range n.Aux {
			n.Aux[i] = Aux{}
		}
	} else {
		n.Aux = make([]Aux, len(ss))
	}
}

// aliasedEvent pairs an event with the alias it matched; used by
// FoldTrend.
type aliasedEvent struct {
	alias string
	e     EventView
}

// TrendEvent constructs an element for FoldTrend.
func TrendEvent(alias string, e EventView) any { return aliasedEvent{alias, e} }

// FoldTrend computes the aggregate Node of a single fully materialised
// trend — the two-step baselines' second step. The trend is given as
// TrendEvent(alias, event) values in trend order.
func (ss Specs) FoldTrend(trend []any) Node {
	n := ss.Zero()
	for i, raw := range trend {
		ae := raw.(aliasedEvent)
		started := uint64(0)
		if i == 0 {
			started = 1
		}
		n = ss.Extend(n, ae.alias, ae.e, started)
	}
	return n
}

// Value is one reported aggregation result.
type Value struct {
	Spec Spec
	// Count is set for COUNT(*) and COUNT(E); for AVG it carries the
	// contributing COUNT(E) denominator so disjoint partial results
	// stay mergeable (MergeValues).
	Count uint64
	// F is set for MIN/MAX/SUM/AVG; Valid is false when no trend
	// contributed (e.g. MIN over zero trends).
	F     float64
	Valid bool
	// Sum is AVG's raw numerator (F is the already-divided mean);
	// MergeValues re-divides from the merged Sum and Count so a
	// partitioned run reports the same quotient as a solo run.
	Sum float64
}

// String renders the value, e.g. "COUNT(*)=43" or "MIN(M.rate)=61".
func (v Value) String() string {
	switch v.Spec.Func {
	case CountStar, CountType:
		return fmt.Sprintf("%s=%d", v.Spec, v.Count)
	default:
		if !v.Valid {
			return fmt.Sprintf("%s=null", v.Spec)
		}
		return fmt.Sprintf("%s=%g", v.Spec, v.F)
	}
}

// Report converts a final Node (the merged aggregate of all finished
// trends) into user-facing values; AVG divides SUM by COUNT(E).
func (ss Specs) Report(final Node) []Value {
	out := make([]Value, len(ss))
	for i, s := range ss {
		v := Value{Spec: s}
		a := final.Aux[i]
		switch s.Func {
		case CountStar:
			v.Count = final.Count
			v.Valid = true
		case CountType:
			v.Count = a.N
			v.Valid = true
		case Min, Max:
			v.F, v.Valid = a.F, a.Valid
		case Sum:
			v.F, v.Valid = a.F, a.Valid
			if !a.Valid {
				v.F = 0
			}
		case Avg:
			v.Sum, v.Count = a.F, a.N
			if a.N == 0 || !a.Valid {
				v.Valid = false
				v.F = math.NaN()
			} else {
				v.F = a.F / float64(a.N)
				v.Valid = true
			}
		}
		out[i] = v
	}
	return out
}

// MergeValues folds src into dst, position-wise: the reported values
// of the union of two disjoint trend sets (the reported counterpart of
// Specs.Merge, for when the underlying Nodes are gone — e.g. combining
// per-partition results of one window gathered from parallel workers).
// Both slices must come from the same Specs.
func MergeValues(dst, src []Value) {
	for i := range dst {
		a, b := &dst[i], src[i]
		switch a.Spec.Func {
		case CountStar, CountType:
			a.Count += b.Count
		case Min:
			if b.Valid && (!a.Valid || b.F < a.F) {
				a.F, a.Valid = b.F, true
			}
		case Max:
			if b.Valid && (!a.Valid || b.F > a.F) {
				a.F, a.Valid = b.F, true
			}
		case Sum:
			a.F += b.F
			a.Valid = a.Valid || b.Valid
		case Avg:
			a.Sum += b.Sum
			a.Count += b.Count
			a.Valid = a.Valid || b.Valid
			if a.Count == 0 || !a.Valid {
				a.F, a.Valid = math.NaN(), false
			} else {
				a.F = a.Sum / float64(a.Count)
			}
		}
	}
}

// Equal compares two reported value slices exactly (NaN equals NaN);
// used by correctness tests to cross-check approaches.
func Equal(a, b []Value) bool { return equal(a, b, 0) }

// ApproxEqual compares reported values with a relative tolerance on
// the float results. Counts are always compared exactly; SUM/AVG are
// accumulated in algorithm-specific orders, so independent
// implementations legitimately differ by rounding (the cross-approach
// experiment harness uses 1e-9).
func ApproxEqual(a, b []Value, relTol float64) bool { return equal(a, b, relTol) }

func equal(a, b []Value, relTol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Spec != b[i].Spec || a[i].Count != b[i].Count || a[i].Valid != b[i].Valid {
			return false
		}
		af, bf := a[i].F, b[i].F
		if af == bf || (math.IsNaN(af) && math.IsNaN(bf)) {
			continue
		}
		if relTol > 0 {
			diff := math.Abs(af - bf)
			scale := math.Max(math.Abs(af), math.Abs(bf))
			if diff <= relTol*scale {
				continue
			}
		}
		return false
	}
	return true
}

// FormatValues renders a value list as "COUNT(*)=43, MIN(M.rate)=61".
func FormatValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// FootprintBytes is the logical memory cost of one Node: 8 bytes for
// the count plus 24 per auxiliary entry (metrics accounting).
func (ss Specs) FootprintBytes() int64 { return 8 + 24*int64(len(ss)) }
