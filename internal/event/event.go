// Package event defines the primitive event model shared by every
// component of the COGRA reproduction: typed, time-stamped messages
// carrying numeric and symbolic attributes.
//
// Time is a linearly ordered set of points (the paper uses non-negative
// rationals; we use int64 ticks, typically seconds or milliseconds).
// Events arrive on a stream in non-decreasing time-stamp order; the
// stream scheduler in internal/stream enforces that discipline.
package event

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Time is an application time stamp assigned by the event source.
type Time = int64

// Event is a message indicating that something of interest happened in
// the real world. An event belongs to exactly one event type (its
// schema) and carries numeric attributes (heart rate, price, ...) and
// symbolic attributes (patient id, company, sector, ...).
//
// Events are immutable once published to a stream. The zero value is a
// valid (empty, time-0) event of the empty type.
type Event struct {
	// Time is the application time stamp, assigned by the source.
	Time Time
	// Type is the event type name, e.g. "Stock" or "Measurement".
	Type string
	// ID is a unique sequence number within a stream, assigned by the
	// source in arrival order. Ties in Time are broken by ID.
	ID int64
	// Num holds the numeric attributes.
	Num map[string]float64
	// Sym holds the symbolic (string-valued) attributes.
	Sym map[string]string
}

// New returns an event of the given type and time with no attributes.
func New(typ string, t Time) *Event {
	return &Event{Type: typ, Time: t}
}

// WithNum returns e with the numeric attribute name set to v.
// It mutates and returns e to allow fluent construction.
func (e *Event) WithNum(name string, v float64) *Event {
	if e.Num == nil {
		e.Num = make(map[string]float64, 4)
	}
	e.Num[name] = v
	return e
}

// WithSym returns e with the symbolic attribute name set to v.
func (e *Event) WithSym(name, v string) *Event {
	if e.Sym == nil {
		e.Sym = make(map[string]string, 4)
	}
	e.Sym[name] = v
	return e
}

// NumAttr returns the numeric attribute and whether it is present.
func (e *Event) NumAttr(name string) (float64, bool) {
	v, ok := e.Num[name]
	return v, ok
}

// SymAttr returns the symbolic attribute. If the attribute is absent
// but a numeric attribute of that name exists, its formatted value is
// returned, so equivalence predicates work over either kind.
func (e *Event) SymAttr(name string) (string, bool) {
	if v, ok := e.Sym[name]; ok {
		return v, true
	}
	if v, ok := e.Num[name]; ok {
		return formatNum(v), true
	}
	return "", false
}

// Attr returns the attribute value as an untyped comparison operand:
// numeric attributes as float64, symbolic as string.
func (e *Event) Attr(name string) (any, bool) {
	if v, ok := e.Num[name]; ok {
		return v, true
	}
	if v, ok := e.Sym[name]; ok {
		return v, true
	}
	return nil, false
}

// Before reports whether e precedes other in stream order: primarily
// by time stamp, with stream sequence ID as the tie-breaker.
func (e *Event) Before(other *Event) bool {
	if e.Time != other.Time {
		return e.Time < other.Time
	}
	return e.ID < other.ID
}

// String renders the event compactly, e.g. "a1" style for single-letter
// types (matching the paper's figures) or "Type@t{attrs}" otherwise.
func (e *Event) String() string {
	if len(e.Type) == 1 && len(e.Num) == 0 && len(e.Sym) == 0 {
		return fmt.Sprintf("%s%d", strings.ToLower(e.Type), e.Time)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", e.Type, e.Time)
	if len(e.Num)+len(e.Sym) > 0 {
		b.WriteByte('{')
		keys := make([]string, 0, len(e.Num)+len(e.Sym))
		for k := range e.Num {
			keys = append(keys, k)
		}
		for k := range e.Sym {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			if v, ok := e.Num[k]; ok {
				fmt.Fprintf(&b, "%s=%s", k, formatNum(v))
			} else {
				fmt.Fprintf(&b, "%s=%s", k, e.Sym[k])
			}
		}
		b.WriteByte('}')
	}
	return b.String()
}

func formatNum(v float64) string { return FormatNum(v) }

// FormatNum renders a numeric attribute value the way SymAttr's
// numeric fallback does: integral values without a fraction, others in
// shortest %g form. Exposed so the symbol-interning layer in
// internal/core resolves numeric attributes into symbolic slots with
// byte-identical values. It is AppendNum materialised as a string, so
// there is exactly one canonical formatter.
func FormatNum(v float64) string {
	return string(AppendNum(nil, v))
}

// AppendNum appends the canonical rendering of v to buf without
// intermediate allocation; used by zero-alloc partition-key
// construction. Partition routing, binding slots and resolved views
// all rely on these bytes being identical wherever a numeric value is
// read symbolically.
func AppendNum(buf []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// Clone returns a deep copy of e.
func (e *Event) Clone() *Event {
	c := &Event{Time: e.Time, Type: e.Type, ID: e.ID}
	if e.Num != nil {
		c.Num = make(map[string]float64, len(e.Num))
		for k, v := range e.Num {
			c.Num[k] = v
		}
	}
	if e.Sym != nil {
		c.Sym = make(map[string]string, len(e.Sym))
		for k, v := range e.Sym {
			c.Sym[k] = v
		}
	}
	return c
}

// FootprintBytes is the logical memory cost of storing this event,
// used by the metrics package for hardware-independent peak-memory
// accounting (paper §9.1). It charges the struct header plus each
// attribute entry.
func (e *Event) FootprintBytes() int64 {
	n := int64(40) // header: time, id, type pointer, two map headers
	n += int64(len(e.Type))
	for k := range e.Num {
		n += int64(len(k)) + 8
	}
	for k, v := range e.Sym {
		n += int64(len(k)) + int64(len(v))
	}
	return n
}

// Sort orders events in stream order (time, then ID) in place.
func Sort(events []*Event) {
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Before(events[j])
	})
}
