package event

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// AttrKind distinguishes numeric from symbolic attributes in a schema.
type AttrKind int

const (
	// NumAttrKind marks a float64-valued attribute.
	NumAttrKind AttrKind = iota
	// SymAttrKind marks a string-valued attribute.
	SymAttrKind
)

// Schema describes one event type: its name and attribute kinds.
// Schemas are used by the generators, the CSV codec and the query
// compiler's attribute validation.
type Schema struct {
	// Type is the event type name this schema describes.
	Type string
	// Attrs maps attribute name to kind.
	Attrs map[string]AttrKind
}

// NewSchema builds a schema. Attribute names prefixed with "#" are
// numeric, all others symbolic; the prefix is stripped. Example:
//
//	NewSchema("Stock", "company", "sector", "#price", "#volume")
func NewSchema(typ string, attrs ...string) *Schema {
	s := &Schema{Type: typ, Attrs: make(map[string]AttrKind, len(attrs))}
	for _, a := range attrs {
		if strings.HasPrefix(a, "#") {
			s.Attrs[a[1:]] = NumAttrKind
		} else {
			s.Attrs[a] = SymAttrKind
		}
	}
	return s
}

// Validate reports an error if e does not conform to the schema: wrong
// type name, unknown attribute, or missing attribute.
func (s *Schema) Validate(e *Event) error {
	if e.Type != s.Type {
		return fmt.Errorf("event type %q does not match schema %q", e.Type, s.Type)
	}
	for name, kind := range s.Attrs {
		switch kind {
		case NumAttrKind:
			if _, ok := e.Num[name]; !ok {
				return fmt.Errorf("event %v: missing numeric attribute %q", e, name)
			}
		case SymAttrKind:
			if _, ok := e.Sym[name]; !ok {
				return fmt.Errorf("event %v: missing symbolic attribute %q", e, name)
			}
		}
	}
	for name := range e.Num {
		if k, ok := s.Attrs[name]; !ok || k != NumAttrKind {
			return fmt.Errorf("event %v: unexpected numeric attribute %q", e, name)
		}
	}
	for name := range e.Sym {
		if k, ok := s.Attrs[name]; !ok || k != SymAttrKind {
			return fmt.Errorf("event %v: unexpected symbolic attribute %q", e, name)
		}
	}
	return nil
}

// AttrNames returns attribute names in sorted order.
func (s *Schema) AttrNames() []string {
	names := make([]string, 0, len(s.Attrs))
	for n := range s.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MarshalCSVHeader returns the CSV header row for this schema:
// time,type,<attrs sorted>.
func (s *Schema) MarshalCSVHeader() string {
	cols := append([]string{"time", "type"}, s.AttrNames()...)
	return strings.Join(cols, ",")
}

// MarshalCSV renders e as a CSV row matching MarshalCSVHeader.
func (s *Schema) MarshalCSV(e *Event) string {
	cols := make([]string, 0, 2+len(s.Attrs))
	cols = append(cols, strconv.FormatInt(e.Time, 10), e.Type)
	for _, name := range s.AttrNames() {
		if s.Attrs[name] == NumAttrKind {
			cols = append(cols, strconv.FormatFloat(e.Num[name], 'g', -1, 64))
		} else {
			cols = append(cols, e.Sym[name])
		}
	}
	return strings.Join(cols, ",")
}

// UnmarshalCSV parses a CSV row produced by MarshalCSV.
func (s *Schema) UnmarshalCSV(row string) (*Event, error) {
	cols := strings.Split(row, ",")
	names := s.AttrNames()
	if len(cols) != 2+len(names) {
		return nil, fmt.Errorf("schema %s: expected %d columns, got %d in %q",
			s.Type, 2+len(names), len(cols), row)
	}
	t, err := strconv.ParseInt(cols[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("schema %s: bad time %q: %w", s.Type, cols[0], err)
	}
	e := New(cols[1], t)
	for i, name := range names {
		raw := cols[2+i]
		if s.Attrs[name] == NumAttrKind {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("schema %s: bad numeric %s=%q: %w", s.Type, name, raw, err)
			}
			e.WithNum(name, v)
		} else {
			e.WithSym(name, raw)
		}
	}
	return e, nil
}
