package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventConstruction(t *testing.T) {
	e := New("Stock", 42).WithNum("price", 10.5).WithSym("company", "IBM")
	if e.Type != "Stock" || e.Time != 42 {
		t.Fatalf("bad header: %+v", e)
	}
	if v, ok := e.NumAttr("price"); !ok || v != 10.5 {
		t.Errorf("price = %v, %v", v, ok)
	}
	if v, ok := e.SymAttr("company"); !ok || v != "IBM" {
		t.Errorf("company = %q, %v", v, ok)
	}
	if _, ok := e.NumAttr("missing"); ok {
		t.Error("missing numeric attribute reported present")
	}
}

func TestSymAttrFallsBackToNumeric(t *testing.T) {
	e := New("M", 1).WithNum("patient", 7)
	got, ok := e.SymAttr("patient")
	if !ok || got != "7" {
		t.Errorf("SymAttr(patient) = %q, %v; want \"7\", true", got, ok)
	}
	e2 := New("M", 1).WithNum("rate", 61.5)
	got, ok = e2.SymAttr("rate")
	if !ok || got != "61.5" {
		t.Errorf("SymAttr(rate) = %q, %v; want \"61.5\", true", got, ok)
	}
}

func TestAttrUntyped(t *testing.T) {
	e := New("S", 0).WithNum("x", 3).WithSym("y", "abc")
	if v, ok := e.Attr("x"); !ok || v.(float64) != 3 {
		t.Errorf("Attr(x) = %v", v)
	}
	if v, ok := e.Attr("y"); !ok || v.(string) != "abc" {
		t.Errorf("Attr(y) = %v", v)
	}
	if _, ok := e.Attr("z"); ok {
		t.Error("Attr(z) present")
	}
}

func TestBeforeOrdersByTimeThenID(t *testing.T) {
	a := &Event{Time: 1, ID: 5}
	b := &Event{Time: 2, ID: 1}
	c := &Event{Time: 2, ID: 2}
	if !a.Before(b) || !b.Before(c) || c.Before(b) || b.Before(a) {
		t.Error("Before ordering wrong")
	}
	if a.Before(a) {
		t.Error("event before itself")
	}
}

func TestStringPaperStyle(t *testing.T) {
	e := New("A", 7)
	if got := e.String(); got != "a7" {
		t.Errorf("String() = %q, want a7", got)
	}
	rich := New("Stock", 3).WithNum("price", 10).WithSym("company", "IBM")
	s := rich.String()
	if !strings.Contains(s, "Stock@3") || !strings.Contains(s, "price=10") || !strings.Contains(s, "company=IBM") {
		t.Errorf("String() = %q", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := New("S", 1).WithNum("x", 1).WithSym("y", "a")
	c := e.Clone()
	c.WithNum("x", 2).WithSym("y", "b")
	if e.Num["x"] != 1 || e.Sym["y"] != "a" {
		t.Error("Clone shares attribute maps")
	}
}

func TestSortStable(t *testing.T) {
	evs := []*Event{
		{Time: 3, ID: 1}, {Time: 1, ID: 2}, {Time: 1, ID: 1}, {Time: 2, ID: 9},
	}
	Sort(evs)
	want := [][2]int64{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	for i, w := range want {
		if evs[i].Time != w[0] || evs[i].ID != w[1] {
			t.Fatalf("pos %d: got (%d,%d) want (%d,%d)", i, evs[i].Time, evs[i].ID, w[0], w[1])
		}
	}
}

func TestFootprintPositiveAndMonotone(t *testing.T) {
	small := New("A", 1)
	big := New("A", 1).WithNum("x", 1).WithSym("long-name", "long-value")
	if small.FootprintBytes() <= 0 {
		t.Error("footprint not positive")
	}
	if big.FootprintBytes() <= small.FootprintBytes() {
		t.Error("footprint not monotone in attributes")
	}
}

func TestBeforeIsStrictTotalOrderProperty(t *testing.T) {
	f := func(t1, t2 int64, id1, id2 int64) bool {
		a := &Event{Time: t1, ID: id1}
		b := &Event{Time: t2, ID: id2}
		ab, ba := a.Before(b), b.Before(a)
		if ab && ba {
			return false // antisymmetry
		}
		equal := t1 == t2 && id1 == id2
		return equal == (!ab && !ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema("Stock", "company", "#price")
	good := New("Stock", 1).WithNum("price", 3).WithSym("company", "IBM")
	if err := s.Validate(good); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	cases := []*Event{
		New("Other", 1).WithNum("price", 3).WithSym("company", "IBM"),
		New("Stock", 1).WithSym("company", "IBM"), // missing price
		New("Stock", 1).WithNum("price", 3),       // missing company
		good.Clone().WithNum("extra", 1),          // unknown numeric
		New("Stock", 1).WithNum("price", 3).WithSym("company", "IBM").WithSym("junk", "x"),
	}
	for i, e := range cases {
		if err := s.Validate(e); err == nil {
			t.Errorf("case %d: invalid event accepted: %v", i, e)
		}
	}
}

func TestSchemaCSVRoundTrip(t *testing.T) {
	s := NewSchema("Stock", "company", "sector", "#price", "#volume")
	e := New("Stock", 99).WithNum("price", 12.25).WithNum("volume", 300).
		WithSym("company", "IBM").WithSym("sector", "tech")
	row := s.MarshalCSV(e)
	back, err := s.UnmarshalCSV(row)
	if err != nil {
		t.Fatal(err)
	}
	if back.Time != 99 || back.Type != "Stock" ||
		back.Num["price"] != 12.25 || back.Num["volume"] != 300 ||
		back.Sym["company"] != "IBM" || back.Sym["sector"] != "tech" {
		t.Errorf("round trip lost data: %v -> %q -> %v", e, row, back)
	}
	if err := s.Validate(back); err != nil {
		t.Errorf("round-tripped event invalid: %v", err)
	}
}

func TestSchemaCSVErrors(t *testing.T) {
	s := NewSchema("Stock", "company", "#price")
	for _, row := range []string{
		"", "1,Stock", "x,Stock,IBM,3", "1,Stock,IBM,notanumber", "1,Stock,IBM,3,extra",
	} {
		if _, err := s.UnmarshalCSV(row); err == nil {
			t.Errorf("row %q: expected error", row)
		}
	}
}

func TestSchemaHeaderMatchesColumns(t *testing.T) {
	s := NewSchema("M", "patient", "#rate", "activity")
	h := s.MarshalCSVHeader()
	if h != "time,type,activity,patient,rate" {
		t.Errorf("header = %q", h)
	}
}
