// Package flinklite models the industrial streaming systems of the
// paper's study — Flink [2], Esper [1], Oracle Stream Analytics [4] —
// which support fixed-length event sequences but no Kleene closure
// (§9.1). Two properties drive their measured behaviour, and both are
// reproduced here faithfully:
//
//  1. Kleene flattening: each Kleene query is rewritten into a
//     workload of fixed-length sequence queries covering all possible
//     match lengths up to l, every one of which is evaluated;
//  2. two-step execution: all event sequences are constructed and
//     materialised before they are aggregated, so both latency and
//     memory grow with the number of matches — exponentially under
//     skip-till-any-match (Figure 7).
//
// Flink supports the skip-till-any-match and contiguous semantics and
// predicates on adjacent events, but not skip-till-next-match
// (Table 9).
package flinklite

import (
	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Runner is the Flink-style baseline.
type Runner struct {
	plan *core.Plan
	// MaxLen caps the flattening length; 0 derives it from the window
	// content.
	MaxLen int
	// BudgetUnits bounds the work (match construction steps); 0 means
	// unlimited.
	BudgetUnits int64
	// Acct receives logical memory accounting if non-nil.
	Acct *metrics.Accountant
}

// New builds a Flink-style runner.
func New(plan *core.Plan) *Runner { return &Runner{plan: plan} }

// Name implements baselines.Runner.
func (r *Runner) Name() string { return "Flink" }

// Capabilities implements baselines.CapableRunner: Flink's NFA covers
// skip-till-any-match and contiguous matching with adjacent (IterativeCondition-
// style) predicates, but has no skip-till-next-match and no negation
// inside Kleene (Table 9).
func (r *Runner) Capabilities() baselines.Capabilities {
	return baselines.Capabilities{Approach: "Flink", Any: true, Cont: true, Adjacent: true}
}

// match is one materialised sequence match: the two-step approach
// keeps every match of a window buffered until aggregation.
type match struct {
	events  []*event.Event
	aliases []string
	binding baselines.Binding
}

// Run implements baselines.Runner.
func (r *Runner) Run(events []*event.Event) ([]core.Result, error) {
	if err := r.Capabilities().Supports(r.plan); err != nil {
		return nil, err
	}
	budget := metrics.NewBudget(r.BudgetUnits)
	acct := r.Acct
	if acct == nil {
		acct = &metrics.Accountant{}
	}
	var out []core.Result
	subs := baselines.SplitSubstreams(r.plan, events)
	i := 0
	for i < len(subs) {
		j := i
		collector := baselines.NewGroupCollector(r.plan)
		// The materialised matches of every sub-stream of one window
		// stay buffered until the window closes — the two-step cost.
		var releases []func()
		releaseAll := func() {
			for _, rel := range releases {
				rel()
			}
		}
		for j < len(subs) && subs[j].Wid == subs[i].Wid {
			rel, err := r.evalSubstream(subs[j], collector, budget, acct)
			releases = append(releases, rel)
			if err != nil {
				releaseAll()
				return nil, err
			}
			j++
		}
		out = append(out, collector.Results(subs[i].Wid, subs[i].Start, subs[i].End)...)
		releaseAll()
		i = j
	}
	return out, nil
}

// evalSubstream runs the flattened workload on one sub-stream:
// construct all matches of every fixed-length query (step one,
// materialised), then aggregate them (step two).
func (r *Runner) evalSubstream(sub baselines.Substream, collector *baselines.GroupCollector, budget *metrics.Budget, acct *metrics.Accountant) (func(), error) {
	plan := r.plan
	maxLen := len(sub.Events)
	if r.MaxLen > 0 && r.MaxLen < maxLen {
		maxLen = r.MaxLen
	}
	// Under the contiguous semantics no match can outgrow the longest
	// streak of candidate events with strictly increasing times, so
	// the flattening is bounded by it.
	if plan.Query.Semantics == query.Cont {
		if run := longestCandidateRun(plan, sub.Events); run < maxLen {
			maxLen = run
		}
	}
	flat := plan.FSA.Flatten(maxLen)

	// Step one: construct and buffer every match of every query.
	var matches []match
	var matchBytes int64
	release := func() { acct.Add(-matchBytes) }
	keep := func(m match) bool {
		matches = append(matches, m)
		var grow int64 = 48
		for _, e := range m.events {
			grow += e.FootprintBytes()
		}
		acct.Add(grow)
		matchBytes += grow
		return budget.Spend(int64(len(m.events)))
	}
	for _, aliases := range flat {
		var err error
		if plan.Query.Semantics == query.Cont {
			err = r.matchContiguous(sub.Events, aliases, budget, keep)
		} else {
			err = r.matchAny(sub.Events, aliases, budget, keep)
		}
		if err != nil {
			return release, err
		}
	}

	// Step two: aggregate the buffered matches.
	for _, m := range matches {
		elems := make([]any, len(m.events))
		for i, e := range m.events {
			elems[i] = agg.TrendEvent(m.aliases[i], e)
		}
		collector.Add(sub.PartKey, m.binding, plan.Specs.FoldTrend(elems))
	}
	return release, nil
}

// matchAny enumerates the matches of one fixed-length query under
// skip-till-any-match: every strictly time-increasing event choice
// matching the alias string, the local and adjacent predicates and the
// equivalence bindings.
func (r *Runner) matchAny(events []*event.Event, aliases []string, budget *metrics.Budget, keep func(match) bool) error {
	plan := r.plan
	cur := match{binding: baselines.NewBinding(plan)}
	var dfs func(pos, from int) error
	dfs = func(pos, from int) error {
		if pos == len(aliases) {
			if !keep(match{
				events:  append([]*event.Event(nil), cur.events...),
				aliases: append([]string(nil), cur.aliases...),
				binding: cur.binding.Clone(),
			}) {
				return baselines.ErrBudget{Units: budget.Used()}
			}
			return nil
		}
		alias := aliases[pos]
		for i := from; i < len(events); i++ {
			e := events[i]
			if !budget.Spend(1) {
				return baselines.ErrBudget{Units: budget.Used()}
			}
			if !matchesAlias(plan, e, alias) {
				continue
			}
			if pos > 0 {
				prev := cur.events[pos-1]
				if prev.Time >= e.Time {
					continue
				}
				if !plan.Where.EvalAdjacent(aliases[pos-1], prev, alias, e) {
					continue
				}
			}
			nb, ok := cur.binding.Bind(plan, alias, e)
			if !ok {
				continue
			}
			saved := cur.binding
			cur.binding = nb
			cur.events = append(cur.events, e)
			cur.aliases = append(cur.aliases, alias)
			err := dfs(pos+1, i+1)
			cur.events = cur.events[:len(cur.events)-1]
			cur.aliases = cur.aliases[:len(cur.aliases)-1]
			cur.binding = saved
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(0, 0)
}

// matchContiguous enumerates the matches of one fixed-length query
// under the contiguous semantics: consecutive sub-stream events whose
// alias string is the query, passing all predicates. Simultaneous
// events cannot be contiguous (Definition 7 requires strictly
// increasing time).
func (r *Runner) matchContiguous(events []*event.Event, aliases []string, budget *metrics.Budget, keep func(match) bool) error {
	plan := r.plan
	n := len(aliases)
	for off := 0; off+n <= len(events); off++ {
		if !budget.Spend(int64(n)) {
			return baselines.ErrBudget{Units: budget.Used()}
		}
		m := match{binding: baselines.NewBinding(plan)}
		ok := true
		for k := 0; k < n; k++ {
			e := events[off+k]
			alias := aliases[k]
			if !matchesAlias(plan, e, alias) {
				ok = false
				break
			}
			if k > 0 {
				prev := events[off+k-1]
				if prev.Time >= e.Time {
					ok = false
					break
				}
				if !plan.Where.EvalAdjacent(aliases[k-1], prev, alias, e) {
					ok = false
					break
				}
			}
			nb, bindOK := m.binding.Bind(plan, alias, e)
			if !bindOK {
				ok = false
				break
			}
			m.binding = nb
			m.events = append(m.events, e)
			m.aliases = append(m.aliases, alias)
		}
		if ok {
			if !keep(m) {
				return baselines.ErrBudget{Units: budget.Used()}
			}
		}
	}
	return nil
}

// longestCandidateRun returns an upper bound on contiguous match
// length: the longest streak of candidate events in which every
// consecutive pair is connected by some pattern transition with
// strictly increasing times and passing adjacent predicates. Any
// contiguous match occupies consecutive sub-stream positions whose
// pairs all satisfy these conditions, so no match can be longer.
func longestCandidateRun(plan *core.Plan, events []*event.Event) int {
	candidates := func(e *event.Event) []string {
		var out []string
		for _, a := range plan.FSA.AliasesForType(e.Type) {
			if plan.Where.EvalLocal(a, e) {
				out = append(out, a)
			}
		}
		return out
	}
	connected := func(prev, e *event.Event) bool {
		if prev.Time >= e.Time {
			return false
		}
		for _, a := range candidates(prev) {
			for _, b := range plan.FSA.Succ[a] {
				if !matchesAlias(plan, e, b) {
					continue
				}
				if plan.Where.EvalAdjacent(a, prev, b, e) {
					return true
				}
			}
		}
		return false
	}
	best, cur := 0, 0
	var prev *event.Event
	for _, e := range events {
		switch {
		case len(candidates(e)) == 0:
			cur = 0
		case cur == 0 || !connected(prev, e):
			cur = 1
		default:
			cur++
		}
		prev = e
		if cur > best {
			best = cur
		}
	}
	return best
}

// matchesAlias checks the event type and local predicates for one
// pattern type.
func matchesAlias(plan *core.Plan, e *event.Event, alias string) bool {
	for _, a := range plan.FSA.AliasesForType(e.Type) {
		if a == alias {
			return plan.Where.EvalLocal(alias, e)
		}
	}
	return false
}
