package flinklite

import (
	"errors"
	"testing"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func plan(sem query.Semantics, p pattern.Node, opts ...func(*query.Builder)) *core.Plan {
	b := query.NewBuilder(p).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(sem).
		Within(1000, 1000)
	for _, o := range opts {
		o(b)
	}
	return core.MustPlan(b.MustBuild())
}

func seq(types ...string) []*event.Event {
	var out []*event.Event
	for i, s := range types {
		out = append(out, event.New(s, int64(i+1)).WithNum("x", float64(i+1)))
	}
	return out
}

func TestFlinkAnyCountsViaFlattenedWorkload(t *testing.T) {
	// A+ over 6 events under ANY: 2^6-1 = 63 sequences across the
	// flattened queries.
	results, err := New(plan(query.Any, pattern.Plus(pattern.Type("A")))).
		Run(seq("A", "A", "A", "A", "A", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Values[0].Count != 63 {
		t.Errorf("count = %d, want 63", results[0].Values[0].Count)
	}
}

func TestFlinkContiguousMatches(t *testing.T) {
	// SEQ(A+, B) CONT over a a c a b: only (a4, b5) is contiguous.
	results, err := New(plan(query.Cont, pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Run(seq("A", "A", "C", "A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Values[0].Count != 1 {
		t.Errorf("count = %d, want 1", results[0].Values[0].Count)
	}
}

func TestFlinkRejectsNextAndNegation(t *testing.T) {
	var unsup baselines.ErrUnsupported
	if _, err := New(plan(query.Next, pattern.Plus(pattern.Type("A")))).Run(nil); !errors.As(err, &unsup) {
		t.Errorf("NEXT: %v", err)
	}
	negP := pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Not(pattern.Type("N")), pattern.Type("B"))
	if _, err := New(plan(query.Any, negP)).Run(nil); !errors.As(err, &unsup) {
		t.Errorf("negation: %v", err)
	}
}

func TestFlinkAdjacentPredicates(t *testing.T) {
	// Flink supports predicates on adjacent events (Table 9).
	p := plan(query.Any, pattern.Plus(pattern.Type("A")), func(b *query.Builder) {
		b.WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "x", Op: predicate.Lt, Right: "A", RightAttr: "x"})
	})
	events := []*event.Event{
		event.New("A", 1).WithNum("x", 1),
		event.New("A", 2).WithNum("x", 3),
		event.New("A", 3).WithNum("x", 2),
	}
	results, err := New(p).Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Values[0].Count != 5 {
		t.Errorf("count = %d, want 5", results[0].Values[0].Count)
	}
}

// TestFlinkMaterialisesMatches pins the two-step property: peak memory
// covers every constructed match of a window, growing with the match
// count (Figure 7b's exponential memory curve).
func TestFlinkMaterialisesMatches(t *testing.T) {
	peak := func(n int) int64 {
		r := New(plan(query.Any, pattern.Plus(pattern.Type("A"))))
		var acct metrics.Accountant
		r.Acct = &acct
		var events []*event.Event
		for i := 1; i <= n; i++ {
			events = append(events, event.New("A", int64(i)))
		}
		if _, err := r.Run(events); err != nil {
			t.Fatal(err)
		}
		return acct.Peak()
	}
	// 2^10 vs 2^6 matches: memory must grow far superlinearly.
	if p6, p10 := peak(6), peak(10); p10 < 8*p6 {
		t.Errorf("match buffer did not grow with match count: %d -> %d", p6, p10)
	}
}

func TestFlinkBudgetDNF(t *testing.T) {
	r := New(plan(query.Any, pattern.Plus(pattern.Type("A"))))
	r.BudgetUnits = 100
	var events []*event.Event
	for i := 1; i <= 25; i++ {
		events = append(events, event.New("A", int64(i)))
	}
	_, err := r.Run(events)
	var dnf baselines.ErrBudget
	if !errors.As(err, &dnf) {
		t.Fatalf("err = %v", err)
	}
}

func TestLongestCandidateRun(t *testing.T) {
	p := plan(query.Cont, pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))
	events := seq("A", "A", "C", "A", "A", "A", "B")
	if got := longestCandidateRun(p, events); got != 4 {
		t.Errorf("longestCandidateRun = %d, want 4 (a4 a5 a6 b7)", got)
	}
	// Adjacent predicates shorten the bound.
	pp := plan(query.Cont, pattern.Plus(pattern.Type("A")), func(b *query.Builder) {
		b.WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "x", Op: predicate.Lt, Right: "A", RightAttr: "x"})
	})
	evs := []*event.Event{
		event.New("A", 1).WithNum("x", 1),
		event.New("A", 2).WithNum("x", 2),
		event.New("A", 3).WithNum("x", 1), // drop breaks the run
		event.New("A", 4).WithNum("x", 2),
	}
	if got := longestCandidateRun(pp, evs); got != 2 {
		t.Errorf("predicate-bounded run = %d, want 2", got)
	}
	// Simultaneous events break contiguity.
	same := []*event.Event{event.New("A", 1), event.New("A", 1)}
	if got := longestCandidateRun(p, same); got != 1 {
		t.Errorf("tie run = %d, want 1", got)
	}
}

func TestFlinkCapLimitsMatchLength(t *testing.T) {
	r := New(plan(query.Any, pattern.Plus(pattern.Type("A"))))
	r.MaxLen = 2
	results, err := r.Run(seq("A", "A", "A", "A"))
	if err != nil {
		t.Fatal(err)
	}
	// 4 singletons + 6 pairs.
	if results[0].Values[0].Count != 10 {
		t.Errorf("capped count = %d, want 10", results[0].Values[0].Count)
	}
}
