// Package sase reimplements the two-step SASE approach [40] the paper
// compares against (§9.1): events are stored in per-type stacks with
// predecessor pointers, a DFS-based algorithm traverses the pointers
// to construct every event trend, and the trends are aggregated
// afterwards. SASE supports Kleene closure, all three event matching
// semantics and predicates on adjacent events (Table 9) — its flaw is
// the trend construction step, whose cost is the number of trends:
// exponential under skip-till-any-match (Table 3).
//
// Because it materialises the exact trend sets the semantics define,
// this package doubles as the correctness oracle for the property
// tests ("the same aggregates must be returned as by the two-step
// approach").
package sase

import (
	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Trend is one materialised match: events in trend order with the
// pattern types they matched and the equivalence binding they fixed.
type Trend struct {
	Events  []*event.Event
	Aliases []string
	Binding baselines.Binding
}

// Runner is the SASE baseline.
type Runner struct {
	plan *core.Plan
	// BudgetUnits bounds the work (pointer construction steps + trend
	// extension steps); 0 means unlimited.
	BudgetUnits int64
	// Acct receives logical memory accounting if non-nil.
	Acct *metrics.Accountant
}

// New builds a SASE runner for a plan.
func New(plan *core.Plan) *Runner { return &Runner{plan: plan} }

// Name implements baselines.Runner.
func (r *Runner) Name() string { return "SASE" }

// Capabilities implements baselines.CapableRunner: the two-step
// oracle materialises trends, so it covers every semantics and
// predicate class (Table 9) — at exponential cost, bounded by
// BudgetUnits.
func (r *Runner) Capabilities() baselines.Capabilities {
	return baselines.Capabilities{Approach: "SASE",
		Any: true, Next: true, Cont: true, Adjacent: true, Negation: true}
}

// Run implements baselines.Runner: two-step evaluation per sub-stream.
func (r *Runner) Run(events []*event.Event) ([]core.Result, error) {
	budget := metrics.NewBudget(r.BudgetUnits)
	acct := r.Acct
	if acct == nil {
		acct = &metrics.Accountant{}
	}
	var out []core.Result
	subs := baselines.SplitSubstreams(r.plan, events)
	i := 0
	for i < len(subs) {
		// All partitions of one window are aggregated together; their
		// stacks and pointers stay live until the window closes, as in
		// a streaming execution.
		j := i
		collector := baselines.NewGroupCollector(r.plan)
		var releases []func()
		releaseAll := func() {
			for _, rel := range releases {
				rel()
			}
		}
		for j < len(subs) && subs[j].Wid == subs[i].Wid {
			rel, err := r.evalSubstream(subs[j], collector, budget, acct)
			releases = append(releases, rel)
			if err != nil {
				releaseAll()
				return nil, err
			}
			j++
		}
		out = append(out, collector.Results(subs[i].Wid, subs[i].Start, subs[i].End)...)
		releaseAll()
		i = j
	}
	return out, nil
}

// evalSubstream constructs all trends of one sub-stream and folds each
// into its group (the two-step approach). The returned release frees
// the stacks and pointers when the window closes.
func (r *Runner) evalSubstream(sub baselines.Substream, collector *baselines.GroupCollector, budget *metrics.Budget, acct *metrics.Accountant) (func(), error) {
	onTrend := func(tr Trend) bool {
		node := foldTrend(r.plan.Specs, tr)
		collector.Add(sub.PartKey, tr.Binding, node)
		return budget.Spend(int64(len(tr.Events)))
	}
	var err error
	var retained int64
	releaseEvents := storeEvents(sub.Events, acct)
	switch r.plan.Query.Semantics {
	case query.Any:
		retained, err = enumerateAny(r.plan, sub.Events, budget, acct, onTrend)
	default:
		retained, err = enumerateChain(r.plan, sub.Events, budget, acct, onTrend)
	}
	release := func() {
		releaseEvents()
		acct.Add(-retained)
	}
	return release, err
}

// EnumerateWindow materialises every trend of a single window's
// events, for tests and the trend-count experiments (Figure 2,
// Table 3). Events must be in stream order.
func EnumerateWindow(plan *core.Plan, events []*event.Event, budgetUnits int64) ([]Trend, error) {
	budget := metrics.NewBudget(budgetUnits)
	acct := &metrics.Accountant{}
	var trends []Trend
	onTrend := func(tr Trend) bool {
		cp := Trend{
			Events:  append([]*event.Event(nil), tr.Events...),
			Aliases: append([]string(nil), tr.Aliases...),
			Binding: tr.Binding.Clone(),
		}
		trends = append(trends, cp)
		return budget.Spend(int64(len(tr.Events)))
	}
	var seq int64
	for _, e := range events {
		seq++
		if e.ID == 0 {
			e.ID = seq
		}
	}
	var err error
	var retained int64
	if plan.Query.Semantics == query.Any {
		retained, err = enumerateAny(plan, events, budget, acct, onTrend)
	} else {
		retained, err = enumerateChain(plan, events, budget, acct, onTrend)
	}
	acct.Add(-retained)
	if err != nil {
		return nil, err
	}
	return trends, nil
}

// foldTrend aggregates one materialised trend (step two).
func foldTrend(specs agg.Specs, tr Trend) agg.Node {
	elems := make([]any, len(tr.Events))
	for i, e := range tr.Events {
		elems[i] = agg.TrendEvent(tr.Aliases[i], e)
	}
	return specs.FoldTrend(elems)
}

// storeEvents accounts the SASE event stacks (every window event is
// stored for the duration of the window evaluation) and returns the
// release function.
func storeEvents(events []*event.Event, acct *metrics.Accountant) func() {
	var total int64
	for _, e := range events {
		total += e.FootprintBytes() + 16 // stack slot + type pointer
	}
	acct.Add(total)
	return func() { acct.Add(-total) }
}

// eaPair is one (event index, alias) node of the match graph.
type eaPair struct {
	idx   int
	alias string
}

// enumerateAny constructs all trends under skip-till-any-match
// (Definition 2): it first materialises the predecessor pointers the
// SASE stacks maintain, then DFS-enumerates every path from a start
// pair, emitting a trend at every end-type prefix.
func enumerateAny(plan *core.Plan, events []*event.Event, budget *metrics.Budget, acct *metrics.Accountant, onTrend func(Trend) bool) (retained int64, err error) {
	fires := baselines.NegFireTimes(plan, events)
	// Step 0: candidate (event, alias) pairs.
	var pairs []eaPair
	for i, e := range events {
		for _, alias := range baselines.CandidateAliases(plan, e) {
			pairs = append(pairs, eaPair{idx: i, alias: alias})
		}
	}
	// Step 1: successor pointers (the SASE stack pointers, O(n^2)).
	succ := make([][]int, len(pairs))
	var ptrBytes int64
	for pi, p := range pairs {
		// Pointer construction scans every later pair — the O(n^2)
		// insertion cost of the SASE stacks, charged to the budget.
		if !budget.Spend(int64(len(pairs))) {
			return ptrBytes, baselines.ErrBudget{Units: budget.Used()}
		}
		for qi, q := range pairs {
			if events[p.idx].Time >= events[q.idx].Time {
				continue
			}
			if !contains(plan.FSA.Succ[p.alias], q.alias) {
				continue
			}
			if !baselines.AdjacentOK(plan, fires, p.alias, events[p.idx], q.alias, events[q.idx]) {
				continue
			}
			succ[pi] = append(succ[pi], qi)
			ptrBytes += 16
		}
	}
	acct.Add(ptrBytes)

	// Step 2: DFS over the pointers; the current trend is the only
	// one stored at a time (§9.3).
	cur := Trend{Binding: baselines.NewBinding(plan)}
	var dfs func(pi int) error
	dfs = func(pi int) error {
		p := pairs[pi]
		e := events[p.idx]
		nb, ok := cur.Binding.Bind(plan, p.alias, e)
		if !ok {
			return nil
		}
		savedBinding := cur.Binding
		cur.Binding = nb
		cur.Events = append(cur.Events, e)
		cur.Aliases = append(cur.Aliases, p.alias)
		grow := e.FootprintBytes()
		acct.Add(grow)
		defer func() {
			acct.Add(-grow)
			cur.Events = cur.Events[:len(cur.Events)-1]
			cur.Aliases = cur.Aliases[:len(cur.Aliases)-1]
			cur.Binding = savedBinding
		}()
		if plan.FSA.IsEnd(p.alias) {
			if !onTrend(cur) {
				return baselines.ErrBudget{Units: budget.Used()}
			}
		}
		for _, qi := range succ[pi] {
			if !budget.Spend(1) {
				return baselines.ErrBudget{Units: budget.Used()}
			}
			if err := dfs(qi); err != nil {
				return err
			}
		}
		return nil
	}
	for pi, p := range pairs {
		if !plan.FSA.IsStart(p.alias) {
			continue
		}
		if err := dfs(pi); err != nil {
			return ptrBytes, err
		}
	}
	return ptrBytes, nil
}

// enumerateChain constructs all trends under skip-till-next-match and
// contiguous semantics. Both admit at most one predecessor per event
// (Theorem 6.1): matched events form a chain, NEXT skipping irrelevant
// events and CONT resetting on any unmatched one. Every chain segment
// that starts at a start type and ends at an end type is a trend.
func enumerateChain(plan *core.Plan, events []*event.Event, budget *metrics.Budget, acct *metrics.Accountant, onTrend func(Trend) bool) (retained int64, err error) {
	fires := baselines.NegFireTimes(plan, events)
	type chainNode struct {
		idx   int
		alias string
		prev  int // previous chain position, -1 if the chain broke here
	}
	var chain []chainNode
	var chainBytes int64
	last := -1 // position of the last matched event in chain
	for i, e := range events {
		aliases := baselines.CandidateAliases(plan, e)
		matched := false
		if len(aliases) == 1 {
			alias := aliases[0]
			started := plan.FSA.IsStart(alias)
			adjacent := false
			if last >= 0 {
				lastNode := chain[last]
				if contains(plan.FSA.Pred[alias], lastNode.alias) &&
					baselines.AdjacentOK(plan, fires, lastNode.alias, events[lastNode.idx], alias, e) {
					adjacent = true
				}
			}
			if started || adjacent {
				prev := -1
				if adjacent {
					prev = last
				}
				chain = append(chain, chainNode{idx: i, alias: alias, prev: prev})
				grow := e.FootprintBytes() + 24
				acct.Add(grow)
				chainBytes += grow
				last = len(chain) - 1
				matched = true
				if !budget.Spend(1) {
					return chainBytes, baselines.ErrBudget{Units: budget.Used()}
				}
			}
		}
		if !matched && plan.Query.Semantics == query.Cont {
			last = -1
		}
	}
	// Trend extraction: walk back from every end-type node; every
	// start-type prefix boundary yields one trend.
	for k := range chain {
		if !plan.FSA.IsEnd(chain[k].alias) {
			continue
		}
		var path []int
		for j := k; j >= 0; j = chain[j].prev {
			path = append(path, j)
			if plan.FSA.IsStart(chain[j].alias) {
				tr := Trend{Binding: baselines.NewBinding(plan)}
				for p := len(path) - 1; p >= 0; p-- {
					node := chain[path[p]]
					tr.Events = append(tr.Events, events[node.idx])
					tr.Aliases = append(tr.Aliases, node.alias)
				}
				if !onTrend(tr) {
					return chainBytes, baselines.ErrBudget{Units: budget.Used()}
				}
			}
		}
	}
	return chainBytes, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
