package sase

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func planFor(sem query.Semantics, p pattern.Node, opts ...func(*query.Builder)) *core.Plan {
	b := query.NewBuilder(p).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(sem).
		Within(1000, 1000)
	for _, o := range opts {
		o(b)
	}
	return core.MustPlan(b.MustBuild())
}

func evs(specs ...string) []*event.Event {
	var out []*event.Event
	for i, s := range specs {
		out = append(out, event.New(s, int64(i+1)).WithNum("x", float64(i+1)))
	}
	return out
}

func trendKeys(trends []Trend) []string {
	var out []string
	for _, tr := range trends {
		var parts []string
		for i, e := range tr.Events {
			parts = append(parts, tr.Aliases[i]+fmtInt(e.Time))
		}
		out = append(out, strings.Join(parts, "."))
	}
	return out
}

func fmtInt(v int64) string {
	return string(rune('0' + v)) // single digits in these fixtures
}

func TestEnumerateAnySimple(t *testing.T) {
	// SEQ(A+, B) over a1 a2 b3: A-subsets {a1},{a2},{a1,a2} each with b3.
	plan := planFor(query.Any, pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))
	trends, err := EnumerateWindow(plan, evs("A", "A", "B"), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, k := range trendKeys(trends) {
		got[k] = true
	}
	want := []string{"A1.B3", "A2.B3", "A1.A2.B3"}
	if len(trends) != len(want) {
		t.Fatalf("trends = %v", trendKeys(trends))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing trend %s in %v", w, trendKeys(trends))
		}
	}
}

func TestEnumerateNextChainBreak(t *testing.T) {
	// SEQ(A+, B) NEXT over a1 b2 a3 b4: the b2 finishes the first
	// chain, a3 restarts; (a1, b4) must not appear.
	plan := planFor(query.Next, pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))
	trends, err := EnumerateWindow(plan, evs("A", "B", "A", "B"), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := trendKeys(trends)
	if len(keys) != 2 || keys[0] != "A1.B2" && keys[1] != "A1.B2" {
		t.Errorf("NEXT trends = %v, want [A1.B2 A3.B4]", keys)
	}
	for _, k := range keys {
		if k == "A1.B4" {
			t.Error("chain-crossing trend enumerated")
		}
	}
}

func TestEnumerateContRequiresImmediateAdjacency(t *testing.T) {
	// A+ CONT over a1 a2 c3 a4: c3 resets, so {a1,a2,a4} style trends
	// are impossible; trends are a1, a2, a1a2, a4.
	plan := planFor(query.Cont, pattern.Plus(pattern.Type("A")))
	trends, err := EnumerateWindow(plan, evs("A", "A", "C", "A"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 4 {
		t.Errorf("CONT trends = %v", trendKeys(trends))
	}
}

func TestEnumerateRespectsAdjacentPredicates(t *testing.T) {
	// A+ ANY with increasing x: values 1,3,2 -> {1},{3},{2},{1,3},{1,2}.
	plan := planFor(query.Any, pattern.Plus(pattern.Type("A")), func(b *query.Builder) {
		b.WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "x", Op: predicate.Lt, Right: "A", RightAttr: "x"})
	})
	events := []*event.Event{
		event.New("A", 1).WithNum("x", 1),
		event.New("A", 2).WithNum("x", 3),
		event.New("A", 3).WithNum("x", 2),
	}
	trends, err := EnumerateWindow(plan, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 5 {
		t.Errorf("%d trends: %v", len(trends), trendKeys(trends))
	}
}

func TestEnumerateBindings(t *testing.T) {
	// SEQ(S A+, S B+) with [A.c]: A-events must share c.
	p := pattern.Seq(pattern.Plus(pattern.TypeAs("S", "A")), pattern.Plus(pattern.TypeAs("S", "B")))
	plan := planFor(query.Any, p, func(b *query.Builder) {
		b.WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"})
	})
	events := []*event.Event{
		event.New("S", 1).WithSym("c", "x"),
		event.New("S", 2).WithSym("c", "y"),
		event.New("S", 3).WithSym("c", "x"),
	}
	trends, err := EnumerateWindow(plan, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trends {
		seen := map[string]bool{}
		for i, e := range tr.Events {
			if tr.Aliases[i] == "A" {
				seen[e.Sym["c"]] = true
			}
		}
		if len(seen) > 1 {
			t.Errorf("trend with mixed A companies: %v", trendKeys([]Trend{tr}))
		}
	}
}

func TestBudgetTripsMidEnumeration(t *testing.T) {
	plan := planFor(query.Any, pattern.Plus(pattern.Type("A")))
	var events []*event.Event
	for i := 1; i <= 30; i++ {
		events = append(events, event.New("A", int64(i)))
	}
	_, err := EnumerateWindow(plan, events, 1000)
	var dnf baselines.ErrBudget
	if !errors.As(err, &dnf) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestRunnerMemoryReturnsToZero(t *testing.T) {
	plan := planFor(query.Any, pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))
	r := New(plan)
	var acct metrics.Accountant
	r.Acct = &acct
	if _, err := r.Run(evs("A", "A", "B", "A", "B")); err != nil {
		t.Fatal(err)
	}
	if acct.Peak() == 0 {
		t.Error("no memory accounted")
	}
	if acct.Current() != 0 {
		t.Errorf("%d bytes leaked", acct.Current())
	}
}

func TestRunnerMultiWindow(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(2, 2).MustBuild()
	plan := core.MustPlan(q)
	r := New(plan)
	results, err := r.Run([]*event.Event{
		event.New("A", 0), event.New("A", 1), // window 0: 3 trends
		event.New("A", 2), // window 1: 1 trend
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Values[0].Count != 3 || results[1].Values[0].Count != 1 {
		t.Errorf("results = %v", results)
	}
}

func TestNegationBlocksPairs(t *testing.T) {
	p := pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Not(pattern.Type("N")), pattern.Type("B"))
	plan := planFor(query.Any, p)
	events := []*event.Event{
		event.New("A", 1), event.New("N", 2), event.New("A", 3), event.New("B", 4),
	}
	trends, err := EnumerateWindow(plan, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Valid trends: last A after the N -> {a3,b4}, {a1,a3,b4}.
	if len(trends) != 2 {
		t.Errorf("trends = %v", trendKeys(trends))
	}
}
