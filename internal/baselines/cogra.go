package baselines

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// CograRunner adapts the COGRA engine to the Runner interface so the
// experiment harness and the cross-validation tests drive every
// approach identically.
type CograRunner struct {
	Plan *core.Plan
	// Acct receives logical memory accounting if non-nil.
	Acct *metrics.Accountant
}

// NewCogra builds the adapter.
func NewCogra(plan *core.Plan) *CograRunner { return &CograRunner{Plan: plan} }

// Name implements Runner.
func (r *CograRunner) Name() string { return "COGRA" }

// Capabilities implements CapableRunner: the engine under test covers
// the full matrix — which is the point of the comparison.
func (r *CograRunner) Capabilities() Capabilities {
	return Capabilities{Approach: "COGRA",
		Any: true, Next: true, Cont: true, Adjacent: true, Negation: true}
}

// Run implements Runner.
func (r *CograRunner) Run(events []*event.Event) ([]core.Result, error) {
	var opts []core.Option
	if r.Acct != nil {
		opts = append(opts, core.WithAccountant(r.Acct))
	}
	eng := core.NewEngine(r.Plan, opts...)
	if err := eng.ProcessAll(events); err != nil {
		return nil, err
	}
	return eng.Close(), nil
}
