package aseq

import (
	"errors"
	"testing"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func anyPlan(p pattern.Node, opts ...func(*query.Builder)) *core.Plan {
	b := query.NewBuilder(p).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(1000, 1000)
	for _, o := range opts {
		o(b)
	}
	return core.MustPlan(b.MustBuild())
}

func aEvents(n int) []*event.Event {
	var out []*event.Event
	for i := 1; i <= n; i++ {
		out = append(out, event.New("A", int64(i)))
	}
	return out
}

func TestASeqCountsKleeneViaFlattening(t *testing.T) {
	// A+ over n events: 2^n - 1 trends, summed across the flattened
	// fixed-length queries (one per length).
	plan := anyPlan(pattern.Plus(pattern.Type("A")))
	for _, n := range []int{1, 3, 6, 10} {
		results, err := New(plan).Run(aEvents(n))
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(1)<<n - 1
		if results[0].Values[0].Count != want {
			t.Errorf("n=%d: count = %d, want %d", n, results[0].Values[0].Count, want)
		}
	}
}

func TestASeqMaxLenCapsTrendLength(t *testing.T) {
	// With MaxLen 2, only trends of length <= 2 are counted:
	// n=4 -> 4 singletons + C(4,2)=6 pairs = 10.
	plan := anyPlan(pattern.Plus(pattern.Type("A")))
	r := New(plan)
	r.MaxLen = 2
	results, err := r.Run(aEvents(4))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Values[0].Count != 10 {
		t.Errorf("capped count = %d, want 10", results[0].Values[0].Count)
	}
}

func TestASeqRejectsUnsupportedFeatures(t *testing.T) {
	var unsup baselines.ErrUnsupported
	nextPlan := core.MustPlan(query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Next).Within(10, 10).MustBuild())
	if _, err := New(nextPlan).Run(nil); !errors.As(err, &unsup) {
		t.Errorf("NEXT: %v", err)
	}
	adjPlan := anyPlan(pattern.Plus(pattern.Type("A")), func(b *query.Builder) {
		b.WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "x", Op: predicate.Lt, Right: "A", RightAttr: "x"})
	})
	if _, err := New(adjPlan).Run(nil); !errors.As(err, &unsup) {
		t.Errorf("adjacent predicates: %v", err)
	}
	negPlan := anyPlan(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Not(pattern.Type("N")), pattern.Type("B")))
	if _, err := New(negPlan).Run(nil); !errors.As(err, &unsup) {
		t.Errorf("negation: %v", err)
	}
}

func TestASeqSlotPathMatchesFastPathSemantics(t *testing.T) {
	// The alias-equivalence (slot) path and the fast path must agree
	// with COGRA; exercised on the shared-type pattern.
	p := pattern.Seq(pattern.Plus(pattern.TypeAs("S", "A")), pattern.Plus(pattern.TypeAs("S", "B")))
	slotPlan := anyPlan(p, func(b *query.Builder) {
		b.WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"})
		b.GroupBy(query.GroupKey{Alias: "A", Attr: "c"})
	})
	events := []*event.Event{
		event.New("S", 1).WithSym("c", "x"),
		event.New("S", 2).WithSym("c", "y"),
		event.New("S", 3).WithSym("c", "x"),
		event.New("S", 4).WithSym("c", "y"),
	}
	clone := func() []*event.Event {
		out := make([]*event.Event, len(events))
		for i, e := range events {
			out[i] = e.Clone()
		}
		return out
	}
	got, err := New(slotPlan).Run(clone())
	if err != nil {
		t.Fatal(err)
	}
	want, err := baselines.NewCogra(slotPlan).Run(clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results: %v vs %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("result %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestASeqStateGrowsWithFlattening pins the paper's point: A-Seq's
// memory grows with the number of flattened queries, i.e. with the
// trend length bound (Figure 8b).
func TestASeqStateGrowsWithFlattening(t *testing.T) {
	plan := anyPlan(pattern.Plus(pattern.Type("A")))
	peak := func(maxLen int) int64 {
		r := New(plan)
		r.MaxLen = maxLen
		var acct metrics.Accountant
		r.Acct = &acct
		if _, err := r.Run(aEvents(30)); err != nil {
			t.Fatal(err)
		}
		return acct.Peak()
	}
	if p10, p30 := peak(10), peak(30); p30 < 4*p10 {
		t.Errorf("state did not grow with flattening: %d -> %d", p10, p30)
	}
}

func TestASeqBudgetDNF(t *testing.T) {
	plan := anyPlan(pattern.Plus(pattern.Type("A")))
	r := New(plan)
	r.BudgetUnits = 50
	_, err := r.Run(aEvents(40))
	var dnf baselines.ErrBudget
	if !errors.As(err, &dnf) {
		t.Fatalf("err = %v", err)
	}
}

func TestASeqSimultaneousEventsDoNotChain(t *testing.T) {
	plan := anyPlan(pattern.Plus(pattern.Type("A")))
	events := []*event.Event{event.New("A", 1), event.New("A", 1)}
	results, err := New(plan).Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Values[0].Count != 2 {
		t.Errorf("count = %d, want 2 (no pair across equal time stamps)", results[0].Values[0].Count)
	}
}
