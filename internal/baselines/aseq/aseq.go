// Package aseq reimplements the A-Seq approach [33] the paper compares
// against: online aggregation of fixed-length event sequences by
// prefix counters, without sequence construction. A-Seq does not
// support Kleene closure, so a Kleene query is flattened into the
// workload of fixed-length sequence queries covering every possible
// trend length up to the longest match (§9.1); the number of queries
// grows with the number of events per window, which is exactly the
// overhead Figures 8 and 10 expose. A-Seq supports only
// skip-till-any-match and no predicates on adjacent events beyond
// equivalence predicates (Table 9).
package aseq

import (
	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// Runner is the A-Seq baseline.
type Runner struct {
	plan *core.Plan
	// MaxLen caps the flattening length; 0 derives it from the window
	// content (the longest possible trend = events per window), the
	// configuration used for exact cross-validation.
	MaxLen int
	// BudgetUnits bounds the work (prefix-counter updates); 0 means
	// unlimited.
	BudgetUnits int64
	// Acct receives logical memory accounting if non-nil.
	Acct *metrics.Accountant
}

// New builds an A-Seq runner.
func New(plan *core.Plan) *Runner { return &Runner{plan: plan} }

// Name implements baselines.Runner.
func (r *Runner) Name() string { return "A-Seq" }

// Capabilities implements baselines.CapableRunner: A-Seq flattens
// Kleene into fixed-length sequences, which works only under
// skip-till-any-match and cannot express adjacent predicates or
// negation (Table 9).
func (r *Runner) Capabilities() baselines.Capabilities {
	return baselines.Capabilities{Approach: "A-Seq", Any: true}
}

// seqQuery is one flattened fixed-length sequence query: prefix i
// holds the aggregate of all partial matches of aliases[0..i], per
// equivalence binding.
type seqQuery struct {
	aliases []string
	prefix  []map[string]*prefixEntry
}

type prefixEntry struct {
	binding baselines.Binding
	node    agg.Node
}

// Run implements baselines.Runner.
func (r *Runner) Run(events []*event.Event) ([]core.Result, error) {
	if err := r.Capabilities().Supports(r.plan); err != nil {
		return nil, err
	}
	budget := metrics.NewBudget(r.BudgetUnits)
	acct := r.Acct
	if acct == nil {
		acct = &metrics.Accountant{}
	}
	var out []core.Result
	subs := baselines.SplitSubstreams(r.plan, events)
	i := 0
	for i < len(subs) {
		j := i
		collector := baselines.NewGroupCollector(r.plan)
		// Prefix counters of every sub-stream of a window are live
		// simultaneously until the window closes, as in a streaming
		// execution.
		var releases []func()
		releaseAll := func() {
			for _, rel := range releases {
				rel()
			}
		}
		for j < len(subs) && subs[j].Wid == subs[i].Wid {
			rel, err := r.evalSubstream(subs[j], collector, budget, acct)
			releases = append(releases, rel)
			if err != nil {
				releaseAll()
				return nil, err
			}
			j++
		}
		out = append(out, collector.Results(subs[i].Wid, subs[i].Start, subs[i].End)...)
		releaseAll()
		i = j
	}
	return out, nil
}

// evalSubstream runs the flattened query workload over one sub-stream;
// the returned release frees the counters when the window closes.
func (r *Runner) evalSubstream(sub baselines.Substream, collector *baselines.GroupCollector, budget *metrics.Budget, acct *metrics.Accountant) (func(), error) {
	if len(r.plan.Slots) == 0 {
		return r.evalFast(sub, collector, budget, acct)
	}
	return r.evalWithSlots(sub, collector, budget, acct)
}

// evalFast is the slot-free path: one aggregate per prefix position,
// updated in place (this is the layout the original A-Seq uses; the
// binding-keyed path below only exists for alias-scoped equivalence).
func (r *Runner) evalFast(sub baselines.Substream, collector *baselines.GroupCollector, budget *metrics.Budget, acct *metrics.Accountant) (func(), error) {
	plan := r.plan
	specs := plan.Specs
	maxLen := len(sub.Events)
	if r.MaxLen > 0 && r.MaxLen < maxLen {
		maxLen = r.MaxLen
	}
	flat := plan.FSA.Flatten(maxLen)
	type fastQuery struct {
		aliases []string
		prefix  []agg.Node // committed, strictly-earlier time stamps
		pending []agg.Node // staged contributions of the current time
		dirty   []bool
	}
	queries := make([]*fastQuery, len(flat))
	var stateBytes int64
	for qi, aliases := range flat {
		q := &fastQuery{aliases: aliases}
		q.prefix = make([]agg.Node, len(aliases))
		q.pending = make([]agg.Node, len(aliases))
		q.dirty = make([]bool, len(aliases))
		for i := range aliases {
			q.prefix[i] = specs.Zero()
			q.pending[i] = specs.Zero()
		}
		queries[qi] = q
		stateBytes += 2 * int64(len(aliases)) * specs.FootprintBytes()
	}
	acct.Add(stateBytes)
	release := func() { acct.Add(-stateBytes) }

	type posRef struct {
		q   *fastQuery
		pos int
	}
	posIndex := map[string][]posRef{}
	for _, q := range queries {
		for pos, alias := range q.aliases {
			posIndex[alias] = append(posIndex[alias], posRef{q: q, pos: pos})
		}
	}
	var dirtyRefs []posRef
	flush := func() {
		for _, ref := range dirtyRefs {
			if !ref.q.dirty[ref.pos] {
				continue
			}
			specs.Merge(&ref.q.prefix[ref.pos], ref.q.pending[ref.pos])
			ref.q.pending[ref.pos] = specs.Zero()
			ref.q.dirty[ref.pos] = false
		}
		dirtyRefs = dirtyRefs[:0]
	}
	curTime := int64(0)
	hasCur := false
	for _, e := range sub.Events {
		if hasCur && e.Time != curTime {
			flush()
		}
		curTime, hasCur = e.Time, true
		for _, alias := range baselines.CandidateAliases(plan, e) {
			refs := posIndex[alias]
			if !budget.Spend(int64(len(refs)) + 1) {
				return release, baselines.ErrBudget{Units: budget.Used()}
			}
			for _, ref := range refs {
				var node agg.Node
				if ref.pos == 0 {
					node = specs.Extend(specs.Zero(), alias, e, 1)
				} else {
					prev := ref.q.prefix[ref.pos-1]
					if prev.Count == 0 {
						continue
					}
					node = specs.Extend(prev, alias, e, 0)
				}
				specs.Merge(&ref.q.pending[ref.pos], node)
				if !ref.q.dirty[ref.pos] {
					ref.q.dirty[ref.pos] = true
					dirtyRefs = append(dirtyRefs, ref)
				}
			}
		}
	}
	flush()
	for _, q := range queries {
		last := q.prefix[len(q.aliases)-1]
		if last.Count != 0 {
			collector.Add(sub.PartKey, baselines.NewBinding(plan), last)
		}
	}
	return release, nil
}

// evalWithSlots is the general binding-keyed path.
func (r *Runner) evalWithSlots(sub baselines.Substream, collector *baselines.GroupCollector, budget *metrics.Budget, acct *metrics.Accountant) (func(), error) {
	plan := r.plan
	specs := plan.Specs
	// The longest possible trend is the window content; MaxLen > 0
	// additionally caps the flattening (the workload would otherwise
	// be unbounded — exactly the weakness §9.1 describes).
	maxLen := len(sub.Events)
	if r.MaxLen > 0 && r.MaxLen < maxLen {
		maxLen = r.MaxLen
	}
	// The flattening step: one sequence query per alias string.
	flat := plan.FSA.Flatten(maxLen)
	queries := make([]*seqQuery, len(flat))
	var stateBytes int64
	for qi, aliases := range flat {
		q := &seqQuery{aliases: aliases, prefix: make([]map[string]*prefixEntry, len(aliases))}
		for i := range q.prefix {
			q.prefix[i] = map[string]*prefixEntry{}
		}
		queries[qi] = q
		stateBytes += int64(16 * len(aliases)) // per-position table headers
	}
	acct.Add(stateBytes)
	release := func() { acct.Add(-stateBytes) }

	// posIndex maps an alias to every (query, position) slot it feeds.
	type posRef struct {
		q   *seqQuery
		pos int
	}
	posIndex := map[string][]posRef{}
	for _, q := range queries {
		for pos, alias := range q.aliases {
			posIndex[alias] = append(posIndex[alias], posRef{q: q, pos: pos})
		}
	}

	// Simultaneous events must not extend one another (Definition 7):
	// contributions of the current time stamp are staged and committed
	// when time advances.
	type staged struct {
		q   *seqQuery
		pos int
		key string
		e   *prefixEntry
	}
	var pend []staged
	curTime := int64(0)
	hasCur := false
	flush := func() {
		for _, s := range pend {
			dst, ok := s.q.prefix[s.pos][s.key]
			if !ok {
				dst = &prefixEntry{binding: s.e.binding, node: specs.Zero()}
				s.q.prefix[s.pos][s.key] = dst
				grow := specs.FootprintBytes() + int64(len(s.key)) + 24
				acct.Add(grow)
				stateBytes += grow
			}
			specs.Merge(&dst.node, s.e.node)
		}
		pend = pend[:0]
	}

	for _, e := range sub.Events {
		if hasCur && e.Time != curTime {
			flush()
		}
		curTime, hasCur = e.Time, true
		for _, alias := range baselines.CandidateAliases(plan, e) {
			refs := posIndex[alias]
			if !budget.Spend(int64(len(refs)) + 1) {
				return release, baselines.ErrBudget{Units: budget.Used()}
			}
			for _, ref := range refs {
				if ref.pos == 0 {
					b, ok := baselines.NewBinding(plan).Bind(plan, alias, e)
					if !ok {
						continue
					}
					node := specs.Extend(specs.Zero(), alias, e, 1)
					pend = append(pend, staged{q: ref.q, pos: 0, key: bindingKey(b),
						e: &prefixEntry{binding: b, node: node}})
					continue
				}
				for _, prev := range ref.q.prefix[ref.pos-1] {
					if !budget.Spend(1) {
						return release, baselines.ErrBudget{Units: budget.Used()}
					}
					nb, ok := prev.binding.Bind(plan, alias, e)
					if !ok {
						continue
					}
					node := specs.Extend(prev.node, alias, e, 0)
					pend = append(pend, staged{q: ref.q, pos: ref.pos, key: bindingKey(nb),
						e: &prefixEntry{binding: nb, node: node}})
				}
			}
		}
	}
	flush()
	for _, q := range queries {
		last := len(q.aliases) - 1
		for _, entry := range q.prefix[last] {
			collector.Add(sub.PartKey, entry.binding, entry.node)
		}
	}
	return release, nil
}

func bindingKey(b baselines.Binding) string {
	out := ""
	for i, v := range b {
		if i > 0 {
			out += "\x00"
		}
		out += v
	}
	return out
}
