// Cross-validation of every execution strategy: COGRA's three
// granularities must return exactly the same aggregates as the
// two-step oracle (SASE) and, where their expressive power suffices
// (Table 9), as GRETA, A-Seq and Flink. This is the paper's
// correctness criterion: "the same aggregates must be returned as by
// the two-step approach".
package baselines_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/baselines/aseq"
	"repro/internal/baselines/flinklite"
	"repro/internal/baselines/greta"
	"repro/internal/baselines/sase"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// figure2Events is the stream of Figure 2: a1 b2 a3 a4 c5 b6 a7 b8.
func figure2Events() []*event.Event {
	var out []*event.Event
	for _, s := range []struct {
		typ string
		t   int64
	}{{"A", 1}, {"B", 2}, {"A", 3}, {"A", 4}, {"C", 5}, {"B", 6}, {"A", 7}, {"B", 8}} {
		out = append(out, event.New(s.typ, s.t).WithNum("x", float64(s.t)))
	}
	return out
}

func figure2Query(sem query.Semantics) *query.Query {
	return query.NewBuilder(
		pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(sem).
		Within(100, 100).
		MustBuild()
}

// TestFigure2TrendCounts checks the materialised trend sets of the
// running example: 43 trends under ANY, 8 under NEXT, 2 under CONT.
func TestFigure2TrendCounts(t *testing.T) {
	want := map[query.Semantics]int{query.Any: 43, query.Next: 8, query.Cont: 2}
	for sem, n := range want {
		plan := core.MustPlan(figure2Query(sem))
		trends, err := sase.EnumerateWindow(plan, figure2Events(), 0)
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if len(trends) != n {
			t.Errorf("%v: %d trends, want %d", sem, len(trends), n)
		}
		// Every trend must be accepted by the pattern language.
		for _, tr := range trends {
			if !plan.FSA.AcceptsAliasSeq(tr.Aliases) {
				t.Errorf("%v: enumerated trend %v not in pattern language", sem, tr.Aliases)
			}
		}
	}
}

// TestFigure2ContiguousTrends pins the exact CONT trends (Example 4).
func TestFigure2ContiguousTrends(t *testing.T) {
	plan := core.MustPlan(figure2Query(query.Cont))
	trends, err := sase.EnumerateWindow(plan, figure2Events(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tr := range trends {
		key := ""
		for _, e := range tr.Events {
			key += fmt.Sprintf("%s%d", e.Type, e.Time)
		}
		got[key] = true
	}
	if !got["A1B2"] || !got["A7B8"] || len(got) != 2 {
		t.Errorf("CONT trends = %v, want {A1B2, A7B8}", got)
	}
}

// runAll executes every runner that supports the query and compares
// all results against COGRA's.
func runAll(t *testing.T, q *query.Query, events []*event.Event, tag string) {
	t.Helper()
	plan, err := core.NewPlan(q)
	if err != nil {
		t.Fatalf("%s: plan: %v", tag, err)
	}
	ref, err := baselines.NewCogra(plan).Run(cloneEvents(events))
	if err != nil {
		t.Fatalf("%s: COGRA: %v", tag, err)
	}
	runners := []baselines.CapableRunner{
		sase.New(plan),
		greta.New(plan),
		aseq.New(plan),
		flinklite.New(plan),
	}
	for _, r := range runners {
		// Oracle selection reads the Table 9 capability row; an
		// ErrUnsupported from Run after the row said yes (or a success
		// after it said no) would be a capability-table bug, so it is
		// a test failure below, not a skip.
		if r.Capabilities().Supports(plan) != nil {
			if _, err := r.Run(cloneEvents(events)); !errors.As(err, new(baselines.ErrUnsupported)) {
				t.Errorf("%s: %s: capability row disclaims the query but Run returned %v",
					tag, r.Name(), err)
			}
			continue
		}
		got, err := r.Run(cloneEvents(events))
		if err != nil {
			t.Errorf("%s: %s: %v", tag, r.Name(), err)
			continue
		}
		if !resultsEqual(ref, got) {
			t.Errorf("%s: %s disagrees with COGRA:\nCOGRA: %v\n%s: %v",
				tag, r.Name(), fmtResults(ref), r.Name(), fmtResults(got))
		}
	}
}

func cloneEvents(events []*event.Event) []*event.Event {
	out := make([]*event.Event, len(events))
	for i, e := range events {
		c := e.Clone()
		c.ID = 0 // fresh IDs per run
		out[i] = c
	}
	return out
}

func resultsEqual(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Wid != b[i].Wid || len(a[i].Group) != len(b[i].Group) {
			return false
		}
		for j := range a[i].Group {
			if a[i].Group[j] != b[i].Group[j] {
				return false
			}
		}
		if !agg.Equal(a[i].Values, b[i].Values) {
			return false
		}
	}
	return true
}

func fmtResults(rs []core.Result) string {
	s := ""
	for _, r := range rs {
		s += "\n  " + r.String()
	}
	if s == "" {
		return "(none)"
	}
	return s
}

// TestCrossCheckFigure2 compares all approaches on the running
// example under every semantics.
func TestCrossCheckFigure2(t *testing.T) {
	for _, sem := range []query.Semantics{query.Any, query.Next, query.Cont} {
		runAll(t, figure2Query(sem), figure2Events(), sem.String())
	}
}

// TestCrossCheckAggregateFunctions exercises every aggregation
// function across approaches.
func TestCrossCheckAggregateFunctions(t *testing.T) {
	q := query.NewBuilder(
		pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(
			agg.Spec{Func: agg.CountStar},
			agg.Spec{Func: agg.CountType, Alias: "A"},
			agg.Spec{Func: agg.Min, Alias: "A", Attr: "x"},
			agg.Spec{Func: agg.Max, Alias: "B", Attr: "x"},
			agg.Spec{Func: agg.Sum, Alias: "A", Attr: "x"},
			agg.Spec{Func: agg.Avg, Alias: "B", Attr: "x"},
		).
		Semantics(query.Any).
		Within(100, 100).
		MustBuild()
	runAll(t, q, figure2Events(), "all-aggs")
}

// randomStream builds a reproducible random stream over the given
// event types with numeric attribute x, symbolic attributes k
// (partition) and c (company).
func randomStream(rng *rand.Rand, types []string, n int, tieProb float64) []*event.Event {
	var out []*event.Event
	tm := int64(0)
	for i := 0; i < n; i++ {
		if i == 0 || rng.Float64() >= tieProb {
			tm += 1 + int64(rng.Intn(3))
		}
		e := event.New(types[rng.Intn(len(types))], tm).
			WithNum("x", float64(rng.Intn(6))).
			WithSym("k", fmt.Sprintf("g%d", rng.Intn(2))).
			WithSym("c", fmt.Sprintf("c%d", rng.Intn(2)))
		out = append(out, e)
	}
	return out
}

// queryCase is one randomized query configuration.
type queryCase struct {
	name  string
	mk    func() pattern.Node
	types []string
	// allowedSems filters semantics (multi-alias patterns cannot run
	// under NEXT/CONT).
	sems []query.Semantics
	// aliasForPreds is the alias used for adjacent/local predicates.
	predAlias string
}

func patternCases() []queryCase {
	all := []query.Semantics{query.Any, query.Next, query.Cont}
	return []queryCase{
		{
			name:      "kleene-single",
			mk:        func() pattern.Node { return pattern.Plus(pattern.Type("A")) },
			types:     []string{"A", "C"},
			sems:      all,
			predAlias: "A",
		},
		{
			name: "seq-kleene",
			mk: func() pattern.Node {
				return pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))
			},
			types:     []string{"A", "B", "C"},
			sems:      all,
			predAlias: "A",
		},
		{
			name: "figure2",
			mk: func() pattern.Node {
				return pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))
			},
			types:     []string{"A", "B", "C"},
			sems:      all,
			predAlias: "A",
		},
		{
			name: "nested-kleene",
			mk: func() pattern.Node {
				return pattern.Seq(pattern.Type("A"),
					pattern.Plus(pattern.Seq(pattern.Type("B"), pattern.Type("C"))),
					pattern.Type("D"))
			},
			types:     []string{"A", "B", "C", "D"},
			sems:      all,
			predAlias: "B",
		},
		{
			name: "shared-type",
			mk: func() pattern.Node {
				return pattern.Seq(pattern.Plus(pattern.TypeAs("S", "A")), pattern.Plus(pattern.TypeAs("S", "B")))
			},
			types:     []string{"S", "C"},
			sems:      []query.Semantics{query.Any},
			predAlias: "A",
		},
		{
			name: "disjunction",
			mk: func() pattern.Node {
				return pattern.Or(pattern.Seq(pattern.Type("A"), pattern.Type("B")), pattern.Plus(pattern.Type("C")))
			},
			types:     []string{"A", "B", "C", "D"},
			sems:      all,
			predAlias: "C",
		},
		{
			name: "negation",
			mk: func() pattern.Node {
				return pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Not(pattern.Type("N")), pattern.Type("B"))
			},
			types:     []string{"A", "B", "N", "C"},
			sems:      all,
			predAlias: "A",
		},
		{
			name: "star",
			mk: func() pattern.Node {
				return pattern.Seq(pattern.Type("A"), pattern.Star(pattern.Type("B")), pattern.Type("C"))
			},
			types:     []string{"A", "B", "C"},
			sems:      all,
			predAlias: "B",
		},
		{
			name: "optional",
			mk: func() pattern.Node {
				return pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Opt(pattern.Type("B")), pattern.Type("C"))
			},
			types:     []string{"A", "B", "C", "D"},
			sems:      all,
			predAlias: "A",
		},
	}
}

// TestRandomizedCrossCheck is the main property test: hundreds of
// random (stream, query) pairs across patterns, semantics, predicates,
// groupings, windows and tie densities; every supporting approach must
// agree with COGRA exactly.
func TestRandomizedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20190610))
	cases := patternCases()
	iterations := 60
	if testing.Short() {
		iterations = 12
	}
	for iter := 0; iter < iterations; iter++ {
		for _, pc := range cases {
			sem := pc.sems[rng.Intn(len(pc.sems))]
			tag := fmt.Sprintf("iter%d/%s/%s", iter, pc.name, sem)

			b := query.NewBuilder(pc.mk()).Semantics(sem)
			// Aggregates: COUNT(*) always, plus a random extra.
			b.Return(agg.Spec{Func: agg.CountStar})
			switch rng.Intn(5) {
			case 1:
				b.Return(agg.Spec{Func: agg.CountType, Alias: pc.predAlias})
			case 2:
				b.Return(agg.Spec{Func: agg.Min, Alias: pc.predAlias, Attr: "x"})
			case 3:
				b.Return(agg.Spec{Func: agg.Sum, Alias: pc.predAlias, Attr: "x"})
			case 4:
				b.Return(agg.Spec{Func: agg.Avg, Alias: pc.predAlias, Attr: "x"})
			}
			// Random predicates.
			if rng.Intn(3) == 0 {
				b.WhereLocal(predicate.Local{Alias: pc.predAlias, Attr: "x", Op: predicate.Gt, Value: 1.0})
			}
			if rng.Intn(3) == 0 {
				b.WhereAdjacent(predicate.Adjacent{
					Left: pc.predAlias, LeftAttr: "x", Op: predicate.Le,
					Right: pc.predAlias, RightAttr: "x",
				})
			}
			if rng.Intn(3) == 0 {
				b.WhereEquiv(predicate.Equivalence{Attr: "k"})
				b.GroupBy(query.GroupKey{Attr: "k"})
			}
			if sem == query.Any && pc.name == "shared-type" && rng.Intn(2) == 0 {
				b.WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"})
				b.GroupBy(query.GroupKey{Alias: "A", Attr: "c"})
			}
			// Random window.
			windows := [][2]int64{{100, 100}, {10, 5}, {6, 3}, {7, 7}}
			w := windows[rng.Intn(len(windows))]
			b.Within(w[0], w[1])

			q, err := b.Build()
			if err != nil {
				t.Fatalf("%s: build: %v", tag, err)
			}
			if _, err := core.NewPlan(q); err != nil {
				continue // combination rejected by the planner (expected)
			}
			n := 6 + rng.Intn(9) // keep the oracle's exponential cost sane
			events := randomStream(rng, pc.types, n, 0.15)
			runAll(t, q, events, tag)
		}
	}
}

// TestCrossCheckSlidingWindows uses overlapping windows specifically.
func TestCrossCheckSlidingWindows(t *testing.T) {
	q := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "x"}).
		Semantics(query.Any).
		Within(6, 2).
		MustBuild()
	rng := rand.New(rand.NewSource(7))
	events := randomStream(rng, []string{"A", "B"}, 20, 0)
	runAll(t, q, events, "sliding")
}

// TestCrossCheckGrouping uses the q1 shape: partitioned contiguous
// trends with MIN/MAX.
func TestCrossCheckGrouping(t *testing.T) {
	q := query.MustParse(`
		RETURN patient, MIN(M.rate), MAX(M.rate), COUNT(*)
		PATTERN Measurement M+
		SEMANTICS contiguous
		WHERE [patient] AND M.rate < NEXT(M).rate
		GROUP-BY patient
		WITHIN 50 SLIDE 25`)
	rng := rand.New(rand.NewSource(11))
	var events []*event.Event
	tm := int64(0)
	for i := 0; i < 40; i++ {
		tm += int64(1 + rng.Intn(2))
		events = append(events, event.New("Measurement", tm).
			WithSym("patient", fmt.Sprintf("p%d", rng.Intn(3))).
			WithNum("rate", float64(50+rng.Intn(40))))
	}
	runAll(t, q, events, "q1-grouping")
}

// TestCrossCheckManySlots uses three alias-scoped equivalence
// predicates, exercising the engine's interned-vector binding keys
// (more than two slots cannot be packed into one word).
func TestCrossCheckManySlots(t *testing.T) {
	q := query.NewBuilder(pattern.Seq(
		pattern.Plus(pattern.Type("A")),
		pattern.Plus(pattern.Type("B")),
		pattern.Plus(pattern.Type("C")))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "B", Attr: "x"}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"}).
		WhereEquiv(predicate.Equivalence{Alias: "B", Attr: "c"}).
		WhereEquiv(predicate.Equivalence{Alias: "C", Attr: "k"}).
		GroupBy(query.GroupKey{Alias: "A", Attr: "c"}, query.GroupKey{Alias: "C", Attr: "k"}).
		Within(20, 10).
		MustBuild()
	rng := rand.New(rand.NewSource(3))
	events := randomStream(rng, []string{"A", "B", "C"}, 14, 0.1)
	runAll(t, q, events, "many-slots")
}

// TestCrossCheckNumericEquivalence partitions and binds on a numeric
// attribute, exercising the SymAttr numeric-fallback formatting in
// both the partition keys and the interned binding slots.
func TestCrossCheckNumericEquivalence(t *testing.T) {
	q := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "x"}).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"}).
		GroupBy(query.GroupKey{Attr: "x"}).
		Within(100, 100).
		MustBuild()
	rng := rand.New(rand.NewSource(5))
	events := randomStream(rng, []string{"A", "B"}, 16, 0.1)
	runAll(t, q, events, "numeric-equivalence")
}

// TestCrossCheckEmptyStringSlotValue pins the unbound semantics of
// empty-valued equivalence attributes: an empty slot value leaves the
// slot unbound (it cannot be distinguished from "never bound"), and an
// empty-valued event cannot extend a binding whose slot is non-empty.
// The interned binding keys must agree with every baseline here.
func TestCrossCheckEmptyStringSlotValue(t *testing.T) {
	q := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"}).
		Within(100, 100).
		MustBuild()
	events := []*event.Event{
		event.New("A", 1).WithSym("c", ""),
		event.New("A", 2).WithSym("c", "x"),
		event.New("A", 3).WithSym("c", ""),
		event.New("B", 4),
	}
	runAll(t, q, events, "empty-slot-value")
}

// TestBudgetDNF verifies the DNF mechanism trips for the exponential
// oracle on a hostile stream while COGRA sails through.
func TestBudgetDNF(t *testing.T) {
	q := figure2Query(query.Any)
	plan := core.MustPlan(q)
	var events []*event.Event
	for i := int64(1); i <= 40; i++ {
		typ := "A"
		if i%5 == 0 {
			typ = "B"
		}
		events = append(events, event.New(typ, i))
	}
	r := sase.New(plan)
	r.BudgetUnits = 10_000
	_, err := r.Run(events)
	var dnf baselines.ErrBudget
	if !errors.As(err, &dnf) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if _, err := baselines.NewCogra(plan).Run(cloneEvents(events)); err != nil {
		t.Fatalf("COGRA failed on the same stream: %v", err)
	}
}

// TestUnsupportedFeatureErrors pins Table 9's expressive-power matrix.
func TestUnsupportedFeatureErrors(t *testing.T) {
	next := core.MustPlan(figure2Query(query.Next))
	cont := core.MustPlan(figure2Query(query.Cont))
	if _, err := greta.New(next).Run(nil); !isUnsupported(err) {
		t.Errorf("GRETA under NEXT: %v", err)
	}
	if _, err := aseq.New(cont).Run(nil); !isUnsupported(err) {
		t.Errorf("A-Seq under CONT: %v", err)
	}
	if _, err := flinklite.New(next).Run(nil); !isUnsupported(err) {
		t.Errorf("Flink under NEXT: %v", err)
	}
	// A-Seq rejects adjacent predicates.
	qa := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "x", Op: predicate.Lt, Right: "A", RightAttr: "x"}).
		Within(10, 10).MustBuild()
	if _, err := aseq.New(core.MustPlan(qa)).Run(nil); !isUnsupported(err) {
		t.Errorf("A-Seq with adjacent predicates: %v", err)
	}
}

func isUnsupported(err error) bool {
	var u baselines.ErrUnsupported
	return errors.As(err, &u)
}

// TestTable3GrowthClasses verifies the trend-count growth classes of
// Table 3 empirically via the enumerator: exponential for Kleene
// patterns under ANY, polynomial under NEXT, and linear for event
// sequence (non-Kleene) patterns under NEXT/CONT.
func TestTable3GrowthClasses(t *testing.T) {
	mkEvents := func(n int) []*event.Event {
		var out []*event.Event
		for i := 1; i <= n; i++ {
			out = append(out, event.New("A", int64(i)))
		}
		return out
	}
	count := func(sem query.Semantics, n int) int {
		q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(sem).Within(1000, 1000).MustBuild()
		trends, err := sase.EnumerateWindow(core.MustPlan(q), mkEvents(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(trends)
	}
	// ANY over A+ on n events: every non-empty subset = 2^n - 1.
	for _, n := range []int{3, 6, 10} {
		if got, want := count(query.Any, n), 1<<n-1; got != want {
			t.Errorf("ANY A+ n=%d: %d trends, want %d", n, got, want)
		}
	}
	// NEXT over A+: all contiguous chain segments = n(n+1)/2.
	for _, n := range []int{3, 6, 10} {
		if got, want := count(query.Next, n), n*(n+1)/2; got != want {
			t.Errorf("NEXT A+ n=%d: %d trends, want %d", n, got, want)
		}
	}
	// CONT over A+ with no gaps equals NEXT here.
	if got, want := count(query.Cont, 6), 21; got != want {
		t.Errorf("CONT A+ n=6: %d trends, want %d", got, want)
	}
}

// TestCrossCheckHeavyTies stresses the stream-transaction discipline:
// half the events share time stamps with their neighbours, so wrong
// handling of simultaneous events (Definition 7 demands strictly
// increasing time) diverges immediately.
func TestCrossCheckHeavyTies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 20; iter++ {
		for _, sem := range []query.Semantics{query.Any, query.Next, query.Cont} {
			q := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
				Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Min, Alias: "A", Attr: "x"}).
				Semantics(sem).
				Within(8, 4).
				MustBuild()
			events := randomStream(rng, []string{"A", "B", "C"}, 12, 0.5)
			runAll(t, q, events, fmt.Sprintf("ties/iter%d/%s", iter, sem))
		}
	}
}

// TestCrossCheckGapWindows uses SLIDE > WITHIN, leaving times covered
// by no window.
func TestCrossCheckGapWindows(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(3, 7).
		MustBuild()
	rng := rand.New(rand.NewSource(123))
	events := randomStream(rng, []string{"A"}, 25, 0)
	runAll(t, q, events, "gap-windows")
}

// TestCrossCheckMultipleNegations combines two negated types in one
// pattern across all approaches that support negation.
func TestCrossCheckMultipleNegations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 15; iter++ {
		p := pattern.Seq(
			pattern.Plus(pattern.Type("A")),
			pattern.Not(pattern.Type("N")),
			pattern.Type("B"),
			pattern.Not(pattern.Type("M")),
			pattern.Type("C"))
		q := query.NewBuilder(p).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Any).
			Within(100, 100).
			MustBuild()
		events := randomStream(rng, []string{"A", "B", "C", "N", "M"}, 12, 0.1)
		runAll(t, q, events, fmt.Sprintf("multi-neg/iter%d", iter))
	}
}

// TestCrossCheckPaperQ3 runs the paper's full q3 — mixed granularity,
// alias-scoped equivalence bindings, three-key grouping, sliding
// window — against the oracle on a small market.
func TestCrossCheckPaperQ3(t *testing.T) {
	q := query.MustParse(`
		RETURN sector, A.company, B.company, AVG(B.price)
		PATTERN SEQ(Stock A+, Stock B+)
		SEMANTICS skip-till-any-match
		WHERE [A.company] AND [B.company] AND A.price > NEXT(A).price
		GROUP-BY sector, A.company, B.company
		WITHIN 8 SLIDE 4`)
	rng := rand.New(rand.NewSource(21))
	var events []*event.Event
	for i := 0; i < 18; i++ {
		c := rng.Intn(3)
		events = append(events, event.New("Stock", int64(i)).
			WithSym("company", fmt.Sprintf("c%d", c)).
			WithSym("sector", fmt.Sprintf("s%d", c%2)).
			WithNum("price", float64(10+rng.Intn(20))))
	}
	runAll(t, q, events, "paper-q3")
}

// TestCrossCheckPaperQ2 runs the paper's full q2 under
// skip-till-next-match on a generated rideshare stream.
func TestCrossCheckPaperQ2(t *testing.T) {
	q := query.MustParse(`
		RETURN driver, COUNT(*)
		PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
		SEMANTICS skip-till-next-match
		WHERE [driver] GROUP-BY driver
		WITHIN 40 SLIDE 20`)
	events := gen.Rideshare(gen.RideshareConfig{Seed: 17, Trips: 30, Drivers: 4, NoiseFraction: 0.4})
	runAll(t, q, events, "paper-q2")
}

// TestCrossCheckPaperQ1 runs the paper's full q1 (contiguous, local +
// equivalence + adjacent predicates) on generated activity data.
func TestCrossCheckPaperQ1(t *testing.T) {
	q := query.MustParse(`
		RETURN patient, MIN(M.rate), MAX(M.rate)
		PATTERN Measurement M+
		SEMANTICS contiguous
		WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
		GROUP-BY patient
		WITHIN 60 SLIDE 30`)
	events := gen.Activity(gen.ActivityConfig{Seed: 13, Events: 200, Persons: 3, RunLength: 5})
	runAll(t, q, events, "paper-q1")
}
