// Package greta reimplements the GRETA approach [32] the paper
// compares against: all matched events and their trend relationships
// are captured as a graph, and trend aggregates are computed online
// while the graph is built — no trend construction, but aggregates are
// maintained at the finest granularity, one per matched event. Time is
// quadratic in the number of events and the whole graph stays in
// memory, which is exactly what Figures 8 and 10 expose. GRETA
// supports only skip-till-any-match (Table 9).
package greta

import (
	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// Runner is the GRETA baseline.
type Runner struct {
	plan *core.Plan
	// BudgetUnits bounds the work (node-to-node compatibility checks);
	// 0 means unlimited.
	BudgetUnits int64
	// Acct receives logical memory accounting if non-nil.
	Acct *metrics.Accountant
}

// New builds a GRETA runner. The plan's semantics must be
// skip-till-any-match.
func New(plan *core.Plan) *Runner { return &Runner{plan: plan} }

// Name implements baselines.Runner.
func (r *Runner) Name() string { return "GRETA" }

// Capabilities implements baselines.CapableRunner: GRETA handles only
// skip-till-any-match, but within it supports adjacent predicates
// (edge filtering) and negation (Table 9).
func (r *Runner) Capabilities() baselines.Capabilities {
	return baselines.Capabilities{Approach: "GRETA", Any: true, Adjacent: true, Negation: true}
}

// gNode is one graph node: a matched event with the aggregate of all
// (partial) trends ending at it, per equivalence binding.
type gNode struct {
	ev      *event.Event
	alias   string
	binding baselines.Binding
	node    agg.Node
}

// Run implements baselines.Runner.
func (r *Runner) Run(events []*event.Event) ([]core.Result, error) {
	if err := r.Capabilities().Supports(r.plan); err != nil {
		return nil, err
	}
	budget := metrics.NewBudget(r.BudgetUnits)
	acct := r.Acct
	if acct == nil {
		acct = &metrics.Accountant{}
	}
	var out []core.Result
	subs := baselines.SplitSubstreams(r.plan, events)
	i := 0
	for i < len(subs) {
		j := i
		collector := baselines.NewGroupCollector(r.plan)
		// Like the streaming engine, the graphs of every sub-stream of
		// one window are live simultaneously until the window closes.
		var releases []func()
		releaseAll := func() {
			for _, rel := range releases {
				rel()
			}
		}
		for j < len(subs) && subs[j].Wid == subs[i].Wid {
			rel, err := r.evalSubstream(subs[j], collector, budget, acct)
			releases = append(releases, rel)
			if err != nil {
				releaseAll()
				return nil, err
			}
			j++
		}
		out = append(out, collector.Results(subs[i].Wid, subs[i].Start, subs[i].End)...)
		releaseAll()
		i = j
	}
	return out, nil
}

// evalSubstream builds the GRETA graph of one sub-stream and collects
// the end-type node aggregates. The returned release function frees
// the graph's accounted memory (called when the window closes).
func (r *Runner) evalSubstream(sub baselines.Substream, collector *baselines.GroupCollector, budget *metrics.Budget, acct *metrics.Accountant) (func(), error) {
	plan := r.plan
	specs := plan.Specs
	fires := baselines.NegFireTimes(plan, sub.Events)
	var graph []gNode
	var graphBytes int64
	release := func() { acct.Add(-graphBytes) }

	for _, e := range sub.Events {
		for _, alias := range baselines.CandidateAliases(plan, e) {
			binding0, ok := baselines.NewBinding(plan).Bind(plan, alias, e)
			if !ok {
				continue
			}
			// Aggregates of the trends e extends, per binding the
			// extension lands in. Every graph node of a predecessor
			// type is inspected — the event-granularity cost.
			type ext struct {
				binding baselines.Binding
				node    agg.Node
			}
			contrib := map[string]*ext{}
			if !budget.Spend(int64(len(graph))) {
				return release, baselines.ErrBudget{Units: budget.Used()}
			}
			for gi := range graph {
				g := &graph[gi]
				if g.ev.Time >= e.Time {
					break // graph is in arrival order
				}
				if !contains(plan.FSA.Pred[alias], g.alias) {
					continue
				}
				if !baselines.AdjacentOK(plan, fires, g.alias, g.ev, alias, e) {
					continue
				}
				nb, ok := g.binding.Bind(plan, alias, e)
				if !ok {
					continue
				}
				key := bindingKey(nb)
				dst, ok := contrib[key]
				if !ok {
					dst = &ext{binding: nb, node: specs.Zero()}
					contrib[key] = dst
				}
				specs.Merge(&dst.node, g.node)
			}
			startKey := bindingKey(binding0)
			if plan.FSA.IsStart(alias) {
				if _, ok := contrib[startKey]; !ok {
					contrib[startKey] = &ext{binding: binding0, node: specs.Zero()}
				}
			}
			for key, ex := range contrib {
				started := uint64(0)
				if plan.FSA.IsStart(alias) && key == startKey {
					started = 1
				}
				node := specs.Extend(ex.node, alias, e, started)
				gn := gNode{ev: e, alias: alias, binding: ex.binding, node: node}
				graph = append(graph, gn)
				grow := e.FootprintBytes() + specs.FootprintBytes() + 32
				acct.Add(grow)
				graphBytes += grow
			}
		}
	}
	for gi := range graph {
		g := &graph[gi]
		if plan.FSA.IsEnd(g.alias) {
			collector.Add(sub.PartKey, g.binding, g.node)
		}
	}
	return release, nil
}

func bindingKey(b baselines.Binding) string {
	out := ""
	for i, v := range b {
		if i > 0 {
			out += "\x00"
		}
		out += v
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
