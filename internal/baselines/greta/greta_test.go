package greta

import (
	"errors"
	"testing"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func figure2Plan() *core.Plan {
	q := query.NewBuilder(
		pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(100, 100).MustBuild()
	return core.MustPlan(q)
}

func figure2Events() []*event.Event {
	var out []*event.Event
	for _, s := range []struct {
		typ string
		t   int64
	}{{"A", 1}, {"B", 2}, {"A", 3}, {"A", 4}, {"C", 5}, {"B", 6}, {"A", 7}, {"B", 8}} {
		out = append(out, event.New(s.typ, s.t))
	}
	return out
}

func TestGretaFigure2Count(t *testing.T) {
	r := New(figure2Plan())
	results, err := r.Run(figure2Events())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Values[0].Count != 43 {
		t.Fatalf("results = %v", results)
	}
}

func TestGretaRejectsOtherSemantics(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Next).
		Within(10, 10).MustBuild()
	_, err := New(core.MustPlan(q)).Run(nil)
	var unsup baselines.ErrUnsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("err = %v", err)
	}
}

func TestGretaSupportsAdjacentPredicates(t *testing.T) {
	// Unlike A-Seq, GRETA evaluates predicates on adjacent events
	// (Table 9): A+ with increasing x over 1,3,2 -> 5 trends.
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "x", Op: predicate.Lt, Right: "A", RightAttr: "x"}).
		Within(10, 10).MustBuild()
	events := []*event.Event{
		event.New("A", 1).WithNum("x", 1),
		event.New("A", 2).WithNum("x", 3),
		event.New("A", 3).WithNum("x", 2),
	}
	results, err := New(core.MustPlan(q)).Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Values[0].Count != 5 {
		t.Errorf("count = %d, want 5", results[0].Values[0].Count)
	}
}

func TestGretaBudgetDNF(t *testing.T) {
	r := New(figure2Plan())
	r.BudgetUnits = 3
	_, err := r.Run(figure2Events())
	var dnf baselines.ErrBudget
	if !errors.As(err, &dnf) {
		t.Fatalf("err = %v", err)
	}
}

// TestGretaMemoryGrowsWithEvents pins GRETA's defining weakness: the
// graph keeps every matched event, so peak memory grows linearly in
// the stream (Figures 8b, 10b), unlike COGRA's constant state.
func TestGretaMemoryGrowsWithEvents(t *testing.T) {
	peak := func(n int) int64 {
		q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Any).
			Within(int64(n), int64(n)).MustBuild()
		var events []*event.Event
		for i := 0; i < n; i++ {
			events = append(events, event.New("A", int64(i)))
		}
		r := New(core.MustPlan(q))
		var acct metrics.Accountant
		r.Acct = &acct
		if _, err := r.Run(events); err != nil {
			t.Fatal(err)
		}
		return acct.Peak()
	}
	small, large := peak(100), peak(1000)
	if large < 8*small {
		t.Errorf("graph memory did not grow linearly: %d -> %d", small, large)
	}
}

func TestGretaReleasesMemory(t *testing.T) {
	r := New(figure2Plan())
	var acct metrics.Accountant
	r.Acct = &acct
	if _, err := r.Run(figure2Events()); err != nil {
		t.Fatal(err)
	}
	if acct.Current() != 0 {
		t.Errorf("%d bytes leaked", acct.Current())
	}
}
