// Package baselines provides the shared scaffolding for the four
// state-of-the-art approaches the paper compares COGRA against
// (Table 1): the two-step Kleene engine SASE [40], the online graph
// approach GRETA [32], the online fixed-length-sequence approach
// A-Seq [33], and an industrial-streaming-style engine modelled on
// Flink [2]. Each lives in its own sub-package and implements Runner.
//
// The scaffolding — window routing, stream partitioning, equivalence
// bindings, result assembly — is shared so that every approach
// evaluates exactly the same sub-streams and reports results in the
// same shape as the COGRA engine, making cross-validation exact. The
// aggregation algorithms themselves are implemented independently per
// package.
package baselines

import (
	"sort"
	"strings"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/query"
)

// Runner evaluates a compiled query over a complete in-order stream.
type Runner interface {
	// Name identifies the approach in experiment reports.
	Name() string
	// Run returns the aggregation results per window and group, in
	// the same order as core.Engine: by window id, then group key.
	// Approaches exceeding their work budget return ErrBudget.
	Run(events []*event.Event) ([]core.Result, error)
}

// ErrBudget marks a run that exceeded its work budget — the
// reproduction of the paper's "fails to terminate" entries.
type ErrBudget struct{ Units int64 }

func (e ErrBudget) Error() string { return "baseline exceeded its work budget (DNF)" }

// ErrUnsupported marks a query feature outside an approach's
// expressive power (Table 9), e.g. Kleene semantics other than
// skip-till-any-match for GRETA and A-Seq.
type ErrUnsupported struct {
	Approach string
	Feature  string
}

func (e ErrUnsupported) Error() string {
	return e.Approach + " does not support " + e.Feature + " (Table 9)"
}

// Capabilities is one row of the paper's expressive-power matrix
// (Table 9): which matching semantics, predicate classes and pattern
// operators an approach supports. Oracle selection — both the
// crosscheck suite and the fuzz runner — reads this table instead of
// probing Run for ErrUnsupported, so a runner accepting a query its
// row disclaims (or vice versa) is a detectable bug rather than a
// silent skip.
type Capabilities struct {
	// Approach is the name used in ErrUnsupported messages.
	Approach string
	// Any, Next, Cont report support for the three matching semantics.
	Any, Next, Cont bool
	// Adjacent reports support for predicates on adjacent trend events.
	Adjacent bool
	// Negation reports support for negated sub-patterns.
	Negation bool
}

// Supports checks the plan against the capability row, returning nil
// or the ErrUnsupported naming the first missing feature. Runners call
// it as their Run prologue, so the table and the runtime check can
// never drift apart.
func (c Capabilities) Supports(plan *core.Plan) error {
	sem := plan.Query.Semantics
	semOK := map[query.Semantics]bool{query.Any: c.Any, query.Next: c.Next, query.Cont: c.Cont}
	if !semOK[sem] {
		return ErrUnsupported{Approach: c.Approach, Feature: sem.String() + " semantics"}
	}
	if !c.Adjacent && plan.Where.HasAdjacent() {
		return ErrUnsupported{Approach: c.Approach, Feature: "predicates on adjacent events"}
	}
	if !c.Negation && len(plan.FSA.Negations) > 0 {
		return ErrUnsupported{Approach: c.Approach, Feature: "negation"}
	}
	return nil
}

// CapableRunner is a Runner that publishes its Table 9 row.
type CapableRunner interface {
	Runner
	Capabilities() Capabilities
}

// Substream is the unit every approach evaluates: the events of one
// stream partition within one window, in stream order.
type Substream struct {
	Wid        int64
	Start, End int64
	PartKey    string
	Events     []*event.Event
}

// SplitSubstreams routes a stream into per-window, per-partition
// sub-streams (§7), identically to the COGRA engine. Events without a
// partition key are dropped. IDs are assigned in arrival order when
// absent so tie-breaking matches the engine.
func SplitSubstreams(plan *core.Plan, events []*event.Event) []Substream {
	type key struct {
		wid  int64
		part string
	}
	buckets := map[key][]*event.Event{}
	spec := plan.Query.Window
	var seq int64
	for _, e := range events {
		seq++
		if e.ID == 0 {
			e.ID = seq
		}
		pk, ok := plan.StreamKeyOf(e)
		if !ok {
			continue
		}
		first, last := spec.WindowsOf(e.Time)
		for wid := first; wid <= last; wid++ {
			k := key{wid, pk}
			buckets[k] = append(buckets[k], e)
		}
	}
	out := make([]Substream, 0, len(buckets))
	for k, evs := range buckets {
		start, end := spec.Bounds(k.wid)
		out = append(out, Substream{Wid: k.wid, Start: start, End: end, PartKey: k.part, Events: evs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wid != out[j].Wid {
			return out[i].Wid < out[j].Wid
		}
		return out[i].PartKey < out[j].PartKey
	})
	return out
}

// Binding tracks equivalence-slot values while a baseline builds a
// trend; the zero-length binding is used when the plan has no slots.
type Binding []string

// NewBinding returns the all-unbound binding for a plan.
func NewBinding(plan *core.Plan) Binding { return make(Binding, len(plan.Slots)) }

// Clone copies the binding.
func (b Binding) Clone() Binding { return append(Binding(nil), b...) }

// Bind applies the equivalence slots an event matched under alias must
// satisfy. It returns the (possibly new) binding and whether the event
// is compatible; b itself is never mutated.
func (b Binding) Bind(plan *core.Plan, alias string, e *event.Event) (Binding, bool) {
	out := b
	copied := false
	for i, s := range plan.Slots {
		if s.Alias != alias {
			continue
		}
		v, ok := e.SymAttr(s.Attr)
		if !ok {
			return nil, false
		}
		switch out[i] {
		case v:
		case "":
			if !copied {
				out = b.Clone()
				copied = true
			}
			out[i] = v
		default:
			return nil, false
		}
	}
	return out, true
}

// GroupCollector merges per-trend (or per-binding) aggregates into
// GROUP-BY groups of one window and assembles core.Results.
type GroupCollector struct {
	plan   *core.Plan
	groups map[string]*groupAgg
}

type groupAgg struct {
	group []string
	node  agg.Node
}

// NewGroupCollector builds a collector for one window.
func NewGroupCollector(plan *core.Plan) *GroupCollector {
	return &GroupCollector{plan: plan, groups: map[string]*groupAgg{}}
}

// Add merges one aggregate node into the group derived from the
// partition key and binding.
func (g *GroupCollector) Add(partKey string, binding Binding, node agg.Node) {
	group := g.plan.GroupOf(partKey, binding)
	gk := strings.Join(group, "\x00")
	ga, ok := g.groups[gk]
	if !ok {
		ga = &groupAgg{group: group, node: g.plan.Specs.Zero()}
		g.groups[gk] = ga
	}
	g.plan.Specs.Merge(&ga.node, node)
}

// Results emits the window's results sorted by group key, matching
// the COGRA engine's order. Groups with zero finished trends are
// omitted.
func (g *GroupCollector) Results(wid, start, end int64) []core.Result {
	keys := make([]string, 0, len(g.groups))
	for k := range g.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]core.Result, 0, len(keys))
	for _, k := range keys {
		ga := g.groups[k]
		if ga.node.Count == 0 {
			continue
		}
		out = append(out, core.Result{
			Wid: wid, Start: start, End: end,
			Group:  ga.group,
			Values: g.plan.Specs.Report(ga.node),
		})
	}
	return out
}

// NegFireTimes precomputes, per negation constraint, the sorted times
// at which the negated type matches within a sub-stream.
func NegFireTimes(plan *core.Plan, events []*event.Event) [][]int64 {
	n := len(plan.FSA.Negations)
	if n == 0 {
		return nil
	}
	out := make([][]int64, n)
	for ci, nc := range plan.FSA.Negations {
		leaf := nc.Neg.(*pattern.TypeNode)
		for _, e := range events {
			if e.Type == leaf.EventType && plan.Where.EvalLocal(leaf.Alias, e) {
				ts := out[ci]
				if len(ts) == 0 || ts[len(ts)-1] != e.Time {
					out[ci] = append(ts, e.Time)
				}
			}
		}
	}
	return out
}

// BlockedBetween reports whether constraint ci fired strictly within
// (t1, t2), given NegFireTimes output.
func BlockedBetween(fires [][]int64, ci int, t1, t2 int64) bool {
	ts := fires[ci]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] > t1 })
	return i < len(ts) && ts[i] < t2
}

// NegGuardFor returns the negation constraint guarding the transition
// pred -> succ, if any. It recomputes the guard map from the FSA so
// baselines stay independent of core internals.
func NegGuardFor(plan *core.Plan, pred, succ string) (int, bool) {
	for ci, nc := range plan.FSA.Negations {
		for _, p := range nc.Pred {
			if p != pred {
				continue
			}
			for _, f := range nc.Follow {
				if f == succ {
					return ci, true
				}
			}
		}
	}
	return 0, false
}

// AdjacentOK checks Definition 7's predicate conditions between a
// concrete predecessor (alias a, event ep) and successor (alias b,
// event e): strict time order, the θ predicates, and negation guards.
func AdjacentOK(plan *core.Plan, fires [][]int64, a string, ep *event.Event, b string, e *event.Event) bool {
	if ep.Time >= e.Time {
		return false
	}
	if !plan.Where.EvalAdjacent(a, ep, b, e) {
		return false
	}
	if ci, guarded := NegGuardFor(plan, a, b); guarded && BlockedBetween(fires, ci, ep.Time, e.Time) {
		return false
	}
	return true
}

// CandidateAliases returns the pattern types an event can be matched
// under: its type's aliases filtered by local predicates.
func CandidateAliases(plan *core.Plan, e *event.Event) []string {
	var out []string
	for _, alias := range plan.FSA.AliasesForType(e.Type) {
		if plan.Where.EvalLocal(alias, e) {
			out = append(out, alias)
		}
	}
	return out
}

// SuccAliases returns the successor pattern types of an alias.
func SuccAliases(plan *core.Plan, alias string) []string { return plan.FSA.Succ[alias] }
