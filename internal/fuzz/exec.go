// The scenario executor: runs one Scenario under one execution Mode
// and returns per-subscription canonical results plus the invariant
// observations (watermark samples, final stats). Every metamorphic
// oracle is "Execute twice with one axis flipped, compare".
package fuzz

import (
	"bytes"
	"fmt"

	cogra "repro"
	"repro/internal/fuzz/diff"
	"repro/internal/server"
)

// Mode selects the execution strategy for one run of a scenario. The
// zero value of each field means "as the scenario's base config says"
// is NOT the convention here — a Mode is absolute: Execute uses
// exactly the mode's knobs, and BaseMode(sc) builds the reference.
type Mode struct {
	Workers   int
	Groups    int
	BatchSize int
	// Shuffled pushes the events in bounded-shuffle order (block and
	// seed from the scenario) on a WithSlack session sized to repair
	// the disorder exactly.
	Shuffled bool
	// Jittered pushes the events in ingest-jitter order (each event
	// delayed by an independent random amount up to Scenario.Jitter) on
	// a WithSlack session sized to repair the disorder exactly — the
	// genuinely-disordered sibling of Shuffled.
	Jittered bool
	// Shared enables runtime share/unshare decisions
	// (WithSharedAggregation).
	Shared bool
	// Evict enables binding-intern epoch eviction and catalog
	// compaction.
	Evict bool
	// SnapshotAt > 0 snapshots the session after pushing that many
	// events, restores it from the bytes, and finishes the run on the
	// restored session.
	SnapshotAt int
	// Server runs the scenario through an in-process cograd server
	// (one tenant, one shard) instead of an embedded session.
	Server bool
}

// BaseMode is the scenario's reference execution mode.
func BaseMode(sc *Scenario) Mode {
	return Mode{Workers: sc.Workers, Groups: sc.Groups, BatchSize: sc.BatchSize}
}

func (m Mode) String() string {
	s := fmt.Sprintf("workers=%d groups=%d batch=%d", m.Workers, m.Groups, m.BatchSize)
	if m.Shuffled {
		s += " shuffled"
	}
	if m.Jittered {
		s += " jittered"
	}
	if m.Shared {
		s += " shared"
	}
	if m.Evict {
		s += " evict"
	}
	if m.SnapshotAt > 0 {
		s += fmt.Sprintf(" snapshot@%d", m.SnapshotAt)
	}
	if m.Server {
		s += " server"
	}
	return s
}

// WatermarkSample is one Stats() observation taken mid-run.
type WatermarkSample struct {
	AfterEvents int
	Watermark   int64
	Valid       bool
}

// RunOutput is what one Execute produces: the results of every
// subscription (indexed like Scenario.Subs, in the canonical window/
// group order), their canonicalized rendering, and the invariant
// observations.
type RunOutput struct {
	// Results are compared structurally (diff.Compare) so float
	// aggregates get a relative tolerance; PerSub is the canonical
	// rendering used in mismatch reports.
	Results [][]cogra.Result
	PerSub  []string
	// Stats is the session's final Stats() after every subscription
	// has been unsubscribed but before Close; HasStats is false for
	// server runs (the server owns the session).
	Stats    cogra.SessionStats
	HasStats bool
	// Watermarks are sampled along the run, in push order.
	Watermarks []WatermarkSample
}

func (m Mode) options() []cogra.SessionOption {
	var opts []cogra.SessionOption
	if m.Workers > 0 {
		opts = append(opts, cogra.WithWorkers(m.Workers))
	}
	if m.Groups > 0 {
		opts = append(opts, cogra.WithExecutorGroups(m.Groups))
	}
	if m.Evict {
		opts = append(opts, cogra.WithInternEviction())
	}
	if m.Shared {
		opts = append(opts, cogra.WithSharedAggregation())
	}
	return opts
}

// Execute runs the scenario under the mode. It stamps canonical event
// IDs (1..n by slice position) before pushing so timestamp ties break
// identically in every mode and push order — the same convention the
// hand-written differential spine uses.
func Execute(sc *Scenario, m Mode) (*RunOutput, error) {
	n := len(sc.Events)
	for i, e := range sc.Events {
		e.ID = int64(i + 1)
	}
	if (m.Shuffled || m.Jittered) && sc.HasChurn() {
		return nil, fmt.Errorf("fuzz: disordered mode with churn: join watermarks would differ")
	}
	if m.Server {
		return executeServer(sc, m)
	}

	pushOrder := sc.Events
	opts := m.options()
	if m.Shuffled {
		shuffled, slack := diff.ShuffleBounded(sc.Events, sc.ShuffleBlock, sc.ShuffleSeed)
		pushOrder = shuffled
		if slack > 0 {
			opts = append(opts, cogra.WithSlack(slack))
		}
	} else if m.Jittered {
		jittered, slack := diff.JitterOrder(sc.Events, sc.Jitter, sc.ShuffleSeed)
		pushOrder = jittered
		if slack > 0 {
			opts = append(opts, cogra.WithSlack(slack))
		}
	}

	out := &RunOutput{PerSub: make([]string, len(sc.Subs))}
	results := make([][]cogra.Result, len(sc.Subs))
	sess := cogra.NewSession(opts...)
	live := make(map[int]*cogra.Subscription) // scenario sub index → live sub

	subscribeAt := func(pos int) error {
		for si := range sc.Subs {
			if sc.Subs[si].Join != pos {
				continue
			}
			q, err := cogra.Parse(sc.Subs[si].Src)
			if err != nil {
				return fmt.Errorf("fuzz: sub %d: %w", si, err)
			}
			sub, err := sess.Subscribe(q)
			if err != nil {
				return fmt.Errorf("fuzz: sub %d: %w", si, err)
			}
			live[si] = sub
		}
		return nil
	}
	// Mid-stream leavers detach via Unsubscribe (which flushes their
	// open windows); subscriptions resident at end of stream are
	// flushed by Close and collected via Drain — the solo-run
	// convention, and the only correct one under slack, where
	// Close also drains the reorder buffer first.
	unsubscribeAt := func(pos int) error {
		for si := range sc.Subs {
			if sc.Subs[si].Leave != pos || pos == n {
				continue
			}
			sub := live[si]
			if sub == nil {
				continue
			}
			results[si] = sub.Unsubscribe()
			if err := sub.Err(); err != nil {
				return fmt.Errorf("fuzz: sub %d unsubscribe: %w", si, err)
			}
			delete(live, si)
		}
		return nil
	}

	sample := n / 16
	if sample < 1 {
		sample = 1
	}
	takeSample := func(pushed int) error {
		st, err := sess.Stats()
		if err != nil {
			return fmt.Errorf("fuzz: stats after %d events: %w", pushed, err)
		}
		out.Watermarks = append(out.Watermarks,
			WatermarkSample{AfterEvents: pushed, Watermark: st.Watermark, Valid: st.WatermarkValid})
		return nil
	}

	pos := 0
	for pos < n {
		if err := unsubscribeAt(pos); err != nil {
			return nil, err
		}
		if err := subscribeAt(pos); err != nil {
			return nil, err
		}
		// Push up to the next membership boundary (or snapshot point)
		// in mode-sized chunks.
		next := n
		for si := range sc.Subs {
			if j := sc.Subs[si].Join; j > pos && j < next {
				next = j
			}
			if l := sc.Subs[si].Leave; l > pos && l < next {
				next = l
			}
		}
		if m.SnapshotAt > pos && m.SnapshotAt < next {
			next = m.SnapshotAt
		}
		for pos < next {
			end := next
			if m.BatchSize > 0 {
				if c := pos + m.BatchSize; c < end {
					end = c
				}
				if err := sess.PushBatch(pushOrder[pos:end]); err != nil {
					return nil, fmt.Errorf("fuzz: push [%d,%d): %w", pos, end, err)
				}
			} else {
				end = pos + 1
				if err := sess.Push(pushOrder[pos]); err != nil {
					return nil, fmt.Errorf("fuzz: push %d: %w", pos, err)
				}
			}
			if end/sample != pos/sample {
				if err := takeSample(end); err != nil {
					return nil, err
				}
			}
			pos = end
		}
		if m.SnapshotAt == pos && pos > 0 && pos < n {
			var buf bytes.Buffer
			if err := sess.Snapshot(&buf); err != nil {
				return nil, fmt.Errorf("fuzz: snapshot at %d: %w", pos, err)
			}
			restored, err := cogra.Restore(&buf, opts...)
			if err != nil {
				return nil, fmt.Errorf("fuzz: restore at %d: %w", pos, err)
			}
			// Re-home the live subscriptions onto the restored session;
			// ids survive the cut.
			byID := map[int]*cogra.Subscription{}
			for _, sub := range restored.Subscriptions() {
				byID[sub.ID()] = sub
			}
			for si, old := range live {
				ns := byID[old.ID()]
				if ns == nil {
					return nil, fmt.Errorf("fuzz: restore lost subscription %d (id %d)", si, old.ID())
				}
				live[si] = ns
			}
			if err := sess.Close(); err != nil {
				return nil, fmt.Errorf("fuzz: closing pre-snapshot session: %w", err)
			}
			sess = restored
		}
	}
	st, err := sess.Stats()
	if err != nil {
		return nil, fmt.Errorf("fuzz: final stats: %w", err)
	}
	out.Stats, out.HasStats = st, true
	out.Watermarks = append(out.Watermarks,
		WatermarkSample{AfterEvents: n, Watermark: st.Watermark, Valid: st.WatermarkValid})
	if err := sess.Close(); err != nil {
		return nil, fmt.Errorf("fuzz: close: %w", err)
	}
	for si, sub := range live {
		results[si] = sub.Drain()
		if err := sub.Err(); err != nil {
			return nil, fmt.Errorf("fuzz: sub %d drain: %w", si, err)
		}
	}
	for si := range sc.Subs {
		out.PerSub[si] = diff.Canon(results[si])
	}
	out.Results = results
	return out, nil
}

// executeServer replays the scenario against an in-process cograd
// server hosting one tenant on one shard, configured with the mode's
// session options — the "served == embedded" oracle body.
func executeServer(sc *Scenario, m Mode) (*RunOutput, error) {
	n := len(sc.Events)
	srv, err := server.New(server.Config{Shards: 1, SessionOptions: m.options()})
	if err != nil {
		return nil, fmt.Errorf("fuzz: server: %w", err)
	}
	defer srv.Drain()
	const tenant = "fuzz"

	out := &RunOutput{PerSub: make([]string, len(sc.Subs))}
	results := make([][]cogra.Result, len(sc.Subs))
	ids := make(map[int]int) // scenario sub index → server subscription id

	boundary := func(pos int) error {
		for si := range sc.Subs {
			if sc.Subs[si].Leave == pos && pos < n {
				id, ok := ids[si]
				if !ok {
					continue
				}
				res, werr := srv.Unsubscribe(tenant, id)
				if werr != nil {
					return fmt.Errorf("fuzz: server unsubscribe sub %d: %s", si, werr.Message)
				}
				results[si] = res
				delete(ids, si)
			}
		}
		for si := range sc.Subs {
			if sc.Subs[si].Join == pos {
				id, werr := srv.Subscribe(tenant, sc.Subs[si].Src, false)
				if werr != nil {
					return fmt.Errorf("fuzz: server subscribe sub %d: %s", si, werr.Message)
				}
				ids[si] = id
			}
		}
		return nil
	}

	pos := 0
	for pos < n {
		if err := boundary(pos); err != nil {
			return nil, err
		}
		next := n
		for si := range sc.Subs {
			if j := sc.Subs[si].Join; j > pos && j < next {
				next = j
			}
			if l := sc.Subs[si].Leave; l > pos && l < next {
				next = l
			}
		}
		for pos < next {
			end := next
			if m.BatchSize > 0 {
				if c := pos + m.BatchSize; c < end {
					end = c
				}
			} else {
				end = pos + 1
			}
			if _, werr := srv.Ingest(tenant, sc.Events[pos:end]); werr != nil {
				return nil, fmt.Errorf("fuzz: server ingest [%d,%d): %s", pos, end, werr.Message)
			}
			pos = end
		}
	}
	// End of stream: CloseTenant flushes the resident subscriptions'
	// open windows into their buffers (the embedded path's Close), then
	// Results drains them.
	if werr := srv.CloseTenant(tenant); werr != nil {
		return nil, fmt.Errorf("fuzz: server close tenant: %s", werr.Message)
	}
	for si := range sc.Subs {
		id, ok := ids[si]
		if !ok {
			continue
		}
		res, _, werr := srv.Results(tenant, id)
		if werr != nil {
			return nil, fmt.Errorf("fuzz: server drain sub %d: %s", si, werr.Message)
		}
		results[si] = res
	}
	for si := range sc.Subs {
		out.PerSub[si] = diff.Canon(results[si])
	}
	out.Results = results
	return out, nil
}
