// Package fuzz is the differential fuzzing subsystem behind
// cmd/cografuzz: a seeded scenario generator drawing random (schema,
// query fleet, event stream, churn schedule, session config) tuples
// from the paper's four workload templates, a metamorphic oracle
// suite that replays each scenario under flipped execution modes and
// against the independent baselines, a greedy delta-debugging
// shrinker, and a self-contained text repro codec.
//
// Everything here is deterministic in the seed: the same base seed
// produces the same scenarios, the same verdicts and byte-identical
// shrunk repro files.
package fuzz

import (
	"fmt"
	"math/rand"

	cogra "repro"
	"repro/internal/agg"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/query"
)

// SubSpec is one subscription of a scenario: the query (canonical
// text, as rendered by query.String) and its membership interval over
// the event stream — subscribed before pushing event index Join,
// unsubscribed before pushing event index Leave (Leave == len(Events)
// means it stays until end of stream).
type SubSpec struct {
	Src   string
	Join  int
	Leave int
}

// Scenario is one self-contained fuzz case. Events are in canonical
// (time-sorted, generation) order; the executor stamps IDs 1..n by
// slice position before every run so tie-breaks are identical across
// execution modes and push orders.
type Scenario struct {
	// Seed is the per-scenario seed the generator drew from (kept for
	// labelling; replay never re-derives anything from it).
	Seed uint64
	// Template names the workload template the scenario came from.
	Template string
	Subs     []SubSpec
	Events   []*cogra.Event

	// Base session configuration (the reference execution mode).
	Workers   int // 0 inline, else parallel worker count
	Groups    int // executor groups (requires Workers > 0); 0 single
	BatchSize int // PushBatch chunk size; 0 pushes per event

	// Knobs for the mode-flip oracles (unused by the base run).
	ShuffleBlock int   // block size for the bounded shuffle oracle
	ShuffleSeed  int64 // splitmix seed pinned in repro files
	SnapshotAt   int   // event index for the snapshot oracle; <=0 none
	Jitter       int64 // max ingest delay for the jitter/late oracles; <=0 none
}

// HasChurn reports whether any subscription joins or leaves
// mid-stream.
func (sc *Scenario) HasChurn() bool {
	for _, s := range sc.Subs {
		if s.Join != 0 || s.Leave != len(sc.Events) {
			return true
		}
	}
	return false
}

// Size is the shrinker's monotone cost metric: events dominate, then
// subscriptions, then query clauses and config knobs. Every accepted
// shrink step strictly decreases it.
func (sc *Scenario) Size() int {
	n := 100*len(sc.Events) + 10*len(sc.Subs)
	for _, s := range sc.Subs {
		n += len(s.Src)
		if s.Join != 0 || s.Leave != len(sc.Events) {
			n += 5
		}
	}
	if sc.Workers > 0 {
		n += 5
	}
	if sc.Groups > 0 {
		n += 5
	}
	if sc.BatchSize > 0 {
		n += 5
	}
	if sc.SnapshotAt > 0 {
		n += 5
	}
	if sc.Jitter > 0 {
		n += 5
	}
	return n
}

// Clone returns a copy sharing the (immutable after generation)
// events; the Subs slice and scalar knobs are independent.
func (sc *Scenario) Clone() *Scenario {
	c := *sc
	c.Subs = append([]SubSpec(nil), sc.Subs...)
	c.Events = append([]*cogra.Event(nil), sc.Events...)
	return &c
}

func (sc *Scenario) String() string {
	return fmt.Sprintf("scenario(seed=%#x %s: %d events, %d subs, workers=%d groups=%d batch=%d)",
		sc.Seed, sc.Template, len(sc.Events), len(sc.Subs), sc.Workers, sc.Groups, sc.BatchSize)
}

// template couples a stream generator with the query generator's view
// of its schema.
type template struct {
	name   string
	schema gen.QuerySchema
	stream func(seed int64, n int) []*cogra.Event
}

func templates() []template {
	return []template{
		{
			name: "stock",
			schema: gen.QuerySchema{
				Types: []string{"Stock"},
				Keys:  []string{"company", "sector"},
				Nums: map[string][]gen.NumAttr{
					"Stock": {{Name: "price", Lo: 1, Hi: 150}, {Name: "volume", Lo: 100, Hi: 1000}, {Name: "u", Lo: 0, Hi: 1}},
				},
				Syms: map[string][]gen.SymAttr{
					"Stock": {{Name: "sector", Values: []string{"sec0", "sec1", "sec2", "sec3"}}},
				},
				Windows: [][2]int64{{8, 8}, {16, 8}, {12, 4}, {10, 15}, {32, 16}},
			},
			stream: func(seed int64, n int) []*cogra.Event {
				return gen.Stock(gen.StockConfig{Seed: seed, Events: n, Companies: 5})
			},
		},
		{
			name: "activity",
			schema: gen.QuerySchema{
				Types: []string{"Measurement"},
				Keys:  []string{"patient"},
				Nums: map[string][]gen.NumAttr{
					"Measurement": {{Name: "rate", Lo: 40, Hi: 200}},
				},
				Syms: map[string][]gen.SymAttr{
					"Measurement": {{Name: "activity", Values: []string{"passive", "act1", "act2"}}},
				},
				Windows: [][2]int64{{10, 10}, {20, 10}, {8, 4}, {12, 18}},
			},
			stream: func(seed int64, n int) []*cogra.Event {
				return gen.Activity(gen.ActivityConfig{Seed: seed, Events: n, Persons: 4})
			},
		},
		{
			name: "transit",
			schema: gen.QuerySchema{
				Types: []string{"Board", "Ride"},
				Keys:  []string{"passenger", "station"},
				Nums: map[string][]gen.NumAttr{
					"Board": {{Name: "wait", Lo: 0, Hi: 600}},
					"Ride":  {{Name: "wait", Lo: 0, Hi: 600}},
				},
				Windows: [][2]int64{{10, 10}, {16, 8}, {8, 12}, {24, 6}},
			},
			stream: func(seed int64, n int) []*cogra.Event {
				return gen.Transit(gen.TransitConfig{Seed: seed, Events: n, Passengers: 5, Stations: 6})
			},
		},
		{
			name: "rideshare",
			schema: gen.QuerySchema{
				Types:   []string{"Accept", "Call", "Cancel", "Finish", "InTransit", "DropOff"},
				Keys:    []string{"driver"},
				Nums:    map[string][]gen.NumAttr{},
				Syms:    map[string][]gen.SymAttr{},
				Windows: [][2]int64{{12, 12}, {20, 10}, {16, 24}},
			},
			stream: func(seed int64, n int) []*cogra.Event {
				out := gen.Rideshare(gen.RideshareConfig{Seed: seed, Trips: n/5 + 1, Drivers: 4})
				if len(out) > n {
					out = out[:n]
				}
				return out
			},
		},
	}
}

// returnVariant derives a sharing-equivalent twin of src: the same
// query except for its RETURN aggregates, so the twin's plan carries
// the same sharing fingerprint without being the same query. Falls
// back to src itself (an exact duplicate — trivially sharable) when no
// valid variant exists.
func returnVariant(src string) string {
	q, err := query.Parse(src)
	if err != nil {
		return src
	}
	star := agg.Spec{Func: agg.CountStar}
	switch {
	case len(q.Returns) > 1:
		q.Returns = q.Returns[:1]
	case q.Returns[0] != star:
		q.Returns = agg.Specs{star}
	default:
		// COUNT(*) alone: add a per-alias event count. Negated aliases
		// cannot be aggregated, so probe until one validates.
		for _, a := range pattern.Aliases(q.Pattern) {
			q.Returns = agg.Specs{star, {Func: agg.CountType, Alias: a}}
			if q.Validate() == nil {
				return q.String()
			}
		}
		return src
	}
	if q.Validate() != nil {
		return src
	}
	return q.String()
}

// ScenarioSeed derives scenario index i's seed from the base seed via
// one splitmix64 step, so neighbouring indices get decorrelated
// streams and any scenario can be regenerated from (baseSeed, i)
// alone.
func ScenarioSeed(baseSeed uint64, i int) uint64 {
	s := splitMix{state: baseSeed + uint64(i)*0x9E3779B97F4A7C15}
	return s.next()
}

// splitMix is splitmix64 (same constants as internal/fuzz/diff): the
// generator must not depend on math/rand staying stable across Go
// releases for anything pinned in repro files. Scenario *drawing* may
// still use math/rand — repro files store the drawn scenario, never
// the draw.
type splitMix struct{ state uint64 }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Generate draws scenario i of the base seed's deterministic sequence.
// About a quarter of scenarios are "small" (≤16 events, no churn) so
// the exponential-cost baseline oracle gets regular coverage; the rest
// are session-scale (96–256 events) with churn, worker, group, batch,
// shuffle and snapshot knobs drawn independently.
func Generate(baseSeed uint64, i int) (*Scenario, error) {
	seed := ScenarioSeed(baseSeed, i)
	rng := rand.New(rand.NewSource(int64(seed)))
	tpls := templates()
	tpl := tpls[rng.Intn(len(tpls))]

	small := rng.Intn(4) == 0
	var n int
	if small {
		n = 8 + rng.Intn(9) // 8..16: the two-step oracle stays sane
	} else {
		n = 96 + rng.Intn(161) // 96..256
	}
	events := tpl.stream(rng.Int63(), n)
	n = len(events) // rideshare may come up short on tiny n
	if rng.Intn(2) == 0 {
		// Reshape timestamps into equal-time runs and window-straddling
		// jumps — the batch-kernel and slack stress shapes.
		w := tpl.schema.Windows[0][0]
		gen.Retime(rng, events, 0.25, 0.08, w)
	}

	sc := &Scenario{Seed: seed, Template: tpl.name, Events: events, SnapshotAt: -1}

	nsubs := 1 + rng.Intn(3)
	if small {
		nsubs = 1 + rng.Intn(2)
	}
	for s := 0; s < nsubs; s++ {
		q, err := gen.RandomQuery(rng, tpl.schema)
		if err != nil {
			return nil, fmt.Errorf("scenario %d (seed %#x): %w", i, seed, err)
		}
		sub := SubSpec{Src: q.String(), Join: 0, Leave: n}
		sc.Subs = append(sc.Subs, sub)
	}
	if !small && nsubs > 1 && rng.Intn(2) == 0 {
		// Churn the fleet: the first subscription always stays resident
		// (so every mode has a full-stream observer); later ones get
		// random membership intervals.
		churn := gen.RandomChurn(rng, nsubs-1, n)
		for s := 1; s < nsubs; s++ {
			sc.Subs[s].Join = churn[s-1].Join
			sc.Subs[s].Leave = churn[s-1].Leave
		}
	}
	if rng.Intn(2) == 0 {
		// Sharing-equivalent twin: same query as subscription 0 except
		// for an extra RETURN aggregate, so shared-aggregation scenarios
		// regularly have a fleet the runtime can actually share (random
		// query pairs almost never collide on the sharing fingerprint).
		twin := returnVariant(sc.Subs[0].Src)
		join, leave := 0, n
		if !small && rng.Intn(2) == 0 {
			// Sometimes mid-stream, so share formation under a running
			// host gets exercised too.
			join = rng.Intn(n / 2)
		}
		sc.Subs = append(sc.Subs, SubSpec{Src: twin, Join: join, Leave: leave})
	}

	if !small {
		if rng.Intn(2) == 0 {
			sc.Workers = 4
			if rng.Intn(3) == 0 {
				sc.Groups = 3
			}
		}
		if rng.Intn(2) == 0 {
			sc.BatchSize = []int{64, 256}[rng.Intn(2)]
		}
		if rng.Intn(2) == 0 {
			sc.SnapshotAt = n/3 + rng.Intn(n/3+1)
		}
	}
	sc.ShuffleBlock = []int{4, 8, 16}[rng.Intn(3)]
	sc.ShuffleSeed = int64(seed>>1) + 1
	// Ingest jitter on the window scale: small enough that most events
	// stay repairable, large enough that a half-slack session drops
	// stragglers (the late-policy oracle's fodder).
	w := tpl.schema.Windows[0][0]
	sc.Jitter = 1 + int64(rng.Intn(int(w)))
	return sc, nil
}
