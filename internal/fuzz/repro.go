// The repro codec: a failing (scenario, oracle) pair serialized as a
// self-contained text file that `cografuzz -repro <file>` and the
// committed TestFuzzRepros regression suite both replay. The format is
// line-oriented and fully deterministic — encoding the same scenario
// always produces the same bytes, which is what lets the shrinker's
// output be pinned in golden tests.
//
//	cografuzz-repro v1
//	# free-form comment lines (the mismatch at capture time)
//	oracle slack
//	template transit
//	seed 0x1f2e3d4c
//	config workers=4 groups=0 batch=64 shuffleblock=8 shuffleseed=97 snapat=-1
//	sub join=0 leave=128
//		RETURN COUNT(*)
//		PATTERN SEQ(Board+, Ride)
//		SEMANTICS skip-till-any-match
//		WITHIN 10 SLIDE 10
//	end
//	events 128
//	time,type,passenger,station,wait:num
//	...one CSV row per event...
//
// Query lines are tab-indented inside sub/end blocks (the canonical
// multi-line rendering of query.String). The events section reuses the
// repository's CSV event codec and must come last.
package fuzz

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	cogra "repro"
)

const reproMagic = "cografuzz-repro v1"

// Repro couples a scenario with the oracle it fails and the mismatch
// observed at capture time.
type Repro struct {
	Oracle   string
	Mismatch string // informational; replay recomputes it
	Scenario *Scenario
}

// WriteRepro serializes the repro. The mismatch is embedded as
// comment lines so a committed file documents what went wrong without
// affecting replay.
func WriteRepro(w io.Writer, r *Repro) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, reproMagic)
	for _, line := range strings.Split(strings.TrimRight(r.Mismatch, "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(bw, "# %s\n", line)
		}
	}
	fmt.Fprintf(bw, "oracle %s\n", r.Oracle)
	sc := r.Scenario
	if sc.Template != "" {
		fmt.Fprintf(bw, "template %s\n", sc.Template)
	}
	fmt.Fprintf(bw, "seed %#x\n", sc.Seed)
	fmt.Fprintf(bw, "config workers=%d groups=%d batch=%d shuffleblock=%d shuffleseed=%d snapat=%d jitter=%d\n",
		sc.Workers, sc.Groups, sc.BatchSize, sc.ShuffleBlock, sc.ShuffleSeed, sc.SnapshotAt, sc.Jitter)
	for _, sub := range sc.Subs {
		fmt.Fprintf(bw, "sub join=%d leave=%d\n", sub.Join, sub.Leave)
		for _, line := range strings.Split(strings.TrimRight(sub.Src, "\n"), "\n") {
			fmt.Fprintf(bw, "\t%s\n", line)
		}
		fmt.Fprintln(bw, "end")
	}
	fmt.Fprintf(bw, "events %d\n", len(sc.Events))
	if err := bw.Flush(); err != nil {
		return err
	}
	return cogra.WriteCSV(w, sc.Events)
}

// ReadRepro parses a repro file back into a replayable form.
func ReadRepro(r io.Reader) (*Repro, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("repro: missing header: %w", err)
	}
	if strings.TrimRight(line, "\n") != reproMagic {
		return nil, fmt.Errorf("repro: bad magic %q (want %q)", strings.TrimSpace(line), reproMagic)
	}
	out := &Repro{Scenario: &Scenario{SnapshotAt: -1}}
	sc := out.Scenario
	var wantEvents = -1
	for {
		line, err = br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("repro: truncated before events section: %w", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" || strings.HasPrefix(line, "# "), line == "#":
			// comments carry the captured mismatch; replay ignores them
		case strings.HasPrefix(line, "oracle "):
			out.Oracle = strings.TrimPrefix(line, "oracle ")
		case strings.HasPrefix(line, "template "):
			sc.Template = strings.TrimPrefix(line, "template ")
		case strings.HasPrefix(line, "seed "):
			v, perr := strconv.ParseUint(strings.TrimPrefix(line, "seed "), 0, 64)
			if perr != nil {
				return nil, fmt.Errorf("repro: bad seed line %q: %v", line, perr)
			}
			sc.Seed = v
		case strings.HasPrefix(line, "config "):
			if err := parseConfig(strings.TrimPrefix(line, "config "), sc); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "sub "):
			sub := SubSpec{}
			for _, f := range strings.Fields(strings.TrimPrefix(line, "sub ")) {
				k, v, ok := strings.Cut(f, "=")
				n, perr := strconv.Atoi(v)
				if !ok || perr != nil {
					return nil, fmt.Errorf("repro: bad sub field %q", f)
				}
				switch k {
				case "join":
					sub.Join = n
				case "leave":
					sub.Leave = n
				default:
					return nil, fmt.Errorf("repro: unknown sub field %q", k)
				}
			}
			var q []string
			for {
				line, err = br.ReadString('\n')
				if err != nil {
					return nil, fmt.Errorf("repro: unterminated sub block: %w", err)
				}
				line = strings.TrimRight(line, "\n")
				if line == "end" {
					break
				}
				if !strings.HasPrefix(line, "\t") {
					return nil, fmt.Errorf("repro: query lines must be tab-indented, got %q", line)
				}
				q = append(q, strings.TrimPrefix(line, "\t"))
			}
			sub.Src = strings.Join(q, "\n")
			sc.Subs = append(sc.Subs, sub)
		case strings.HasPrefix(line, "events "):
			n, perr := strconv.Atoi(strings.TrimPrefix(line, "events "))
			if perr != nil {
				return nil, fmt.Errorf("repro: bad events line %q: %v", line, perr)
			}
			wantEvents = n
		default:
			return nil, fmt.Errorf("repro: unknown directive %q", line)
		}
		if wantEvents >= 0 {
			break
		}
	}
	events, err := cogra.ReadCSV(br)
	if err != nil {
		return nil, fmt.Errorf("repro: events section: %w", err)
	}
	if len(events) != wantEvents {
		return nil, fmt.Errorf("repro: %d events in CSV section, header says %d", len(events), wantEvents)
	}
	sc.Events = events
	if out.Oracle == "" {
		return nil, fmt.Errorf("repro: missing oracle line")
	}
	if len(sc.Subs) == 0 {
		return nil, fmt.Errorf("repro: no subscriptions")
	}
	if err := validate(sc); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return out, nil
}

func parseConfig(s string, sc *Scenario) error {
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("repro: bad config field %q", f)
		}
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return fmt.Errorf("repro: bad config field %q: %v", f, perr)
		}
		switch k {
		case "workers":
			sc.Workers = int(n)
		case "groups":
			sc.Groups = int(n)
		case "batch":
			sc.BatchSize = int(n)
		case "shuffleblock":
			sc.ShuffleBlock = int(n)
		case "shuffleseed":
			sc.ShuffleSeed = n
		case "snapat":
			sc.SnapshotAt = int(n)
		case "jitter":
			// Absent in v1 files written before the jitter oracles
			// existed; they replay with jitter 0 (those oracles skip).
			sc.Jitter = n
		default:
			return fmt.Errorf("repro: unknown config field %q", k)
		}
	}
	return nil
}

// validate checks the structural invariants replay and the shrinker
// both rely on: parseable queries, membership intervals inside the
// stream, and a compilable plan per query.
func validate(sc *Scenario) error {
	n := len(sc.Events)
	for si, sub := range sc.Subs {
		if sub.Join < 0 || sub.Join >= n && n > 0 || sub.Leave <= sub.Join || sub.Leave > n {
			return fmt.Errorf("sub %d: bad membership interval [%d,%d) over %d events", si, sub.Join, sub.Leave, n)
		}
		q, err := cogra.Parse(sub.Src)
		if err != nil {
			return fmt.Errorf("sub %d: %w", si, err)
		}
		if _, err := cogra.Compile(q); err != nil {
			return fmt.Errorf("sub %d: %w", si, err)
		}
	}
	return nil
}
