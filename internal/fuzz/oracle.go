// The metamorphic oracle suite. Each oracle checks one correctness
// property of a scenario: a self-differential (base execution mode vs
// the same scenario with exactly one mode axis flipped), a baseline
// differential (COGRA vs the independent reference implementations
// where the query's shape permits), or an invariant over one run's
// observations. Oracles are pure: Check re-executes the scenario, so
// the shrinker can re-ask "does this smaller scenario still fail?".
package fuzz

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	cogra "repro"
	"repro/internal/baselines"
	"repro/internal/baselines/aseq"
	"repro/internal/baselines/flinklite"
	"repro/internal/baselines/greta"
	"repro/internal/baselines/sase"
	"repro/internal/core"
	"repro/internal/fuzz/diff"
	"repro/internal/stream"
)

// Oracle is one pluggable correctness check.
type Oracle struct {
	// Name identifies the oracle in reports and repro files.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Check runs the oracle. It returns "" when the scenario passes or
	// the oracle does not apply to it (an inapplicable scenario cannot
	// fail — this is what keeps the shrinker from wandering out of the
	// oracle's domain), and a mismatch description otherwise. The
	// error return is for scenario execution breaking outright, which
	// is itself reported as a failure by the runner.
	Check func(sc *Scenario) (string, error)
}

// Oracles returns the full suite, in deterministic order.
func Oracles() []Oracle {
	return []Oracle{
		{
			Name: "batch",
			Doc:  "batch kernels == per-event execution",
			Check: func(sc *Scenario) (string, error) {
				flipped := BaseMode(sc)
				if flipped.BatchSize > 0 {
					flipped.BatchSize = 0
				} else {
					flipped.BatchSize = 256
				}
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "workers",
			Doc:  "4-worker parallel session == inline",
			Check: func(sc *Scenario) (string, error) {
				flipped := BaseMode(sc)
				if flipped.Workers > 0 {
					flipped.Workers, flipped.Groups = 0, 0
				} else {
					flipped.Workers = 4
				}
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "groups",
			Doc:  "k executor groups == single group",
			Check: func(sc *Scenario) (string, error) {
				if sc.Workers == 0 {
					return "", nil // groups require a parallel session
				}
				flipped := BaseMode(sc)
				if flipped.Groups > 0 {
					flipped.Groups = 0
				} else {
					flipped.Groups = 3
				}
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "slack",
			Doc:  "shuffled-within-slack == sorted",
			Check: func(sc *Scenario) (string, error) {
				if sc.HasChurn() {
					return "", nil // join watermarks differ under reorder buffering
				}
				flipped := BaseMode(sc)
				flipped.Shuffled = true
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "jitter",
			Doc:  "ingest-jittered-within-slack == sorted",
			Check: func(sc *Scenario) (string, error) {
				if sc.HasChurn() || sc.Jitter <= 0 {
					return "", nil // join watermarks differ under reorder buffering
				}
				flipped := BaseMode(sc)
				flipped.Jittered = true
				return selfDiff(sc, flipped)
			},
		},
		{
			Name:  "late",
			Doc:   "under-slacked session == solo run over the predicted survivors",
			Check: checkLate,
		},
		{
			Name: "shared",
			Doc:  "shared aggregation == per-query execution",
			Check: func(sc *Scenario) (string, error) {
				flipped := BaseMode(sc)
				flipped.Shared = true
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "evict",
			Doc:  "intern eviction + catalog compaction == unbounded",
			Check: func(sc *Scenario) (string, error) {
				flipped := BaseMode(sc)
				flipped.Evict = true
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "snapshot",
			Doc:  "snapshot-at-k + restore + suffix == undisturbed",
			Check: func(sc *Scenario) (string, error) {
				if sc.SnapshotAt <= 0 || sc.SnapshotAt >= len(sc.Events) {
					return "", nil
				}
				flipped := BaseMode(sc)
				flipped.SnapshotAt = sc.SnapshotAt
				return selfDiff(sc, flipped)
			},
		},
		{
			Name: "server",
			Doc:  "cograd-served tenant == embedded session",
			Check: func(sc *Scenario) (string, error) {
				flipped := BaseMode(sc)
				flipped.Server = true
				return selfDiff(sc, flipped)
			},
		},
		{
			Name:  "baselines",
			Doc:   "COGRA == SASE/GRETA/A-Seq/Flink solo references (small scenarios)",
			Check: checkBaselines,
		},
		{
			Name: "watermark",
			Doc:  "Stats().Watermark is monotone along the run",
			Check: func(sc *Scenario) (string, error) {
				out, err := Execute(sc, BaseMode(sc))
				if err != nil {
					return "", err
				}
				var last WatermarkSample
				haveLast := false
				for _, s := range out.Watermarks {
					if haveLast && last.Valid && (!s.Valid || s.Watermark < last.Watermark) {
						return fmt.Sprintf("watermark regressed: %d after %d events, then %d (valid=%v) after %d events",
							last.Watermark, last.AfterEvents, s.Watermark, s.Valid, s.AfterEvents), nil
					}
					if s.Valid {
						last, haveLast = s, true
					}
				}
				return "", nil
			},
		},
		{
			Name: "stats",
			Doc:  "Stats() accounting: Events == pushed, Queries == resident fleet",
			Check: func(sc *Scenario) (string, error) {
				out, err := Execute(sc, BaseMode(sc))
				if err != nil {
					return "", err
				}
				if !out.HasStats {
					return "", nil
				}
				n := len(sc.Events)
				if out.Stats.Events != int64(n) {
					return fmt.Sprintf("Stats().Events = %d, want %d (events pushed)", out.Stats.Events, n), nil
				}
				resident := 0
				for _, s := range sc.Subs {
					if s.Leave == n {
						resident++
					}
				}
				if out.Stats.Queries != resident {
					return fmt.Sprintf("Stats().Queries = %d, want %d (resident subscriptions)", out.Stats.Queries, resident), nil
				}
				if resident == 0 && out.Stats.BindingInternBytes != 0 {
					return fmt.Sprintf("Stats().BindingInternBytes = %d after every subscription unsubscribed, want 0",
						out.Stats.BindingInternBytes), nil
				}
				return "", nil
			},
		},
	}
}

// OracleByName finds one oracle; nil when unknown.
func OracleByName(name string) *Oracle {
	for _, o := range Oracles() {
		if o.Name == name {
			oc := o
			return &oc
		}
	}
	return nil
}

// floatTol is the relative tolerance on SUM/AVG in every differential
// comparison: a solo engine folds a window's partition classes into
// the aggregate in sorted key order while parallel workers (and the
// independent baselines) accumulate in their own orders, so the last
// ULP legitimately differs. Counts, windows and groups always compare
// exactly.
const floatTol = 1e-9

// selfDiff runs the scenario under its base mode and under the
// flipped mode and compares every subscription's results.
func selfDiff(sc *Scenario, flipped Mode) (string, error) {
	base, err := Execute(sc, BaseMode(sc))
	if err != nil {
		return "", err
	}
	got, err := Execute(sc, flipped)
	if err != nil {
		return "", fmt.Errorf("flipped mode (%s): %w", flipped, err)
	}
	for si := range sc.Subs {
		if d := diff.Compare(got.Results[si], base.Results[si], floatTol); d != "" {
			return fmt.Sprintf("sub %d: %s != base (%s)\n%s", si, flipped, BaseMode(sc), d), nil
		}
	}
	return "", nil
}

// checkLate exercises the DropLate path for real: the events are
// pushed in ingest-jitter order into a session whose slack is HALF of
// what the disorder needs, so the worst stragglers are genuinely
// dropped. The reference predicts the exact survivor set with a model
// stream.Reorderer at the same slack (the drop boundary is a pure
// function of the arrival sequence) and replays the survivors, in
// emission order, into an ordinary in-order session. Results must
// match and Stats().LateDropped must equal the predicted drop count.
func checkLate(sc *Scenario) (string, error) {
	if sc.HasChurn() || sc.Jitter <= 0 {
		return "", nil
	}
	for i, e := range sc.Events {
		e.ID = int64(i + 1)
	}
	jittered, slack := diff.JitterOrder(sc.Events, sc.Jitter, sc.ShuffleSeed)
	if slack < 2 {
		return "", nil // halving it would not drop anything
	}
	short := slack / 2
	model := stream.NewReorderer(short)
	var survivors []*cogra.Event
	for _, e := range jittered {
		out, err := model.Offer(e)
		if err != nil {
			return "", fmt.Errorf("late: model reorderer: %w", err)
		}
		survivors = append(survivors, out...)
	}
	survivors = append(survivors, model.Flush()...)
	dropped := int64(len(jittered) - len(survivors))
	if dropped == 0 {
		return "", nil
	}
	got, gotStats, err := runResident(sc, jittered, cogra.WithSlack(short))
	if err != nil {
		return "", fmt.Errorf("late: under-slacked run: %w", err)
	}
	want, _, err := runResident(sc, survivors)
	if err != nil {
		return "", fmt.Errorf("late: survivor replay: %w", err)
	}
	if gotStats.LateDropped != dropped {
		return fmt.Sprintf("Stats().LateDropped = %d, want %d (predicted by a slack-%d reorderer over the jittered stream)",
			gotStats.LateDropped, dropped, short), nil
	}
	for si := range sc.Subs {
		if d := diff.Compare(got[si], want[si], floatTol); d != "" {
			return fmt.Sprintf("sub %d: slack-%d DropLate run != survivor replay\n%s", si, short, d), nil
		}
	}
	return "", nil
}

// runResident runs the whole fleet resident over one event sequence on
// an inline session — the churn-free executor the late oracle's two
// sides share.
func runResident(sc *Scenario, events []*cogra.Event, opts ...cogra.SessionOption) ([][]cogra.Result, cogra.SessionStats, error) {
	sess := cogra.NewSession(opts...)
	subs := make([]*cogra.Subscription, len(sc.Subs))
	for si := range sc.Subs {
		q, err := cogra.Parse(sc.Subs[si].Src)
		if err != nil {
			return nil, cogra.SessionStats{}, fmt.Errorf("sub %d: %w", si, err)
		}
		if subs[si], err = sess.Subscribe(q); err != nil {
			return nil, cogra.SessionStats{}, fmt.Errorf("sub %d: %w", si, err)
		}
	}
	if err := sess.PushBatch(events); err != nil {
		return nil, cogra.SessionStats{}, err
	}
	st, err := sess.Stats()
	if err != nil {
		return nil, cogra.SessionStats{}, err
	}
	if err := sess.Close(); err != nil {
		return nil, cogra.SessionStats{}, err
	}
	results := make([][]cogra.Result, len(sc.Subs))
	for si, sub := range subs {
		results[si] = sub.Drain()
		if err := sub.Err(); err != nil {
			return nil, cogra.SessionStats{}, fmt.Errorf("sub %d drain: %w", si, err)
		}
	}
	return results, st, nil
}

// baselineBudget bounds each reference run; exceeding it skips the
// pair (the paper's DNF), it does not fail the oracle.
const baselineBudget = 20_000_000

// checkBaselines compares each query's full-stream solo results
// against every baseline whose Table 9 capability row covers the
// query. Applies only to small churn-free scenarios — the two-step
// oracle materialises every trend.
func checkBaselines(sc *Scenario) (string, error) {
	if len(sc.Events) > 20 || sc.HasChurn() {
		return "", nil
	}
	for i, e := range sc.Events {
		e.ID = int64(i + 1)
	}
	for si, sub := range sc.Subs {
		q, err := cogra.Parse(sub.Src)
		if err != nil {
			return "", fmt.Errorf("sub %d: %w", si, err)
		}
		plan, err := core.NewPlan(q)
		if err != nil {
			return "", fmt.Errorf("sub %d: plan: %w", si, err)
		}
		ref, err := baselines.NewCogra(plan).Run(sc.Events)
		if err != nil {
			return "", fmt.Errorf("sub %d: COGRA solo: %w", si, err)
		}
		for _, r := range capableRunners(plan) {
			if r.Capabilities().Supports(plan) != nil {
				continue
			}
			got, err := r.Run(sc.Events)
			if err != nil {
				if errors.As(err, new(baselines.ErrBudget)) {
					continue // DNF: outside the reference's budget, not a mismatch
				}
				return "", fmt.Errorf("sub %d: %s: %w", si, r.Name(), err)
			}
			if d := diff.Compare(canonOrder(got), canonOrder(ref), floatTol); d != "" {
				return fmt.Sprintf("sub %d: %s disagrees with COGRA\n%s", si, r.Name(), d), nil
			}
		}
	}
	return "", nil
}

func capableRunners(plan *core.Plan) []baselines.CapableRunner {
	s := sase.New(plan)
	s.BudgetUnits = baselineBudget
	g := greta.New(plan)
	g.BudgetUnits = baselineBudget
	a := aseq.New(plan)
	a.BudgetUnits = baselineBudget
	f := flinklite.New(plan)
	f.BudgetUnits = baselineBudget
	return []baselines.CapableRunner{s, g, a, f}
}

// canonOrder returns a copy sorted by (window, group) — the canonical
// emit order; baselines already report in it, but sorting makes the
// comparison robust to tie order among equal keys.
func canonOrder(rs []cogra.Result) []cogra.Result {
	out := append([]cogra.Result(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wid != out[j].Wid {
			return out[i].Wid < out[j].Wid
		}
		return strings.Join(out[i].Group, "\x00") < strings.Join(out[j].Group, "\x00")
	})
	return out
}
