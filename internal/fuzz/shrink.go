// The failure shrinker: greedy delta debugging over scenarios. Given
// a scenario failing an oracle, Shrink repeatedly proposes smaller
// candidates — drop event chunks, drop subscriptions, simplify query
// clauses, normalize churn, zero config knobs — and keeps a candidate
// iff it still validates AND still fails the same oracle. Candidate
// order is fixed, so shrinking is fully deterministic; every accepted
// step strictly decreases Scenario.Size, so it terminates at a local
// minimum.
package fuzz

import (
	"fmt"
	"io"

	cogra "repro"
	"repro/internal/query"
)

// ShrinkReport describes one shrink run.
type ShrinkReport struct {
	Steps    int    // accepted shrink steps
	Tried    int    // candidates evaluated
	Mismatch string // the minimal scenario's mismatch
}

// Shrink minimizes sc against the oracle. The input scenario must
// currently fail the oracle (Check returns a non-empty mismatch);
// Shrink returns an error otherwise. The returned scenario is a new
// value; sc is not modified. log may be nil.
func Shrink(sc *Scenario, o *Oracle, log io.Writer) (*Scenario, *ShrinkReport, error) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	mismatch, err := o.Check(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("shrink: oracle %s errored on the input scenario: %w", o.Name, err)
	}
	if mismatch == "" {
		return nil, nil, fmt.Errorf("shrink: oracle %s does not fail on the input scenario", o.Name)
	}
	cur := sc.Clone()
	rep := &ShrinkReport{Mismatch: mismatch}

	// try evaluates one candidate; accepted iff it is strictly
	// smaller, structurally valid, and still fails the oracle.
	try := func(cand *Scenario) bool {
		if cand.Size() >= cur.Size() {
			return false
		}
		if validate(cand) != nil {
			return false
		}
		rep.Tried++
		m, err := o.Check(cand)
		if err != nil || m == "" {
			return false
		}
		cur = cand
		rep.Steps++
		rep.Mismatch = m
		return true
	}

	for pass := 0; ; pass++ {
		before := cur.Size()
		shrinkEvents(&cur, try)
		shrinkSubs(&cur, try)
		shrinkQueries(&cur, try)
		shrinkChurn(&cur, try)
		shrinkKnobs(&cur, try)
		logf("shrink pass %d: size %d -> %d (%d events, %d subs)",
			pass, before, cur.Size(), len(cur.Events), len(cur.Subs))
		if cur.Size() == before {
			break
		}
	}
	return cur, rep, nil
}

// shrinkEvents is ddmin over the event slice: chunk sizes halve from
// n/2 down to 1; membership intervals and the snapshot point are
// remapped around each removed range.
func shrinkEvents(cur **Scenario, try func(*Scenario) bool) {
	for chunk := len((*cur).Events) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len((*cur).Events); {
			cand := dropEventRange(*cur, start, start+chunk)
			if cand != nil && try(cand) {
				// The range at start is gone; the next candidate begins
				// at the same offset over the shorter slice.
				continue
			}
			start += chunk
		}
	}
}

// dropEventRange removes events [a,b) and remaps every event-index
// field; nil when the result would be empty.
func dropEventRange(sc *Scenario, a, b int) *Scenario {
	n := len(sc.Events)
	if b-a >= n {
		return nil
	}
	remap := func(i int) int {
		switch {
		case i <= a:
			return i
		case i >= b:
			return i - (b - a)
		default:
			return a
		}
	}
	cand := sc.Clone()
	cand.Events = append(append([]*cogra.Event(nil), sc.Events[:a]...), sc.Events[b:]...)
	m := len(cand.Events)
	for si := range cand.Subs {
		cand.Subs[si].Join = remap(cand.Subs[si].Join)
		cand.Subs[si].Leave = remap(cand.Subs[si].Leave)
		if cand.Subs[si].Leave <= cand.Subs[si].Join {
			if cand.Subs[si].Join >= m {
				cand.Subs[si].Join = m - 1
			}
			cand.Subs[si].Leave = cand.Subs[si].Join + 1
		}
	}
	if sc.SnapshotAt > 0 {
		cand.SnapshotAt = remap(sc.SnapshotAt)
	}
	return cand
}

func shrinkSubs(cur **Scenario, try func(*Scenario) bool) {
	for si := 0; len((*cur).Subs) > 1 && si < len((*cur).Subs); {
		cand := (*cur).Clone()
		cand.Subs = append(cand.Subs[:si], cand.Subs[si+1:]...)
		if !try(cand) {
			si++
		}
	}
}

// shrinkQueries simplifies each subscription's query one clause at a
// time: drop grouping, drop each predicate class, drop extra
// aggregates, collapse the window to tumbling. Candidates that no
// longer validate (e.g. alias-scoped grouping without its equivalence
// predicate) are rejected by try.
func shrinkQueries(cur **Scenario, try func(*Scenario) bool) {
	for si := 0; si < len((*cur).Subs); si++ {
		for _, tf := range queryShrinks {
			for {
				q, err := query.Parse((*cur).Subs[si].Src)
				if err != nil {
					break
				}
				if !tf(q) {
					break
				}
				if q.Validate() != nil {
					break
				}
				cand := (*cur).Clone()
				cand.Subs[si].Src = q.String()
				if !try(cand) {
					break
				}
			}
		}
	}
}

// queryShrinks are the per-query simplification steps; each mutates
// the parsed query in place and reports whether it changed anything.
var queryShrinks = []func(*query.Query) bool{
	func(q *query.Query) bool { // drop GROUP-BY (and its RETURN keys)
		if len(q.GroupBy) == 0 && len(q.ReturnKeys) == 0 {
			return false
		}
		q.GroupBy, q.ReturnKeys = nil, nil
		return true
	},
	func(q *query.Query) bool { // drop one adjacent predicate
		if q.Where == nil || len(q.Where.Adjacents) == 0 {
			return false
		}
		q.Where.Adjacents = q.Where.Adjacents[:len(q.Where.Adjacents)-1]
		return true
	},
	func(q *query.Query) bool { // drop one local predicate
		if q.Where == nil || len(q.Where.Locals) == 0 {
			return false
		}
		q.Where.Locals = q.Where.Locals[:len(q.Where.Locals)-1]
		return true
	},
	func(q *query.Query) bool { // drop one equivalence predicate
		if q.Where == nil || len(q.Where.Equivalences) == 0 {
			return false
		}
		q.Where.Equivalences = q.Where.Equivalences[:len(q.Where.Equivalences)-1]
		return true
	},
	func(q *query.Query) bool { // drop one extra aggregate (keep the first)
		if len(q.Returns) <= 1 {
			return false
		}
		q.Returns = q.Returns[:len(q.Returns)-1]
		return true
	},
	func(q *query.Query) bool { // collapse sliding/gapped window to tumbling
		if q.Window.Slide == q.Window.Within {
			return false
		}
		q.Window.Slide = q.Window.Within
		return true
	},
}

// shrinkChurn pins membership to the whole stream, one sub at a time.
func shrinkChurn(cur **Scenario, try func(*Scenario) bool) {
	n := len((*cur).Events)
	for si := 0; si < len((*cur).Subs); si++ {
		if (*cur).Subs[si].Join == 0 && (*cur).Subs[si].Leave == n {
			continue
		}
		cand := (*cur).Clone()
		cand.Subs[si].Join, cand.Subs[si].Leave = 0, n
		try(cand)
	}
}

// shrinkKnobs zeroes one config knob at a time. A knob the failing
// oracle needs (e.g. workers for the groups oracle) survives because
// the zeroed candidate no longer fails — Check returns "" on an
// inapplicable scenario.
func shrinkKnobs(cur **Scenario, try func(*Scenario) bool) {
	knobs := []func(*Scenario){
		func(sc *Scenario) { sc.SnapshotAt = -1 },
		func(sc *Scenario) { sc.Groups = 0 },
		func(sc *Scenario) { sc.Workers, sc.Groups = 0, 0 },
		func(sc *Scenario) { sc.BatchSize = 0 },
		func(sc *Scenario) { sc.Jitter = 0 },
	}
	for _, k := range knobs {
		cand := (*cur).Clone()
		k(cand)
		try(cand)
	}
}
