// Package diff holds the differential-comparison helpers shared by
// the repo's hand-written differential spine (session, batch-kernel
// and snapshot tests) and the randomized fuzz runner (internal/fuzz):
// solo-replay references, result canonicalization, first-divergence
// byte diffs, the full-window filter for mid-stream joiners and the
// bounded shuffle that produces slack-repairable disorder.
//
// The helpers are deliberately test-framework-free (no testing.TB):
// the fuzz runner calls them from a plain binary and the tests wrap
// them with t.Fatal at the call site.
package diff

import (
	"fmt"
	"sort"
	"strings"

	cogra "repro"
	"repro/internal/agg"
)

// Canon renders a result slice into the canonical byte string the
// differential spine compares: one result per line, window id and
// bounds, group values and exact (%g round-trips float64) aggregate
// values. Two runs are considered identical iff their Canon strings
// are byte-identical.
func Canon(results []cogra.Result) string {
	if len(results) == 0 {
		return "(none)"
	}
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "w%d %s\n", r.Wid, r.String())
	}
	return b.String()
}

// Equal reports whether two result slices are byte-identical under
// Canon.
func Equal(a, b []cogra.Result) bool { return Canon(a) == Canon(b) }

// Compare compares two result lists structurally: length, window
// identity, group values and counts exactly; float aggregates with
// relative tolerance relTol (0 compares exactly). A non-zero tolerance
// is for comparisons whose sides legitimately accumulate float sums in
// different orders — a solo engine folds a window's partition classes
// in sorted key order, parallel workers in routing order — so the last
// ULP of SUM/AVG may differ (the same reason agg.ApproxEqual exists).
// Returns "" on match, else a description of the first difference.
func Compare(got, want []cogra.Result, relTol float64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d results != %d results\n%s",
			len(got), len(want), FirstByteDiff(Canon(got), Canon(want)))
	}
	for i := range got {
		g, w := got[i], want[i]
		structEq := g.Wid == w.Wid && g.Start == w.Start && g.End == w.End && len(g.Group) == len(w.Group)
		if structEq {
			for j := range g.Group {
				if g.Group[j] != w.Group[j] {
					structEq = false
					break
				}
			}
		}
		if !structEq || !agg.ApproxEqual(g.Values, w.Values, relTol) {
			return fmt.Sprintf("result %d differs:\n  got:  w%d %s\n  want: w%d %s",
				i, g.Wid, g.String(), w.Wid, w.String())
		}
	}
	return ""
}

// Diff describes the first divergence between two canonicalized runs:
// the first line that differs (or the extra tail when one is a prefix
// of the other), with the byte offset of the divergence. Empty when
// the runs are identical.
func Diff(got, want []cogra.Result) string {
	return FirstByteDiff(Canon(got), Canon(want))
}

// FirstByteDiff locates the first byte where two canonical strings
// diverge and renders the surrounding lines; empty when identical.
func FirstByteDiff(got, want string) string {
	if got == want {
		return ""
	}
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	line := 1 + strings.Count(got[:i], "\n")
	return fmt.Sprintf("first divergence at byte %d (line %d):\n  got:  %s\n  want: %s",
		i, line, lineAround(got, i), lineAround(want, i))
}

// lineAround extracts the line containing byte offset i.
func lineAround(s string, i int) string {
	if i >= len(s) {
		return "(end of output)"
	}
	start := strings.LastIndexByte(s[:i], '\n') + 1
	end := strings.IndexByte(s[start:], '\n')
	if end < 0 {
		return s[start:]
	}
	return s[start : start+end]
}

// SoloRun executes one query alone over an in-order event slice — the
// pre-stream-subscriber reference every membership differential is
// pinned against — and returns its drained results.
func SoloRun(src string, events []*cogra.Event, opts ...cogra.SessionOption) ([]cogra.Result, error) {
	q, err := cogra.Parse(src)
	if err != nil {
		return nil, err
	}
	sess := cogra.NewSession(opts...)
	sub, err := sess.Subscribe(q)
	if err != nil {
		return nil, err
	}
	if err := sess.PushBatch(events); err != nil {
		return nil, err
	}
	if err := sess.Close(); err != nil {
		return nil, err
	}
	return sub.Drain(), nil
}

// FullWindowsAfter keeps the results of windows fully covered by an
// observer joining at watermark t: those starting strictly after t.
func FullWindowsAfter(results []cogra.Result, t int64) []cogra.Result {
	var out []cogra.Result
	for _, r := range results {
		if r.Start > t {
			out = append(out, r)
		}
	}
	return out
}

// ShuffleBounded returns a copy of events shuffled within blocks of
// the given size (bounded disorder) plus the slack required to repair
// it: the largest amount by which any event trails the running
// maximum time stamp. A zero returned slack means the shuffle
// produced no disorder (the caller's vacuity check).
func ShuffleBounded(events []*cogra.Event, block int, seed int64) ([]*cogra.Event, int64) {
	rng := newSplitMix(uint64(seed))
	out := make([]*cogra.Event, len(events))
	copy(out, events)
	for i := 0; i+block-1 < len(out); i += block {
		// Fisher-Yates within the block.
		for a := block - 1; a > 0; a-- {
			b := int(rng.next() % uint64(a+1))
			out[i+a], out[i+b] = out[i+b], out[i+a]
		}
	}
	return out, repairSlack(events, out)
}

// JitterOrder models disorder at ingest rather than a shuffle of the
// sorted stream: each event's arrival stamp is its time stamp plus an
// independent random delay in [0, jitter], and events arrive in
// arrival-stamp order (stable on ties, so equal stamps keep generation
// order). This is how real sources misbehave — a slow sender delays
// its events relative to everyone else's — and unlike ShuffleBounded
// it produces disorder whose span varies along the stream, so a single
// repairing slack is tight in some regions and generous in others.
// Returns the jittered order plus the slack required to repair it
// exactly (the largest amount any event trails the running maximum
// time stamp); slack 0 means the jitter produced no disorder.
func JitterOrder(events []*cogra.Event, jitter int64, seed int64) ([]*cogra.Event, int64) {
	out := make([]*cogra.Event, len(events))
	copy(out, events)
	if jitter > 0 {
		rng := newSplitMix(uint64(seed))
		arrival := make(map[*cogra.Event]int64, len(out))
		for _, e := range out {
			arrival[e] = e.Time + int64(rng.next()%uint64(jitter+1))
		}
		sort.SliceStable(out, func(i, j int) bool { return arrival[out[i]] < arrival[out[j]] })
	}
	return out, repairSlack(events, out)
}

// repairSlack computes the slack a session needs to process the
// permuted order with results identical to the canonical order: the
// largest amount any event trails the running maximum time stamp.
// That bound provably covers every time inversion AND keeps inverted
// equal-time ties buffered long enough to re-sort — except when it
// computes to exactly 0, where the session would install no reorder
// buffer at all. A tie-only inversion (two equal-time events swapped,
// everything else sorted) therefore needs slack 1: any positive slack
// restores (time, ID) tie order, and 1 is the smallest.
func repairSlack(canonical, permuted []*cogra.Event) int64 {
	var slack, maxSeen int64
	for i, e := range permuted {
		if i == 0 || e.Time > maxSeen {
			maxSeen = e.Time
		}
		if d := maxSeen - e.Time; d > slack {
			slack = d
		}
	}
	if slack == 0 {
		for i := range permuted {
			if permuted[i] != canonical[i] {
				return 1
			}
		}
	}
	return slack
}

// splitMix is a tiny deterministic PRNG (splitmix64) so the shuffle
// does not depend on math/rand's generator remaining stable across Go
// releases — repro files pin shuffle seeds forever.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed ^ 0x9E3779B97F4A7C15} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
