package diff

import (
	"testing"

	cogra "repro"
)

// TestRepairSlackTieInversion pins the fix for a latent bug the
// jitter oracle exposed: a permutation that only swaps equal-time
// events has a zero time-based slack, but zero slack means the
// session installs no reorder buffer at all, so arrival order would
// leak into trend order. The minimal repair slack for any non-trivial
// permutation is 1.
func TestRepairSlackTieInversion(t *testing.T) {
	mk := func(tm int64, id int64) *cogra.Event {
		e := cogra.NewEvent("A", tm)
		e.ID = id
		return e
	}
	a, b, c := mk(5, 1), mk(5, 2), mk(7, 3)
	canonical := []*cogra.Event{a, b, c}

	if got := repairSlack(canonical, []*cogra.Event{a, b, c}); got != 0 {
		t.Errorf("identity permutation: repair slack %d, want 0", got)
	}
	if got := repairSlack(canonical, []*cogra.Event{b, a, c}); got != 1 {
		t.Errorf("tie-only inversion: repair slack %d, want 1", got)
	}
	if got := repairSlack(canonical, []*cogra.Event{a, c, b}); got != 2 {
		t.Errorf("time inversion: repair slack %d, want 2 (maxSeen 7 - time 5)", got)
	}
}
