// The fuzz runner: drives the scenario generator through the oracle
// suite, shrinks failures and writes repro files. Used by
// cmd/cografuzz and by the repro regression tests.
package fuzz

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// RunConfig parameterises one fuzzing run.
type RunConfig struct {
	// Seed is the base seed; scenario i is fully determined by
	// (Seed, i).
	Seed uint64
	// N is the number of scenarios to run. 0 means "until Budget".
	N int
	// Budget bounds wall-clock time when N == 0. The scenario
	// *sequence* is still deterministic in Seed; only how far the run
	// gets depends on the clock.
	Budget time.Duration
	// Oracles restricts the suite to the named oracles (nil: all).
	Oracles []string
	// OutDir receives shrunk repro files (empty: no files written).
	OutDir string
	// MaxFailures stops the run early after this many failing
	// scenarios (0: unlimited).
	MaxFailures int
	// NoShrink reports raw failing scenarios without minimizing them.
	NoShrink bool
	// Log receives progress lines (nil: silent).
	Log io.Writer
	// Verbose additionally logs every scenario and oracle verdict.
	Verbose bool
}

// Failure is one failing (scenario, oracle) pair after shrinking.
type Failure struct {
	Index    int // scenario index in the seed's sequence
	Oracle   string
	Mismatch string
	Scenario *Scenario
	File     string // repro path, when OutDir was set
}

// Report summarises a fuzzing run.
type Report struct {
	Scenarios int
	Checks    int // oracle checks that ran (including inapplicable)
	Failures  []Failure
	Elapsed   time.Duration
}

// Run executes the configured fuzzing session.
func Run(cfg RunConfig) (*Report, error) {
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	suite := Oracles()
	if len(cfg.Oracles) > 0 {
		var sel []Oracle
		for _, name := range cfg.Oracles {
			o := OracleByName(name)
			if o == nil {
				return nil, fmt.Errorf("fuzz: unknown oracle %q", name)
			}
			sel = append(sel, *o)
		}
		suite = sel
	}
	start := time.Now()
	rep := &Report{}
	for i := 0; ; i++ {
		if cfg.N > 0 && i >= cfg.N {
			break
		}
		if cfg.N == 0 && (cfg.Budget <= 0 || time.Since(start) > cfg.Budget) {
			break
		}
		sc, err := Generate(cfg.Seed, i)
		if err != nil {
			return nil, err
		}
		rep.Scenarios++
		if cfg.Verbose {
			logf("[%d] %s", i, sc)
		}
		for oi := range suite {
			o := &suite[oi]
			rep.Checks++
			mismatch, err := o.Check(sc)
			if err != nil {
				mismatch = fmt.Sprintf("oracle execution error: %v", err)
			}
			if mismatch == "" {
				continue
			}
			logf("[%d] FAIL %s: %s", i, o.Name, firstLine(mismatch))
			f := Failure{Index: i, Oracle: o.Name, Mismatch: mismatch, Scenario: sc}
			if err == nil && !cfg.NoShrink {
				small, srep, serr := Shrink(sc, o, verboseLog(cfg))
				if serr != nil {
					logf("[%d] shrink failed: %v", i, serr)
				} else {
					logf("[%d] shrunk to %d events, %d subs (%d steps, %d candidates)",
						i, len(small.Events), len(small.Subs), srep.Steps, srep.Tried)
					f.Scenario, f.Mismatch = small, srep.Mismatch
				}
			}
			if cfg.OutDir != "" {
				path, werr := writeFailure(cfg.OutDir, &f)
				if werr != nil {
					return nil, werr
				}
				f.File = path
				logf("[%d] repro written: %s", i, path)
			}
			rep.Failures = append(rep.Failures, f)
			if cfg.MaxFailures > 0 && len(rep.Failures) >= cfg.MaxFailures {
				rep.Elapsed = time.Since(start)
				return rep, nil
			}
			break // one failure per scenario is enough; move on
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func verboseLog(cfg RunConfig) io.Writer {
	if cfg.Verbose {
		return cfg.Log
	}
	return nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// writeFailure persists one failure as a repro file named by its
// oracle and scenario seed — deterministic, so re-running the same
// seed overwrites rather than accumulates.
func writeFailure(dir string, f *Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%016x.repro", f.Oracle, f.Scenario.Seed))
	tmp := path + ".tmp"
	fh, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	werr := WriteRepro(fh, &Repro{Oracle: f.Oracle, Mismatch: f.Mismatch, Scenario: f.Scenario})
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", werr
	}
	return path, os.Rename(tmp, path)
}

// Replay loads a repro file and re-runs its oracle. It returns the
// recomputed mismatch ("" when the repro no longer fails — the bug is
// fixed) plus the decoded repro for reporting.
func Replay(r io.Reader) (*Repro, string, error) {
	rep, err := ReadRepro(r)
	if err != nil {
		return nil, "", err
	}
	o := OracleByName(rep.Oracle)
	if o == nil {
		return rep, "", fmt.Errorf("repro names unknown oracle %q", rep.Oracle)
	}
	mismatch, err := o.Check(rep.Scenario)
	if err != nil {
		return rep, "", err
	}
	return rep, mismatch, nil
}

// ReplayFile is Replay over a path.
func ReplayFile(path string) (*Repro, string, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer fh.Close()
	return Replay(fh)
}
