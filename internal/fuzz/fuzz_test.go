package fuzz

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// pinnedSeed0 pins ScenarioSeed's splitmix derivation: repro files and
// CI logs name scenarios by these seeds forever, so a change here
// silently orphans every committed repro.
func TestScenarioSeedPinned(t *testing.T) {
	if got := ScenarioSeed(1, 0); got != 0x910a2dec89025cc1 {
		t.Errorf("ScenarioSeed(1, 0) = %#x, want 0x910a2dec89025cc1", got)
	}
	if a, b := ScenarioSeed(1, 1), ScenarioSeed(2, 0); a == b {
		t.Errorf("neighbouring (seed, index) pairs collide: %#x", a)
	}
}

// Same (baseSeed, i) must reproduce the same scenario — including the
// events — byte for byte. This is the fuzzer's core determinism
// guarantee: a failure report names (seed, index) and anyone can
// regenerate the exact scenario.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 24; i++ {
		a, err := Generate(7, i)
		if err != nil {
			t.Fatalf("Generate(7, %d): %v", i, err)
		}
		b, err := Generate(7, i)
		if err != nil {
			t.Fatalf("Generate(7, %d) again: %v", i, err)
		}
		var ab, bb bytes.Buffer
		if err := WriteRepro(&ab, &Repro{Oracle: "batch", Scenario: a}); err != nil {
			t.Fatal(err)
		}
		if err := WriteRepro(&bb, &Repro{Oracle: "batch", Scenario: b}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("Generate(7, %d) is not deterministic", i)
		}
	}
}

// A written repro must read back into a scenario that writes the same
// bytes (the codec is a fixpoint after one round trip).
func TestReproRoundTrip(t *testing.T) {
	sc, err := Generate(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	rep := &Repro{Oracle: "slack", Mismatch: "sub 0: oops\nmore detail", Scenario: sc}
	if err := WriteRepro(&first, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepro(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadRepro: %v", err)
	}
	if back.Oracle != "slack" {
		t.Errorf("oracle = %q, want slack", back.Oracle)
	}
	var second bytes.Buffer
	if err := WriteRepro(&second, &Repro{Oracle: back.Oracle, Mismatch: rep.Mismatch, Scenario: back.Scenario}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("repro round trip is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
}

// eventCountOracle fails any scenario with at least min events — a
// synthetic failing oracle for shrinker property tests (the real
// oracles pass on a healthy engine, so they cannot exercise Shrink).
func eventCountOracle(min int) *Oracle {
	return &Oracle{
		Name: "test-event-count",
		Doc:  "synthetic: fails when the scenario has >= min events",
		Check: func(sc *Scenario) (string, error) {
			if len(sc.Events) >= min {
				return fmt.Sprintf("scenario has %d events (>= %d)", len(sc.Events), min), nil
			}
			return "", nil
		},
	}
}

func TestShrinkProperties(t *testing.T) {
	sc, err := Generate(11, 2) // a session-scale scenario
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) < 20 {
		t.Fatalf("scenario too small for the test: %d events", len(sc.Events))
	}
	o := eventCountOracle(3)

	small, rep, err := Shrink(sc, o, nil)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	// Strictly smaller than the input, and still failing.
	if small.Size() >= sc.Size() {
		t.Errorf("shrunk size %d is not below input size %d", small.Size(), sc.Size())
	}
	if m, err := o.Check(small); err != nil || m == "" {
		t.Errorf("shrunk scenario no longer fails the oracle (mismatch=%q err=%v)", m, err)
	}
	if rep.Mismatch == "" || rep.Steps == 0 {
		t.Errorf("report not filled: %+v", rep)
	}
	// The synthetic oracle only needs 3 events; ddmin must reach the
	// floor exactly.
	if len(small.Events) != 3 {
		t.Errorf("shrunk to %d events, want 3", len(small.Events))
	}

	// Deterministic: a second run shrinks to byte-identical output.
	again, _, err := Shrink(sc, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteRepro(&a, &Repro{Oracle: o.Name, Scenario: small}); err != nil {
		t.Fatal(err)
	}
	if err := WriteRepro(&b, &Repro{Oracle: o.Name, Scenario: again}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("shrinking the same scenario twice produced different repro bytes")
	}

	// Local minimum: shrinking the output again changes nothing.
	fixpoint, frep, err := Shrink(small, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fixpoint.Size() != small.Size() || frep.Steps != 0 {
		t.Errorf("shrunk output is not a fixpoint: size %d -> %d in %d steps",
			small.Size(), fixpoint.Size(), frep.Steps)
	}
}

func TestShrinkRejectsPassingScenario(t *testing.T) {
	sc, err := Generate(11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Shrink(sc, eventCountOracle(1_000_000), nil); err == nil {
		t.Error("Shrink accepted a scenario the oracle passes")
	}
}

// The healthy engine passes the full suite on a deterministic prefix
// of seed 1 — the same property the CI smoke asserts at larger scale.
func TestRunHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs whole scenarios")
	}
	var log strings.Builder
	rep, err := Run(RunConfig{Seed: 1, N: 20, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != 20 {
		t.Errorf("ran %d scenarios, want 20", rep.Scenarios)
	}
	if len(rep.Failures) != 0 {
		t.Errorf("healthy engine failed %d scenarios:\n%s", len(rep.Failures), log.String())
	}
}

// Every oracle named by a committed repro (and the runner's -oracles
// flag) must resolve; the suite's names are part of the repro format.
func TestOracleNamesStable(t *testing.T) {
	for _, name := range []string{"batch", "workers", "groups", "slack", "jitter", "late", "shared", "evict", "snapshot", "server", "baselines", "watermark", "stats"} {
		if OracleByName(name) == nil {
			t.Errorf("oracle %q is gone; committed repro files may name it", name)
		}
	}
}
