package runtime

// Shared trend aggregation across hosted queries (the Hamlet
// direction: sharing is a runtime decision per burst, not a static
// one). Subscriptions whose plans carry the same sharing fingerprint
// (identical pattern, semantics, predicates, grouping and window —
// core/sharedagg.go) form a sharing GROUP. A group can execute two
// ways:
//
//   - solo: every member's engine aggregates independently (the
//     pre-sharing behaviour, and the only behaviour when shared
//     aggregation is disabled).
//
//   - shared: one group-owned HOST engine runs the union of the
//     members' aggregation specs, computing the sub-trend sums once;
//     at emission the host fans each result out to every member as a
//     cheap column projection (the per-query correction), delivered
//     through the member's own engine so downstream consumers are
//     oblivious.
//
// Which way a group runs is decided per epoch by a burstiness monitor
// (events-per-epoch vs fleet size, with hysteresis) and changed ONLY
// at window boundaries: a flip picks the boundary W* = the first
// window fully after the current watermark, retires the outgoing side
// with Engine.RetireFrom(W*) and aligns the incoming side with
// Engine.ResumeFrom(W*). The outgoing side keeps processing events
// until the watermark closes its remaining windows (< W*), then
// drains away; every window is owned by exactly one side, so results
// stay byte-identical across flips. Member engines always exist —
// while a member is served by the host its engine is just removed
// from event dispatch (watermark passes continue, keeping its stream
// clock current for a later revival) and acts as the member's result
// channel.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/snap"
	"repro/internal/window"
)

// Monitor thresholds: share when the group's per-epoch event volume
// reaches shareUpFactor×K (K = member count), unshare when it falls
// below shareDownFactor×K. The gap is hysteresis; epochs with zero
// events decide nothing. The heuristic only picks the execution mode —
// results are identical either way — so a mis-prediction costs
// throughput, never correctness.
const (
	shareUpFactor   = 2
	shareDownFactor = 1
)

// memberMode is the execution state of one group member.
type memberMode uint8

const (
	// memberSolo: the member's own engine is live and receives events.
	memberSolo memberMode = iota
	// memberDraining: the member's engine was retired at the flip
	// boundary and still processes events for its remaining windows.
	memberDraining
	// memberShared: the member's engine is drained; the host serves its
	// windows from m.from on.
	memberShared
)

// groupMember is one subscription's membership in a sharing group.
type groupMember struct {
	sub  *Subscription
	mode memberMode
	// served: the host computes this member's aggregates for windows
	// >= from, projected through proj. Stays true through an unshare
	// transition until the retiring host drains.
	served bool
	from   int64
	proj   []int
}

// groupMode is the execution state of a sharing group.
type groupMode uint8

const (
	groupSolo      groupMode = iota // every member runs its own engine
	groupSharing                    // flip to shared in flight: members draining, host live
	groupShared                     // host serves every served member
	groupUnsharing                  // flip to solo in flight: host retiring, members revived
)

// shareGroup is one sharing group: the members, the optional host,
// and the per-epoch monitor state.
type shareGroup struct {
	rt      *Runtime
	key     string // sharing fingerprint
	win     window.Spec
	mode    groupMode
	members []*groupMember

	// union/host exist while the group runs shared (or a transition is
	// in flight). The host is a pseudo-subscription (id -1): indexed
	// for event dispatch, never part of rt.subs.
	union        *core.SpecUnion
	host         *Subscription
	hostRetiring bool

	// wantRefresh: a member joined whose specs the union does not
	// cover; the next unshare/share cycle rebuilds the union over the
	// full membership.
	wantRefresh bool
	// poisoned: compiling the union plan failed; the group stays solo.
	poisoned bool

	// Per-epoch monitor state.
	lastEpoch  int64
	epochValid bool
	probeBase  int64
	hostBase   int64
}

// EnableSharedAggregation turns runtime share/unshare decisions on.
// hostOpts are the engine options every group host engine is built
// with (accounting, eviction — mirroring what the caller passes for
// member engines; the host's result callback is group-owned). Call
// before subscribing: already-hosted subscriptions are not regrouped.
func (rt *Runtime) EnableSharedAggregation(hostOpts ...core.Option) {
	if rt.groups == nil {
		rt.groups = map[string]*shareGroup{}
	}
	rt.sharedOn = true
	rt.hostOpts = hostOpts
}

// SharedAggregationEnabled reports whether share/unshare decisions
// are active.
func (rt *Runtime) SharedAggregationEnabled() bool { return rt.sharedOn }

// groupJoin registers a freshly subscribed s with its sharing group,
// creating the group on first contact. aligned/alignT describe the
// watermark the new engine was aligned to (false: the stream has not
// started). Reports whether the dispatch index must be rebuilt.
func (rt *Runtime) groupJoin(s *Subscription, alignT int64, aligned bool) (changed bool) {
	key := s.plan.Fingerprint()
	g := rt.groups[key]
	if g == nil {
		g = &shareGroup{rt: rt, key: key, win: s.plan.Query.Window}
		rt.groups[key] = g
		rt.groupList = append(rt.groupList, g)
	}
	m := &groupMember{sub: s, mode: memberSolo}
	g.members = append(g.members, m)
	s.group, s.gm = g, m
	switch g.mode {
	case groupSolo:
		if len(g.members) >= 2 && !g.poisoned {
			return g.initiateShare(alignT, aligned)
		}
	case groupSharing, groupShared:
		if proj, ok := g.union.Project(s.plan.Specs); ok {
			// The host's union already covers the newcomer: serve it
			// from the first window fully after its alignment point.
			// Its fresh engine owns nothing below that boundary, so it
			// drains instantly.
			from := int64(0)
			if aligned {
				from = g.win.FirstFullWindow(alignT)
			}
			s.eng.RetireFrom(from)
			m.from, m.proj, m.served = from, proj, true
			m.mode = memberDraining
			if s.eng.Drained() {
				m.mode = memberShared
			}
			return true
		}
		// Novel specs: ride solo until the next share decision rebuilds
		// the union over the full membership.
		g.wantRefresh = true
	case groupUnsharing:
		// The group is returning to solo; the newcomer is already solo.
	}
	return false
}

// initiateShare flips a solo group to shared execution at the window
// boundary W* after watermark alignT: a host engine running the spec
// union takes ownership of windows >= W*, every member engine retires
// at W* and drains. Reports whether the dispatch index must be
// rebuilt (false only when union-plan compilation failed).
func (g *shareGroup) initiateShare(alignT int64, aligned bool) bool {
	rt := g.rt
	union := core.NewSpecUnion()
	projs := make([][]int, len(g.members))
	for i, m := range g.members {
		projs[i], _ = union.Add(m.sub.plan.Specs)
	}
	uq := core.UnionQuery(g.members[0].sub.plan.Query, union.Specs())
	plan, err := core.NewPlanIn(rt.cat, uq)
	if err != nil {
		// Members validated individually; a union that fails to compile
		// means the group cannot share — stay solo and stop trying.
		g.poisoned = true
		return false
	}
	if err := rt.cat.Retain(plan); err != nil {
		rt.cat.DiscardPlan(plan)
		g.poisoned = true
		return false
	}
	opts := append(append([]core.Option(nil), rt.hostOpts...), core.WithResultCallback(g.fanout))
	g.union = union
	g.host = &Subscription{id: -1, plan: plan, eng: core.NewEngine(plan, opts...), rt: rt, active: true}
	g.hostRetiring = false
	var boundary int64
	if aligned {
		boundary = g.win.FirstFullWindow(alignT)
		g.host.eng.AlignTo(alignT)
	}
	for i, m := range g.members {
		m.sub.eng.RetireFrom(boundary)
		m.from, m.proj, m.served = boundary, projs[i], true
		m.mode = memberDraining
	}
	g.mode = groupSharing
	g.hostBase = 0
	rt.shareFlips++
	g.trySharingComplete()
	return true
}

// initiateUnshare flips a shared group back to solo execution at the
// window boundary W* after watermark t: the host retires at W* and
// drains (still fanning out its remaining windows), every served
// member's engine revives and owns windows from W* on.
func (g *shareGroup) initiateUnshare(t int64, saw bool) {
	g.accountSaved()
	var boundary int64
	if saw {
		boundary = g.win.FirstFullWindow(t)
	}
	g.host.eng.RetireFrom(boundary)
	g.hostRetiring = true
	for _, m := range g.members {
		if m.mode == memberShared || m.mode == memberDraining {
			m.sub.eng.Unretire()
			m.sub.eng.ResumeFrom(boundary)
			m.mode = memberSolo
		}
	}
	g.mode = groupUnsharing
	g.rt.shareFlips++
	g.tryUnsharingComplete()
}

// trySharingComplete finishes a solo→shared flip once every draining
// member has emitted its last pre-boundary window.
func (g *shareGroup) trySharingComplete() bool {
	for _, m := range g.members {
		if m.mode == memberDraining && !m.sub.eng.Drained() {
			return false
		}
	}
	for _, m := range g.members {
		if m.mode == memberDraining {
			m.mode = memberShared
		}
	}
	g.mode = groupShared
	return true
}

// tryUnsharingComplete finishes a shared→solo flip once the retiring
// host has fanned out its last pre-boundary window.
func (g *shareGroup) tryUnsharingComplete() bool {
	if !g.host.eng.Drained() {
		return false
	}
	g.releaseHost()
	for _, m := range g.members {
		m.served = false
		m.proj = nil
	}
	g.mode = groupSolo
	return true
}

// releaseHost closes and releases the host engine. The host streams
// through the fan-out callback, so Close never returns buffered
// results; a drained host flushes nothing.
func (g *shareGroup) releaseHost() {
	g.accountSaved()
	g.host.eng.Close()
	g.host.eng.ReleaseIntern()
	g.rt.cat.Release(g.host.plan)
	g.host = nil
	g.union = nil
	g.hostRetiring = false
}

// fanout is the host engine's result callback: each union result is
// projected onto every served member's RETURN columns and delivered
// through the member's own engine, subject to the member's first
// served window.
func (g *shareGroup) fanout(r core.Result) {
	for _, m := range g.members {
		if !m.served || r.Wid < m.from {
			continue
		}
		m.sub.eng.Deliver(core.ProjectResult(r, m.proj))
	}
}

// step runs the group's per-watermark bookkeeping: transition
// completion, then membership-driven unshares (a shared group whose
// served population fell to one, or whose union no longer covers a
// member, returns to solo at the next boundary). Reports whether the
// dispatch index must be rebuilt.
func (g *shareGroup) step(t int64, saw bool) (changed bool) {
	switch g.mode {
	case groupSharing:
		changed = g.trySharingComplete()
	case groupUnsharing:
		changed = g.tryUnsharingComplete()
	}
	if g.mode == groupShared && (g.servedCount() <= 1 || g.wantRefresh) {
		g.wantRefresh = false
		g.initiateUnshare(t, saw)
		changed = true
	}
	return changed
}

// tick runs the per-epoch burstiness monitor. Decisions are made only
// in stable modes (solo, shared) on epoch change, from the event
// volume the probe engine saw during the closed epoch: the host when
// shared, the first member otherwise (every member of a group sees
// the same sub-stream).
func (g *shareGroup) tick(t int64) (changed bool) {
	ep := g.win.EpochOf(t)
	if g.epochValid && ep == g.lastEpoch {
		return false
	}
	if g.epochValid {
		delta := g.probeEvents() - g.probeBase
		k := int64(len(g.members))
		switch {
		case g.mode == groupSolo && !g.poisoned && k >= 2 && delta >= shareUpFactor*k:
			changed = g.initiateShare(t, true)
		case g.mode == groupShared && delta > 0 && delta < shareDownFactor*k:
			g.initiateUnshare(t, true)
			changed = true
		case g.mode == groupShared:
			g.accountSaved()
		}
	}
	g.lastEpoch, g.epochValid = ep, true
	g.probeBase = g.probeEvents()
	return changed
}

// probeEvents returns the monitor's event-volume probe.
func (g *shareGroup) probeEvents() int64 {
	if g.host != nil && !g.hostRetiring {
		return g.host.eng.EventsProcessed()
	}
	if len(g.members) > 0 {
		return g.members[0].sub.eng.EventsProcessed()
	}
	return 0
}

// servedCount returns how many members the host currently serves.
func (g *shareGroup) servedCount() int {
	n := 0
	for _, m := range g.members {
		if m.served {
			n++
		}
	}
	return n
}

// accountSaved folds the host's event volume since the last
// accounting into the runtime's saved-operations estimate: every
// event the host aggregated once would have been aggregated by each
// served member individually.
func (g *shareGroup) accountSaved() {
	if g.host == nil {
		return
	}
	cur := g.host.eng.EventsProcessed()
	if served := g.servedCount(); served > 1 {
		g.rt.sharedSavedOps += (cur - g.hostBase) * int64(served-1)
	}
	g.hostBase = cur
}

// shareStep advances every group's state machine at watermark t:
// completions first, then the epoch monitor. Called inside the
// watermark advance, before events are dispatched, so flips always
// land on the boundary the advance exposed.
func (rt *Runtime) shareStep(t int64) {
	changed := false
	for _, g := range rt.groupList {
		if g.step(t, true) {
			changed = true
		}
		if g.tick(t) {
			changed = true
		}
	}
	if changed {
		rt.rebuildIndex()
	}
}

// groupLeave detaches an unsubscribing member from its group,
// flushing the host-computed state of its still-open windows so the
// member's result stream is complete: the host is cloned via the
// snapshot codec, the clone's open windows are flushed, and the
// member's share is projected and delivered in window order around
// the member engine's own flush. Returns the member's complete
// results (nil in callback mode).
func (rt *Runtime) groupLeave(s *Subscription) ([]core.Result, error) {
	g, m := s.group, s.gm
	var out []core.Result
	switch {
	case m.served && m.mode == memberDraining:
		// The member still owns open windows below the boundary: flush
		// them first, then append the host's share above it.
		s.eng.Close()
		if err := g.deliverCloneTo(m); err != nil {
			return nil, err
		}
		out = s.eng.Results()
	case m.served:
		// Drained (shared) or revived (unsharing): the host's share
		// precedes whatever the member engine still owns.
		if err := g.deliverCloneTo(m); err != nil {
			return nil, err
		}
		out = s.eng.Close()
	default:
		out = s.eng.Close()
	}
	for i, mm := range g.members {
		if mm == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	s.group, s.gm = nil, nil
	if len(g.members) == 0 {
		// Group retires with its last subscriber.
		if g.host != nil {
			g.releaseHost()
		}
		rt.dropGroup(g)
		return out, nil
	}
	if g.mode == groupShared && g.servedCount() <= 1 {
		g.initiateUnshare(rt.lastTime, rt.sawEvent)
	}
	return out, nil
}

// deliverCloneTo flushes the host's open windows for one member
// without disturbing the host: the host engine is cloned through the
// snapshot codec, the clone is closed, and the member's projection of
// every window at/above its boundary is delivered through its engine.
func (g *shareGroup) deliverCloneTo(m *groupMember) error {
	if g.host == nil {
		return nil
	}
	var w snap.Writer
	g.host.eng.Snapshot(&w)
	clone := core.NewEngine(g.host.plan)
	if err := clone.RestoreState(snap.NewReader(w.Raw())); err != nil {
		return fmt.Errorf("runtime: cloning shared host for unsubscribe: %v", err)
	}
	for _, r := range clone.Close() {
		if r.Wid >= m.from {
			m.sub.eng.Deliver(core.ProjectResult(r, m.proj))
		}
	}
	return nil
}

// dropGroup removes an empty group.
func (rt *Runtime) dropGroup(g *shareGroup) {
	delete(rt.groups, g.key)
	for i, cur := range rt.groupList {
		if cur == g {
			rt.groupList = append(rt.groupList[:i], rt.groupList[i+1:]...)
			break
		}
	}
}
