package runtime

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// testRand is a tiny deterministic xorshift.
type testRand uint64

func (r *testRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = testRand(x)
	return x
}

// mixedStream emits a multi-type stream exercising every query class:
// A/B sequences with accounts, Measurement random walks with patients,
// and X noise events no query matches (but contiguous semantics must
// still observe). Time stamps repeat (dense runs) and jump (idle
// gaps); IDs are pre-assigned so engines fed the same slice agree.
func mixedStream(n int) []*event.Event {
	r := testRand(99)
	rates := [3]float64{60, 70, 80}
	out := make([]*event.Event, 0, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		switch x := r.next() % 10; {
		case x < 3:
			out = append(out, event.New("A", t).
				WithSym("acct", fmt.Sprintf("acct-%d", r.next()%3)).
				WithNum("v", float64(r.next()%100)))
		case x < 5:
			out = append(out, event.New("B", t).
				WithSym("acct", fmt.Sprintf("acct-%d", r.next()%3)).
				WithNum("v", float64(r.next()%100)))
		case x < 8:
			p := int(r.next() % 3)
			rates[p] += float64(int(r.next()%7)) - 3
			out = append(out, event.New("Measurement", t).
				WithSym("patient", fmt.Sprintf("p%d", p)).
				WithNum("rate", rates[p]))
		default:
			out = append(out, event.New("X", t).WithNum("noise", 1))
		}
		out[i].ID = int64(i + 1)
		// Dense runs of equal time stamps, occasional idle gaps.
		switch r.next() % 8 {
		case 0, 1, 2:
			// same time stamp
		case 7:
			t += 40 + int64(r.next()%200) // idle gap spanning windows
		default:
			t++
		}
	}
	return out
}

// testQueries covers all three granularities plus contiguous
// semantics (the wants-all path) and a windowless-partition case.
func testQueries() []*query.Query {
	return []*query.Query{
		// Type-grained: ANY without adjacent predicates.
		query.NewBuilder(pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
			Semantics(query.Any).
			Within(64, 32).
			MustBuild(),
		// Type-grained with binding slots and grouping.
		query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "acct"}).
			GroupBy(query.GroupKey{Attr: "acct"}).
			Within(128, 128).
			MustBuild(),
		// Mixed-grained: adjacent predicate forces stored events.
		query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Max, Alias: "M", Attr: "rate"}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "patient"}).
			WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
			GroupBy(query.GroupKey{Attr: "patient"}).
			Within(64, 64).
			MustBuild(),
		// Pattern-grained, skip-till-next-match.
		query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Next).
			WhereEquiv(predicate.Equivalence{Attr: "patient"}).
			WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Le, Right: "M", RightAttr: "rate"}).
			GroupBy(query.GroupKey{Attr: "patient"}).
			Within(96, 48).
			MustBuild(),
		// Pattern-grained, contiguous: X noise events reset the chain,
		// so this query must observe every event (wants-all routing).
		query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Cont).
			WhereEquiv(predicate.Equivalence{Attr: "patient"}).
			GroupBy(query.GroupKey{Attr: "patient"}).
			Within(64, 64).
			MustBuild(),
	}
}

// TestRuntimeMatchesIndependentEngines is the differential guarantee
// of the shared runtime: hosting N plans over one catalog and one
// resolve pass produces output byte-identical to N independent
// engines, each resolving and filtering the full stream on its own —
// across all three granularities and the contiguous wants-all path.
func TestRuntimeMatchesIndependentEngines(t *testing.T) {
	events := mixedStream(4000)
	queries := testQueries()

	rt := New()
	var subs []*Subscription
	for qi, q := range queries {
		s, err := rt.Subscribe(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		subs = append(subs, s)
	}
	if err := rt.ProcessAll(events); err != nil {
		t.Fatal(err)
	}
	shared := rt.Close()

	for qi, q := range queries {
		plan, err := core.NewPlan(q) // private catalog, like a solo run
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		eng := core.NewEngine(plan)
		if err := eng.ProcessAll(events); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		independent := eng.Close()
		if got, want := fmt.Sprintf("%v", shared[qi]), fmt.Sprintf("%v", independent); got != want {
			t.Errorf("query %d (%v): shared runtime diverges from independent engine\nshared:      %s\nindependent: %s",
				qi, plan.Granularity, got, want)
		}
		if len(independent) == 0 {
			t.Errorf("query %d produced no results; differential test is vacuous", qi)
		}
		if subs[qi].ID() != qi {
			t.Errorf("subscription %d has id %d", qi, subs[qi].ID())
		}
	}
}

// TestRuntimeCallbacksAndErrors covers the per-query callback path,
// out-of-order rejection and post-Close usage.
func TestRuntimeCallbacksAndErrors(t *testing.T) {
	rt := New()
	var streamed []core.Result
	q := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(10, 10).
		MustBuild()
	sub, err := rt.Subscribe(q, core.WithResultCallback(func(r core.Result) { streamed = append(streamed, r) }))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []*event.Event{
		event.New("A", 1), event.New("A", 2), event.New("B", 3),
		event.New("Z", 15), // foreign type still advances the watermark
	} {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if len(streamed) != 1 {
		t.Fatalf("callback saw %d results before close, want 1 (watermark-driven emission)", len(streamed))
	}
	if err := rt.Process(event.New("A", 4)); err == nil {
		t.Error("out-of-order event accepted")
	}
	if sub.Plan().Granularity != core.TypeGrained {
		t.Errorf("granularity = %v", sub.Plan().Granularity)
	}
	rt.Close()
	if err := rt.Process(event.New("A", 99)); err == nil {
		t.Error("Process after Close accepted")
	}
	if _, err := rt.Subscribe(q); err == nil {
		t.Error("Subscribe after Close accepted")
	}
	if got := len(streamed); got != 1 {
		t.Fatalf("callback results = %d, want 1", got)
	}
	if streamed[0].Values[0].Count != 3 { // trends: A1B, A2B, A1A2B
		t.Errorf("COUNT(*) = %v, want 3", streamed[0].Values[0].Count)
	}
}

// TestRuntimeForeignCatalogPlan rejects hosting a plan compiled
// against a different catalog (its ids would index the wrong arrays).
func TestRuntimeForeignCatalogPlan(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(10, 10).
		MustBuild()
	foreign, err := core.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	rt := New()
	if _, err := rt.SubscribePlan(foreign); err == nil {
		t.Error("foreign-catalog plan accepted")
	}
}

// TestRuntimeUnsubscribeReleasesInternMemory: unsubscribing the last
// query referencing a high-cardinality equivalence attribute flushes
// its windows and returns its engine-side binding intern memory to the
// accountant — the engine-lifetime tables otherwise grow forever.
func TestRuntimeUnsubscribeReleasesInternMemory(t *testing.T) {
	// Alias-scoped equivalence: every distinct tag value lands in the
	// engine's binding intern tables.
	hot := query.NewBuilder(pattern.Plus(pattern.TypeAs("A", "A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "tag"}).
		Within(1000, 1000).
		MustBuild()
	cold := query.NewBuilder(pattern.Plus(pattern.TypeAs("A", "A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(1000, 1000).
		MustBuild()

	rt := New()
	var acct metrics.Accountant
	hotSub, err := rt.Subscribe(hot, core.WithAccountant(&acct))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Subscribe(cold, core.WithAccountant(&acct)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		ev := event.New("A", int64(i)).WithSym("tag", fmt.Sprintf("tag-%d", i))
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	intern := rt.InternBytes()
	if intern <= 0 {
		t.Fatal("high-cardinality equivalence attribute interned nothing")
	}
	if got := rt.Stats().BindingInternBytes; got != intern {
		t.Errorf("Stats.BindingInternBytes = %d, want %d", got, intern)
	}
	before := acct.Current()

	res, err := hotSub.Unsubscribe()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("unsubscribe flushed no windows")
	}
	if got := rt.InternBytes(); got != 0 {
		t.Errorf("intern bytes after unsubscribe = %d, want 0 (cold query has no slots)", got)
	}
	if drop := before - acct.Current(); drop < intern {
		t.Errorf("accountant released %d bytes, want at least the %d intern bytes", drop, intern)
	}
	if hotSub.Active() {
		t.Error("subscription still active")
	}
	if _, err := hotSub.Unsubscribe(); err == nil {
		t.Error("double unsubscribe accepted")
	}
	if rt.Stats().Queries != 1 {
		t.Errorf("queries = %d, want 1", rt.Stats().Queries)
	}
	// The surviving query keeps processing.
	if err := rt.Process(event.New("A", 2000)); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeMidStreamSubscribeAligns: a mid-stream subscriber starts
// at the first fully covered window; its results over the suffix are
// byte-identical to a solo engine fed the suffix with partial windows
// filtered out.
func TestRuntimeMidStreamSubscribeAligns(t *testing.T) {
	events := mixedStream(3000)
	queries := testQueries()
	k := len(events) / 3
	joinTime := events[k-1].Time

	rt := New()
	if _, err := rt.Subscribe(queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := rt.ProcessAll(events[:k]); err != nil {
		t.Fatal(err)
	}
	var late []*Subscription
	for _, q := range queries[1:] {
		s, err := rt.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		late = append(late, s)
	}
	if err := rt.ProcessAll(events[k:]); err != nil {
		t.Fatal(err)
	}
	shared := rt.Close()

	for i, q := range queries[1:] {
		eng := core.NewEngine(core.MustPlan(q))
		if err := eng.ProcessAll(events[k:]); err != nil {
			t.Fatal(err)
		}
		var want []core.Result
		for _, r := range eng.Close() {
			if r.Start > joinTime {
				want = append(want, r)
			}
		}
		got := shared[late[i].ID()]
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Errorf("late query %d diverges from filtered suffix solo run\ngot:  %v\nwant: %v", i+1, got, want)
		}
		if len(want) == 0 {
			t.Errorf("late query %d produced no results; test is vacuous", i+1)
		}
	}
}

// TestRuntimeRejectsMembershipChangeFromCallback: result callbacks
// fire inside Process while it ranges over the subscription list, so
// Subscribe/Unsubscribe from a callback must be rejected, not corrupt
// dispatch.
func TestRuntimeRejectsMembershipChangeFromCallback(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(10, 10).
		MustBuild()
	rt := New()
	var sub *Subscription
	var subErr, unsubErr error
	fired := false
	sub, err := rt.Subscribe(q, core.WithResultCallback(func(core.Result) {
		fired = true
		_, unsubErr = sub.Unsubscribe()
		_, subErr = rt.Subscribe(q)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(event.New("A", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(event.New("A", 25)); err != nil { // closes window [0,10)
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("callback never fired; test is vacuous")
	}
	if unsubErr == nil {
		t.Error("Unsubscribe from a result callback accepted")
	}
	if subErr == nil {
		t.Error("Subscribe from a result callback accepted")
	}
	// The runtime stays usable and the deferred change works now.
	if _, err := sub.Unsubscribe(); err != nil {
		t.Errorf("deferred Unsubscribe failed: %v", err)
	}
}

// TestRuntimeProcessBatchMatchesProcess: the native batch path is a
// pure prologue hoist — results, stats and the mid-batch callback
// guard are identical to per-event Process.
func TestRuntimeProcessBatchMatchesProcess(t *testing.T) {
	events := mixedStream(3000)
	queries := testQueries()

	perEvent := New()
	batched := New()
	var perSubs, batchSubs []*Subscription
	for _, q := range queries {
		s1, err := perEvent.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := batched.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		perSubs, batchSubs = append(perSubs, s1), append(batchSubs, s2)
	}
	for _, ev := range events {
		if err := perEvent.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Uneven batch sizes, including empty ones.
	for i := 0; i < len(events); {
		n := (i * 13) % 61
		if i+n > len(events) {
			n = len(events) - i
		}
		if err := batched.ProcessBatch(events[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
		if n == 0 {
			i++
			if err := batched.Process(events[i-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := perEvent.Close(), batched.Close()
	for i := range queries {
		got := fmt.Sprintf("%v", b[batchSubs[i].ID()])
		want := fmt.Sprintf("%v", a[perSubs[i].ID()])
		if got != want {
			t.Errorf("query %d: batch path diverges\ngot:  %s\nwant: %s", i, got, want)
		}
	}
}

// TestRuntimeTypedErrors: runtime failures wrap the core sentinels.
func TestRuntimeTypedErrors(t *testing.T) {
	q := testQueries()[0]
	rt := New()
	sub, err := rt.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(event.New("A", 5)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(event.New("A", 1)); !errors.Is(err, core.ErrLateEvent) {
		t.Errorf("out-of-order Process err = %v, want ErrLateEvent", err)
	}
	if err := rt.ProcessBatch([]*event.Event{event.New("A", 1)}); !errors.Is(err, core.ErrLateEvent) {
		t.Errorf("out-of-order ProcessBatch err = %v, want ErrLateEvent", err)
	}
	if _, err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Unsubscribe(); !errors.Is(err, core.ErrNotHosted) {
		t.Errorf("double Unsubscribe err = %v, want ErrNotHosted", err)
	}
	rt.Close()
	if err := rt.Process(event.New("A", 9)); !errors.Is(err, core.ErrClosed) {
		t.Errorf("Process after Close err = %v, want ErrClosed", err)
	}
	if _, err := rt.Subscribe(q); !errors.Is(err, core.ErrClosed) {
		t.Errorf("Subscribe after Close err = %v, want ErrClosed", err)
	}
}
