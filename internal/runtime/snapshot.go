package runtime

// Checkpoint codec for the single-threaded runtime: stream position
// plus every subscription's engine state. Plans are NOT serialized
// here — the session layer snapshots queries and recompiles them
// against the restored catalog; this codec records only which plan
// index each subscription uses.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/snap"
)

// Snapshot writes the runtime's execution state. planIdxByID maps a
// subscription id to the index of its plan in the session-level plan
// table; it is keyed by id rather than plan pointer because one plan
// can legitimately host several subscriptions.
func (rt *Runtime) Snapshot(w *snap.Writer, planIdxByID map[int]int32) error {
	w.I64(rt.lastTime)
	w.Bool(rt.sawEvent)
	w.I64(rt.seq)
	w.Int(rt.nextID)
	w.U32(uint32(len(rt.subs)))
	for _, s := range rt.subs {
		pi, ok := planIdxByID[s.id]
		if !ok {
			return fmt.Errorf("runtime snapshot: subscription %d has no plan index", s.id)
		}
		w.Int(s.id)
		w.U32(uint32(pi))
		s.eng.Snapshot(w)
	}
	return nil
}

// RestoreRuntime rebuilds a runtime from Snapshot on a restored
// catalog. plans holds the recompiled plans indexed as during
// Snapshot; engOpts yields the engine options for a subscription using
// plan index pi (the caller wires accountants and eviction there). The
// catalog reference counts are rebuilt by re-retaining each hosted
// plan, mirroring live subscribe.
func RestoreRuntime(cat *core.Catalog, r *snap.Reader, plans []*core.Plan, engOpts func(pi int) []core.Option) (*Runtime, error) {
	rt := NewOn(cat)
	rt.lastTime = r.I64()
	rt.sawEvent = r.Bool()
	rt.seq = r.I64()
	nextID := r.Int()
	n := r.Count(20)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		id := r.Int()
		pi := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if id < 0 || id >= nextID || seen[id] {
			return nil, fmt.Errorf("%w: runtime subscription id %d out of range or repeated", snap.ErrBadSnapshot, id)
		}
		if pi < 0 || pi >= len(plans) || plans[pi] == nil {
			return nil, fmt.Errorf("%w: runtime subscription %d references plan %d of %d", snap.ErrBadSnapshot, id, pi, len(plans))
		}
		seen[id] = true
		plan := plans[pi]
		if err := cat.Retain(plan); err != nil {
			// The plan was recompiled against this very catalog moments
			// ago; a failed retain means the snapshot is inconsistent.
			return nil, fmt.Errorf("%w: retaining plan for subscription %d: %v", snap.ErrBadSnapshot, id, err)
		}
		eng := core.NewEngine(plan, engOpts(pi)...)
		if err := eng.RestoreState(r); err != nil {
			cat.Release(plan)
			return nil, err
		}
		s := &Subscription{id: id, plan: plan, eng: eng, rt: rt, active: true}
		rt.subs = append(rt.subs, s)
		rt.index(s)
	}
	rt.nextID = nextID
	return rt, nil
}

// Lookup returns the live subscription with the given id, or nil.
func (rt *Runtime) Lookup(id int) *Subscription {
	for _, s := range rt.subs {
		if s.id == id {
			return s
		}
	}
	return nil
}
