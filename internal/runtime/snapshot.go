package runtime

// Checkpoint codec for the single-threaded runtime: stream position
// plus every subscription's engine state. Plans are NOT serialized
// here — the session layer snapshots queries and recompiles them
// against the restored catalog; this codec records only which plan
// index each subscription uses.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/snap"
)

// Snapshot writes the runtime's execution state. planIdxByID maps a
// subscription id to the index of its plan in the session-level plan
// table; it is keyed by id rather than plan pointer because one plan
// can legitimately host several subscriptions.
func (rt *Runtime) Snapshot(w *snap.Writer, planIdxByID map[int]int32) error {
	w.I64(rt.lastTime)
	w.Bool(rt.sawEvent)
	w.I64(rt.seq)
	w.Int(rt.nextID)
	w.U32(uint32(len(rt.subs)))
	for _, s := range rt.subs {
		pi, ok := planIdxByID[s.id]
		if !ok {
			return fmt.Errorf("runtime snapshot: subscription %d has no plan index", s.id)
		}
		w.Int(s.id)
		w.U32(uint32(pi))
		s.eng.Snapshot(w)
	}
	// Sharing-group section: membership, flip state, the per-epoch
	// monitor, and — when a host exists — its union query (restore
	// recompiles it; the union is not in the session plan table) and
	// engine state. Written in groupList order so restored decision
	// replay stays deterministic.
	w.Bool(rt.sharedOn)
	if rt.sharedOn {
		w.U32(uint32(len(rt.groupList)))
		for _, g := range rt.groupList {
			w.U8(uint8(g.mode))
			w.Bool(g.wantRefresh)
			w.Bool(g.poisoned)
			w.I64(g.lastEpoch)
			w.Bool(g.epochValid)
			w.I64(g.probeBase)
			w.I64(g.hostBase)
			w.U32(uint32(len(g.members)))
			for _, m := range g.members {
				w.Int(m.sub.id)
				w.U8(uint8(m.mode))
				w.Bool(m.served)
				w.I64(m.from)
			}
			w.Bool(g.host != nil)
			if g.host != nil {
				w.Bool(g.hostRetiring)
				if err := g.host.plan.Query.Snapshot(w); err != nil {
					return err
				}
				g.host.eng.Snapshot(w)
			}
		}
		w.I64(rt.shareFlips)
		w.I64(rt.sharedSavedOps)
	}
	return nil
}

// RestoreRuntime rebuilds a runtime from Snapshot on a restored
// catalog. plans holds the recompiled plans indexed as during
// Snapshot; engOpts yields the engine options for a subscription using
// plan index pi (the caller wires accountants and eviction there). The
// catalog reference counts are rebuilt by re-retaining each hosted
// plan, mirroring live subscribe. When the snapshot carries sharing
// groups, engOpts(-1) supplies the base options for group host
// engines — session-wide accounting and eviction without any
// per-subscription result callback (the host's callback is the
// group-owned fan-out).
func RestoreRuntime(cat *core.Catalog, r *snap.Reader, plans []*core.Plan, engOpts func(pi int) []core.Option) (*Runtime, error) {
	rt := NewOn(cat)
	rt.lastTime = r.I64()
	rt.sawEvent = r.Bool()
	rt.seq = r.I64()
	nextID := r.Int()
	n := r.Count(20)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		id := r.Int()
		pi := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if id < 0 || id >= nextID || seen[id] {
			return nil, fmt.Errorf("%w: runtime subscription id %d out of range or repeated", snap.ErrBadSnapshot, id)
		}
		if pi < 0 || pi >= len(plans) || plans[pi] == nil {
			return nil, fmt.Errorf("%w: runtime subscription %d references plan %d of %d", snap.ErrBadSnapshot, id, pi, len(plans))
		}
		seen[id] = true
		plan := plans[pi]
		if err := cat.Retain(plan); err != nil {
			// The plan was recompiled against this very catalog moments
			// ago; a failed retain means the snapshot is inconsistent.
			return nil, fmt.Errorf("%w: retaining plan for subscription %d: %v", snap.ErrBadSnapshot, id, err)
		}
		eng := core.NewEngine(plan, engOpts(pi)...)
		if err := eng.RestoreState(r); err != nil {
			cat.Release(plan)
			return nil, err
		}
		s := &Subscription{id: id, plan: plan, eng: eng, rt: rt, active: true}
		rt.subs = append(rt.subs, s)
		rt.index(s)
	}
	rt.nextID = nextID
	if r.Bool() {
		if err := restoreGroups(rt, r, engOpts); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return rt, nil
}

// restoreGroups loads the sharing-group section: the runtime is
// re-enabled for shared aggregation, each group's membership and flip
// state are re-linked to the restored subscriptions, and host engines
// are recompiled from their serialized union queries and restored.
// Member projections are recomputed from the union rather than
// serialized — the union's column order is the host query's RETURN
// order, which the snapshot pins.
func restoreGroups(rt *Runtime, r *snap.Reader, engOpts func(pi int) []core.Option) error {
	rt.EnableSharedAggregation(engOpts(-1)...)
	ng := r.Count(16)
	for i := 0; i < ng; i++ {
		g := &shareGroup{rt: rt}
		g.mode = groupMode(r.U8())
		if r.Err() == nil && g.mode > groupUnsharing {
			return fmt.Errorf("%w: sharing group %d mode %d", snap.ErrBadSnapshot, i, g.mode)
		}
		g.wantRefresh = r.Bool()
		g.poisoned = r.Bool()
		g.lastEpoch = r.I64()
		g.epochValid = r.Bool()
		g.probeBase = r.I64()
		g.hostBase = r.I64()
		nm := r.Count(11)
		if r.Err() == nil && nm == 0 {
			return fmt.Errorf("%w: sharing group %d has no members", snap.ErrBadSnapshot, i)
		}
		for j := 0; j < nm; j++ {
			id := r.Int()
			mode := memberMode(r.U8())
			served := r.Bool()
			from := r.I64()
			if err := r.Err(); err != nil {
				return err
			}
			if mode > memberShared {
				return fmt.Errorf("%w: sharing group %d member mode %d", snap.ErrBadSnapshot, i, mode)
			}
			s := rt.Lookup(id)
			if s == nil {
				return fmt.Errorf("%w: sharing group %d references unknown subscription %d", snap.ErrBadSnapshot, i, id)
			}
			if s.gm != nil {
				return fmt.Errorf("%w: subscription %d belongs to two sharing groups", snap.ErrBadSnapshot, id)
			}
			m := &groupMember{sub: s, mode: mode, served: served, from: from}
			g.members = append(g.members, m)
			s.group, s.gm = g, m
		}
		g.key = g.members[0].sub.plan.Fingerprint()
		g.win = g.members[0].sub.plan.Query.Window
		if r.Bool() {
			g.hostRetiring = r.Bool()
			uq, err := query.RestoreQuery(r)
			if err != nil {
				return err
			}
			plan, err := core.NewPlanIn(rt.cat, uq)
			if err != nil {
				return fmt.Errorf("%w: recompiling sharing-group union query: %v", snap.ErrBadSnapshot, err)
			}
			if err := rt.cat.Retain(plan); err != nil {
				rt.cat.DiscardPlan(plan)
				return fmt.Errorf("%w: retaining sharing-group union plan: %v", snap.ErrBadSnapshot, err)
			}
			opts := append(append([]core.Option(nil), rt.hostOpts...), core.WithResultCallback(g.fanout))
			g.host = &Subscription{id: -1, plan: plan, eng: core.NewEngine(plan, opts...), rt: rt, active: true}
			if err := g.host.eng.RestoreState(r); err != nil {
				return err
			}
			g.union = core.NewSpecUnion()
			g.union.Add(plan.Specs)
			for _, m := range g.members {
				if !m.served {
					continue
				}
				proj, ok := g.union.Project(m.sub.plan.Specs)
				if !ok {
					return fmt.Errorf("%w: sharing group %d union does not cover subscription %d", snap.ErrBadSnapshot, i, m.sub.id)
				}
				m.proj = proj
			}
		} else if g.mode == groupSharing || g.mode == groupShared || g.mode == groupUnsharing {
			return fmt.Errorf("%w: sharing group %d in mode %d without a host", snap.ErrBadSnapshot, i, g.mode)
		}
		if dup := rt.groups[g.key]; dup != nil {
			return fmt.Errorf("%w: two sharing groups share fingerprint", snap.ErrBadSnapshot)
		}
		rt.groups[g.key] = g
		rt.groupList = append(rt.groupList, g)
	}
	rt.shareFlips = r.I64()
	rt.sharedSavedOps = r.I64()
	rt.rebuildIndex()
	return r.Err()
}

// Lookup returns the live subscription with the given id, or nil.
func (rt *Runtime) Lookup(id int) *Subscription {
	for _, s := range rt.subs {
		if s.id == id {
			return s
		}
	}
	return nil
}
