// Package runtime executes many compiled COGRA plans over one event
// stream in a single pass: the shared multi-query runtime. Production
// trend aggregation runs hundreds of concurrent queries over the same
// stream; executed naively that costs N full passes — N symbol tables,
// N per-event attribute resolutions, N watermark checks — all
// redundant, because the per-event work up to sub-aggregation depends
// only on the stream, not on the query.
//
// The runtime eliminates the redundancy in three ways:
//
//   - Shared resolution. All hosted plans are compiled against one
//     core.Catalog, so they agree on dense type/attribute ids, and each
//     incoming event is resolved ONCE into a union attribute view
//     (core.Resolver). Every interested engine receives the same
//     resolved slots by reference.
//
//   - Per-type subscription index. Each plan declares the event types
//     it reacts to (pattern types plus negated types); the runtime
//     dispatches an event only to the engines subscribed to its type
//     id — a slice index, not a per-query check. Queries under
//     contiguous semantics observe every event (an unmatched event
//     resets their chain), so they register on the wants-all list.
//
//   - Single watermark. Stream time advances once per distinct time
//     stamp and drives every hosted window manager in one pass
//     (Engine.AdvanceWatermark), so windows close and emit even for
//     engines whose types the current event does not match.
//
// The query population is dynamic: Subscribe and Unsubscribe may be
// called at any stream position. The catalog interns copy-on-write
// (core.Catalog), so mid-stream compilation never invalidates resolved
// views; the per-type index is rebuilt on membership change; a
// late-joining query's window manager is aligned to the current
// watermark, so it reports results starting from the first fully
// covered window; and an unsubscribing query's windows are flushed and
// its engine-side intern memory released.
//
// The runtime is single-threaded like the engines it hosts; partition
// parallelism runs one runtime per worker (internal/stream).
package runtime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
)

// Subscription is one hosted query: its plan, its engine, and its
// position in the runtime.
type Subscription struct {
	id     int
	plan   *core.Plan
	eng    *core.Engine
	rt     *Runtime
	active bool
	// group/gm link the subscription to its sharing group when shared
	// aggregation is enabled (sharing.go); nil otherwise. A group host
	// is itself a Subscription with id -1, never part of rt.subs.
	group *shareGroup
	gm    *groupMember
}

// ID returns the subscription's id: 0-based, in Subscribe order,
// stable across later membership changes.
func (s *Subscription) ID() int { return s.id }

// Plan returns the compiled plan of the hosted query.
func (s *Subscription) Plan() *core.Plan { return s.plan }

// Engine returns the hosted engine (for accounting or inspection; do
// not feed it events directly while the runtime owns it).
func (s *Subscription) Engine() *core.Engine { return s.eng }

// Results returns the results the hosted engine has collected so far
// (nil when the subscription streams through a result callback).
func (s *Subscription) Results() []core.Result { return s.eng.Results() }

// Drain returns the results collected since the last Drain and clears
// the engine's buffer (nil when the subscription streams through a
// result callback). Windows still open are not included — they emit
// when the watermark passes them.
func (s *Subscription) Drain() []core.Result { return s.eng.TakeResults() }

// Active reports whether the subscription still receives events.
func (s *Subscription) Active() bool { return s.active }

// Unsubscribe detaches the query from the runtime at the current
// stream position: its remaining open windows are flushed (returned,
// or delivered to the subscription's result callback), its engine is
// released, and its binding intern memory is returned to the
// accountant. The rest of the fleet is untouched. Unsubscribing twice
// or after Close is an error.
func (s *Subscription) Unsubscribe() ([]core.Result, error) {
	return s.rt.unsubscribe(s)
}

// Runtime hosts any number of compiled plans over one catalog and
// executes them against a single in-order event stream. Not safe for
// concurrent use.
type Runtime struct {
	cat *core.Catalog
	res *core.Resolver

	subs   []*Subscription // active subscriptions, in subscribe order
	nextID int
	// byType[tid] lists the subscriptions whose plans react to catalog
	// type id tid; wantsAll lists contiguous-semantics subscriptions,
	// which must observe every event. Rebuilt on membership change.
	byType   [][]*Subscription
	wantsAll []*Subscription
	// The batch-execution split of byType: runByType holds the
	// run-safe subscriptions (execution independent of equal-time
	// arrival order — see Plan.OrderSensitive), seqByType the
	// order-sensitive rest, and neededAttrs the per-type union of every
	// attribute id the run-safe subscriptions read, which restricts
	// batch resolution to the slots some hosted plan needs. All three
	// are maintained alongside byType on membership change.
	runByType   [][]*Subscription
	seqByType   [][]*Subscription
	neededAttrs [][]int32

	lastTime    int64
	sawEvent    bool
	seq         int64
	closed      bool
	dispatching bool // inside Process: membership changes must wait

	// Shared-aggregation state (sharing.go): the sharing groups keyed
	// by plan fingerprint, plus a deterministic iteration order —
	// share/unshare decisions must replay identically across runs.
	sharedOn       bool
	hostOpts       []core.Option
	groups         map[string]*shareGroup
	groupList      []*shareGroup
	shareFlips     int64
	sharedSavedOps int64

	// Batch scratch, reused across chunks so the steady-state batch
	// path does not allocate: per-event type ids, the per-type run
	// buckets with their first-touch order, and the shared resolved-run
	// view.
	tids    []int32
	buckets [][]*event.Event
	touched []int32
	run     core.ResolvedRun
}

// New returns an empty runtime over a fresh catalog.
func New() *Runtime {
	return NewOn(core.NewCatalog())
}

// NewOn returns an empty runtime over an existing catalog, for hosting
// plans that were compiled elsewhere (core.NewPlanIn). Several
// runtimes may share one catalog — the partition-parallel executor
// runs one per worker.
func NewOn(cat *core.Catalog) *Runtime {
	return &Runtime{cat: cat, res: core.NewResolver(cat)}
}

// Catalog returns the runtime's catalog, for compiling further plans
// against it.
func (rt *Runtime) Catalog() *core.Catalog { return rt.cat }

// Subscribe compiles a query against the runtime's catalog and hosts
// it. Engine options (result callbacks, accounting) apply to the
// query's private engine. Subscribing is allowed at any stream
// position — the catalog interns copy-on-write, so compilation is
// safe even while other runtimes share the catalog; a mid-stream
// subscriber is aligned to the current watermark and reports results
// from the first fully covered window.
func (rt *Runtime) Subscribe(q *query.Query, opts ...core.Option) (*Subscription, error) {
	plan, err := core.NewPlanIn(rt.cat, q)
	if err != nil {
		return nil, err
	}
	s, err := rt.SubscribePlan(plan, opts...)
	if err != nil {
		// Compiled here, never hosted: retire its unreferenced symbols
		// so failed subscribes do not leak catalog id space.
		rt.cat.DiscardPlan(plan)
		return nil, err
	}
	return s, nil
}

// SubscribePlan hosts an already-compiled plan. The plan must have
// been compiled against the runtime's catalog. Mid-stream, the new
// engine is aligned to the runtime's own watermark; use
// SubscribePlanFrom when a global stream position is known upstream
// (the partition-parallel executor's workers lag the router).
func (rt *Runtime) SubscribePlan(plan *core.Plan, opts ...core.Option) (*Subscription, error) {
	s, err := rt.subscribePlan(plan, opts...)
	if err != nil {
		return nil, err
	}
	if rt.sawEvent {
		s.eng.AlignTo(rt.lastTime)
	}
	if rt.sharedOn && rt.groupJoin(s, rt.lastTime, rt.sawEvent) {
		rt.rebuildIndex()
	}
	return s, nil
}

// SubscribePlanFrom is SubscribePlan aligning the new engine to
// watermark t: the stream may already have advanced to time t even if
// this runtime has not seen an event that recent (its partition was
// quiet). Results start from the first window fully after t.
func (rt *Runtime) SubscribePlanFrom(plan *core.Plan, t int64, opts ...core.Option) (*Subscription, error) {
	s, err := rt.subscribePlan(plan, opts...)
	if err != nil {
		return nil, err
	}
	if rt.sawEvent && rt.lastTime > t {
		t = rt.lastTime
	}
	s.eng.AlignTo(t)
	if rt.sharedOn && rt.groupJoin(s, t, true) {
		rt.rebuildIndex()
	}
	return s, nil
}

func (rt *Runtime) subscribePlan(plan *core.Plan, opts ...core.Option) (*Subscription, error) {
	if rt.closed {
		return nil, fmt.Errorf("runtime: Subscribe after Close: %w", core.ErrClosed)
	}
	if rt.dispatching {
		return nil, fmt.Errorf("runtime: Subscribe from within event dispatch (e.g. a result callback); defer it until Process returns")
	}
	if plan.Catalog() != rt.cat {
		return nil, fmt.Errorf("runtime: plan compiled against a different catalog: %w", core.ErrNotHosted)
	}
	// Pin the plan's symbol ids against catalog compaction for the
	// lifetime of the hosting (released at unsubscribe). Fails when a
	// compaction retired one of them since the plan was compiled.
	if err := rt.cat.Retain(plan); err != nil {
		return nil, err
	}
	s := &Subscription{
		id:     rt.nextID,
		plan:   plan,
		eng:    core.NewEngine(plan, opts...),
		rt:     rt,
		active: true,
	}
	rt.nextID++
	rt.subs = append(rt.subs, s)
	rt.index(s)
	return s, nil
}

// index registers a subscription in the per-type dispatch index and
// the batch-execution split (run-safe vs order-sensitive, plus the
// per-type needed-attribute union).
func (rt *Runtime) index(s *Subscription) {
	if s.plan.WantsAllEvents() {
		rt.wantsAll = append(rt.wantsAll, s)
		return
	}
	ordered := s.plan.OrderSensitive()
	for _, tid := range s.plan.SubscribedTypeIDs() {
		for int(tid) >= len(rt.byType) {
			rt.byType = append(rt.byType, nil)
			rt.runByType = append(rt.runByType, nil)
			rt.seqByType = append(rt.seqByType, nil)
			rt.neededAttrs = append(rt.neededAttrs, nil)
		}
		rt.byType[tid] = append(rt.byType[tid], s)
		if ordered {
			rt.seqByType[tid] = append(rt.seqByType[tid], s)
		} else {
			rt.runByType[tid] = append(rt.runByType[tid], s)
			rt.neededAttrs[tid] = mergeAttrIDs(rt.neededAttrs[tid], s.plan.ReferencedAttrIDs())
		}
	}
}

// mergeAttrIDs folds add into dst keeping it sorted and unique — the
// membership-change slow path, sized in tens of attributes.
func mergeAttrIDs(dst []int32, add []int32) []int32 {
	for _, id := range add {
		pos := len(dst)
		dup := false
		for i, d := range dst {
			if d == id {
				dup = true
				break
			}
			if d > id {
				pos = i
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, 0)
		copy(dst[pos+1:], dst[pos:])
		dst[pos] = id
	}
	return dst
}

// rebuildIndex reconstructs the per-type index from the active
// subscriptions — the membership-change slow path; the per-event path
// never pays for it.
func (rt *Runtime) rebuildIndex() {
	for i := range rt.byType {
		rt.byType[i] = nil
		rt.runByType[i] = nil
		rt.seqByType[i] = nil
		rt.neededAttrs[i] = nil
	}
	rt.wantsAll = nil
	for _, s := range rt.subs {
		if s.gm != nil && s.gm.mode == memberShared {
			continue // served by its group's host; no event dispatch
		}
		rt.index(s)
	}
	for _, g := range rt.groupList {
		if g.host != nil {
			// Live and retiring hosts both receive events: a retiring
			// host still owns the open windows below its ceiling.
			rt.index(g.host)
		}
	}
}

// unsubscribe detaches s; see Subscription.Unsubscribe.
func (rt *Runtime) unsubscribe(s *Subscription) ([]core.Result, error) {
	if rt.closed {
		return nil, fmt.Errorf("runtime: Unsubscribe after Close: %w", core.ErrClosed)
	}
	if rt.dispatching {
		// Process is ranging over the subscription list right now (the
		// call came from a result callback); splicing it here would
		// skip a sibling's watermark advance and re-enter this engine's
		// window manager mid-emission.
		return nil, fmt.Errorf("runtime: Unsubscribe from within event dispatch (e.g. a result callback); defer it until Process returns")
	}
	if !s.active {
		return nil, fmt.Errorf("runtime: subscription %d already unsubscribed: %w", s.id, core.ErrNotHosted)
	}
	s.active = false
	for i, cur := range rt.subs {
		if cur == s {
			rt.subs = append(rt.subs[:i], rt.subs[i+1:]...)
			break
		}
	}
	var out []core.Result
	if s.gm != nil {
		var err error
		if out, err = rt.groupLeave(s); err != nil {
			return nil, err
		}
	} else {
		out = s.eng.Close()
	}
	rt.rebuildIndex()
	s.eng.ReleaseIntern()
	// Drop this hosting's symbol references; ids only this plan used
	// are retired and the catalog publishes a compacted view. The
	// engine and the per-type index no longer mention the plan, so a
	// recycled id can never reach its dispatch tables.
	rt.cat.Release(s.plan)
	return out, nil
}

// Queries returns the active subscriptions in Subscribe order.
func (rt *Runtime) Queries() []*Subscription { return rt.subs }

// Stats summarises the runtime's hosted state.
type Stats struct {
	// Queries is the number of active subscriptions.
	Queries int
	// Events is the number of events processed.
	Events int64
	// InternedTypes and InternedAttrs are the catalog id-space sizes.
	InternedTypes int
	InternedAttrs int
	// BindingInternBytes is the summed live footprint of the hosted
	// engines' binding intern tables.
	BindingInternBytes int64
	// Watermark is the time stamp of the last dispatched event;
	// WatermarkValid is false before the first event.
	Watermark      int64
	WatermarkValid bool
	// SharedGroups counts sharing groups currently backed by a host
	// engine (shared execution, or a flip in flight); ShareFlips counts
	// share/unshare decisions taken; SharedSavedOps estimates the
	// member-engine event aggregations the hosts absorbed (host events
	// × served members beyond the first). All zero when shared
	// aggregation is disabled.
	SharedGroups   int
	ShareFlips     int64
	SharedSavedOps int64
}

// Stats reports the runtime's hosted-query and interning state.
func (rt *Runtime) Stats() Stats {
	active := 0
	for _, s := range rt.subs {
		if s.active {
			active++
		}
	}
	hosted := 0
	saved := rt.sharedSavedOps
	for _, g := range rt.groupList {
		if g.host != nil {
			hosted++
			if served := g.servedCount(); served > 1 {
				// Fold in the not-yet-accounted host volume so Stats
				// reflects savings accrued mid-epoch.
				saved += (g.host.eng.EventsProcessed() - g.hostBase) * int64(served-1)
			}
		}
	}
	return Stats{
		Queries:            active,
		Events:             rt.seq,
		InternedTypes:      rt.cat.NumTypes(),
		InternedAttrs:      rt.cat.NumAttrs(),
		BindingInternBytes: rt.InternBytes(),
		Watermark:          rt.lastTime,
		WatermarkValid:     rt.sawEvent,
		SharedGroups:       hosted,
		ShareFlips:         rt.shareFlips,
		SharedSavedOps:     saved,
	}
}

// InternBytes returns the summed live footprint of the hosted engines'
// binding intern tables.
func (rt *Runtime) InternBytes() int64 {
	var total int64
	for _, s := range rt.subs {
		total += s.eng.InternBytes()
	}
	for _, g := range rt.groupList {
		if g.host != nil {
			total += g.host.eng.InternBytes()
		}
	}
	return total
}

// Process consumes the next stream event for every hosted query.
// Events must arrive in non-decreasing time-stamp order. Result
// callbacks fire inside Process; they must not call Subscribe or
// Unsubscribe (those return an error) — defer membership changes
// until Process returns.
func (rt *Runtime) Process(ev *event.Event) error {
	if rt.closed {
		return fmt.Errorf("runtime: Process after Close: %w", core.ErrClosed)
	}
	rt.dispatching = true
	defer func() { rt.dispatching = false }()
	return rt.dispatch(ev)
}

// runChunkSize bounds how many events one run-building pass buckets at
// a time, keeping the scratch arrays cache-resident; it matches the
// parallel router's batch granularity.
const runChunkSize = 256

// ProcessBatch consumes a pre-sorted batch natively — the primary
// ingest path under Session.PushBatch. Unlike Process, the batch is
// the unit of execution, not just of transport: each 256-event chunk
// is order-validated and arrival-stamped in one prescan, split into
// equal-timestamp groups (one watermark pass each), and every group is
// bucketed by interned type id into runs. A run is resolved once into
// a struct-of-arrays view restricted to the attributes its subscribed
// plans read, and executed with one hoisted per-run prologue per
// engine (Engine.ProcessResolvedRun). Order-sensitive queries
// (pattern granularity, contiguous semantics) observe their events
// through the per-event path in arrival order — results are
// byte-identical to event-at-a-time execution either way. On an
// out-of-order event the in-order prefix is ingested and the error
// names the first offender, exactly like the per-event loop.
func (rt *Runtime) ProcessBatch(events []*event.Event) error {
	if rt.closed {
		return fmt.Errorf("runtime: Process after Close: %w", core.ErrClosed)
	}
	rt.dispatching = true
	defer func() { rt.dispatching = false }()
	for start := 0; start < len(events); start += runChunkSize {
		end := start + runChunkSize
		if end > len(events) {
			end = len(events)
		}
		if err := rt.dispatchChunk(events[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// dispatchChunk runs one chunk through the batch kernels: prescan
// (order validation + arrival-order id assignment, matching what the
// per-event loop would have stamped), then group-by-time dispatch of
// the in-order prefix.
func (rt *Runtime) dispatchChunk(chunk []*event.Event) error {
	good := len(chunk)
	last, saw := rt.lastTime, rt.sawEvent
	for i, ev := range chunk {
		if saw && ev.Time < last {
			good = i
			break
		}
		last, saw = ev.Time, true
		rt.seq++
		if ev.ID == 0 {
			ev.ID = rt.seq
		}
	}
	prefix := chunk[:good]
	for i := 0; i < len(prefix); {
		j := i + 1
		t := prefix[i].Time
		for j < len(prefix) && prefix[j].Time == t {
			j++
		}
		if err := rt.dispatchGroup(prefix[i:j]); err != nil {
			return err
		}
		i = j
	}
	if good < len(chunk) {
		return rt.lateEventErr(chunk[good].Time)
	}
	return nil
}

// dispatchGroup executes one equal-timestamp group: one watermark pass
// across the fleet, then type-bucketed runs for the run-safe
// subscriptions and an arrival-order pass for the order-sensitive
// ones. Within one timestamp the staged-commit discipline makes the
// split order-invariant (see Plan.OrderSensitive).
func (rt *Runtime) dispatchGroup(group []*event.Event) error {
	t := group[0].Time
	if !rt.sawEvent || t != rt.lastTime {
		if err := rt.advanceAll(t); err != nil {
			return err
		}
	}
	rt.lastTime, rt.sawEvent = t, true

	// Bucket by type id, preserving arrival order within each run and
	// first-touch order across runs. The type-id probe is the only
	// per-event map lookup left on this path.
	if cap(rt.tids) < len(group) {
		rt.tids = make([]int32, len(group))
	}
	tids := rt.tids[:len(group)]
	needSeq := len(rt.wantsAll) > 0
	for i, ev := range group {
		tid := int32(-1)
		if id, ok := rt.cat.TypeID(ev.Type); ok {
			tid = id
		}
		tids[i] = tid
		if tid < 0 || int(tid) >= len(rt.byType) {
			continue
		}
		if len(rt.seqByType[tid]) > 0 {
			needSeq = true
		}
		if len(rt.runByType[tid]) == 0 {
			continue
		}
		for len(rt.buckets) < len(rt.byType) {
			rt.buckets = append(rt.buckets, nil)
		}
		if len(rt.buckets[tid]) == 0 {
			rt.touched = append(rt.touched, tid)
		}
		rt.buckets[tid] = append(rt.buckets[tid], ev)
	}

	// Run pass: resolve once per run, one hoisted prologue per engine.
	var firstErr error
	for _, tid := range rt.touched {
		bucket := rt.buckets[tid]
		if firstErr == nil {
			rt.res.ResolveRun(&rt.run, bucket, tid, rt.neededAttrs[tid])
			for _, s := range rt.runByType[tid] {
				if err := s.eng.ProcessResolvedRun(&rt.run); err != nil {
					firstErr = err
					break
				}
			}
		}
		// Scrub the bucket even on the error path so a later group
		// never inherits stale events (or retains their memory).
		for k := range bucket {
			bucket[k] = nil
		}
		rt.buckets[tid] = bucket[:0]
	}
	rt.touched = rt.touched[:0]
	rt.run.Events = nil
	if firstErr != nil {
		return firstErr
	}
	if !needSeq {
		return nil
	}

	// Arrival-order pass for pattern-grained and contiguous-semantics
	// queries, which are sensitive to equal-time arrival order.
	for i, ev := range group {
		var interested []*Subscription
		if tid := tids[i]; tid >= 0 && int(tid) < len(rt.seqByType) {
			interested = rt.seqByType[tid]
		}
		if len(interested) == 0 && len(rt.wantsAll) == 0 {
			continue
		}
		tid := rt.res.Resolve(ev)
		for _, s := range interested {
			if err := s.eng.ProcessResolved(ev, rt.res, tid); err != nil {
				return err
			}
		}
		for _, s := range rt.wantsAll {
			if err := s.eng.ProcessResolved(ev, rt.res, tid); err != nil {
				return err
			}
		}
	}
	return nil
}

// advanceAll drives one stream watermark through every hosted engine,
// in two sweeps so sharing-group flips preserve result order: the
// retiring side of any in-flight flip advances first (its windows lie
// below the flip boundary and must emit before the incoming side
// reaches the boundary), then every live engine and group host. With
// no sharing groups this degenerates to the plain fleet-wide pass.
// Afterwards the sharing state machine steps: transitions whose
// retiring side just drained complete, and the per-epoch monitor may
// initiate new flips — all before the caller dispatches the events
// that exposed this watermark, so the index reads below see the
// post-flip membership.
func (rt *Runtime) advanceAll(t int64) error {
	for _, g := range rt.groupList {
		for _, m := range g.members {
			if m.mode == memberDraining {
				if err := m.sub.eng.AdvanceWatermark(t); err != nil {
					return err
				}
			}
		}
		if g.host != nil && g.hostRetiring {
			if err := g.host.eng.AdvanceWatermark(t); err != nil {
				return err
			}
		}
	}
	for _, s := range rt.subs {
		if s.gm != nil && s.gm.mode == memberDraining {
			continue // advanced in the retiring sweep
		}
		if err := s.eng.AdvanceWatermark(t); err != nil {
			return err
		}
	}
	for _, g := range rt.groupList {
		if g.host != nil && !g.hostRetiring {
			if err := g.host.eng.AdvanceWatermark(t); err != nil {
				return err
			}
		}
	}
	if len(rt.groupList) > 0 {
		rt.shareStep(t)
	}
	return nil
}

// dispatch is the per-event body shared by Process and ProcessBatch;
// the caller holds the dispatching guard. Error construction lives
// out of line (lateEventErr) to keep the hot path lean.
func (rt *Runtime) dispatch(ev *event.Event) error {
	if rt.sawEvent && ev.Time < rt.lastTime {
		return rt.lateEventErr(ev.Time)
	}
	rt.seq++
	if ev.ID == 0 {
		ev.ID = rt.seq
	}
	if !rt.sawEvent || ev.Time != rt.lastTime {
		// One watermark pass closes complete windows across every
		// hosted engine, including those the event's type won't reach.
		if err := rt.advanceAll(ev.Time); err != nil {
			return err
		}
	}
	rt.lastTime, rt.sawEvent = ev.Time, true

	var interested []*Subscription
	if id, ok := rt.cat.TypeID(ev.Type); ok && int(id) < len(rt.byType) {
		interested = rt.byType[id]
	}
	if len(interested) == 0 && len(rt.wantsAll) == 0 {
		return nil // no hosted query reacts to this type
	}
	// Resolve once; every interested engine reads the same view. The
	// tid returned here is from the same catalog epoch as the resolved
	// arrays, so dispatch and values always agree.
	tid := rt.res.Resolve(ev)
	for _, s := range interested {
		if err := s.eng.ProcessResolved(ev, rt.res, tid); err != nil {
			return err
		}
	}
	for _, s := range rt.wantsAll {
		if err := s.eng.ProcessResolved(ev, rt.res, tid); err != nil {
			return err
		}
	}
	return nil
}

// lateEventErr builds the out-of-order rejection — the cold path of
// dispatch.
func (rt *Runtime) lateEventErr(t int64) error {
	return fmt.Errorf("runtime: out-of-order event at time %d after %d: %w", t, rt.lastTime, core.ErrLateEvent)
}

// ProcessAll feeds a pre-sorted batch of events.
//
// Deprecated: use ProcessBatch, which pays the dispatch prologue once
// per batch instead of once per event.
func (rt *Runtime) ProcessAll(events []*event.Event) error {
	return rt.ProcessBatch(events)
}

// Close flushes every open window of every still-subscribed query and
// returns the collected results indexed by subscription id (nil
// entries for subscriptions that stream through callbacks or already
// unsubscribed — their results were returned at Unsubscribe time).
func (rt *Runtime) Close() [][]core.Result {
	rt.closed = true
	// Flush in flip order so each member's results stay in window
	// order: draining member engines own the windows below an in-flight
	// flip boundary and flush first; the group hosts flush next, fanning
	// their windows out through the member engines; the uniform pass
	// then re-Closes every engine (idempotent — nothing left to flush)
	// and collects the full buffers.
	for _, g := range rt.groupList {
		for _, m := range g.members {
			if m.mode == memberDraining {
				m.sub.eng.Close()
			}
		}
	}
	for _, g := range rt.groupList {
		if g.host != nil {
			g.releaseHost()
		}
	}
	out := make([][]core.Result, rt.nextID)
	for _, s := range rt.subs {
		out[s.id] = s.eng.Close()
		s.active = false
	}
	return out
}
