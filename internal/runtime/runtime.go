// Package runtime executes many compiled COGRA plans over one event
// stream in a single pass: the shared multi-query runtime. Production
// trend aggregation runs hundreds of concurrent queries over the same
// stream; executed naively that costs N full passes — N symbol tables,
// N per-event attribute resolutions, N watermark checks — all
// redundant, because the per-event work up to sub-aggregation depends
// only on the stream, not on the query.
//
// The runtime eliminates the redundancy in three ways:
//
//   - Shared resolution. All hosted plans are compiled against one
//     core.Catalog, so they agree on dense type/attribute ids, and each
//     incoming event is resolved ONCE into a union attribute view
//     (core.Resolver). Every interested engine receives the same
//     resolved slots by reference.
//
//   - Per-type subscription index. Each plan declares the event types
//     it reacts to (pattern types plus negated types); the runtime
//     dispatches an event only to the engines subscribed to its type
//     id — a slice index, not a per-query check. Queries under
//     contiguous semantics observe every event (an unmatched event
//     resets their chain), so they register on the wants-all list.
//
//   - Single watermark. Stream time advances once per distinct time
//     stamp and drives every hosted window manager in one pass
//     (Engine.AdvanceWatermark), so windows close and emit even for
//     engines whose types the current event does not match.
//
// The runtime is single-threaded like the engines it hosts; partition
// parallelism runs one runtime per worker (internal/stream).
package runtime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
)

// Subscription is one hosted query: its plan, its engine, and its
// position in the runtime.
type Subscription struct {
	id   int
	plan *core.Plan
	eng  *core.Engine
}

// ID returns the subscription's index in the runtime (0-based, in
// Subscribe order).
func (s *Subscription) ID() int { return s.id }

// Plan returns the compiled plan of the hosted query.
func (s *Subscription) Plan() *core.Plan { return s.plan }

// Engine returns the hosted engine (for accounting or inspection; do
// not feed it events directly while the runtime owns it).
func (s *Subscription) Engine() *core.Engine { return s.eng }

// Results returns the results the hosted engine has collected so far
// (nil when the subscription streams through a result callback).
func (s *Subscription) Results() []core.Result { return s.eng.Results() }

// Runtime hosts any number of compiled plans over one catalog and
// executes them against a single in-order event stream. Not safe for
// concurrent use.
type Runtime struct {
	cat *core.Catalog
	res *core.Resolver

	subs []*Subscription
	// byType[tid] lists the subscriptions whose plans react to catalog
	// type id tid; wantsAll lists contiguous-semantics subscriptions,
	// which must observe every event.
	byType   [][]*Subscription
	wantsAll []*Subscription

	lastTime int64
	sawEvent bool
	seq      int64
	closed   bool
}

// New returns an empty runtime over a fresh catalog.
func New() *Runtime {
	return NewOn(core.NewCatalog())
}

// NewOn returns an empty runtime over an existing catalog, for hosting
// plans that were compiled elsewhere (core.NewPlanIn). Several
// runtimes may share one catalog — the partition-parallel executor
// runs one per worker.
func NewOn(cat *core.Catalog) *Runtime {
	return &Runtime{cat: cat, res: core.NewResolver(cat)}
}

// Catalog returns the runtime's catalog, for compiling further plans
// against it.
func (rt *Runtime) Catalog() *core.Catalog { return rt.cat }

// Subscribe compiles a query against the runtime's catalog and hosts
// it. Engine options (result callbacks, accounting) apply to the
// query's private engine. Subscriptions are accepted until the first
// Close. Subscribing mid-stream is allowed ONLY when the catalog is
// private to this runtime (the NewRuntime case): compilation interns
// new symbols, and a catalog shared with other runtimes, resolvers or
// executor workers must stay read-only while any of them processes
// events — for shared catalogs, compile every plan first.
func (rt *Runtime) Subscribe(q *query.Query, opts ...core.Option) (*Subscription, error) {
	plan, err := core.NewPlanIn(rt.cat, q)
	if err != nil {
		return nil, err
	}
	return rt.SubscribePlan(plan, opts...)
}

// SubscribePlan hosts an already-compiled plan. The plan must have
// been compiled against the runtime's catalog.
func (rt *Runtime) SubscribePlan(plan *core.Plan, opts ...core.Option) (*Subscription, error) {
	if rt.closed {
		return nil, fmt.Errorf("runtime: Subscribe after Close")
	}
	if plan.Catalog() != rt.cat {
		return nil, fmt.Errorf("runtime: plan compiled against a different catalog")
	}
	s := &Subscription{
		id:   len(rt.subs),
		plan: plan,
		eng:  core.NewEngine(plan, opts...),
	}
	rt.subs = append(rt.subs, s)
	if plan.WantsAllEvents() {
		rt.wantsAll = append(rt.wantsAll, s)
		return s, nil
	}
	for _, tid := range plan.SubscribedTypeIDs() {
		for int(tid) >= len(rt.byType) {
			rt.byType = append(rt.byType, nil)
		}
		rt.byType[tid] = append(rt.byType[tid], s)
	}
	return s, nil
}

// Queries returns the hosted subscriptions in Subscribe order.
func (rt *Runtime) Queries() []*Subscription { return rt.subs }

// Process consumes the next stream event for every hosted query.
// Events must arrive in non-decreasing time-stamp order.
func (rt *Runtime) Process(ev *event.Event) error {
	if rt.closed {
		return fmt.Errorf("runtime: Process after Close")
	}
	if rt.sawEvent && ev.Time < rt.lastTime {
		return fmt.Errorf("runtime: out-of-order event at time %d after %d", ev.Time, rt.lastTime)
	}
	rt.seq++
	if ev.ID == 0 {
		ev.ID = rt.seq
	}
	if !rt.sawEvent || ev.Time != rt.lastTime {
		// One watermark pass closes complete windows across every
		// hosted engine, including those the event's type won't reach.
		for _, s := range rt.subs {
			if err := s.eng.AdvanceWatermark(ev.Time); err != nil {
				return err
			}
		}
	}
	rt.lastTime, rt.sawEvent = ev.Time, true

	tid := int32(-1)
	var interested []*Subscription
	if id, ok := rt.cat.TypeID(ev.Type); ok {
		tid = id
		if int(id) < len(rt.byType) {
			interested = rt.byType[id]
		}
	}
	if len(interested) == 0 && len(rt.wantsAll) == 0 {
		return nil // no hosted query reacts to this type
	}
	// Resolve once; every interested engine reads the same view.
	rt.res.Resolve(ev)
	for _, s := range interested {
		if err := s.eng.ProcessResolved(ev, rt.res, tid); err != nil {
			return err
		}
	}
	for _, s := range rt.wantsAll {
		if err := s.eng.ProcessResolved(ev, rt.res, tid); err != nil {
			return err
		}
	}
	return nil
}

// ProcessAll feeds a pre-sorted batch of events.
func (rt *Runtime) ProcessAll(events []*event.Event) error {
	for _, ev := range events {
		if err := rt.Process(ev); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes every open window of every hosted query and returns
// the collected results indexed by subscription id (nil entries for
// subscriptions that stream through callbacks).
func (rt *Runtime) Close() [][]core.Result {
	rt.closed = true
	out := make([][]core.Result, len(rt.subs))
	for i, s := range rt.subs {
		out[i] = s.eng.Close()
	}
	return out
}
