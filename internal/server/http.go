package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	cogra "repro"
)

// HTTP surface:
//
//	POST   /v1/{tenant}/events        body {"events":[...]}    → {"accepted":n}
//	POST   /v1/{tenant}/queries       body {"query":"RETURN …"} → {"id":n}
//	GET    /v1/{tenant}/queries                                 → {"queries":[...]}
//	DELETE /v1/{tenant}/queries/{id}                            → {"results":[...]}
//	GET    /v1/{tenant}/results?id=n                            → {"results":[...],"done":bool}
//	GET    /v1/{tenant}/results?id=n&follow=sse                 → SSE stream
//	POST   /v1/{tenant}/close                                   → {}
//	GET    /metrics                                             → Prometheus text
//	GET    /healthz                                             → ok | draining
//
// Every error is a WireError JSON body under its mapped HTTP status.

// maxBodyBytes bounds request bodies; a batch larger than this belongs
// on the framed-TCP path anyway.
const maxBodyBytes = 64 << 20

// ingestRequest is the batch-ingest body.
type ingestRequest struct {
	Events []WireEvent `json:"events"`
}

// subscribeRequest is the query-subscribe body.
type subscribeRequest struct {
	Query  string `json:"query"`
	Strict bool   `json:"strict,omitempty"`
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/events", s.handleIngest)
	mux.HandleFunc("POST /v1/{tenant}/queries", s.handleSubscribe)
	mux.HandleFunc("GET /v1/{tenant}/queries", s.handleListQueries)
	mux.HandleFunc("DELETE /v1/{tenant}/queries/{id}", s.handleUnsubscribe)
	mux.HandleFunc("GET /v1/{tenant}/results", s.handleResults)
	mux.HandleFunc("POST /v1/{tenant}/close", s.handleCloseTenant)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpReqs.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON serves v as a JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeWireError serves a typed error body under its mapped status.
func writeWireError(w http.ResponseWriter, werr *WireError) {
	writeJSON(w, HTTPStatus(werr.Code), werr)
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) *WireError {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &WireError{Code: CodeBadRequest, Message: "bad request body: " + err.Error()}
	}
	return nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if werr := decodeBody(r, &req); werr != nil {
		writeWireError(w, werr)
		return
	}
	events := make([]*cogra.Event, len(req.Events))
	for i := range req.Events {
		events[i] = req.Events[i].Event()
	}
	accepted, werr := s.Ingest(r.PathValue("tenant"), events)
	if werr != nil {
		writeWireError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	if werr := decodeBody(r, &req); werr != nil {
		writeWireError(w, werr)
		return
	}
	id, werr := s.Subscribe(r.PathValue("tenant"), req.Query, req.Strict)
	if werr != nil {
		writeWireError(w, werr)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("tenant"), false)
	type wireQuery struct {
		ID    int    `json:"id"`
		Query string `json:"query"`
	}
	queries := []wireQuery{}
	if t != nil {
		for _, st := range activeSubs(t) {
			queries = append(queries, wireQuery{ID: st.id, Query: st.query})
		}
	}
	// Map iteration shuffled them; serve in id order.
	for i := 1; i < len(queries); i++ {
		for j := i; j > 0 && queries[j-1].ID > queries[j].ID; j-- {
			queries[j-1], queries[j] = queries[j], queries[j-1]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": queries})
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		writeWireError(w, &WireError{Code: CodeBadRequest, Message: "bad query id"})
		return
	}
	results, werr := s.Unsubscribe(r.PathValue("tenant"), id)
	if werr != nil {
		writeWireError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toWireResults(results)})
}

func toWireResults(rs []cogra.Result) []WireResult {
	out := make([]WireResult, len(rs))
	for i, r := range rs {
		out[i] = ToWireResult(r)
	}
	return out
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	var id int
	if _, err := fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id); err != nil {
		writeWireError(w, &WireError{Code: CodeBadRequest, Message: "results needs an ?id=<query id>"})
		return
	}
	tenant := r.PathValue("tenant")
	if r.URL.Query().Get("follow") == "sse" {
		s.streamResults(w, r, tenant, id)
		return
	}
	results, done, werr := s.Results(tenant, id)
	if werr != nil {
		writeWireError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toWireResults(results), "done": done})
}

// streamResults serves results as Server-Sent Events: one "result"
// event per result (data = the WireResult JSON), then one final "done"
// event when the subscription can produce no more — or when the server
// drains, so a restarted server can pick the stream back up. Waiting is
// pulse-driven, not polled: ingest, unsubscribe, close and drain all
// wake the watcher.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, tenant string, id int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeWireError(w, &WireError{Code: CodeInternal, Message: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: the client unblocks on them, and the
	// first result may be a long wait away.
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		// Grab the wait channel BEFORE draining: a pulse that fires
		// between the drain and the wait is then never lost.
		var wake <-chan struct{}
		if t := s.tenant(tenant, false); t != nil {
			wake = t.wait()
		}
		results, done, werr := s.Results(tenant, id)
		if werr != nil {
			fmt.Fprintf(w, "event: error\ndata: ")
			enc.Encode(werr)
			fmt.Fprint(w, "\n")
			fl.Flush()
			return
		}
		for i := range results {
			fmt.Fprint(w, "event: result\ndata: ")
			enc.Encode(ToWireResult(results[i]))
			fmt.Fprint(w, "\n")
		}
		if len(results) > 0 {
			fl.Flush()
		}
		if done || s.draining.Load() {
			fmt.Fprint(w, "event: done\ndata: {}\n\n")
			fl.Flush()
			return
		}
		if wake == nil {
			// Tenant vanished between Results and here — impossible
			// today (tenants are never deleted), but fail closed.
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCloseTenant(w http.ResponseWriter, r *http.Request) {
	if werr := s.CloseTenant(r.PathValue("tenant")); werr != nil {
		writeWireError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
