package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	cogra "repro"
)

func codecStream() []*cogra.Event {
	e1 := cogra.NewEvent("Stock", 10)
	e1.ID = 7
	e1.WithSym("sym", "ACME").WithNum("price", 101.5)
	e2 := cogra.NewEvent("Trade", 11)
	e2.WithSym("sym", "ACME").WithSym("venue", "X").WithNum("qty", 3).WithNum("px", math.Inf(1))
	e3 := cogra.NewEvent("Tick", 12) // no attributes at all
	return []*cogra.Event{e1, e2, e3}
}

func TestCodecIngestRoundTrip(t *testing.T) {
	events := codecStream()
	payload, err := AppendIngest(nil, "tenant-a", events)
	if err != nil {
		t.Fatal(err)
	}
	tenant, got, err := DecodeIngest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "tenant-a" {
		t.Fatalf("tenant = %q", tenant)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(events[i], got[i]) {
			t.Errorf("event %d: %+v != %+v", i, events[i], got[i])
		}
	}
}

func TestCodecReplyRoundTrip(t *testing.T) {
	if n, err := DecodeReply(AppendOK(nil, 42)); err != nil || n != 42 {
		t.Fatalf("ok reply: (%d, %v)", n, err)
	}
	in := &WireError{Code: CodeBackpressure, Message: "slow down"}
	_, err := DecodeReply(AppendErr(nil, in))
	var out *WireError
	if !errors.As(err, &out) || out.Code != in.Code || out.Message != in.Message {
		t.Fatalf("err reply decoded to %v", err)
	}
}

// TestCodecMalformed: every structural violation is a typed ErrFrame,
// never a panic, and a lying count cannot drive allocation.
func TestCodecMalformed(t *testing.T) {
	good, err := AppendIngest(nil, "t", codecStream())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"unknown op": {'X', 0},
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte{}, good...), 0xFF),
	}
	// A count field promising a billion events in a tiny payload.
	lying := []byte{opIngest, 1, 't'}
	lying = binary.LittleEndian.AppendUint32(lying, 1<<30)
	cases["lying count"] = lying
	for name, payload := range cases {
		if _, _, err := DecodeIngest(payload); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
	for name, payload := range map[string][]byte{
		"reply empty":     {},
		"reply unknown":   {'?'},
		"reply truncated": {opOK, 1, 2},
		"reply trailing":  {opOK, 1, 2, 3, 4, 5},
	} {
		if _, err := DecodeReply(payload); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{9}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got[:0]
	}
	if _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("clean end of stream: %v, want io.EOF", err)
	}
	// A partial body is an unexpected EOF, not a clean end.
	buf.Reset()
	WriteFrame(&buf, []byte{1, 2, 3, 4})
	buf.Truncate(buf.Len() - 2)
	if _, err := ReadFrame(&buf, nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial body: %v, want io.ErrUnexpectedEOF", err)
	}
	// An oversized length prefix is rejected before allocation.
	buf.Reset()
	hdr := binary.LittleEndian.AppendUint32(nil, maxFrameLen+1)
	buf.Write(hdr)
	if _, err := ReadFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized frame: %v, want ErrFrame", err)
	}
}
