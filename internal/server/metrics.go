package server

import (
	"fmt"
	"net/http"
	"sort"
	"time"
)

// handleMetrics serves Prometheus text-format metrics: server-wide
// counters plus a per-tenant block scraped live from each session's
// Stats() — the shard-safe snapshot the Session contract guarantees,
// so scraping never touches a shard goroutine and never blocks ingest.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	now := time.Now()

	names := s.tenantNames()
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP cograd_uptime_seconds Seconds since the server started.\n# TYPE cograd_uptime_seconds gauge\ncograd_uptime_seconds %g\n",
		now.Sub(s.started).Seconds())
	fmt.Fprintf(w, "# HELP cograd_draining Whether the server is draining (1) or serving (0).\n# TYPE cograd_draining gauge\ncograd_draining %d\n",
		b2i(s.draining.Load()))
	fmt.Fprintf(w, "# HELP cograd_tenants Hosted tenants.\n# TYPE cograd_tenants gauge\ncograd_tenants %d\n", len(names))
	fmt.Fprintf(w, "# HELP cograd_http_requests_total HTTP requests served.\n# TYPE cograd_http_requests_total counter\ncograd_http_requests_total %d\n",
		s.httpReqs.Load())
	fmt.Fprintf(w, "# HELP cograd_tcp_frames_total Framed-TCP ingest frames received.\n# TYPE cograd_tcp_frames_total counter\ncograd_tcp_frames_total %d\n",
		s.tcpFrames.Load())
	fmt.Fprintf(w, "# HELP cograd_ingested_events_total Events accepted across all tenants.\n# TYPE cograd_ingested_events_total counter\ncograd_ingested_events_total %d\n",
		s.ingested.Load())
	fmt.Fprintf(w, "# HELP cograd_quota_rejections_total Requests refused by a server-side quota.\n# TYPE cograd_quota_rejections_total counter\ncograd_quota_rejections_total %d\n",
		s.quotaDenied.Load())

	// Per-tenant session stats. HELP/TYPE headers once, then one
	// sample per tenant.
	type gauge struct {
		name, help string
		val        func(st sessionStatsRow) float64
	}
	rows := make([]sessionStatsRow, 0, len(names))
	for _, name := range names {
		t := s.tenant(name, false)
		if t == nil {
			continue
		}
		st, ok := t.statsSnapshot()
		if !ok {
			continue
		}
		row := sessionStatsRow{name: name, events: st.Events, queries: st.Queries,
			workers: st.Workers, skipped: st.Skipped, late: st.LateDropped,
			shed: st.ReorderShed, peak: st.PeakBytes, watermark: st.Watermark,
			wmValid: st.WatermarkValid, sharedGroups: st.SharedGroups,
			shareFlips: st.ShareFlips, sharedSaved: st.SharedSavedOps}
		// events/s from scrape-to-scrape deltas, owned by this handler.
		t.rateMu.Lock()
		if !t.rateWhen.IsZero() {
			if dt := now.Sub(t.rateWhen).Seconds(); dt > 0 {
				row.rate = float64(st.Events-t.rateEvents) / dt
			}
		}
		t.rateEvents, t.rateWhen = st.Events, now
		t.rateMu.Unlock()
		rows = append(rows, row)
	}
	gauges := []gauge{
		{"cograd_tenant_events_total", "Events the tenant's session accepted.", func(r sessionStatsRow) float64 { return float64(r.events) }},
		{"cograd_tenant_queries", "Active subscriptions.", func(r sessionStatsRow) float64 { return float64(r.queries) }},
		{"cograd_tenant_workers", "Session worker count.", func(r sessionStatsRow) float64 { return float64(r.workers) }},
		{"cograd_tenant_skipped_total", "Events the session could not route.", func(r sessionStatsRow) float64 { return float64(r.skipped) }},
		{"cograd_tenant_late_dropped_total", "Late events dropped by the slack policy.", func(r sessionStatsRow) float64 { return float64(r.late) }},
		{"cograd_tenant_reorder_shed_total", "Events shed by the reorder depth cap.", func(r sessionStatsRow) float64 { return float64(r.shed) }},
		{"cograd_tenant_peak_bytes", "Peak logical memory of the session.", func(r sessionStatsRow) float64 { return float64(r.peak) }},
		{"cograd_tenant_ingest_rate", "Events/s between the last two scrapes.", func(r sessionStatsRow) float64 { return r.rate }},
		{"cograd_tenant_shared_groups", "Sharing groups currently backed by a host engine.", func(r sessionStatsRow) float64 { return float64(r.sharedGroups) }},
		{"cograd_tenant_share_flips_total", "Share/unshare decisions taken.", func(r sessionStatsRow) float64 { return float64(r.shareFlips) }},
		{"cograd_tenant_shared_saved_ops_total", "Estimated per-event aggregation passes saved by sharing.", func(r sessionStatsRow) float64 { return float64(r.sharedSaved) }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, row := range rows {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", g.name, row.name, g.val(row))
		}
	}
	// Watermark only for tenants that have dispatched an event — a
	// zero would be indistinguishable from a real time stamp 0.
	fmt.Fprint(w, "# HELP cograd_tenant_watermark Stream position: time stamp of the last dispatched event.\n# TYPE cograd_tenant_watermark gauge\n")
	for _, row := range rows {
		if row.wmValid {
			fmt.Fprintf(w, "cograd_tenant_watermark{tenant=%q} %d\n", row.name, row.watermark)
		}
	}
}

// sessionStatsRow is the per-tenant scrape snapshot metrics.go formats.
type sessionStatsRow struct {
	name         string
	events       int64
	queries      int
	workers      int
	skipped      int64
	late         int64
	shed         int64
	peak         int64
	watermark    int64
	wmValid      bool
	rate         float64
	sharedGroups int
	shareFlips   int64
	sharedSaved  int64
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
