package server

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	cogra "repro"
)

// TestWireErrorRoundTrip: every typed sentinel encodes to its stable
// code and decodes back to an error the ORIGINAL sentinel matches via
// errors.Is — a Go client of cograd reuses its embedded error logic.
func TestWireErrorRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel error
		code     string
		status   int
	}{
		{cogra.ErrBackpressure, CodeBackpressure, http.StatusTooManyRequests},
		{cogra.ErrLateEvent, CodeLateEvent, http.StatusBadRequest},
		{cogra.ErrFrozenRouting, CodeFrozenRouting, http.StatusConflict},
		{cogra.ErrNotHosted, CodeNotHosted, http.StatusNotFound},
		{cogra.ErrClosed, CodeClosed, http.StatusConflict},
		{cogra.ErrSinkPanic, CodeSinkPanic, http.StatusInternalServerError},
		{cogra.ErrBadSnapshot, CodeBadSnapshot, http.StatusInternalServerError},
	}
	for _, c := range cases {
		t.Run(c.code, func(t *testing.T) {
			wrapped := fmt.Errorf("tenant %q: %w", "acme", c.sentinel)
			w := EncodeError(wrapped)
			if w.Code != c.code {
				t.Fatalf("EncodeError code = %q, want %q", w.Code, c.code)
			}
			if got := HTTPStatus(w.Code); got != c.status {
				t.Fatalf("HTTPStatus(%q) = %d, want %d", w.Code, got, c.status)
			}
			back := DecodeWireError(w)
			if !errors.Is(back, c.sentinel) {
				t.Fatalf("decoded error %v does not match the original sentinel", back)
			}
			// The decoded error must match ONLY its own sentinel.
			for _, other := range cases {
				if other.code != c.code && errors.Is(back, other.sentinel) {
					t.Fatalf("decoded %q error also matches %q", c.code, other.code)
				}
			}
		})
	}
}

func TestWireErrorNonSentinel(t *testing.T) {
	w := EncodeError(fmt.Errorf("disk on fire"))
	if w.Code != CodeInternal {
		t.Fatalf("plain error encoded as %q, want %q", w.Code, CodeInternal)
	}
	// Codes without a sentinel decode to the bare wire error.
	for _, code := range []string{CodeBadRequest, CodeDraining, CodeInternal} {
		we := &WireError{Code: code, Message: "m"}
		back := DecodeWireError(we)
		var got *WireError
		if !errors.As(back, &got) || got.Code != code {
			t.Fatalf("code %q decoded to %T %v, want the bare WireError", code, back, back)
		}
	}
	if HTTPStatus("never-heard-of-it") != http.StatusInternalServerError {
		t.Fatal("unknown code did not map to 500")
	}
	if HTTPStatus(CodeDraining) != http.StatusServiceUnavailable {
		t.Fatal("draining did not map to 503")
	}
	if HTTPStatus(CodeBadRequest) != http.StatusBadRequest {
		t.Fatal("bad_request did not map to 400")
	}
}
