package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	cogra "repro"
)

// Wire shapes shared by the HTTP+JSON surface and the examples/client.
// Events travel as {"time":..,"type":"Stock","sym":{..},"num":{..}};
// results carry both the structured fields and a preformatted "text"
// line identical to Result.String(), so a client can diff a served
// stream against an embedded cograql run byte for byte.

// WireEvent is the JSON form of one stream event.
type WireEvent struct {
	Time int64              `json:"time"`
	Type string             `json:"type"`
	ID   int64              `json:"id,omitempty"`
	Sym  map[string]string  `json:"sym,omitempty"`
	Num  map[string]float64 `json:"num,omitempty"`
}

// Event converts the wire form into an engine event.
func (w *WireEvent) Event() *cogra.Event {
	e := cogra.NewEvent(w.Type, w.Time)
	e.ID = w.ID
	for k, v := range w.Sym {
		e.WithSym(k, v)
	}
	for k, v := range w.Num {
		e.WithNum(k, v)
	}
	return e
}

// ToWireEvent converts an engine event into its wire form.
func ToWireEvent(e *cogra.Event) WireEvent {
	return WireEvent{Time: e.Time, Type: e.Type, ID: e.ID, Sym: e.Sym, Num: e.Num}
}

// WireValue is one reported aggregate: its RETURN-clause spec text
// ("COUNT(*)", "MAX(Stock.price)") and the raw count/float pair, a
// lossless projection of agg.Value (Valid false means no trend
// contributed — the display form renders "null").
type WireValue struct {
	Spec  string  `json:"spec"`
	Count uint64  `json:"count"`
	F     float64 `json:"f"`
	Valid bool    `json:"valid"`
}

// WireResult is the JSON form of one aggregation result.
type WireResult struct {
	Wid    int64       `json:"wid"`
	Start  int64       `json:"start"`
	End    int64       `json:"end"`
	Group  []string    `json:"group,omitempty"`
	Values []WireValue `json:"values"`
	// Text is Result.String() — the display form cograql prints, kept
	// on the wire so differential tooling can diff byte-identically.
	Text string `json:"text"`
}

// ToWireResult converts an engine result into its wire form.
func ToWireResult(r cogra.Result) WireResult {
	out := WireResult{Wid: r.Wid, Start: r.Start, End: r.End, Group: r.Group, Text: r.String()}
	out.Values = make([]WireValue, len(r.Values))
	for i, v := range r.Values {
		wv := WireValue{Spec: v.Spec.String(), Count: v.Count, F: v.F, Valid: v.Valid}
		if !v.Valid {
			// An invalid AVG carries NaN, which JSON cannot encode; the
			// float is meaningless without Valid anyway.
			wv.F = 0
		}
		out.Values[i] = wv
	}
	return out
}

// Framed-TCP bulk-ingest codec. HTTP+JSON is the management surface;
// high-volume producers use a persistent TCP connection carrying
// length-prefixed binary frames, which skips per-request HTTP and JSON
// costs (the ≤25%-overhead ingest path the benchmarks gate). Layout,
// all little-endian:
//
//	frame   := u32 payloadLen | payload           (len caps at 64 MiB)
//	request := 'I' | str8 tenant | u32 n | event*n
//	event   := i64 time | i64 id | str16 type
//	           | u16 nSym | (str16 key | str16 val)*nSym
//	           | u16 nNum | (str16 key | f64)*nNum
//	reply   := 'O' | u32 accepted
//	         | 'E' | str8 code | str16 message
//	str8    := u8  len | bytes
//	str16   := u16 len | bytes
//
// One reply per request, in order; a connection carries any number of
// requests. An 'E' reply leaves the connection usable — framing is
// intact, only the request failed.

const (
	maxFrameLen = 64 << 20
	opIngest    = 'I'
	opOK        = 'O'
	opErr       = 'E'
)

// ErrFrame reports a framing/codec violation; the connection carrying
// it is beyond recovery and must be closed.
var ErrFrame = fmt.Errorf("cograd: malformed frame")

// appendStr16 appends a u16-length-prefixed string (caps at 64 KiB).
func appendStr16(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// AppendIngest encodes an ingest request for tenant into b.
func AppendIngest(b []byte, tenant string, events []*cogra.Event) ([]byte, error) {
	if len(tenant) > math.MaxUint8 {
		return nil, fmt.Errorf("cograd: tenant name %d bytes long (max 255)", len(tenant))
	}
	b = append(b, opIngest, uint8(len(tenant)))
	b = append(b, tenant...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(events)))
	for _, e := range events {
		b = binary.LittleEndian.AppendUint64(b, uint64(e.Time))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.ID))
		b = appendStr16(b, e.Type)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Sym)))
		for k, v := range e.Sym {
			b = appendStr16(b, k)
			b = appendStr16(b, v)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Num)))
		for k, v := range e.Num {
			b = appendStr16(b, k)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return b, nil
}

// frameReader decodes one frame payload with bounds checking; every
// read error collapses into ErrFrame.
type frameReader struct {
	buf []byte
	off int
	bad bool
}

func (r *frameReader) fail() {
	r.bad = true
	r.off = len(r.buf)
}

func (r *frameReader) u8() uint8 {
	if r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *frameReader) u16() uint16 {
	if r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *frameReader) u32() uint32 {
	if r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *frameReader) u64() uint64 {
	if r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *frameReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *frameReader) str8() string  { return string(r.bytes(int(r.u8()))) }
func (r *frameReader) str16() string { return string(r.bytes(int(r.u16()))) }

// str16b returns the raw bytes of a str16 without copying; only valid
// until the payload buffer is reused.
func (r *frameReader) str16b() []byte { return r.bytes(int(r.u16())) }

// maxInternEntries caps a connection's intern table; a high-cardinality
// stream stops interning instead of growing without bound.
const maxInternEntries = 1 << 16

// Decoder decodes ingest frames for one connection. It interns the
// low-cardinality data every event repeats — type names, attribute
// keys, symbol values, and whole attribute maps keyed by their wire
// bytes — so a long-lived bulk connection allocates almost nothing
// after warm-up (map lookups keyed by string(bytes) do not allocate on
// a hit). Interned attribute maps are SHARED across decoded events;
// that is safe because the engine treats event attributes as immutable
// once pushed — nothing downstream of PushBatch writes to Sym or Num.
// The zero value works.
type Decoder struct {
	intern    map[string]string
	symIntern map[string]map[string]string
	numIntern map[string]map[string]float64
}

func (d *Decoder) str(b []byte) string {
	if d == nil {
		return string(b)
	}
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.intern == nil {
		d.intern = make(map[string]string, 64)
	}
	if len(d.intern) < maxInternEntries {
		d.intern[s] = s
	}
	return s
}

// section walks past n str16-framed fields (pairs count as two) and
// returns the raw bytes from start through the current offset — the
// intern key for a whole attribute section.
func (r *frameReader) section(start, nFields int) []byte {
	for j := 0; j < nFields && !r.bad; j++ {
		r.bytes(int(r.u16()))
	}
	if r.bad {
		return nil
	}
	return r.buf[start:r.off]
}

// symMap decodes one event's symbolic-attribute section, returning an
// interned (shared, read-only) map when the same section bytes were
// seen before on this connection.
func (d *Decoder) symMap(r *frameReader) map[string]string {
	start := r.off
	ns := int(r.u16())
	if ns == 0 || r.bad {
		return nil
	}
	if d == nil {
		m := make(map[string]string, ns)
		for j := 0; j < ns && !r.bad; j++ {
			k := string(r.str16b())
			m[k] = string(r.str16b())
		}
		return m
	}
	sect := r.section(start, 2*ns)
	if r.bad {
		return nil
	}
	if m, ok := d.symIntern[string(sect)]; ok {
		return m
	}
	rr := frameReader{buf: sect, off: 2}
	m := make(map[string]string, ns)
	for j := 0; j < ns; j++ {
		k := d.str(rr.str16b())
		m[k] = d.str(rr.str16b())
	}
	if d.symIntern == nil {
		d.symIntern = make(map[string]map[string]string, 64)
	}
	if len(d.symIntern) < maxInternEntries {
		d.symIntern[string(sect)] = m
	}
	return m
}

// numMap decodes one event's numeric-attribute section; same sharing
// contract as symMap. Numeric sections repeat less often (float values
// vary), so the table caps the same way and misses just build fresh.
func (d *Decoder) numMap(r *frameReader) map[string]float64 {
	start := r.off
	nn := int(r.u16())
	if nn == 0 || r.bad {
		return nil
	}
	if d == nil {
		m := make(map[string]float64, nn)
		for j := 0; j < nn && !r.bad; j++ {
			k := string(r.str16b())
			m[k] = math.Float64frombits(r.u64())
		}
		return m
	}
	sect := r.sectionF64(start, nn)
	if r.bad {
		return nil
	}
	if m, ok := d.numIntern[string(sect)]; ok {
		return m
	}
	rr := frameReader{buf: sect, off: 2}
	m := make(map[string]float64, nn)
	for j := 0; j < nn; j++ {
		k := d.str(rr.str16b())
		m[k] = math.Float64frombits(rr.u64())
	}
	if d.numIntern == nil {
		d.numIntern = make(map[string]map[string]float64, 64)
	}
	if len(d.numIntern) < maxInternEntries {
		d.numIntern[string(sect)] = m
	}
	return m
}

// sectionF64 walks past n (str16 key, f64 value) pairs and returns the
// raw bytes from start through the current offset.
func (r *frameReader) sectionF64(start, n int) []byte {
	for j := 0; j < n && !r.bad; j++ {
		r.bytes(int(r.u16()))
		r.u64()
	}
	if r.bad {
		return nil
	}
	return r.buf[start:r.off]
}

// DecodeIngest decodes an ingest request payload (without the frame
// length prefix) with a fresh, intern-less decoder. Hot callers (the
// TCP connection loop) hold a Decoder instead.
func DecodeIngest(payload []byte) (tenant string, events []*cogra.Event, err error) {
	return (*Decoder)(nil).DecodeIngest(payload)
}

// DecodeIngest decodes an ingest request payload. It returns ErrFrame
// on any structural violation — never panics, never allocates
// proportionally to a lying count field (event allocation is bounded
// by the actual payload length). Event structs come from one
// batch-sized arena (a single allocation that lives exactly as long as
// the batch's longest-lived event — batch peers expire together under
// windowing, so the amplification is bounded), and repeated attribute
// sections decode to shared interned maps instead of fresh ones.
func (d *Decoder) DecodeIngest(payload []byte) (tenant string, events []*cogra.Event, err error) {
	r := frameReader{buf: payload}
	if r.u8() != opIngest {
		return "", nil, fmt.Errorf("%w: unknown op", ErrFrame)
	}
	tenant = r.str8()
	n := int(r.u32())
	// An event encodes to >= 22 bytes; a count field promising more
	// events than the payload could hold is structurally impossible.
	if n > len(payload)/22+1 {
		return "", nil, fmt.Errorf("%w: event count %d exceeds payload capacity", ErrFrame, n)
	}
	arena := make([]cogra.Event, n)
	events = make([]*cogra.Event, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		e := &arena[i]
		e.Time = int64(r.u64())
		e.ID = int64(r.u64())
		e.Type = d.str(r.str16b())
		e.Sym = d.symMap(&r)
		e.Num = d.numMap(&r)
		events = append(events, e)
	}
	if r.bad || r.off != len(payload) {
		return "", nil, fmt.Errorf("%w: truncated or trailing bytes", ErrFrame)
	}
	return tenant, events, nil
}

// AppendOK encodes a success reply carrying the accepted-event count.
func AppendOK(b []byte, accepted int) []byte {
	b = append(b, opOK)
	return binary.LittleEndian.AppendUint32(b, uint32(accepted))
}

// AppendErr encodes an error reply from its wire form.
func AppendErr(b []byte, w *WireError) []byte {
	b = append(b, opErr, uint8(min(len(w.Code), math.MaxUint8)))
	b = append(b, w.Code[:min(len(w.Code), math.MaxUint8)]...)
	return appendStr16(b, w.Message)
}

// DecodeReply decodes a reply payload into (accepted, nil) or
// (0, error): a *WireError for 'E' replies (DecodeWireError applies),
// ErrFrame for structural violations.
func DecodeReply(payload []byte) (int, error) {
	r := frameReader{buf: payload}
	switch r.u8() {
	case opOK:
		n := int(r.u32())
		if r.bad || r.off != len(payload) {
			return 0, ErrFrame
		}
		return n, nil
	case opErr:
		w := &WireError{Code: r.str8(), Message: r.str16()}
		if r.bad || r.off != len(payload) {
			return 0, ErrFrame
		}
		return 0, w
	default:
		return 0, fmt.Errorf("%w: unknown reply op", ErrFrame)
	}
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is
// large enough. io.EOF before the first header byte means a clean end
// of stream; a partial header or body returns ErrFrame semantics via
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: frame length %d exceeds %d", ErrFrame, n, maxFrameLen)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
