package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	cogra "repro"
)

// ServeTCP accepts framed-TCP bulk-ingest connections on l until the
// listener closes (cmd/cograd closes it on drain). Each connection is
// a sequence of ingest requests answered in order; see codec.go for
// the frame layout.
func (s *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn runs one bulk-ingest connection, pipelined across the
// shard pool: the reader decodes each frame and enqueues the push on
// the owning shard via IngestAsync — without waiting — while a writer
// goroutine emits the replies in request order. Per-tenant order holds
// because one reader enqueues sequentially onto each shard's FIFO, but
// batches for tenants on different shards execute in parallel, so a
// single pipelined connection drives the whole pool. Request errors
// ('E' replies) keep the connection alive; framing errors end it —
// after a structural violation the byte stream cannot be trusted.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	type pendingReply struct {
		rc    <-chan IngestResult
		fatal bool // framing violation: reply, then close
	}
	pending := make(chan pendingReply, 32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		bw := bufio.NewWriterSize(conn, 1<<16)
		var reply []byte
		for p := range pending {
			r := <-p.rc
			if r.Err != nil {
				reply = AppendErr(reply[:0], r.Err)
			} else {
				reply = AppendOK(reply[:0], r.Accepted)
			}
			if err := WriteFrame(bw, reply); err != nil {
				return
			}
			if p.fatal {
				bw.Flush()
				return
			}
			// Flush only when no reply is queued behind this one:
			// pipelined bursts coalesce into one syscall.
			if len(pending) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	var dec Decoder // per-connection string interning
	var frame []byte
	for {
		payload, err := ReadFrame(br, frame)
		if err != nil {
			if err != io.EOF {
				s.cfg.Logf("cograd: tcp %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		s.tcpFrames.Add(1)
		tenant, events, derr := dec.DecodeIngest(payload)
		// The decoder copies everything it keeps, so the frame buffer
		// is reusable as soon as it returns — even with the previous
		// batch still in flight on its shard.
		frame = payload[:0]
		var p pendingReply
		if derr != nil {
			rc := make(chan IngestResult, 1)
			rc <- IngestResult{Err: &WireError{Code: CodeBadRequest, Message: derr.Error()}}
			p = pendingReply{rc: rc, fatal: true}
			s.cfg.Logf("cograd: tcp %s: %v", conn.RemoteAddr(), derr)
		} else {
			p = pendingReply{rc: s.IngestAsync(tenant, events)}
		}
		select {
		case pending <- p:
		case <-done:
			// Writer died on a write error; stop reading.
		}
		if p.fatal || isClosed(done) {
			break
		}
	}
	close(pending)
	<-done
}

func isClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// IngestConn is the client side of the framed-TCP path. Push is the
// simple lock-step call; PushAsync/Flush/Collect expose the pipelined
// protocol — keep a few batches in flight and the connection ingests
// at close to the embedded rate, because the server decodes frame k+1
// while its shard pushes frame k.
type IngestConn struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	buf      []byte
	reply    []byte
	inflight int
}

// DialIngest connects to a cograd TCP ingest address.
func DialIngest(addr string) (*IngestConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &IngestConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// PushAsync encodes and sends one batch without waiting for its reply.
// Call Flush to put buffered frames on the wire and Collect once per
// PushAsync to read the replies, in order.
func (c *IngestConn) PushAsync(tenant string, events []*cogra.Event) error {
	var err error
	c.buf, err = AppendIngest(c.buf[:0], tenant, events)
	if err != nil {
		return err
	}
	if err := WriteFrame(c.bw, c.buf); err != nil {
		return err
	}
	c.inflight++
	return nil
}

// Flush sends any buffered frames.
func (c *IngestConn) Flush() error { return c.bw.Flush() }

// Inflight reports how many pushes are awaiting a Collect.
func (c *IngestConn) Inflight() int { return c.inflight }

// Collect reads the oldest outstanding reply. Typed server-side
// failures come back sentinel-matchable: errors.Is sees the same
// ErrBackpressure/ErrLateEvent an embedded caller would.
func (c *IngestConn) Collect() (int, error) {
	if c.inflight == 0 {
		return 0, fmt.Errorf("cograd: Collect with no push in flight")
	}
	var err error
	c.reply, err = ReadFrame(c.br, c.reply)
	if err != nil {
		return 0, err
	}
	c.inflight--
	n, err := DecodeReply(c.reply)
	var werr *WireError
	if errors.As(err, &werr) {
		return n, DecodeWireError(werr)
	}
	return n, err
}

// Push sends one batch and waits for the reply (lock-step).
func (c *IngestConn) Push(tenant string, events []*cogra.Event) (int, error) {
	if err := c.PushAsync(tenant, events); err != nil {
		return 0, err
	}
	if err := c.Flush(); err != nil {
		return 0, err
	}
	return c.Collect()
}

// Close closes the connection.
func (c *IngestConn) Close() error { return c.conn.Close() }
