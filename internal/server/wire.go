// Package server is the multi-tenant network service over
// cogra.Session behind cmd/cograd: tenants are consistent-hashed
// across a pool of shard goroutines, each shard owns the Sessions of
// its tenants (the Session surface is feeding-goroutine-only; the
// shard goroutine IS that goroutine), and the surface above is
// HTTP+JSON — batch ingest, dynamic subscribe/unsubscribe, streaming
// results, Prometheus metrics — plus a framed-TCP path for bulk
// ingest. Graceful drain snapshots every tenant session to a
// checkpoint directory and a restarted server resumes them
// byte-identically.
package server

import (
	"errors"
	"fmt"
	"net/http"

	cogra "repro"
)

// Wire error codes: every typed sentinel of the session data plane
// maps to exactly one stable machine-readable code, in the one table
// below. Clients branch on the code the way embedded callers branch
// with errors.Is — and DecodeWireError round-trips a wire error back
// into an error matching the original sentinel, so a Go client of
// cograd reuses the same errors.Is logic it would use in process.
const (
	// CodeBackpressure: the tenant's session refused the event under
	// its depth-capped reorder buffer (ErrBackpressure), or a server
	// quota (ingest rate, query cap) was exceeded. HTTP 429.
	CodeBackpressure = "backpressure"
	// CodeLateEvent: the event is older than the stream's drop
	// boundary and the session rejects late events (ErrLateEvent).
	// HTTP 400.
	CodeLateEvent = "late_event"
	// CodeFrozenRouting: a strict-routing subscription arrived after
	// events froze the partition routing (ErrFrozenRouting). HTTP 409.
	CodeFrozenRouting = "frozen_routing"
	// CodeNotHosted: the query id names nothing this tenant hosts
	// (ErrNotHosted). HTTP 404.
	CodeNotHosted = "not_hosted"
	// CodeClosed: the tenant's session was closed (ErrClosed). HTTP 409.
	CodeClosed = "closed"
	// CodeSinkPanic: a result sink panicked; the subscription failed
	// (ErrSinkPanic). HTTP 500.
	CodeSinkPanic = "sink_panic"
	// CodeBadSnapshot: a checkpoint could not be decoded
	// (ErrBadSnapshot). HTTP 500.
	CodeBadSnapshot = "bad_snapshot"
	// CodeBadRequest: the request itself is malformed (bad JSON, bad
	// query text, bad id) — no session sentinel is involved. HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeDraining: the server is shutting down and admits no new
	// work. HTTP 503.
	CodeDraining = "draining"
	// CodeInternal: anything else. HTTP 500.
	CodeInternal = "internal"
)

// wireTable is the single sentinel↔code↔status mapping. Order matters
// only for Is-overlapping sentinels (there are none today).
var wireTable = []struct {
	sentinel error
	code     string
	status   int
}{
	{cogra.ErrBackpressure, CodeBackpressure, http.StatusTooManyRequests},
	{cogra.ErrLateEvent, CodeLateEvent, http.StatusBadRequest},
	{cogra.ErrFrozenRouting, CodeFrozenRouting, http.StatusConflict},
	{cogra.ErrNotHosted, CodeNotHosted, http.StatusNotFound},
	{cogra.ErrClosed, CodeClosed, http.StatusConflict},
	{cogra.ErrSinkPanic, CodeSinkPanic, http.StatusInternalServerError},
	{cogra.ErrBadSnapshot, CodeBadSnapshot, http.StatusInternalServerError},
}

// statusByCode maps the non-sentinel codes (and, redundantly, the
// sentinel ones) to HTTP statuses, for encoders that start from a code
// rather than an error.
var statusByCode = map[string]int{
	CodeBadRequest: http.StatusBadRequest,
	CodeDraining:   http.StatusServiceUnavailable,
	CodeInternal:   http.StatusInternalServerError,
}

func init() {
	for _, e := range wireTable {
		statusByCode[e.code] = e.status
	}
}

// WireError is the typed error body every endpoint returns: a stable
// machine-readable code plus the human-readable message.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"error"`
	// Accepted reports, on a partial batch-ingest failure, how many
	// leading events of the batch were ingested before the offender
	// (-1: unknown).
	Accepted int `json:"accepted,omitempty"`
}

// Error implements error, so a WireError can travel inside client code
// unchanged.
func (w *WireError) Error() string { return fmt.Sprintf("%s (%s)", w.Message, w.Code) }

// EncodeError maps any error to its wire form using the sentinel
// table; errors carrying no sentinel encode as CodeInternal.
func EncodeError(err error) *WireError {
	for _, e := range wireTable {
		if errors.Is(err, e.sentinel) {
			return &WireError{Code: e.code, Message: err.Error()}
		}
	}
	return &WireError{Code: CodeInternal, Message: err.Error()}
}

// HTTPStatus returns the status an error body with this code is served
// under; unknown codes are 500.
func HTTPStatus(code string) int {
	if s, ok := statusByCode[code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// DecodeWireError rebuilds a Go error from a wire error such that
// errors.Is matches the sentinel the server-side error wrapped:
// Decode(Encode(err)) is sentinel-preserving for every code in the
// table. Codes without a sentinel (bad_request, draining, internal)
// decode to the bare WireError.
func DecodeWireError(w *WireError) error {
	for _, e := range wireTable {
		if w.Code == e.code {
			return fmt.Errorf("%s: %w", w.Message, e.sentinel)
		}
	}
	return w
}
