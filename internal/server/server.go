package server

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cogra "repro"
)

// Config shapes a Server. The zero value serves: 4 shards, no quotas,
// no checkpointing.
type Config struct {
	// Shards is the session-shard pool size: tenants are
	// consistent-hashed across this many single-goroutine shard
	// domains (<= 0: 4). More shards means more ingest parallelism
	// across tenants; a tenant always stays on one shard.
	Shards int
	// SessionOptions configure every freshly created tenant session
	// (workers, slack, eviction, ... — typically from sessionflags).
	SessionOptions []cogra.SessionOption
	// RestoreOptions configure sessions restored from CheckpointDir at
	// boot (sessionflags.RestoreOptions: explicit topology flags
	// override the checkpoint, omitted ones let it decide).
	RestoreOptions []cogra.SessionOption
	// CheckpointDir, when set, makes Drain snapshot every tenant
	// session into it (one file per tenant, written atomically), and
	// New restore every tenant found in it.
	CheckpointDir string
	// MaxBatch caps the events one ingest request may carry
	// (0: unlimited). Exceeding it is a backpressure rejection.
	MaxBatch int
	// MaxQueriesPerTenant caps the active subscriptions of one tenant
	// (0: unlimited). Exceeding it is a backpressure rejection.
	MaxQueriesPerTenant int
	// IngestRate caps each tenant's sustained ingest in events/second
	// via a token bucket (0: unlimited); IngestBurst is the bucket
	// size (0: one second's worth, floor 1024). Beyond the bucket,
	// ingest is a backpressure rejection — the client backs off and
	// retries, exactly like a depth-capped reorder buffer.
	IngestRate  float64
	IngestBurst float64
	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
}

// Server hosts tenant sessions across a shard pool and implements the
// HTTP and framed-TCP surfaces. Create with New, serve with Handler /
// ServeTCP, stop with Drain.
type Server struct {
	cfg      Config
	shards   []*shard
	draining atomic.Bool

	tmu     sync.RWMutex
	tenants map[string]*tenant

	// Counters exported on /metrics.
	ingested    atomic.Int64 // events accepted across all tenants
	quotaDenied atomic.Int64 // requests refused by a server-side quota
	httpReqs    atomic.Int64
	tcpFrames   atomic.Int64
	started     time.Time
}

// New builds a server and, when cfg.CheckpointDir is set, restores
// every tenant checkpoint found there (written by a previous Drain).
func New(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.IngestRate > 0 && cfg.IngestBurst <= 0 {
		cfg.IngestBurst = max(cfg.IngestRate, 1024)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{cfg: cfg, tenants: make(map[string]*tenant), started: time.Now()}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{id: i, cmds: make(chan func(), 64), stopped: make(chan struct{})}
	}
	if cfg.CheckpointDir != "" {
		if err := s.restoreAll(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// shardFor consistent-hashes a tenant onto its shard: FNV-1a over the
// tenant name, so the mapping is stable across restarts as long as the
// pool size is.
func (s *Server) shardFor(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// tenant returns the tenant record, creating it when create is set.
// The record is bookkeeping only (quota bucket, result pulse); the
// session inside it is created lazily on the shard goroutine.
func (s *Server) tenant(name string, create bool) *tenant {
	s.tmu.RLock()
	t := s.tenants[name]
	s.tmu.RUnlock()
	if t != nil || !create {
		return t
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if t = s.tenants[name]; t == nil {
		t = newTenant(name)
		s.tenants[name] = t
	}
	return t
}

// tenantNames returns a stable snapshot of the registry for metrics.
func (s *Server) tenantNames() []string {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		out = append(out, name)
	}
	return out
}

// shard is one goroutine domain of the pool. Every operation on the
// sessions it owns executes as a closure on its goroutine, making the
// shard the "feeding goroutine" the Session contract requires; the
// goroutine starts lazily with the shard's first operation.
type shard struct {
	id      int
	cmds    chan func()
	stopped chan struct{}
	start   sync.Once

	// lmu serialises senders against stop: do() sends holding the read
	// side, stop flips stopping under the write side — after which no
	// sender can be mid-send, so closing cmds is safe.
	lmu      sync.RWMutex
	stopping bool
}

func (sh *shard) run() {
	for fn := range sh.cmds {
		fn()
	}
	close(sh.stopped)
}

// errDraining is the operation-level rejection after Drain started.
var errDraining = fmt.Errorf("cograd: server is draining")

// enqueue submits fn to the shard goroutine without waiting. Closures
// enqueued by one goroutine run in submission order — the per-tenant
// ordering guarantee pipelined ingest relies on.
func (sh *shard) enqueue(fn func()) error {
	sh.start.Do(func() { go sh.run() })
	sh.lmu.RLock()
	if sh.stopping {
		sh.lmu.RUnlock()
		return errDraining
	}
	sh.cmds <- fn
	sh.lmu.RUnlock()
	return nil
}

// do executes fn on the shard goroutine and waits for it.
func (sh *shard) do(fn func()) error {
	done := make(chan struct{})
	if err := sh.enqueue(func() {
		defer close(done)
		fn()
	}); err != nil {
		return err
	}
	<-done
	return nil
}

// stop runs final as the shard's last operation, after everything
// already queued, then stops the goroutine. Idempotent-unsafe: callers
// (Drain) invoke it once.
func (sh *shard) stop(final func()) {
	sh.start.Do(func() { go sh.run() })
	sh.lmu.Lock()
	sh.stopping = true
	sh.lmu.Unlock()
	sh.cmds <- final
	close(sh.cmds)
	<-sh.stopped
}

// tenant is one tenant's server-side state. The session and subs map
// are owned by the tenant's shard goroutine; sess is additionally
// readable under mu for metrics (Session.Stats is shard-safe by the
// session's own contract).
type tenant struct {
	name string

	mu     sync.RWMutex
	sess   *cogra.Session
	subs   map[int]*subState
	closed bool

	// pulse is closed and replaced whenever results may have become
	// available (ingest, unsubscribe, close), waking streaming result
	// watchers without polling.
	pmu   sync.Mutex
	pulse chan struct{}

	bucket tokenBucket

	// Scrape-to-scrape ingest-rate scratch, owned by /metrics.
	rateMu     sync.Mutex
	rateEvents int64
	rateWhen   time.Time
}

func newTenant(name string) *tenant {
	return &tenant{name: name, subs: make(map[int]*subState), pulse: make(chan struct{})}
}

// subState is one hosted subscription: the handle plus the query text
// it was created from (reported on the list endpoint).
type subState struct {
	id    int
	sub   *cogra.Subscription
	query string
}

func (t *tenant) bump() {
	t.pmu.Lock()
	close(t.pulse)
	t.pulse = make(chan struct{})
	t.pmu.Unlock()
}

// wait returns the channel that closes at the next bump.
func (t *tenant) wait() <-chan struct{} {
	t.pmu.Lock()
	ch := t.pulse
	t.pmu.Unlock()
	return ch
}

// session returns the tenant's session, creating it on first use with
// the server's session options. Shard goroutine only.
func (t *tenant) session(s *Server) (*cogra.Session, error) {
	if t.closed {
		return nil, fmt.Errorf("cograd: tenant %q: session closed: %w", t.name, cogra.ErrClosed)
	}
	if t.sess == nil {
		sess := cogra.NewSession(s.cfg.SessionOptions...)
		t.mu.Lock()
		t.sess = sess
		t.mu.Unlock()
		s.cfg.Logf("cograd: tenant %q: session created on shard %d", t.name, s.shardFor(t.name).id)
	}
	return t.sess, nil
}

// statsSnapshot reads the session stats from any goroutine; ok is
// false while the tenant has no session yet.
func (t *tenant) statsSnapshot() (cogra.SessionStats, bool) {
	t.mu.RLock()
	sess := t.sess
	t.mu.RUnlock()
	if sess == nil {
		return cogra.SessionStats{}, false
	}
	st, err := sess.Stats()
	if err != nil {
		return cogra.SessionStats{}, false
	}
	return st, true
}

// tokenBucket is the per-tenant ingest-rate quota.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take refills by elapsed wall time and withdraws n tokens; false
// means the quota is exhausted and nothing was withdrawn.
func (b *tokenBucket) take(n int, rate, burst float64, now time.Time) bool {
	if rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = burst
	} else {
		b.tokens = min(burst, b.tokens+rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if float64(n) > b.tokens {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Ingest pushes a batch of events into a tenant's session — the one
// ingest core behind both the HTTP and the framed-TCP path. It returns
// the number of accepted events and, on failure, the typed wire error
// (Accepted -1 on a partial batch failure: the session ingested the
// prefix before the offending event, but only the error text names it).
func (s *Server) Ingest(tenantName string, events []*cogra.Event) (int, *WireError) {
	r := <-s.IngestAsync(tenantName, events)
	return r.Accepted, r.Err
}

// IngestResult is the outcome of one IngestAsync batch.
type IngestResult struct {
	Accepted int
	Err      *WireError
}

// IngestAsync validates quotas, enqueues the push on the tenant's shard
// without waiting for it, and delivers the outcome on the returned
// channel (buffered; never blocks the shard). Batches enqueued by one
// goroutine keep their order per tenant — consecutive calls for the
// same tenant land on the same shard's FIFO — while batches for tenants
// on different shards run in parallel. This is what lets one pipelined
// TCP connection spread its load across the whole shard pool.
func (s *Server) IngestAsync(tenantName string, events []*cogra.Event) <-chan IngestResult {
	rc := make(chan IngestResult, 1)
	if s.draining.Load() {
		rc <- IngestResult{Err: &WireError{Code: CodeDraining, Message: "server is draining"}}
		return rc
	}
	if s.cfg.MaxBatch > 0 && len(events) > s.cfg.MaxBatch {
		s.quotaDenied.Add(1)
		rc <- IngestResult{Err: EncodeError(fmt.Errorf("cograd: batch of %d events exceeds the %d-event cap: %w",
			len(events), s.cfg.MaxBatch, cogra.ErrBackpressure))}
		return rc
	}
	t := s.tenant(tenantName, true)
	if !t.bucket.take(len(events), s.cfg.IngestRate, s.cfg.IngestBurst, time.Now()) {
		s.quotaDenied.Add(1)
		rc <- IngestResult{Err: EncodeError(fmt.Errorf("cograd: tenant %q over its %g events/s ingest quota: %w",
			tenantName, s.cfg.IngestRate, cogra.ErrBackpressure))}
		return rc
	}
	err := s.shardFor(tenantName).enqueue(func() {
		sess, serr := t.session(s)
		if serr != nil {
			rc <- IngestResult{Err: EncodeError(serr)}
			return
		}
		if perr := sess.PushBatch(events); perr != nil {
			werr := EncodeError(perr)
			werr.Accepted = -1
			rc <- IngestResult{Err: werr}
			return
		}
		s.ingested.Add(int64(len(events)))
		t.bump()
		rc <- IngestResult{Accepted: len(events)}
	})
	if err != nil {
		rc <- IngestResult{Err: &WireError{Code: CodeDraining, Message: err.Error()}}
	}
	return rc
}

// Subscribe attaches a query to a tenant (creating its session on
// first contact) and returns the subscription id.
func (s *Server) Subscribe(tenantName, queryText string, strict bool) (int, *WireError) {
	if s.draining.Load() {
		return 0, &WireError{Code: CodeDraining, Message: "server is draining"}
	}
	q, err := cogra.Parse(queryText)
	if err != nil {
		return 0, &WireError{Code: CodeBadRequest, Message: err.Error()}
	}
	t := s.tenant(tenantName, true)
	var werr *WireError
	id := -1
	derr := s.shardFor(tenantName).do(func() {
		if s.cfg.MaxQueriesPerTenant > 0 && len(activeSubs(t)) >= s.cfg.MaxQueriesPerTenant {
			s.quotaDenied.Add(1)
			werr = EncodeError(fmt.Errorf("cograd: tenant %q at its %d-query cap: %w",
				tenantName, s.cfg.MaxQueriesPerTenant, cogra.ErrBackpressure))
			return
		}
		sess, serr := t.session(s)
		if serr != nil {
			werr = EncodeError(serr)
			return
		}
		var opts []cogra.SubscribeOption
		if strict {
			opts = append(opts, cogra.StrictRouting())
		}
		sub, serr := sess.Subscribe(q, opts...)
		if serr != nil {
			werr = EncodeError(serr)
			return
		}
		id = sub.ID()
		t.mu.Lock()
		t.subs[id] = &subState{id: id, sub: sub, query: queryText}
		t.mu.Unlock()
	})
	if derr != nil {
		return 0, &WireError{Code: CodeDraining, Message: derr.Error()}
	}
	if werr != nil {
		return 0, werr
	}
	return id, nil
}

// activeSubs snapshots a tenant's live subscriptions. Shard goroutine
// or metrics (read lock).
func activeSubs(t *tenant) []*subState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*subState, 0, len(t.subs))
	for _, st := range t.subs {
		out = append(out, st)
	}
	return out
}

// Unsubscribe detaches a tenant's query and returns the results its
// window flush produced (plus anything still undelivered).
func (s *Server) Unsubscribe(tenantName string, id int) ([]cogra.Result, *WireError) {
	t := s.tenant(tenantName, false)
	if t == nil {
		return nil, &WireError{Code: CodeNotHosted, Message: fmt.Sprintf("unknown tenant %q", tenantName)}
	}
	var werr *WireError
	var out []cogra.Result
	derr := s.shardFor(tenantName).do(func() {
		t.mu.RLock()
		st := t.subs[id]
		t.mu.RUnlock()
		if st == nil {
			werr = &WireError{Code: CodeNotHosted, Message: fmt.Sprintf("tenant %q hosts no query %d", tenantName, id)}
			return
		}
		if !st.sub.Active() {
			// Already detached by a session Close: nothing to flush,
			// just hand over the buffered results and forget the id.
			out = st.sub.Drain()
		} else {
			out = st.sub.Unsubscribe()
			if st.sub.Active() {
				// The detach itself was rejected; the subscription stays.
				werr = EncodeError(st.sub.Err())
				return
			}
		}
		t.mu.Lock()
		delete(t.subs, id)
		t.mu.Unlock()
	})
	if derr != nil {
		return nil, &WireError{Code: CodeDraining, Message: derr.Error()}
	}
	if werr != nil {
		return nil, werr
	}
	t.bump()
	return out, nil
}

// Results drains the subscription's available results (windows closed
// by the advancing watermark; everything once the session is closed).
// done reports that no further results can ever arrive (unsubscribed
// or session closed) — the signal for a streaming watcher to end.
func (s *Server) Results(tenantName string, id int) (out []cogra.Result, done bool, werr *WireError) {
	t := s.tenant(tenantName, false)
	if t == nil {
		return nil, false, &WireError{Code: CodeNotHosted, Message: fmt.Sprintf("unknown tenant %q", tenantName)}
	}
	derr := s.shardFor(tenantName).do(func() {
		t.mu.RLock()
		st := t.subs[id]
		closed := t.closed
		t.mu.RUnlock()
		if st == nil {
			werr = &WireError{Code: CodeNotHosted, Message: fmt.Sprintf("tenant %q hosts no query %d", tenantName, id)}
			return
		}
		out = st.sub.Drain()
		if err := st.sub.Err(); err != nil && len(out) == 0 {
			werr = EncodeError(err)
			return
		}
		done = closed || !st.sub.Active()
	})
	if derr != nil {
		return nil, true, &WireError{Code: CodeDraining, Message: derr.Error()}
	}
	return out, done, werr
}

// CloseTenant ends a tenant's stream: the session flushes its open
// windows into the subscriptions' buffers (drainable via Results until
// the server stops) and refuses further events with CodeClosed.
func (s *Server) CloseTenant(tenantName string) *WireError {
	t := s.tenant(tenantName, false)
	if t == nil {
		return &WireError{Code: CodeNotHosted, Message: fmt.Sprintf("unknown tenant %q", tenantName)}
	}
	var werr *WireError
	derr := s.shardFor(tenantName).do(func() {
		if t.sess == nil || t.closed {
			werr = &WireError{Code: CodeClosed, Message: fmt.Sprintf("tenant %q has no open session", tenantName)}
			return
		}
		if err := t.sess.Close(); err != nil {
			werr = EncodeError(err)
			return
		}
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
	})
	if derr != nil {
		return &WireError{Code: CodeDraining, Message: derr.Error()}
	}
	if werr == nil {
		t.bump()
	}
	return werr
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: new work is refused with
// CodeDraining, every queued shard operation completes (the consistent
// cut — in-flight batches land fully before the cut, like RunContext's
// cancellation barrier), and, when a checkpoint directory is
// configured, every open tenant session is snapshotted into it
// atomically. Result watchers are woken so streams can end. Drain does
// not close un-checkpointed sessions' windows: a drain is a pause, not
// an end of stream, and a restore resumes mid-window byte-identically.
func (s *Server) Drain() error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	var firstErr error
	for _, sh := range s.shards {
		sh.stop(func() {
			for _, name := range s.tenantNames() {
				t := s.tenant(name, false)
				if t == nil || s.shardFor(name) != sh || t.sess == nil || t.closed {
					continue
				}
				if s.cfg.CheckpointDir != "" {
					if err := s.checkpointTenant(t); err != nil && firstErr == nil {
						firstErr = err
					}
				}
			}
		})
	}
	// Wake every streaming watcher so it observes the drain and ends.
	for _, name := range s.tenantNames() {
		if t := s.tenant(name, false); t != nil {
			t.bump()
		}
	}
	s.cfg.Logf("cograd: drained (%d tenants)", len(s.tenantNames()))
	return firstErr
}

// checkpointFile maps a tenant name to its snapshot path: hex keeps
// arbitrary tenant names filesystem-safe and decodable at boot.
func (s *Server) checkpointFile(tenant string) string {
	return filepath.Join(s.cfg.CheckpointDir, hex.EncodeToString([]byte(tenant))+".snap")
}

// checkpointTenant snapshots one session atomically: temp file, fsync,
// rename — a crash mid-write leaves the previous checkpoint intact.
func (s *Server) checkpointTenant(t *tenant) error {
	path := s.checkpointFile(t.name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = t.sess.Snapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint tenant %q: %w", t.name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint tenant %q: %w", t.name, err)
	}
	s.cfg.Logf("cograd: tenant %q checkpointed to %s", t.name, path)
	return nil
}

// restoreAll resumes every tenant checkpoint in the configured
// directory, on each tenant's owning shard. Stale temp files from a
// crash mid-checkpoint are skipped (they are truncated by
// construction); a corrupt durable checkpoint fails the boot — serving
// with silently lost tenant state is worse than not starting.
func (s *Server) restoreAll() error {
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(s.cfg.CheckpointDir, 0o755)
		}
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".snap") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".snap"))
		if err != nil {
			return fmt.Errorf("checkpoint dir holds undecodable file %q: %w", name, err)
		}
		tenantName := string(raw)
		t := s.tenant(tenantName, true)
		var rerr error
		s.shardFor(tenantName).do(func() {
			f, err := os.Open(filepath.Join(s.cfg.CheckpointDir, name))
			if err != nil {
				rerr = err
				return
			}
			defer f.Close()
			sess, err := cogra.Restore(f, s.cfg.RestoreOptions...)
			if err != nil {
				rerr = fmt.Errorf("restore tenant %q: %w", tenantName, err)
				return
			}
			t.mu.Lock()
			t.sess = sess
			for _, sub := range sess.Subscriptions() {
				if sub.Active() {
					t.subs[sub.ID()] = &subState{id: sub.ID(), sub: sub, query: "(restored)"}
				}
			}
			t.mu.Unlock()
		})
		if rerr != nil {
			return rerr
		}
		s.cfg.Logf("cograd: tenant %q restored from %s", tenantName, name)
	}
	return nil
}
