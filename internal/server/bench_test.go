package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	cogra "repro"
)

func newBenchListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// The cograd ingest benches measure the cost of the network service
// versus embedding the Session directly: 8 tenants, a four-query
// portfolio each, batches of 500 events pushed round-robin from one
// client. InProcess is the floor (direct PushBatch); TCP is the bulk
// path the ≤25%-overhead acceptance gate tracks; HTTP is the
// management-surface convenience path (JSON on both ends, a new
// request per batch) and is expected to cost more.

const (
	benchTenants = 8
	benchBatch   = 500
)

// benchQueries is each tenant's portfolio: a multi-tenant service
// hosts several standing pattern queries per tenant, and the engine
// work they add is what a network hop must be measured against.
var benchQueries = []string{
	testQuery,
	`RETURN COUNT(*), MAX(A.x) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 30 SLIDE 30`,
	`RETURN COUNT(*), AVG(B.x) PATTERN SEQ(A+, B+) WHERE [k] GROUP-BY k WITHIN 100 SLIDE 100`,
	`RETURN COUNT(*) PATTERN SEQ(B+, C) WHERE [k] GROUP-BY k WITHIN 40 SLIDE 40`,
}

// benchFeed deterministically generates each tenant's next batch with
// strictly advancing time stamps, so persistent sessions accept an
// unbounded number of bench iterations.
type benchFeed struct {
	rng  *rand.Rand
	next int64
}

func newBenchFeeds() []*benchFeed {
	feeds := make([]*benchFeed, benchTenants)
	for i := range feeds {
		feeds[i] = &benchFeed{rng: rand.New(rand.NewSource(int64(100 + i)))}
	}
	return feeds
}

func (f *benchFeed) batch() []*cogra.Event {
	events := make([]*cogra.Event, benchBatch)
	for i := range events {
		f.next++
		typ := [3]string{"A", "B", "C"}[f.rng.Intn(3)]
		e := cogra.NewEvent(typ, f.next)
		e.ID = f.next
		e.WithSym("k", [2]string{"g", "h"}[f.rng.Intn(2)])
		e.WithNum("x", float64(f.rng.Intn(100)))
		events[i] = e
	}
	return events
}

func reportIngestRate(b *testing.B) {
	b.ReportMetric(float64(benchTenants*benchBatch)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkCogradIngestInProcess is the embedded floor every server
// path is measured against.
func BenchmarkCogradIngestInProcess(b *testing.B) {
	sessions := make([]*cogra.Session, benchTenants)
	for i := range sessions {
		sessions[i] = cogra.NewSession()
		for _, q := range benchQueries {
			if _, err := sessions[i].Subscribe(cogra.MustParse(q)); err != nil {
				b.Fatal(err)
			}
		}
	}
	feeds := newBenchFeeds()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for ti, sess := range sessions {
			if err := sess.PushBatch(feeds[ti].batch()); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportIngestRate(b)
}

func newBenchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := New(Config{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchTenants; i++ {
		for _, q := range benchQueries {
			if _, werr := srv.Subscribe("tenant-"+itoa(i), q, false); werr != nil {
				b.Fatal(werr)
			}
		}
	}
	return srv
}

// BenchmarkCogradIngestTCP is the framed-TCP bulk path: binary codec,
// one persistent connection, lock-step replies.
func BenchmarkCogradIngestTCP(b *testing.B) {
	srv := newBenchServer(b)
	ln, err := newBenchListener()
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeTCP(ln)
	conn, err := DialIngest(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	feeds := newBenchFeeds()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		// Pipelined: all 8 tenant batches go out flushed as they are
		// encoded, and the previous round's replies are collected only
		// after this round is in flight — so the client encodes round
		// n+1 while the server's shards still push round n, and the
		// pipeline never fully drains between rounds.
		for ti := 0; ti < benchTenants; ti++ {
			if err := conn.PushAsync("tenant-"+itoa(ti), feeds[ti].batch()); err != nil {
				b.Fatal(err)
			}
			if err := conn.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		for conn.Inflight() > benchTenants {
			if acc, err := conn.Collect(); err != nil || acc != benchBatch {
				b.Fatalf("(%d, %v)", acc, err)
			}
		}
	}
	for conn.Inflight() > 0 {
		if acc, err := conn.Collect(); err != nil || acc != benchBatch {
			b.Fatalf("(%d, %v)", acc, err)
		}
	}
	reportIngestRate(b)
}

// BenchmarkCogradIngestHTTP is the JSON management path: a request per
// batch, JSON encode on the client, decode on the server.
func BenchmarkCogradIngestHTTP(b *testing.B) {
	srv := newBenchServer(b)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	feeds := newBenchFeeds()
	var buf bytes.Buffer
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for ti := 0; ti < benchTenants; ti++ {
			events := feeds[ti].batch()
			wire := make([]WireEvent, len(events))
			for i, e := range events {
				wire[i] = ToWireEvent(e)
			}
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(map[string]any{"events": wire}); err != nil {
				b.Fatal(err)
			}
			resp, err := client.Post(ts.URL+"/v1/tenant-"+itoa(ti)+"/events", "application/json", &buf)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("http %d", resp.StatusCode)
			}
			var reply struct {
				Accepted int `json:"accepted"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil || reply.Accepted != benchBatch {
				b.Fatalf("(%d, %v)", reply.Accepted, err)
			}
			resp.Body.Close()
		}
	}
	reportIngestRate(b)
}
