package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	cogra "repro"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

const testQuery = `RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE [k] GROUP-BY k WITHIN 50 SLIDE 50`

// synthStream builds a deterministic per-seed stream: A/B/C events
// with a grouping symbol and a numeric attribute.
func synthStream(n int, seed int64) []*cogra.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]*cogra.Event, n)
	for i := range events {
		typ := [3]string{"A", "B", "C"}[rng.Intn(3)]
		e := cogra.NewEvent(typ, int64(i+1))
		e.ID = int64(i + 1)
		e.WithSym("k", [2]string{"g", "h"}[rng.Intn(2)])
		e.WithNum("x", float64(rng.Intn(100)))
		events[i] = e
	}
	return events
}

// soloLines is the embedded-Session reference: subscribe the queries,
// push the whole stream, close, drain — one text blob per query,
// rendered exactly the way the wire's "text" field is.
func soloLines(t *testing.T, queries []string, events []*cogra.Event, opts ...cogra.SessionOption) []string {
	t.Helper()
	sess := cogra.NewSession(opts...)
	subs := make([]*cogra.Subscription, len(queries))
	for i, q := range queries {
		sub, err := sess.Subscribe(cogra.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	if err := sess.PushBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(subs))
	for i, sub := range subs {
		out[i] = resultLines(sub.Drain())
	}
	return out
}

func resultLines(rs []cogra.Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func wireLines(rs []WireResult) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// --- HTTP client helpers against an httptest server ---

type testClient struct {
	t    *testing.T
	base string
}

// do sends a request and decodes the JSON reply into out; non-2xx
// replies come back as the decoded wire error (sentinel-matchable).
func (c *testClient) do(method, path string, body, out any) error {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		var werr WireError
		if json.Unmarshal(raw, &werr) != nil || werr.Code == "" {
			c.t.Fatalf("%s %s: http %d with unparseable body %q", method, path, resp.StatusCode, raw)
		}
		if got := HTTPStatus(werr.Code); got != resp.StatusCode {
			c.t.Fatalf("%s %s: code %q served under %d, mapped to %d", method, path, werr.Code, resp.StatusCode, got)
		}
		return DecodeWireError(&werr)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		c.t.Fatalf("%s %s: bad reply %q: %v", method, path, raw, err)
	}
	return nil
}

func (c *testClient) subscribe(tenant, query string) (int, error) {
	var reply struct {
		ID int `json:"id"`
	}
	err := c.do("POST", "/v1/"+tenant+"/queries", map[string]string{"query": query}, &reply)
	return reply.ID, err
}

func (c *testClient) push(tenant string, events []*cogra.Event) (int, error) {
	wire := make([]WireEvent, len(events))
	for i, e := range events {
		wire[i] = ToWireEvent(e)
	}
	var reply struct {
		Accepted int `json:"accepted"`
	}
	err := c.do("POST", "/v1/"+tenant+"/events", map[string]any{"events": wire}, &reply)
	return reply.Accepted, err
}

func (c *testClient) results(tenant string, id int) ([]WireResult, bool, error) {
	var reply struct {
		Results []WireResult `json:"results"`
		Done    bool         `json:"done"`
	}
	err := c.do("GET", fmt.Sprintf("/v1/%s/results?id=%d", tenant, id), nil, &reply)
	return reply.Results, reply.Done, err
}

func (c *testClient) closeTenant(tenant string) error {
	return c.do("POST", "/v1/"+tenant+"/close", nil, nil)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *testClient, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, &testClient{t: t, base: ts.URL}, ts
}

// TestServerHTTPDifferential: results streamed over HTTP for several
// tenants are byte-identical to each tenant's embedded solo Session
// run — including with a mid-stream incremental fetch, which must not
// perturb the remainder.
func TestServerHTTPDifferential(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Shards: 2})
	tenants := []string{"acme", "globex", "initech"}
	for ti, tenant := range tenants {
		events := synthStream(600, int64(ti+1))
		want := soloLines(t, []string{testQuery}, events)[0]

		id, err := c.subscribe(tenant, testQuery)
		if err != nil {
			t.Fatal(err)
		}
		var got strings.Builder
		for i := 0; i < len(events); i += 100 {
			if n, err := c.push(tenant, events[i:i+100]); err != nil || n != 100 {
				t.Fatalf("push: (%d, %v)", n, err)
			}
			if i == 200 {
				// Incremental mid-stream fetch: whatever is available now.
				rs, done, err := c.results(tenant, id)
				if err != nil || done {
					t.Fatalf("mid-stream results: done=%v err=%v", done, err)
				}
				got.WriteString(wireLines(rs))
			}
		}
		if err := c.closeTenant(tenant); err != nil {
			t.Fatal(err)
		}
		rs, done, err := c.results(tenant, id)
		if err != nil || !done {
			t.Fatalf("final results: done=%v err=%v", done, err)
		}
		got.WriteString(wireLines(rs))
		if got.String() != want {
			t.Errorf("tenant %q: served results differ from the solo session\nserved:\n%s\nsolo:\n%s", tenant, got.String(), want)
		}
	}
}

// TestServerDrainRestoreDifferential: part of the stream before a
// drain+checkpoint+restart, the rest after — the concatenation of the
// results fetched across both server lives is byte-identical to one
// solo run of the full stream. Results fetched before the drain are
// consumed (not replayed); results pending at the drain survive inside
// the checkpoint.
func TestServerDrainRestoreDifferential(t *testing.T) {
	dir := t.TempDir()
	events := synthStream(800, 42)
	want := soloLines(t, []string{testQuery}, events)[0]

	srv1, c1, ts1 := newTestServer(t, Config{Shards: 3, CheckpointDir: dir})
	id, err := c1.subscribe("acme", testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.push("acme", events[:300]); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	rs, done, err := c1.results("acme", id)
	if err != nil || done {
		t.Fatalf("pre-drain results: done=%v err=%v", done, err)
	}
	got.WriteString(wireLines(rs))
	if len(rs) == 0 {
		t.Fatal("pre-drain fetch drained nothing; the consumed-results leg is vacuous")
	}
	// Push more WITHOUT fetching: these results must ride the
	// checkpoint into the next server life.
	if _, err := c1.push("acme", events[300:500]); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.push("acme", events[500:510]); !errors.As(err, new(*WireError)) {
		t.Fatalf("ingest after drain: %v, want a draining wire error", err)
	}
	ts1.Close()

	srv2, c2, _ := newTestServer(t, Config{Shards: 3, CheckpointDir: dir})
	defer srv2.Drain()
	if _, err := c2.push("acme", events[500:]); err != nil {
		t.Fatal(err)
	}
	if err := c2.closeTenant("acme"); err != nil {
		t.Fatal(err)
	}
	rs, done, err = c2.results("acme", id)
	if err != nil || !done {
		t.Fatalf("post-restore results: done=%v err=%v", done, err)
	}
	got.WriteString(wireLines(rs))
	if got.String() != want {
		t.Errorf("results across drain+restore differ from one solo run\nserved:\n%s\nsolo:\n%s", got.String(), want)
	}
}

// TestServerQuotas: every server-side quota rejects with the
// backpressure code — the same sentinel a depth-capped session uses.
func TestServerQuotas(t *testing.T) {
	t.Run("max batch", func(t *testing.T) {
		_, c, _ := newTestServer(t, Config{MaxBatch: 10})
		if _, err := c.push("acme", synthStream(11, 1)); !errors.Is(err, cogra.ErrBackpressure) {
			t.Fatalf("oversized batch: %v, want ErrBackpressure", err)
		}
		if _, err := c.push("acme", synthStream(10, 1)); err != nil {
			t.Fatalf("batch at the cap: %v", err)
		}
	})
	t.Run("ingest rate", func(t *testing.T) {
		_, c, _ := newTestServer(t, Config{IngestRate: 1, IngestBurst: 100})
		if _, err := c.push("acme", synthStream(100, 2)); err != nil {
			t.Fatalf("burst: %v", err)
		}
		events := synthStream(101, 2)[100:]
		if _, err := c.push("acme", events); !errors.Is(err, cogra.ErrBackpressure) {
			t.Fatalf("over quota: %v, want ErrBackpressure", err)
		}
	})
	t.Run("max queries", func(t *testing.T) {
		_, c, _ := newTestServer(t, Config{MaxQueriesPerTenant: 1})
		if _, err := c.subscribe("acme", testQuery); err != nil {
			t.Fatal(err)
		}
		if _, err := c.subscribe("acme", testQuery); !errors.Is(err, cogra.ErrBackpressure) {
			t.Fatalf("over query cap: %v, want ErrBackpressure", err)
		}
		// Another tenant is unaffected.
		if _, err := c.subscribe("globex", testQuery); err != nil {
			t.Fatalf("other tenant hit acme's cap: %v", err)
		}
	})
}

// TestServerErrorCodes: the typed sentinels travel the wire — a client
// using errors.Is sees exactly what an embedded caller would.
func TestServerErrorCodes(t *testing.T) {
	_, c, _ := newTestServer(t, Config{
		SessionOptions: []cogra.SessionOption{cogra.WithSlack(0), cogra.WithLatePolicy(cogra.RejectLate)},
	})
	if _, err := c.subscribe("acme", "GARBAGE !!"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, _, err := c.results("nobody", 0); !errors.Is(err, cogra.ErrNotHosted) {
		t.Fatalf("unknown tenant: %v, want ErrNotHosted", err)
	}
	if _, err := c.subscribe("acme", testQuery); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.results("acme", 99); !errors.Is(err, cogra.ErrNotHosted) {
		t.Fatalf("unknown query id: %v, want ErrNotHosted", err)
	}
	// A late event under RejectLate is the session's own sentinel.
	if _, err := c.push("acme", []*cogra.Event{cogra.NewEvent("A", 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.push("acme", []*cogra.Event{cogra.NewEvent("A", 5)}); !errors.Is(err, cogra.ErrLateEvent) {
		t.Fatalf("late event: %v, want ErrLateEvent", err)
	}
	// A closed tenant refuses events with the closed sentinel.
	if err := c.closeTenant("acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.push("acme", []*cogra.Event{cogra.NewEvent("A", 101)}); !errors.Is(err, cogra.ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	if err := c.closeTenant("acme"); !errors.Is(err, cogra.ErrClosed) {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
}

// TestServerSSE: the streaming results endpoint delivers the same
// bytes as the solo run, ending with a done event once the tenant
// closes.
func TestServerSSE(t *testing.T) {
	_, c, ts := newTestServer(t, Config{})
	events := synthStream(400, 7)
	want := soloLines(t, []string{testQuery}, events)[0]

	id, err := c.subscribe("acme", testQuery)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/acme/results?id=%d&follow=sse", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string, 1)
	go func() {
		defer close(lines)
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if event == "done" {
					lines <- b.String()
					return
				}
				var r WireResult
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &r); err != nil {
					lines <- "unmarshal error: " + err.Error()
					return
				}
				b.WriteString(r.Text)
				b.WriteByte('\n')
			}
		}
		lines <- "stream ended without a done event: " + sc.Err().Error()
	}()

	for i := 0; i < len(events); i += 50 {
		if _, err := c.push("acme", events[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.closeTenant("acme"); err != nil {
		t.Fatal(err)
	}
	got := <-lines
	if got != want {
		t.Errorf("SSE stream differs from the solo session\nserved:\n%s\nsolo:\n%s", got, want)
	}
}

// TestServerTCPIngestDifferential: the framed-TCP bulk path feeds the
// same sessions the HTTP path does; results are fetched over HTTP and
// must match the solo run. Typed rejections surface through the binary
// protocol sentinel-matchable.
func TestServerTCPIngestDifferential(t *testing.T) {
	srv, c, _ := newTestServer(t, Config{MaxBatch: 256})
	ln := newLocalListener(t)
	go srv.ServeTCP(ln)
	defer ln.Close()

	events := synthStream(500, 9)
	want := soloLines(t, []string{testQuery}, events)[0]
	id, err := c.subscribe("acme", testQuery)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := DialIngest(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < len(events); i += 100 {
		if n, err := conn.Push("acme", events[i:i+100]); err != nil || n != 100 {
			t.Fatalf("tcp push: (%d, %v)", n, err)
		}
	}
	// A quota rejection travels the binary protocol as its sentinel.
	if _, err := conn.Push("acme", synthStream(257, 1)); !errors.Is(err, cogra.ErrBackpressure) {
		t.Fatalf("oversized tcp batch: %v, want ErrBackpressure", err)
	}
	// ...and the connection survives it.
	if err := c.closeTenant("acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Push("acme", events[:1]); !errors.Is(err, cogra.ErrClosed) {
		t.Fatalf("tcp push after close: %v, want ErrClosed", err)
	}
	rs, done, err := c.results("acme", id)
	if err != nil || !done {
		t.Fatalf("results: done=%v err=%v", done, err)
	}
	if got := wireLines(rs); got != want {
		t.Errorf("tcp-fed results differ from the solo session\nserved:\n%s\nsolo:\n%s", got, want)
	}
}

// TestServerMetrics: the Prometheus surface reports per-tenant session
// stats scraped concurrently with serving, plus the server counters.
func TestServerMetrics(t *testing.T) {
	_, c, ts := newTestServer(t, Config{})
	if _, err := c.subscribe("acme", testQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.push("acme", synthStream(100, 3)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"cograd_tenants 1",
		"cograd_ingested_events_total 100",
		`cograd_tenant_events_total{tenant="acme"} 100`,
		`cograd_tenant_queries{tenant="acme"} 1`,
		`cograd_tenant_watermark{tenant="acme"} 100`,
		"cograd_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body lacks %q\n%s", want, body)
		}
	}
}

// TestServerDrainRefusals: after Drain every mutating surface refuses
// with the draining code and Drain is idempotent.
func TestServerDrainRefusals(t *testing.T) {
	srv, c, _ := newTestServer(t, Config{})
	if _, err := c.subscribe("acme", testQuery); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal("second drain errored")
	}
	if _, err := c.push("acme", synthStream(1, 1)); err == nil {
		t.Fatal("ingest accepted while draining")
	}
	if _, err := c.subscribe("globex", testQuery); err == nil {
		t.Fatal("subscribe accepted while draining")
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}
