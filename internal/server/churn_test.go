package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	cogra "repro"
)

// tenantScript is the deterministic op sequence one churn tenant
// drives: subscribe both queries, push the stream in batches with
// interleaved incremental drains, unsubscribe one query mid-stream,
// close, final drain. The SAME script replayed against a solo embedded
// Session defines the expected bytes — the server's concurrency (other
// tenants churning on the same shards, metrics scrapes in flight) must
// not leak into any tenant's results.
type tenantScript struct {
	events   []*cogra.Event
	batch    int
	drainAt  map[int]bool // batch indices followed by an incremental drain
	unsubAt  int          // batch index after which query 1 is unsubscribed
	queries  []string
	unsubbed int // which query id to unsubscribe
}

func makeScript(seed int64) tenantScript {
	rng := rand.New(rand.NewSource(seed))
	nBatches := 8 + rng.Intn(5)
	batch := 40 + rng.Intn(40)
	s := tenantScript{
		events:  synthStream(nBatches*batch, seed),
		batch:   batch,
		drainAt: map[int]bool{},
		queries: []string{
			testQuery,
			`RETURN COUNT(*), MAX(A.x) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 30 SLIDE 30`,
		},
		unsubAt:  2 + rng.Intn(nBatches-3),
		unsubbed: rng.Intn(2),
	}
	for i := 0; i < nBatches; i++ {
		if rng.Intn(3) == 0 {
			s.drainAt[i] = true
		}
	}
	return s
}

// runScriptServer drives the script against the shared server and
// returns the per-query concatenated result text in op order.
func runScriptServer(t *testing.T, c *testClient, tenant string, s tenantScript) []string {
	t.Helper()
	ids := make([]int, len(s.queries))
	for i, q := range s.queries {
		id, err := c.subscribe(tenant, q)
		if err != nil {
			t.Error(err)
			return nil
		}
		ids[i] = id
	}
	out := make([]strings.Builder, len(s.queries))
	for b := 0; b*s.batch < len(s.events); b++ {
		if _, err := c.push(tenant, s.events[b*s.batch:(b+1)*s.batch]); err != nil {
			t.Error(err)
			return nil
		}
		if s.drainAt[b] {
			for qi := range ids {
				if qi == s.unsubbed && b >= s.unsubAt {
					continue
				}
				rs, _, err := c.results(tenant, ids[qi])
				if err != nil {
					t.Error(err)
					return nil
				}
				out[qi].WriteString(wireLines(rs))
			}
		}
		if b == s.unsubAt {
			var reply struct {
				Results []WireResult `json:"results"`
			}
			if err := c.do("DELETE", "/v1/"+tenant+"/queries/"+itoa(ids[s.unsubbed]), nil, &reply); err != nil {
				t.Error(err)
				return nil
			}
			out[s.unsubbed].WriteString(wireLines(reply.Results))
		}
	}
	if err := c.closeTenant(tenant); err != nil {
		t.Error(err)
		return nil
	}
	for qi := range ids {
		if qi == s.unsubbed {
			continue
		}
		rs, done, err := c.results(tenant, ids[qi])
		if err != nil || !done {
			t.Errorf("final drain: done=%v err=%v", done, err)
			return nil
		}
		out[qi].WriteString(wireLines(rs))
	}
	lines := make([]string, len(out))
	for i := range out {
		lines[i] = out[i].String()
	}
	return lines
}

// runScriptSolo replays the same script on an embedded Session.
func runScriptSolo(t *testing.T, s tenantScript) []string {
	t.Helper()
	sess := cogra.NewSession()
	subs := make([]*cogra.Subscription, len(s.queries))
	for i, q := range s.queries {
		sub, err := sess.Subscribe(cogra.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	out := make([]strings.Builder, len(s.queries))
	for b := 0; b*s.batch < len(s.events); b++ {
		if err := sess.PushBatch(s.events[b*s.batch : (b+1)*s.batch]); err != nil {
			t.Fatal(err)
		}
		if s.drainAt[b] {
			for qi, sub := range subs {
				if qi == s.unsubbed && b >= s.unsubAt {
					continue
				}
				out[qi].WriteString(resultLines(sub.Drain()))
			}
		}
		if b == s.unsubAt {
			out[s.unsubbed].WriteString(resultLines(subs[s.unsubbed].Unsubscribe()))
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	for qi, sub := range subs {
		if qi == s.unsubbed {
			continue
		}
		out[qi].WriteString(resultLines(sub.Drain()))
	}
	lines := make([]string, len(out))
	for i := range out {
		lines[i] = out[i].String()
	}
	return lines
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestMultiTenantChurn: many tenants churn concurrently on a small
// shard pool — subscribing, pushing, draining incrementally,
// unsubscribing mid-stream, closing — while /metrics is scraped the
// whole time. Every tenant's result stream must be byte-identical to
// its solo embedded replay: tenants share shard goroutines and the
// process, but never state. Run under -race this is also the data-race
// proof for the shard/pulse/metrics synchronization.
func TestMultiTenantChurn(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{Shards: 3})
	_ = srv

	const nTenants = 8
	scripts := make([]tenantScript, nTenants)
	for i := range scripts {
		scripts[i] = makeScript(int64(1000 + i))
	}

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	served := make([][]string, nTenants)
	var wg sync.WaitGroup
	for i := 0; i < nTenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &testClient{t: t, base: ts.URL}
			served[i] = runScriptServer(t, c, "tenant-"+itoa(i), scripts[i])
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if t.Failed() {
		return
	}

	for i := 0; i < nTenants; i++ {
		want := runScriptSolo(t, scripts[i])
		for qi := range want {
			if served[i][qi] != want[qi] {
				t.Errorf("tenant %d query %d: served results diverge from the solo replay\nserved:\n%s\nsolo:\n%s",
					i, qi, served[i][qi], want[qi])
			}
		}
	}
}

// TestChurnHandlerConcurrency is a compile-time-ish guard that the
// handler is safe to share: the churn test above drives it through a
// real httptest server; this one hits the raw handler from several
// goroutines without a network in between, which the race detector
// sees with less noise.
func TestChurnHandlerConcurrency(t *testing.T) {
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-goroutine events: a WithSlack session stamps IDs in
			// place, so sharing one slice across tenants would race.
			events := synthStream(500, 5)
			tenant := "t" + itoa(i)
			if _, werr := srv.Subscribe(tenant, testQuery, false); werr != nil {
				t.Error(werr)
				return
			}
			for j := 0; j < 10; j++ {
				if _, werr := srv.Ingest(tenant, events[j*50:(j+1)*50]); werr != nil {
					t.Error(werr)
					return
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("metrics: %d", rec.Code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
