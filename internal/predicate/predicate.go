// Package predicate implements the WHERE-clause predicate model of the
// COGRA paper and its static classification (§3.2), which drives the
// granularity selector:
//
//   - Local predicates restrict attribute values of single events and
//     filter the stream, e.g. M.activity = passive.
//   - Equivalence predicates [attr] / [A.attr] require all events (or
//     all events bound to alias A) in a trend to carry the same value
//     of an attribute; they partition the stream into sub-streams (§7).
//   - Adjacent predicates relate attributes of adjacent events in a
//     trend, e.g. M.rate < NEXT(M).rate, and force event-grained
//     aggregate storage for the predecessor alias (Theorem 5.1).
package predicate

import (
	"fmt"
	"strings"
)

// Op is a comparison operator ◦ ∈ {<, ≤, >, ≥, =, ≠}.
type Op int

// Comparison operators.
const (
	Lt Op = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// String renders the operator in query syntax.
func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	}
	return "?"
}

// Compare evaluates l ◦ r for float64 or string operands. Mixed or
// unknown operand kinds compare unequal (and fail ordered operators),
// mirroring schema-less CEP engines that treat them as non-matching.
func Compare(l any, r any, op Op) bool {
	switch lv := l.(type) {
	case float64:
		rv, ok := r.(float64)
		if !ok {
			return op == Ne
		}
		return CompareFloats(lv, rv, op)
	case string:
		rv, ok := r.(string)
		if !ok {
			return op == Ne
		}
		return CompareStrings(lv, rv, op)
	}
	return op == Ne
}

// CompareFloats evaluates l ◦ r on numeric operands without boxing;
// the compiled predicate checks of the COGRA runtime call it once per
// candidate pair on the hot path.
func CompareFloats(l, r float64, op Op) bool {
	switch op {
	case Lt:
		return l < r
	case Le:
		return l <= r
	case Gt:
		return l > r
	case Ge:
		return l >= r
	case Eq:
		return l == r
	case Ne:
		return l != r
	}
	return false
}

// CompareStrings evaluates l ◦ r on symbolic operands without boxing.
func CompareStrings(l, r string, op Op) bool {
	switch op {
	case Lt:
		return l < r
	case Le:
		return l <= r
	case Gt:
		return l > r
	case Ge:
		return l >= r
	case Eq:
		return l == r
	case Ne:
		return l != r
	}
	return false
}

// attrGetter is the minimal event view the evaluator needs; satisfied
// by *event.Event. Keeping it structural avoids an import cycle and
// lets tests use lightweight fakes.
type attrGetter interface {
	Attr(name string) (any, bool)
	NumAttr(name string) (float64, bool)
	SymAttr(name string) (string, bool)
}

// Local is a predicate on a single event: Alias.Attr ◦ Value.
// An empty Alias applies the predicate to events of every alias whose
// event carries the attribute.
type Local struct {
	Alias string
	Attr  string
	Op    Op
	Value any // float64 or string
}

// String renders the predicate in query syntax.
func (p Local) String() string {
	v := fmt.Sprintf("%v", p.Value)
	target := p.Attr
	if p.Alias != "" {
		target = p.Alias + "." + p.Attr
	}
	return fmt.Sprintf("%s %s %s", target, p.Op, v)
}

// Eval reports whether the event (matched under the given alias)
// satisfies the predicate. Predicates for other aliases pass
// vacuously; a missing attribute fails.
func (p Local) Eval(alias string, e attrGetter) bool {
	if p.Alias != "" && p.Alias != alias {
		return true
	}
	v, ok := e.Attr(p.Attr)
	if !ok {
		return false
	}
	return Compare(v, p.Value, p.Op)
}

// Equivalence is the [attr] / [A.attr] predicate: all events in a
// trend (or all events of alias A) carry the same value of Attr.
type Equivalence struct {
	// Alias scopes the predicate to one alias; empty means every event
	// in the trend must agree (the paper's [patient], [driver]).
	Alias string
	Attr  string
}

// String renders the predicate in query syntax.
func (p Equivalence) String() string {
	if p.Alias == "" {
		return "[" + p.Attr + "]"
	}
	return "[" + p.Alias + "." + p.Attr + "]"
}

// AppliesTo reports whether events matched under alias are constrained.
func (p Equivalence) AppliesTo(alias string) bool {
	return p.Alias == "" || p.Alias == alias
}

// Key returns the partition value the event contributes under this
// predicate, and whether the event carries the attribute.
func (p Equivalence) Key(e attrGetter) (string, bool) {
	return e.SymAttr(p.Attr)
}

// Adjacent is a predicate on adjacent events in a trend:
// Left.LeftAttr ◦ NEXT(Right).RightAttr, i.e. whenever an event ep
// bound to alias Left immediately precedes an event e bound to alias
// Right in a trend, ep.LeftAttr ◦ e.RightAttr must hold.
type Adjacent struct {
	Left      string
	LeftAttr  string
	Op        Op
	Right     string
	RightAttr string
	// NumFn, if non-nil, replaces the attribute comparison with an
	// arbitrary check over the numeric attribute values (used by
	// workload generators to dial predicate selectivity). Operands
	// reach the function unboxed, so compiled evaluation stays
	// allocation-free; a pair where either attribute is missing or
	// non-numeric fails. NumFn takes precedence over Fn.
	NumFn func(prev, next float64) bool `json:"-"`
	// Fn, if non-nil, replaces the attribute comparison with an
	// arbitrary check over untyped operands; it forces the operands to
	// box into `any` per evaluation, so prefer NumFn for numeric
	// attributes. Left/Right still scope which pairs it guards.
	Fn func(prev, next any) bool `json:"-"`
}

// String renders the predicate in query syntax.
func (p Adjacent) String() string {
	if p.NumFn != nil || p.Fn != nil {
		return fmt.Sprintf("fn(%s, NEXT(%s))", p.Left, p.Right)
	}
	return fmt.Sprintf("%s.%s %s NEXT(%s).%s", p.Left, p.LeftAttr, p.Op, p.Right, p.RightAttr)
}

// Guards reports whether the predicate constrains pairs where an event
// of predAlias precedes an event of alias.
func (p Adjacent) Guards(predAlias, alias string) bool {
	return p.Left == predAlias && p.Right == alias
}

// Eval evaluates the predicate on a concrete adjacent pair.
func (p Adjacent) Eval(prev, next attrGetter) bool {
	if p.NumFn != nil {
		lv, ok := prev.NumAttr(p.LeftAttr)
		if !ok {
			return false
		}
		rv, ok := next.NumAttr(p.RightAttr)
		if !ok {
			return false
		}
		return p.NumFn(lv, rv)
	}
	if p.Fn != nil {
		lv, _ := prev.Attr(p.LeftAttr)
		rv, _ := next.Attr(p.RightAttr)
		return p.Fn(lv, rv)
	}
	lv, ok := prev.Attr(p.LeftAttr)
	if !ok {
		return false
	}
	rv, ok := next.Attr(p.RightAttr)
	if !ok {
		return false
	}
	return Compare(lv, rv, p.Op)
}

// Set is the classified WHERE clause of a query (§3.2). The zero value
// is the empty predicate set (everything passes).
type Set struct {
	Locals       []Local
	Equivalences []Equivalence
	Adjacents    []Adjacent
}

// String renders the full WHERE clause.
func (s *Set) String() string {
	var parts []string
	for _, p := range s.Equivalences {
		parts = append(parts, p.String())
	}
	for _, p := range s.Locals {
		parts = append(parts, p.String())
	}
	for _, p := range s.Adjacents {
		parts = append(parts, p.String())
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " AND ")
}

// HasAdjacent reports whether the query has predicates on adjacent
// events — the condition of the granularity selector (Table 4).
func (s *Set) HasAdjacent() bool { return len(s.Adjacents) > 0 }

// EvalLocal reports whether an event matched under alias passes every
// local predicate.
func (s *Set) EvalLocal(alias string, e attrGetter) bool {
	for _, p := range s.Locals {
		if !p.Eval(alias, e) {
			return false
		}
	}
	return true
}

// EvalAdjacent reports whether the adjacent pair (prev under
// predAlias, next under alias) satisfies every adjacent predicate that
// guards the pair (Definition 7 condition 3).
func (s *Set) EvalAdjacent(predAlias string, prev attrGetter, alias string, next attrGetter) bool {
	for _, p := range s.Adjacents {
		if p.Guards(predAlias, alias) && !p.Eval(prev, next) {
			return false
		}
	}
	return true
}

// predTyper is the slice of the FSA the classifier needs.
type predTyper interface {
	PredTypes(alias string) []string
}

// EventGrainedAliases computes Te of Theorem 5.1: the aliases whose
// events must be stored individually because an adjacent predicate
// (E.attr ◦ Ex.attrx) constrains them and E ∈ P.predTypes(Ex). All
// remaining aliases form Tt and keep type-grained aggregates.
func (s *Set) EventGrainedAliases(fsa predTyper) map[string]bool {
	out := map[string]bool{}
	for _, p := range s.Adjacents {
		for _, predOfRight := range fsa.PredTypes(p.Right) {
			if predOfRight == p.Left {
				out[p.Left] = true
			}
		}
	}
	return out
}

// EquivalencesFor returns the equivalence predicates constraining an
// alias, in declaration order.
func (s *Set) EquivalencesFor(alias string) []Equivalence {
	var out []Equivalence
	for _, p := range s.Equivalences {
		if p.AppliesTo(alias) {
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{}
	c.Locals = append(c.Locals, s.Locals...)
	c.Equivalences = append(c.Equivalences, s.Equivalences...)
	c.Adjacents = append(c.Adjacents, s.Adjacents...)
	return c
}
