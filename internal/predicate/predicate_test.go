package predicate

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		l, r float64
		op   Op
		want bool
	}{
		{1, 2, Lt, true}, {2, 2, Lt, false},
		{2, 2, Le, true}, {3, 2, Le, false},
		{3, 2, Gt, true}, {2, 2, Gt, false},
		{2, 2, Ge, true}, {1, 2, Ge, false},
		{2, 2, Eq, true}, {1, 2, Eq, false},
		{1, 2, Ne, true}, {2, 2, Ne, false},
	}
	for _, c := range cases {
		if got := Compare(c.l, c.r, c.op); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestCompareString(t *testing.T) {
	if !Compare("abc", "abd", Lt) || !Compare("x", "x", Eq) || Compare("x", "x", Ne) {
		t.Error("string comparison wrong")
	}
}

func TestCompareMixedKinds(t *testing.T) {
	if Compare(1.0, "1", Eq) {
		t.Error("number equals string")
	}
	if !Compare(1.0, "1", Ne) {
		t.Error("number should be Ne string")
	}
	if Compare(nil, 1.0, Lt) {
		t.Error("nil ordered")
	}
	if !Compare(nil, nil, Ne) {
		t.Error("unknown kinds should satisfy Ne only")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		lt := Compare(a, b, Lt)
		gt := Compare(a, b, Gt)
		eq := Compare(a, b, Eq)
		// Exactly one of <, >, = holds for ordered doubles (NaN aside).
		if a != a || b != b {
			return true
		}
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1 && Compare(a, b, Le) == (lt || eq) && Compare(a, b, Ge) == (gt || eq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalPredicate(t *testing.T) {
	// M.activity = passive (query q1).
	p := Local{Alias: "M", Attr: "activity", Op: Eq, Value: "passive"}
	passive := event.New("Measurement", 1).WithSym("activity", "passive")
	active := event.New("Measurement", 2).WithSym("activity", "running")
	if !p.Eval("M", passive) {
		t.Error("passive rejected")
	}
	if p.Eval("M", active) {
		t.Error("active accepted")
	}
	// Predicate scoped to another alias passes vacuously.
	if !p.Eval("X", active) {
		t.Error("unrelated alias constrained")
	}
	// Missing attribute fails.
	if p.Eval("M", event.New("Measurement", 3)) {
		t.Error("missing attribute accepted")
	}
}

func TestLocalNumeric(t *testing.T) {
	p := Local{Alias: "", Attr: "price", Op: Gt, Value: 100.0}
	if !p.Eval("A", event.New("Stock", 1).WithNum("price", 101)) {
		t.Error("101 > 100 rejected")
	}
	if p.Eval("A", event.New("Stock", 1).WithNum("price", 99)) {
		t.Error("99 > 100 accepted")
	}
}

func TestEquivalence(t *testing.T) {
	global := Equivalence{Attr: "patient"}
	scoped := Equivalence{Alias: "A", Attr: "company"}
	if !global.AppliesTo("M") || !global.AppliesTo("X") {
		t.Error("global equivalence should apply to all aliases")
	}
	if !scoped.AppliesTo("A") || scoped.AppliesTo("B") {
		t.Error("scoped equivalence alias handling wrong")
	}
	e := event.New("Stock", 1).WithSym("company", "IBM").WithNum("patient", 7)
	if k, ok := scoped.Key(e); !ok || k != "IBM" {
		t.Errorf("Key = %q, %v", k, ok)
	}
	if k, ok := global.Key(e); !ok || k != "7" {
		t.Errorf("numeric Key = %q, %v", k, ok)
	}
}

func TestAdjacentPredicate(t *testing.T) {
	// M.rate < NEXT(M).rate (query q1).
	p := Adjacent{Left: "M", LeftAttr: "rate", Op: Lt, Right: "M", RightAttr: "rate"}
	lo := event.New("Measurement", 1).WithNum("rate", 60)
	hi := event.New("Measurement", 2).WithNum("rate", 70)
	if !p.Eval(lo, hi) {
		t.Error("increasing pair rejected")
	}
	if p.Eval(hi, lo) {
		t.Error("decreasing pair accepted")
	}
	if !p.Guards("M", "M") || p.Guards("M", "X") || p.Guards("X", "M") {
		t.Error("Guards wrong")
	}
	if p.Eval(event.New("Measurement", 1), hi) {
		t.Error("missing attribute accepted")
	}
}

func TestAdjacentFn(t *testing.T) {
	calls := 0
	p := Adjacent{Left: "A", Right: "B", LeftAttr: "x", RightAttr: "x",
		Fn: func(prev, next any) bool { calls++; return prev.(float64)+next.(float64) > 5 }}
	a := event.New("S", 1).WithNum("x", 3)
	b := event.New("S", 2).WithNum("x", 4)
	if !p.Eval(a, b) {
		t.Error("fn predicate rejected")
	}
	if calls != 1 {
		t.Errorf("fn called %d times", calls)
	}
}

func TestAdjacentNumFn(t *testing.T) {
	calls := 0
	p := Adjacent{Left: "A", Right: "B", LeftAttr: "x", RightAttr: "y",
		NumFn: func(prev, next float64) bool { calls++; return prev+next > 5 }}
	a := event.New("S", 1).WithNum("x", 3)
	b := event.New("S", 2).WithNum("y", 4)
	if !p.Eval(a, b) {
		t.Error("numfn predicate rejected")
	}
	if calls != 1 {
		t.Errorf("numfn called %d times", calls)
	}
	// A missing or non-numeric operand fails without calling the fn.
	if p.Eval(event.New("S", 1), b) {
		t.Error("missing left operand accepted")
	}
	if p.Eval(event.New("S", 1).WithSym("x", "3"), b) {
		t.Error("symbolic left operand accepted")
	}
	if calls != 1 {
		t.Errorf("numfn called %d times on failing operands", calls)
	}
	// NumFn takes precedence over Fn.
	p.Fn = func(prev, next any) bool { t.Error("Fn called despite NumFn"); return false }
	if !p.Eval(a, b) {
		t.Error("numfn precedence broken")
	}
}

func TestSetEvalLocalAndAdjacent(t *testing.T) {
	s := &Set{
		Locals: []Local{
			{Alias: "M", Attr: "activity", Op: Eq, Value: "passive"},
			{Attr: "rate", Op: Gt, Value: 0.0},
		},
		Adjacents: []Adjacent{
			{Left: "M", LeftAttr: "rate", Op: Lt, Right: "M", RightAttr: "rate"},
		},
	}
	ok := event.New("Measurement", 1).WithSym("activity", "passive").WithNum("rate", 60)
	ok2 := event.New("Measurement", 2).WithSym("activity", "passive").WithNum("rate", 65)
	bad := event.New("Measurement", 3).WithSym("activity", "running").WithNum("rate", 61)
	if !s.EvalLocal("M", ok) || s.EvalLocal("M", bad) {
		t.Error("EvalLocal wrong")
	}
	if !s.EvalAdjacent("M", ok, "M", ok2) {
		t.Error("increasing adjacency rejected")
	}
	if s.EvalAdjacent("M", ok2, "M", ok) {
		t.Error("decreasing adjacency accepted")
	}
	// Pair not guarded by any adjacent predicate passes.
	if !s.EvalAdjacent("X", ok2, "Y", ok) {
		t.Error("unguarded pair rejected")
	}
}

type fakeFSA map[string][]string

func (f fakeFSA) PredTypes(alias string) []string { return f[alias] }

func TestEventGrainedAliases(t *testing.T) {
	// Pattern (SEQ(A+,B))+: predTypes(A)={A,B}, predTypes(B)={A}.
	fsa := fakeFSA{"A": {"A", "B"}, "B": {"A"}}

	// Paper Example 6: predicates restrict adjacency between b's and
	// following a's -> event-grained counts for B, type-grained for A.
	s := &Set{Adjacents: []Adjacent{
		{Left: "B", LeftAttr: "x", Op: Lt, Right: "A", RightAttr: "x"},
	}}
	got := s.EventGrainedAliases(fsa)
	if !reflect.DeepEqual(got, map[string]bool{"B": true}) {
		t.Errorf("EventGrainedAliases = %v, want {B}", got)
	}

	// A predicate whose left alias is NOT a predecessor of the right
	// alias does not force event-grained storage (Theorem 5.1).
	s2 := &Set{Adjacents: []Adjacent{
		{Left: "B", LeftAttr: "x", Op: Lt, Right: "B", RightAttr: "x"},
	}}
	if got := s2.EventGrainedAliases(fsa); len(got) != 0 {
		t.Errorf("non-predecessor adjacency stored: %v", got)
	}

	// No adjacent predicates -> empty Te (type-grained for everything).
	if got := (&Set{}).EventGrainedAliases(fsa); len(got) != 0 {
		t.Errorf("empty set produced %v", got)
	}
}

func TestEquivalencesFor(t *testing.T) {
	s := &Set{Equivalences: []Equivalence{
		{Attr: "patient"},
		{Alias: "A", Attr: "company"},
		{Alias: "B", Attr: "company"},
	}}
	got := s.EquivalencesFor("A")
	if len(got) != 2 || got[0].Attr != "patient" || got[1].Alias != "A" {
		t.Errorf("EquivalencesFor(A) = %v", got)
	}
}

func TestSetStringAndClone(t *testing.T) {
	s := &Set{
		Locals:       []Local{{Alias: "M", Attr: "activity", Op: Eq, Value: "passive"}},
		Equivalences: []Equivalence{{Attr: "patient"}},
		Adjacents:    []Adjacent{{Left: "M", LeftAttr: "rate", Op: Lt, Right: "M", RightAttr: "rate"}},
	}
	want := "[patient] AND M.activity = passive AND M.rate < NEXT(M).rate"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (&Set{}).String(); got != "true" {
		t.Errorf("empty String = %q", got)
	}
	c := s.Clone()
	c.Locals[0].Alias = "X"
	if s.Locals[0].Alias != "M" {
		t.Error("Clone shares slices")
	}
	if !s.HasAdjacent() || (&Set{}).HasAdjacent() {
		t.Error("HasAdjacent wrong")
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "=", Ne: "!="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
}
