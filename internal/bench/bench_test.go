package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		XLabel:  "events",
		Columns: []string{"COGRA", "SASE", "GRETA"},
		Rows: []Row{
			{
				X: "1000",
				Runs: map[string]metrics.Run{
					"COGRA": {Name: "COGRA", Events: 1000, Latency: 2 * time.Millisecond, PeakBytes: 1024},
					"SASE":  {Name: "SASE", DNF: true},
					"GRETA": {Name: "GRETA", Unsupported: true},
				},
			},
		},
	}
	out := tbl.Format()
	for _, frag := range []string{"Demo", "latency", "peak memory", "throughput",
		"2.00ms", "1.00KiB", "DNF", "n/s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Format() missing %q in:\n%s", frag, out)
		}
	}
	// A column absent from the row map also renders n/s.
	tbl.Rows[0].Runs = map[string]metrics.Run{}
	if !strings.Contains(tbl.Format(), "n/s") {
		t.Error("missing run should render n/s")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond: "500µs",
		3 * time.Millisecond:   "3.00ms",
		2 * time.Second:        "2.00s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table9", "ablation"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Errorf("IDs() returned %d of %d", len(ids), len(reg))
	}
	if ids[0] != "fig5" || ids[len(ids)-1] != "ablation" {
		t.Errorf("presentation order wrong: %v", ids)
	}
}

func TestScaled(t *testing.T) {
	c := Config{Scale: 0.001}
	if got := c.scaled(100); got != 1 {
		t.Errorf("scaled floor = %d, want 1", got)
	}
	c.Scale = 2
	if got := c.scaled(100); got != 200 {
		t.Errorf("scaled = %d, want 200", got)
	}
}
