package bench

// Snapshot latency on a warm fleet: the 8-query shared-runtime
// workload is fed its full stream, then Snapshot is taken repeatedly —
// the serialization cost of live window tables, sub-aggregator state
// and intern tables, which is also the stall a live stream observes
// while a checkpoint's consistent cut is held. Snapshot does not
// mutate the session, so every iteration serializes the same state.

import (
	"io"
	"testing"

	cogra "repro"
)

func BenchmarkSessionSnapshot8(b *testing.B) {
	events := sharedBenchStream(8192)
	sess := cogra.NewSession()
	for _, q := range sharedBenchQueries() {
		if _, err := sess.Subscribe(q); err != nil {
			b.Fatal(err)
		}
	}
	if err := sess.PushBatch(events); err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	var count countWriter
	if err := sess.Snapshot(&count); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Snapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(count), "snapshot-bytes")
}

// countWriter counts bytes written; the benchmark reports the snapshot
// size alongside its latency.
type countWriter int64

func (w *countWriter) Write(p []byte) (int, error) {
	*w += countWriter(len(p))
	return len(p), nil
}
