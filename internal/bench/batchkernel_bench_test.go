package bench

// Batch-kernel benchmarks: the same 8-query fleet as the steady-state
// benches, over a stream shaped the way high-rate sources actually
// emit — bursts of same-type readings sharing one timestamp (a sensor
// array sampled on a tick, a market feed's per-symbol burst). On such
// streams the run-building batch path pays dispatch, the subscription
// index, the watermark and the engine prologue once per run instead of
// once per event; the per-event control on the identical workload is
// the denominator of the speedup (and the byte-identity differential
// lives in the root package's batch tests).

import (
	"fmt"
	"testing"

	cogra "repro"
	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/query"
)

// batchKernelStream emits runs of runLen same-type events per
// timestamp, rotating through the 8 stream types; every event carries
// the fleet's partition key and aggregation operand.
func batchKernelStream(n, runLen int) []*event.Event {
	r := uint64(1)
	next := func() uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r
	}
	out := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		run := i / runLen
		ev := event.New(fmt.Sprintf("S%d", run%8), int64(run)).
			WithNum("v", float64(next()%1000)).
			WithSym("key", fmt.Sprintf("k%d", next()%64))
		ev.ID = int64(i + 1)
		out = append(out, ev)
	}
	return out
}

// batchKernelQueries builds the fleet: like sharedBenchQueries, query
// i aggregates the SEQ(S_i+, S_{i+1}) transition, but as a global
// per-window aggregate (no equivalence or grouping) — the type-grained
// fast path, where one run's predecessor contribution is computed once
// and reused by every event of the run.
func batchKernelQueries() []*query.Query {
	out := make([]*query.Query, sharedBenchQueryCount)
	for i := range out {
		a := fmt.Sprintf("S%d", i)
		b := fmt.Sprintf("S%d", (i+1)%8)
		out[i] = query.NewBuilder(
			pattern.Seq(pattern.Plus(pattern.TypeAs(a, "A")), pattern.TypeAs(b, "B"))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
			Semantics(query.Any).
			Within(256, 256).
			MustBuild()
	}
	return out
}

func benchBatchKernel(b *testing.B, perEvent bool) {
	b.Helper()
	events := batchKernelStream(8192, 32)
	queries := batchKernelQueries()
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := cogra.NewSession()
		for _, q := range queries {
			if _, err := sess.Subscribe(q); err != nil {
				b.Fatal(err)
			}
		}
		if perEvent {
			for _, e := range events {
				if err := sess.Push(e); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for j := 0; j < len(events); j += batch {
				end := j + batch
				if end > len(events) {
					end = len(events)
				}
				if err := sess.PushBatch(events[j:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSessionBatchKernel8 drives the type-run stream through
// PushBatch: runs execute through the columnar batch kernels.
func BenchmarkSessionBatchKernel8(b *testing.B) {
	benchBatchKernel(b, false)
}

// BenchmarkSessionBatchKernelPerEvent8 is the event-at-a-time control
// on the identical stream and fleet — the denominator of the batch
// kernels' speedup.
func BenchmarkSessionBatchKernelPerEvent8(b *testing.B) {
	benchBatchKernel(b, true)
}
