package bench

// Shared-vs-separate multi-query benchmark: the workload motivating
// the shared runtime (internal/runtime). A fleet of standing queries
// watches one stream; executed separately, every engine re-resolves
// every event and re-checks every watermark. The shared runtime
// resolves once against the union catalog and dispatches through the
// per-type index, so each event reaches only the queries whose
// patterns mention its type.

import (
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/runtime"
)

// sharedBenchQueryCount is the hosted fleet size (the acceptance bar
// is ≥ 8 queries over one stream).
const sharedBenchQueryCount = 8

// sharedBenchStream emits events of 8 service types, all carrying the
// shared partition attribute and a numeric value, time advancing every
// 4 events. Most events use a hot shared key space; a quarter carry
// type-local session keys, the production shape where an entity id
// only ever occurs on some types — engines that are forced to observe
// foreign types materialise sub-stream state for keys their query can
// never complete a trend on.
func sharedBenchStream(n int) []*event.Event {
	r := uint64(1)
	next := func() uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r
	}
	out := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		ti := next() % 8
		ev := event.New(fmt.Sprintf("S%d", ti), int64(i/4)).
			WithNum("v", float64(next()%1000))
		if next()%4 == 0 {
			ev.WithSym("key", fmt.Sprintf("s%d-%d", ti, next()%512))
		} else {
			ev.WithSym("key", fmt.Sprintf("k%d", next()%64))
		}
		ev.ID = int64(i + 1)
		out = append(out, ev)
	}
	return out
}

// sharedBenchQueries builds the fleet: query i aggregates the
// SEQ(S_i+, S_{i+1}) transition, so each query subscribes to 2 of the
// 8 stream types — the typical production shape where any one query
// cares about a slice of the stream.
func sharedBenchQueries() []*query.Query {
	out := make([]*query.Query, sharedBenchQueryCount)
	for i := range out {
		a := fmt.Sprintf("S%d", i)
		b := fmt.Sprintf("S%d", (i+1)%8)
		out[i] = query.NewBuilder(
			pattern.Seq(pattern.Plus(pattern.TypeAs(a, "A")), pattern.TypeAs(b, "B"))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "key"}).
			GroupBy(query.GroupKey{Attr: "key"}).
			Within(256, 256).
			MustBuild()
	}
	return out
}

// runShared executes the fleet on one shared runtime.
func runShared(events []*event.Event, queries []*query.Query) ([][]core.Result, error) {
	rt := runtime.New()
	for _, q := range queries {
		if _, err := rt.Subscribe(q); err != nil {
			return nil, err
		}
	}
	if err := rt.ProcessAll(events); err != nil {
		return nil, err
	}
	return rt.Close(), nil
}

// runSeparate executes the fleet as independent engines, each with its
// own catalog, resolve pass and watermark — the status quo cost of N
// queries before the shared runtime.
func runSeparate(events []*event.Event, queries []*query.Query) ([][]core.Result, error) {
	out := make([][]core.Result, len(queries))
	for i, q := range queries {
		plan, err := core.NewPlan(q)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(plan)
		if err := eng.ProcessAll(events); err != nil {
			return nil, err
		}
		out[i] = eng.Close()
	}
	return out, nil
}

// TestSharedRuntimeMatchesSeparateEngines verifies the benchmark's
// two sides agree byte-for-byte, so the speedup is not buying a
// different answer.
func TestSharedRuntimeMatchesSeparateEngines(t *testing.T) {
	events := sharedBenchStream(8192)
	queries := sharedBenchQueries()
	shared, err := runShared(events, queries)
	if err != nil {
		t.Fatal(err)
	}
	separate, err := runSeparate(events, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if got, want := fmt.Sprintf("%v", shared[i]), fmt.Sprintf("%v", separate[i]); got != want {
			t.Errorf("query %d: shared runtime diverges\nshared:   %s\nseparate: %s", i, got, want)
		}
		if len(separate[i]) == 0 {
			t.Errorf("query %d produced no results; benchmark would be vacuous", i)
		}
	}
}

func benchFleet(b *testing.B, run func([]*event.Event, []*query.Query) ([][]core.Result, error)) {
	b.Helper()
	events := sharedBenchStream(8192)
	queries := sharedBenchQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(events, queries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkMultiQuerySharedRuntime8 hosts the 8-query fleet on one
// shared runtime: one resolve pass, per-type dispatch, one watermark.
func BenchmarkMultiQuerySharedRuntime8(b *testing.B) {
	benchFleet(b, runShared)
}

// BenchmarkMultiQuerySeparateEngines8 runs the same fleet as 8
// independent engines over the same stream — the N-passes baseline.
func BenchmarkMultiQuerySeparateEngines8(b *testing.B) {
	benchFleet(b, runSeparate)
}
