package bench

// Subscribe/unsubscribe churn benchmark for the Session API: a
// long-lived stream whose query population changes while it runs —
// the serving workload of the paper's §8 deployment sketch and the
// Hamlet follow-up. Membership changes pay a one-time cost (compile,
// index rebuild, window flush); the steady-state per-event path must
// stay at shared-runtime speed. BenchmarkSessionSteady8 is the
// no-churn control on the same fleet and stream.

import (
	"testing"

	cogra "repro"
)

// churnPeriod is how many events flow between membership changes.
const churnPeriod = 1024

func benchSession(b *testing.B, churn bool) {
	b.Helper()
	events := sharedBenchStream(8192)
	queries := sharedBenchQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := cogra.NewSession()
		subs := make([]*cogra.Subscription, len(queries))
		for qi, q := range queries {
			sub, err := sess.Subscribe(q)
			if err != nil {
				b.Fatal(err)
			}
			subs[qi] = sub
		}
		next := 0 // round-robin churn victim
		for j, e := range events {
			if err := sess.Process(e); err != nil {
				b.Fatal(err)
			}
			if churn && (j+1)%churnPeriod == 0 {
				// Detach the oldest query (flushing its windows) and
				// re-attach the same spec mid-stream.
				subs[next].Unsubscribe()
				if err := subs[next].Err(); err != nil {
					b.Fatal(err)
				}
				sub, err := sess.Subscribe(queries[next])
				if err != nil {
					b.Fatal(err)
				}
				subs[next] = sub
				next = (next + 1) % len(subs)
			}
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSessionSteady8 hosts the 8-query fleet on one Session with
// no membership changes: the control showing Session overhead over the
// bare shared runtime is nil.
func BenchmarkSessionSteady8(b *testing.B) {
	benchSession(b, false)
}

// BenchmarkSessionSteadyBatch8 is the same steady-state fleet fed
// through PushBatch in routing-sized chunks — the batch-first ingest
// path; it may only improve on the per-event number.
func BenchmarkSessionSteadyBatch8(b *testing.B) {
	events := sharedBenchStream(8192)
	queries := sharedBenchQueries()
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := cogra.NewSession()
		for _, q := range queries {
			if _, err := sess.Subscribe(q); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < len(events); j += batch {
			end := j + batch
			if end > len(events) {
				end = len(events)
			}
			if err := sess.PushBatch(events[j:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSessionChurn8 performs a subscribe+unsubscribe pair every
// 1024 events while the stream runs: 8 membership changes per pass,
// each paying compile + index rebuild + window flush.
func BenchmarkSessionChurn8(b *testing.B) {
	benchSession(b, true)
}
