package bench

import (
	"fmt"
	"io"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// all approaches in column order; unsupported combinations render n/s.
var allApproaches = []string{ApproachCogra, ApproachGreta, ApproachASeq, ApproachSase, ApproachFlink}

// tumblingQuery gives every sweep point exactly one full window so
// "events per window" is the swept quantity, like the paper's x-axes.
func tumbling(q *query.Builder, n int) *query.Builder {
	return q.Within(int64(n), int64(n))
}

// Fig5 — contiguous semantics on the physical-activity stream:
// q1-style contiguously increasing heart rate per patient. Two-step
// approaches remain feasible here because contiguous trends are few
// and short (§9.2), but COGRA still wins by a widening factor.
func Fig5(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Figure 5: latency/memory/throughput vs events per window — contiguous (physical activity)",
		XLabel:  "events",
		Columns: allApproaches,
	}
	for _, base := range []int{1000, 5000, 20000, 50000, 100000} {
		n := cfg.scaled(base)
		events := gen.Activity(gen.ActivityConfig{Seed: 5, Events: n, RunLength: 6})
		q := tumbling(query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Max, Alias: "M", Attr: "rate"}).
			Semantics(query.Cont).
			WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
			WhereEquiv(predicate.Equivalence{Attr: "patient"}).
			GroupBy(query.GroupKey{Attr: "patient"}), n).
			MustBuild()
		plan, err := core.NewPlan(q)
		if err != nil {
			return err
		}
		row := cfg.sweep(plan, events, allApproaches, out)
		row.X = fmt.Sprint(n)
		table.Rows = append(table.Rows, row)
	}
	fmt.Fprint(out, table.Format())
	return nil
}

// Fig6 — skip-till-next-match on the public-transportation stream:
// Kleene trips per passenger. The number of NEXT trends is polynomial
// (Table 3), so the two-step SASE degrades quadratically and stops
// terminating, while COGRA stays linear.
func Fig6(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Figure 6: latency/memory/throughput vs events per window — skip-till-next-match (public transportation)",
		XLabel:  "events",
		Columns: allApproaches,
	}
	for _, base := range []int{1000, 5000, 20000, 50000, 100000} {
		n := cfg.scaled(base)
		events := gen.Transit(gen.TransitConfig{Seed: 6, Events: n, Passengers: 30})
		q := tumbling(query.NewBuilder(
			pattern.Plus(pattern.Seq(pattern.Plus(pattern.TypeAs("Board", "B")), pattern.TypeAs("Ride", "R")))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Next).
			WhereEquiv(predicate.Equivalence{Attr: "passenger"}).
			GroupBy(query.GroupKey{Attr: "passenger"}), n).
			MustBuild()
		plan, err := core.NewPlan(q)
		if err != nil {
			return err
		}
		row := cfg.sweep(plan, events, allApproaches, out)
		row.X = fmt.Sprint(n)
		table.Rows = append(table.Rows, row)
	}
	fmt.Fprint(out, table.Format())
	return nil
}

// fig7Query is the q3-shaped stock query without predicates on
// adjacent events: COGRA runs it type-grained.
func fig7Query(n int) *query.Query {
	return tumbling(query.NewBuilder(
		pattern.Seq(pattern.Plus(pattern.TypeAs("Stock", "A")), pattern.Plus(pattern.TypeAs("Stock", "B")))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Avg, Alias: "B", Attr: "price"}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "company"}).
		GroupBy(query.GroupKey{Attr: "company"}), n).
		MustBuild()
}

// Fig7 — skip-till-any-match on the stock stream, all approaches: the
// number of trends grows exponentially (Table 3), so the two-step
// approaches (Flink, SASE) blow up and stop terminating almost
// immediately, while the online approaches survive.
func Fig7(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Figure 7: latency/memory/throughput vs events per window — skip-till-any-match (stock), all approaches",
		XLabel:  "events",
		Columns: allApproaches,
	}
	for _, base := range []int{200, 500, 1000, 5000, 20000} {
		n := cfg.scaled(base)
		events := gen.Stock(gen.StockConfig{Seed: 7, Events: n})
		plan, err := core.NewPlan(fig7Query(n))
		if err != nil {
			return err
		}
		row := cfg.sweep(plan, events, allApproaches, out)
		row.X = fmt.Sprint(n)
		table.Rows = append(table.Rows, row)
	}
	fmt.Fprint(out, table.Format())
	return nil
}

// Fig8 — skip-till-any-match at high rates, online approaches only:
// GRETA's event-granularity graph degrades quadratically and stops
// terminating; A-Seq pays its flattened query workload; COGRA's
// latency stays linear with constant memory.
func Fig8(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Figure 8: latency/memory/throughput vs events per window — skip-till-any-match (stock), online approaches",
		XLabel:  "events",
		Columns: []string{ApproachCogra, ApproachGreta, ApproachASeq},
	}
	for _, base := range []int{10000, 50000, 100000, 200000} {
		n := cfg.scaled(base)
		events := gen.Stock(gen.StockConfig{Seed: 8, Events: n})
		plan, err := core.NewPlan(fig7Query(n))
		if err != nil {
			return err
		}
		row := cfg.sweep(plan, events, table.Columns, out)
		row.X = fmt.Sprint(n)
		table.Rows = append(table.Rows, row)
	}
	fmt.Fprint(out, table.Format())
	return nil
}

// Fig9 — predicate selectivity on the stock stream: adjacent-event
// predicates make COGRA select the mixed granularity. Higher
// selectivity means more and longer trends: the two-step approaches
// degrade exponentially and stop terminating, the online ones stay
// flat. A-Seq does not support such predicates (Table 9).
func Fig9(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Figure 9: latency/memory vs predicate selectivity — skip-till-any-match (stock)",
		XLabel:  "selectivity",
		Columns: allApproaches,
	}
	// The sweep reaches below the paper's 10% because the synthetic
	// pair predicate is independent per pair: the expected predecessor
	// fan-out is selectivity × sub-stream size, so the two-step
	// explosion threshold sits at fan-out ≈ 1 (see EXPERIMENTS.md).
	n := cfg.scaled(6000)
	events := gen.Stock(gen.StockConfig{Seed: 9, Events: n})
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		sel := sel
		// Typed NumFn variant: operands stay unboxed float64s, so the
		// dominant stored-event scan performs zero allocations.
		pass := func(prev, next float64) bool {
			return gen.PairHash(prev, next) < sel
		}
		// SEQ(A+, B) leaves no unguarded Kleene transition: the swept
		// selectivity controls every adjacency. Predicates restrict
		// pairs whose predecessor is an A, so Te = {A} (Theorem 5.1):
		// COGRA stores A-events but keeps B at type granularity — the
		// mixed-vs-event comparison of §9.3.
		q := tumbling(query.NewBuilder(
			pattern.Seq(pattern.Plus(pattern.TypeAs("Stock", "A")), pattern.TypeAs("Stock", "B"))).
			Return(agg.Spec{Func: agg.CountStar}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "company"}).
			WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "u", Right: "A", RightAttr: "u", NumFn: pass}).
			WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "u", Right: "B", RightAttr: "u", NumFn: pass}).
			GroupBy(query.GroupKey{Attr: "company"}), n).
			MustBuild()
		plan, err := core.NewPlan(q)
		if err != nil {
			return err
		}
		if plan.Granularity != core.MixedGrained || !plan.EventGrained["A"] || plan.EventGrained["B"] {
			return fmt.Errorf("fig9: expected mixed granularity with Te={A}, got %v / %v", plan.Granularity, plan.EventGrained)
		}
		row := cfg.sweep(plan, events, allApproaches, out)
		row.X = fmt.Sprintf("%g%%", sel*100)
		table.Rows = append(table.Rows, row)
	}
	fmt.Fprint(out, table.Format())
	return nil
}

// Fig10 — number of trend groups on the public-transportation stream:
// grouping partitions the stream, so more groups mean smaller
// sub-streams. The two-step approaches only terminate once the
// sub-streams are small enough; the online approaches improve mildly.
func Fig10(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Figure 10: latency/memory vs number of trend groups — skip-till-any-match (public transportation)",
		XLabel:  "groups",
		Columns: allApproaches,
	}
	n := cfg.scaled(400)
	for _, groups := range []int{5, 10, 15, 20, 25, 30} {
		events := gen.Transit(gen.TransitConfig{Seed: 10, Events: n, Passengers: groups})
		q := tumbling(query.NewBuilder(
			pattern.Seq(pattern.Plus(pattern.TypeAs("Board", "B")), pattern.TypeAs("Ride", "R"))).
			Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Avg, Alias: "B", Attr: "wait"}).
			Semantics(query.Any).
			WhereEquiv(predicate.Equivalence{Attr: "passenger"}).
			GroupBy(query.GroupKey{Attr: "passenger"}), n).
			MustBuild()
		plan, err := core.NewPlan(q)
		if err != nil {
			return err
		}
		row := cfg.sweep(plan, events, allApproaches, out)
		row.X = fmt.Sprint(groups)
		table.Rows = append(table.Rows, row)
	}
	fmt.Fprint(out, table.Format())
	return nil
}

// Table9 — the expressive-power matrix, regenerated by probing every
// approach with tiny queries rather than hardcoded.
func Table9(cfg Config, out io.Writer) error {
	probes := []struct {
		feature string
		mk      func() *query.Query
	}{
		{"skip-till-any-match", func() *query.Query {
			return query.MustParse(`RETURN COUNT(*) PATTERN A+ SEMANTICS any WITHIN 10 SLIDE 10`)
		}},
		{"skip-till-next-match", func() *query.Query {
			return query.MustParse(`RETURN COUNT(*) PATTERN A+ SEMANTICS next WITHIN 10 SLIDE 10`)
		}},
		{"contiguous", func() *query.Query {
			return query.MustParse(`RETURN COUNT(*) PATTERN A+ SEMANTICS cont WITHIN 10 SLIDE 10`)
		}},
		{"adjacent predicates", func() *query.Query {
			return query.MustParse(`RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(A).x WITHIN 10 SLIDE 10`)
		}},
		{"negation", func() *query.Query {
			return query.MustParse(`RETURN COUNT(*) PATTERN SEQ(A+, NOT(N), B) WITHIN 10 SLIDE 10`)
		}},
	}
	events := []*event.Event{
		event.New("A", 1).WithNum("x", 1),
		event.New("A", 2).WithNum("x", 2),
		event.New("B", 3).WithNum("x", 3),
	}
	fmt.Fprintf(out, "%-22s", "feature")
	for _, a := range allApproaches {
		fmt.Fprintf(out, "%-8s", a)
	}
	fmt.Fprintln(out)
	facts := cfg.factories()
	for _, p := range probes {
		fmt.Fprintf(out, "%-22s", p.feature)
		plan, err := core.NewPlan(p.mk())
		if err != nil {
			return err
		}
		for _, a := range allApproaches {
			r := facts[a](plan, nil)
			cloned := make([]*event.Event, len(events))
			for i, e := range events {
				cloned[i] = e.Clone()
				cloned[i].ID = 0
			}
			_, err := r.Run(cloned)
			if err != nil {
				fmt.Fprintf(out, "%-8s", "-")
			} else {
				fmt.Fprintf(out, "%-8s", "+")
			}
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Ablation — the granularity design choice of §3.3 isolated on one
// query and stream: the same skip-till-any-match query executed with
// type-grained aggregates (COGRA's choice), mixed-grained aggregates
// (forced by an always-true adjacent predicate) and event-grained
// aggregates (GRETA).
func Ablation(cfg Config, out io.Writer) error {
	table := &Table{
		Title:   "Ablation: aggregation granularity (type vs mixed vs event) on one ANY query",
		XLabel:  "events",
		Columns: []string{"type", "mixed", "event"},
	}
	for _, base := range []int{5000, 20000, 50000} {
		n := cfg.scaled(base)
		events := gen.Stock(gen.StockConfig{Seed: 11, Events: n})
		mkBuilder := func() *query.Builder {
			return tumbling(query.NewBuilder(
				pattern.Seq(pattern.Plus(pattern.TypeAs("Stock", "A")), pattern.Plus(pattern.TypeAs("Stock", "B")))).
				Return(agg.Spec{Func: agg.CountStar}).
				Semantics(query.Any).
				WhereEquiv(predicate.Equivalence{Attr: "company"}).
				GroupBy(query.GroupKey{Attr: "company"}), n)
		}
		typePlan, err := core.NewPlan(mkBuilder().MustBuild())
		if err != nil {
			return err
		}
		mixedPlan, err := core.NewPlan(mkBuilder().
			WhereAdjacent(predicate.Adjacent{
				Left: "A", LeftAttr: "u", Right: "B", RightAttr: "u",
				NumFn: func(prev, next float64) bool { return true },
			}).MustBuild())
		if err != nil {
			return err
		}
		if typePlan.Granularity != core.TypeGrained || mixedPlan.Granularity != core.MixedGrained {
			return fmt.Errorf("ablation: unexpected granularities %v/%v", typePlan.Granularity, mixedPlan.Granularity)
		}
		facts := cfg.factories()
		rw := Row{X: fmt.Sprint(n), Runs: map[string]metrics.Run{}}
		run, _ := measure("type", facts[ApproachCogra], typePlan, events)
		rw.Runs["type"] = run
		run, _ = measure("mixed", facts[ApproachCogra], mixedPlan, events)
		rw.Runs["mixed"] = run
		run, _ = measure("event", facts[ApproachGreta], typePlan, events)
		rw.Runs["event"] = run
		table.Rows = append(table.Rows, rw)
	}
	fmt.Fprint(out, table.Format())
	return nil
}
