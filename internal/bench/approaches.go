package bench

import (
	"repro/internal/baselines"
	"repro/internal/baselines/aseq"
	"repro/internal/baselines/flinklite"
	"repro/internal/baselines/greta"
	"repro/internal/baselines/sase"
	"repro/internal/core"
	"repro/internal/metrics"
)

// newSase builds the SASE factory with the two-step budget.
func newSase(c Config) runnerFactory {
	return func(plan *core.Plan, acct *metrics.Accountant) baselines.Runner {
		r := sase.New(plan)
		r.BudgetUnits = c.TwoStepBudget
		r.Acct = acct
		return r
	}
}

// newFlink builds the Flink factory: two-step budget plus the
// flattening cap that stands in for "the length of the longest match"
// of §9.1.
func newFlink(c Config) runnerFactory {
	return func(plan *core.Plan, acct *metrics.Accountant) baselines.Runner {
		r := flinklite.New(plan)
		r.BudgetUnits = c.TwoStepBudget
		r.MaxLen = c.FlattenCap
		r.Acct = acct
		return r
	}
}

// newGreta builds the GRETA factory with the online budget.
func newGreta(c Config) runnerFactory {
	return func(plan *core.Plan, acct *metrics.Accountant) baselines.Runner {
		r := greta.New(plan)
		r.BudgetUnits = c.OnlineBudget
		r.Acct = acct
		return r
	}
}

// newASeq builds the A-Seq factory with the online budget and the
// flattening cap.
func newASeq(c Config) runnerFactory {
	return func(plan *core.Plan, acct *metrics.Accountant) baselines.Runner {
		r := aseq.New(plan)
		r.BudgetUnits = c.OnlineBudget
		r.MaxLen = c.FlattenCap
		r.Acct = acct
		return r
	}
}
