package bench

// Shared trend aggregation benchmark: the workload motivating the
// compile-time fingerprint registry (internal/core) and the runtime
// share/unshare monitor (internal/runtime). Eight standing queries
// run the SAME Kleene trend body — only their RETURN clauses differ —
// so a shared session folds them into one sharing group whose host
// engine computes the sub-trend sums once and projects each query's
// aggregates out of the union; the unshared fleet pays the full trend
// computation eight times per event.

import (
	"fmt"
	"testing"

	cogra "repro"
)

// sharedFleetReturns are the eight RETURN clauses of the fleet: all
// distinct (every query keeps its own answer shape), all projections
// of one union of aggregation specs.
var sharedFleetReturns = [8]string{
	"COUNT(*)",
	"COUNT(M)",
	"SUM(M.v)",
	"AVG(M.v)",
	"MAX(M.v)",
	"MIN(M.v)",
	"COUNT(*), SUM(M.v)",
	"COUNT(*), AVG(M.v)",
}

// sharedFleetQueries builds the fingerprint-equal fleet: one Kleene
// trend body (ascending M runs per key) under eight RETURN variants.
func sharedFleetQueries() []*cogra.Query {
	const body = `
		PATTERN M+
		SEMANTICS skip-till-next-match
		WHERE [key] AND M.v <= NEXT(M).v
		GROUP-BY key
		WITHIN 64 SLIDE 64`
	out := make([]*cogra.Query, len(sharedFleetReturns))
	for i, ret := range sharedFleetReturns {
		out[i] = cogra.MustParse("RETURN " + ret + "\n" + body)
	}
	return out
}

// sharedFleetStream emits a dense measurement stream: M random walks
// over 16 keys with X noise interleaved, time advancing every fourth
// event. The per-epoch volume sits far above the share-up threshold
// for an 8-member group, so a shared session flips to the host engine
// at the first window boundary and stays there.
func sharedFleetStream(n int) []*cogra.Event {
	r := uint64(9)
	next := func() uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r
	}
	vals := [16]float64{}
	for i := range vals {
		vals[i] = 100 + float64(i)
	}
	out := make([]*cogra.Event, 0, n)
	for i := 0; i < n; i++ {
		var ev *cogra.Event
		if next()%8 == 0 {
			ev = cogra.NewEvent("X", int64(i/4)).WithNum("noise", 1)
		} else {
			k := next() % 16
			vals[k] += float64(next()%9) - 4
			ev = cogra.NewEvent("M", int64(i/4)).
				WithSym("key", fmt.Sprintf("k%02d", k)).
				WithNum("v", vals[k])
		}
		ev.ID = int64(i + 1)
		out = append(out, ev)
	}
	return out
}

func benchSharedFleet(b *testing.B, shared bool) {
	b.Helper()
	events := sharedFleetStream(8192)
	queries := sharedFleetQueries()
	var opts []cogra.SessionOption
	if shared {
		opts = append(opts, cogra.WithSharedAggregation())
	}
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := cogra.NewSession(opts...)
		for _, q := range queries {
			if _, err := sess.Subscribe(q); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < len(events); j += batch {
			end := j + batch
			if end > len(events) {
				end = len(events)
			}
			if err := sess.PushBatch(events[j:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSessionShared8 runs the fingerprint-equal fleet with
// shared aggregation on and off. The shared number must beat the
// unshared one by >= 1.5x events/s (the acceptance bar); the gap IS
// the eight-fold trend computation collapsing into one host pass plus
// eight cheap per-result projections.
func BenchmarkSessionShared8(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchSharedFleet(b, true) })
	b.Run("unshared", func(b *testing.B) { benchSharedFleet(b, false) })
}
