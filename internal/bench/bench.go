// Package bench is the experiment harness for §9: it regenerates
// every figure and table of the paper's evaluation as text series —
// latency, peak memory and throughput per approach over the swept
// parameter — using the synthetic workloads of internal/gen.
//
// Event counts are scaled to laptop budgets (Config.Scale); the
// reproduction target is the shape of each curve — which approach
// wins, growth classes, and where the two-step approaches stop
// terminating (shown as DNF, enforced by work budgets) — not the
// paper's absolute numbers, which were measured on a 16-core server
// against proprietary traces.
package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// Config tunes the harness.
type Config struct {
	// Scale multiplies every event count (1.0 = the default laptop
	// scale; raise it on beefier machines).
	Scale float64
	// TwoStepBudget is the work budget for SASE and Flink; exceeding
	// it reports DNF, like the paper's non-terminating runs.
	TwoStepBudget int64
	// OnlineBudget is the work budget for GRETA and A-Seq.
	OnlineBudget int64
	// FlattenCap bounds Kleene flattening for A-Seq and Flink. The
	// paper flattens to the longest match length; the cap keeps the
	// flattened workload finite at bench scale (see EXPERIMENTS.md).
	FlattenCap int
	// Verify cross-checks every completed run against COGRA's
	// results and reports mismatches (slower; on by default).
	Verify bool
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:         1.0,
		TwoStepBudget: 40_000_000,
		OnlineBudget:  400_000_000,
		FlattenCap:    12,
		Verify:        true,
	}
}

// scaled applies the scale factor to an event count.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Approach names, in the column order of the report tables.
const (
	ApproachCogra = "COGRA"
	ApproachGreta = "GRETA"
	ApproachASeq  = "A-Seq"
	ApproachSase  = "SASE"
	ApproachFlink = "Flink"
)

// Row is one sweep point of an experiment.
type Row struct {
	// X is the swept parameter value (events per window, selectivity,
	// number of groups, ...).
	X string
	// Runs holds one measured run per approach.
	Runs map[string]metrics.Run
}

// Table is one report table (one figure panel group).
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
}

// Format renders the latency / memory / throughput panels of a table,
// mirroring the (a)/(b)/(c) panels of the paper's figures.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	panels := []struct {
		name string
		get  func(metrics.Run) string
	}{
		{"latency", func(r metrics.Run) string { return fmtDuration(r.Latency) }},
		{"peak memory", func(r metrics.Run) string { return metrics.FormatBytes(r.PeakBytes) }},
		{"throughput (events/s)", func(r metrics.Run) string { return fmt.Sprintf("%.3g", r.Throughput()) }},
	}
	for _, p := range panels {
		fmt.Fprintf(&b, "\n  %s\n", p.name)
		fmt.Fprintf(&b, "  %-12s", t.XLabel)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%-14s", c)
		}
		b.WriteByte('\n')
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "  %-12s", row.X)
			for _, c := range t.Columns {
				run, ok := row.Runs[c]
				switch {
				case !ok || run.Unsupported:
					fmt.Fprintf(&b, "%-14s", "n/s") // not supported (Table 9)
				case run.DNF:
					fmt.Fprintf(&b, "%-14s", "DNF")
				case run.Err != nil:
					fmt.Fprintf(&b, "%-14s", "ERR")
				default:
					fmt.Fprintf(&b, "%-14s", p.get(run))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// runnerFactory builds a fresh runner (with fresh accounting) for one
// measured run.
type runnerFactory func(plan *core.Plan, acct *metrics.Accountant) baselines.Runner

// measure executes one approach once and converts the outcome into a
// metrics.Run.
func measure(name string, factory runnerFactory, plan *core.Plan, events []*event.Event) (metrics.Run, []core.Result) {
	var acct metrics.Accountant
	r := factory(plan, &acct)
	run := metrics.Run{Name: name, Events: int64(len(events))}
	var timer metrics.Timer
	timer.Start()
	results, err := r.Run(events)
	timer.Stop()
	run.Latency = timer.Elapsed()
	run.PeakBytes = acct.Peak()
	var dnf baselines.ErrBudget
	var unsup baselines.ErrUnsupported
	switch {
	case errors.As(err, &dnf):
		run.DNF = true
	case errors.As(err, &unsup):
		run.Unsupported = true
	case err != nil:
		run.Err = err
	}
	return run, results
}

// factories returns the per-approach runner factories for a config.
func (c Config) factories() map[string]runnerFactory {
	return map[string]runnerFactory{
		ApproachCogra: func(plan *core.Plan, acct *metrics.Accountant) baselines.Runner {
			return &baselines.CograRunner{Plan: plan, Acct: acct}
		},
		ApproachGreta: newGreta(c),
		ApproachASeq:  newASeq(c),
		ApproachSase:  newSase(c),
		ApproachFlink: newFlink(c),
	}
}

// sweep measures the given approaches at one sweep point and verifies
// agreement against COGRA where configured.
func (c Config) sweep(plan *core.Plan, events []*event.Event, approaches []string, warn io.Writer) Row {
	facts := c.factories()
	row := Row{Runs: map[string]metrics.Run{}}
	var ref []core.Result
	for _, name := range approaches {
		run, results := measure(name, facts[name], plan, events)
		row.Runs[name] = run
		if run.DNF || run.Unsupported || run.Err != nil {
			continue
		}
		if name == ApproachCogra {
			ref = results
			continue
		}
		// Capped flattening legitimately misses trends longer than the
		// cap, so A-Seq and Flink are only verified when uncapped.
		capped := (name == ApproachASeq || name == ApproachFlink) &&
			c.FlattenCap > 0 && c.FlattenCap < len(events)
		if c.Verify && !capped && ref != nil && !resultsEqual(ref, results) {
			fmt.Fprintf(warn, "  WARNING: %s disagrees with COGRA at this point\n", name)
		}
	}
	return row
}

func resultsEqual(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Wid != b[i].Wid || strings.Join(a[i].Group, ",") != strings.Join(b[i].Group, ",") {
			return false
		}
		if !agg.ApproxEqual(a[i].Values, b[i].Values, 1e-9) {
			return false
		}
	}
	return true
}

// Experiment is one reproducible experiment of §9.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, out io.Writer) error
}

// Registry returns all experiments keyed by id.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{ID: "fig5", Title: "Figure 5: contiguous semantics (physical activity)", Run: Fig5},
		{ID: "fig6", Title: "Figure 6: skip-till-next-match (public transportation)", Run: Fig6},
		{ID: "fig7", Title: "Figure 7: skip-till-any-match, all approaches (stock)", Run: Fig7},
		{ID: "fig8", Title: "Figure 8: skip-till-any-match, online approaches (stock)", Run: Fig8},
		{ID: "fig9", Title: "Figure 9: predicate selectivity (stock)", Run: Fig9},
		{ID: "fig10", Title: "Figure 10: event trend grouping (public transportation)", Run: Fig10},
		{ID: "table9", Title: "Table 9: expressive power matrix", Run: Table9},
		{ID: "ablation", Title: "Ablation: aggregation granularity on one query", Run: Ablation},
	}
	m := map[string]Experiment{}
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

// IDs returns the experiment ids in presentation order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		oi, oj := orderOf(ids[i]), orderOf(ids[j])
		return oi < oj
	})
	return ids
}

func orderOf(id string) int {
	order := map[string]int{
		"fig5": 0, "fig6": 1, "fig7": 2, "fig8": 3, "fig9": 4, "fig10": 5,
		"table9": 6, "ablation": 7,
	}
	if v, ok := order[id]; ok {
		return v
	}
	return 99
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, out io.Writer) error {
	reg := Registry()
	for _, id := range IDs() {
		e := reg[id]
		fmt.Fprintf(out, "== %s ==\n", e.Title)
		if err := e.Run(cfg, out); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out)
	}
	return nil
}
