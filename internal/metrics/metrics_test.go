package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestAccountant(t *testing.T) {
	var a Accountant
	a.Add(100)
	a.Add(50)
	if a.Current() != 150 || a.Peak() != 150 {
		t.Errorf("cur=%d peak=%d", a.Current(), a.Peak())
	}
	a.Add(-120)
	if a.Current() != 30 || a.Peak() != 150 {
		t.Errorf("after release: cur=%d peak=%d", a.Current(), a.Peak())
	}
	a.Add(200)
	if a.Peak() != 230 {
		t.Errorf("new peak = %d", a.Peak())
	}
	a.Reset()
	if a.Current() != 0 || a.Peak() != 0 {
		t.Error("reset failed")
	}
}

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	first := tm.Elapsed()
	if first < time.Millisecond {
		t.Errorf("elapsed = %v", first)
	}
	tm.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	if tm.Elapsed() <= first {
		t.Error("timer did not accumulate")
	}
}

func TestRunThroughput(t *testing.T) {
	r := Run{Name: "X", Events: 1000, Latency: time.Second}
	if r.Throughput() != 1000 {
		t.Errorf("throughput = %v", r.Throughput())
	}
	if (Run{}).Throughput() != 0 {
		t.Error("zero-latency throughput not zero")
	}
}

func TestRunString(t *testing.T) {
	ok := Run{Name: "COGRA", Events: 10, Latency: time.Millisecond, PeakBytes: 2048}
	s := ok.String()
	for _, frag := range []string{"COGRA", "2.00KiB", "latency"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	dnf := Run{Name: "SASE", DNF: true}
	if !strings.Contains(dnf.String(), "DNF") {
		t.Errorf("DNF String() = %q", dnf.String())
	}
	erred := Run{Name: "X", Err: errors.New("boom")}
	if !strings.Contains(erred.String(), "boom") {
		t.Errorf("error String() = %q", erred.String())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
		2 << 40: "2.00TiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(10)
	if !b.Spend(5) || b.Exceeded() {
		t.Error("within budget misreported")
	}
	if b.Spend(6) {
		t.Error("overspend accepted")
	}
	if !b.Exceeded() || b.Used() != 11 {
		t.Errorf("exceeded=%v used=%d", b.Exceeded(), b.Used())
	}
	unlimited := NewBudget(0)
	if !unlimited.Spend(1<<60) || unlimited.Exceeded() {
		t.Error("unlimited budget tripped")
	}
}

func TestRuntimeMemSnapshot(t *testing.T) {
	if RuntimeMemSnapshot() == 0 {
		t.Error("heap in use reported as zero")
	}
}
