// Package metrics provides the measurement substrate for the
// experimental study (§9.1): wall-clock latency, throughput, and a
// hardware-independent logical peak-memory accountant.
//
// The paper reports peak memory as the storage each approach holds:
// aggregates and sub-graphs for COGRA, the GRETA graph, prefix
// counters for A-Seq, events in stacks plus pointers plus trends for
// SASE, and trends for Flink. Logical byte accounting reproduces
// those curves deterministically, independent of the Go runtime's
// allocator; RuntimeMemSnapshot is also available for physical
// numbers.
package metrics

import (
	"fmt"
	"runtime"
	"time"
)

// Accountant tracks the current and peak logical memory of one
// execution. Components call Add with positive deltas when they store
// state and negative deltas when they release it. The zero value is
// ready to use. Accountant is not safe for concurrent use; parallel
// partitions each use their own and the results are combined with
// Max/Sum.
type Accountant struct {
	cur  int64
	peak int64
}

// Add applies a delta of logical bytes.
func (a *Accountant) Add(delta int64) {
	a.cur += delta
	if a.cur > a.peak {
		a.peak = a.cur
	}
}

// Current returns the live logical bytes.
func (a *Accountant) Current() int64 { return a.cur }

// Peak returns the maximum logical bytes ever live.
func (a *Accountant) Peak() int64 { return a.peak }

// Reset clears both counters.
func (a *Accountant) Reset() { a.cur, a.peak = 0, 0 }

// Timer measures wall-clock latency and derives throughput.
type Timer struct {
	start time.Time
	total time.Duration
}

// Start begins (or resumes) timing.
func (t *Timer) Start() { t.start = time.Now() }

// Stop accumulates the elapsed interval.
func (t *Timer) Stop() { t.total += time.Since(t.start) }

// Elapsed returns the accumulated duration.
func (t *Timer) Elapsed() time.Duration { return t.total }

// Run is the outcome of one measured execution.
type Run struct {
	// Name identifies the approach, e.g. "COGRA" or "SASE".
	Name string
	// Events is the number of events processed.
	Events int64
	// Latency is the total processing wall-clock time. The paper's
	// latency metric is the delay between the last contributing event
	// and result output; with an in-memory source that equals the
	// processing time of the window.
	Latency time.Duration
	// PeakBytes is the logical peak memory.
	PeakBytes int64
	// DNF marks a run that exceeded its budget, mirroring the paper's
	// "fails to terminate" entries.
	DNF bool
	// Unsupported marks a query outside the approach's expressive
	// power (Table 9); such approaches are absent from the paper's
	// charts.
	Unsupported bool
	// Err records an execution error, if any.
	Err error
}

// Throughput returns events per second.
func (r Run) Throughput() float64 {
	if r.Latency <= 0 {
		return 0
	}
	return float64(r.Events) / r.Latency.Seconds()
}

// String renders one result row.
func (r Run) String() string {
	if r.DNF {
		return fmt.Sprintf("%-8s events=%-10d DNF (budget exceeded)", r.Name, r.Events)
	}
	if r.Err != nil {
		return fmt.Sprintf("%-8s events=%-10d error: %v", r.Name, r.Events, r.Err)
	}
	return fmt.Sprintf("%-8s events=%-10d latency=%-14s mem=%-12s throughput=%.0f ev/s",
		r.Name, r.Events, r.Latency, FormatBytes(r.PeakBytes), r.Throughput())
}

// FormatBytes renders a byte count with binary unit prefixes.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2fTiB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// RuntimeMemSnapshot returns the Go heap in use, for physical
// cross-checks of the logical accounting.
func RuntimeMemSnapshot() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Budget bounds a run so exponential baselines terminate the way the
// paper reports them: as DNF. It counts abstract work units (trend
// extensions, constructed trends, ...) and trips after Limit.
type Budget struct {
	// Limit is the maximum number of work units; 0 means unlimited.
	Limit int64
	used  int64
}

// NewBudget returns a budget with the given limit.
func NewBudget(limit int64) *Budget { return &Budget{Limit: limit} }

// Spend consumes n units and reports whether the budget still holds.
func (b *Budget) Spend(n int64) bool {
	b.used += n
	return b.Limit == 0 || b.used <= b.Limit
}

// Exceeded reports whether the budget was exhausted.
func (b *Budget) Exceeded() bool { return b.Limit != 0 && b.used > b.Limit }

// Used returns the consumed units.
func (b *Budget) Used() int64 { return b.used }
