package metrics

// Restore sets both counters verbatim, used by checkpoint restore to
// make logical-memory accounting continuous across a crash: state
// reloading re-executes Add calls whose running values are then
// overwritten with the exact counters the snapshot recorded.
func (a *Accountant) Restore(cur, peak int64) {
	a.cur, a.peak = cur, peak
}
