package gen

import (
	"math"
	"testing"
)

func TestStockDeterministicAndValid(t *testing.T) {
	cfg := StockConfig{Seed: 1, Events: 500}
	a, b := Stock(cfg), Stock(cfg)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	schema := StockSchema()
	companies := map[string]bool{}
	sectors := map[string]bool{}
	for i, e := range a {
		if err := schema.Validate(e); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if e.String() != b[i].String() {
			t.Fatal("generator not deterministic")
		}
		if i > 0 && a[i-1].Time > e.Time {
			t.Fatal("events out of order")
		}
		companies[e.Sym["company"]] = true
		sectors[e.Sym["sector"]] = true
		if e.Num["price"] <= 0 {
			t.Fatalf("non-positive price at %d", i)
		}
	}
	if len(companies) != 19 || len(sectors) != 10 {
		t.Errorf("companies=%d sectors=%d, want 19/10", len(companies), len(sectors))
	}
}

func TestStockDifferentSeedsDiffer(t *testing.T) {
	a := Stock(StockConfig{Seed: 1, Events: 50})
	b := Stock(StockConfig{Seed: 2, Events: 50})
	same := true
	for i := range a {
		if a[i].Num["price"] != b[i].Num["price"] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestActivityRuns(t *testing.T) {
	events := Activity(ActivityConfig{Seed: 3, Events: 2000, Persons: 2, RunLength: 6})
	schema := ActivitySchema()
	increases, total := 0, 0
	last := map[string]float64{}
	for _, e := range events {
		if err := schema.Validate(e); err != nil {
			t.Fatal(err)
		}
		p := e.Sym["patient"]
		if prev, ok := last[p]; ok {
			total++
			if e.Num["rate"] > prev {
				increases++
			}
		}
		last[p] = e.Num["rate"]
	}
	frac := float64(increases) / float64(total)
	// RunLength 6 means ~5/6 of steps increase.
	if frac < 0.7 || frac > 0.95 {
		t.Errorf("increase fraction = %.2f, want ~0.83", frac)
	}
}

func TestTransitGroups(t *testing.T) {
	events := Transit(TransitConfig{Seed: 4, Events: 3000, Passengers: 5})
	passengers := map[string]bool{}
	boards := 0
	for _, e := range events {
		passengers[e.Sym["passenger"]] = true
		if e.Type == "Board" {
			boards++
		}
	}
	if len(passengers) != 5 {
		t.Errorf("passengers = %d, want 5", len(passengers))
	}
	frac := float64(boards) / float64(len(events))
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("board fraction = %.2f, want ~0.7", frac)
	}
}

func TestRideshareWellFormedTrips(t *testing.T) {
	events := Rideshare(RideshareConfig{Seed: 5, Trips: 50, Drivers: 4})
	// Per session: exactly one Accept, one Finish, equal Calls and
	// Cancels (>= 1), Accept first, Finish last among relevant types.
	type tally struct{ accept, call, cancel, finish int }
	perSession := map[string]*tally{}
	for i, e := range events {
		if i > 0 && events[i-1].Time >= e.Time {
			t.Fatal("times not strictly increasing")
		}
		s := e.Sym["session"]
		tl, ok := perSession[s]
		if !ok {
			tl = &tally{}
			perSession[s] = tl
		}
		switch e.Type {
		case "Accept":
			tl.accept++
		case "Call":
			tl.call++
		case "Cancel":
			tl.cancel++
		case "Finish":
			tl.finish++
		}
	}
	if len(perSession) != 50 {
		t.Fatalf("sessions = %d", len(perSession))
	}
	for s, tl := range perSession {
		if tl.accept != 1 || tl.finish != 1 || tl.call != tl.cancel || tl.call < 1 {
			t.Errorf("session %s malformed: %+v", s, tl)
		}
	}
}

func TestPairHashUniformAndDeterministic(t *testing.T) {
	if PairHash(0.123, 0.456) != PairHash(0.123, 0.456) {
		t.Fatal("PairHash not deterministic")
	}
	// Uniformity: mean of PairHash over stock pairs should be ~0.5.
	events := Stock(StockConfig{Seed: 7, Events: 2000})
	var sum float64
	n := 0
	for i := 1; i < len(events); i++ {
		sum += PairHash(events[i-1].Num["u"], events[i].Num["u"])
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("PairHash mean = %.3f, want ~0.5", mean)
	}
	// Selectivity control: fraction below 0.3 should be ~0.3.
	below := 0
	for i := 1; i < len(events); i++ {
		if PairHash(events[i-1].Num["u"], events[i].Num["u"]) < 0.3 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.3) > 0.05 {
		t.Errorf("selectivity 0.3 delivered %.3f", frac)
	}
}

func TestDefaultsApplied(t *testing.T) {
	if len(Stock(StockConfig{Events: 1})) != 1 {
		t.Error("stock defaults")
	}
	if len(Activity(ActivityConfig{Events: 1})) != 1 {
		t.Error("activity defaults")
	}
	if len(Transit(TransitConfig{Events: 1})) != 1 {
		t.Error("transit defaults")
	}
	if len(Rideshare(RideshareConfig{Trips: 1})) < 4 {
		t.Error("rideshare defaults")
	}
}

func TestSchemasCoverGeneratedTypes(t *testing.T) {
	types := map[string]bool{}
	for _, s := range RideshareSchemas() {
		types[s.Type] = true
	}
	for _, e := range Rideshare(RideshareConfig{Seed: 9, Trips: 20, NoiseFraction: 0.5}) {
		if !types[e.Type] {
			t.Fatalf("unschema'd type %q", e.Type)
		}
	}
	ts := map[string]bool{}
	for _, s := range TransitSchemas() {
		ts[s.Type] = true
	}
	for _, e := range Transit(TransitConfig{Seed: 9, Events: 100}) {
		if !ts[e.Type] {
			t.Fatalf("unschema'd transit type %q", e.Type)
		}
	}
}
