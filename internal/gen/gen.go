// Package gen provides seeded synthetic workload generators for the
// four streams of the experimental study (§9.1):
//
//   - a stock stream modelled on the EODData set (19 companies, 10
//     sectors, price/volume attributes) used by queries like q3;
//   - a physical-activity stream modelled on the PAMAP data set (14
//     people, 18 activities, heart rate) used by q1;
//   - a public-transportation stream (30 passengers, 100 stations,
//     waiting times) used by the NEXT-semantics and trend-grouping
//     experiments;
//   - a ridesharing stream (Accept/Call/Cancel/Finish plus in-transit
//     noise) used by q2.
//
// The real traces are not redistributable; the generators reproduce
// their schemas and the knobs the experiments sweep — event count,
// number of groups, predicate selectivity — with deterministic seeds,
// which is what the reproduction needs (the paper's curves are shapes
// over these knobs, not properties of particular ticker symbols).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
)

// StockConfig parameterises the stock stream.
type StockConfig struct {
	Seed      int64
	Events    int
	Companies int // default 19 (EODData)
	Sectors   int // default 10
	// TicksPerEvent spaces time stamps; 1 gives one event per second.
	TicksPerEvent int64
}

// StockSchema describes the generated events.
func StockSchema() *event.Schema {
	return event.NewSchema("Stock", "company", "sector", "#price", "#volume", "#u")
}

// Stock generates the stock stream: a price random walk per company
// plus a uniform attribute u in [0,1) that selectivity-controlled
// predicates hash (Figure 9).
func Stock(cfg StockConfig) []*event.Event {
	if cfg.Companies <= 0 {
		cfg.Companies = 19
	}
	if cfg.Sectors <= 0 {
		cfg.Sectors = 10
	}
	if cfg.TicksPerEvent <= 0 {
		cfg.TicksPerEvent = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	price := make([]float64, cfg.Companies)
	for i := range price {
		price[i] = 50 + rng.Float64()*100
	}
	out := make([]*event.Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		c := rng.Intn(cfg.Companies)
		price[c] += rng.NormFloat64()
		if price[c] < 1 {
			price[c] = 1
		}
		e := event.New("Stock", int64(i)*cfg.TicksPerEvent).
			WithSym("company", fmt.Sprintf("co%02d", c)).
			WithSym("sector", fmt.Sprintf("sec%d", c%cfg.Sectors)).
			WithNum("price", round2(price[c])).
			WithNum("volume", float64(100+rng.Intn(900))).
			WithNum("u", rng.Float64())
		out = append(out, e)
	}
	return out
}

// ActivityConfig parameterises the physical-activity stream.
type ActivityConfig struct {
	Seed       int64
	Events     int
	Persons    int // default 14 (PAMAP)
	Activities int // default 18
	// RunLength is the expected length of a contiguously increasing
	// heart-rate run before a drop (drives the CONT experiments).
	RunLength     int
	TicksPerEvent int64
}

// ActivitySchema describes the generated events.
func ActivitySchema() *event.Schema {
	return event.NewSchema("Measurement", "patient", "activity", "#rate")
}

// Activity generates heart-rate measurements with contiguously
// increasing runs of the configured expected length, per person.
func Activity(cfg ActivityConfig) []*event.Event {
	if cfg.Persons <= 0 {
		cfg.Persons = 14
	}
	if cfg.Activities <= 0 {
		cfg.Activities = 18
	}
	if cfg.RunLength <= 0 {
		cfg.RunLength = 5
	}
	if cfg.TicksPerEvent <= 0 {
		cfg.TicksPerEvent = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rate := make([]float64, cfg.Persons)
	for i := range rate {
		rate[i] = 60 + rng.Float64()*20
	}
	out := make([]*event.Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		p := rng.Intn(cfg.Persons)
		if rng.Intn(cfg.RunLength) == 0 {
			rate[p] -= 5 + rng.Float64()*15 // end of an increasing run
		} else {
			rate[p] += 0.5 + rng.Float64()*2
		}
		if rate[p] < 40 {
			rate[p] = 40
		}
		activity := "passive"
		if rng.Intn(4) == 0 {
			activity = fmt.Sprintf("act%d", 1+rng.Intn(cfg.Activities-1))
		}
		e := event.New("Measurement", int64(i)*cfg.TicksPerEvent).
			WithSym("patient", fmt.Sprintf("p%02d", p)).
			WithSym("activity", activity).
			WithNum("rate", round2(rate[p]))
		out = append(out, e)
	}
	return out
}

// TransitConfig parameterises the public-transportation stream.
type TransitConfig struct {
	Seed       int64
	Events     int
	Passengers int // default 30 (the default trend-group count)
	Stations   int // default 100
	// BoardFraction is the fraction of Board events (the rest are
	// Ride events), shaping the (SEQ(Board+, Ride))+ style patterns.
	BoardFraction float64
	TicksPerEvent int64
}

// TransitSchemas describes the generated events.
func TransitSchemas() []*event.Schema {
	return []*event.Schema{
		event.NewSchema("Board", "passenger", "station", "#wait"),
		event.NewSchema("Ride", "passenger", "station", "#wait"),
	}
}

// Transit generates passenger trips: Board and Ride events with
// uniformly random waiting times (§9.1).
func Transit(cfg TransitConfig) []*event.Event {
	if cfg.Passengers <= 0 {
		cfg.Passengers = 30
	}
	if cfg.Stations <= 0 {
		cfg.Stations = 100
	}
	if cfg.BoardFraction <= 0 || cfg.BoardFraction >= 1 {
		cfg.BoardFraction = 0.7
	}
	if cfg.TicksPerEvent <= 0 {
		cfg.TicksPerEvent = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*event.Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		typ := "Ride"
		if rng.Float64() < cfg.BoardFraction {
			typ = "Board"
		}
		e := event.New(typ, int64(i)*cfg.TicksPerEvent).
			WithSym("passenger", fmt.Sprintf("pass%02d", rng.Intn(cfg.Passengers))).
			WithSym("station", fmt.Sprintf("st%03d", rng.Intn(cfg.Stations))).
			WithNum("wait", float64(rng.Intn(600)))
		out = append(out, e)
	}
	return out
}

// RideshareConfig parameterises the ridesharing stream (query q2).
type RideshareConfig struct {
	Seed    int64
	Trips   int
	Drivers int
	// MaxCallCancel bounds the Call/Cancel pairs per trip.
	MaxCallCancel int
	// NoiseFraction controls interleaved irrelevant events (InTransit,
	// DropOff) that skip-till-next-match must skip.
	NoiseFraction float64
}

// RideshareSchemas describes the generated events.
func RideshareSchemas() []*event.Schema {
	var out []*event.Schema
	for _, t := range []string{"Accept", "Call", "Cancel", "Finish", "InTransit", "DropOff"} {
		out = append(out, event.NewSchema(t, "driver", "session"))
	}
	return out
}

// Rideshare generates q2-style trips: Accept, one or more (Call,
// Cancel) pairs, Finish, interleaved with irrelevant in-transit noise,
// sharing a driver attribute.
func Rideshare(cfg RideshareConfig) []*event.Event {
	if cfg.Drivers <= 0 {
		cfg.Drivers = 10
	}
	if cfg.MaxCallCancel <= 0 {
		cfg.MaxCallCancel = 3
	}
	if cfg.NoiseFraction < 0 {
		cfg.NoiseFraction = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*event.Event
	tm := int64(0)
	emit := func(typ, driver string, session int) {
		tm++
		out = append(out, event.New(typ, tm).
			WithSym("driver", driver).
			WithSym("session", fmt.Sprintf("s%06d", session)))
	}
	noise := func(driver string, session int) {
		for rng.Float64() < cfg.NoiseFraction {
			typ := "InTransit"
			if rng.Intn(2) == 0 {
				typ = "DropOff"
			}
			emit(typ, driver, session)
		}
	}
	for trip := 0; trip < cfg.Trips; trip++ {
		driver := fmt.Sprintf("d%03d", rng.Intn(cfg.Drivers))
		emit("Accept", driver, trip)
		noise(driver, trip)
		pairs := 1 + rng.Intn(cfg.MaxCallCancel)
		for p := 0; p < pairs; p++ {
			emit("Call", driver, trip)
			noise(driver, trip)
			emit("Cancel", driver, trip)
			noise(driver, trip)
		}
		emit("Finish", driver, trip)
	}
	return out
}

// PairHash is the deterministic pair-selectivity device of the
// Figure 9 experiment: given the uniform u attributes of two events,
// it returns a pseudo-random uniform value for the pair; the predicate
// "PairHash(prev, next) < selectivity" then passes the desired
// fraction of adjacent pairs, independently per pair.
func PairHash(u1, u2 float64) float64 {
	x := uint64(u1*1e9) * 0x9E3779B97F4A7C15
	y := uint64(u2*1e9) * 0xBF58476D1CE4E5B9
	z := x ^ y
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z%1_000_000) / 1_000_000
}

func round2(v float64) float64 { return float64(int64(v*100)) / 100 }
