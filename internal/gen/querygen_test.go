package gen

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
)

// testSchema mirrors the fuzzer's stock template: two matchable shapes
// worth of types would be better, but one type plus rich attributes
// already reaches every predicate class the generator draws.
func testSchema() QuerySchema {
	return QuerySchema{
		Types: []string{"Stock", "News"},
		Keys:  []string{"company", "sector"},
		Nums: map[string][]NumAttr{
			"Stock": {{Name: "price", Lo: 1, Hi: 150}, {Name: "volume", Lo: 100, Hi: 1000}},
			"News":  {{Name: "score", Lo: 0, Hi: 1}},
		},
		Syms: map[string][]SymAttr{
			"Stock": {{Name: "sector", Values: []string{"s0", "s1"}}},
		},
		Windows: [][2]int64{{8, 8}, {16, 8}, {10, 15}},
	}
}

// Every drawn query must round-trip through its canonical text (the
// repro codec stores text) and compile to a plan (oracles execute it).
func TestRandomQueryRoundTripsAndCompiles(t *testing.T) {
	s := testSchema()
	semCount := map[query.Semantics]int{}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := RandomQuery(rng, s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		semCount[q.Semantics]++
		src := q.String()
		back, err := query.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse of own rendering failed: %v\n%s", seed, err, src)
		}
		if back.String() != src {
			t.Fatalf("seed %d: String/Parse is not a fixpoint:\n%s\nvs\n%s", seed, src, back.String())
		}
		if _, err := core.NewPlan(back); err != nil {
			t.Fatalf("seed %d: re-parsed query does not compile: %v\n%s", seed, err, src)
		}
	}
	// The draw must cover all three matching semantics, or the fuzzer's
	// coverage silently collapses to one evaluation strategy.
	for _, sem := range []query.Semantics{query.Any, query.Next, query.Cont} {
		if semCount[sem] == 0 {
			t.Errorf("300 draws produced no %v query", sem)
		}
	}
}

func TestRandomQueryDeterministic(t *testing.T) {
	s := testSchema()
	for seed := int64(0); seed < 50; seed++ {
		a, err := RandomQuery(rand.New(rand.NewSource(seed)), s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomQuery(rand.New(rand.NewSource(seed)), s)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: two draws differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

func TestRandomChurnBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 200
	stayers := 0
	for _, iv := range RandomChurn(rng, 500, n) {
		if iv.Join < 0 || iv.Join >= n || iv.Leave <= iv.Join || iv.Leave > n {
			t.Fatalf("interval [%d,%d) out of bounds for %d events", iv.Join, iv.Leave, n)
		}
		if iv.Leave == n {
			stayers++
		}
	}
	if stayers == 0 || stayers == 500 {
		t.Errorf("churn draw degenerate: %d/500 subscriptions stay to the end", stayers)
	}
}

func TestRetimeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	events := Stock(StockConfig{Seed: 4, Events: 400})
	Retime(rng, events, 0.3, 0.1, 16)
	ties, jumps := 0, 0
	for i := 1; i < len(events); i++ {
		d := events[i].Time - events[i-1].Time
		if d < 0 {
			t.Fatalf("event %d: Retime broke time order (%d after %d)", i, events[i].Time, events[i-1].Time)
		}
		if d == 0 {
			ties++
		}
		if d > 1 {
			jumps++
		}
	}
	if ties == 0 {
		t.Error("Retime with tieProb=0.3 produced no equal-time runs")
	}
	if jumps == 0 {
		t.Error("Retime with jumpProb=0.1 produced no window-straddling jumps")
	}
}

// Retime must not touch anything but timestamps.
func TestRetimePreservesPayload(t *testing.T) {
	events := Stock(StockConfig{Seed: 7, Events: 50})
	var copies []event.Event
	for _, e := range events {
		copies = append(copies, *e)
	}
	Retime(rand.New(rand.NewSource(7)), events, 0.5, 0.2, 8)
	for i, e := range events {
		want := copies[i]
		want.Time = e.Time
		if e.Type != want.Type || e.ID != want.ID {
			t.Fatalf("event %d: Retime changed non-time fields", i)
		}
	}
}
