// Query, churn and retiming generators for the differential fuzzer
// (cmd/cografuzz). The stream generators in this package reproduce the
// paper's four workloads; the generators here draw random *queries*
// over those schemas — patterns × matching semantics × predicates ×
// aggregates × windows, the combinatorial space §2 defines — plus
// random membership-churn schedules and timestamp reshapings (ties
// and window-straddling jumps), so scenario diversity stops being
// hand-written.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// NumAttr describes one numeric attribute and the value range local
// predicates should draw constants from.
type NumAttr struct {
	Name   string
	Lo, Hi float64
}

// SymAttr describes one symbolic attribute and the values symbolic
// equality predicates may compare against.
type SymAttr struct {
	Name   string
	Values []string
}

// QuerySchema is the query generator's view of one stream template:
// which event types patterns may mention, which symbolic attributes
// every event carries (equivalence/grouping keys), and which numeric
// and symbolic attributes each type carries (predicate operands).
type QuerySchema struct {
	// Types are the matchable event types, in a fixed order (the
	// generator draws by index, so order is part of determinism).
	Types []string
	// Keys are symbolic attributes carried by every event of every
	// type — equivalence-predicate and GROUP-BY candidates. The first
	// key is the template's preferred partition attribute.
	Keys []string
	// Nums maps each type to its numeric attributes.
	Nums map[string][]NumAttr
	// Syms maps each type to symbolic non-key attributes usable in
	// equality predicates.
	Syms map[string][]SymAttr
	// Windows are the WITHIN/SLIDE pairs to draw from, scaled to the
	// template's timestamp density. Must be non-empty.
	Windows [][2]int64
}

// patternShape enumerates the generator's pattern skeletons; the
// numbers are how many distinct event types each consumes.
type patternShape struct {
	types int
	// anyOnly restricts the shape to skip-till-any-match (the
	// shared-type shape is ambiguous under NEXT/CONT).
	anyOnly bool
	build   func(t []string) pattern.Node
}

func patternShapes() []patternShape {
	return []patternShape{
		{1, false, func(t []string) pattern.Node { return pattern.Plus(pattern.Type(t[0])) }},
		{2, false, func(t []string) pattern.Node {
			return pattern.Seq(pattern.Plus(pattern.Type(t[0])), pattern.Type(t[1]))
		}},
		{2, false, func(t []string) pattern.Node {
			return pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type(t[0])), pattern.Type(t[1])))
		}},
		{3, false, func(t []string) pattern.Node {
			return pattern.Seq(pattern.Type(t[0]), pattern.Star(pattern.Type(t[1])), pattern.Type(t[2]))
		}},
		{3, false, func(t []string) pattern.Node {
			return pattern.Seq(pattern.Plus(pattern.Type(t[0])), pattern.Opt(pattern.Type(t[1])), pattern.Type(t[2]))
		}},
		{3, false, func(t []string) pattern.Node {
			return pattern.Or(pattern.Seq(pattern.Type(t[0]), pattern.Type(t[1])), pattern.Plus(pattern.Type(t[2])))
		}},
		{3, false, func(t []string) pattern.Node {
			return pattern.Seq(pattern.Plus(pattern.Type(t[0])), pattern.Not(pattern.Type(t[1])), pattern.Type(t[2]))
		}},
		{4, false, func(t []string) pattern.Node {
			return pattern.Seq(pattern.Type(t[0]),
				pattern.Plus(pattern.Seq(pattern.Type(t[1]), pattern.Type(t[2]))),
				pattern.Type(t[3]))
		}},
		// Shared type under two aliases: SEQ(S A+, S B+).
		{1, true, func(t []string) pattern.Node {
			return pattern.Seq(pattern.Plus(pattern.TypeAs(t[0], "A")), pattern.Plus(pattern.TypeAs(t[0], "B")))
		}},
	}
}

// RandomQuery draws one validated, compilable-shaped query over the
// schema: a random pattern skeleton instantiated with random types, a
// random matching semantics, random aggregates, random local /
// equivalence / adjacent predicates and a random window. The result
// round-trips through query.String()/query.Parse (the fuzzer's repro
// files store query text). Deterministic in rng.
//
// RandomQuery retries internally when a drawn combination fails
// validation; the error return fires only if every attempt failed
// (schema too small), which a well-formed schema never triggers.
func RandomQuery(rng *rand.Rand, s QuerySchema) (*query.Query, error) {
	var lastErr error
	for attempt := 0; attempt < 32; attempt++ {
		q, err := randomQueryOnce(rng, s)
		if err == nil {
			// The repro codec stores query text; require round-trip now
			// so a mismatch is a generator bug, not a corrupt repro.
			if _, perr := query.Parse(q.String()); perr != nil {
				lastErr = fmt.Errorf("gen: query does not round-trip: %v\n%s", perr, q)
				continue
			}
			// Validation is necessary but not sufficient: some shapes are
			// rejected only at plan time (e.g. alias-scoped equivalence
			// under contiguous semantics). Redraw rather than hand the
			// fuzzer a scenario that cannot execute.
			if _, cerr := core.NewPlan(q); cerr != nil {
				lastErr = fmt.Errorf("gen: query does not compile: %v\n%s", cerr, q)
				continue
			}
			return q, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("gen: no valid query after 32 attempts: %w", lastErr)
}

func randomQueryOnce(rng *rand.Rand, s QuerySchema) (*query.Query, error) {
	shapes := patternShapes()
	shape := shapes[rng.Intn(len(shapes))]
	if shape.types > len(s.Types) {
		shape = shapes[0]
	}
	// Draw distinct types by index, preserving schema order inside the
	// draw so the same rng stream always yields the same instantiation.
	types := drawDistinct(rng, s.Types, shape.types)
	p := shape.build(types)

	sems := []query.Semantics{query.Any, query.Next, query.Cont}
	sem := sems[rng.Intn(len(sems))]
	if shape.anyOnly {
		sem = query.Any
	}
	b := query.NewBuilder(p).Semantics(sem)

	aliases := pattern.Aliases(p)
	// Positive (non-negated) aliases carry aggregates and predicates.
	posAliases := positiveAliases(p, aliases)

	// Aggregates: COUNT(*) always, plus up to two random extras.
	b.Return(agg.Spec{Func: agg.CountStar})
	for i, n := 0, rng.Intn(3); i < n; i++ {
		alias := posAliases[rng.Intn(len(posAliases))]
		nums := s.Nums[typeOfAlias(p, alias)]
		if len(nums) == 0 || rng.Intn(4) == 0 {
			b.Return(agg.Spec{Func: agg.CountType, Alias: alias})
			continue
		}
		attr := nums[rng.Intn(len(nums))]
		funcs := []agg.Func{agg.Min, agg.Max, agg.Sum, agg.Avg}
		b.Return(agg.Spec{Func: funcs[rng.Intn(len(funcs))], Alias: alias, Attr: attr.Name})
	}

	// Local predicates: numeric range or symbolic equality.
	if rng.Intn(2) == 0 {
		alias := posAliases[rng.Intn(len(posAliases))]
		typ := typeOfAlias(p, alias)
		if nums := s.Nums[typ]; len(nums) > 0 && rng.Intn(3) > 0 {
			attr := nums[rng.Intn(len(nums))]
			ops := []predicate.Op{predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge}
			v := attr.Lo + float64(rng.Intn(101))/100*(attr.Hi-attr.Lo)
			b.WhereLocal(predicate.Local{Alias: alias, Attr: attr.Name,
				Op: ops[rng.Intn(len(ops))], Value: roundTo(v, 100)})
		} else if syms := s.Syms[typ]; len(syms) > 0 {
			attr := syms[rng.Intn(len(syms))]
			op := predicate.Eq
			if rng.Intn(3) == 0 {
				op = predicate.Ne
			}
			b.WhereLocal(predicate.Local{Alias: alias, Attr: attr.Name,
				Op: op, Value: attr.Values[rng.Intn(len(attr.Values))]})
		}
	}

	// Adjacent predicate: alias.num ◦ NEXT(alias).num. These force
	// mixed granularity on otherwise type-grained plans — the paper's
	// Table 4 crux — so draw them often.
	if rng.Intn(2) == 0 {
		alias := posAliases[rng.Intn(len(posAliases))]
		if nums := s.Nums[typeOfAlias(p, alias)]; len(nums) > 0 {
			attr := nums[rng.Intn(len(nums))]
			ops := []predicate.Op{predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge}
			b.WhereAdjacent(predicate.Adjacent{
				Left: alias, LeftAttr: attr.Name,
				Op:    ops[rng.Intn(len(ops))],
				Right: alias, RightAttr: attr.Name,
			})
		}
	}

	// Equivalence + grouping. The first key is the preferred partition
	// attribute: drawing it most of the time keeps parallel sessions
	// routable, while the occasional secondary key produces the
	// locality-breaking queries executor groups exist for.
	equivShape := rng.Intn(4)
	if equivShape == 3 && sem == query.Cont {
		// Alias-scoped equivalence is rejected under contiguous
		// semantics (core restricts it to a global [attr] slot).
		equivShape = 1
	}
	switch equivShape {
	case 0: // unpartitioned
	case 1, 2:
		key := s.Keys[0]
		if len(s.Keys) > 1 && rng.Intn(4) == 0 {
			key = s.Keys[1+rng.Intn(len(s.Keys)-1)]
		}
		b.WhereEquiv(predicate.Equivalence{Attr: key})
		if rng.Intn(2) == 0 {
			b.GroupBy(query.GroupKey{Attr: key})
		}
	case 3: // alias-scoped equivalence (+ paired grouping)
		alias := posAliases[rng.Intn(len(posAliases))]
		key := s.Keys[rng.Intn(len(s.Keys))]
		b.WhereEquiv(predicate.Equivalence{Alias: alias, Attr: key})
		if rng.Intn(2) == 0 {
			b.GroupBy(query.GroupKey{Alias: alias, Attr: key})
		}
		// An alias-scoped slot alone leaves the stream unpartitioned;
		// usually add the bare key too so the sub-streams stay small.
		if rng.Intn(3) > 0 {
			b.WhereEquiv(predicate.Equivalence{Attr: s.Keys[0]})
		}
	}

	w := s.Windows[rng.Intn(len(s.Windows))]
	b.Within(w[0], w[1])
	return b.Build()
}

// drawDistinct draws n distinct elements of xs, order of first draw.
func drawDistinct(rng *rand.Rand, xs []string, n int) []string {
	idx := rng.Perm(len(xs))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// typeOfAlias finds the event type an alias is bound to.
func typeOfAlias(p pattern.Node, alias string) string {
	return pattern.AliasTypes(p)[alias]
}

// positiveAliases filters out aliases that appear only under NOT:
// negated types cannot carry aggregates.
func positiveAliases(p pattern.Node, aliases []string) []string {
	neg := map[string]bool{}
	var walk func(n pattern.Node, inNot bool)
	walk = func(n pattern.Node, inNot bool) {
		if t, ok := n.(*pattern.TypeNode); ok {
			a := t.Alias
			if a == "" {
				a = t.EventType
			}
			if inNot {
				neg[a] = true
			}
			return
		}
		_, isNot := n.(*pattern.NotNode)
		for _, c := range pattern.Children(n) {
			walk(c, inNot || isNot)
		}
	}
	walk(p, false)
	var out []string
	for _, a := range aliases {
		if !neg[a] {
			out = append(out, a)
		}
	}
	return out
}

func roundTo(v float64, scale float64) float64 {
	return float64(int64(v*scale)) / scale
}

// ChurnInterval is one subscription's membership window over a stream
// of n events: the query joins before event Join and leaves after
// event Leave-1 (Leave == n means it stays to the end).
type ChurnInterval struct {
	Join  int
	Leave int
}

// RandomChurn draws a membership schedule for extra subscriptions over
// an n-event stream: each joins at a random position and leaves at a
// later one (half of them stay to the end). Deterministic in rng.
func RandomChurn(rng *rand.Rand, subs, n int) []ChurnInterval {
	out := make([]ChurnInterval, subs)
	for i := range out {
		join := rng.Intn(n)
		leave := n
		if rng.Intn(2) == 0 {
			leave = join + 1 + rng.Intn(n-join)
		}
		out[i] = ChurnInterval{Join: join, Leave: leave}
	}
	return out
}

// Retime rewrites the event timestamps of a sorted stream in place
// into a tie-and-jump shape: with probability tieProb the next event
// shares its predecessor's timestamp (dense equal-time runs — the
// stream-transaction stress), with probability jumpProb it jumps by up
// to jumpMax (idle gaps straddling window boundaries), otherwise it
// advances by one. Order is preserved (increments are non-negative).
func Retime(rng *rand.Rand, events []*event.Event, tieProb, jumpProb float64, jumpMax int64) {
	tm := int64(0)
	for i, e := range events {
		if i > 0 {
			switch x := rng.Float64(); {
			case x < tieProb:
				// tie: tm unchanged
			case x < tieProb+jumpProb:
				tm += 2 + rng.Int63n(jumpMax)
			default:
				tm++
			}
		}
		e.Time = tm
	}
}
