package query

import (
	"testing"
)

// FuzzParse drives the SASE-style parser with arbitrary input. The
// invariants: Parse never panics, never returns (nil, nil), and an
// accepted query survives Validate (Parse validates internally) and
// re-renders through its clause Strings without panicking. The seed
// corpus covers every clause form the grammar accepts — the paper's
// q1–q3, each semantics keyword, negation, disjunction, optional and
// star patterns, both predicate operand orders, quoted strings,
// durations and the error paths fuzzing mutates from.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The paper's three example queries.
		"RETURN patient, MIN(M.rate), MAX(M.rate)\nPATTERN Measurement M+\nSEMANTICS contiguous\nWHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive\nGROUP-BY patient\nWITHIN 10 minutes SLIDE 30 seconds",
		"RETURN driver, COUNT(*)\nPATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)\nSEMANTICS skip-till-next-match\nWHERE [driver] GROUP-BY driver\nWITHIN 10 minutes SLIDE 30 seconds",
		"RETURN sector, A.company, B.company, AVG(B.price)\nPATTERN SEQ(Stock A+, Stock B+)\nSEMANTICS skip-till-any-match\nWHERE [A.company] AND [B.company] AND A.price > NEXT(A).price\nGROUP-BY sector, A.company, B.company\nWITHIN 10 minutes SLIDE 10 seconds",
		// Minimal and clause-variation forms.
		"RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS any WITHIN 100 SLIDE 100",
		"RETURN COUNT(*) PATTERN A+ SEMANTICS next WITHIN 1 hour SLIDE 5 min",
		"RETURN COUNT(M) PATTERN Measurement M+ WITHIN 10 SLIDE 10",
		"RETURN SUM(A.v), AVG(A.v) PATTERN SEQ(A*, B?) WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN SEQ(A, NOT N, B) WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN OR(A, B)+ WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN A+ WHERE NEXT(A).x > A.x WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN A+ WHERE 100 < A.price WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN A+ WHERE A.status = 'open trade' WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN A+ WHERE A.x != 3.5 AND A.y >= -2 WITHIN 10 SLIDE 10",
		// Error-shaped inputs that must fail cleanly.
		"", "RETURN", "RETURN COUNT(* PATTERN A+", "PATTERN A+ RETURN COUNT(*)",
		"RETURN COUNT(*) PATTERN A+ WITHIN 0 SLIDE 0",
		"RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10 trailing",
		"RETURN COUNT(*) PATTERN SEQ(NOT A) WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN A+ WHERE [A.] WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN A+ WHERE 'a' = 'b' WITHIN 10 SLIDE 10",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			if q != nil {
				t.Fatalf("Parse returned both a query and an error: %v", err)
			}
			return
		}
		if q == nil {
			t.Fatal("Parse returned (nil, nil)")
		}
		// Accepted queries are internally consistent: they re-validate
		// and every clause renders.
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails Validate: %v", err)
		}
		_ = q.Pattern.String()
		_ = q.Where.String()
		_ = q.Semantics.String()
		_ = q.Window.String()
	})
}
