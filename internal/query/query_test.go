package query

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

const q1Text = `
RETURN patient, MIN(M.rate), MAX(M.rate)
PATTERN Measurement M+
SEMANTICS contiguous
WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
GROUP-BY patient
WITHIN 10 minutes SLIDE 30 seconds`

const q2Text = `
RETURN driver, COUNT(*)
PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
SEMANTICS skip-till-next-match
WHERE [driver] GROUP-BY driver
WITHIN 10 minutes SLIDE 30 seconds`

const q3Text = `
RETURN sector, A.company, B.company, AVG(B.price)
PATTERN SEQ(Stock A+, Stock B+)
SEMANTICS skip-till-any-match
WHERE [A.company] AND [B.company] AND A.price > NEXT(A).price
GROUP-BY sector, A.company, B.company
WITHIN 10 minutes SLIDE 10 seconds`

func TestParseQ1(t *testing.T) {
	q := MustParse(q1Text)
	if q.Semantics != Cont {
		t.Errorf("semantics = %v", q.Semantics)
	}
	if got := q.Pattern.String(); got != "(Measurement M)+" {
		t.Errorf("pattern = %q", got)
	}
	wantReturns := agg.Specs{
		{Func: agg.Min, Alias: "M", Attr: "rate"},
		{Func: agg.Max, Alias: "M", Attr: "rate"},
	}
	if !reflect.DeepEqual(q.Returns, wantReturns) {
		t.Errorf("returns = %v", q.Returns)
	}
	if !reflect.DeepEqual(q.ReturnKeys, []GroupKey{{Attr: "patient"}}) {
		t.Errorf("return keys = %v", q.ReturnKeys)
	}
	if len(q.Where.Equivalences) != 1 || q.Where.Equivalences[0].Attr != "patient" {
		t.Errorf("equivalences = %v", q.Where.Equivalences)
	}
	if len(q.Where.Adjacents) != 1 {
		t.Fatalf("adjacents = %v", q.Where.Adjacents)
	}
	adj := q.Where.Adjacents[0]
	if adj.Left != "M" || adj.Right != "M" || adj.Op != predicate.Lt ||
		adj.LeftAttr != "rate" || adj.RightAttr != "rate" {
		t.Errorf("adjacent = %+v", adj)
	}
	if len(q.Where.Locals) != 1 || q.Where.Locals[0].Value != "passive" {
		t.Errorf("locals = %v", q.Where.Locals)
	}
	if q.Window.Within != 600 || q.Window.Slide != 30 {
		t.Errorf("window = %+v", q.Window)
	}
	if !reflect.DeepEqual(q.GroupBy, []GroupKey{{Attr: "patient"}}) {
		t.Errorf("group by = %v", q.GroupBy)
	}
}

func TestParseQ2(t *testing.T) {
	q := MustParse(q2Text)
	if q.Semantics != Next {
		t.Errorf("semantics = %v", q.Semantics)
	}
	if got := q.Pattern.String(); got != "SEQ(Accept, (SEQ(Call, Cancel))+, Finish)" {
		t.Errorf("pattern = %q", got)
	}
	if len(q.Returns) != 1 || q.Returns[0].Func != agg.CountStar {
		t.Errorf("returns = %v", q.Returns)
	}
	f := pattern.MustCompile(q.Pattern)
	if !f.IsStart("Accept") || !f.IsEnd("Finish") {
		t.Errorf("FSA start/end wrong: %s", f)
	}
}

func TestParseQ3(t *testing.T) {
	q := MustParse(q3Text)
	if q.Semantics != Any {
		t.Errorf("semantics = %v", q.Semantics)
	}
	if got := q.Pattern.String(); got != "SEQ((Stock A)+, (Stock B)+)" {
		t.Errorf("pattern = %q", got)
	}
	if len(q.Where.Equivalences) != 2 ||
		q.Where.Equivalences[0].Alias != "A" || q.Where.Equivalences[1].Alias != "B" {
		t.Errorf("equivalences = %v", q.Where.Equivalences)
	}
	adj := q.Where.Adjacents[0]
	if adj.Left != "A" || adj.Right != "A" || adj.Op != predicate.Gt {
		t.Errorf("adjacent = %+v", adj)
	}
	want := []GroupKey{{Attr: "sector"}, {Alias: "A", Attr: "company"}, {Alias: "B", Attr: "company"}}
	if !reflect.DeepEqual(q.GroupBy, want) {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.Window.Within != 600 || q.Window.Slide != 10 {
		t.Errorf("window = %+v", q.Window)
	}
	if len(q.Returns) != 1 || q.Returns[0].Func != agg.Avg || q.Returns[0].Alias != "B" {
		t.Errorf("returns = %v", q.Returns)
	}
}

func TestParseDefaultsAndShortForms(t *testing.T) {
	q := MustParse(`RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100`)
	if q.Semantics != Any {
		t.Errorf("default semantics = %v", q.Semantics)
	}
	if q.Window.Within != 100 {
		t.Errorf("bare duration = %d", q.Window.Within)
	}
	q2 := MustParse(`RETURN COUNT(*) PATTERN A+ SEMANTICS next WITHIN 1 hour SLIDE 5 min`)
	if q2.Semantics != Next || q2.Window.Within != 3600 || q2.Window.Slide != 300 {
		t.Errorf("short forms: %v %+v", q2.Semantics, q2.Window)
	}
}

func TestParseCountType(t *testing.T) {
	q := MustParse(`RETURN COUNT(M) PATTERN Measurement M+ WITHIN 10 SLIDE 10`)
	if q.Returns[0].Func != agg.CountType || q.Returns[0].Alias != "M" {
		t.Errorf("COUNT(M) parsed as %v", q.Returns[0])
	}
}

func TestParseNextOnLeftNormalises(t *testing.T) {
	q := MustParse(`RETURN COUNT(*) PATTERN A+ WHERE NEXT(A).x > A.x WITHIN 10 SLIDE 10`)
	adj := q.Where.Adjacents[0]
	// NEXT(A).x > A.x  ==  A.x < NEXT(A).x
	if adj.Left != "A" || adj.Op != predicate.Lt {
		t.Errorf("normalised adjacent = %+v", adj)
	}
}

func TestParsePlainTwoAliasComparison(t *testing.T) {
	// Theorem 5.1 form: E.attr ◦ Ex.attrx between distinct types.
	q := MustParse(`RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE A.x <= B.x WITHIN 10 SLIDE 10`)
	adj := q.Where.Adjacents[0]
	if adj.Left != "A" || adj.Right != "B" || adj.Op != predicate.Le {
		t.Errorf("adjacent = %+v", adj)
	}
}

func TestParseConstantOnLeft(t *testing.T) {
	q := MustParse(`RETURN COUNT(*) PATTERN A+ WHERE 100 < A.price WITHIN 10 SLIDE 10`)
	l := q.Where.Locals[0]
	if l.Alias != "A" || l.Attr != "price" || l.Op != predicate.Gt || l.Value != 100.0 {
		t.Errorf("local = %+v", l)
	}
}

func TestParseQuotedString(t *testing.T) {
	q := MustParse(`RETURN COUNT(*) PATTERN A+ WHERE A.status = 'open trade' WITHIN 10 SLIDE 10`)
	if q.Where.Locals[0].Value != "open trade" {
		t.Errorf("local = %+v", q.Where.Locals[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`PATTERN A+ WITHIN 10 SLIDE 10`,        // missing RETURN
		`RETURN COUNT(*) WITHIN 10 SLIDE 10`,   // missing PATTERN
		`RETURN COUNT(*) PATTERN A+ WITHIN 10`, // missing SLIDE
		`RETURN COUNT(*) PATTERN A+ SEMANTICS sometimes WITHIN 10 SLIDE 10`,       // bad semantics
		`RETURN COUNT(*) PATTERN A+ WITHIN 0 SLIDE 10`,                            // zero window
		`RETURN COUNT(*) PATTERN A+ WITHIN 2.5 SLIDE 10`,                          // fractional
		`RETURN MIN(A) PATTERN A+ WITHIN 10 SLIDE 10`,                             // MIN without attr
		`RETURN SUM(*) PATTERN A+ WITHIN 10 SLIDE 10`,                             // SUM(*)
		`RETURN COUNT(A.x) PATTERN A+ WITHIN 10 SLIDE 10`,                         // COUNT(attr)
		`RETURN COUNT(*) PATTERN SEQ(A, A) WITHIN 10 SLIDE 10`,                    // duplicate alias
		`RETURN COUNT(*) PATTERN NOT(A) WITHIN 10 SLIDE 10`,                       // top-level NOT
		`RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(B).y AND WITHIN 1 SLIDE 1`,   // dangling AND
		`RETURN COUNT(*) PATTERN A+ WHERE NEXT(A).x < NEXT(A).y WITHIN 1 SLIDE 1`, // double NEXT
		`RETURN COUNT(*) PATTERN A+ WHERE 1 < 2 WITHIN 1 SLIDE 1`,                 // constants only
		`RETURN COUNT(*) PATTERN A+ WHERE A.x < A.y WITHIN 1 SLIDE 1`,             // same alias, no NEXT
		`RETURN MIN(B.x) PATTERN A+ WITHIN 10 SLIDE 10`,                           // unknown type in RETURN
		`RETURN COUNT(*) PATTERN A+ GROUP-BY B.x WITHIN 10 SLIDE 10`,              // unknown type in GROUP-BY
		`RETURN COUNT(*) PATTERN SEQ(A+,B) GROUP-BY A.c WITHIN 10 SLIDE 10`,       // alias group w/o equivalence
		`RETURN k, COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`,                        // return key not grouped
		`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10 garbage`,                   // trailing input
		`RETURN COUNT(*) PATTERN A* WITHIN 10 SLIDE 10`,                           // empty-trend pattern (via Validate->Compile path it's fine to parse; kept: builder catches)
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			// A* parses fine (compile rejects); skip that known case.
			if strings.Contains(src, "A*") {
				continue
			}
			t.Errorf("case %d (%q): parse succeeded", i, src)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		`RETURN COUNT(*) PATTERN A+ WHERE A.x ! 1 WITHIN 1 SLIDE 1`,
		`RETURN 'unterminated`,
		"RETURN \x01",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: lexer accepted", src)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	for _, src := range []string{q1Text, q2Text, q3Text} {
		q := MustParse(src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip changed query:\n%s\nvs\n%s", q.String(), q2.String())
		}
	}
}

func TestBuilderEquivalentToParser(t *testing.T) {
	parsed := MustParse(q3Text)
	built := NewBuilder(
		pattern.Seq(pattern.Plus(pattern.TypeAs("Stock", "A")), pattern.Plus(pattern.TypeAs("Stock", "B")))).
		ReturnKey(GroupKey{Attr: "sector"}, GroupKey{Alias: "A", Attr: "company"}, GroupKey{Alias: "B", Attr: "company"}).
		Return(agg.Spec{Func: agg.Avg, Alias: "B", Attr: "price"}).
		Semantics(Any).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "company"}).
		WhereEquiv(predicate.Equivalence{Alias: "B", Attr: "company"}).
		WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "price", Op: predicate.Gt, Right: "A", RightAttr: "price"}).
		GroupBy(GroupKey{Attr: "sector"}, GroupKey{Alias: "A", Attr: "company"}, GroupKey{Alias: "B", Attr: "company"}).
		Within(600, 10).
		MustBuild()
	if parsed.String() != built.String() {
		t.Errorf("builder and parser disagree:\n%s\nvs\n%s", parsed.String(), built.String())
	}
}

func TestBuilderValidates(t *testing.T) {
	_, err := NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.Min, Alias: "Z", Attr: "x"}).
		Within(10, 10).Build()
	if err == nil {
		t.Error("builder accepted aggregate over unknown type")
	}
}

func TestSemanticsStringAndParse(t *testing.T) {
	for _, s := range []Semantics{Any, Next, Cont} {
		back, err := ParseSemantics(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v: %v, %v", s, back, err)
		}
	}
	if Semantics(9).String() != "?" {
		t.Error("unknown semantics should render ?")
	}
}

func TestGroupKeyString(t *testing.T) {
	if (GroupKey{Attr: "patient"}).String() != "patient" {
		t.Error("bare key")
	}
	if (GroupKey{Alias: "A", Attr: "company"}).String() != "A.company" {
		t.Error("scoped key")
	}
}

func TestParseMinLength(t *testing.T) {
	q := MustParse(`RETURN COUNT(*) PATTERN M+ MIN-LENGTH 3 WITHIN 10 SLIDE 10`)
	if got := q.Pattern.String(); got != "SEQ(M M_1, M M_2, M+)" {
		t.Errorf("unrolled pattern = %q", got)
	}
	for _, bad := range []string{
		`RETURN COUNT(*) PATTERN M+ MIN-LENGTH 0 WITHIN 10 SLIDE 10`,
		`RETURN COUNT(*) PATTERN M+ MIN-LENGTH 2.5 WITHIN 10 SLIDE 10`,
		`RETURN COUNT(*) PATTERN SEQ(A,B) MIN-LENGTH 3 WITHIN 10 SLIDE 10`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
