package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the query language.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokPlus
	tokStar
	tokQMark
	tokLt
	tokLe
	tokGt
	tokGe
	tokEq
	tokNe
)

// token is one lexical token with its source position for error
// messages.
type token struct {
	kind tokKind
	text string
	num  float64
	pos  int // byte offset in the input
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokNumber:
		return fmt.Sprintf("number %v", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenises a query string. Identifiers may contain letters,
// digits, '_' and '-' (for skip-till-any-match); a '-' is part of an
// identifier only when it glues two identifier characters, so
// "GROUP-BY" and "skip-till-any-match" lex as single identifiers while
// "WITHIN 10" minus signs on numbers are handled in the number rule.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '.':
			toks = append(toks, token{kind: tokDot, text: ".", pos: i})
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, text: "+", pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, text: "*", pos: i})
			i++
		case c == '?':
			toks = append(toks, token{kind: tokQMark, text: "?", pos: i})
			i++
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokLe, text: "<=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokLt, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokGe, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokGt, text: ">", pos: i})
				i++
			}
		case c == '=':
			toks = append(toks, token{kind: tokEq, text: "=", pos: i})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokNe, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '!' at offset %d", i)
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && src[j] != quote {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				// A '.' is part of the number only when followed by a digit
				// (so "10.minutes" would not arise; attribute dots never
				// follow digits in this grammar anyway).
				if src[j] == '.' && (j+1 >= n || src[j+1] < '0' || src[j+1] > '9') {
					break
				}
				j++
			}
			v, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q at offset %d", src[i:j], i)
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: v, pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(src, j) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

// isIdentPart treats '-' as part of an identifier when squeezed
// between identifier characters, so GROUP-BY and skip-till-next-match
// are single tokens.
func isIdentPart(src string, j int) bool {
	c := rune(src[j])
	if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
		return true
	}
	if c == '-' && j+1 < len(src) {
		next := rune(src[j+1])
		return unicode.IsLetter(next) || unicode.IsDigit(next) || next == '_'
	}
	return false
}

// keyword matching is case-insensitive.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
