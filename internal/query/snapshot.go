package query

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/snap"
	"repro/internal/window"
)

// Structural snapshot codec for queries: a checkpoint records each
// subscription's query by structure (not by source text, which a
// Builder-constructed query never had) and restore recompiles it
// against the restored catalog. Only declarative state is encoded;
// queries carrying opaque predicate functions (Adjacent.NumFn/Fn) or
// non-float64/string Local values cannot be checkpointed and fail at
// Snapshot time with a descriptive error.

// maxPatternDepth bounds pattern-AST recursion while decoding, so a
// corrupt snapshot cannot drive unbounded stack growth.
const maxPatternDepth = 1000

// Pattern node tags.
const (
	tagType uint8 = iota
	tagSeq
	tagPlus
	tagStar
	tagOpt
	tagOr
	tagNot
)

// Snapshot writes q's structure to w.
func (q *Query) Snapshot(w *snap.Writer) error {
	w.U32(uint32(len(q.Returns)))
	for _, s := range q.Returns {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("snapshot query: %w", err)
		}
		w.U8(uint8(s.Func))
		w.Str(s.Alias)
		w.Str(s.Attr)
	}
	writeGroupKeys(w, q.ReturnKeys)
	if err := writePattern(w, q.Pattern); err != nil {
		return err
	}
	w.U8(uint8(q.Semantics))
	where := q.Where
	if where == nil {
		where = &predicate.Set{}
	}
	w.U32(uint32(len(where.Locals)))
	for _, p := range where.Locals {
		w.Str(p.Alias)
		w.Str(p.Attr)
		w.U8(uint8(p.Op))
		switch v := p.Value.(type) {
		case float64:
			w.U8(0)
			w.F64(v)
		case string:
			w.U8(1)
			w.Str(v)
		default:
			return fmt.Errorf("snapshot query: local predicate value %T is not serializable (float64 or string)", p.Value)
		}
	}
	w.U32(uint32(len(where.Equivalences)))
	for _, p := range where.Equivalences {
		w.Str(p.Alias)
		w.Str(p.Attr)
	}
	w.U32(uint32(len(where.Adjacents)))
	for _, p := range where.Adjacents {
		if p.NumFn != nil || p.Fn != nil {
			return fmt.Errorf("snapshot query: adjacent predicate %s.%s carries an opaque comparison function and cannot be checkpointed", p.Left, p.LeftAttr)
		}
		w.Str(p.Left)
		w.Str(p.LeftAttr)
		w.U8(uint8(p.Op))
		w.Str(p.Right)
		w.Str(p.RightAttr)
	}
	writeGroupKeys(w, q.GroupBy)
	w.I64(q.Window.Within)
	w.I64(q.Window.Slide)
	return nil
}

// RestoreQuery decodes one query written by Snapshot.
func RestoreQuery(r *snap.Reader) (*Query, error) {
	q := &Query{}
	n := r.Count(3)
	for i := 0; i < n; i++ {
		fn := agg.Func(r.U8())
		if fn > agg.Avg {
			return nil, fmt.Errorf("%w: aggregate func %d", snap.ErrBadSnapshot, fn)
		}
		q.Returns = append(q.Returns, agg.Spec{Func: fn, Alias: r.Str(), Attr: r.Str()})
	}
	q.ReturnKeys = readGroupKeys(r)
	p, err := readPattern(r, 0)
	if err != nil {
		return nil, err
	}
	q.Pattern = p
	sem := Semantics(r.U8())
	if sem > Cont {
		return nil, fmt.Errorf("%w: semantics %d", snap.ErrBadSnapshot, sem)
	}
	q.Semantics = sem
	where := &predicate.Set{}
	n = r.Count(10)
	for i := 0; i < n; i++ {
		p := predicate.Local{Alias: r.Str(), Attr: r.Str(), Op: predicate.Op(r.U8())}
		if p.Op > predicate.Ne {
			return nil, fmt.Errorf("%w: predicate op %d", snap.ErrBadSnapshot, p.Op)
		}
		switch kind := r.U8(); kind {
		case 0:
			p.Value = r.F64()
		case 1:
			p.Value = r.Str()
		default:
			if r.Err() == nil {
				return nil, fmt.Errorf("%w: local predicate value kind %d", snap.ErrBadSnapshot, kind)
			}
		}
		where.Locals = append(where.Locals, p)
	}
	n = r.Count(8)
	for i := 0; i < n; i++ {
		where.Equivalences = append(where.Equivalences, predicate.Equivalence{Alias: r.Str(), Attr: r.Str()})
	}
	n = r.Count(17)
	for i := 0; i < n; i++ {
		p := predicate.Adjacent{Left: r.Str(), LeftAttr: r.Str(), Op: predicate.Op(r.U8()),
			Right: r.Str(), RightAttr: r.Str()}
		if p.Op > predicate.Ne {
			return nil, fmt.Errorf("%w: predicate op %d", snap.ErrBadSnapshot, p.Op)
		}
		where.Adjacents = append(where.Adjacents, p)
	}
	q.Where = where
	q.GroupBy = readGroupKeys(r)
	q.Window = window.Spec{Within: r.I64(), Slide: r.I64()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("%w: restored query invalid: %v", snap.ErrBadSnapshot, err)
	}
	return q, nil
}

func writeGroupKeys(w *snap.Writer, keys []GroupKey) {
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.Str(k.Alias)
		w.Str(k.Attr)
	}
}

func readGroupKeys(r *snap.Reader) []GroupKey {
	n := r.Count(8)
	var out []GroupKey
	for i := 0; i < n; i++ {
		out = append(out, GroupKey{Alias: r.Str(), Attr: r.Str()})
	}
	return out
}

func writePattern(w *snap.Writer, p pattern.Node) error {
	switch v := p.(type) {
	case *pattern.TypeNode:
		w.U8(tagType)
		w.Str(v.EventType)
		w.Str(v.Alias)
	case *pattern.SeqNode:
		w.U8(tagSeq)
		w.U32(uint32(len(v.Parts)))
		for _, c := range v.Parts {
			if err := writePattern(w, c); err != nil {
				return err
			}
		}
	case *pattern.PlusNode:
		w.U8(tagPlus)
		return writePattern(w, v.Sub)
	case *pattern.StarNode:
		w.U8(tagStar)
		return writePattern(w, v.Sub)
	case *pattern.OptNode:
		w.U8(tagOpt)
		return writePattern(w, v.Sub)
	case *pattern.OrNode:
		w.U8(tagOr)
		w.U32(uint32(len(v.Parts)))
		for _, c := range v.Parts {
			if err := writePattern(w, c); err != nil {
				return err
			}
		}
	case *pattern.NotNode:
		w.U8(tagNot)
		return writePattern(w, v.Sub)
	default:
		return fmt.Errorf("snapshot query: unknown pattern node %T", p)
	}
	return nil
}

func readPattern(r *snap.Reader, depth int) (pattern.Node, error) {
	if depth > maxPatternDepth {
		return nil, fmt.Errorf("%w: pattern nesting exceeds %d", snap.ErrBadSnapshot, maxPatternDepth)
	}
	switch tag := r.U8(); tag {
	case tagType:
		return &pattern.TypeNode{EventType: r.Str(), Alias: r.Str()}, nil
	case tagSeq, tagOr:
		n := r.Count(1)
		parts := make([]pattern.Node, 0, min(n, 64))
		for i := 0; i < n; i++ {
			c, err := readPattern(r, depth+1)
			if err != nil {
				return nil, err
			}
			parts = append(parts, c)
		}
		if tag == tagSeq {
			return &pattern.SeqNode{Parts: parts}, nil
		}
		return &pattern.OrNode{Parts: parts}, nil
	case tagPlus, tagStar, tagOpt, tagNot:
		sub, err := readPattern(r, depth+1)
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagPlus:
			return &pattern.PlusNode{Sub: sub}, nil
		case tagStar:
			return &pattern.StarNode{Sub: sub}, nil
		case tagOpt:
			return &pattern.OptNode{Sub: sub}, nil
		default:
			return &pattern.NotNode{Sub: sub}, nil
		}
	default:
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: pattern node tag %d", snap.ErrBadSnapshot, tag)
	}
}
