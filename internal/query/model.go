// Package query defines the event trend aggregation query model of the
// COGRA paper (Definition 6) and a parser for the SASE-style query
// language the paper's examples q1–q3 are written in:
//
//	RETURN    patient, MIN(M.rate), MAX(M.rate)
//	PATTERN   Measurement M+
//	SEMANTICS contiguous
//	WHERE     [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
//	GROUP-BY  patient
//	WITHIN    10 minutes SLIDE 30 seconds
package query

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/window"
)

// Semantics is the event matching semantics S of a query (§2.2).
type Semantics int

// The three event matching semantics, from most flexible to most
// restrictive.
const (
	// Any is skip-till-any-match: every relevant event may extend a
	// trend or be skipped; all possible trends are detected.
	Any Semantics = iota
	// Next is skip-till-next-match: relevant events must be matched,
	// irrelevant events are skipped.
	Next
	// Cont is contiguous: no event may occur between adjacent events
	// of a trend.
	Cont
)

// String renders the semantics in query syntax.
func (s Semantics) String() string {
	switch s {
	case Any:
		return "skip-till-any-match"
	case Next:
		return "skip-till-next-match"
	case Cont:
		return "contiguous"
	}
	return "?"
}

// ParseSemantics accepts the full names and short aliases.
func ParseSemantics(s string) (Semantics, error) {
	switch strings.ToLower(s) {
	case "skip-till-any-match", "any":
		return Any, nil
	case "skip-till-next-match", "next":
		return Next, nil
	case "contiguous", "cont":
		return Cont, nil
	}
	return 0, fmt.Errorf("query: unknown semantics %q", s)
}

// GroupKey is one GROUP-BY item: a bare stream attribute ("patient")
// or an alias-scoped attribute ("A.company").
type GroupKey struct {
	// Alias is empty for bare attributes.
	Alias string
	Attr  string
}

// String renders the key in query syntax.
func (g GroupKey) String() string {
	if g.Alias == "" {
		return g.Attr
	}
	return g.Alias + "." + g.Attr
}

// Query is an event trend aggregation query (Definition 6).
type Query struct {
	// Returns lists the requested aggregates (RETURN clause). Bare
	// grouping attributes in the RETURN clause are recorded in
	// ReturnKeys and echo the group.
	Returns agg.Specs
	// ReturnKeys are the non-aggregate RETURN items, which must also
	// appear in GROUP-BY.
	ReturnKeys []GroupKey
	// Pattern is the Kleene pattern P.
	Pattern pattern.Node
	// Semantics is the event matching semantics S.
	Semantics Semantics
	// Where holds the classified predicates θ (may be empty).
	Where *predicate.Set
	// GroupBy lists the grouping keys G (may be empty).
	GroupBy []GroupKey
	// Window is the WITHIN/SLIDE clause in stream time units.
	Window window.Spec
}

// String renders the query back into (normalised) query syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("RETURN ")
	var items []string
	for _, k := range q.ReturnKeys {
		items = append(items, k.String())
	}
	for _, s := range q.Returns {
		items = append(items, s.String())
	}
	b.WriteString(strings.Join(items, ", "))
	fmt.Fprintf(&b, "\nPATTERN %s", q.Pattern)
	fmt.Fprintf(&b, "\nSEMANTICS %s", q.Semantics)
	if q.Where != nil && q.Where.String() != "true" {
		fmt.Fprintf(&b, "\nWHERE %s", q.Where)
	}
	if len(q.GroupBy) > 0 {
		keys := make([]string, len(q.GroupBy))
		for i, k := range q.GroupBy {
			keys[i] = k.String()
		}
		fmt.Fprintf(&b, "\nGROUP-BY %s", strings.Join(keys, ", "))
	}
	fmt.Fprintf(&b, "\nWITHIN %d SLIDE %d", q.Window.Within, q.Window.Slide)
	return b.String()
}

// Validate performs the static checks shared by all execution
// strategies: well-formed pattern, aggregates referencing pattern
// aliases, group keys consistent with equivalence predicates, and a
// valid window.
func (q *Query) Validate() error {
	if q.Pattern == nil {
		return fmt.Errorf("query: missing PATTERN clause")
	}
	if err := pattern.Validate(q.Pattern); err != nil {
		return err
	}
	if err := q.Returns.Validate(); err != nil {
		return err
	}
	if err := q.Window.Validate(); err != nil {
		return err
	}
	aliases := map[string]bool{}
	for _, a := range pattern.Aliases(q.Pattern) {
		aliases[a] = true
	}
	for _, s := range q.Returns {
		if s.Alias != "" && !aliases[s.Alias] {
			return fmt.Errorf("query: aggregate %s references unknown event type %q", s, s.Alias)
		}
	}
	if q.Where == nil {
		q.Where = &predicate.Set{}
	}
	for _, p := range q.Where.Locals {
		if p.Alias != "" && !aliases[p.Alias] {
			return fmt.Errorf("query: predicate %s references unknown event type %q", p, p.Alias)
		}
	}
	for _, p := range q.Where.Equivalences {
		if p.Alias != "" && !aliases[p.Alias] {
			return fmt.Errorf("query: predicate %s references unknown event type %q", p, p.Alias)
		}
	}
	for _, p := range q.Where.Adjacents {
		if !aliases[p.Left] || !aliases[p.Right] {
			return fmt.Errorf("query: predicate %s references unknown event type", p)
		}
	}
	// Alias-scoped grouping needs the matching equivalence predicate:
	// GROUP-BY A.company requires [A.company] so that every trend has
	// a single well-defined group (the paper's q3 pairs them).
	for _, g := range q.GroupBy {
		if g.Alias == "" {
			continue
		}
		if !aliases[g.Alias] {
			return fmt.Errorf("query: GROUP-BY %s references unknown event type %q", g, g.Alias)
		}
		found := false
		for _, p := range q.Where.Equivalences {
			if p.Alias == g.Alias && p.Attr == g.Attr {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("query: GROUP-BY %s requires the equivalence predicate [%s.%s]", g, g.Alias, g.Attr)
		}
	}
	// RETURN keys must be grouped.
	for _, k := range q.ReturnKeys {
		found := false
		for _, g := range q.GroupBy {
			if g == k {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("query: RETURN item %s does not appear in GROUP-BY", k)
		}
	}
	return nil
}

// Builder provides fluent programmatic query construction, mirroring
// the text syntax clause for clause.
type Builder struct {
	q   Query
	err error
}

// NewBuilder starts a query for the given pattern.
func NewBuilder(p pattern.Node) *Builder {
	return &Builder{q: Query{Pattern: p, Where: &predicate.Set{}, Semantics: Any}}
}

// Return adds aggregation specs.
func (b *Builder) Return(specs ...agg.Spec) *Builder {
	b.q.Returns = append(b.q.Returns, specs...)
	return b
}

// ReturnKey echoes grouping keys in the result.
func (b *Builder) ReturnKey(keys ...GroupKey) *Builder {
	b.q.ReturnKeys = append(b.q.ReturnKeys, keys...)
	return b
}

// Semantics sets the event matching semantics.
func (b *Builder) Semantics(s Semantics) *Builder {
	b.q.Semantics = s
	return b
}

// WhereLocal adds a local predicate.
func (b *Builder) WhereLocal(p predicate.Local) *Builder {
	b.q.Where.Locals = append(b.q.Where.Locals, p)
	return b
}

// WhereEquiv adds an equivalence predicate.
func (b *Builder) WhereEquiv(p predicate.Equivalence) *Builder {
	b.q.Where.Equivalences = append(b.q.Where.Equivalences, p)
	return b
}

// WhereAdjacent adds a predicate on adjacent events.
func (b *Builder) WhereAdjacent(p predicate.Adjacent) *Builder {
	b.q.Where.Adjacents = append(b.q.Where.Adjacents, p)
	return b
}

// GroupBy adds grouping keys.
func (b *Builder) GroupBy(keys ...GroupKey) *Builder {
	b.q.GroupBy = append(b.q.GroupBy, keys...)
	return b
}

// Within sets the window clause.
func (b *Builder) Within(within, slide int64) *Builder {
	b.q.Window = window.Spec{Within: within, Slide: slide}
	return b
}

// Build validates and returns the query.
func (b *Builder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	q := b.q // copy
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}
