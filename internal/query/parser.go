package query

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/window"
)

// Parse parses a query in the SASE-style syntax of the paper (queries
// q1–q3) and validates it. Clauses must appear in the order RETURN,
// PATTERN, SEMANTICS, WHERE, GROUP-BY, WITHIN/SLIDE; SEMANTICS, WHERE
// and GROUP-BY are optional (SEMANTICS defaults to skip-till-any-match,
// the semantics every evaluated system supports, §9.1).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for fixed example queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("query: expected %s, got %s at offset %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return fmt.Errorf("query: expected %s, got %s at offset %d", kw, t, t.pos)
	}
	return nil
}

// atClauseKeyword reports whether the current token starts a new
// clause, ending the previous variable-length clause.
func (p *parser) atClauseKeyword() bool {
	t := p.cur()
	for _, kw := range []string{"PATTERN", "SEMANTICS", "WHERE", "GROUP-BY", "WITHIN", "SLIDE", "RETURN", "MIN-LENGTH"} {
		if isKeyword(t, kw) {
			return true
		}
	}
	return t.kind == tokEOF
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Where: &predicate.Set{}, Semantics: Any}
	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	if err := p.parseReturnItems(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("PATTERN"); err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	// Optional minimal trend length (§8): PATTERN A+ MIN-LENGTH 3
	// excludes too-short trends by unrolling the Kleene plus.
	if isKeyword(p.cur(), "MIN-LENGTH") {
		p.next()
		t, err := p.expect(tokNumber, "minimal trend length")
		if err != nil {
			return nil, err
		}
		if t.num != float64(int64(t.num)) || t.num < 1 {
			return nil, fmt.Errorf("query: MIN-LENGTH must be a positive integer, got %v", t.num)
		}
		pat, err = pattern.UnrollMinLength(pat, int(t.num))
		if err != nil {
			return nil, err
		}
	}
	q.Pattern = pat
	if isKeyword(p.cur(), "SEMANTICS") {
		p.next()
		t, err := p.expect(tokIdent, "semantics name")
		if err != nil {
			return nil, err
		}
		s, err := ParseSemantics(t.text)
		if err != nil {
			return nil, err
		}
		q.Semantics = s
	}
	if isKeyword(p.cur(), "WHERE") {
		p.next()
		if err := p.parsePredicates(q); err != nil {
			return nil, err
		}
	}
	if isKeyword(p.cur(), "GROUP-BY") {
		p.next()
		for {
			k, err := p.parseGroupKey()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, k)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	within, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SLIDE"); err != nil {
		return nil, err
	}
	slide, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	q.Window = window.Spec{Within: within, Slide: slide}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input %s at offset %d", t, t.pos)
	}
	return q, nil
}

// ---- RETURN clause ----

var aggFuncs = map[string]agg.Func{
	"COUNT": agg.CountStar, // refined to CountType when an operand is given
	"MIN":   agg.Min,
	"MAX":   agg.Max,
	"SUM":   agg.Sum,
	"AVG":   agg.Avg,
}

func (p *parser) parseReturnItems(q *Query) error {
	for {
		if err := p.parseReturnItem(q); err != nil {
			return err
		}
		if p.cur().kind != tokComma {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseReturnItem(q *Query) error {
	t, err := p.expect(tokIdent, "RETURN item")
	if err != nil {
		return err
	}
	fn, isAgg := aggFuncs[strings.ToUpper(t.text)]
	if isAgg && p.cur().kind == tokLParen {
		p.next()
		spec := agg.Spec{Func: fn}
		switch cur := p.cur(); {
		case cur.kind == tokStar:
			p.next()
			if fn != agg.CountStar {
				return fmt.Errorf("query: %s(*) is not supported, only COUNT(*)", strings.ToUpper(t.text))
			}
		case cur.kind == tokIdent:
			p.next()
			if p.cur().kind == tokDot {
				p.next()
				attr, err := p.expect(tokIdent, "attribute name")
				if err != nil {
					return err
				}
				spec.Alias = cur.text
				spec.Attr = attr.text
				if fn == agg.CountStar {
					return fmt.Errorf("query: COUNT takes * or an event type, not an attribute")
				}
			} else {
				if fn != agg.CountStar {
					return fmt.Errorf("query: %s needs E.attr", strings.ToUpper(t.text))
				}
				spec.Func = agg.CountType
				spec.Alias = cur.text
			}
		default:
			return fmt.Errorf("query: bad aggregate operand %s at offset %d", cur, cur.pos)
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return err
		}
		q.Returns = append(q.Returns, spec)
		return nil
	}
	// Plain grouping key echoed in the result: attr or alias.attr.
	key := GroupKey{Attr: t.text}
	if p.cur().kind == tokDot {
		p.next()
		attr, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return err
		}
		key = GroupKey{Alias: t.text, Attr: attr.text}
	}
	q.ReturnKeys = append(q.ReturnKeys, key)
	return nil
}

// ---- PATTERN clause ----

// parsePattern parses one pattern expression.
func (p *parser) parsePattern() (pattern.Node, error) {
	return p.parsePatternTerm(false)
}

// parsePatternTerm parses a pattern term; allowNot permits a NOT(...)
// node (only legal directly inside SEQ).
func (p *parser) parsePatternTerm(allowNot bool) (pattern.Node, error) {
	t := p.cur()
	var node pattern.Node
	switch {
	case t.kind == tokLParen:
		p.next()
		inner, err := p.parsePatternTerm(false)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		node = inner
	case isKeyword(t, "SEQ"):
		p.next()
		if _, err := p.expect(tokLParen, "( after SEQ"); err != nil {
			return nil, err
		}
		var parts []pattern.Node
		for {
			part, err := p.parsePatternTerm(true)
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen, ") after SEQ arguments"); err != nil {
			return nil, err
		}
		node = pattern.Seq(parts...)
	case isKeyword(t, "OR"):
		p.next()
		if _, err := p.expect(tokLParen, "( after OR"); err != nil {
			return nil, err
		}
		var parts []pattern.Node
		for {
			part, err := p.parsePatternTerm(false)
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen, ") after OR arguments"); err != nil {
			return nil, err
		}
		node = pattern.Or(parts...)
	case isKeyword(t, "NOT"):
		if !allowNot {
			return nil, fmt.Errorf("query: NOT is only allowed directly inside SEQ (offset %d)", t.pos)
		}
		p.next()
		if _, err := p.expect(tokLParen, "( after NOT"); err != nil {
			return nil, err
		}
		inner, err := p.parsePatternTerm(false)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ") after NOT"); err != nil {
			return nil, err
		}
		return pattern.Not(inner), nil // no postfix on NOT
	case t.kind == tokIdent:
		p.next()
		leaf := pattern.Type(t.text)
		// Optional alias: a following identifier, e.g. "Stock A".
		if a := p.cur(); a.kind == tokIdent && !p.atClauseKeyword() {
			p.next()
			leaf = pattern.TypeAs(t.text, a.text)
		}
		node = leaf
	default:
		return nil, fmt.Errorf("query: expected pattern, got %s at offset %d", t, t.pos)
	}
	// Postfix Kleene operators, possibly stacked is rejected.
	switch p.cur().kind {
	case tokPlus:
		p.next()
		node = pattern.Plus(node)
	case tokStar:
		p.next()
		node = pattern.Star(node)
	case tokQMark:
		p.next()
		node = pattern.Opt(node)
	}
	return node, nil
}

// ---- WHERE clause ----

// operand is one side of a comparison before classification.
type operand struct {
	isNext bool    // NEXT(alias).attr
	alias  string  // empty for bare attributes and constants
	attr   string  // attribute name; empty for constants
	isAttr bool    // alias/attr reference vs constant
	num    float64 // constant number
	str    string  // constant string
	isNum  bool
}

func (p *parser) parsePredicates(q *Query) error {
	for {
		if err := p.parsePredicate(q); err != nil {
			return err
		}
		if isKeyword(p.cur(), "AND") {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parsePredicate(q *Query) error {
	if p.cur().kind == tokLBracket {
		// Equivalence predicate [attr] or [Alias.attr].
		p.next()
		t, err := p.expect(tokIdent, "attribute in [...]")
		if err != nil {
			return err
		}
		eq := predicate.Equivalence{Attr: t.text}
		if p.cur().kind == tokDot {
			p.next()
			attr, err := p.expect(tokIdent, "attribute name")
			if err != nil {
				return err
			}
			eq = predicate.Equivalence{Alias: t.text, Attr: attr.text}
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return err
		}
		q.Where.Equivalences = append(q.Where.Equivalences, eq)
		return nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return err
	}
	right, err := p.parseOperand()
	if err != nil {
		return err
	}
	return classifyComparison(q, left, op, right)
}

func (p *parser) parseCmpOp() (predicate.Op, error) {
	t := p.next()
	switch t.kind {
	case tokLt:
		return predicate.Lt, nil
	case tokLe:
		return predicate.Le, nil
	case tokGt:
		return predicate.Gt, nil
	case tokGe:
		return predicate.Ge, nil
	case tokEq:
		return predicate.Eq, nil
	case tokNe:
		return predicate.Ne, nil
	}
	return 0, fmt.Errorf("query: expected comparison operator, got %s at offset %d", t, t.pos)
}

func (p *parser) parseOperand() (operand, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return operand{num: t.num, isNum: true}, nil
	case t.kind == tokString:
		return operand{str: t.text}, nil
	case isKeyword(t, "NEXT"):
		if _, err := p.expect(tokLParen, "( after NEXT"); err != nil {
			return operand{}, err
		}
		alias, err := p.expect(tokIdent, "event type in NEXT(...)")
		if err != nil {
			return operand{}, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return operand{}, err
		}
		if _, err := p.expect(tokDot, ". after NEXT(...)"); err != nil {
			return operand{}, err
		}
		attr, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return operand{}, err
		}
		return operand{isNext: true, alias: alias.text, attr: attr.text, isAttr: true}, nil
	case t.kind == tokIdent:
		if p.cur().kind == tokDot {
			p.next()
			attr, err := p.expect(tokIdent, "attribute name")
			if err != nil {
				return operand{}, err
			}
			return operand{alias: t.text, attr: attr.text, isAttr: true}, nil
		}
		// Bare identifier: a symbolic constant (q1's "passive").
		return operand{str: t.text}, nil
	}
	return operand{}, fmt.Errorf("query: expected operand, got %s at offset %d", t, t.pos)
}

// flipOp mirrors a comparison when its operands are swapped.
func flipOp(op predicate.Op) predicate.Op {
	switch op {
	case predicate.Lt:
		return predicate.Gt
	case predicate.Le:
		return predicate.Ge
	case predicate.Gt:
		return predicate.Lt
	case predicate.Ge:
		return predicate.Le
	}
	return op // Eq, Ne symmetric
}

// classifyComparison sorts a comparison into the predicate classes of
// §3.2: NEXT(...) on either side makes it a predicate on adjacent
// events (the NEXT side is the later event); two plain alias
// references are read as Left-precedes-Right adjacency (the paper's
// E.attr ◦ Ex.attrx form); an attribute against a constant is a local
// predicate.
func classifyComparison(q *Query, left operand, op predicate.Op, right operand) error {
	if left.isNext && right.isNext {
		return fmt.Errorf("query: NEXT(...) on both sides of a comparison is not supported")
	}
	if left.isNext || right.isNext {
		if !left.isAttr || !right.isAttr {
			return fmt.Errorf("query: NEXT(...) must be compared to an event attribute")
		}
		if left.isNext { // normalise: earlier event on the left
			left, right = right, left
			op = flipOp(op)
		}
		if left.alias == "" {
			return fmt.Errorf("query: adjacent predicate needs an event type on both sides")
		}
		q.Where.Adjacents = append(q.Where.Adjacents, predicate.Adjacent{
			Left: left.alias, LeftAttr: left.attr, Op: op,
			Right: right.alias, RightAttr: right.attr,
		})
		return nil
	}
	if left.isAttr && right.isAttr {
		if left.alias == "" || right.alias == "" || left.alias == right.alias {
			return fmt.Errorf("query: comparison between two attributes must relate two distinct event types or use NEXT(...)")
		}
		q.Where.Adjacents = append(q.Where.Adjacents, predicate.Adjacent{
			Left: left.alias, LeftAttr: left.attr, Op: op,
			Right: right.alias, RightAttr: right.attr,
		})
		return nil
	}
	if !left.isAttr && !right.isAttr {
		return fmt.Errorf("query: comparison between two constants")
	}
	if !left.isAttr { // constant OP attr -> attr flipped-OP constant
		left, right = right, left
		op = flipOp(op)
	}
	var val any
	if right.isNum {
		val = right.num
	} else {
		val = right.str
	}
	q.Where.Locals = append(q.Where.Locals, predicate.Local{
		Alias: left.alias, Attr: left.attr, Op: op, Value: val,
	})
	return nil
}

// ---- GROUP-BY and window clauses ----

func (p *parser) parseGroupKey() (GroupKey, error) {
	t, err := p.expect(tokIdent, "grouping attribute")
	if err != nil {
		return GroupKey{}, err
	}
	if p.cur().kind == tokDot {
		p.next()
		attr, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return GroupKey{}, err
		}
		return GroupKey{Alias: t.text, Attr: attr.text}, nil
	}
	return GroupKey{Attr: t.text}, nil
}

// parseDuration parses "<number> [unit]" where unit is seconds,
// minutes or hours (singular accepted); a bare number is stream ticks
// (= seconds).
func (p *parser) parseDuration() (int64, error) {
	t, err := p.expect(tokNumber, "duration")
	if err != nil {
		return 0, err
	}
	if t.num != float64(int64(t.num)) || t.num <= 0 {
		return 0, fmt.Errorf("query: duration must be a positive integer, got %v", t.num)
	}
	n := int64(t.num)
	if u := p.cur(); u.kind == tokIdent {
		switch strings.ToLower(u.text) {
		case "second", "seconds", "sec", "s":
			p.next()
		case "minute", "minutes", "min", "m":
			p.next()
			n *= 60
		case "hour", "hours", "h":
			p.next()
			n *= 3600
		}
	}
	return n, nil
}
