// Package snap is the binary snapshot codec underlying checkpoint /
// restore: a versioned, length-prefixed, CRC-protected format with a
// sticky-error reader that validates every length against the bytes
// actually remaining, so corrupt or adversarial inputs fail with a
// typed error instead of panicking or over-allocating.
//
// The format is deliberately simple — little-endian fixed-width
// integers, length-prefixed byte strings — because restore must
// reproduce executor state bit-for-bit and a self-describing format
// would only add places for drift to hide.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrBadSnapshot is wrapped by every decode failure: truncation,
// version skew, checksum mismatch, or structurally impossible lengths.
var ErrBadSnapshot = errors.New("bad snapshot")

// Magic identifies a COGRA snapshot stream.
const Magic = "COGRASNP"

// Version is the current snapshot format version. Restore accepts
// exactly this version: the format captures private executor state, so
// cross-version compatibility is out of scope (checkpoints are
// re-taken after an upgrade). Version 3 added the window-manager
// ceiling to the engine codec and the sharing-group section to the
// runtime codec.
const Version uint32 = 3

// Writer accumulates a snapshot payload in memory.
type Writer struct {
	b []byte
}

// Len returns the bytes written so far.
func (w *Writer) Len() int { return len(w.b) }

// Raw returns the accumulated payload bytes without framing, for
// nesting one writer's output inside another via Bytes.
func (w *Writer) Raw() []byte { return w.b }

func (w *Writer) U8(v uint8)   { w.b = append(w.b, v) }
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }
func (w *Writer) Int(v int)    { w.I64(int64(v)) }
func (w *Writer) F64(v float64) {
	w.U64(math.Float64bits(v))
}

func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.U32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// Frame wraps the accumulated payload in the snapshot envelope —
// magic, version, payload length, payload, CRC-32 (IEEE) of the
// payload — and writes it to out.
func (w *Writer) Frame(out io.Writer) error {
	var hdr []byte
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(w.b)))
	if _, err := out.Write(hdr); err != nil {
		return err
	}
	if _, err := out.Write(w.b); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.b))
	_, err := out.Write(crc[:])
	return err
}

// Reader decodes a snapshot payload with a sticky error: after the
// first failure every subsequent read returns zero values, so decode
// code reads fields unconditionally and checks Err once per region.
type Reader struct {
	b   []byte
	off int
	err error
}

// maxFrame bounds the declared payload length Open will buffer, so a
// corrupt header cannot drive an over-allocation. Snapshots of real
// sessions are far below this.
const maxFrame = 1 << 32 // 4 GiB

// Open validates the envelope (magic, version, length, CRC) from r and
// returns a payload reader. All failures wrap ErrBadSnapshot.
func Open(r io.Reader) (*Reader, error) {
	hdr := make([]byte, len(Magic)+4+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	ver := binary.LittleEndian.Uint32(hdr[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)", ErrBadSnapshot, ver, Version)
	}
	n := binary.LittleEndian.Uint64(hdr[len(Magic)+4:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadSnapshot, n)
	}
	// Read payload + CRC without trusting n for a single allocation:
	// io.ReadAll of a LimitReader grows the buffer only as bytes arrive,
	// so a huge declared length over a short stream fails cheaply.
	body, err := io.ReadAll(io.LimitReader(r, int64(n)+4))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrBadSnapshot, err)
	}
	if uint64(len(body)) != n+4 {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadSnapshot, len(body), n+4)
	}
	payload, crc := body[:n], binary.LittleEndian.Uint32(body[n:])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return &Reader{b: payload}, nil
}

// NewReader wraps a raw payload (no envelope) for tests.
func NewReader(payload []byte) *Reader { return &Reader{b: payload} }

// Err returns the sticky decode error, already wrapping ErrBadSnapshot.
func (r *Reader) Err() error { return r.err }

// Rem returns the unread bytes remaining.
func (r *Reader) Rem() int { return len(r.b) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (offset %d)", ErrBadSnapshot, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Rem() < n {
		r.fail("need %d bytes, have %d", n, r.Rem())
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) Int() int     { return int(r.I64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }
func (r *Reader) Bool() bool   { return r.U8() != 0 }
func (r *Reader) Str() string  { return string(r.take(int(r.U32()))) }
func (r *Reader) RawBytes() []byte {
	p := r.take(int(r.U32()))
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// Count reads a collection length and validates it against the bytes
// remaining, given a minimum encoded size per element, so a corrupt
// length can never drive an over-allocation: a slice of n elements is
// only ever allocated when at least n*elemMin bytes are actually
// present.
func (r *Reader) Count(elemMin int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n < 0 || n*elemMin > r.Rem() {
		r.fail("collection of %d elements (min %d bytes each) exceeds %d remaining bytes", n, elemMin, r.Rem())
		return 0
	}
	return n
}

// Close verifies the payload was fully consumed.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Rem() != 0 {
		r.fail("%d trailing bytes", r.Rem())
	}
	return r.err
}
