package core

import (
	"repro/internal/predicate"
)

// bindings manages the alias-scoped equivalence slots of a plan. A
// binding assigns a value to each slot, accumulated as a trend grows:
// the first event matched under a slot's alias binds the slot, and
// every later event of that alias must agree. Bindings key the
// per-type and per-event aggregate tables so that each equivalence
// group (the paper's "trend group", §7) is maintained separately.
//
// Slot values are interned to dense uint32 ids (0 = unbound) and a
// binding is identified by a bkey: for plans with at most two slots
// the two value ids packed into one uint64, otherwise the id of an
// interned value-id vector. combine and startKey are therefore
// allocation-free integer operations on the hot path; the string
// values are only rematerialised by decode when a window closes.
//
// One bindings instance is shared per engine (it owns the intern
// tables), so keys are comparable across all sub-aggregators and
// windows of that engine. Engines are single-threaded, so the intern
// tables need no locking.
type bindings struct {
	nslots int
	acct   accountant
	bytes  int64 // live logical bytes of the intern tables

	// Value interning: vals[id] is the slot value; id 0 is unbound.
	valIDs map[string]uint32
	vals   []string

	// Vector interning for nslots > 2: vecs[key] is the value-id
	// vector of binding key; vecIDs maps the packed little-endian
	// bytes of a vector to its key. Vector 0 is all-unbound.
	vecIDs map[string]bkey
	vecs   [][]uint32

	scratchVec []uint32
	scratchKey []byte
	assignBuf  []slotAssign
}

// bkey identifies one equivalence binding. 0 is the all-unbound
// binding (and the only binding of slot-less plans).
type bkey uint64

// slotAssign is one slot assignment demanded by a concrete event:
// slot idx must hold the interned value val.
type slotAssign struct {
	idx int
	val uint32
}

// newBindings builds the intern tables for the plan's slots. The
// tables live as long as the engine (they are never released per
// window), so their growth is charged to the accountant as it happens:
// one entry per distinct slot value (and, beyond two slots, per
// distinct value combination) seen over the engine's lifetime.
func newBindings(slots []predicate.Equivalence, acct accountant) *bindings {
	b := &bindings{nslots: len(slots), acct: acct}
	if b.nslots == 0 {
		return b
	}
	// The empty string IS the unbound value (id 0): the string-keyed
	// representation could not distinguish an empty-valued slot from an
	// unbound one, so an empty value leaves a slot unbound (and cannot
	// extend a binding whose slot holds a non-empty value) — the
	// baselines' shared Binding logic agrees.
	b.valIDs = map[string]uint32{"": 0}
	b.vals = []string{""}
	if b.nslots > 2 {
		b.vecIDs = map[string]bkey{}
		b.vecs = [][]uint32{make([]uint32, b.nslots)}
		b.scratchVec = make([]uint32, b.nslots)
		b.scratchKey = make([]byte, 0, 4*b.nslots)
	}
	return b
}

// none reports whether there are no slots (the common fast path: every
// binding is the empty key).
func (b *bindings) none() bool { return b.nslots == 0 }

// emptyKey returns the key of the all-unbound binding.
func (b *bindings) emptyKey() bkey { return 0 }

// internVal interns a slot value. The map lookup does not allocate;
// the value string is retained only the first time it is seen.
func (b *bindings) internVal(v string) uint32 {
	if id, ok := b.valIDs[v]; ok {
		return id
	}
	id := uint32(len(b.vals))
	b.vals = append(b.vals, v)
	b.valIDs[v] = id
	b.charge(int64(len(v)) + 16) // value string + two table entries
	return id
}

// charge records intern-table growth with the accountant and the
// table's own footprint counter (so release can credit it back).
func (b *bindings) charge(delta int64) {
	b.bytes += delta
	b.acct.Add(delta)
}

// footprint returns the live logical bytes of the intern tables.
func (b *bindings) footprint() int64 { return b.bytes }

// release returns the intern tables' logical memory to the accountant
// and drops them. The engine-lifetime tables grow monotonically with
// distinct slot values; release is how an unsubscribing query hands
// that memory back. The bindings must not be used afterwards.
func (b *bindings) release() {
	if b.bytes != 0 {
		b.acct.Add(-b.bytes)
		b.bytes = 0
	}
	b.valIDs, b.vals = nil, nil
	b.vecIDs, b.vecs = nil, nil
	b.scratchVec, b.scratchKey = nil, nil
}

// assignments returns the slot assignments an event matched under the
// alias of ap must bind, reading slot values from the resolved view.
// ok is false when the event lacks a required attribute, in which case
// it cannot be matched under the alias at all. The returned slice is
// a reused scratch buffer, valid until the next call.
func (b *bindings) assignments(ap *aliasPlan, rv *resolvedVals) ([]slotAssign, bool) {
	out := b.assignBuf[:0]
	for _, sr := range ap.slots {
		if rv.has[sr.attr]&hasSymVal == 0 {
			b.assignBuf = out
			return nil, false
		}
		out = append(out, slotAssign{idx: sr.slot, val: b.internVal(rv.sym[sr.attr])})
	}
	b.assignBuf = out
	return out, true
}

// combine merges slot assignments into an existing binding key. ok is
// false when a slot is already bound to a different value (the
// equivalence predicate rejects the extension).
func (b *bindings) combine(key bkey, assigns []slotAssign) (bkey, bool) {
	if len(assigns) == 0 {
		return key, true
	}
	if b.nslots <= 2 {
		for _, a := range assigns {
			shift := uint(a.idx) * 32
			switch cur := uint32(key >> shift); cur {
			case 0:
				key |= bkey(a.val) << shift
			case a.val:
			default:
				return 0, false
			}
		}
		return key, true
	}
	copy(b.scratchVec, b.vecs[key])
	for _, a := range assigns {
		switch cur := b.scratchVec[a.idx]; cur {
		case 0:
			b.scratchVec[a.idx] = a.val
		case a.val:
		default:
			return 0, false
		}
	}
	return b.internVec(b.scratchVec), true
}

// internVec interns a value-id vector; allocation-free when the
// vector has been seen before.
func (b *bindings) internVec(vec []uint32) bkey {
	k := b.scratchKey[:0]
	for _, v := range vec {
		k = append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	b.scratchKey = k
	if id, ok := b.vecIDs[string(k)]; ok {
		return id
	}
	id := bkey(len(b.vecs))
	b.vecIDs[string(k)] = id
	b.vecs = append(b.vecs, append([]uint32(nil), vec...))
	b.charge(int64(8*len(vec)) + 16) // vector + packed-bytes key
	return id
}

// startKey returns the binding of a trend consisting of only the new
// event: all slots unbound except the event's own assignments.
func (b *bindings) startKey(assigns []slotAssign) bkey {
	key, _ := b.combine(0, assigns) // cannot conflict: all slots unbound
	return key
}

// decode rematerialises the slot value strings of a binding key, ""
// meaning unbound. Cold path: called per binding when a window closes.
func (b *bindings) decode(key bkey) []string {
	if b.nslots == 0 {
		return nil
	}
	out := make([]string, b.nslots)
	if b.nslots <= 2 {
		for i := range out {
			out[i] = b.vals[uint32(key>>(uint(i)*32))]
		}
		return out
	}
	for i, v := range b.vecs[key] {
		out[i] = b.vals[v]
	}
	return out
}
