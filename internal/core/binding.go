package core

import (
	"strings"

	"repro/internal/predicate"
)

// bindings manages the alias-scoped equivalence slots of a plan. A
// binding assigns a value to each slot, accumulated as a trend grows:
// the first event matched under a slot's alias binds the slot, and
// every later event of that alias must agree. Bindings key the
// per-type and per-event aggregate tables so that each equivalence
// group (the paper's "trend group", §7) is maintained separately.
//
// A binding is canonically a []string with "" meaning unbound; its
// table key is the NUL-joined form.
type bindings struct {
	slots []predicate.Equivalence
	empty string
}

// slotAssign is one slot assignment demanded by a concrete event.
type slotAssign struct {
	idx int
	val string
}

func newBindings(slots []predicate.Equivalence) *bindings {
	vals := make([]string, len(slots))
	return &bindings{slots: slots, empty: strings.Join(vals, "\x00")}
}

// none reports whether there are no slots (the common fast path: every
// binding is the empty key).
func (b *bindings) none() bool { return len(b.slots) == 0 }

// emptyKey returns the key of the all-unbound binding.
func (b *bindings) emptyKey() string { return b.empty }

// decode splits a key into slot values.
func (b *bindings) decode(key string) []string {
	if len(b.slots) == 0 {
		return nil
	}
	return strings.Split(key, "\x00")
}

// assignments returns the slot values an event matched under alias
// must bind. ok is false when the event lacks a required attribute,
// in which case it cannot be matched under the alias at all.
func (b *bindings) assignments(alias string, e attrEvent) ([]slotAssign, bool) {
	var out []slotAssign
	for i, s := range b.slots {
		if s.Alias != alias {
			continue
		}
		v, ok := e.SymAttr(s.Attr)
		if !ok {
			return nil, false
		}
		out = append(out, slotAssign{idx: i, val: v})
	}
	return out, true
}

// combine merges slot assignments into an existing binding key. ok is
// false when a slot is already bound to a different value (the
// equivalence predicate rejects the extension).
func (b *bindings) combine(key string, assigns []slotAssign) (string, bool) {
	if len(assigns) == 0 {
		return key, true
	}
	vals := strings.Split(key, "\x00")
	for _, a := range assigns {
		switch vals[a.idx] {
		case "", a.val:
			vals[a.idx] = a.val
		default:
			return "", false
		}
	}
	return strings.Join(vals, "\x00"), true
}

// startKey returns the binding of a trend consisting of only the new
// event: all slots unbound except the event's own assignments.
func (b *bindings) startKey(assigns []slotAssign) string {
	if len(assigns) == 0 {
		return b.empty
	}
	vals := make([]string, len(b.slots))
	for _, a := range assigns {
		vals[a.idx] = a.val
	}
	return strings.Join(vals, "\x00")
}
