package core

import (
	"repro/internal/predicate"
)

// bindings manages the alias-scoped equivalence slots of a plan. A
// binding assigns a value to each slot, accumulated as a trend grows:
// the first event matched under a slot's alias binds the slot, and
// every later event of that alias must agree. Bindings key the
// per-type and per-event aggregate tables so that each equivalence
// group (the paper's "trend group", §7) is maintained separately.
//
// Slot values are interned to dense uint32 ids (0 = unbound) and a
// binding is identified by a bkey: for plans with at most two slots
// the two value ids packed into one uint64, otherwise the id of an
// interned value-id vector. combine and startKey are therefore
// allocation-free integer operations on the hot path; the string
// values are only rematerialised by decode when a window closes.
//
// One bindings instance is shared per engine (it owns the intern
// tables), so keys are comparable across all sub-aggregators and
// windows of that engine. Engines are single-threaded, so the intern
// tables need no locking.
//
// # Epoch rotation (eviction)
//
// By default the tables grow monotonically with distinct slot values
// over the engine's lifetime. With eviction enabled (WithInternEviction)
// liveness is tied to window expiry: every intern is stamped with the
// epoch of the stream time it was last touched at (epoch = the
// watermark divided into Within-length frames, window.Spec.EpochOf),
// and when the watermark enters epoch E, entries last touched in epoch
// E-2 or earlier are reclaimed. The stamp discipline makes that safe:
// a value (or vector) id is only ever referenced by binding keys held
// in the per-window sub-aggregator tables of windows CONTAINING one of
// its touch times — extensions stay within a window's own
// sub-aggregator, and each assignment re-interns (touches) its values
// — and every window containing a time in epoch e has closed, emitted
// and decoded before the watermark reaches epoch e+2 (a window spans
// at most Within = one epoch length). Live ids therefore never move:
// reclaimed ids are pushed on a free list and recycled for future
// values, so the id space — and the accounted footprint — plateaus at
// the cardinality of roughly two epochs instead of ramping forever.
type bindings struct {
	nslots int
	acct   accountant
	bytes  int64 // live logical bytes of the intern tables

	// Value interning: vals[id] is the slot value; id 0 is unbound.
	valIDs map[string]uint32
	vals   []string

	// Vector interning for nslots > 2: vecs[key] is the value-id
	// vector of binding key; vecIDs maps the packed little-endian
	// bytes of a vector to its key. Vector 0 is all-unbound.
	vecIDs map[string]bkey
	vecs   [][]uint32

	scratchVec []uint32
	scratchKey []byte
	assignBuf  []slotAssign

	// Eviction state: epoch stamps parallel to vals/vecs, free lists of
	// reclaimed ids, and the current watermark epoch. evict gates the
	// whole machinery; without it the stamps stay nil and internVal is
	// the PR 1 fast path.
	evict     bool
	epoch     int64
	epochInit bool
	valEpoch  []int64
	vecEpoch  []int64
	freeVals  []uint32
	freeVecs  []bkey

	// Per-epoch candidate buckets: ids whose stamp was last SET in that
	// epoch (an id touched across k epochs appears in k buckets; only
	// the one matching its current stamp is authoritative). expire walks
	// only the buckets behind the horizon instead of the whole table, so
	// the sweep cost tracks recent intern activity, not table size — a
	// long-lived engine whose value population turned over long ago no
	// longer pays O(len(vals)) on every epoch boundary. Buckets are
	// bookkeeping, rebuilt from the stamps on checkpoint restore.
	valBuckets map[int64][]uint32
	vecBuckets map[int64][]bkey
}

// bkey identifies one equivalence binding. 0 is the all-unbound
// binding (and the only binding of slot-less plans).
type bkey uint64

// slotAssign is one slot assignment demanded by a concrete event:
// slot idx must hold the interned value val.
type slotAssign struct {
	idx int
	val uint32
}

// newBindings builds the intern tables for the plan's slots. Without
// eviction the tables live as long as the engine (they are never
// released per window), so their growth is charged to the accountant
// as it happens: one entry per distinct slot value (and, beyond two
// slots, per distinct value combination) seen over the engine's
// lifetime. With evict set, expire reclaims entries once no open
// window can reference them (see the type comment).
func newBindings(slots []predicate.Equivalence, acct accountant, evict bool) *bindings {
	b := &bindings{nslots: len(slots), acct: acct, evict: evict}
	if b.nslots == 0 {
		return b
	}
	// The empty string IS the unbound value (id 0): the string-keyed
	// representation could not distinguish an empty-valued slot from an
	// unbound one, so an empty value leaves a slot unbound (and cannot
	// extend a binding whose slot holds a non-empty value) — the
	// baselines' shared Binding logic agrees.
	b.valIDs = map[string]uint32{"": 0}
	b.vals = []string{""}
	if evict {
		b.valEpoch = []int64{0}
		b.valBuckets = map[int64][]uint32{}
	}
	if b.nslots > 2 {
		b.vecIDs = map[string]bkey{}
		b.vecs = [][]uint32{make([]uint32, b.nslots)}
		b.scratchVec = make([]uint32, b.nslots)
		b.scratchKey = make([]byte, 0, 4*b.nslots)
		if evict {
			b.vecEpoch = []int64{0}
			b.vecBuckets = map[int64][]bkey{}
		}
	}
	return b
}

// none reports whether there are no slots (the common fast path: every
// binding is the empty key).
func (b *bindings) none() bool { return b.nslots == 0 }

// emptyKey returns the key of the all-unbound binding.
func (b *bindings) emptyKey() bkey { return 0 }

// internVal interns a slot value. The map lookup does not allocate;
// the value string is retained only the first time it is seen (or
// re-seen after eviction reclaimed it).
func (b *bindings) internVal(v string) uint32 {
	if id, ok := b.valIDs[v]; ok {
		if b.evict && b.valEpoch[id] != b.epoch {
			b.valEpoch[id] = b.epoch
			b.valBuckets[b.epoch] = append(b.valBuckets[b.epoch], id)
		}
		return id
	}
	var id uint32
	if n := len(b.freeVals); n > 0 {
		id = b.freeVals[n-1]
		b.freeVals = b.freeVals[:n-1]
		b.vals[id] = v
	} else {
		id = uint32(len(b.vals))
		b.vals = append(b.vals, v)
		if b.evict {
			b.valEpoch = append(b.valEpoch, 0)
		}
	}
	if b.evict {
		b.valEpoch[id] = b.epoch
		b.valBuckets[b.epoch] = append(b.valBuckets[b.epoch], id)
	}
	b.valIDs[v] = id
	b.charge(int64(len(v)) + 16) // value string + two table entries
	return id
}

// charge records intern-table growth with the accountant and the
// table's own footprint counter (so release can credit it back).
func (b *bindings) charge(delta int64) {
	b.bytes += delta
	b.acct.Add(delta)
}

// footprint returns the live logical bytes of the intern tables.
func (b *bindings) footprint() int64 { return b.bytes }

// release returns the intern tables' logical memory to the accountant
// and drops them entirely — release is how an unsubscribing query
// hands the whole footprint back at once (epoch rotation, when
// enabled, only trims expired entries along the way). The bindings
// must not be used afterwards.
func (b *bindings) release() {
	if b.bytes != 0 {
		b.acct.Add(-b.bytes)
		b.bytes = 0
	}
	b.valIDs, b.vals = nil, nil
	b.vecIDs, b.vecs = nil, nil
	b.scratchVec, b.scratchKey = nil, nil
	b.valEpoch, b.vecEpoch = nil, nil
	b.freeVals, b.freeVecs = nil, nil
	b.valBuckets, b.vecBuckets = nil, nil
}

// expire advances the watermark epoch and reclaims every intern entry
// last touched two or more epochs ago: windows referencing such an
// entry have all closed and decoded (a window spans at most one epoch
// length), so its id can be recycled without disturbing live keys.
// Called by the engine after emitting the windows a watermark closed.
// The sweep walks only the per-epoch candidate buckets behind the
// horizon — ids whose stamp was last set back then — so its cost is
// proportional to the intern activity of those epochs, not to the
// table size.
func (b *bindings) expire(epoch int64) {
	if !b.evict || b.nslots == 0 {
		return
	}
	if !b.epochInit {
		// First watermark: adopt its epoch as the base so streams that
		// do not start near time 0 (or start negative) stamp correctly.
		b.epoch, b.epochInit = epoch, true
		return
	}
	if epoch <= b.epoch {
		return
	}
	b.epoch = epoch
	// Keep entries touched in this epoch or the previous one: a window
	// spans at most Within = one epoch length, so a window containing a
	// touch in epoch e has fully closed once the watermark reaches
	// epoch e+2 — stamps <= epoch-2 are unreferenced. Bucket keys are
	// swept in ascending order so the free-list order (and therefore id
	// recycling) is deterministic.
	horizon := epoch - 1
	for _, be := range b.expiredBucketKeys(horizon) {
		for _, id := range b.valBuckets[be] {
			if !b.isLiveVal(id) || b.valEpoch[id] != be {
				continue // recycled, or touched again since this bucket
			}
			v := b.vals[id]
			delete(b.valIDs, v)
			b.vals[id] = ""
			b.freeVals = append(b.freeVals, id)
			b.charge(-(int64(len(v)) + 16))
		}
		delete(b.valBuckets, be)
	}
	if b.vecBuckets == nil {
		return
	}
	keys := make([]int64, 0, len(b.vecBuckets))
	for be := range b.vecBuckets {
		if be < horizon {
			keys = append(keys, be)
		}
	}
	sortEpochs(keys)
	for _, be := range keys {
		for _, id := range b.vecBuckets[be] {
			if b.vecs[id] == nil || b.vecEpoch[id] != be {
				continue
			}
			vec := b.vecs[id]
			k := b.scratchKey[:0]
			for _, v := range vec {
				k = append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			b.scratchKey = k
			delete(b.vecIDs, string(k))
			b.vecs[id] = nil
			b.freeVecs = append(b.freeVecs, id)
			b.charge(-(int64(8*len(vec)) + 16))
		}
		delete(b.vecBuckets, be)
	}
}

// expiredBucketKeys returns the value-bucket epochs behind the
// horizon, ascending.
func (b *bindings) expiredBucketKeys(horizon int64) []int64 {
	keys := make([]int64, 0, len(b.valBuckets))
	for be := range b.valBuckets {
		if be < horizon {
			keys = append(keys, be)
		}
	}
	sortEpochs(keys)
	return keys
}

// sortEpochs sorts a small epoch-key slice ascending (insertion sort:
// the live bucket population is a handful of epochs).
func sortEpochs(keys []int64) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// isLiveVal reports whether a value id currently maps a value (false
// once it sits on the free list). The empty string marks a free slot:
// "" itself always interns to the reserved id 0, so no live id > 0
// holds it.
func (b *bindings) isLiveVal(id uint32) bool { return b.vals[id] != "" }

// assignments returns the slot assignments an event matched under the
// alias of ap must bind, reading slot values from the resolved view.
// ok is false when the event lacks a required attribute, in which case
// it cannot be matched under the alias at all. The returned slice is
// a reused scratch buffer, valid until the next call.
func (b *bindings) assignments(ap *aliasPlan, rv *resolvedVals) ([]slotAssign, bool) {
	out := b.assignBuf[:0]
	for _, sr := range ap.slots {
		if rv.has[sr.attr]&hasSymVal == 0 {
			b.assignBuf = out
			return nil, false
		}
		out = append(out, slotAssign{idx: sr.slot, val: b.internVal(rv.sym[sr.attr])})
	}
	b.assignBuf = out
	return out, true
}

// combine merges slot assignments into an existing binding key. ok is
// false when a slot is already bound to a different value (the
// equivalence predicate rejects the extension).
func (b *bindings) combine(key bkey, assigns []slotAssign) (bkey, bool) {
	if len(assigns) == 0 {
		return key, true
	}
	if b.nslots <= 2 {
		for _, a := range assigns {
			shift := uint(a.idx) * 32
			switch cur := uint32(key >> shift); cur {
			case 0:
				key |= bkey(a.val) << shift
			case a.val:
			default:
				return 0, false
			}
		}
		return key, true
	}
	copy(b.scratchVec, b.vecs[key])
	for _, a := range assigns {
		switch cur := b.scratchVec[a.idx]; cur {
		case 0:
			b.scratchVec[a.idx] = a.val
		case a.val:
		default:
			return 0, false
		}
	}
	return b.internVec(b.scratchVec), true
}

// internVec interns a value-id vector; allocation-free when the
// vector has been seen before.
func (b *bindings) internVec(vec []uint32) bkey {
	k := b.scratchKey[:0]
	for _, v := range vec {
		k = append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	b.scratchKey = k
	if id, ok := b.vecIDs[string(k)]; ok {
		if b.evict && b.vecEpoch[id] != b.epoch {
			b.vecEpoch[id] = b.epoch
			b.vecBuckets[b.epoch] = append(b.vecBuckets[b.epoch], id)
		}
		return id
	}
	var id bkey
	if n := len(b.freeVecs); n > 0 {
		id = b.freeVecs[n-1]
		b.freeVecs = b.freeVecs[:n-1]
		b.vecs[id] = append([]uint32(nil), vec...)
	} else {
		id = bkey(len(b.vecs))
		b.vecs = append(b.vecs, append([]uint32(nil), vec...))
		if b.evict {
			b.vecEpoch = append(b.vecEpoch, 0)
		}
	}
	if b.evict {
		b.vecEpoch[id] = b.epoch
		b.vecBuckets[b.epoch] = append(b.vecBuckets[b.epoch], id)
	}
	b.vecIDs[string(k)] = id
	b.charge(int64(8*len(vec)) + 16) // vector + packed-bytes key
	return id
}

// startKey returns the binding of a trend consisting of only the new
// event: all slots unbound except the event's own assignments.
func (b *bindings) startKey(assigns []slotAssign) bkey {
	key, _ := b.combine(0, assigns) // cannot conflict: all slots unbound
	return key
}

// decode rematerialises the slot value strings of a binding key, ""
// meaning unbound. Cold path: called per binding when a window closes.
func (b *bindings) decode(key bkey) []string {
	if b.nslots == 0 {
		return nil
	}
	out := make([]string, b.nslots)
	if b.nslots <= 2 {
		for i := range out {
			out[i] = b.vals[uint32(key>>(uint(i)*32))]
		}
		return out
	}
	for i, v := range b.vecs[key] {
		out[i] = b.vals[v]
	}
	return out
}
