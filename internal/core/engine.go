package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/window"
)

// Result is one aggregation output: the aggregates of one group in one
// closed window.
type Result struct {
	// Wid identifies the window; Start/End are its half-open bounds.
	Wid   int64
	Start int64
	End   int64
	// Group holds the GROUP-BY values in clause order (nil when the
	// query has no GROUP-BY).
	Group []string
	// Values are the reported aggregates in RETURN-clause order.
	Values []agg.Value
}

// String renders "window [0,600) group=(p1): COUNT(*)=43".
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window [%d,%d)", r.Start, r.End)
	if len(r.Group) > 0 {
		fmt.Fprintf(&b, " group=(%s)", strings.Join(r.Group, ","))
	}
	fmt.Fprintf(&b, ": %s", agg.FormatValues(r.Values))
	return b.String()
}

// winState is the per-window execution state: one sub-aggregator per
// stream partition key (§7: windows, single-event predicates and
// grouping partition the stream into sub-streams).
type winState struct {
	wid   int64
	parts map[string]subAggregator
}

// Engine executes one compiled plan over an in-order event stream.
// It routes each event to the windows containing it and, within each
// window, to the sub-stream its partition key selects; closed windows
// emit Results. Engine is not safe for concurrent use — parallel
// execution partitions the stream upstream (internal/stream).
type Engine struct {
	plan *Plan
	acct accountant
	bnd  *bindings
	mgr  *window.Manager[*winState]

	// Per-event scratch, reused so the steady-state Process path does
	// not allocate: the resolved attribute view, the partition-key
	// bytes and the window-state slice. The window-state slice is
	// cached per time stamp: a run of equal-time events reuses the
	// states computed for the first of the run (the window set is a
	// function of time alone), skipping the watermark check and the
	// window-manager lookup for every follower.
	rv          resolvedVals
	keyBuf      []byte
	states      []*winState
	statesTime  int64
	statesValid bool

	// arenas backs the mixed-grained stored entries of every hosted
	// sub-aggregator (arena.go); unused by the other granularities.
	arenas storeArenas
	// memo is the type-grained predecessor-sum scratch shared by every
	// hosted sub-aggregator (runMemo); unused by the other
	// granularities.
	memo runMemo
	// runParts is processRunSinglePart's reusable per-run view of the
	// open windows' "" partitions.
	runParts []subAggregator

	lastTime int64
	sawEvent bool
	seq      int64
	eventsIn int64
	skipped  int64
	evict    bool

	results  []Result
	onResult func(Result)
}

// Option configures an Engine.
type Option func(*Engine)

// WithAccountant wires logical memory accounting.
func WithAccountant(a *metrics.Accountant) Option {
	return func(e *Engine) { e.acct = a }
}

// WithResultCallback streams results to fn instead of collecting them.
func WithResultCallback(fn func(Result)) Option {
	return func(e *Engine) { e.onResult = fn }
}

// WithInternEviction ties the engine's binding-intern tables to window
// expiry: intern entries are stamped with the epoch (Within-length
// frame) of the watermark they were last touched at, and entries whose
// referencing windows have all closed are reclaimed as the watermark
// advances (their ids are recycled). Results are identical to an
// unbounded engine; the difference is purely that InternBytes plateaus
// at roughly two epochs' worth of distinct slot values instead of
// growing with the stream's lifetime cardinality.
func WithInternEviction() Option {
	return func(e *Engine) { e.evict = true }
}

// NewEngine builds an engine for a plan.
func NewEngine(p *Plan, opts ...Option) *Engine {
	e := &Engine{plan: p, acct: nopAccountant{}}
	for _, opt := range opts {
		opt(e)
	}
	e.bnd = newBindings(p.Slots, e.acct, e.evict) // after opts: intern tables charge e.acct
	e.mgr = window.NewManager(p.Query.Window, func(wid int64) *winState {
		return &winState{wid: wid, parts: map[string]subAggregator{}}
	})
	return e
}

// Plan returns the executed plan.
func (e *Engine) Plan() *Plan { return e.plan }

// Process consumes the next event. Events must arrive in
// non-decreasing time-stamp order (the stream scheduler of §8
// guarantees this); an out-of-order event is rejected.
func (e *Engine) Process(ev *event.Event) error {
	if err := e.admitEvent(ev.Time); err != nil {
		return err
	}
	e.seq++
	if ev.ID == 0 {
		ev.ID = e.seq
	}
	// Resolve the event once: every predicate evaluation, binding-slot
	// read and partition-key byte below is array indexing on this view.
	e.plan.resolveInto(&e.rv, ev)
	return e.processResolved(ev)
}

// admitEvent is the shared admission prologue of Process and
// ProcessResolved: reject time regressions, advance the watermark on
// time change (hoisted out of equal-time runs — a repeated time stamp
// cannot close anything new), and record the new stream time. Error
// construction lives out of line (lateEventErr) so this stays within
// the inlining budget — it runs once per event on the hot path.
func (e *Engine) admitEvent(t int64) error {
	if e.sawEvent && t < e.lastTime {
		return e.lateEventErr(t)
	}
	if !e.sawEvent || t != e.lastTime {
		// The arrival of an event at time t is the watermark "every
		// event with time < t has been seen": close and emit those
		// windows.
		e.advanceTo(t)
	}
	e.lastTime, e.sawEvent = t, true
	return nil
}

// lateEventErr builds the out-of-order rejection — the cold path of
// admitEvent.
func (e *Engine) lateEventErr(t int64) error {
	return fmt.Errorf("core: out-of-order event at time %d after %d: %w", t, e.lastTime, ErrLateEvent)
}

// AdvanceWatermark closes and emits every window that is complete at
// watermark t (every event with time < t has been seen). Process does
// this implicitly per time-stamp change; a multi-query runtime calls
// it directly so one stream watermark drives all hosted engines in a
// single pass, including engines whose subscribed types the current
// event does not match. The watermark is recorded: a later event with
// time < t contradicts it and is rejected like any out-of-order event.
func (e *Engine) AdvanceWatermark(t int64) error {
	if e.sawEvent && t < e.lastTime {
		return e.staleWatermarkErr(t)
	}
	e.advanceTo(t)
	e.lastTime, e.sawEvent = t, true
	return nil
}

// staleWatermarkErr builds the watermark-regression rejection — the
// cold path of AdvanceWatermark.
func (e *Engine) staleWatermarkErr(t int64) error {
	return fmt.Errorf("core: watermark %d behind time %d: %w", t, e.lastTime, ErrLateEvent)
}

// ProcessResolved consumes an event resolved by a shared Resolver over
// the plan's catalog: the per-query continuation of the runtime's
// resolve-once path. tid is the event's catalog type id (-1 for types
// unknown to the catalog). The caller is responsible for watermark
// ordering across queries (AdvanceWatermark); like Process, the event
// must not be older than anything this engine has seen.
func (e *Engine) ProcessResolved(ev *event.Event, r *Resolver, tid int32) error {
	if err := e.admitEvent(ev.Time); err != nil {
		return err
	}
	// Borrow the resolver's union view (slice headers only): the
	// engine reads it strictly before the next Resolve, and stored
	// state copies out what it retains.
	e.rv.ev = ev
	e.rv.num, e.rv.sym, e.rv.has = r.rv.num, r.rv.sym, r.rv.has
	e.rv.tp = e.plan.typePlanAt(tid)
	e.rv.specIDs = e.plan.specIDs
	return e.processResolved(ev)
}

// processResolved runs the per-event path after resolution: partition
// key extraction, window-state lookup and sub-aggregator dispatch.
func (e *Engine) processResolved(ev *event.Event) error {
	keyBuf, ok := e.plan.appendStreamKey(e.keyBuf[:0], &e.rv)
	e.keyBuf = keyBuf
	if !ok {
		e.skipped++ // no partition attribute: belongs to no sub-stream
		return nil
	}
	e.eventsIn++
	if !e.statesValid || e.statesTime != ev.Time {
		e.states = e.mgr.AppendStatesFor(e.states[:0], ev.Time)
		e.statesTime, e.statesValid = ev.Time, true
	}
	for _, ws := range e.states {
		part, ok := ws.parts[string(keyBuf)]
		if !ok {
			part = newSubAggregator(e.plan, e.acct, e.bnd, &e.arenas, &e.memo)
			ws.parts[string(keyBuf)] = part
		}
		part.Process(&e.rv)
	}
	return nil
}

// advanceTo closes and emits the windows complete at watermark t and
// invalidates the cached window-state slice. With eviction enabled the
// binding-intern tables rotate afterwards: emission (which decodes
// binding keys of the closed windows) MUST precede the sweep.
func (e *Engine) advanceTo(t int64) {
	for _, closed := range e.mgr.AdvanceTo(t) {
		e.emit(closed.Wid, closed.State)
	}
	e.statesValid = false
	if e.evict {
		e.bnd.expire(e.mgr.Spec().EpochOf(t))
	}
}

// ProcessAll feeds a pre-sorted batch of events.
func (e *Engine) ProcessAll(events []*event.Event) error {
	for _, ev := range events {
		if err := e.Process(ev); err != nil {
			return err
		}
	}
	return nil
}

// AlignTo aligns a late-joining engine to a live stream at watermark
// t: the stream may already have emitted events up to and including
// time t that this engine never saw, so every window that covers time
// t or earlier is only partially observable and is suppressed. Results
// start from the first fully covered window (the one whose start lies
// strictly after t). Call once, before feeding the engine its first
// event; events at time t itself are still accepted afterwards (they
// fall only into suppressed windows).
func (e *Engine) AlignTo(t int64) {
	e.mgr.SkipBefore(e.mgr.Spec().FirstFullWindow(t))
	if !e.sawEvent || t > e.lastTime {
		e.lastTime, e.sawEvent = t, true
	}
}

// RetireFrom caps the engine at window boundary wid: windows >= wid
// are never created, so the engine drains as the watermark closes its
// remaining windows. A sharing-group flip retires the outgoing
// execution side this way while the incoming side aligns with the same
// boundary — every window is owned by exactly one side, keeping
// results byte-identical across the flip.
func (e *Engine) RetireFrom(wid int64) {
	e.mgr.SkipFrom(wid)
	e.statesValid = false
}

// Unretire lifts a RetireFrom ceiling so the engine owns windows
// again; pair with ResumeFrom to fix the resumption boundary.
func (e *Engine) Unretire() {
	e.mgr.ClearCeiling()
	e.statesValid = false
}

// ResumeFrom suppresses every window below wid — the revived side of a
// sharing-group flip resumes ownership exactly at the boundary the
// retiring side stops at. Unlike AlignTo this takes the window id
// directly: the flip boundary was fixed when the transition started,
// not at the current watermark.
func (e *Engine) ResumeFrom(wid int64) {
	e.mgr.SkipBefore(wid)
	e.statesValid = false
}

// Drained reports whether the engine was retired and every window
// below its ceiling has closed: it owns nothing anymore and can be
// removed from event dispatch (watermark passes must continue so its
// stream clock stays current for a later revival).
func (e *Engine) Drained() bool { return e.mgr.Drained() }

// Deliver injects an externally computed result as if this engine had
// emitted it: through the result callback when one is installed,
// otherwise into the collected-results buffer. A sharing group's host
// engine fans its per-member projections back through Deliver so
// downstream consumers see one result stream per subscription
// regardless of which side computed each window.
func (e *Engine) Deliver(r Result) {
	if e.onResult != nil {
		e.onResult(r)
	} else {
		e.results = append(e.results, r)
	}
}

// Close flushes every open window and returns all collected results
// (nil when a result callback is installed).
func (e *Engine) Close() []Result {
	for _, closed := range e.mgr.Flush() {
		e.emit(closed.Wid, closed.State)
	}
	e.statesValid = false
	return e.results
}

// ReleaseIntern returns the engine's binding intern tables — the only
// engine state that outlives windows — to the accountant and drops
// them. Call after Close when the engine is being discarded
// (unsubscribe); the engine must not process events afterwards.
func (e *Engine) ReleaseIntern() {
	e.bnd.release()
}

// InternBytes returns the live logical bytes of the engine's binding
// intern tables. Without eviction they grow monotonically with
// distinct slot values over the engine's lifetime; with
// WithInternEviction they plateau — epoch rotation reclaims entries
// whose referencing windows have all closed, so the value also
// shrinks.
func (e *Engine) InternBytes() int64 { return e.bnd.footprint() }

// Results returns the results collected so far.
func (e *Engine) Results() []Result { return e.results }

// TakeResults returns the results collected so far and clears the
// engine's buffer, so a caller can drain incrementally without
// re-reading earlier windows. Nil when a result callback streams
// results instead.
func (e *Engine) TakeResults() []Result {
	out := e.results
	e.results = nil
	return out
}

// EventsProcessed returns how many events entered a sub-stream.
func (e *Engine) EventsProcessed() int64 { return e.eventsIn }

// EventsSkipped returns how many events carried no partition key.
func (e *Engine) EventsSkipped() int64 { return e.skipped }

// emit finalises one closed window: collects per-partition,
// per-binding aggregates, merges them into GROUP-BY groups, reports
// and releases the state.
func (e *Engine) emit(wid int64, ws *winState) {
	start, end := e.plan.Query.Window.Bounds(wid)
	type groupAgg struct {
		group []string
		node  agg.Node
	}
	groups := map[string]*groupAgg{}
	partKeys := make([]string, 0, len(ws.parts))
	for k := range ws.parts {
		partKeys = append(partKeys, k)
	}
	sort.Strings(partKeys)
	for _, pk := range partKeys {
		part := ws.parts[pk]
		for _, br := range part.Results() {
			group := e.plan.GroupOf(pk, br.vals)
			gk := strings.Join(group, "\x00")
			ga, ok := groups[gk]
			if !ok {
				ga = &groupAgg{group: group, node: e.plan.Specs.Zero()}
				groups[gk] = ga
			}
			e.plan.Specs.Merge(&ga.node, br.node)
		}
		part.Release()
	}
	gks := make([]string, 0, len(groups))
	for gk := range groups {
		gks = append(gks, gk)
	}
	sort.Strings(gks)
	for _, gk := range gks {
		ga := groups[gk]
		r := Result{
			Wid:    wid,
			Start:  start,
			End:    end,
			Group:  ga.group,
			Values: e.plan.Specs.Report(ga.node),
		}
		if e.onResult != nil {
			e.onResult(r)
		} else {
			e.results = append(e.results, r)
		}
	}
}
