package core

// Catalog is the shared symbol table a set of plans is compiled
// against: every event-type and attribute name referenced by any plan
// is interned into a dense integer id, so plans hosted together agree
// on ids and a multi-query runtime can resolve each incoming event
// ONCE into one union attribute view and hand the same resolved slots
// to every interested engine.
//
// Interning is epoch-based copy-on-write so the query population can
// change while the stream runs. Compilation (NewPlanIn) mutates a
// private staging area under the catalog's compile lock and, when the
// plan is complete, publishes an immutable snapshot ("view") with an
// atomic pointer swap. Readers — resolvers and engines on any
// goroutine — load the current view once per event and never observe
// a half-compiled plan. Because ids are append-only, a resolved view
// produced against an older epoch stays valid forever: old ids index
// the same names in every later epoch, and per-epoch growth only adds
// slots at the tail. The one in-place update the staging area would
// need (flipping symNeeded on an already-interned attribute) is
// copy-on-written too, so published views are genuinely immutable.
//
// The locking rule is therefore: any number of goroutines may resolve
// events concurrently with one compiling goroutine; compiles serialise
// among themselves on the catalog's own lock. NewPlan compiles a plan
// against a private catalog, which reproduces the single-query layout
// exactly: one plan's union view is just its own attribute set.

import (
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// catalogView is one immutable interning epoch: the id spaces as of
// some published compile. Readers obtain it with an atomic load and
// never write through it.
type catalogView struct {
	epoch     uint64
	attrIDs   map[string]int32
	attrNames []string
	symNeeded []bool
	typeIDs   map[string]int32
	typeNames []string
}

// Catalog interns the type and attribute names of all plans compiled
// against it. The exported read surface (TypeID, NumTypes, NumAttrs,
// resolution) is safe for concurrent use with one compiling goroutine;
// compilation itself is serialised internally.
type Catalog struct {
	// mu serialises compilation. The staging fields below are the
	// mutable master copy, guarded by mu; publish snapshots them into
	// view at the end of each plan compile.
	mu sync.Mutex

	// Attribute interning: attrNames[id] is the name; symNeeded[id]
	// marks attributes read through SymAttr semantics (binding slots,
	// partition keys), whose numeric fallback value is materialised at
	// resolve time. symNeeded is copy-on-written when an existing entry
	// flips, so published views never change underfoot.
	attrIDs   map[string]int32
	attrNames []string
	symNeeded []bool

	// Event-type interning: ids index the per-plan dispatch tables and
	// the runtime's per-type subscription lists.
	typeIDs   map[string]int32
	typeNames []string

	epoch uint64
	view  atomic.Pointer[catalogView]
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{
		attrIDs: map[string]int32{},
		typeIDs: map[string]int32{},
	}
	c.view.Store(&catalogView{
		attrIDs: map[string]int32{},
		typeIDs: map[string]int32{},
	})
	return c
}

// internAttr interns an attribute name; symNeeded marks attributes
// read through SymAttr semantics, whose numeric fallback value is
// materialised once per event at resolve time. Caller holds mu
// (compilation path).
func (c *Catalog) internAttr(name string, symNeeded bool) int32 {
	id, ok := c.attrIDs[name]
	if !ok {
		id = int32(len(c.attrNames))
		c.attrIDs[name] = id
		c.attrNames = append(c.attrNames, name)
		c.symNeeded = append(c.symNeeded, false)
	}
	if symNeeded && !c.symNeeded[id] {
		// Copy-on-write: this slot may already be published in an older
		// view, so flip the bit on a fresh copy rather than in place.
		fresh := make([]bool, len(c.symNeeded))
		copy(fresh, c.symNeeded)
		fresh[id] = true
		c.symNeeded = fresh
	}
	return id
}

// internType interns an event-type name. Caller holds mu.
func (c *Catalog) internType(name string) int32 {
	id, ok := c.typeIDs[name]
	if !ok {
		id = int32(len(c.typeNames))
		c.typeIDs[name] = id
		c.typeNames = append(c.typeNames, name)
	}
	return id
}

// publish snapshots the staging area into a new immutable view. Caller
// holds mu. Maps are copied (readers probe them lock-free); the name
// slices share backing arrays with staging, which is safe because
// staging only ever appends past the published length.
func (c *Catalog) publish() {
	c.epoch++
	v := &catalogView{
		epoch:     c.epoch,
		attrIDs:   make(map[string]int32, len(c.attrIDs)),
		attrNames: c.attrNames[:len(c.attrNames):len(c.attrNames)],
		symNeeded: c.symNeeded[:len(c.symNeeded):len(c.symNeeded)],
		typeIDs:   make(map[string]int32, len(c.typeIDs)),
		typeNames: c.typeNames[:len(c.typeNames):len(c.typeNames)],
	}
	for k, id := range c.attrIDs {
		v.attrIDs[k] = id
	}
	for k, id := range c.typeIDs {
		v.typeIDs[k] = id
	}
	c.view.Store(v)
}

// Epoch returns the current interning epoch: it advances by one per
// published plan compile. Diagnostic only.
func (c *Catalog) Epoch() uint64 { return c.view.Load().epoch }

// TypeID returns the interned id of an event-type name. Unknown types
// (never referenced by any plan in the catalog) return -1, false.
// Safe for concurrent use with compilation.
func (c *Catalog) TypeID(name string) (int32, bool) {
	id, ok := c.view.Load().typeIDs[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// NumTypes returns how many event types the catalog has interned.
func (c *Catalog) NumTypes() int { return len(c.view.Load().typeNames) }

// NumAttrs returns how many attributes the catalog has interned.
func (c *Catalog) NumAttrs() int { return len(c.view.Load().attrNames) }

// resolveInto computes the union resolved view of ev under the given
// epoch: one probe pass over every interned attribute, after which all
// predicate, binding and partition-key reads of every plan in the
// catalog are array indexing. It fills only the value arrays; the
// caller installs the plan-specific dispatch entry (rv.tp) and spec
// projection.
func (v *catalogView) resolveInto(rv *resolvedVals, ev *event.Event) {
	n := len(v.attrNames)
	if cap(rv.num) >= n {
		rv.num, rv.sym, rv.has = rv.num[:n], rv.sym[:n], rv.has[:n]
	} else {
		rv.num = make([]float64, n)
		rv.sym = make([]string, n)
		rv.has = make([]uint8, n)
	}
	rv.ev = ev
	for i, name := range v.attrNames {
		var h uint8
		var nv float64
		var sv string
		if val, ok := ev.Num[name]; ok {
			nv, h = val, hasNum
		}
		if s, ok := ev.Sym[name]; ok {
			sv = s
			h |= hasSymRaw | hasSymVal
		} else if h&hasNum != 0 && v.symNeeded[i] {
			sv = event.FormatNum(nv)
			h |= hasSymVal
		}
		rv.num[i], rv.sym[i], rv.has[i] = nv, sv, h
	}
}

// Resolver resolves events once against a catalog on behalf of every
// plan compiled in it. One instance per single-threaded execution
// context (a multi-query runtime, a worker); the resolved arrays are
// reused across events and shared by reference with the hosted
// engines, so resolution cost is paid once per event, not per query.
// Each Resolve loads the catalog's current epoch, so plans compiled
// mid-stream are covered from the next event on.
type Resolver struct {
	cat *Catalog
	rv  resolvedVals
}

// NewResolver builds a resolver over a catalog.
func NewResolver(cat *Catalog) *Resolver {
	return &Resolver{cat: cat}
}

// Resolve computes the union resolved view of ev, valid until the next
// call. Engines consume it through Engine.ProcessResolved. It returns
// the catalog id of ev's type (-1 when no plan references the type).
func (r *Resolver) Resolve(ev *event.Event) int32 {
	v := r.cat.view.Load()
	v.resolveInto(&r.rv, ev)
	id, ok := v.typeIDs[ev.Type]
	if !ok {
		return -1
	}
	return id
}
