package core

// Catalog is the shared symbol table a set of plans is compiled
// against: every event-type and attribute name referenced by any plan
// is interned into a dense integer id, so plans hosted together agree
// on ids and a multi-query runtime can resolve each incoming event
// ONCE into one union attribute view and hand the same resolved slots
// to every interested engine.
//
// Interning is epoch-based copy-on-write so the query population can
// change while the stream runs. Compilation (NewPlanIn) mutates a
// private staging area under the catalog's compile lock and, when the
// plan is complete, publishes an immutable snapshot ("view") with an
// atomic pointer swap. Readers — resolvers and engines on any
// goroutine — load the current view once per event and never observe
// a half-compiled plan. Ids referenced by a live (retained) plan are
// never renumbered, so a resolved view produced against an older
// epoch stays valid: live ids index the same names in every later
// epoch.
//
// # Id-space compaction
//
// Hosting a plan retains its symbol ids (Retain); unsubscribing
// releases them (Release). When the last reference to an id is
// released — the quiescent point for that id: no live plan's dispatch
// tables or compiled predicates mention it — the id is retired:
// tombstoned in a freshly published compacted view (resolvers skip it,
// so the per-event probe loop stops paying for it) and pushed on a
// free list for the next compile to recycle. Subscribe/unsubscribe
// churn therefore no longer grows the id spaces without bound. A plan
// compiled but not yet hosted holds no references; if a compaction
// retires one of its ids in the gap (and the id is recycled or still
// dead at Retain time), Retain rejects the plan with ErrNotHosted —
// recompile against the current catalog.
//
// The locking rule is: any number of goroutines may resolve events
// concurrently with one compiling/retaining/releasing goroutine;
// compiles, retains and releases serialise among themselves on the
// catalog's own lock. NewPlan compiles a plan against a private
// catalog, which reproduces the single-query layout exactly: one
// plan's union view is just its own attribute set.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// catalogView is one immutable interning epoch: the id spaces as of
// some published compile or compaction. Readers obtain it with an
// atomic load and never write through it.
type catalogView struct {
	epoch     uint64
	attrIDs   map[string]int32
	attrNames []string
	symNeeded []bool
	attrDead  []bool
	// No typeDead here: readers reach types only through the typeIDs
	// map, which already omits retired names, so views never need to
	// skip dead type slots the way resolveInto skips dead attr slots.
	typeIDs   map[string]int32
	typeNames []string
	liveAttrs int
	liveTypes int
}

// Catalog interns the type and attribute names of all plans compiled
// against it. The exported read surface (TypeID, NumTypes, NumAttrs,
// resolution) is safe for concurrent use with one compiling goroutine;
// compilation itself is serialised internally.
type Catalog struct {
	// mu serialises compilation, retain and release. The staging fields
	// below are the mutable master copy, guarded by mu; publish
	// snapshots them into view at the end of each plan compile or
	// compaction.
	mu sync.Mutex

	// Attribute interning: attrNames[id] is the name; symNeeded[id]
	// marks attributes read through SymAttr semantics (binding slots,
	// partition keys), whose numeric fallback value is materialised at
	// resolve time. attrDead marks retired ids (tombstones awaiting
	// recycling via freeAttrs); attrRefs counts the hosted plans
	// referencing each id.
	attrIDs   map[string]int32
	attrNames []string
	symNeeded []bool
	attrDead  []bool
	attrRefs  []int32
	freeAttrs []int32

	// Event-type interning: ids index the per-plan dispatch tables and
	// the runtime's per-type subscription lists. Same lifecycle as the
	// attribute side.
	typeIDs   map[string]int32
	typeNames []string
	typeDead  []bool
	typeRefs  []int32
	freeTypes []int32

	epoch       uint64
	compactions atomic.Uint64
	view        atomic.Pointer[catalogView]
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{
		attrIDs: map[string]int32{},
		typeIDs: map[string]int32{},
	}
	c.view.Store(&catalogView{
		attrIDs: map[string]int32{},
		typeIDs: map[string]int32{},
	})
	return c
}

// internAttr interns an attribute name; symNeeded marks attributes
// read through SymAttr semantics, whose numeric fallback value is
// materialised once per event at resolve time. Retired ids are
// recycled from the free list. Caller holds mu (compilation path).
func (c *Catalog) internAttr(name string, symNeeded bool) int32 {
	id, ok := c.attrIDs[name]
	if !ok {
		if n := len(c.freeAttrs); n > 0 {
			id = c.freeAttrs[n-1]
			c.freeAttrs = c.freeAttrs[:n-1]
			c.attrNames[id] = name
			c.attrDead[id] = false
		} else {
			id = int32(len(c.attrNames))
			c.attrNames = append(c.attrNames, name)
			c.symNeeded = append(c.symNeeded, false)
			c.attrDead = append(c.attrDead, false)
			c.attrRefs = append(c.attrRefs, 0)
		}
		c.attrIDs[name] = id
	}
	if symNeeded && !c.symNeeded[id] {
		c.symNeeded[id] = true
	}
	return id
}

// internType interns an event-type name. Caller holds mu.
func (c *Catalog) internType(name string) int32 {
	id, ok := c.typeIDs[name]
	if !ok {
		if n := len(c.freeTypes); n > 0 {
			id = c.freeTypes[n-1]
			c.freeTypes = c.freeTypes[:n-1]
			c.typeNames[id] = name
			c.typeDead[id] = false
		} else {
			id = int32(len(c.typeNames))
			c.typeNames = append(c.typeNames, name)
			c.typeDead = append(c.typeDead, false)
			c.typeRefs = append(c.typeRefs, 0)
		}
		c.typeIDs[name] = id
	}
	return id
}

// publish snapshots the staging area into a new immutable view. Caller
// holds mu. Every slice and map is copied: compaction retires (and
// recycling rewrites) entries within the published length, so views
// cannot share backing arrays with staging. Compiles and compactions
// are cold paths; the copies buy lock-free readers.
func (c *Catalog) publish() {
	c.epoch++
	v := &catalogView{
		epoch:     c.epoch,
		attrIDs:   make(map[string]int32, len(c.attrIDs)),
		attrNames: append([]string(nil), c.attrNames...),
		symNeeded: append([]bool(nil), c.symNeeded...),
		attrDead:  append([]bool(nil), c.attrDead...),
		typeIDs:   make(map[string]int32, len(c.typeIDs)),
		typeNames: append([]string(nil), c.typeNames...),
		liveAttrs: len(c.attrNames) - len(c.freeAttrs),
		liveTypes: len(c.typeNames) - len(c.freeTypes),
	}
	for k, id := range c.attrIDs {
		v.attrIDs[k] = id
	}
	for k, id := range c.typeIDs {
		v.typeIDs[k] = id
	}
	c.view.Store(v)
}

// Epoch returns the current interning epoch: it advances by one per
// published plan compile or compaction. Diagnostic only.
func (c *Catalog) Epoch() uint64 { return c.view.Load().epoch }

// Compactions returns how many compacted views the catalog has
// published (id retirements at quiescent points). Diagnostic only.
func (c *Catalog) Compactions() uint64 { return c.compactions.Load() }

// Retain registers one hosting of a plan: every symbol id the plan
// references gains a reference, pinning it against compaction. It
// fails with an error wrapping ErrNotHosted when a compaction already
// retired one of the plan's ids (the plan was compiled, left unhosted,
// and outlived its symbols) — recompile the query against the catalog.
// Callers pair it with Release.
func (c *Catalog) Retain(p *Plan) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range p.attrSyms {
		if int(s.id) >= len(c.attrNames) || c.attrDead[s.id] || c.attrNames[s.id] != s.name ||
			(s.sym && !c.symNeeded[s.id]) {
			return c.staleErr("attribute", s.name)
		}
	}
	for _, s := range p.typeSyms {
		if int(s.id) >= len(c.typeNames) || c.typeDead[s.id] || c.typeNames[s.id] != s.name {
			return c.staleErr("event type", s.name)
		}
	}
	for _, s := range p.attrSyms {
		c.attrRefs[s.id]++
	}
	for _, s := range p.typeSyms {
		c.typeRefs[s.id]++
	}
	return nil
}

func (c *Catalog) staleErr(kind, name string) error {
	return fmt.Errorf("core: stale plan: %s %q was retired by a catalog compaction since the plan was compiled; recompile the query: %w",
		kind, name, ErrNotHosted)
}

// retireAttr tombstones one attribute id and queues it for recycling.
// Caller holds mu and has established that nothing references it.
func (c *Catalog) retireAttr(id int32) {
	delete(c.attrIDs, c.attrNames[id])
	c.attrNames[id] = ""
	c.symNeeded[id] = false
	c.attrDead[id] = true
	c.freeAttrs = append(c.freeAttrs, id)
}

// retireType tombstones one event-type id and queues it for recycling.
// Caller holds mu and has established that nothing references it.
func (c *Catalog) retireType(id int32) {
	delete(c.typeIDs, c.typeNames[id])
	c.typeNames[id] = ""
	c.typeDead[id] = true
	c.freeTypes = append(c.freeTypes, id)
}

// truncate physically pops trailing tombstoned slots off both id
// spaces, removing them from the free lists: churn that retired the
// highest ids shrinks the arrays (and every later view's resolve
// loop) instead of leaving dead slots to be probed forever. Interior
// tombstones cannot move — live ids are never renumbered — so they
// stay on the free lists for recycling; they become truncatable the
// moment everything above them retires. Caller holds mu, as part of a
// compaction (before publish).
func (c *Catalog) truncate() {
	n := len(c.attrNames)
	for n > 0 && c.attrDead[n-1] {
		n--
	}
	if n < len(c.attrNames) {
		c.freeAttrs = dropIDsAtOrAbove(c.freeAttrs, int32(n))
		c.attrNames = c.attrNames[:n]
		c.symNeeded = c.symNeeded[:n]
		c.attrDead = c.attrDead[:n]
		c.attrRefs = c.attrRefs[:n]
	}
	n = len(c.typeNames)
	for n > 0 && c.typeDead[n-1] {
		n--
	}
	if n < len(c.typeNames) {
		c.freeTypes = dropIDsAtOrAbove(c.freeTypes, int32(n))
		c.typeNames = c.typeNames[:n]
		c.typeDead = c.typeDead[:n]
		c.typeRefs = c.typeRefs[:n]
	}
}

// dropIDsAtOrAbove removes the free-list entries a truncation cut off.
func dropIDsAtOrAbove(free []int32, n int32) []int32 {
	kept := free[:0]
	for _, id := range free {
		if id < n {
			kept = append(kept, id)
		}
	}
	return kept
}

// Release drops one hosting's references. Ids whose last reference
// goes — the quiescent point: no live epoch's dispatch reaches them —
// are retired into a freshly published compacted view and queued for
// recycling by the next compile; retirements at the top of the id
// space shrink it physically (truncate).
func (c *Catalog) Release(p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	retired := false
	for _, s := range p.attrSyms {
		if c.attrRefs[s.id] > 0 {
			c.attrRefs[s.id]--
			if c.attrRefs[s.id] == 0 {
				c.retireAttr(s.id)
				retired = true
			}
		}
	}
	for _, s := range p.typeSyms {
		if c.typeRefs[s.id] > 0 {
			c.typeRefs[s.id]--
			if c.typeRefs[s.id] == 0 {
				c.retireType(s.id)
				retired = true
			}
		}
	}
	if retired {
		c.truncate()
		c.compactions.Add(1)
		c.publish()
	}
}

// DiscardPlan retires the symbols of a compiled-but-never-hosted plan
// that will not be used — the failure path of a Subscribe that
// compiled the plan itself: without it, every failed subscribe with
// novel names would leak live ids that the resolver probes per event
// forever. Only ids that still map the plan's names and that no
// hosting references (refcount 0) are retired; ids shared with hosted
// plans, or already recycled, are left untouched. Other compiled-but-
// unhosted plans sharing a retired id become stale, exactly as under
// a regular compaction (Retain rejects them; recompile).
func (c *Catalog) DiscardPlan(p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	retired := false
	for _, s := range p.attrSyms {
		if int(s.id) < len(c.attrNames) && !c.attrDead[s.id] &&
			c.attrNames[s.id] == s.name && c.attrRefs[s.id] == 0 {
			c.retireAttr(s.id)
			retired = true
		}
	}
	for _, s := range p.typeSyms {
		if int(s.id) < len(c.typeNames) && !c.typeDead[s.id] &&
			c.typeNames[s.id] == s.name && c.typeRefs[s.id] == 0 {
			c.retireType(s.id)
			retired = true
		}
	}
	if retired {
		c.truncate()
		c.compactions.Add(1)
		c.publish()
	}
}

// TypeID returns the interned id of an event-type name. Unknown types
// (never referenced by any plan in the catalog) return -1, false.
// Safe for concurrent use with compilation.
func (c *Catalog) TypeID(name string) (int32, bool) {
	id, ok := c.view.Load().typeIDs[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// NumTypes returns how many event types the catalog currently interns
// (live ids; retired ids awaiting recycling are not counted).
func (c *Catalog) NumTypes() int { return c.view.Load().liveTypes }

// NumAttrs returns how many attributes the catalog currently interns
// (live ids; retired ids awaiting recycling are not counted).
func (c *Catalog) NumAttrs() int { return c.view.Load().liveAttrs }

// NumTypeSlots returns the physical type id-space size, including
// tombstoned slots awaiting recycling. Compactions truncate trailing
// tombstones, so sustained churn that retires the highest ids pulls
// this back toward NumTypes instead of growing without bound.
func (c *Catalog) NumTypeSlots() int { return len(c.view.Load().typeNames) }

// NumAttrSlots is NumTypeSlots for the attribute id space.
func (c *Catalog) NumAttrSlots() int { return len(c.view.Load().attrNames) }

// resolveInto computes the union resolved view of ev under the given
// epoch: one probe pass over every live interned attribute, after
// which all predicate, binding and partition-key reads of every plan
// in the catalog are array indexing. Retired (tombstoned) slots are
// cleared and skipped. It fills only the value arrays; the caller
// installs the plan-specific dispatch entry (rv.tp) and spec
// projection.
func (v *catalogView) resolveInto(rv *resolvedVals, ev *event.Event) {
	n := len(v.attrNames)
	if cap(rv.num) >= n {
		rv.num, rv.sym, rv.has = rv.num[:n], rv.sym[:n], rv.has[:n]
	} else {
		rv.num = make([]float64, n)
		rv.sym = make([]string, n)
		rv.has = make([]uint8, n)
	}
	rv.ev = ev
	for i, name := range v.attrNames {
		if v.attrDead != nil && v.attrDead[i] {
			rv.num[i], rv.sym[i], rv.has[i] = 0, "", 0
			continue
		}
		var h uint8
		var nv float64
		var sv string
		if val, ok := ev.Num[name]; ok {
			nv, h = val, hasNum
		}
		if s, ok := ev.Sym[name]; ok {
			sv = s
			h |= hasSymRaw | hasSymVal
		} else if h&hasNum != 0 && v.symNeeded[i] {
			sv = event.FormatNum(nv)
			h |= hasSymVal
		}
		rv.num[i], rv.sym[i], rv.has[i] = nv, sv, h
	}
}

// Resolver resolves events once against a catalog on behalf of every
// plan compiled in it. One instance per single-threaded execution
// context (a multi-query runtime, a worker); the resolved arrays are
// reused across events and shared by reference with the hosted
// engines, so resolution cost is paid once per event, not per query.
// Each Resolve loads the catalog's current epoch, so plans compiled
// mid-stream are covered from the next event on.
type Resolver struct {
	cat *Catalog
	rv  resolvedVals
}

// NewResolver builds a resolver over a catalog.
func NewResolver(cat *Catalog) *Resolver {
	return &Resolver{cat: cat}
}

// Resolve computes the union resolved view of ev, valid until the next
// call. Engines consume it through Engine.ProcessResolved. It returns
// the catalog id of ev's type (-1 when no plan references the type).
func (r *Resolver) Resolve(ev *event.Event) int32 {
	v := r.cat.view.Load()
	v.resolveInto(&r.rv, ev)
	id, ok := v.typeIDs[ev.Type]
	if !ok {
		return -1
	}
	return id
}
