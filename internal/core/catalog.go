package core

// Catalog is the shared symbol table a set of plans is compiled
// against: every event-type and attribute name referenced by any plan
// is interned into a dense integer id, so plans hosted together agree
// on ids and a multi-query runtime can resolve each incoming event
// ONCE into one union attribute view and hand the same resolved slots
// to every interested engine.
//
// A Catalog is mutated only by compilation (NewPlanIn); it carries no
// locks, so the rule is: no compilation while any other goroutine
// reads the catalog. A catalog shared across runtimes or executor
// workers must have every plan compiled before processing starts; a
// catalog private to one single-threaded runtime may compile further
// plans between events (runtime.Subscribe mid-stream). NewPlan
// compiles a plan against a private catalog, which reproduces the
// single-query layout exactly: one plan's union view is just its own
// attribute set.

import (
	"repro/internal/event"
)

// Catalog interns the type and attribute names of all plans compiled
// against it.
type Catalog struct {
	// Attribute interning: attrNames[id] is the name; symNeeded[id]
	// marks attributes read through SymAttr semantics (binding slots,
	// partition keys), whose numeric fallback value is materialised at
	// resolve time.
	attrIDs   map[string]int32
	attrNames []string
	symNeeded []bool

	// Event-type interning: ids index the per-plan dispatch tables and
	// the runtime's per-type subscription lists.
	typeIDs   map[string]int32
	typeNames []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		attrIDs: map[string]int32{},
		typeIDs: map[string]int32{},
	}
}

// internAttr interns an attribute name; symNeeded marks attributes
// read through SymAttr semantics, whose numeric fallback value is
// materialised once per event at resolve time.
func (c *Catalog) internAttr(name string, symNeeded bool) int32 {
	id, ok := c.attrIDs[name]
	if !ok {
		id = int32(len(c.attrNames))
		c.attrIDs[name] = id
		c.attrNames = append(c.attrNames, name)
		c.symNeeded = append(c.symNeeded, false)
	}
	if symNeeded {
		c.symNeeded[id] = true
	}
	return id
}

// internType interns an event-type name.
func (c *Catalog) internType(name string) int32 {
	id, ok := c.typeIDs[name]
	if !ok {
		id = int32(len(c.typeNames))
		c.typeIDs[name] = id
		c.typeNames = append(c.typeNames, name)
	}
	return id
}

// TypeID returns the interned id of an event-type name. Unknown types
// (never referenced by any plan in the catalog) return -1, false.
func (c *Catalog) TypeID(name string) (int32, bool) {
	id, ok := c.typeIDs[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// NumTypes returns how many event types the catalog has interned.
func (c *Catalog) NumTypes() int { return len(c.typeNames) }

// NumAttrs returns how many attributes the catalog has interned.
func (c *Catalog) NumAttrs() int { return len(c.attrNames) }

// resolveInto computes the union resolved view of ev: one probe pass
// over every catalog-interned attribute, after which all predicate,
// binding and partition-key reads of every plan in the catalog are
// array indexing. It fills only the value arrays; the caller installs
// the plan-specific dispatch entry (rv.tp) and spec projection.
func (c *Catalog) resolveInto(rv *resolvedVals, ev *event.Event) {
	n := len(c.attrNames)
	if cap(rv.num) >= n {
		rv.num, rv.sym, rv.has = rv.num[:n], rv.sym[:n], rv.has[:n]
	} else {
		rv.num = make([]float64, n)
		rv.sym = make([]string, n)
		rv.has = make([]uint8, n)
	}
	rv.ev = ev
	for i, name := range c.attrNames {
		var h uint8
		var nv float64
		var sv string
		if v, ok := ev.Num[name]; ok {
			nv, h = v, hasNum
		}
		if s, ok := ev.Sym[name]; ok {
			sv = s
			h |= hasSymRaw | hasSymVal
		} else if h&hasNum != 0 && c.symNeeded[i] {
			sv = event.FormatNum(nv)
			h |= hasSymVal
		}
		rv.num[i], rv.sym[i], rv.has[i] = nv, sv, h
	}
}

// Resolver resolves events once against a catalog on behalf of every
// plan compiled in it. One instance per single-threaded execution
// context (a multi-query runtime, a worker); the resolved arrays are
// reused across events and shared by reference with the hosted
// engines, so resolution cost is paid once per event, not per query.
type Resolver struct {
	cat *Catalog
	rv  resolvedVals
}

// NewResolver builds a resolver over a catalog.
func NewResolver(cat *Catalog) *Resolver {
	return &Resolver{cat: cat}
}

// Resolve computes the union resolved view of ev, valid until the next
// call. Engines consume it through Engine.ProcessResolved.
func (r *Resolver) Resolve(ev *event.Event) {
	r.cat.resolveInto(&r.rv, ev)
}
