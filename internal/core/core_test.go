package core

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// figure2Pattern is P = (SEQ(A+, B))+ from Figure 2.
func figure2Pattern() pattern.Node {
	return pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))
}

// figure2Stream is a1 b2 a3 a4 c5 b6 a7 b8; every event also carries
// its time stamp as numeric attribute t (used by predicate tests).
func figure2Stream() []*event.Event {
	var out []*event.Event
	for _, spec := range []struct {
		typ string
		t   int64
	}{{"A", 1}, {"B", 2}, {"A", 3}, {"A", 4}, {"C", 5}, {"B", 6}, {"A", 7}, {"B", 8}} {
		out = append(out, event.New(spec.typ, spec.t).WithNum("t", float64(spec.t)))
	}
	return out
}

func countQuery(sem query.Semantics) *query.Query {
	return query.NewBuilder(figure2Pattern()).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(sem).
		Within(100, 100).
		MustBuild()
}

func runCount(t *testing.T, q *query.Query, events []*event.Event) uint64 {
	t.Helper()
	eng := NewEngine(MustPlan(q))
	if err := eng.ProcessAll(events); err != nil {
		t.Fatal(err)
	}
	results := eng.Close()
	if len(results) == 0 {
		return 0
	}
	if len(results) != 1 {
		t.Fatalf("expected one result, got %v", results)
	}
	return results[0].Values[0].Count
}

// TestPaperTable5 reproduces the type-grained trend count of Table 5:
// 43 trends under skip-till-any-match.
func TestPaperTable5(t *testing.T) {
	q := countQuery(query.Any)
	plan := MustPlan(q)
	if plan.Granularity != TypeGrained {
		t.Fatalf("granularity = %v, want type", plan.Granularity)
	}
	if got := runCount(t, q, figure2Stream()); got != 43 {
		t.Errorf("COUNT(*) = %d, want 43", got)
	}
}

// TestPaperTable5Intermediates checks the per-event intermediate
// counts of Table 5 via the aggregator directly.
func TestPaperTable5Intermediates(t *testing.T) {
	plan := MustPlan(countQuery(query.Any))
	tg := newTypeGrained(plan, nopAccountant{}, newBindings(plan.Slots, nopAccountant{}, false), &runMemo{})
	wantA := map[int64]uint64{1: 1, 3: 4, 4: 10, 7: 32}
	wantB := map[int64]uint64{2: 1, 6: 11, 8: 43}
	var rv resolvedVals
	for _, e := range figure2Stream() {
		plan.resolveInto(&rv, e)
		tg.Process(&rv)
		tg.flush() // commit so the tables are observable
		if want, ok := wantA[e.Time]; ok {
			if got := tg.tables[plan.aliasIDs["A"]][0].Count; got != want {
				t.Errorf("after %v: A.count = %d, want %d", e, got, want)
			}
		}
		if want, ok := wantB[e.Time]; ok {
			if got := tg.tables[plan.aliasIDs["B"]][0].Count; got != want {
				t.Errorf("after %v: B.count = %d, want %d", e, got, want)
			}
		}
	}
}

// TestPaperTable6 reproduces the mixed-grained trend count of Table 6:
// predicates restrict the adjacency between b's and a's; a7 is
// adjacent to b2 but not b6. Final count 33.
func TestPaperTable6(t *testing.T) {
	q := query.NewBuilder(figure2Pattern()).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereAdjacent(predicate.Adjacent{
			Left: "B", LeftAttr: "t", Right: "A", RightAttr: "t",
			Fn: func(prev, next any) bool {
				return !(prev.(float64) == 6 && next.(float64) == 7)
			},
		}).
		Within(100, 100).
		MustBuild()
	plan := MustPlan(q)
	if plan.Granularity != MixedGrained {
		t.Fatalf("granularity = %v, want mixed", plan.Granularity)
	}
	if !plan.EventGrained["B"] || plan.EventGrained["A"] {
		t.Fatalf("event-grained set = %v, want {B}", plan.EventGrained)
	}
	if got := runCount(t, q, figure2Stream()); got != 33 {
		t.Errorf("COUNT(*) = %d, want 33", got)
	}
}

// TestAdjacentNumFnMatchesOperator: the typed NumFn fast path is an
// internal representation change only — a NumFn computing `prev < next`
// produces the same trend counts as the compiled Lt operator and as
// the equivalent untyped Fn, on both mixed and pattern granularity.
func TestAdjacentNumFnMatchesOperator(t *testing.T) {
	r := benchRand(17)
	var events []*event.Event
	for i := 0; i < 400; i++ {
		events = append(events, event.New("Measurement", int64(i)).
			WithNum("rate", float64(r.next()%50)))
	}
	for _, sem := range []query.Semantics{query.Any, query.Cont} {
		mk := func(adj predicate.Adjacent) *query.Query {
			return query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
				Return(agg.Spec{Func: agg.CountStar}).
				Semantics(sem).
				WhereAdjacent(adj).
				Within(400, 400).
				MustBuild()
		}
		op := runCount(t, mk(predicate.Adjacent{
			Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}), events)
		numFn := runCount(t, mk(predicate.Adjacent{
			Left: "M", LeftAttr: "rate", Right: "M", RightAttr: "rate",
			NumFn: func(prev, next float64) bool { return prev < next }}), events)
		anyFn := runCount(t, mk(predicate.Adjacent{
			Left: "M", LeftAttr: "rate", Right: "M", RightAttr: "rate",
			Fn: func(prev, next any) bool {
				l, lok := prev.(float64)
				rv, rok := next.(float64)
				return lok && rok && l < rv
			}}), events)
		if op != numFn || op != anyFn {
			t.Errorf("%v: operator=%d numFn=%d anyFn=%d diverge", sem, op, numFn, anyFn)
		}
		if op == 0 {
			t.Errorf("%v: zero trends; test is vacuous", sem)
		}
	}
}

// TestAdvanceWatermarkRecordsFloor: an external watermark is a
// promise that every older event has been seen; an event contradicting
// it must be rejected exactly like an out-of-order event, not silently
// dropped into already-closed windows.
func TestAdvanceWatermarkRecordsFloor(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		Within(10, 10).
		MustBuild()
	plan := MustPlan(q)
	eng := NewEngine(plan)
	res := NewResolver(plan.Catalog())
	if err := eng.AdvanceWatermark(20); err != nil {
		t.Fatal(err)
	}
	tid, _ := plan.Catalog().TypeID("A")
	late := event.New("A", 7)
	res.Resolve(late)
	if err := eng.ProcessResolved(late, res, tid); err == nil {
		t.Error("event older than the advanced watermark accepted")
	}
	if err := eng.Process(event.New("A", 7)); err == nil {
		t.Error("Process accepted an event older than the watermark")
	}
	if err := eng.AdvanceWatermark(15); err == nil {
		t.Error("regressing watermark accepted")
	}
	// Events at or after the watermark are fine.
	ok := event.New("A", 20)
	res.Resolve(ok)
	if err := eng.ProcessResolved(ok, res, tid); err != nil {
		t.Errorf("event at the watermark rejected: %v", err)
	}
}

// TestPaperTable7 reproduces the pattern-grained counts of Table 7:
// 8 trends under skip-till-next-match, 2 under contiguous.
func TestPaperTable7(t *testing.T) {
	if got := runCount(t, countQuery(query.Next), figure2Stream()); got != 8 {
		t.Errorf("NEXT COUNT(*) = %d, want 8", got)
	}
	if got := runCount(t, countQuery(query.Cont), figure2Stream()); got != 2 {
		t.Errorf("CONT COUNT(*) = %d, want 2", got)
	}
}

func TestGranularitySelection(t *testing.T) {
	cases := []struct {
		sem  query.Semantics
		adj  bool
		want Granularity
	}{
		{query.Any, false, TypeGrained},
		{query.Any, true, MixedGrained},
		{query.Next, false, PatternGrained},
		{query.Next, true, PatternGrained},
		{query.Cont, false, PatternGrained},
		{query.Cont, true, PatternGrained},
	}
	for _, c := range cases {
		if got := SelectGranularity(c.sem, c.adj); got != c.want {
			t.Errorf("SelectGranularity(%v, %v) = %v, want %v", c.sem, c.adj, got, c.want)
		}
	}
}

func TestPlanRejections(t *testing.T) {
	// Alias-scoped equivalence under pattern granularity.
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("S", "A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Next).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "c"}).
		Within(10, 10).MustBuild()
	if _, err := NewPlan(q); err == nil {
		t.Error("alias equivalence under NEXT accepted")
	}
	// Event type matching several pattern types under NEXT.
	q2 := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.TypeAs("S", "A")), pattern.Plus(pattern.TypeAs("S", "B")))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Cont).
		Within(10, 10).MustBuild()
	if _, err := NewPlan(q2); err == nil {
		t.Error("ambiguous event type under CONT accepted")
	}
	// Composite negated sub-pattern.
	q3 := query.NewBuilder(pattern.Seq(pattern.Type("A"), pattern.Not(pattern.Seq(pattern.Type("N"), pattern.Type("M"))), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(10, 10).MustBuild()
	if _, err := NewPlan(q3); err == nil {
		t.Error("composite negation accepted")
	}
}

func TestAggregatesMinMaxSumAvg(t *testing.T) {
	// Pattern M+ under ANY over rates 60, 62, 61: trends are all
	// non-empty ordered subsets: {60},{62},{61},{60,62},{60,61},
	// {62,61},{60,62,61} -> 7 trends.
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
		Return(
			agg.Spec{Func: agg.CountStar},
			agg.Spec{Func: agg.CountType, Alias: "M"},
			agg.Spec{Func: agg.Min, Alias: "M", Attr: "rate"},
			agg.Spec{Func: agg.Max, Alias: "M", Attr: "rate"},
			agg.Spec{Func: agg.Sum, Alias: "M", Attr: "rate"},
			agg.Spec{Func: agg.Avg, Alias: "M", Attr: "rate"},
		).
		Semantics(query.Any).
		Within(100, 100).
		MustBuild()
	events := []*event.Event{
		event.New("M", 1).WithNum("rate", 60),
		event.New("M", 2).WithNum("rate", 62),
		event.New("M", 3).WithNum("rate", 61),
	}
	eng := NewEngine(MustPlan(q))
	if err := eng.ProcessAll(events); err != nil {
		t.Fatal(err)
	}
	res := eng.Close()
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	v := res[0].Values
	if v[0].Count != 7 {
		t.Errorf("COUNT(*) = %d, want 7", v[0].Count)
	}
	// Occurrences: each event appears in 4 of the 7 trends -> 12.
	if v[1].Count != 12 {
		t.Errorf("COUNT(M) = %d, want 12", v[1].Count)
	}
	if v[2].F != 60 || v[3].F != 62 {
		t.Errorf("MIN/MAX = %v/%v, want 60/62", v[2].F, v[3].F)
	}
	// SUM over occurrences: 4*(60+62+61) = 732; AVG = 61.
	if v[4].F != 732 {
		t.Errorf("SUM = %v, want 732", v[4].F)
	}
	if v[5].F != 61 {
		t.Errorf("AVG = %v, want 61", v[5].F)
	}
}

func TestSlidingWindowsSeparateState(t *testing.T) {
	// WITHIN 4 SLIDE 2 over A+ (ANY): events at t=1 (win 0), t=3
	// (wins 0,1), t=5 (wins 1,2).
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(4, 2).MustBuild()
	eng := NewEngine(MustPlan(q))
	for _, tm := range []int64{1, 3, 5} {
		if err := eng.Process(event.New("A", tm)); err != nil {
			t.Fatal(err)
		}
	}
	res := eng.Close()
	// Window 0 [0,4): a1,a3 -> 3 trends; window 1 [2,6): a3,a5 -> 3;
	// window 2 [4,8): a5 -> 1.
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	wantCounts := []uint64{3, 3, 1}
	for i, r := range res {
		if r.Wid != int64(i) || r.Values[0].Count != wantCounts[i] {
			t.Errorf("window %d: %v (want count %d)", i, r, wantCounts[i])
		}
	}
}

func TestWindowsEmittedIncrementallyOnWatermark(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(2, 2).MustBuild()
	var emitted []Result
	eng := NewEngine(MustPlan(q), WithResultCallback(func(r Result) { emitted = append(emitted, r) }))
	eng.Process(event.New("A", 0))
	eng.Process(event.New("A", 1))
	if len(emitted) != 0 {
		t.Fatalf("window emitted before watermark: %v", emitted)
	}
	eng.Process(event.New("A", 2)) // watermark 2 closes window 0 = [0,2)
	if len(emitted) != 1 || emitted[0].Values[0].Count != 3 {
		t.Fatalf("after watermark: %v", emitted)
	}
	eng.Close()
	if len(emitted) != 2 {
		t.Fatalf("after close: %v", emitted)
	}
}

func TestGroupByPartitionsStream(t *testing.T) {
	// q1-style: [patient] + GROUP-BY patient under CONT.
	q := query.MustParse(`
		RETURN patient, COUNT(*)
		PATTERN Measurement M+
		SEMANTICS contiguous
		WHERE [patient] AND M.rate < NEXT(M).rate
		GROUP-BY patient
		WITHIN 100 SLIDE 100`)
	events := []*event.Event{
		event.New("Measurement", 1).WithSym("patient", "p1").WithNum("rate", 60),
		event.New("Measurement", 2).WithSym("patient", "p2").WithNum("rate", 80),
		event.New("Measurement", 3).WithSym("patient", "p1").WithNum("rate", 61),
		event.New("Measurement", 4).WithSym("patient", "p2").WithNum("rate", 79),
		event.New("Measurement", 5).WithSym("patient", "p1").WithNum("rate", 62),
	}
	eng := NewEngine(MustPlan(q))
	if err := eng.ProcessAll(events); err != nil {
		t.Fatal(err)
	}
	res := eng.Close()
	// p1: rates 60,61,62 contiguous increasing within the p1
	// sub-stream: trends {60},{61},{62},{60,61},{61,62},{60,61,62} = 6.
	// p2: 80,79 decreasing: trends {80},{79} = 2.
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Group[0] != "p1" || res[0].Values[0].Count != 6 {
		t.Errorf("p1: %v", res[0])
	}
	if res[1].Group[0] != "p2" || res[1].Values[0].Count != 2 {
		t.Errorf("p2: %v", res[1])
	}
}

func TestAliasEquivalenceBindings(t *testing.T) {
	// q3-style: SEQ(Stock A+, Stock B+) with [A.company], [B.company],
	// grouped by both; type-grained (no adjacent predicates).
	q := query.MustParse(`
		RETURN A.company, B.company, COUNT(*)
		PATTERN SEQ(Stock A+, Stock B+)
		WHERE [A.company] AND [B.company]
		GROUP-BY A.company, B.company
		WITHIN 100 SLIDE 100`)
	mk := func(tm int64, company string) *event.Event {
		return event.New("Stock", tm).WithSym("company", company).WithNum("price", 1)
	}
	// Stream: x@1, y@2, x@3.
	// Trends SEQ(A+,B+): pick non-empty A-subset then non-empty
	// B-subset, A's share a company, B's share a company, last A
	// before first B.
	// (A=x1, B=y2), (A=x1, B=x3), (A=y2, B=x3), (A=x1x3?) x3 after y2
	// is fine for A+ only if no B precedes... enumerate:
	//   A={x1}   B={y2}        -> (x,y)
	//   A={x1}   B={x3}        -> (x,x)
	//   A={x1}   B={y2? x3?} B's must share company: {y2},{x3} only
	//   A={y2}   B={x3}        -> (y,x)
	//   A={x1,x3}? x3 as A needs B after time 3: none
	// So groups: (x,y)=1, (x,x)=1, (y,x)=1.
	eng := NewEngine(MustPlan(q))
	if err := eng.ProcessAll([]*event.Event{mk(1, "x"), mk(2, "y"), mk(3, "x")}); err != nil {
		t.Fatal(err)
	}
	res := eng.Close()
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	want := map[string]uint64{"x,x": 1, "x,y": 1, "y,x": 1}
	for _, r := range res {
		key := r.Group[0] + "," + r.Group[1]
		if r.Values[0].Count != want[key] {
			t.Errorf("group %s: count = %d, want %d", key, r.Values[0].Count, want[key])
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Errorf("missing groups: %v", want)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	q := countQuery(query.Any)
	eng := NewEngine(MustPlan(q))
	eng.Process(event.New("A", 5))
	if err := eng.Process(event.New("A", 4)); err == nil {
		t.Error("out-of-order event accepted")
	}
}

func TestSimultaneousEventsAreNotAdjacent(t *testing.T) {
	// Two A's at the same time under ANY: each starts a trend, neither
	// extends the other (Definition 7: ep.time < e.time).
	q := query.NewBuilder(pattern.Plus(pattern.Type("A"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(10, 10).MustBuild()
	eng := NewEngine(MustPlan(q))
	eng.Process(event.New("A", 1))
	eng.Process(event.New("A", 1))
	res := eng.Close()
	if res[0].Values[0].Count != 2 {
		t.Errorf("COUNT(*) = %d, want 2", res[0].Values[0].Count)
	}
}

func TestEventsWithoutPartitionKeySkipped(t *testing.T) {
	q := query.MustParse(`
		RETURN COUNT(*) PATTERN A+ WHERE [k] WITHIN 10 SLIDE 10`)
	eng := NewEngine(MustPlan(q))
	eng.Process(event.New("A", 1)) // lacks attribute k
	eng.Process(event.New("A", 2).WithSym("k", "v"))
	res := eng.Close()
	if eng.EventsSkipped() != 1 {
		t.Errorf("skipped = %d, want 1", eng.EventsSkipped())
	}
	if len(res) != 1 || res[0].Values[0].Count != 1 {
		t.Errorf("results = %v", res)
	}
}

// --- negation across the three granularities ---

func negQuery(sem query.Semantics) *query.Query {
	// SEQ(A+, NOT(N), B): no N between the last a and the b.
	b := query.NewBuilder(pattern.Seq(
		pattern.Plus(pattern.Type("A")), pattern.Not(pattern.Type("N")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(sem).
		Within(100, 100)
	return b.MustBuild()
}

func negStream() []*event.Event {
	return []*event.Event{
		event.New("A", 1).WithNum("t", 1),
		event.New("A", 2).WithNum("t", 2),
		event.New("N", 3),
		event.New("A", 4).WithNum("t", 4),
		event.New("B", 5).WithNum("t", 5),
	}
}

func TestNegationTypeGrained(t *testing.T) {
	// ANY: A-subsets ending at a4 (after the N) can reach b5:
	// {a4},{a1,a4},{a2,a4},{a1,a2,a4} -> 4 trends.
	if got := runCount(t, negQuery(query.Any), negStream()); got != 4 {
		t.Errorf("ANY with negation = %d, want 4", got)
	}
}

func TestNegationMixedGrained(t *testing.T) {
	q := query.NewBuilder(pattern.Seq(
		pattern.Plus(pattern.Type("A")), pattern.Not(pattern.Type("N")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereAdjacent(predicate.Adjacent{Left: "A", LeftAttr: "t", Op: predicate.Lt, Right: "B", RightAttr: "t"}).
		Within(100, 100).
		MustBuild()
	plan := MustPlan(q)
	if plan.Granularity != MixedGrained || !plan.EventGrained["A"] {
		t.Fatalf("plan = %v", plan)
	}
	if got := runCount(t, q, negStream()); got != 4 {
		t.Errorf("mixed with negation = %d, want 4", got)
	}
}

func TestNegationPatternGrained(t *testing.T) {
	// NEXT chain: a1 -> a2 -> a4 (counts 1,2,3), b5 adjacent to a4 and
	// the N fired at 3 is not within (4,5): final = 3.
	if got := runCount(t, negQuery(query.Next), negStream()); got != 3 {
		t.Errorf("NEXT with negation = %d, want 3", got)
	}
	// Move the N between a4 and the b: chain blocked, no trend.
	events := []*event.Event{
		event.New("A", 1), event.New("A", 2), event.New("A", 4),
		event.New("N", 5), event.New("B", 6),
	}
	if got := runCount(t, negQuery(query.Next), events); got != 0 {
		t.Errorf("NEXT with blocking negation = %d, want 0", got)
	}
}

func TestAccountantReturnsToZero(t *testing.T) {
	for _, sem := range []query.Semantics{query.Any, query.Next, query.Cont} {
		var acct metrics.Accountant
		q := countQuery(sem)
		eng := NewEngine(MustPlan(q), WithAccountant(&acct))
		if err := eng.ProcessAll(figure2Stream()); err != nil {
			t.Fatal(err)
		}
		if acct.Peak() == 0 {
			t.Errorf("%v: peak memory not tracked", sem)
		}
		eng.Close()
		if acct.Current() != 0 {
			t.Errorf("%v: %d bytes leaked after Close", sem, acct.Current())
		}
	}
}

func TestMixedGrainedAccountantReturnsToZero(t *testing.T) {
	var acct metrics.Accountant
	q := query.NewBuilder(figure2Pattern()).
		Return(agg.Spec{Func: agg.CountStar}).
		WhereAdjacent(predicate.Adjacent{Left: "B", LeftAttr: "t", Op: predicate.Lt, Right: "A", RightAttr: "t"}).
		Within(100, 100).MustBuild()
	eng := NewEngine(MustPlan(q), WithAccountant(&acct))
	if err := eng.ProcessAll(figure2Stream()); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if acct.Current() != 0 {
		t.Errorf("%d bytes leaked after Close", acct.Current())
	}
}

func TestPatternGrainedStartBreaksChainUnderNext(t *testing.T) {
	// SEQ(A+, B) under NEXT: a1 b2 a3 b4 -> (a1,b2) and (a3,b4).
	q := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Next).
		Within(100, 100).MustBuild()
	events := []*event.Event{
		event.New("A", 1), event.New("B", 2), event.New("A", 3), event.New("B", 4),
	}
	if got := runCount(t, q, events); got != 2 {
		t.Errorf("COUNT(*) = %d, want 2", got)
	}
}

func TestContiguityResetOnLocalPredicateFailure(t *testing.T) {
	// CONT: an event failing its local predicate is irrelevant but
	// cannot be skipped -> it invalidates partial trends.
	q := query.MustParse(`
		RETURN COUNT(*) PATTERN M+ SEMANTICS contiguous
		WHERE M.rate > 50 WITHIN 100 SLIDE 100`)
	events := []*event.Event{
		event.New("M", 1).WithNum("rate", 60),
		event.New("M", 2).WithNum("rate", 40), // fails local, resets
		event.New("M", 3).WithNum("rate", 70),
	}
	// Trends: {60}, {70} (the failing event blocks {60,70} and {40}).
	if got := runCount(t, q, events); got != 2 {
		t.Errorf("COUNT(*) = %d, want 2", got)
	}
}

func TestPlanString(t *testing.T) {
	p := MustPlan(query.MustParse(`
		RETURN sector, A.company, B.company, AVG(B.price)
		PATTERN SEQ(Stock A+, Stock B+)
		WHERE [A.company] AND [B.company] AND A.price > NEXT(A).price
		GROUP-BY sector, A.company, B.company
		WITHIN 600 SLIDE 10`))
	s := p.String()
	for _, frag := range []string{"granularity=mixed", "partition-by=[sector]", "binding-slots"} {
		if !contains(s, frag) {
			t.Errorf("Plan.String() = %q missing %q", s, frag)
		}
	}
	if p.Granularity != MixedGrained || !p.EventGrained["A"] {
		t.Errorf("q3 plan wrong: %v", p)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestMinLengthExcludesShortTrends verifies the §8 minimal-trend-
// length unrolling end to end: A+ MIN-LENGTH 3 under ANY counts only
// trends of length >= 3: 2^n - 1 - n - C(n,2).
func TestMinLengthExcludesShortTrends(t *testing.T) {
	q := query.MustParse(`RETURN COUNT(*) PATTERN A+ MIN-LENGTH 3 WITHIN 100 SLIDE 100`)
	var events []*event.Event
	for i := 1; i <= 6; i++ {
		events = append(events, event.New("A", int64(i)))
	}
	// 2^6 - 1 - 6 - 15 = 42.
	if got := runCount(t, q, events); got != 42 {
		t.Errorf("COUNT(*) = %d, want 42", got)
	}
	// Unrolling maps one event type to several pattern types, which
	// pattern granularity cannot disambiguate (Theorem 6.1): the
	// planner must reject MIN-LENGTH under NEXT/CONT.
	qn := query.MustParse(`RETURN COUNT(*) PATTERN A+ MIN-LENGTH 3 SEMANTICS next WITHIN 100 SLIDE 100`)
	if _, err := NewPlan(qn); err == nil {
		t.Error("MIN-LENGTH under NEXT accepted by the planner")
	}
}
