// Shared sub-aggregation across plans (the Hamlet direction: "To
// Share, or not to Share Online Event Trend Aggregation Over Bursty
// Event Streams"). Two plans are sharing-equivalent when everything
// that determines their per-window aggregation state — pattern,
// matching semantics, predicates, grouping and window clause — is
// identical; only the RETURN clause may differ. Such plans can be
// served by ONE engine running the union of their aggregation specs:
// the Table 8 propagation maintains every spec's auxiliary state
// independently inside one trend count, so a member's RETURN values
// are an exact column projection of the union's values, applied as a
// cheap per-query correction at emission. Whether a group actually
// runs shared is a runtime decision (internal/runtime); this file is
// the static side: the equivalence key, the spec union and the
// per-member projections.
package core

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/query"
)

// sharedFingerprint renders the sharing-equivalence key of a query:
// its normalised text WITHOUT the RETURN clause. Everything rendered
// here feeds aggregation state (pattern/semantics/predicates pick the
// trends, GROUP-BY shapes Result.Group, WITHIN/SLIDE shapes window
// ids); everything omitted (Returns, ReturnKeys) only selects which
// columns of the union a member reports.
func sharedFingerprint(q *query.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PATTERN %s", q.Pattern)
	fmt.Fprintf(&b, "\nSEMANTICS %s", q.Semantics)
	if q.Where != nil && q.Where.String() != "true" {
		fmt.Fprintf(&b, "\nWHERE %s", q.Where)
	}
	if len(q.GroupBy) > 0 {
		keys := make([]string, len(q.GroupBy))
		for i, k := range q.GroupBy {
			keys[i] = k.String()
		}
		fmt.Fprintf(&b, "\nGROUP-BY %s", strings.Join(keys, ", "))
	}
	fmt.Fprintf(&b, "\nWITHIN %d SLIDE %d", q.Window.Within, q.Window.Slide)
	return b.String()
}

// Fingerprint returns the plan's sharing-equivalence key, computed at
// compile time. Plans with equal fingerprints detect identical trends
// over identical sub-streams and windows and differ at most in which
// aggregates they report — the precondition for registering them
// against one shared aggregation node.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// SpecUnion accumulates the distinct aggregation specs of a sharing
// group's members, in first-seen order, and hands each member the
// projection mapping its RETURN columns onto the union's columns.
type SpecUnion struct {
	specs agg.Specs
	index map[agg.Spec]int
}

// NewSpecUnion returns an empty union.
func NewSpecUnion() *SpecUnion {
	return &SpecUnion{index: map[agg.Spec]int{}}
}

// Add merges a member's specs into the union and returns the member's
// projection: proj[i] is the union column holding the member's i-th
// RETURN value. grew reports whether the union gained a column (the
// hosting engine must then be rebuilt to maintain the new spec).
func (u *SpecUnion) Add(specs agg.Specs) (proj []int, grew bool) {
	proj = make([]int, len(specs))
	for i, s := range specs {
		j, ok := u.index[s]
		if !ok {
			j = len(u.specs)
			u.specs = append(u.specs, s)
			u.index[s] = j
			grew = true
		}
		proj[i] = j
	}
	return proj, grew
}

// Covers reports whether every given spec is already a union column.
func (u *SpecUnion) Covers(specs agg.Specs) bool {
	for _, s := range specs {
		if _, ok := u.index[s]; !ok {
			return false
		}
	}
	return true
}

// Project returns the projection for specs without growing the union;
// ok is false when some spec is not a union column.
func (u *SpecUnion) Project(specs agg.Specs) (proj []int, ok bool) {
	proj = make([]int, len(specs))
	for i, s := range specs {
		j, found := u.index[s]
		if !found {
			return nil, false
		}
		proj[i] = j
	}
	return proj, true
}

// Specs returns the union columns in first-seen order.
func (u *SpecUnion) Specs() agg.Specs {
	return append(agg.Specs(nil), u.specs...)
}

// Len returns the number of union columns.
func (u *SpecUnion) Len() int { return len(u.specs) }

// UnionQuery builds the query a sharing group's host engine runs: the
// representative member's query with the RETURN clause replaced by the
// union columns. ReturnKeys are dropped — they only echo group values
// at the presentation layer and each member re-applies its own.
func UnionQuery(rep *query.Query, specs agg.Specs) *query.Query {
	q := *rep
	q.Returns = append(agg.Specs(nil), specs...)
	q.ReturnKeys = nil
	return &q
}

// ProjectResult applies a member's projection to a union result:
// the member's RETURN values are the proj-selected columns, in its own
// clause order. Wid/bounds/group carry over (the group tuple is shared
// read-only across members — consumers never mutate results).
func ProjectResult(r Result, proj []int) Result {
	vals := make([]agg.Value, len(proj))
	for i, j := range proj {
		vals[i] = r.Values[j]
	}
	r.Values = vals
	return r
}
