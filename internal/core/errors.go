package core

import (
	"errors"

	"repro/internal/snap"
)

// Sentinel errors of the data plane. Every layer — engine, runtime,
// stream router, public Session — wraps these with fmt.Errorf("...: %w")
// so callers match conditions with errors.Is instead of parsing
// messages; the public package re-exports them (cogra.ErrClosed, ...).
var (
	// ErrClosed marks any operation against a closed engine, runtime,
	// executor or session: the stream has ended and the state has been
	// flushed.
	ErrClosed = errors.New("closed")

	// ErrLateEvent marks an event (or watermark) older than what the
	// stream has already emitted: out of order beyond what the
	// configured slack — zero, by default — can repair.
	ErrLateEvent = errors.New("late event")

	// ErrNotHosted marks an operation on a query the receiver does not
	// host: already unsubscribed, an unknown id, or a plan compiled
	// against a different catalog.
	ErrNotHosted = errors.New("query not hosted")

	// ErrFrozenRouting marks a strict-routing subscription rejected
	// because the partition routing is frozen (events have flowed) and
	// the plan's partition keys do not cover the routing attributes, so
	// hosting it would require the full-stream fallback worker.
	ErrFrozenRouting = errors.New("routing frozen")

	// ErrBackpressure marks an event refused because the slack reorder
	// buffer is at its configured maximum depth (WithMaxReorderDepth
	// under the Reject policy) and admitting the event would not release
	// any buffered one: the source must stop or advance its watermark.
	ErrBackpressure = errors.New("reorder buffer full")

	// ErrBadSnapshot marks a checkpoint stream Restore could not decode:
	// truncated, corrupted (checksum mismatch), written by a different
	// format version, or structurally impossible. The snapshot codec
	// guarantees decoding never panics and never allocates more than the
	// input can justify.
	ErrBadSnapshot = snap.ErrBadSnapshot

	// ErrSinkPanic marks a subscription failed because its user-supplied
	// Sink / OnResult callback panicked. The panic is recovered — the
	// stream and the other subscriptions keep running — and the failed
	// subscription reports it via Err; further results for that
	// subscription are buffered instead of delivered.
	ErrSinkPanic = errors.New("sink panicked")
)
