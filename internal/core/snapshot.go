package core

// Checkpoint codec for the core execution state: catalog staging,
// binding intern tables, the three granularity-specific aggregators,
// window states and the engine envelope. Everything here serializes
// live private state VERBATIM — including the staged (uncommitted)
// contributions of the current time stamp, which must not be flushed:
// a snapshot may land mid-timestamp, and Definition 7 (a predecessor is
// strictly earlier) requires the staging discipline to survive restore.
//
// Decoding is defensive throughout: every collection length passes
// snap.Reader.Count, every enum and id read from the stream is range-
// checked against the restored plan's shape, and binding keys are
// validated against the restored intern tables, so a corrupt snapshot
// fails with ErrBadSnapshot instead of panicking or indexing out of
// bounds. Shape that is implied by the plan (table counts, shadow
// layout, adjacent-operand arity) is NOT serialized — restore derives
// it from the recompiled plan, leaving fewer places for drift to hide.

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/snap"
)

// --- catalog ---

// Snapshot writes the catalog's staging state: names, flags, tombstones
// and free lists, plus the epoch and compaction counters. Reference
// counts are NOT serialized — restore rebuilds them by re-retaining the
// plans of the active subscriptions, exactly as live hosting does.
func (c *Catalog) Snapshot(w *snap.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.U32(uint32(len(c.attrNames)))
	for id := range c.attrNames {
		w.Str(c.attrNames[id])
		w.Bool(c.symNeeded[id])
		w.Bool(c.attrDead[id])
	}
	w.U32(uint32(len(c.freeAttrs)))
	for _, id := range c.freeAttrs {
		w.U32(uint32(id))
	}
	w.U32(uint32(len(c.typeNames)))
	for id := range c.typeNames {
		w.Str(c.typeNames[id])
		w.Bool(c.typeDead[id])
	}
	w.U32(uint32(len(c.freeTypes)))
	for _, id := range c.freeTypes {
		w.U32(uint32(id))
	}
	w.U64(c.epoch)
	w.U64(c.compactions.Load())
}

// RestoreCatalog rebuilds a catalog from Snapshot: the id spaces are
// reproduced verbatim (live names at their original ids, tombstones in
// place, free lists in recycling order), so recompiling the surviving
// queries against it re-interns every name to its original id.
func RestoreCatalog(r *snap.Reader) (*Catalog, error) {
	c := NewCatalog()
	na := r.Count(6)
	for id := 0; id < na; id++ {
		name := r.Str()
		sym := r.Bool()
		dead := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if dead != (name == "") {
			return nil, fmt.Errorf("%w: catalog attr %d: tombstone flag disagrees with name %q", snap.ErrBadSnapshot, id, name)
		}
		if !dead {
			if _, dup := c.attrIDs[name]; dup {
				return nil, fmt.Errorf("%w: catalog attr %q interned twice", snap.ErrBadSnapshot, name)
			}
			c.attrIDs[name] = int32(id)
		}
		c.attrNames = append(c.attrNames, name)
		c.symNeeded = append(c.symNeeded, sym)
		c.attrDead = append(c.attrDead, dead)
		c.attrRefs = append(c.attrRefs, 0)
	}
	nf := r.Count(4)
	for i := 0; i < nf; i++ {
		id := int32(r.U32())
		if r.Err() == nil && (int(id) >= na || !c.attrDead[id]) {
			return nil, fmt.Errorf("%w: catalog attr free list entry %d is not a tombstone", snap.ErrBadSnapshot, id)
		}
		c.freeAttrs = append(c.freeAttrs, id)
	}
	nt := r.Count(5)
	for id := 0; id < nt; id++ {
		name := r.Str()
		dead := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if dead != (name == "") {
			return nil, fmt.Errorf("%w: catalog type %d: tombstone flag disagrees with name %q", snap.ErrBadSnapshot, id, name)
		}
		if !dead {
			if _, dup := c.typeIDs[name]; dup {
				return nil, fmt.Errorf("%w: catalog type %q interned twice", snap.ErrBadSnapshot, name)
			}
			c.typeIDs[name] = int32(id)
		}
		c.typeNames = append(c.typeNames, name)
		c.typeDead = append(c.typeDead, dead)
		c.typeRefs = append(c.typeRefs, 0)
	}
	nf = r.Count(4)
	for i := 0; i < nf; i++ {
		id := int32(r.U32())
		if r.Err() == nil && (int(id) >= nt || !c.typeDead[id]) {
			return nil, fmt.Errorf("%w: catalog type free list entry %d is not a tombstone", snap.ErrBadSnapshot, id)
		}
		c.freeTypes = append(c.freeTypes, id)
	}
	epoch := r.U64()
	compactions := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.publishEpoch(epoch)
	c.mu.Unlock()
	c.compactions.Store(compactions)
	return c, nil
}

// publishEpoch publishes the staging area at exactly the given epoch
// (publish always pre-increments). Caller holds mu.
func (c *Catalog) publishEpoch(epoch uint64) {
	if epoch == 0 {
		return // nothing was ever published; the fresh empty view stands
	}
	c.epoch = epoch - 1
	c.publish()
}

// ResetEpoch re-pins the epoch and compaction counters after restore:
// recompiling the surviving queries publishes intermediate epochs, and
// a restored session must report the same diagnostics as the
// undisturbed run.
func (c *Catalog) ResetEpoch(epoch, compactions uint64) {
	c.mu.Lock()
	if c.epoch != epoch {
		c.publishEpoch(epoch)
	}
	c.mu.Unlock()
	c.compactions.Store(compactions)
}

// --- results ---

// SnapshotResult writes one buffered result. The aggregate specs are
// serialized inline (not derived from a plan): pending results can
// outlive their subscription's plan — an unsubscribed query keeps its
// undelivered results — so the record must be self-contained.
func SnapshotResult(w *snap.Writer, res Result) {
	w.I64(res.Wid)
	w.I64(res.Start)
	w.I64(res.End)
	w.U32(uint32(len(res.Group)))
	for _, g := range res.Group {
		w.Str(g)
	}
	w.U32(uint32(len(res.Values)))
	for _, v := range res.Values {
		w.U8(uint8(v.Spec.Func))
		w.Str(v.Spec.Alias)
		w.Str(v.Spec.Attr)
		w.U64(v.Count)
		w.F64(v.F)
		w.Bool(v.Valid)
		w.F64(v.Sum)
	}
}

// RestoreResult reads one result written by SnapshotResult.
func RestoreResult(r *snap.Reader) (Result, error) {
	res := Result{Wid: r.I64(), Start: r.I64(), End: r.I64()}
	if n := r.Count(4); n > 0 {
		res.Group = make([]string, 0, n)
		for i := 0; i < n; i++ {
			res.Group = append(res.Group, r.Str())
		}
	}
	n := r.Count(26)
	for i := 0; i < n; i++ {
		fn := agg.Func(r.U8())
		if r.Err() == nil && fn > agg.Avg {
			return Result{}, fmt.Errorf("%w: result aggregate func %d", snap.ErrBadSnapshot, fn)
		}
		res.Values = append(res.Values, agg.Value{
			Spec:  agg.Spec{Func: fn, Alias: r.Str(), Attr: r.Str()},
			Count: r.U64(),
			F:     r.F64(),
			Valid: r.Bool(),
			Sum:   r.F64(),
		})
	}
	return res, r.Err()
}

// --- bindings ---

// snapshot writes the intern tables: values (tombstoned entries as ""),
// optional epoch stamps, free lists, and for wide plans the interned
// vectors. The maps and the per-epoch candidate buckets are pure
// bookkeeping and are rebuilt from this on restore.
func (b *bindings) snapshot(w *snap.Writer) {
	w.Int(b.nslots)
	w.I64(b.bytes)
	w.I64(b.epoch)
	w.Bool(b.epochInit)
	if b.nslots == 0 {
		return
	}
	w.U32(uint32(len(b.vals)))
	for _, v := range b.vals {
		w.Str(v)
	}
	w.Bool(b.valEpoch != nil)
	for _, e := range b.valEpoch {
		w.I64(e)
	}
	w.U32(uint32(len(b.freeVals)))
	for _, id := range b.freeVals {
		w.U32(id)
	}
	if b.nslots <= 2 {
		return
	}
	w.U32(uint32(len(b.vecs)))
	for _, vec := range b.vecs {
		w.Bool(vec != nil)
		for _, v := range vec {
			w.U32(v)
		}
	}
	w.Bool(b.vecEpoch != nil)
	for _, e := range b.vecEpoch {
		w.I64(e)
	}
	w.U32(uint32(len(b.freeVecs)))
	for _, id := range b.freeVecs {
		w.U64(uint64(id))
	}
}

// restore loads the intern tables into a freshly built bindings of the
// same plan shape. The id→value slices are taken verbatim (so binding
// keys stored in the aggregator tables keep decoding to the same
// values), the value→id maps are rebuilt from the live entries, and
// with eviction enabled the per-epoch candidate buckets are rebuilt
// from the stamps. A snapshot taken without eviction restores into an
// evicting engine with zeroed stamps (entries age out normally from
// here); stamps in the snapshot are dropped when the restored engine
// does not evict.
func (b *bindings) restore(r *snap.Reader) error {
	nslots := r.Int()
	bytes := r.I64()
	epoch := r.I64()
	epochInit := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if nslots != b.nslots {
		return fmt.Errorf("%w: binding slot count %d disagrees with the recompiled plan's %d", snap.ErrBadSnapshot, nslots, b.nslots)
	}
	b.bytes = bytes
	b.epoch, b.epochInit = epoch, epochInit
	if b.nslots == 0 {
		return nil
	}
	nv := r.Count(4)
	if nv < 1 {
		return fmt.Errorf("%w: binding value table is empty (id 0 is reserved)", snap.ErrBadSnapshot)
	}
	vals := make([]string, 0, nv)
	for i := 0; i < nv; i++ {
		vals = append(vals, r.Str())
	}
	var valEpoch []int64
	if r.Bool() {
		if r.Rem() < 8*nv {
			return fmt.Errorf("%w: binding value stamps truncated", snap.ErrBadSnapshot)
		}
		valEpoch = make([]int64, 0, nv)
		for i := 0; i < nv; i++ {
			valEpoch = append(valEpoch, r.I64())
		}
	}
	nf := r.Count(4)
	freeVals := make([]uint32, 0, nf)
	for i := 0; i < nf; i++ {
		freeVals = append(freeVals, r.U32())
	}
	if err := r.Err(); err != nil {
		return err
	}
	if vals[0] != "" {
		return fmt.Errorf("%w: binding value id 0 is not the unbound value", snap.ErrBadSnapshot)
	}
	valIDs := map[string]uint32{"": 0}
	for id := 1; id < nv; id++ {
		v := vals[id]
		if v == "" {
			continue // tombstone (on the free list)
		}
		if _, dup := valIDs[v]; dup {
			return fmt.Errorf("%w: binding value %q interned twice", snap.ErrBadSnapshot, v)
		}
		valIDs[v] = uint32(id)
	}
	for _, id := range freeVals {
		if int(id) >= nv || id == 0 || vals[id] != "" {
			return fmt.Errorf("%w: binding value free list entry %d is not a tombstone", snap.ErrBadSnapshot, id)
		}
	}
	b.vals, b.valIDs, b.freeVals = vals, valIDs, freeVals
	if b.evict {
		if valEpoch == nil {
			valEpoch = make([]int64, nv)
		}
		b.valEpoch = valEpoch
		b.valBuckets = map[int64][]uint32{}
		for id := 1; id < nv; id++ {
			if vals[id] != "" {
				b.valBuckets[valEpoch[id]] = append(b.valBuckets[valEpoch[id]], uint32(id))
			}
		}
	} else {
		b.valEpoch, b.valBuckets = nil, nil
	}
	if b.nslots <= 2 {
		return nil
	}
	nvec := r.Count(1)
	if nvec < 1 {
		return fmt.Errorf("%w: binding vector table is empty (key 0 is reserved)", snap.ErrBadSnapshot)
	}
	vecs := make([][]uint32, 0, nvec)
	for i := 0; i < nvec; i++ {
		if !r.Bool() {
			vecs = append(vecs, nil)
			continue
		}
		if r.Rem() < 4*b.nslots {
			return fmt.Errorf("%w: binding vector %d truncated", snap.ErrBadSnapshot, i)
		}
		vec := make([]uint32, b.nslots)
		for j := range vec {
			vec[j] = r.U32()
			if int(vec[j]) >= nv {
				return fmt.Errorf("%w: binding vector %d references value id %d of %d", snap.ErrBadSnapshot, i, vec[j], nv)
			}
		}
		vecs = append(vecs, vec)
	}
	var vecEpoch []int64
	if r.Bool() {
		if r.Rem() < 8*nvec {
			return fmt.Errorf("%w: binding vector stamps truncated", snap.ErrBadSnapshot)
		}
		vecEpoch = make([]int64, 0, nvec)
		for i := 0; i < nvec; i++ {
			vecEpoch = append(vecEpoch, r.I64())
		}
	}
	nf = r.Count(8)
	freeVecs := make([]bkey, 0, nf)
	for i := 0; i < nf; i++ {
		freeVecs = append(freeVecs, bkey(r.U64()))
	}
	if err := r.Err(); err != nil {
		return err
	}
	if vecs[0] == nil {
		return fmt.Errorf("%w: binding vector 0 (all-unbound) is missing", snap.ErrBadSnapshot)
	}
	vecIDs := map[string]bkey{}
	key := make([]byte, 0, 4*b.nslots)
	for id := 1; id < nvec; id++ {
		vec := vecs[id]
		if vec == nil {
			continue
		}
		key = key[:0]
		for _, v := range vec {
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if _, dup := vecIDs[string(key)]; dup {
			return fmt.Errorf("%w: binding vector %d interned twice", snap.ErrBadSnapshot, id)
		}
		vecIDs[string(key)] = bkey(id)
	}
	for _, id := range freeVecs {
		if int(id) >= nvec || id == 0 || vecs[id] != nil {
			return fmt.Errorf("%w: binding vector free list entry %d is not a tombstone", snap.ErrBadSnapshot, id)
		}
	}
	b.vecs, b.vecIDs, b.freeVecs = vecs, vecIDs, freeVecs
	if b.evict {
		if vecEpoch == nil {
			vecEpoch = make([]int64, nvec)
		}
		b.vecEpoch = vecEpoch
		b.vecBuckets = map[int64][]bkey{}
		for id := 1; id < nvec; id++ {
			if vecs[id] != nil {
				b.vecBuckets[vecEpoch[id]] = append(b.vecBuckets[vecEpoch[id]], bkey(id))
			}
		}
	} else {
		b.vecEpoch, b.vecBuckets = nil, nil
	}
	return nil
}

// validKey reports whether a binding key read from a snapshot can be
// decoded against the restored intern tables without indexing out of
// bounds.
func (b *bindings) validKey(key bkey) bool {
	if b.nslots == 0 {
		return key == 0
	}
	if b.nslots <= 2 {
		for i := 0; i < b.nslots; i++ {
			if int(uint32(key>>(uint(i)*32))) >= len(b.vals) {
				return false
			}
		}
		if b.nslots == 1 && key>>32 != 0 {
			return false
		}
		return true
	}
	return int(key) < len(b.vecs)
}

// --- shared aggregator pieces ---

// readNode reads an aggregate node and validates its auxiliary arity
// against the plan's RETURN clause (live nodes always carry one Aux
// per spec).
func readNode(r *snap.Reader, p *Plan) (agg.Node, error) {
	n := agg.RestoreNode(r)
	if err := r.Err(); err != nil {
		return agg.Node{}, err
	}
	if len(n.Aux) != len(p.Specs) {
		return agg.Node{}, fmt.Errorf("%w: aggregate node carries %d auxiliaries for %d specs", snap.ErrBadSnapshot, len(n.Aux), len(p.Specs))
	}
	return n, nil
}

// writeTable writes one binding-keyed aggregate table in ascending key
// order (map iteration order must not leak into the snapshot bytes).
func writeTable(w *snap.Writer, tbl map[bkey]*agg.Node) {
	keys := make([]bkey, 0, len(tbl))
	for k := range tbl {
		keys = append(keys, k)
	}
	sortBkeys(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U64(uint64(k))
		agg.SnapshotNode(w, tbl[k])
	}
}

// sortBkeys sorts binding keys ascending (insertion sort is fine: this
// is the cold snapshot path, and most tables are small).
func sortBkeys(keys []bkey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func readTable(r *snap.Reader, p *Plan, bnd *bindings) (map[bkey]*agg.Node, error) {
	n := r.Count(8 + agg.NodeMinBytes)
	tbl := make(map[bkey]*agg.Node, n)
	for i := 0; i < n; i++ {
		k := bkey(r.U64())
		node, err := readNode(r, p)
		if err != nil {
			return nil, err
		}
		if !bnd.validKey(k) {
			return nil, fmt.Errorf("%w: aggregate table references unknown binding key %d", snap.ErrBadSnapshot, k)
		}
		if _, dup := tbl[k]; dup {
			return nil, fmt.Errorf("%w: aggregate table repeats binding key %d", snap.ErrBadSnapshot, k)
		}
		tbl[k] = &node
	}
	return tbl, nil
}

func writeStaged(w *snap.Writer, staged []stagedUpdate, resets []int) {
	w.U32(uint32(len(staged)))
	for i := range staged {
		w.U32(uint32(staged[i].alias))
		w.U64(uint64(staged[i].key))
		agg.SnapshotNode(w, &staged[i].node)
	}
	w.U32(uint32(len(resets)))
	for _, ci := range resets {
		w.Int(ci)
	}
}

func readStaged(r *snap.Reader, p *Plan, bnd *bindings) ([]stagedUpdate, []int, error) {
	n := r.Count(12 + agg.NodeMinBytes)
	var staged []stagedUpdate
	for i := 0; i < n; i++ {
		alias := int32(r.U32())
		key := bkey(r.U64())
		node, err := readNode(r, p)
		if err != nil {
			return nil, nil, err
		}
		if int(alias) < 0 || int(alias) >= len(p.aliasNames) {
			return nil, nil, fmt.Errorf("%w: staged update references alias id %d of %d", snap.ErrBadSnapshot, alias, len(p.aliasNames))
		}
		if !bnd.validKey(key) {
			return nil, nil, fmt.Errorf("%w: staged update references unknown binding key %d", snap.ErrBadSnapshot, key)
		}
		staged = append(staged, stagedUpdate{alias: alias, key: key, node: node})
	}
	n = r.Count(8)
	var resets []int
	for i := 0; i < n; i++ {
		ci := r.Int()
		if r.Err() == nil && (ci < 0 || ci >= len(p.FSA.Negations)) {
			return nil, nil, fmt.Errorf("%w: staged reset references negation %d of %d", snap.ErrBadSnapshot, ci, len(p.FSA.Negations))
		}
		resets = append(resets, ci)
	}
	return staged, resets, r.Err()
}

func writeNegFires(w *snap.Writer, f *negFires, n int) {
	for ci := 0; ci < n; ci++ {
		var ts []int64
		if f != nil {
			ts = f.times[ci]
		}
		w.U32(uint32(len(ts)))
		for _, t := range ts {
			w.I64(t)
		}
	}
}

func readNegFires(r *snap.Reader, n int) *negFires {
	f := newNegFires(n)
	for ci := 0; ci < n; ci++ {
		k := r.Count(8)
		for i := 0; i < k; i++ {
			f.times[ci] = append(f.times[ci], r.I64())
		}
	}
	return f
}

func writeAttrVals(w *snap.Writer, vals []attrVal) {
	w.U32(uint32(len(vals)))
	for i := range vals {
		w.F64(vals[i].num)
		w.Str(vals[i].sym)
		w.U8(vals[i].has)
	}
}

// readAttrVals reads retained left operands; live entries always have
// exactly one value per distinct adjacent-predicate left attribute.
func readAttrVals(r *snap.Reader, p *Plan) ([]attrVal, error) {
	n := r.Count(13)
	if r.Err() == nil && n != 0 && n != len(p.adjLeft) {
		return nil, fmt.Errorf("%w: stored event retains %d left operands for %d adjacent attributes", snap.ErrBadSnapshot, n, len(p.adjLeft))
	}
	var out []attrVal
	for i := 0; i < n; i++ {
		out = append(out, attrVal{num: r.F64(), sym: r.Str(), has: r.U8()})
	}
	return out, r.Err()
}

// --- sub-aggregators ---

// snapshotSubAgg writes one sub-aggregator's state. The concrete type
// is implied by the plan's granularity, so no tag is written.
func snapshotSubAgg(w *snap.Writer, sa subAggregator) {
	switch t := sa.(type) {
	case *typeGrained:
		t.snapshot(w)
	case *mixedGrained:
		t.snapshot(w)
	case *patternGrained:
		t.snapshot(w)
	}
}

// restoreSubAgg builds a fresh sub-aggregator for the plan and loads
// its serialized state. Accounting side effects of construction are
// irrelevant: the owning accountant is restored verbatim afterwards.
func restoreSubAgg(r *snap.Reader, p *Plan, acct accountant, bnd *bindings, ar *storeArenas, memo *runMemo) (subAggregator, error) {
	sa := newSubAggregator(p, acct, bnd, ar, memo)
	var err error
	switch t := sa.(type) {
	case *typeGrained:
		err = t.restore(r)
	case *mixedGrained:
		err = t.restore(r)
	case *patternGrained:
		err = t.restore(r)
	}
	if err != nil {
		return nil, err
	}
	return sa, nil
}

func (t *typeGrained) snapshot(w *snap.Writer) {
	w.I64(t.curTime)
	w.Bool(t.hasCur)
	for _, tbl := range t.tables {
		writeTable(w, tbl)
	}
	for _, row := range t.shadows {
		for _, tbl := range row {
			if tbl != nil {
				writeTable(w, tbl)
			}
		}
	}
	writeStaged(w, t.staged, t.stagedResets)
}

func (t *typeGrained) restore(r *snap.Reader) error {
	t.curTime = r.I64()
	t.hasCur = r.Bool()
	var err error
	for i := range t.tables {
		if t.tables[i], err = readTable(r, t.plan, t.bnd); err != nil {
			return err
		}
	}
	for _, row := range t.shadows {
		for ai, tbl := range row {
			if tbl == nil {
				continue
			}
			if row[ai], err = readTable(r, t.plan, t.bnd); err != nil {
				return err
			}
		}
	}
	t.staged, t.stagedResets, err = readStaged(r, t.plan, t.bnd)
	return err
}

func (m *mixedGrained) snapshot(w *snap.Writer) {
	w.I64(m.curTime)
	w.Bool(m.hasCur)
	for _, tbl := range m.typeTables {
		if tbl != nil {
			writeTable(w, tbl)
		}
	}
	for _, row := range m.shadows {
		for _, tbl := range row {
			if tbl != nil {
				writeTable(w, tbl)
			}
		}
	}
	for _, entries := range m.stored {
		w.U32(uint32(len(entries)))
		for i := range entries {
			se := &entries[i]
			w.I64(se.time)
			writeAttrVals(w, se.left)
			w.U64(uint64(se.key))
			agg.SnapshotNode(w, &se.node)
			w.I64(se.foot)
		}
	}
	writeNegFires(w, m.fires, len(m.plan.FSA.Negations))
	writeStaged(w, m.staged, m.stagedResets)
}

func (m *mixedGrained) restore(r *snap.Reader) error {
	m.curTime = r.I64()
	m.hasCur = r.Bool()
	var err error
	for i, tbl := range m.typeTables {
		if tbl == nil {
			continue
		}
		if m.typeTables[i], err = readTable(r, m.plan, m.bnd); err != nil {
			return err
		}
	}
	for _, row := range m.shadows {
		for ai, tbl := range row {
			if tbl == nil {
				continue
			}
			if row[ai], err = readTable(r, m.plan, m.bnd); err != nil {
				return err
			}
		}
	}
	for id := range m.stored {
		n := r.Count(16 + agg.NodeMinBytes)
		for i := 0; i < n; i++ {
			se := storedEntry{time: r.I64()}
			if se.left, err = readAttrVals(r, m.plan); err != nil {
				return err
			}
			se.key = bkey(r.U64())
			if se.node, err = readNode(r, m.plan); err != nil {
				return err
			}
			se.foot = r.I64()
			if !m.bnd.validKey(se.key) {
				return fmt.Errorf("%w: stored event references unknown binding key %d", snap.ErrBadSnapshot, se.key)
			}
			m.stored[id] = append(m.stored[id], se)
		}
	}
	m.fires = readNegFires(r, len(m.plan.FSA.Negations))
	m.staged, m.stagedResets, err = readStaged(r, m.plan, m.bnd)
	return err
}

func (g *patternGrained) snapshot(w *snap.Writer) {
	w.Bool(g.hasEl)
	w.I64(g.elTime)
	w.U32(uint32(g.elAlias))
	w.I64(g.elFoot)
	writeAttrVals(w, g.elLeft)
	agg.SnapshotNode(w, &g.elNode)
	agg.SnapshotNode(w, &g.final)
	writeNegFires(w, g.fires, len(g.plan.FSA.Negations))
}

func (g *patternGrained) restore(r *snap.Reader) error {
	g.hasEl = r.Bool()
	g.elTime = r.I64()
	g.elAlias = int32(r.U32())
	g.elFoot = r.I64()
	var err error
	if g.elLeft, err = readAttrVals(r, g.plan); err != nil {
		return err
	}
	if g.hasEl && (int(g.elAlias) < 0 || int(g.elAlias) >= len(g.plan.aliasNames)) {
		return fmt.Errorf("%w: last matched event references alias id %d of %d", snap.ErrBadSnapshot, g.elAlias, len(g.plan.aliasNames))
	}
	if g.elNode, err = readNode(r, g.plan); err != nil {
		return err
	}
	if g.final, err = readNode(r, g.plan); err != nil {
		return err
	}
	g.fires = readNegFires(r, len(g.plan.FSA.Negations))
	return r.Err()
}

// --- engine ---

// Snapshot writes the engine's complete execution state: stream
// position, counters, the undelivered result buffer, the binding intern
// tables, and every open window's sub-aggregators. The engine must be
// quiescent (no Process in flight).
func (e *Engine) Snapshot(w *snap.Writer) {
	w.I64(e.lastTime)
	w.Bool(e.sawEvent)
	w.I64(e.seq)
	w.I64(e.eventsIn)
	w.I64(e.skipped)
	w.U32(uint32(len(e.results)))
	for _, res := range e.results {
		SnapshotResult(w, res)
	}
	e.bnd.snapshot(w)
	emitted, maxWid, ever := e.mgr.Cursor()
	w.I64(emitted)
	w.I64(maxWid)
	w.Bool(ever)
	ceil, hasCeil := e.mgr.Ceiling()
	w.Bool(hasCeil)
	w.I64(ceil)
	wids := e.mgr.ActiveWids()
	w.U32(uint32(len(wids)))
	for _, wid := range wids {
		w.I64(wid)
		ws, _ := e.mgr.State(wid)
		partKeys := make([]string, 0, len(ws.parts))
		for k := range ws.parts {
			partKeys = append(partKeys, k)
		}
		sortStrings(partKeys)
		w.U32(uint32(len(partKeys)))
		for _, pk := range partKeys {
			w.Str(pk)
			snapshotSubAgg(w, ws.parts[pk])
		}
	}
}

// sortStrings is sort.Strings without importing sort twice in hot
// files; snapshot is a cold path.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// RestoreState loads a snapshot written by Snapshot into a freshly
// built engine for the same (recompiled) plan. The caller restores the
// engine's accountant afterwards; accounting churn during state
// loading is overwritten there.
func (e *Engine) RestoreState(r *snap.Reader) error {
	e.lastTime = r.I64()
	e.sawEvent = r.Bool()
	e.seq = r.I64()
	e.eventsIn = r.I64()
	e.skipped = r.I64()
	n := r.Count(16)
	for i := 0; i < n; i++ {
		res, err := RestoreResult(r)
		if err != nil {
			return err
		}
		e.results = append(e.results, res)
	}
	if err := e.bnd.restore(r); err != nil {
		return err
	}
	emitted := r.I64()
	maxWid := r.I64()
	ever := r.Bool()
	hasCeil := r.Bool()
	ceil := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	e.mgr.RestoreCursor(emitted, maxWid, ever)
	e.mgr.RestoreCeiling(ceil, hasCeil)
	nw := r.Count(16)
	var lastWid int64
	for i := 0; i < nw; i++ {
		wid := r.I64()
		if r.Err() == nil && (wid < emitted || (i > 0 && wid <= lastWid) || (hasCeil && wid >= ceil)) {
			return fmt.Errorf("%w: active window %d violates the cursor order", snap.ErrBadSnapshot, wid)
		}
		lastWid = wid
		ws := &winState{wid: wid, parts: map[string]subAggregator{}}
		np := r.Count(8)
		for j := 0; j < np; j++ {
			pk := r.Str()
			sa, err := restoreSubAgg(r, e.plan, e.acct, e.bnd, &e.arenas, &e.memo)
			if err != nil {
				return err
			}
			if _, dup := ws.parts[pk]; dup {
				return fmt.Errorf("%w: window %d repeats partition key %q", snap.ErrBadSnapshot, wid, pk)
			}
			ws.parts[pk] = sa
		}
		if r.Err() == nil {
			e.mgr.RestoreState(wid, ws)
		}
	}
	e.statesValid = false
	return r.Err()
}
