package core

import (
	"sort"

	"repro/internal/agg"
	"repro/internal/event"
)

// mixedGrained implements Algorithm 2: skip-till-any-match with
// predicates on adjacent events θ. The event types of the pattern are
// split into Tt and Te (Theorem 5.1): types whose events future
// predicate evaluations never need keep one aggregate per type (and
// binding), while events of types restricted by θ are stored
// individually with an event-grained aggregate each. Time complexity
// is O(n(t+nₑ)) and space Θ(t+nₑ) per sub-stream (Theorem 5.2).
type mixedGrained struct {
	plan *Plan
	acct accountant
	bnd  *bindings

	// typeTables holds the Tt aggregates (Algorithm 2's hash table H).
	typeTables map[string]map[string]*agg.Node
	// shadows mirrors typeGrained's negation handling for Tt types.
	shadows map[int]map[string]map[string]*agg.Node
	// stored holds the Te events with their event-grained aggregates,
	// in arrival order.
	stored map[string][]storedEntry
	// fires records negation matches; stored predecessors are blocked
	// per pair by fire times strictly between the two events.
	fires *negFires

	staged       []stagedUpdate
	stagedResets []int
	curTime      int64
	hasCur       bool
}

// storedEntry is one retained event of an event-grained type with the
// aggregate of all partial trends ending at it.
type storedEntry struct {
	ev   *event.Event
	key  string
	node agg.Node
}

func newMixedGrained(p *Plan, acct accountant) *mixedGrained {
	m := &mixedGrained{
		plan:       p,
		acct:       acct,
		bnd:        newBindings(p.Slots),
		typeTables: map[string]map[string]*agg.Node{},
		shadows:    map[int]map[string]map[string]*agg.Node{},
		stored:     map[string][]storedEntry{},
		fires:      newNegFires(len(p.FSA.Negations)),
	}
	for _, a := range p.FSA.Aliases {
		if p.EventGrained[a] {
			m.stored[a] = nil
		} else {
			m.typeTables[a] = map[string]*agg.Node{}
		}
	}
	for ci, nc := range p.FSA.Negations {
		tbls := map[string]map[string]*agg.Node{}
		for _, a := range nc.Pred {
			if !p.EventGrained[a] {
				tbls[a] = map[string]*agg.Node{}
			}
		}
		m.shadows[ci] = tbls
	}
	return m
}

func (m *mixedGrained) entryBytes(key string) int64 {
	return m.plan.Specs.FootprintBytes() + int64(len(key)) + 16
}

func (m *mixedGrained) storedBytes(se storedEntry) int64 {
	return se.ev.FootprintBytes() + m.plan.Specs.FootprintBytes() + int64(len(se.key)) + 24
}

// Process implements Algorithm 2 lines 5–14 with Table 8 propagation.
func (m *mixedGrained) Process(e *event.Event) {
	if m.hasCur && e.Time != m.curTime {
		m.flush()
	}
	m.curTime, m.hasCur = e.Time, true

	specs := m.plan.Specs
	fsa := m.plan.FSA
	for _, alias := range fsa.AliasesForType(e.Type) {
		if !m.plan.Where.EvalLocal(alias, e) {
			continue
		}
		if m.bnd.none() {
			// Fast path without equivalence slots: a single
			// accumulator replaces the binding-keyed map; the stored-
			// event scan dominates mixed-grained cost, so this inner
			// loop stays allocation-free.
			m.processFast(alias, e)
			continue
		}
		assigns, ok := m.bnd.assignments(alias, e)
		if !ok {
			continue
		}
		contrib := map[string]*agg.Node{}
		add := func(key string, node agg.Node) {
			nk, compat := m.bnd.combine(key, assigns)
			if !compat {
				return
			}
			dst, ok := contrib[nk]
			if !ok {
				n := specs.Zero()
				dst = &n
				contrib[nk] = dst
			}
			specs.Merge(dst, node)
		}
		for _, p := range fsa.Pred[alias] {
			if entries, eventGrained := m.stored[p]; eventGrained {
				// Event-grained predecessor: compare e to each stored
				// event (Algorithm 2 lines 9–10).
				ci, guarded := m.plan.negGuard[[2]string{p, alias}]
				for i := range entries {
					se := &entries[i]
					if se.ev.Time >= e.Time {
						break // stored in arrival order
					}
					if guarded && m.fires.blockedBetween(ci, se.ev.Time, e.Time) {
						continue
					}
					if !m.plan.Where.EvalAdjacent(p, se.ev, alias, e) {
						continue
					}
					add(se.key, se.node)
				}
				continue
			}
			// Type-grained predecessor (Algorithm 2 lines 7–8).
			for key, node := range m.tableFor(p, alias) {
				add(key, *node)
			}
		}
		startKey := ""
		if fsa.IsStart(alias) {
			startKey = m.bnd.startKey(assigns)
			if _, ok := contrib[startKey]; !ok {
				n := specs.Zero()
				contrib[startKey] = &n
			}
		}
		for nk, pred := range contrib {
			started := uint64(0)
			if nk == startKey && fsa.IsStart(alias) {
				started = 1
			}
			out := specs.Extend(*pred, alias, e, started)
			if _, eventGrained := m.stored[alias]; eventGrained {
				se := storedEntry{ev: e, key: nk, node: out}
				m.stored[alias] = append(m.stored[alias], se)
				m.acct.Add(m.storedBytes(se))
			} else {
				m.staged = append(m.staged, stagedUpdate{alias: alias, key: nk, node: out})
			}
		}
	}
	for _, ref := range m.plan.negTypes[e.Type] {
		if m.plan.Where.EvalLocal(ref.alias, e) {
			if m.fires.fire(ref.ci, e.Time) {
				m.acct.Add(8)
			}
			m.stagedResets = append(m.stagedResets, ref.ci)
		}
	}
}

// processFast is Process's inner loop for plans without equivalence
// slots (every binding is the empty key).
func (m *mixedGrained) processFast(alias string, e *event.Event) {
	specs := m.plan.Specs
	fsa := m.plan.FSA
	contrib := specs.Zero()
	for _, p := range fsa.Pred[alias] {
		if entries, eventGrained := m.stored[p]; eventGrained {
			ci, guarded := m.plan.negGuard[[2]string{p, alias}]
			for i := range entries {
				se := &entries[i]
				if se.ev.Time >= e.Time {
					break // stored in arrival order
				}
				if guarded && m.fires.blockedBetween(ci, se.ev.Time, e.Time) {
					continue
				}
				if !m.plan.Where.EvalAdjacent(p, se.ev, alias, e) {
					continue
				}
				specs.Merge(&contrib, se.node)
			}
			continue
		}
		for _, node := range m.tableFor(p, alias) {
			specs.Merge(&contrib, *node)
		}
	}
	started := uint64(0)
	if fsa.IsStart(alias) {
		started = 1
	}
	if contrib.Count == 0 && started == 0 {
		hasAux := false
		for _, a := range contrib.Aux {
			if a != (agg.Aux{}) {
				hasAux = true
				break
			}
		}
		if !hasAux {
			return // nothing to extend and nothing started
		}
	}
	out := specs.Extend(contrib, alias, e, started)
	if _, eventGrained := m.stored[alias]; eventGrained {
		se := storedEntry{ev: e, key: "", node: out}
		m.stored[alias] = append(m.stored[alias], se)
		m.acct.Add(m.storedBytes(se))
	} else {
		m.staged = append(m.staged, stagedUpdate{alias: alias, key: "", node: out})
	}
}

func (m *mixedGrained) tableFor(p, successor string) map[string]*agg.Node {
	if len(m.shadows) != 0 {
		if ci, guarded := m.plan.negGuard[[2]string{p, successor}]; guarded {
			if tbl, tracked := m.shadows[ci][p]; tracked {
				return tbl
			}
		}
	}
	return m.typeTables[p]
}

func (m *mixedGrained) flush() {
	for _, ci := range m.stagedResets {
		for alias, tbl := range m.shadows[ci] {
			for key := range tbl {
				m.acct.Add(-m.entryBytes(key))
			}
			m.shadows[ci][alias] = map[string]*agg.Node{}
		}
	}
	m.stagedResets = m.stagedResets[:0]
	for _, u := range m.staged {
		m.mergeInto(m.typeTables[u.alias], u.key, u.node)
		for _, tbls := range m.shadows {
			if tbl, tracked := tbls[u.alias]; tracked {
				m.mergeInto(tbl, u.key, u.node)
			}
		}
	}
	m.staged = m.staged[:0]
}

func (m *mixedGrained) mergeInto(tbl map[string]*agg.Node, key string, node agg.Node) {
	dst, ok := tbl[key]
	if !ok {
		n := m.plan.Specs.Zero()
		tbl[key] = &n
		dst = &n
		m.acct.Add(m.entryBytes(key))
	}
	m.plan.Specs.Merge(dst, node)
}

// Results merges per binding: type-grained end aliases from their
// tables, event-grained end aliases from their stored entries
// (Algorithm 2 lines 15–16).
func (m *mixedGrained) Results() []bindingResult {
	m.flush()
	merged := map[string]*agg.Node{}
	mergeKey := func(key string, node agg.Node) {
		dst, ok := merged[key]
		if !ok {
			n := m.plan.Specs.Zero()
			dst = &n
			merged[key] = dst
		}
		m.plan.Specs.Merge(dst, node)
	}
	for _, endAlias := range m.plan.FSA.EndAliases() {
		if entries, eventGrained := m.stored[endAlias]; eventGrained {
			for i := range entries {
				mergeKey(entries[i].key, entries[i].node)
			}
			continue
		}
		for key, node := range m.typeTables[endAlias] {
			mergeKey(key, *node)
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]bindingResult, 0, len(keys))
	for _, k := range keys {
		if merged[k].Count == 0 {
			continue
		}
		out = append(out, bindingResult{key: k, node: *merged[k]})
	}
	return out
}

// Release returns all retained memory to the accountant.
func (m *mixedGrained) Release() {
	for _, tbl := range m.typeTables {
		for key := range tbl {
			m.acct.Add(-m.entryBytes(key))
		}
	}
	for _, tbls := range m.shadows {
		for _, tbl := range tbls {
			for key := range tbl {
				m.acct.Add(-m.entryBytes(key))
			}
		}
	}
	for _, entries := range m.stored {
		for i := range entries {
			m.acct.Add(-m.storedBytes(entries[i]))
		}
	}
	m.acct.Add(-m.fires.footprint())
	m.typeTables, m.shadows, m.stored = nil, nil, nil
}
