package core

import (
	"repro/internal/agg"
)

// mixedGrained implements Algorithm 2: skip-till-any-match with
// predicates on adjacent events θ. The event types of the pattern are
// split into Tt and Te (Theorem 5.1): types whose events future
// predicate evaluations never need keep one aggregate per type (and
// binding), while events of types restricted by θ are stored
// individually with an event-grained aggregate each. Time complexity
// is O(n(t+nₑ)) and space Θ(t+nₑ) per sub-stream (Theorem 5.2).
//
// Stored events retain only their adjacent-predicate left operands
// (copied out of the resolved view), so the dominant stored-event scan
// compares pre-resolved values — no map probes per stored entry.
type mixedGrained struct {
	plan *Plan
	acct accountant
	bnd  *bindings

	// typeTables holds the Tt aggregates (Algorithm 2's hash table H),
	// indexed by alias id; nil for event-grained aliases.
	typeTables []map[bkey]*agg.Node
	// shadows mirrors typeGrained's negation handling for Tt types.
	shadows [][]map[bkey]*agg.Node
	// stored holds the Te events with their event-grained aggregates,
	// in arrival order, indexed by alias id.
	stored [][]storedEntry
	// fires records negation matches; stored predecessors are blocked
	// per pair by fire times strictly between the two events.
	fires *negFires

	staged       []stagedUpdate
	stagedResets []int

	contrib  contribTable
	fastNode agg.Node

	// arenas backs the stored entries' slices — engine-owned bump
	// allocators shared across windows and partitions; see arena.go.
	arenas *storeArenas

	curTime int64
	hasCur  bool
}

// storedEntry is one retained event of an event-grained type with the
// aggregate of all partial trends ending at it. The event itself is
// reduced to what future evaluations read: its time stamp and its
// adjacent-predicate left operands.
type storedEntry struct {
	time int64
	left []attrVal
	key  bkey
	node agg.Node
	foot int64 // accounted logical bytes of this entry
}

func newMixedGrained(p *Plan, acct accountant, bnd *bindings, ar *storeArenas) *mixedGrained {
	m := &mixedGrained{
		plan:       p,
		acct:       acct,
		bnd:        bnd,
		arenas:     ar,
		typeTables: make([]map[bkey]*agg.Node, len(p.aliasNames)),
		stored:     make([][]storedEntry, len(p.aliasNames)),
		fires:      newNegFires(len(p.FSA.Negations)),
		contrib:    newContribTable(p.Specs),
	}
	for id := range m.typeTables {
		if !p.eventGrainedByID[id] {
			m.typeTables[id] = map[bkey]*agg.Node{}
		}
	}
	m.shadows = make([][]map[bkey]*agg.Node, len(p.FSA.Negations))
	for ci, nc := range p.FSA.Negations {
		row := make([]map[bkey]*agg.Node, len(p.aliasNames))
		for _, a := range nc.Pred {
			if id := p.aliasIDs[a]; !p.eventGrainedByID[id] {
				row[id] = map[bkey]*agg.Node{}
			}
		}
		m.shadows[ci] = row
	}
	return m
}

func (m *mixedGrained) entryBytes() int64 {
	return m.plan.Specs.FootprintBytes() + 8 + 16
}

func (m *mixedGrained) storedBytes(rv *resolvedVals) int64 {
	return rv.ev.FootprintBytes() + m.plan.Specs.FootprintBytes() + 8 + 24
}

// Process implements Algorithm 2 lines 5–14 with Table 8 propagation.
func (m *mixedGrained) Process(rv *resolvedVals) {
	e := rv.ev
	if m.hasCur && e.Time != m.curTime {
		m.flush()
	}
	m.curTime, m.hasCur = e.Time, true

	tp := rv.tp
	if tp == nil {
		return
	}
	specs := m.plan.Specs
	for ai := range tp.aliases {
		ap := &tp.aliases[ai]
		if !evalLocals(ap.locals, rv) {
			continue
		}
		if m.bnd.none() {
			// Fast path without equivalence slots: a single reused
			// accumulator replaces the binding-keyed contribution
			// table; the stored-event scan dominates mixed-grained
			// cost, so this inner loop stays allocation-free.
			m.processFast(ap, rv)
			continue
		}
		assigns, ok := m.bnd.assignments(ap, rv)
		if !ok {
			continue
		}
		for pi := range ap.preds {
			edge := &ap.preds[pi]
			if edge.eventGrained {
				// Event-grained predecessor: compare e to each stored
				// event (Algorithm 2 lines 9–10).
				for i := range m.stored[edge.id] {
					se := &m.stored[edge.id][i]
					if se.time >= e.Time {
						break // stored in arrival order
					}
					if edge.guard != 0 && m.fires.blockedBetween(int(edge.guard-1), se.time, e.Time) {
						continue
					}
					if !evalAdjacent(edge.adj, se.left, rv) {
						continue
					}
					nk, compat := m.bnd.combine(se.key, assigns)
					if !compat {
						continue
					}
					m.contrib.add(nk, &se.node)
				}
				continue
			}
			// Type-grained predecessor (Algorithm 2 lines 7–8).
			for key, node := range m.tableFor(edge) {
				nk, compat := m.bnd.combine(key, assigns)
				if !compat {
					continue
				}
				m.contrib.add(nk, node)
			}
		}
		startKey := m.bnd.emptyKey()
		if ap.isStart {
			startKey = m.bnd.startKey(assigns)
			m.contrib.slot(startKey)
		}
		for i, nk := range m.contrib.keys {
			started := uint64(0)
			if ap.isStart && nk == startKey {
				started = 1
			}
			if ap.eventGrained {
				node := agg.Node{Aux: m.arenas.aux.alloc(len(specs))}
				specs.ExtendInto(&node, m.contrib.nodes[i], ap.specMatch, rv, started)
				m.store(ap, rv, nk, node)
			} else {
				specs.ExtendInto(m.stage(ap.id, nk), m.contrib.nodes[i], ap.specMatch, rv, started)
			}
		}
		m.contrib.reset()
	}
	for ni := range tp.negs {
		ng := &tp.negs[ni]
		if evalLocals(ng.locals, rv) {
			if m.fires.fire(ng.ci, e.Time) {
				m.acct.Add(8)
			}
			m.stagedResets = append(m.stagedResets, ng.ci)
		}
	}
}

// processFast is Process's inner loop for plans without equivalence
// slots (every binding is the empty key).
func (m *mixedGrained) processFast(ap *aliasPlan, rv *resolvedVals) {
	specs := m.plan.Specs
	specs.ZeroInto(&m.fastNode)
	e := rv.ev
	for pi := range ap.preds {
		edge := &ap.preds[pi]
		if edge.eventGrained {
			for i := range m.stored[edge.id] {
				se := &m.stored[edge.id][i]
				if se.time >= e.Time {
					break // stored in arrival order
				}
				if edge.guard != 0 && m.fires.blockedBetween(int(edge.guard-1), se.time, e.Time) {
					continue
				}
				if !evalAdjacent(edge.adj, se.left, rv) {
					continue
				}
				specs.Merge(&m.fastNode, se.node)
			}
			continue
		}
		for _, node := range m.tableFor(edge) {
			specs.Merge(&m.fastNode, *node)
		}
	}
	started := uint64(0)
	if ap.isStart {
		started = 1
	}
	if m.fastNode.Count == 0 && started == 0 {
		hasAux := false
		for _, a := range m.fastNode.Aux {
			if a != (agg.Aux{}) {
				hasAux = true
				break
			}
		}
		if !hasAux {
			return // nothing to extend and nothing started
		}
	}
	if ap.eventGrained {
		node := agg.Node{Aux: m.arenas.aux.alloc(len(specs))}
		specs.ExtendInto(&node, m.fastNode, ap.specMatch, rv, started)
		m.store(ap, rv, 0, node)
	} else {
		specs.ExtendInto(m.stage(ap.id, 0), m.fastNode, ap.specMatch, rv, started)
	}
}

// store retains one event-grained entry: arrival-ordered, with the
// event's adjacent-predicate left operands copied out of the resolved
// view into an arena cell (no per-entry GC object).
func (m *mixedGrained) store(ap *aliasPlan, rv *resolvedVals, key bkey, node agg.Node) {
	se := storedEntry{
		time: rv.ev.Time,
		left: m.plan.copyLeftVals(m.arenas.left.alloc(len(m.plan.adjLeft)), rv),
		key:  key,
		node: node,
		foot: m.storedBytes(rv),
	}
	m.stored[ap.id] = append(m.stored[ap.id], se)
	m.acct.Add(se.foot)
}

// stage appends one staged update via the shared helper.
func (m *mixedGrained) stage(alias int32, key bkey) *agg.Node {
	return stageUpdate(&m.staged, alias, key)
}

func (m *mixedGrained) tableFor(edge *predEdge) map[bkey]*agg.Node {
	if edge.guard != 0 {
		if tbl := m.shadows[edge.guard-1][edge.id]; tbl != nil {
			return tbl
		}
	}
	return m.typeTables[edge.id]
}

func (m *mixedGrained) flush() {
	for _, ci := range m.stagedResets {
		for ai, tbl := range m.shadows[ci] {
			if tbl == nil {
				continue
			}
			m.acct.Add(-int64(len(tbl)) * m.entryBytes())
			m.shadows[ci][ai] = map[bkey]*agg.Node{}
		}
	}
	m.stagedResets = m.stagedResets[:0]
	for i := range m.staged {
		u := &m.staged[i]
		m.mergeInto(m.typeTables[u.alias], u.key, u.node)
		for _, row := range m.shadows {
			if tbl := row[u.alias]; tbl != nil {
				m.mergeInto(tbl, u.key, u.node)
			}
		}
	}
	m.staged = m.staged[:0]
}

func (m *mixedGrained) mergeInto(tbl map[bkey]*agg.Node, key bkey, node agg.Node) {
	dst, ok := tbl[key]
	if !ok {
		n := m.plan.Specs.Zero()
		tbl[key] = &n
		dst = &n
		m.acct.Add(m.entryBytes())
	}
	m.plan.Specs.Merge(dst, node)
}

// Results merges per binding: type-grained end aliases from their
// tables, event-grained end aliases from their stored entries
// (Algorithm 2 lines 15–16).
func (m *mixedGrained) Results() []bindingResult {
	m.flush()
	merged := map[bkey]*agg.Node{}
	mergeKey := func(key bkey, node agg.Node) {
		dst, ok := merged[key]
		if !ok {
			n := m.plan.Specs.Zero()
			dst = &n
			merged[key] = dst
		}
		m.plan.Specs.Merge(dst, node)
	}
	for _, id := range m.plan.endAliasIDs {
		if m.plan.eventGrainedByID[id] {
			for i := range m.stored[id] {
				mergeKey(m.stored[id][i].key, m.stored[id][i].node)
			}
			continue
		}
		for key, node := range m.typeTables[id] {
			mergeKey(key, *node)
		}
	}
	out := make([]bindingResult, 0, len(merged))
	for k, n := range merged {
		if n.Count == 0 {
			continue
		}
		out = append(out, bindingResult{key: k, vals: m.bnd.decode(k), node: *n})
	}
	sortBindingResults(out)
	return out
}

// Release returns all retained memory to the accountant.
func (m *mixedGrained) Release() {
	for _, tbl := range m.typeTables {
		m.acct.Add(-int64(len(tbl)) * m.entryBytes())
	}
	for _, row := range m.shadows {
		for _, tbl := range row {
			m.acct.Add(-int64(len(tbl)) * m.entryBytes())
		}
	}
	for _, entries := range m.stored {
		for i := range entries {
			m.acct.Add(-entries[i].foot)
		}
	}
	m.acct.Add(-m.fires.footprint())
	// Dropping the stored slices is what frees arena slabs: once every
	// sub-aggregator whose entries share a slab has been released, the
	// whole slab is unreachable and collected in one step.
	m.typeTables, m.shadows, m.stored = nil, nil, nil
}
