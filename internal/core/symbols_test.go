package core

import (
	"reflect"
	"testing"

	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

func twoSlotBindings() *bindings {
	return newBindings([]predicate.Equivalence{
		{Alias: "A", Attr: "x"}, {Alias: "B", Attr: "y"},
	}, nopAccountant{}, false)
}

func TestBindingsPackedCombine(t *testing.T) {
	b := twoSlotBindings()
	v1, v2 := b.internVal("p1"), b.internVal("p2")

	k1 := b.startKey([]slotAssign{{idx: 0, val: v1}})
	if got := b.decode(k1); !reflect.DeepEqual(got, []string{"p1", ""}) {
		t.Errorf("decode(start) = %v", got)
	}
	// Binding the free slot succeeds; the bound slot accepts only the
	// same value.
	k2, ok := b.combine(k1, []slotAssign{{idx: 1, val: v2}})
	if !ok {
		t.Fatal("combine rejected free slot")
	}
	if got := b.decode(k2); !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Errorf("decode(combined) = %v", got)
	}
	if _, ok := b.combine(k2, []slotAssign{{idx: 0, val: v1}}); !ok {
		t.Error("combine rejected agreeing value")
	}
	if _, ok := b.combine(k2, []slotAssign{{idx: 0, val: v2}}); ok {
		t.Error("combine accepted conflicting value")
	}
	// Empty assignment list is the identity.
	if k, ok := b.combine(k2, nil); !ok || k != k2 {
		t.Errorf("combine(key, nil) = %v, %v", k, ok)
	}
	if b.emptyKey() != 0 || !reflect.DeepEqual(b.decode(0), []string{"", ""}) {
		t.Error("empty key not all-unbound")
	}
}

func TestBindingsVectorCombine(t *testing.T) {
	b := newBindings([]predicate.Equivalence{
		{Alias: "A", Attr: "x"}, {Alias: "B", Attr: "y"}, {Alias: "C", Attr: "z"},
	}, nopAccountant{}, false)
	v1, v2, v3 := b.internVal("u"), b.internVal("v"), b.internVal("w")

	k1 := b.startKey([]slotAssign{{idx: 2, val: v3}})
	k2, ok := b.combine(k1, []slotAssign{{idx: 0, val: v1}, {idx: 1, val: v2}})
	if !ok {
		t.Fatal("combine rejected free slots")
	}
	if got := b.decode(k2); !reflect.DeepEqual(got, []string{"u", "v", "w"}) {
		t.Errorf("decode = %v", got)
	}
	// Interning is stable: the same vector yields the same key.
	k3, ok := b.combine(k1, []slotAssign{{idx: 0, val: v1}, {idx: 1, val: v2}})
	if !ok || k3 != k2 {
		t.Errorf("re-combine = %v, want %v", k3, k2)
	}
	if _, ok := b.combine(k2, []slotAssign{{idx: 2, val: v1}}); ok {
		t.Error("combine accepted conflicting value")
	}
	if got := b.decode(b.emptyKey()); !reflect.DeepEqual(got, []string{"", "", ""}) {
		t.Errorf("decode(empty) = %v", got)
	}
}

// TestAppendStreamKeyMatchesStreamKeyOf pins the zero-alloc router key
// to the canonical string form, including the numeric fallback.
func TestAppendStreamKeyMatchesStreamKeyOf(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereEquiv(predicate.Equivalence{Attr: "ward"}).
		Within(10, 10).
		MustBuild()
	plan := MustPlan(q)
	cases := []*event.Event{
		event.New("M", 1).WithSym("patient", "p1").WithSym("ward", "icu"),
		event.New("M", 2).WithNum("patient", 7).WithSym("ward", "er"),
		event.New("M", 3).WithNum("patient", 7.5).WithSym("ward", "er"),
		event.New("M", 4).WithSym("patient", "p1"), // ward missing
	}
	var rv resolvedVals
	for _, ev := range cases {
		want, wantOK := plan.StreamKeyOf(ev)
		buf, ok := plan.AppendStreamKey(nil, ev)
		if ok != wantOK {
			t.Errorf("%v: AppendStreamKey ok = %v, want %v", ev, ok, wantOK)
			continue
		}
		if ok && string(buf) != want {
			t.Errorf("%v: AppendStreamKey = %q, want %q", ev, buf, want)
		}
		// The engine-internal resolved-view builder must produce the
		// same bytes, or router and engine would disagree on routing.
		plan.resolveInto(&rv, ev)
		rbuf, rok := plan.appendStreamKey(nil, &rv)
		if rok != wantOK || (rok && string(rbuf) != want) {
			t.Errorf("%v: resolved appendStreamKey = %q, %v; want %q, %v", ev, rbuf, rok, want, wantOK)
		}
	}
}

// TestResolvedViewSemantics pins the resolved view to the Event
// accessor semantics: numeric-first Attr, SymAttr fallback formatting.
func TestResolvedViewSemantics(t *testing.T) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("M", "M"))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Max, Alias: "M", Attr: "rate"}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Alias: "M", Attr: "patient"}).
		Within(10, 10).
		MustBuild()
	plan := MustPlan(q)
	var rv resolvedVals
	// Numeric patient: the slot reads the formatted fallback value.
	plan.resolveInto(&rv, event.New("M", 1).WithNum("patient", 7).WithNum("rate", 61.5))
	pid := plan.cat.attrIDs["patient"]
	if rv.has[pid]&hasSymVal == 0 || rv.sym[pid] != "7" {
		t.Errorf("numeric patient resolved to %q (has=%b)", rv.sym[pid], rv.has[pid])
	}
	if rv.has[pid]&hasSymRaw != 0 {
		t.Error("fallback value marked as raw symbolic")
	}
	// SpecNum indexes the spec's attribute.
	if v, ok := rv.SpecNum(1); !ok || v != 61.5 {
		t.Errorf("SpecNum(1) = %v, %v", v, ok)
	}
	if _, ok := rv.SpecNum(0); ok {
		t.Error("COUNT(*) spec reported an attribute value")
	}
	// Absent attributes resolve to no presence bits.
	plan.resolveInto(&rv, event.New("M", 2))
	if rv.has[pid] != 0 {
		t.Errorf("absent attribute has bits %b", rv.has[pid])
	}
	if rv.tp == nil {
		t.Error("typePlan missing for pattern type")
	}
	plan.resolveInto(&rv, event.New("X", 3))
	if rv.tp != nil {
		t.Error("typePlan present for irrelevant type")
	}
}
