package core

import (
	"repro/internal/agg"
	"repro/internal/query"
)

// patternGrained implements Algorithm 3: skip-till-next-match and
// contiguous semantics keep only the final aggregate and the aggregate
// of the last matched event, because an event has at most one
// predecessor under these semantics (Theorem 6.1). Time complexity is
// O(n) and space O(1) per sub-stream (Theorems 6.3, 6.4).
//
// Operationally the aggregator maintains the chain of matched events:
// a new event extends the last matched event when they are adjacent
// (Definition 7 under the respective semantics), additionally starts a
// fresh trend when it is of a start type, and — under the contiguous
// semantics only — resets the chain when it cannot be matched at all,
// invalidating the partial trends that end at the last matched event
// (Example 7: event c5).
//
// The last matched event el is retained as its resolved
// adjacent-predicate left operands only, and the aggregate nodes are
// reused buffers, so the steady-state path is allocation-free.
type patternGrained struct {
	plan *Plan
	acct accountant

	hasEl   bool
	elTime  int64
	elAlias int32
	elFoot  int64 // accounted logical bytes of el
	elLeft  []attrVal
	elNode  agg.Node

	scratch  agg.Node // Extend target, swapped with elNode on match
	predZero agg.Node // reused zero predecessor for non-adjacent starts
	final    agg.Node
	fires    *negFires
}

func newPatternGrained(p *Plan, acct accountant) *patternGrained {
	g := &patternGrained{
		plan:   p,
		acct:   acct,
		elNode: p.Specs.Zero(),
		final:  p.Specs.Zero(),
		fires:  newNegFires(len(p.FSA.Negations)),
	}
	// Constant state: two aggregate nodes.
	acct.Add(2 * p.Specs.FootprintBytes())
	return g
}

// Process implements Algorithm 3 lines 2–9.
func (g *patternGrained) Process(rv *resolvedVals) {
	e := rv.ev
	matched := false
	tp := rv.tp
	if tp != nil && len(tp.aliases) == 1 { // plan guarantees at most one
		ap := &tp.aliases[0]
		if evalLocals(ap.locals, rv) {
			started := ap.isStart
			adjacent := g.isAdjacent(ap, rv)
			if started || adjacent {
				specs := g.plan.Specs
				pred := &g.predZero
				if adjacent {
					pred = &g.elNode
				} else {
					specs.ZeroInto(&g.predZero)
				}
				s := uint64(0)
				if started {
					s = 1
				}
				specs.ExtendInto(&g.scratch, *pred, ap.specMatch, rv, s)
				if ap.isEnd {
					specs.Merge(&g.final, g.scratch)
				}
				g.setEl(rv, ap)
				matched = true
			}
		}
	}
	// Record negation matches; they block adjacency across the fire
	// time (per-pair refinement of §8's "set el to null").
	if tp != nil {
		for ni := range tp.negs {
			ng := &tp.negs[ni]
			if evalLocals(ng.locals, rv) {
				if g.fires.fire(ng.ci, e.Time) {
					g.acct.Add(8)
				}
			}
		}
	}
	if !matched && g.plan.Query.Semantics == query.Cont {
		g.resetEl()
	}
}

// isAdjacent checks Definition 7 against the last matched event: the
// predecessor-type relation, strictly increasing time, the adjacent
// predicates θ, and no negation fire in between.
func (g *patternGrained) isAdjacent(ap *aliasPlan, rv *resolvedVals) bool {
	if !g.hasEl || g.elTime >= rv.ev.Time {
		return false
	}
	ei := ap.predIdx[g.elAlias]
	if ei < 0 {
		return false
	}
	edge := &ap.preds[ei]
	if !evalAdjacent(edge.adj, g.elLeft, rv) {
		return false
	}
	if edge.guard != 0 && g.fires.blockedBetween(int(edge.guard-1), g.elTime, rv.ev.Time) {
		return false
	}
	return true
}

// setEl installs the newly matched event as el: its trend aggregate is
// the node just computed in scratch (swapped in, so both buffers are
// reused), its left operands are copied out of the resolved view.
func (g *patternGrained) setEl(rv *resolvedVals, ap *aliasPlan) {
	if g.hasEl {
		g.acct.Add(-g.elFoot)
	}
	g.hasEl = true
	g.elTime = rv.ev.Time
	g.elAlias = ap.id
	g.elFoot = rv.ev.FootprintBytes()
	g.elLeft = g.plan.copyLeftVals(g.elLeft, rv)
	g.elNode, g.scratch = g.scratch, g.elNode
	g.acct.Add(g.elFoot)
}

func (g *patternGrained) resetEl() {
	if g.hasEl {
		g.acct.Add(-g.elFoot)
	}
	g.hasEl = false
	g.elFoot = 0
	g.plan.Specs.ZeroInto(&g.elNode)
}

// Results returns the final aggregate (Algorithm 3 line 10); pattern
// granularity has no binding slots, so at most one result exists.
func (g *patternGrained) Results() []bindingResult {
	if g.final.Count == 0 {
		return nil
	}
	return []bindingResult{{key: 0, node: g.final}}
}

// Release returns the constant state to the accountant.
func (g *patternGrained) Release() {
	if g.hasEl {
		g.acct.Add(-g.elFoot)
	}
	g.acct.Add(-2 * g.plan.Specs.FootprintBytes())
	g.acct.Add(-g.fires.footprint())
	g.hasEl = false
}
