package core

import (
	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/query"
)

// patternGrained implements Algorithm 3: skip-till-next-match and
// contiguous semantics keep only the final aggregate and the aggregate
// of the last matched event, because an event has at most one
// predecessor under these semantics (Theorem 6.1). Time complexity is
// O(n) and space O(1) per sub-stream (Theorems 6.3, 6.4).
//
// Operationally the aggregator maintains the chain of matched events:
// a new event extends the last matched event when they are adjacent
// (Definition 7 under the respective semantics), additionally starts a
// fresh trend when it is of a start type, and — under the contiguous
// semantics only — resets the chain when it cannot be matched at all,
// invalidating the partial trends that end at the last matched event
// (Example 7: event c5).
type patternGrained struct {
	plan *Plan
	acct accountant

	el      *event.Event
	elAlias string
	elNode  agg.Node
	final   agg.Node
	fires   *negFires
}

func newPatternGrained(p *Plan, acct accountant) *patternGrained {
	g := &patternGrained{
		plan:   p,
		acct:   acct,
		elNode: p.Specs.Zero(),
		final:  p.Specs.Zero(),
		fires:  newNegFires(len(p.FSA.Negations)),
	}
	// Constant state: two aggregate nodes.
	acct.Add(2 * p.Specs.FootprintBytes())
	return g
}

// Process implements Algorithm 3 lines 2–9.
func (g *patternGrained) Process(e *event.Event) {
	matched := false
	aliases := g.plan.FSA.AliasesForType(e.Type)
	if len(aliases) == 1 { // plan guarantees at most one
		alias := aliases[0]
		if g.plan.Where.EvalLocal(alias, e) {
			started := g.plan.FSA.IsStart(alias)
			adjacent := g.isAdjacent(alias, e)
			if started || adjacent {
				pred := g.plan.Specs.Zero()
				if adjacent {
					pred = g.elNode
				}
				s := uint64(0)
				if started {
					s = 1
				}
				node := g.plan.Specs.Extend(pred, alias, e, s)
				if g.plan.FSA.IsEnd(alias) {
					g.plan.Specs.Merge(&g.final, node)
				}
				g.setEl(e, alias, node)
				matched = true
			}
		}
	}
	// Record negation matches; they block adjacency across the fire
	// time (per-pair refinement of §8's "set el to null").
	for _, ref := range g.plan.negTypes[e.Type] {
		if g.plan.Where.EvalLocal(ref.alias, e) {
			if g.fires.fire(ref.ci, e.Time) {
				g.acct.Add(8)
			}
		}
	}
	if !matched && g.plan.Query.Semantics == query.Cont {
		g.resetEl()
	}
}

// isAdjacent checks Definition 7 against the last matched event: the
// predecessor-type relation, strictly increasing time, the adjacent
// predicates θ, and no negation fire in between.
func (g *patternGrained) isAdjacent(alias string, e *event.Event) bool {
	if g.el == nil || g.el.Time >= e.Time {
		return false
	}
	found := false
	for _, p := range g.plan.FSA.Pred[alias] {
		if p == g.elAlias {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if !g.plan.Where.EvalAdjacent(g.elAlias, g.el, alias, e) {
		return false
	}
	if ci, guarded := g.plan.negGuard[[2]string{g.elAlias, alias}]; guarded {
		if g.fires.blockedBetween(ci, g.el.Time, e.Time) {
			return false
		}
	}
	return true
}

func (g *patternGrained) setEl(e *event.Event, alias string, node agg.Node) {
	if g.el != nil {
		g.acct.Add(-g.el.FootprintBytes())
	}
	g.el, g.elAlias, g.elNode = e, alias, node
	g.acct.Add(e.FootprintBytes())
}

func (g *patternGrained) resetEl() {
	if g.el != nil {
		g.acct.Add(-g.el.FootprintBytes())
	}
	g.el, g.elAlias, g.elNode = nil, "", g.plan.Specs.Zero()
}

// Results returns the final aggregate (Algorithm 3 line 10); pattern
// granularity has no binding slots, so at most one result exists.
func (g *patternGrained) Results() []bindingResult {
	if g.final.Count == 0 {
		return nil
	}
	return []bindingResult{{key: "", node: g.final}}
}

// Release returns the constant state to the accountant.
func (g *patternGrained) Release() {
	if g.el != nil {
		g.acct.Add(-g.el.FootprintBytes())
	}
	g.acct.Add(-2 * g.plan.Specs.FootprintBytes())
	g.acct.Add(-g.fires.footprint())
	g.el = nil
}
