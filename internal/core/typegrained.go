package core

import (
	"repro/internal/agg"
)

// typeGrained implements Algorithm 1: one aggregate per event type in
// the pattern (per equivalence binding), for skip-till-any-match
// queries without predicates on adjacent events. Every matched event
// updates the aggregate of its type and is discarded immediately;
// time complexity is O(n·l) and space Θ(l) per sub-stream (Theorems
// 4.2, 4.3).
//
// Definition 7 requires a predecessor to be strictly earlier, so
// contributions of the current time stamp are staged and committed
// only when time advances (the stream-transaction discipline of §8);
// simultaneous events therefore never extend one another.
//
// Negated sub-patterns (§8) keep a shadow table per (constraint,
// predecessor type): the shadow receives the same contributions as
// the main table but is wiped whenever the negated type matches, and
// transitions guarded by the constraint read the shadow instead of
// the main table ("aggregates of all predecessor types are marked as
// invalid to contribute to aggregates of the following types").
//
// All tables are keyed by interned binding keys and indexed by alias
// id (symbols.go); the steady-state Process path performs no string
// operations and no allocations.
type typeGrained struct {
	plan *Plan
	acct accountant
	bnd  *bindings

	// tables is E.count of Theorem 4.1 per alias id and binding.
	tables []map[bkey]*agg.Node
	// shadows[ci][aliasID] mirrors tables[aliasID] but resets on fires
	// of negation constraint ci; only aliases in the constraint's Pred
	// set are tracked (nil otherwise).
	shadows [][]map[bkey]*agg.Node

	staged       []stagedUpdate
	stagedResets []int

	contrib contribTable

	// memo is the engine-owned predecessor-sum scratch shared by every
	// partition and window the engine hosts (see runMemo); only the
	// no-equivalence fast path reads it.
	memo *runMemo

	curTime int64
	hasCur  bool
}

// runMemo memoizes, per alias id, the merged committed contribution of
// the alias's predecessor tables. Staged updates commit only at flush
// (the stream-transaction discipline), so the committed tables — main
// and shadow — are frozen for the duration of one time stamp: the sum
// computed for the first event of an equal-time run of a type is valid
// for every follower, and the per-event table iteration collapses to a
// copy. The scratch is owned by the Engine, not the sub-aggregator: a
// partitioned engine constructs one aggregator per partition and
// window, and per-instance arrays would cost more allocation than the
// memo saves. Entries are valid only while one aggregator keeps
// processing one time stamp — any other claimant, a time advance or a
// flush of the owner (which commits staged updates into the memoized
// tables) invalidates them wholesale.
type runMemo struct {
	owner *typeGrained
	time  int64
	sums  []agg.Node
	state []uint8
}

// claim makes the memo current for aggregator t at its current time
// stamp, invalidating all entries unless t already holds it there.
func (m *runMemo) claim(t *typeGrained) {
	if m.owner == t && m.time == t.curTime {
		return
	}
	m.owner, m.time = t, t.curTime
	if n := len(t.plan.aliasNames); len(m.state) < n {
		m.sums = make([]agg.Node, n)
		m.state = make([]uint8, n)
		return
	}
	clear(m.state)
}

// runSumState values: the memo entry for an alias id is either stale
// (recompute), cached with at least one contributing predecessor
// entry, or cached with all predecessor tables empty.
const (
	runSumStale uint8 = iota
	runSumFound
	runSumEmpty
)

func newTypeGrained(p *Plan, acct accountant, bnd *bindings, memo *runMemo) *typeGrained {
	t := &typeGrained{
		plan:    p,
		acct:    acct,
		bnd:     bnd,
		tables:  make([]map[bkey]*agg.Node, len(p.aliasNames)),
		contrib: newContribTable(p.Specs),
		memo:    memo,
	}
	for i := range t.tables {
		t.tables[i] = map[bkey]*agg.Node{}
	}
	t.shadows = make([][]map[bkey]*agg.Node, len(p.FSA.Negations))
	for ci, nc := range p.FSA.Negations {
		row := make([]map[bkey]*agg.Node, len(p.aliasNames))
		for _, a := range nc.Pred {
			row[p.aliasIDs[a]] = map[bkey]*agg.Node{}
		}
		t.shadows[ci] = row
	}
	return t
}

// entryBytes is the logical size of one table entry: the aggregate
// node, the 8-byte interned key and map overhead.
func (t *typeGrained) entryBytes() int64 {
	return t.plan.Specs.FootprintBytes() + 8 + 16
}

// Process implements Algorithm 1 lines 3–8 with Table 8 aggregate
// propagation.
func (t *typeGrained) Process(rv *resolvedVals) {
	e := rv.ev
	if t.hasCur && e.Time != t.curTime {
		t.flush()
	}
	t.curTime, t.hasCur = e.Time, true

	tp := rv.tp
	if tp == nil {
		return
	}
	specs := t.plan.Specs
	for ai := range tp.aliases {
		ap := &tp.aliases[ai]
		if !evalLocals(ap.locals, rv) {
			continue
		}
		if t.bnd.none() {
			// Fast path without equivalence slots: every binding is the
			// empty key, so a single reused accumulator replaces the
			// contribution table.
			t.processFast(ap, rv)
			continue
		}
		assigns, ok := t.bnd.assignments(ap, rv)
		if !ok {
			continue
		}
		// e.count per binding: sum the committed counts of every
		// predecessor type compatible with e's slot assignments.
		for pi := range ap.preds {
			edge := &ap.preds[pi]
			for key, node := range t.tableFor(edge) {
				nk, compat := t.bnd.combine(key, assigns)
				if !compat {
					continue
				}
				t.contrib.add(nk, node)
			}
		}
		// A start-type event also begins one fresh trend in the
		// binding holding only its own slot values.
		startKey := t.bnd.emptyKey()
		if ap.isStart {
			startKey = t.bnd.startKey(assigns)
			t.contrib.slot(startKey)
		}
		for i, nk := range t.contrib.keys {
			started := uint64(0)
			if ap.isStart && nk == startKey {
				started = 1
			}
			// Zero-count nodes are kept: a count may legitimately be
			// congruent to 0 modulo 2^64 while its auxiliaries and
			// future contributions remain meaningful.
			specs.ExtendInto(t.stage(ap.id, nk), t.contrib.nodes[i], ap.specMatch, rv, started)
		}
		t.contrib.reset()
	}
	// Negation fires are also staged: they invalidate strictly earlier
	// events only, and readers at this very time stamp must still see
	// the pre-fire shadows.
	for ni := range tp.negs {
		ng := &tp.negs[ni]
		if evalLocals(ng.locals, rv) {
			t.stagedResets = append(t.stagedResets, ng.ci)
		}
	}
}

// processFast is Process's inner loop for plans without equivalence
// slots: the single empty-key binding is accumulated in a reused node,
// memoized per time stamp (runSums) so equal-time runs of a type pay
// the predecessor-table iteration once.
func (t *typeGrained) processFast(ap *aliasPlan, rv *resolvedVals) {
	specs := t.plan.Specs
	m := t.memo
	m.claim(t)
	state := m.state[ap.id]
	if state == runSumStale {
		sum := &m.sums[ap.id]
		specs.ZeroInto(sum)
		found := false
		for pi := range ap.preds {
			edge := &ap.preds[pi]
			for _, node := range t.tableFor(edge) {
				specs.Merge(sum, *node)
				found = true
			}
		}
		state = runSumEmpty
		if found {
			state = runSumFound
		}
		m.state[ap.id] = state
	}
	if state == runSumEmpty && !ap.isStart {
		return // no predecessor aggregates and nothing started
	}
	started := uint64(0)
	if ap.isStart {
		started = 1
	}
	specs.ExtendInto(t.stage(ap.id, 0), m.sums[ap.id], ap.specMatch, rv, started)
}

// stage appends one staged update via the shared helper.
func (t *typeGrained) stage(alias int32, key bkey) *agg.Node {
	return stageUpdate(&t.staged, alias, key)
}

// tableFor selects the main or shadow table for a transition.
func (t *typeGrained) tableFor(edge *predEdge) map[bkey]*agg.Node {
	if edge.guard != 0 {
		return t.shadows[edge.guard-1][edge.id]
	}
	return t.tables[edge.id]
}

// flush commits the staged time stamp: resets first (they concern
// strictly earlier events), then contributions (events of the fired
// time stamp stay valid for the future). Committing mutates the
// tables, so the per-time-stamp contribution memos go stale here.
func (t *typeGrained) flush() {
	if t.memo.owner == t {
		t.memo.owner = nil
	}
	for _, ci := range t.stagedResets {
		for ai, tbl := range t.shadows[ci] {
			if tbl == nil {
				continue
			}
			t.acct.Add(-int64(len(tbl)) * t.entryBytes())
			t.shadows[ci][ai] = map[bkey]*agg.Node{}
		}
	}
	t.stagedResets = t.stagedResets[:0]
	for i := range t.staged {
		u := &t.staged[i]
		t.mergeInto(t.tables[u.alias], u.key, u.node)
		for _, row := range t.shadows {
			if tbl := row[u.alias]; tbl != nil {
				t.mergeInto(tbl, u.key, u.node)
			}
		}
	}
	t.staged = t.staged[:0]
}

func (t *typeGrained) mergeInto(tbl map[bkey]*agg.Node, key bkey, node agg.Node) {
	dst, ok := tbl[key]
	if !ok {
		n := t.plan.Specs.Zero()
		tbl[key] = &n
		dst = &n
		t.acct.Add(t.entryBytes())
	}
	t.plan.Specs.Merge(dst, node)
}

// Results merges the end-type tables per binding (Theorem 4.1: the
// final count is the count of the end type of P).
func (t *typeGrained) Results() []bindingResult {
	t.flush()
	merged := map[bkey]*agg.Node{}
	for _, id := range t.plan.endAliasIDs {
		for key, node := range t.tables[id] {
			dst, ok := merged[key]
			if !ok {
				n := t.plan.Specs.Zero()
				dst = &n
				merged[key] = dst
			}
			t.plan.Specs.Merge(dst, *node)
		}
	}
	out := make([]bindingResult, 0, len(merged))
	for k, n := range merged {
		if n.Count == 0 {
			continue
		}
		out = append(out, bindingResult{key: k, vals: t.bnd.decode(k), node: *n})
	}
	sortBindingResults(out)
	return out
}

// Release returns all table memory to the accountant.
func (t *typeGrained) Release() {
	for _, tbl := range t.tables {
		t.acct.Add(-int64(len(tbl)) * t.entryBytes())
	}
	for _, row := range t.shadows {
		for _, tbl := range row {
			t.acct.Add(-int64(len(tbl)) * t.entryBytes())
		}
	}
	t.tables, t.shadows = nil, nil
}
