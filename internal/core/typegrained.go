package core

import (
	"sort"

	"repro/internal/agg"
	"repro/internal/event"
)

// typeGrained implements Algorithm 1: one aggregate per event type in
// the pattern (per equivalence binding), for skip-till-any-match
// queries without predicates on adjacent events. Every matched event
// updates the aggregate of its type and is discarded immediately;
// time complexity is O(n·l) and space Θ(l) per sub-stream (Theorems
// 4.2, 4.3).
//
// Definition 7 requires a predecessor to be strictly earlier, so
// contributions of the current time stamp are staged and committed
// only when time advances (the stream-transaction discipline of §8);
// simultaneous events therefore never extend one another.
//
// Negated sub-patterns (§8) keep a shadow table per (constraint,
// predecessor type): the shadow receives the same contributions as
// the main table but is wiped whenever the negated type matches, and
// transitions guarded by the constraint read the shadow instead of
// the main table ("aggregates of all predecessor types are marked as
// invalid to contribute to aggregates of the following types").
type typeGrained struct {
	plan *Plan
	acct accountant
	bnd  *bindings

	// tables is E.count of Theorem 4.1 per alias and binding.
	tables map[string]map[string]*agg.Node
	// shadows[ci][alias] mirrors tables[alias] but resets on fires of
	// negation constraint ci; only aliases in the constraint's Pred
	// set are tracked.
	shadows map[int]map[string]map[string]*agg.Node

	staged       []stagedUpdate
	stagedResets []int
	curTime      int64
	hasCur       bool
}

// stagedUpdate is one uncommitted contribution of the current
// time stamp.
type stagedUpdate struct {
	alias string
	key   string
	node  agg.Node
}

func newTypeGrained(p *Plan, acct accountant) *typeGrained {
	t := &typeGrained{
		plan:    p,
		acct:    acct,
		bnd:     newBindings(p.Slots),
		tables:  make(map[string]map[string]*agg.Node, len(p.FSA.Aliases)),
		shadows: map[int]map[string]map[string]*agg.Node{},
	}
	for _, a := range p.FSA.Aliases {
		t.tables[a] = map[string]*agg.Node{}
	}
	for ci, nc := range p.FSA.Negations {
		m := map[string]map[string]*agg.Node{}
		for _, a := range nc.Pred {
			m[a] = map[string]*agg.Node{}
		}
		t.shadows[ci] = m
	}
	return t
}

// entryBytes is the logical size of one table entry.
func (t *typeGrained) entryBytes(key string) int64 {
	return t.plan.Specs.FootprintBytes() + int64(len(key)) + 16
}

// Process implements Algorithm 1 lines 3–8 with Table 8 aggregate
// propagation.
func (t *typeGrained) Process(e *event.Event) {
	if t.hasCur && e.Time != t.curTime {
		t.flush()
	}
	t.curTime, t.hasCur = e.Time, true

	specs := t.plan.Specs
	for _, alias := range t.plan.FSA.AliasesForType(e.Type) {
		if !t.plan.Where.EvalLocal(alias, e) {
			continue
		}
		assigns, ok := t.bnd.assignments(alias, e)
		if !ok {
			continue
		}
		// e.count per binding: sum the committed counts of every
		// predecessor type compatible with e's slot assignments.
		contrib := map[string]*agg.Node{}
		for _, p := range t.plan.FSA.Pred[alias] {
			tbl := t.tableFor(p, alias)
			for key, node := range tbl {
				nk, compat := t.bnd.combine(key, assigns)
				if !compat {
					continue
				}
				dst, ok := contrib[nk]
				if !ok {
					n := specs.Zero()
					dst = &n
					contrib[nk] = dst
				}
				specs.Merge(dst, *node)
			}
		}
		// A start-type event also begins one fresh trend in the
		// binding holding only its own slot values.
		startKey := ""
		if t.plan.FSA.IsStart(alias) {
			startKey = t.bnd.startKey(assigns)
			if _, ok := contrib[startKey]; !ok {
				n := specs.Zero()
				contrib[startKey] = &n
			}
		}
		for nk, pred := range contrib {
			started := uint64(0)
			if nk == startKey && t.plan.FSA.IsStart(alias) {
				started = 1
			}
			// Zero-count nodes are kept: a count may legitimately be
			// congruent to 0 modulo 2^64 while its auxiliaries and
			// future contributions remain meaningful.
			out := specs.Extend(*pred, alias, e, started)
			t.staged = append(t.staged, stagedUpdate{alias: alias, key: nk, node: out})
		}
	}
	// Negation fires are also staged: they invalidate strictly earlier
	// events only, and readers at this very time stamp must still see
	// the pre-fire shadows.
	for _, ref := range t.plan.negTypes[e.Type] {
		if t.plan.Where.EvalLocal(ref.alias, e) {
			t.stagedResets = append(t.stagedResets, ref.ci)
		}
	}
}

// tableFor selects the main or shadow table for the transition
// p -> successor.
func (t *typeGrained) tableFor(p, successor string) map[string]*agg.Node {
	if len(t.shadows) != 0 {
		if ci, guarded := t.plan.negGuard[[2]string{p, successor}]; guarded {
			return t.shadows[ci][p]
		}
	}
	return t.tables[p]
}

// flush commits the staged time stamp: resets first (they concern
// strictly earlier events), then contributions (events of the fired
// time stamp stay valid for the future).
func (t *typeGrained) flush() {
	for _, ci := range t.stagedResets {
		for alias, tbl := range t.shadows[ci] {
			for key := range tbl {
				t.acct.Add(-t.entryBytes(key))
			}
			t.shadows[ci][alias] = map[string]*agg.Node{}
		}
	}
	t.stagedResets = t.stagedResets[:0]
	for _, u := range t.staged {
		t.mergeInto(t.tables[u.alias], u.key, u.node)
		for _, m := range t.shadows {
			if tbl, tracked := m[u.alias]; tracked {
				t.mergeInto(tbl, u.key, u.node)
			}
		}
	}
	t.staged = t.staged[:0]
}

func (t *typeGrained) mergeInto(tbl map[string]*agg.Node, key string, node agg.Node) {
	dst, ok := tbl[key]
	if !ok {
		n := t.plan.Specs.Zero()
		tbl[key] = &n
		dst = &n
		t.acct.Add(t.entryBytes(key))
	}
	t.plan.Specs.Merge(dst, node)
}

// Results merges the end-type tables per binding (Theorem 4.1: the
// final count is the count of the end type of P).
func (t *typeGrained) Results() []bindingResult {
	t.flush()
	merged := map[string]*agg.Node{}
	for _, endAlias := range t.plan.FSA.EndAliases() {
		for key, node := range t.tables[endAlias] {
			dst, ok := merged[key]
			if !ok {
				n := t.plan.Specs.Zero()
				dst = &n
				merged[key] = dst
			}
			t.plan.Specs.Merge(dst, *node)
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]bindingResult, 0, len(keys))
	for _, k := range keys {
		if merged[k].Count == 0 {
			continue
		}
		out = append(out, bindingResult{key: k, node: *merged[k]})
	}
	return out
}

// Release returns all table memory to the accountant.
func (t *typeGrained) Release() {
	for _, tbl := range t.tables {
		for key := range tbl {
			t.acct.Add(-t.entryBytes(key))
		}
	}
	for _, m := range t.shadows {
		for _, tbl := range m {
			for key := range tbl {
				t.acct.Add(-t.entryBytes(key))
			}
		}
	}
	t.tables, t.shadows = nil, nil
}
