package core

import (
	"repro/internal/event"
)

// Batch kernels: the execution-side counterpart of batch-first ingest.
//
// The multi-query runtime splits each batch into equal-timestamp
// groups and buckets every group by interned type id (stable order
// within a bucket). One bucket is one *run*: a maximal same-time,
// same-type sequence the runtime resolves once into a struct-of-arrays
// view (ResolvedRun) and hands to every interested engine in one call
// (ProcessResolvedRun). The per-event costs the event-at-a-time path
// pays — subscription-index lookup, dispatch-table (typePlan) and spec
// projection install, watermark check — collapse to once per run, and
// resolution probes only the attributes some hosted plan actually
// reads instead of the catalog's whole attribute space.
//
// Granularity kernels are unchanged: they consume the same resolvedVals
// slot views, but for a run those views are consecutive stride-wide
// slices of three contiguous columns (num/sym/has), so the inner
// aggregation loops walk linear memory instead of chasing one heap
// object per event.
//
// Only run-safe plans take this path. Within one timestamp COGRA's
// stream-transaction discipline stages every contribution and commits
// at the next time advance, and a predecessor must be strictly earlier
// (Definition 7), so type- and mixed-grained execution is independent
// of processing order among equal-time events — bucketing by type is
// result-identical. Pattern-grained plans are the exception: their
// single el chain keeps the LAST matched event in arrival order, so
// the runtime feeds them (and contiguous-semantics plans, which
// observe every event) through the per-event path in arrival order.

// ResolvedRun is the resolved view of one run: same-time, same-type
// events in arrival order, slot values laid out struct-of-arrays. Row
// i (event i's view) is the half-open stride slice [i*stride,
// (i+1)*stride) of each column. Only the attribute ids requested at
// ResolveRun time hold live values; every other slot is stale — safe
// because the runtime requests the union of all attributes the run's
// subscribed plans reference.
type ResolvedRun struct {
	// Events is the run in arrival order — borrowed from the caller,
	// valid until the next ResolveRun.
	Events []*event.Event
	// Time is the shared time stamp, Tid the shared catalog type id.
	Time int64
	Tid  int32

	stride int
	num    []float64
	sym    []string
	has    []uint8
}

// Len returns the number of events in the run.
func (run *ResolvedRun) Len() int { return len(run.Events) }

// ResolveRun resolves a run of same-time, same-type events into run's
// struct-of-arrays view, probing only the attribute ids in attrs (the
// caller's union of every attribute its interested plans read). The
// fill replicates the per-event union resolve exactly — numeric and
// symbolic maps probed per attribute, with the numeric fallback
// materialised for symNeeded attributes — so a run view is
// byte-identical to the event-at-a-time view on every requested slot.
// The view is valid until the next ResolveRun call on the same run.
func (r *Resolver) ResolveRun(run *ResolvedRun, events []*event.Event, tid int32, attrs []int32) {
	v := r.cat.view.Load()
	stride := len(v.attrNames)
	need := len(events) * stride
	if cap(run.num) >= need {
		run.num, run.sym, run.has = run.num[:need], run.sym[:need], run.has[:need]
	} else {
		run.num = make([]float64, need)
		run.sym = make([]string, need)
		run.has = make([]uint8, need)
	}
	run.Events = events
	run.Tid = tid
	run.stride = stride
	if len(events) > 0 {
		run.Time = events[0].Time
	}
	// Attribute-outer: the name, liveness and symNeeded lookups are
	// hoisted per column, and the per-event map probes hash the same
	// key back to back.
	for _, a := range attrs {
		if int(a) >= stride || (v.attrDead != nil && v.attrDead[a]) {
			continue
		}
		name := v.attrNames[a]
		needSym := v.symNeeded[a]
		idx := int(a)
		for _, ev := range events {
			var h uint8
			var nv float64
			var sv string
			if val, ok := ev.Num[name]; ok {
				nv, h = val, hasNum
			}
			if s, ok := ev.Sym[name]; ok {
				sv = s
				h |= hasSymRaw | hasSymVal
			} else if h&hasNum != 0 && needSym {
				sv = event.FormatNum(nv)
				h |= hasSymVal
			}
			run.num[idx], run.sym[idx], run.has[idx] = nv, sv, h
			idx += stride
		}
	}
}

// ProcessResolvedRun consumes one resolved run: the batch-kernel
// sibling of ProcessResolved. The admission check, the dispatch-table
// lookup (typePlanAt) and the spec projection install are hoisted out
// of the event loop — consecutive same-type events no longer re-read
// the subscription index entry — and each event's slot view is a
// stride slice into the run's contiguous columns. The caller is
// responsible for watermark ordering across queries, exactly as with
// ProcessResolved.
func (e *Engine) ProcessResolvedRun(run *ResolvedRun) error {
	if len(run.Events) == 0 {
		return nil
	}
	if err := e.admitEvent(run.Time); err != nil {
		return err
	}
	e.rv.tp = e.plan.typePlanAt(run.Tid)
	e.rv.specIDs = e.plan.specIDs
	stride := run.stride
	if len(e.plan.StreamKeys) == 0 {
		return e.processRunSinglePart(run, stride)
	}
	off := 0
	for _, ev := range run.Events {
		e.rv.ev = ev
		e.rv.num = run.num[off : off+stride]
		e.rv.sym = run.sym[off : off+stride]
		e.rv.has = run.has[off : off+stride]
		off += stride
		if err := e.processResolved(ev); err != nil {
			return err
		}
	}
	return nil
}

// processRunSinglePart is ProcessResolvedRun's loop for plans without
// stream partition keys: every event of the run lands in the single ""
// partition of each open window, so the partition probe — a map lookup
// per event per window on the general path — is hoisted to one per run
// and window. Call order into the aggregators matches the general path
// exactly (events outer, windows inner).
func (e *Engine) processRunSinglePart(run *ResolvedRun, stride int) error {
	if !e.statesValid || e.statesTime != run.Time {
		e.states = e.mgr.AppendStatesFor(e.states[:0], run.Time)
		e.statesTime, e.statesValid = run.Time, true
	}
	e.runParts = e.runParts[:0]
	for _, ws := range e.states {
		part, ok := ws.parts[""]
		if !ok {
			part = newSubAggregator(e.plan, e.acct, e.bnd, &e.arenas, &e.memo)
			ws.parts[""] = part
		}
		e.runParts = append(e.runParts, part)
	}
	e.eventsIn += int64(len(run.Events))
	off := 0
	for _, ev := range run.Events {
		e.rv.ev = ev
		e.rv.num = run.num[off : off+stride]
		e.rv.sym = run.sym[off : off+stride]
		e.rv.has = run.has[off : off+stride]
		off += stride
		for _, part := range e.runParts {
			part.Process(&e.rv)
		}
	}
	// Drop the borrowed aggregator pointers so a closed window's state
	// is collectable before the next single-part run.
	for i := range e.runParts {
		e.runParts[i] = nil
	}
	e.runParts = e.runParts[:0]
	return nil
}
