package core

import (
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// evictionQuery is a two-alias sequence with binding slots on both
// aliases: wide enough to exercise value interning, and (with a third
// slot added) vector interning.
func evictionQuery(t *testing.T, slots int) *query.Query {
	t.Helper()
	b := query.NewBuilder(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Within(64, 64)
	eqs := []predicate.Equivalence{
		{Alias: "A", Attr: "u"}, {Alias: "B", Attr: "u"}, {Alias: "A", Attr: "w"},
	}
	for i := 0; i < slots; i++ {
		b = b.WhereEquiv(eqs[i])
	}
	return b.MustBuild()
}

// rotatingStream emits A/B pairs whose slot values rotate with stream
// time: each 64-tick epoch introduces card fresh values and never
// reuses old ones, so an unbounded intern table grows forever while a
// window-expiry-evicted one plateaus.
func rotatingStream(n int, card int) []*event.Event {
	out := make([]*event.Event, 0, 2*n)
	id := int64(0)
	for i := 0; i < n; i++ {
		tm := int64(i)
		u := fmt.Sprintf("u%d-%d", tm/64, i%card)
		w := fmt.Sprintf("w%d-%d", tm/64, (i+1)%card)
		a := event.New("A", tm).WithSym("u", u).WithSym("w", w)
		bv := event.New("B", tm).WithSym("u", u).WithSym("w", w)
		id++
		a.ID = id
		id++
		bv.ID = id
		out = append(out, a, bv)
	}
	return out
}

// TestEngineInternEvictionDifferential pins eviction to be a pure
// memory optimisation: an eviction-enabled engine emits byte-identical
// results to an unbounded one, for packed (<=2 slots) and vector-
// interned (3 slots) bindings, while its intern footprint ends far
// below the unbounded ramp.
func TestEngineInternEvictionDifferential(t *testing.T) {
	for _, slots := range []int{2, 3} {
		t.Run(fmt.Sprintf("slots=%d", slots), func(t *testing.T) {
			q := evictionQuery(t, slots)
			events := rotatingStream(1200, 3)

			ref := NewEngine(MustPlan(q))
			for _, e := range events {
				if err := ref.Process(e.Clone()); err != nil {
					t.Fatal(err)
				}
			}
			want := ref.Close()

			eng := NewEngine(MustPlan(q), WithInternEviction())
			for _, e := range events {
				if err := eng.Process(e.Clone()); err != nil {
					t.Fatal(err)
				}
			}
			got := eng.Close()

			if len(want) == 0 {
				t.Fatal("no results; differential test is vacuous")
			}
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Fatalf("eviction changed results\ngot:  %v\nwant: %v", got, want)
			}
			if ref.InternBytes() <= eng.InternBytes() {
				t.Errorf("eviction reclaimed nothing: unbounded %dB vs evicted %dB",
					ref.InternBytes(), eng.InternBytes())
			}
		})
	}
}

// TestEngineInternEvictionPlateau asserts the footprint shape: under
// rotating key cardinality the evicted engine's InternBytes stops
// growing after the rotation is in steady state, while the unbounded
// engine keeps ramping.
func TestEngineInternEvictionPlateau(t *testing.T) {
	q := evictionQuery(t, 2)
	events := rotatingStream(4000, 3)
	eng := NewEngine(MustPlan(q), WithInternEviction())
	ref := NewEngine(MustPlan(q))
	var peakAfterWarmup, warmup int64
	for i, e := range events {
		if err := eng.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := ref.Process(e.Clone()); err != nil {
			t.Fatal(err)
		}
		// Warm up through four full epochs, then record the plateau.
		if e.Time == 4*64 && warmup == 0 {
			warmup = eng.InternBytes()
		}
		if e.Time > 4*64 && eng.InternBytes() > peakAfterWarmup {
			peakAfterWarmup = eng.InternBytes()
		}
		_ = i
	}
	if warmup == 0 || peakAfterWarmup == 0 {
		t.Fatal("stream too short to measure a plateau")
	}
	// The live set is ~2 epochs of values; allow slack for epoch phase
	// but reject any ramp (the unbounded table grows ~16x over the
	// remaining 58 epochs).
	if peakAfterWarmup > 2*warmup {
		t.Errorf("evicted intern footprint ramps: warmup %dB, later peak %dB", warmup, peakAfterWarmup)
	}
	if ref.InternBytes() < 4*peakAfterWarmup {
		t.Errorf("unbounded reference did not ramp (%dB) — plateau assertion is vacuous (evicted peak %dB)",
			ref.InternBytes(), peakAfterWarmup)
	}
}

// TestBindingsEvictionRecyclesIDs exercises the intern tables directly:
// ids reclaimed by expire are reused by later interns, decode stays
// correct across the recycle, and the accounted footprint returns to
// the live set.
func TestBindingsEvictionRecyclesIDs(t *testing.T) {
	b := newBindings([]predicate.Equivalence{{Alias: "A", Attr: "x"}}, nopAccountant{}, true)
	b.expire(0) // adopt epoch 0 as the base

	id1 := b.internVal("alpha")
	key1, _ := b.combine(0, []slotAssign{{idx: 0, val: id1}})
	if got := b.decode(key1); got[0] != "alpha" {
		t.Fatalf("decode = %v", got)
	}
	grown := b.footprint()

	// Two epochs later "alpha" was never touched again: reclaimed.
	b.expire(1)
	if b.footprint() != grown {
		t.Fatalf("expire(1) reclaimed a value still within the horizon")
	}
	b.expire(2)
	if b.footprint() >= grown {
		t.Fatalf("expire(2) did not reclaim: footprint %d >= %d", b.footprint(), grown)
	}

	// The freed id is recycled for the next value; the new binding
	// decodes to the new value.
	id2 := b.internVal("beta")
	if id2 != id1 {
		t.Errorf("freed id %d not recycled (got %d)", id1, id2)
	}
	key2, _ := b.combine(0, []slotAssign{{idx: 0, val: id2}})
	if got := b.decode(key2); got[0] != "beta" {
		t.Fatalf("decode after recycle = %v", got)
	}

	// Touching a value refreshes its stamp: it survives the next epoch.
	b.expire(3)
	b.internVal("beta")
	b.expire(4)
	if _, ok := b.valIDs["beta"]; !ok {
		t.Fatal("freshly touched value evicted")
	}
}
