// Package core implements the COGRA runtime (§3–§7): the static query
// analyzer that selects the coarsest safe aggregation granularity
// (Table 4), the three incremental aggregators (Algorithms 1–3 with
// the Table 8 aggregate propagation), and the streaming engine that
// applies them per sliding window and per stream partition.
package core

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// Granularity is the aggregate bookkeeping granularity chosen by the
// selector (§3.3).
type Granularity int

// Granularities, coarse to fine. Event granularity is what GRETA uses
// and is provided as an ablation baseline, not selected by Table 4.
const (
	// PatternGrained keeps one aggregate per pattern plus the last
	// matched event (NEXT and CONT semantics, Algorithm 3).
	PatternGrained Granularity = iota
	// TypeGrained keeps one aggregate per event type in the pattern
	// (ANY semantics without adjacent predicates, Algorithm 1).
	TypeGrained
	// MixedGrained keeps type aggregates where possible and per-event
	// aggregates where adjacent predicates require stored events (ANY
	// with adjacent predicates, Algorithm 2).
	MixedGrained
)

// String renders the granularity name.
func (g Granularity) String() string {
	switch g {
	case PatternGrained:
		return "pattern"
	case TypeGrained:
		return "type"
	case MixedGrained:
		return "mixed"
	}
	return "?"
}

// SelectGranularity implements Table 4.
func SelectGranularity(sem query.Semantics, hasAdjacentPredicates bool) Granularity {
	if sem == query.Next || sem == query.Cont {
		return PatternGrained
	}
	if hasAdjacentPredicates {
		return MixedGrained
	}
	return TypeGrained
}

// groupKeyRef resolves one GROUP-BY item to its source: a stream
// partition key (bare attribute) or a binding slot (alias-scoped
// equivalence attribute).
type groupKeyRef struct {
	fromSlot bool
	idx      int
}

// Plan is the compiled form of a query: the COGRA configuration the
// static query analyzer hands to the runtime executor (Figure 3).
type Plan struct {
	// Query is the source query.
	Query *query.Query
	// FSA is the automaton representation of the pattern (§3.1).
	FSA *pattern.FSA
	// Granularity is the selected aggregation granularity (§3.3).
	Granularity Granularity
	// Specs is the compiled RETURN clause.
	Specs agg.Specs
	// Where holds the classified predicates.
	Where *predicate.Set
	// EventGrained is Te of Theorem 5.1 (empty unless MixedGrained).
	EventGrained map[string]bool
	// StreamKeys are the bare attributes that partition the stream
	// (§7): bare GROUP-BY attributes plus global equivalence
	// attributes, deduplicated in declaration order.
	StreamKeys []string
	// Slots are the alias-scoped equivalence predicates; each is one
	// binding slot inside the aggregators.
	Slots []predicate.Equivalence
	// groupRefs maps each GROUP-BY item to StreamKeys/Slots.
	groupRefs []groupKeyRef
	// negTypes maps an event type to the negation constraints it
	// fires (the §8 restriction: negated sub-patterns are single
	// event types).
	negTypes map[string][]negRef
	// negGuard maps a (predecessor alias, successor alias) pair to the
	// negation constraint guarding it, if any.
	negGuard map[[2]string]int
	// fingerprint is the sharing-equivalence key (sharedagg.go):
	// everything except the RETURN clause, rendered canonically. Plans
	// with equal fingerprints may be served by one shared engine.
	fingerprint string

	// Compiled interning state (symbols.go), built once by compile():
	// dense ids for aliases and — in the shared catalog — event types
	// and referenced attributes, per-event-type dispatch tables, and
	// the attribute-id projections of the specs, partition keys and
	// adjacent-predicate left operands. typePlans is indexed by catalog
	// type id (nil entries: types of other plans in the catalog).
	cat              *Catalog
	aliasNames       []string
	aliasIDs         map[string]int32
	typePlans        []*typePlan
	typeIDs          []int32 // catalog ids of the types this plan matches
	attrSyms         []symRef
	typeSyms         []symRef
	specIDs          []int32
	streamKeyIDs     []int32
	adjLeft          []int32
	endAliasIDs      []int32
	eventGrainedByID []bool
}

// negRef identifies one negation constraint an event type fires,
// together with the alias local predicates are evaluated under.
type negRef struct {
	ci    int
	alias string
}

// NewPlan runs the static query analyzer: pattern analysis (§3.1),
// predicate classification (§3.2) and granularity selection (§3.3).
// The plan is compiled against a private catalog; use NewPlanIn to
// share ids with other plans for multi-query execution.
func NewPlan(q *query.Query) (*Plan, error) {
	return NewPlanIn(NewCatalog(), q)
}

// NewPlanIn is NewPlan compiling against a shared catalog: every plan
// compiled in one catalog agrees on type/attribute ids, so one
// resolver pass per event serves all of them (internal/runtime).
// Compilation extends the catalog copy-on-write and publishes a new
// interning epoch on success, so it may run concurrently with
// resolvers and engines processing events over the same catalog —
// the mechanism behind mid-stream Session.Subscribe. Concurrent
// compiles serialise on the catalog's internal lock.
func NewPlanIn(cat *Catalog, q *query.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	fsa, err := pattern.Compile(q.Pattern)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Query:       q,
		cat:         cat,
		FSA:         fsa,
		Granularity: SelectGranularity(q.Semantics, q.Where.HasAdjacent()),
		Specs:       q.Returns,
		Where:       q.Where,
		negTypes:    map[string][]negRef{},
		negGuard:    map[[2]string]int{},
		fingerprint: sharedFingerprint(q),
	}
	p.EventGrained = q.Where.EventGrainedAliases(fsa)
	if p.Granularity != MixedGrained {
		p.EventGrained = map[string]bool{}
	}

	// Stream partition keys: bare GROUP-BY attrs, then global
	// equivalence attrs not already grouped.
	seen := map[string]int{}
	for _, g := range q.GroupBy {
		if g.Alias == "" {
			if _, dup := seen[g.Attr]; !dup {
				seen[g.Attr] = len(p.StreamKeys)
				p.StreamKeys = append(p.StreamKeys, g.Attr)
			}
		}
	}
	for _, e := range q.Where.Equivalences {
		if e.Alias == "" {
			if _, dup := seen[e.Attr]; !dup {
				seen[e.Attr] = len(p.StreamKeys)
				p.StreamKeys = append(p.StreamKeys, e.Attr)
			}
		}
	}
	// Binding slots: alias-scoped equivalences in declaration order.
	slotIdx := map[predicate.Equivalence]int{}
	for _, e := range q.Where.Equivalences {
		if e.Alias != "" {
			if _, dup := slotIdx[e]; !dup {
				slotIdx[e] = len(p.Slots)
				p.Slots = append(p.Slots, e)
			}
		}
	}
	// Pattern granularity maintains a single last-event chain per
	// sub-stream (Algorithm 3); alias-scoped equivalence would need
	// one chain per binding, which Table 4 never requires for the
	// paper's query classes. Reject the combination explicitly.
	if p.Granularity == PatternGrained && len(p.Slots) > 0 {
		return nil, fmt.Errorf("core: alias-scoped equivalence predicates (e.g. [%s.%s]) are not supported under %v semantics; use a global [attr] predicate",
			p.Slots[0].Alias, p.Slots[0].Attr, q.Semantics)
	}
	// Pattern granularity relies on Theorem 6.1 (unique predecessor),
	// which needs a deterministic alias for every incoming event.
	if p.Granularity == PatternGrained {
		for typ, aliases := range fsa.TypeAliases {
			if len(aliases) > 1 {
				return nil, fmt.Errorf("core: event type %q matches multiple pattern types %v; %v semantics needs one pattern type per event type",
					typ, aliases, q.Semantics)
			}
		}
	}
	// Resolve GROUP-BY items.
	for _, g := range q.GroupBy {
		if g.Alias == "" {
			p.groupRefs = append(p.groupRefs, groupKeyRef{idx: seen[g.Attr]})
			continue
		}
		idx, ok := slotIdx[predicate.Equivalence{Alias: g.Alias, Attr: g.Attr}]
		if !ok {
			return nil, fmt.Errorf("core: GROUP-BY %s has no matching equivalence predicate", g)
		}
		p.groupRefs = append(p.groupRefs, groupKeyRef{fromSlot: true, idx: idx})
	}
	// Negated sub-patterns: restricted to single event types (§8).
	for i, nc := range fsa.Negations {
		leaf, ok := nc.Neg.(*pattern.TypeNode)
		if !ok {
			return nil, fmt.Errorf("core: negated sub-pattern %s must be a single event type", nc.Neg)
		}
		p.negTypes[leaf.EventType] = append(p.negTypes[leaf.EventType], negRef{ci: i, alias: leaf.Alias})
		for _, pred := range nc.Pred {
			for _, fol := range nc.Follow {
				pair := [2]string{pred, fol}
				if _, dup := p.negGuard[pair]; !dup {
					p.negGuard[pair] = i
				}
			}
		}
	}
	cat.mu.Lock()
	p.compile()
	cat.publish()
	cat.mu.Unlock()
	return p, nil
}

// MustPlan is NewPlan that panics on error.
func MustPlan(q *query.Query) *Plan {
	p, err := NewPlan(q)
	if err != nil {
		panic(err)
	}
	return p
}

// Catalog returns the catalog the plan was compiled against.
func (p *Plan) Catalog() *Catalog { return p.cat }

// SubscribedTypeIDs returns the catalog ids of every event type the
// plan reacts to: pattern types plus negated types. A multi-query
// runtime routes only these types to the plan's engine.
func (p *Plan) SubscribedTypeIDs() []int32 { return p.typeIDs }

// ReferencedAttrIDs returns the catalog ids of every attribute the
// plan reads anywhere — local and adjacent predicates, binding slots,
// partition keys, group keys and aggregation operands. The multi-query
// runtime unions these per subscribed type so batch resolution
// (Resolver.ResolveRun) fills only slots some hosted plan needs. The
// ids are unique but unordered.
func (p *Plan) ReferencedAttrIDs() []int32 {
	ids := make([]int32, len(p.attrSyms))
	for i, s := range p.attrSyms {
		ids[i] = s.id
	}
	return ids
}

// OrderSensitive reports whether the plan's execution depends on the
// arrival order of equal-timestamp events. Type- and mixed-grained
// execution stages every contribution of the current time stamp and
// commits at the next time advance (the stream-transaction discipline
// of §8), and a predecessor must be STRICTLY earlier (Definition 7),
// so any processing order among equal-time events yields identical
// results — a multi-query runtime may bucket such events by type.
// Pattern granularity is the exception: its single el chain retains
// the last matched event in arrival order (Algorithm 3), so it must
// observe its events exactly as they arrived.
func (p *Plan) OrderSensitive() bool { return p.Granularity == PatternGrained }

// WantsAllEvents reports whether the plan's engine must observe every
// stream event regardless of type: under contiguous semantics any
// unmatched event resets the chain of matched events (Example 7), so
// events of foreign types are semantically relevant. All other
// semantics ignore foreign types entirely (they only advance the
// watermark, which the runtime drives centrally).
func (p *Plan) WantsAllEvents() bool {
	return p.Query.Semantics == query.Cont
}

// typePlanAt returns the dispatch entry for a catalog type id, nil
// when the type is irrelevant to this plan (foreign or unknown).
func (p *Plan) typePlanAt(tid int32) *typePlan {
	if tid < 0 || int(tid) >= len(p.typePlans) {
		return nil
	}
	return p.typePlans[tid]
}

// StreamKeyOf extracts the partition key of an event, or ok=false if
// the event lacks a partition attribute (it then belongs to no
// sub-stream and cannot contribute to or invalidate any trend). The
// baselines share this routing so every approach sees identical
// sub-streams. It is AppendStreamKey materialised as a string.
func (p *Plan) StreamKeyOf(e *event.Event) (string, bool) {
	if len(p.StreamKeys) == 0 {
		return "", true
	}
	buf, ok := p.AppendStreamKey(nil, e)
	if !ok {
		return "", false
	}
	return string(buf), true
}

// AppendStreamKey appends the partition key of e to buf and reports
// whether e carries every partition attribute. This is the canonical
// event-sourced key builder — the NUL-joined SymAttr values (symbolic
// value, or the formatted numeric fallback) of the partition
// attributes — and it does not allocate, so per-event routers can
// hash or look up the key from a reused buffer. The only other
// producer of the key bytes is the resolved-view variant in
// symbols.go, pinned to this format by TestAppendStreamKeyMatches*.
func (p *Plan) AppendStreamKey(buf []byte, e *event.Event) ([]byte, bool) {
	return AppendEventKey(buf, e, p.StreamKeys)
}

// AppendEventKey appends the NUL-joined SymAttr values of attrs to buf
// and reports whether e carries every attribute. It is the shared
// key-building primitive: a plan's partition key is AppendEventKey
// over its StreamKeys, and the multi-query router builds its routing
// key over the partition attributes common to all hosted plans.
func AppendEventKey(buf []byte, e *event.Event, attrs []string) ([]byte, bool) {
	for i, attr := range attrs {
		if i > 0 {
			buf = append(buf, 0)
		}
		if v, ok := e.Sym[attr]; ok {
			buf = append(buf, v...)
			continue
		}
		if v, ok := e.Num[attr]; ok {
			buf = event.AppendNum(buf, v)
			continue
		}
		return buf, false
	}
	return buf, true
}

// GroupOf materialises the GROUP-BY tuple for a result, given the
// partition key parts and the binding.
func (p *Plan) GroupOf(streamKey string, binding []string) []string {
	if len(p.groupRefs) == 0 {
		return nil
	}
	var parts []string
	if len(p.StreamKeys) > 0 {
		parts = strings.Split(streamKey, "\x00")
	}
	out := make([]string, len(p.groupRefs))
	for i, ref := range p.groupRefs {
		if ref.fromSlot {
			out[i] = binding[ref.idx]
		} else {
			out[i] = parts[ref.idx]
		}
	}
	return out
}

// String summarises the plan.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: granularity=%s semantics=%s pattern=%s", p.Granularity, p.Query.Semantics, p.Query.Pattern)
	if len(p.EventGrained) > 0 {
		var te []string
		for a := range p.EventGrained {
			te = append(te, a)
		}
		fmt.Fprintf(&b, " event-grained=%v", te)
	}
	if len(p.StreamKeys) > 0 {
		fmt.Fprintf(&b, " partition-by=%v", p.StreamKeys)
	}
	if len(p.Slots) > 0 {
		var ss []string
		for _, s := range p.Slots {
			ss = append(ss, s.String())
		}
		fmt.Fprintf(&b, " binding-slots=%v", ss)
	}
	return b.String()
}
