package core

import (
	"repro/internal/agg"
)

// Stored-event arenas: mixed granularity retains one storedEntry per
// event of an event-grained (Te) type, and each entry carries two small
// slices — its adjacent-predicate left operands ([]attrVal) and its
// aggregate's auxiliary state ([]agg.Aux). Allocating those
// item-at-a-time is where BenchmarkEngineProcessMixedAdjacent burnt
// ~9K allocs/op: two GC objects per stored event, each individually
// traced and individually freed.
//
// Both slices have a plan-fixed width (len(plan.adjLeft) and
// len(plan.Specs)), so the arena is a bump allocator over slabs of
// fixed-width cells. Slabs grow geometrically from arenaMinEntries to
// arenaMaxEntries cells, so a near-empty window pays one small slab
// while a dense one amortises allocation to ~log₂(n) + n/max slabs.
//
// Reclamation is wholesale and epoch-bucketed by construction: one
// arena pair belongs to one mixedGrained sub-aggregator, which is the
// state of exactly one (window, partition) — when the window closes
// (or eviction sweeps the engine past it) Release drops the stored
// slices and the arena, and the GC frees whole slabs instead of
// tracing thousands of entries. Entries are written once at store time
// and never returned individually, so the arena needs no free list.
const (
	arenaMinEntries = 8
	arenaMaxEntries = 1024
)

// storeArenas bundles the two arenas backing mixed-grained stored
// entries. One pair is owned per Engine and shared by every hosted
// sub-aggregator: slabs fill across the open windows of the engine and
// become collectible once the last window whose entries they carry has
// closed (its sub-aggregator released its stored slices) — the
// epoch-bucketing falls out of windows closing in time order, with at
// most one partially-filled slab pair alive per engine.
type storeArenas struct {
	left attrValArena
	aux  auxArena
}

// attrValArena bump-allocates fixed-width []attrVal cells.
type attrValArena struct {
	slab []attrVal
	off  int
	next int // entry count of the next slab
}

// alloc returns a zeroed n-wide cell with capacity exactly n, so a
// later append can never bleed into the neighbouring cell.
func (a *attrValArena) alloc(n int) []attrVal {
	if n == 0 {
		return nil
	}
	if len(a.slab)-a.off < n {
		if a.next < arenaMinEntries {
			a.next = arenaMinEntries
		}
		a.slab = make([]attrVal, a.next*n)
		a.off = 0
		if a.next < arenaMaxEntries {
			a.next *= 2
		}
	}
	s := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// auxArena bump-allocates fixed-width []agg.Aux cells.
type auxArena struct {
	slab []agg.Aux
	off  int
	next int
}

func (a *auxArena) alloc(n int) []agg.Aux {
	if n == 0 {
		return nil
	}
	if len(a.slab)-a.off < n {
		if a.next < arenaMinEntries {
			a.next = arenaMinEntries
		}
		a.slab = make([]agg.Aux, a.next*n)
		a.off = 0
		if a.next < arenaMaxEntries {
			a.next *= 2
		}
	}
	s := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}
