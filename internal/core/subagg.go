package core

import (
	"sort"

	"repro/internal/agg"
)

// subAggregator is the per-sub-stream execution unit: one instance
// exists per (window, stream partition key). Events arrive in stream
// order as resolved views; Results flushes pending state and reports
// the final aggregates per binding.
type subAggregator interface {
	// Process consumes the next event of the sub-stream, presented as
	// its per-event resolved view (symbols.go).
	Process(rv *resolvedVals)
	// Results returns the aggregate of all finished trends, per
	// binding key, ordered by the decoded slot values. Bindings with
	// zero finished trends are omitted.
	Results() []bindingResult
	// Release returns the aggregator's logical memory to the
	// accountant; the aggregator must not be used afterwards.
	Release()
}

// bindingResult is the final aggregate of one equivalence binding,
// with the binding's slot values already decoded for result assembly.
type bindingResult struct {
	key  bkey
	vals []string
	node agg.Node
}

// sortBindingResults orders results by their decoded slot values,
// matching the lexicographic order the string-keyed representation
// reported (so emit merges groups in the identical order).
func sortBindingResults(out []bindingResult) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].vals, out[j].vals
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// newSubAggregator builds the aggregator the plan's granularity
// selector chose. The engine-owned bindings instance is shared so
// binding keys stay comparable across windows and partitions, the
// engine-owned store arenas so mixed-grained entries bump-allocate
// instead of paying two GC objects per stored event, and the
// engine-owned run memo so type-grained predecessor sums amortize over
// equal-time runs without per-partition scratch.
func newSubAggregator(p *Plan, acct accountant, bnd *bindings, ar *storeArenas, memo *runMemo) subAggregator {
	switch p.Granularity {
	case TypeGrained:
		return newTypeGrained(p, acct, bnd, memo)
	case MixedGrained:
		return newMixedGrained(p, acct, bnd, ar)
	default:
		return newPatternGrained(p, acct)
	}
}

// stagedUpdate is one uncommitted contribution of the current
// time stamp (the stream-transaction discipline of §8).
type stagedUpdate struct {
	alias int32
	key   bkey
	node  agg.Node
}

// stageUpdate appends one staged update and returns its node for
// ExtendInto, reusing the entry (and its Aux storage) left behind by
// a previous flush; shared by the type- and mixed-grained aggregators.
func stageUpdate(staged *[]stagedUpdate, alias int32, key bkey) *agg.Node {
	n := len(*staged)
	if n < cap(*staged) {
		*staged = (*staged)[:n+1]
	} else {
		*staged = append(*staged, stagedUpdate{})
	}
	u := &(*staged)[n]
	u.alias, u.key = alias, key
	return &u.node
}

// accountant is the metrics.Accountant surface the aggregators need.
type accountant interface {
	Add(delta int64)
}

// nopAccountant discards accounting; used when metrics are off.
type nopAccountant struct{}

func (nopAccountant) Add(int64) {}

// negFires records, per negation constraint, the times at which the
// negated type matched. A predecessor event at time t1 must not feed a
// follower event at time t2 when some fire lies strictly between.
// Fire times arrive in non-decreasing order.
type negFires struct {
	times [][]int64
}

func newNegFires(n int) *negFires {
	if n == 0 {
		return nil
	}
	return &negFires{times: make([][]int64, n)}
}

// fire records a match of constraint ci at time t and reports whether
// a new entry was stored (duplicate fires at one time are equivalent).
func (n *negFires) fire(ci int, t int64) bool {
	ts := n.times[ci]
	if len(ts) > 0 && ts[len(ts)-1] == t {
		return false
	}
	n.times[ci] = append(ts, t)
	return true
}

// blockedBetween reports whether constraint ci fired strictly within
// (t1, t2).
func (n *negFires) blockedBetween(ci int, t1, t2 int64) bool {
	ts := n.times[ci]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] > t1 })
	return i < len(ts) && ts[i] < t2
}

// footprint returns the logical bytes of the recorded fire times.
func (n *negFires) footprint() int64 {
	if n == nil {
		return 0
	}
	var total int64
	for _, ts := range n.times {
		total += 8 * int64(len(ts))
	}
	return total
}
