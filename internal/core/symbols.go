package core

// Symbol interning and plan compilation: the static query analyzer
// interns every event-type, alias and attribute name referenced by a
// query into dense integer ids, and compiles the WHERE clause and the
// FSA transition metadata into per-event-type dispatch tables. At run
// time each event is resolved ONCE into a slot array of its referenced
// attribute values (the "resolved view"); every predicate evaluation,
// binding-slot read and partition-key extraction afterwards is array
// indexing — no map[string] probes and no string concatenation on the
// per-event hot path. The interning is an internal representation
// change only: results are identical to the string-keyed evaluator.

import (
	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/predicate"
)

// Presence bits of one resolved attribute slot.
const (
	hasNum    uint8 = 1 << iota // numeric attribute present on the event
	hasSymRaw                   // symbolic attribute present on the event
	hasSymVal                   // sym[] holds a value (raw, or numeric fallback)
)

// resolvedVals is the per-event resolved view: the values of every
// plan-referenced attribute, indexed by interned attribute id, plus
// the compiled dispatch entry for the event's type. One instance per
// engine is reused across events; aggregators copy out what they
// retain (stored-event left operands, binding-slot values).
type resolvedVals struct {
	ev *event.Event
	tp *typePlan // compiled entry for ev.Type; nil for irrelevant types

	num []float64
	sym []string
	has []uint8

	specIDs []int32 // shared from the plan: spec index -> attr id (-1 none)
}

// SpecNum implements agg.SpecSource: the numeric attribute of spec i.
func (rv *resolvedVals) SpecNum(i int) (float64, bool) {
	id := rv.specIDs[i]
	if id < 0 {
		return 0, false
	}
	return rv.num[id], rv.has[id]&hasNum != 0
}

// attrVal is one retained attribute value of a stored event: the left
// operand of adjacent-predicate evaluation, copied out of the resolved
// view when an event-grained aggregator stores an event.
type attrVal struct {
	num float64
	sym string
	has uint8
}

// anyAttr reconstructs the Event.Attr (numeric-first) untyped value,
// for user-supplied adjacent predicate functions.
func (v *attrVal) anyAttr() any {
	if v.has&hasNum != 0 {
		return v.num
	}
	if v.has&hasSymRaw != 0 {
		return v.sym
	}
	return nil
}

// anyAttrOf is anyAttr over a resolved view slot.
func anyAttrOf(rv *resolvedVals, id int32) any {
	h := rv.has[id]
	if h&hasNum != 0 {
		return rv.num[id]
	}
	if h&hasSymRaw != 0 {
		return rv.sym[id]
	}
	return nil
}

// Value-kind of a compiled local predicate constant.
const (
	localNum uint8 = iota
	localStr
	localGeneric
)

// localCheck is one compiled local predicate applying to an alias:
// resolved-attr ◦ constant.
type localCheck struct {
	attr    int32
	op      predicate.Op
	kind    uint8
	num     float64
	str     string
	generic any // only for exotic constant types (kind == localGeneric)
}

// eval mirrors predicate.Local.Eval over the resolved view: the
// attribute is read numeric-first (Event.Attr), a missing attribute
// fails, and kind-mismatched operands compare unequal.
func (c *localCheck) eval(rv *resolvedVals) bool {
	h := rv.has[c.attr]
	if h&hasNum != 0 {
		switch c.kind {
		case localNum:
			return predicate.CompareFloats(rv.num[c.attr], c.num, c.op)
		case localStr:
			return c.op == predicate.Ne
		default:
			return predicate.Compare(rv.num[c.attr], c.generic, c.op)
		}
	}
	if h&hasSymRaw != 0 {
		switch c.kind {
		case localStr:
			return predicate.CompareStrings(rv.sym[c.attr], c.str, c.op)
		case localNum:
			return c.op == predicate.Ne
		default:
			return predicate.Compare(rv.sym[c.attr], c.generic, c.op)
		}
	}
	return false
}

// evalLocals reports whether every compiled local check passes.
func evalLocals(checks []localCheck, rv *resolvedVals) bool {
	for i := range checks {
		if !checks[i].eval(rv) {
			return false
		}
	}
	return true
}

// adjCheck is one compiled adjacent predicate guarding a transition
// (predecessor alias -> alias): stored-left ◦ incoming-right.
type adjCheck struct {
	leftPos   int   // index into the stored event's attrVal slice
	leftAttr  int32 // attr id of the left operand (for resolved lefts)
	rightAttr int32
	op        predicate.Op
	numFn     func(prev, next float64) bool
	fn        func(prev, next any) bool
}

// eval mirrors predicate.Adjacent.Eval: both operands read
// numeric-first, missing operands fail, mixed kinds compare unequal.
func (c *adjCheck) eval(left []attrVal, rv *resolvedVals) bool {
	lv := &left[c.leftPos]
	if c.numFn != nil {
		// Typed fast path: numeric operands reach the user predicate
		// without boxing into `any`, keeping the stored-event scan
		// allocation-free. Non-numeric operands fail, mirroring NumFn's
		// contract in predicate.Adjacent.Eval.
		if lv.has&hasNum == 0 || rv.has[c.rightAttr]&hasNum == 0 {
			return false
		}
		return c.numFn(lv.num, rv.num[c.rightAttr])
	}
	if c.fn != nil {
		return c.fn(lv.anyAttr(), anyAttrOf(rv, c.rightAttr))
	}
	rh := rv.has[c.rightAttr]
	if lv.has&(hasNum|hasSymRaw) == 0 || rh&(hasNum|hasSymRaw) == 0 {
		return false
	}
	if lv.has&hasNum != 0 {
		if rh&hasNum == 0 {
			return c.op == predicate.Ne
		}
		return predicate.CompareFloats(lv.num, rv.num[c.rightAttr], c.op)
	}
	if rh&hasNum != 0 {
		return c.op == predicate.Ne
	}
	return predicate.CompareStrings(lv.sym, rv.sym[c.rightAttr], c.op)
}

// evalAdjacent reports whether every adjacent check guarding a
// transition accepts the (stored left, incoming right) pair.
func evalAdjacent(checks []adjCheck, left []attrVal, rv *resolvedVals) bool {
	for i := range checks {
		if !checks[i].eval(left, rv) {
			return false
		}
	}
	return true
}

// slotRef is one binding-slot assignment demanded of an alias: the
// event's resolved value of attr binds slot.
type slotRef struct {
	slot int
	attr int32
}

// predEdge is one compiled FSA transition into an alias.
type predEdge struct {
	id           int32 // predecessor alias id
	guard        int32 // negation constraint index + 1; 0 = unguarded
	eventGrained bool  // predecessor keeps stored events (mixed Te)
	adj          []adjCheck
}

// aliasPlan is the compiled per-alias dispatch entry: everything the
// aggregators need to process an event matched under this alias, with
// all name comparisons hoisted to compile time.
type aliasPlan struct {
	id           int32
	name         string
	isStart      bool
	isEnd        bool
	eventGrained bool
	locals       []localCheck
	preds        []predEdge
	predIdx      []int32 // predIdx[aliasID]: index into preds, -1 if not a predecessor
	slots        []slotRef
	specMatch    []bool // specMatch[i]: does spec i target this alias
}

// negCheck is one negation constraint fired by an event type.
type negCheck struct {
	ci     int
	locals []localCheck
}

// typePlan is the compiled dispatch entry of one stream event type.
type typePlan struct {
	aliases []aliasPlan
	negs    []negCheck
}

// compile interns symbols into the plan's catalog and builds the
// dispatch tables. Called once at the end of NewPlanIn, after all
// string-level analysis.
func (p *Plan) compile() {
	p.aliasIDs = make(map[string]int32, len(p.FSA.Aliases))
	p.aliasNames = append([]string(nil), p.FSA.Aliases...)
	for i, a := range p.aliasNames {
		p.aliasIDs[a] = int32(i)
	}

	// Attributes read symbolically (binding slots, partition keys) need
	// the SymAttr numeric fallback materialised at resolve time.
	p.streamKeyIDs = make([]int32, len(p.StreamKeys))
	for i, a := range p.StreamKeys {
		p.streamKeyIDs[i] = p.internAttr(a, true)
	}
	for _, s := range p.Slots {
		p.internAttr(s.Attr, true)
	}

	p.specIDs = make([]int32, len(p.Specs))
	for i, s := range p.Specs {
		p.specIDs[i] = -1
		if s.Attr != "" {
			p.specIDs[i] = p.internAttr(s.Attr, false)
		}
	}

	// Left operands of adjacent predicates are copied into stored
	// events; assign each distinct left attribute a dense position.
	leftPos := map[int32]int{}
	for _, a := range p.Where.Adjacents {
		id := p.internAttr(a.LeftAttr, false)
		p.internAttr(a.RightAttr, false)
		if _, ok := leftPos[id]; !ok {
			leftPos[id] = len(p.adjLeft)
			p.adjLeft = append(p.adjLeft, id)
		}
	}
	for _, l := range p.Where.Locals {
		p.internAttr(l.Attr, false)
	}

	p.endAliasIDs = make([]int32, 0, len(p.FSA.End))
	for _, a := range p.FSA.EndAliases() {
		p.endAliasIDs = append(p.endAliasIDs, p.aliasIDs[a])
	}
	p.eventGrainedByID = make([]bool, len(p.aliasNames))
	for a := range p.EventGrained {
		if id, ok := p.aliasIDs[a]; ok {
			p.eventGrainedByID[id] = true
		}
	}

	// Per-type dispatch tables, indexed by catalog type id: matching
	// aliases plus fired negations. Types of other plans in a shared
	// catalog keep nil entries (and later types fall off the end), so
	// dispatch is a bounds-checked array read.
	typePlanOf := func(typ string) *typePlan {
		tid := p.cat.internType(typ)
		for int(tid) >= len(p.typePlans) {
			p.typePlans = append(p.typePlans, nil)
		}
		tp := p.typePlans[tid]
		if tp == nil {
			tp = &typePlan{}
			p.typePlans[tid] = tp
			p.typeIDs = append(p.typeIDs, tid)
			p.typeSyms = append(p.typeSyms, symRef{id: tid, name: typ})
		}
		return tp
	}
	for typ, aliases := range p.FSA.TypeAliases {
		tp := typePlanOf(typ)
		for _, alias := range aliases {
			tp.aliases = append(tp.aliases, p.compileAlias(alias, leftPos))
		}
	}
	for typ, refs := range p.negTypes {
		tp := typePlanOf(typ)
		for _, ref := range refs {
			tp.negs = append(tp.negs, negCheck{ci: ref.ci, locals: p.compileLocals(ref.alias)})
		}
	}
}

// compileAlias builds the dispatch entry of one alias.
func (p *Plan) compileAlias(alias string, leftPos map[int32]int) aliasPlan {
	id := p.aliasIDs[alias]
	ap := aliasPlan{
		id:           id,
		name:         alias,
		isStart:      p.FSA.IsStart(alias),
		isEnd:        p.FSA.IsEnd(alias),
		eventGrained: p.EventGrained[alias],
		locals:       p.compileLocals(alias),
		predIdx:      make([]int32, len(p.aliasNames)),
	}
	for i := range ap.predIdx {
		ap.predIdx[i] = -1
	}
	for _, pred := range p.FSA.Pred[alias] {
		pid := p.aliasIDs[pred]
		ap.predIdx[pid] = int32(len(ap.preds))
		edge := predEdge{id: pid, eventGrained: p.EventGrained[pred]}
		if ci, guarded := p.negGuard[[2]string{pred, alias}]; guarded {
			edge.guard = int32(ci) + 1
		}
		for _, a := range p.Where.Adjacents {
			if !a.Guards(pred, alias) {
				continue
			}
			la := p.cat.attrIDs[a.LeftAttr]
			edge.adj = append(edge.adj, adjCheck{
				leftPos:   leftPos[la],
				leftAttr:  la,
				rightAttr: p.cat.attrIDs[a.RightAttr],
				op:        a.Op,
				numFn:     a.NumFn,
				fn:        a.Fn,
			})
		}
		ap.preds = append(ap.preds, edge)
	}
	for i, s := range p.Slots {
		if s.Alias == alias {
			ap.slots = append(ap.slots, slotRef{slot: i, attr: p.cat.attrIDs[s.Attr]})
		}
	}
	ap.specMatch = make([]bool, len(p.Specs))
	for i, s := range p.Specs {
		ap.specMatch[i] = s.Alias == alias
	}
	return ap
}

// compileLocals compiles the local predicates constraining an alias
// (its own plus the global ones); predicates scoped to other aliases
// pass vacuously and are simply not compiled in.
func (p *Plan) compileLocals(alias string) []localCheck {
	var out []localCheck
	for _, l := range p.Where.Locals {
		if l.Alias != "" && l.Alias != alias {
			continue
		}
		c := localCheck{attr: p.internAttr(l.Attr, false), op: l.Op}
		switch v := l.Value.(type) {
		case float64:
			c.kind, c.num = localNum, v
		case string:
			c.kind, c.str = localStr, v
		default:
			c.kind, c.generic = localGeneric, l.Value
		}
		out = append(out, c)
	}
	return out
}

// symRef records one catalog symbol a plan references: the id the
// plan's compiled tables are baked against, the name it stood for at
// compile time, and (for attributes) whether the plan relies on the
// SymAttr fallback being materialised. The catalog's hosting lifecycle
// (Catalog.Retain/Release) refcounts and re-validates ids through
// these records, so compaction can retire ids no hosted plan
// references and recycle them safely.
type symRef struct {
	id   int32
	name string
	sym  bool
}

// internAttr interns an attribute name into the plan's catalog and
// records the reference for the hosting lifecycle. Plans reference few
// attributes, so dedup is a linear scan.
func (p *Plan) internAttr(name string, symNeeded bool) int32 {
	id := p.cat.internAttr(name, symNeeded)
	for i := range p.attrSyms {
		if p.attrSyms[i].id == id {
			p.attrSyms[i].sym = p.attrSyms[i].sym || symNeeded
			return id
		}
	}
	p.attrSyms = append(p.attrSyms, symRef{id: id, name: name, sym: symNeeded})
	return id
}

// resolveInto computes the resolved view of ev: one probe pass over
// the catalog's interned attributes (catalog.go), after which all
// predicate, binding and partition-key reads are array indexing. The
// type dispatch entry and spec projection are the plan's own. The
// catalog view is loaded once, so the tid and the value arrays agree
// on one epoch.
func (p *Plan) resolveInto(rv *resolvedVals, ev *event.Event) {
	v := p.cat.view.Load()
	v.resolveInto(rv, ev)
	tid, ok := v.typeIDs[ev.Type]
	if !ok {
		tid = -1
	}
	rv.tp = p.typePlanAt(tid)
	rv.specIDs = p.specIDs
}

// appendStreamKey appends the partition key of a resolved event:
// the NUL-joined StreamKeys values, identical to StreamKeyOf.
func (p *Plan) appendStreamKey(buf []byte, rv *resolvedVals) ([]byte, bool) {
	for i, id := range p.streamKeyIDs {
		if rv.has[id]&hasSymVal == 0 {
			return buf, false
		}
		if i > 0 {
			buf = append(buf, 0)
		}
		buf = append(buf, rv.sym[id]...)
	}
	return buf, true
}

// copyLeftVals copies the adjacent-predicate left operands out of a
// resolved view, for retention alongside a stored event. Returns nil
// when the plan has no adjacent predicates.
func (p *Plan) copyLeftVals(dst []attrVal, rv *resolvedVals) []attrVal {
	if len(p.adjLeft) == 0 {
		return nil
	}
	if cap(dst) >= len(p.adjLeft) {
		dst = dst[:len(p.adjLeft)]
	} else {
		dst = make([]attrVal, len(p.adjLeft))
	}
	for i, id := range p.adjLeft {
		dst[i] = attrVal{num: rv.num[id], sym: rv.sym[id], has: rv.has[id]}
	}
	return dst
}

// contribTable accumulates the per-binding contribution of one event:
// a scratch map from binding key to a reused aggregate node. Entries
// are deleted on reset, so steady-state accumulation is
// allocation-free.
type contribTable struct {
	specs agg.Specs
	idx   map[bkey]int
	keys  []bkey
	nodes []agg.Node
}

func newContribTable(specs agg.Specs) contribTable {
	return contribTable{specs: specs, idx: map[bkey]int{}}
}

// slot returns the accumulator node of key, creating it zeroed.
func (c *contribTable) slot(k bkey) *agg.Node {
	i, ok := c.idx[k]
	if !ok {
		i = len(c.keys)
		c.keys = append(c.keys, k)
		if i < len(c.nodes) {
			c.specs.ZeroInto(&c.nodes[i])
		} else {
			c.nodes = append(c.nodes, c.specs.Zero())
		}
		c.idx[k] = i
	}
	return &c.nodes[i]
}

// add merges node into the accumulator of key.
func (c *contribTable) add(k bkey, node *agg.Node) {
	c.specs.Merge(c.slot(k), *node)
}

// reset clears the table for the next event, keeping node storage.
func (c *contribTable) reset() {
	for _, k := range c.keys {
		delete(c.idx, k)
	}
	c.keys = c.keys[:0]
}
