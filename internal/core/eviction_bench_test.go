package core

// Worst-case-pause benchmark for the epoch-bucketed intern eviction
// sweep. The hazard it pins: a long-lived engine whose value
// population turned over far in the past must not pay for that history
// on every later epoch boundary. An O(table) sweep would walk the
// whole (mostly dead) slot array each epoch; the bucketed sweep walks
// only the candidate ids stamped in the epochs crossing the horizon,
// so the per-epoch pause tracks recent intern activity. The benchmark
// runs the same steady state over two dead-history sizes 100× apart —
// flat ns/op across the sub-benchmarks is the invariant.

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/predicate"
)

func BenchmarkBindingExpireSweep(b *testing.B) {
	for _, history := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			bnd := newBindings([]predicate.Equivalence{{Alias: "A", Attr: "x"}}, nopAccountant{}, true)
			bnd.expire(0) // adopt epoch 0 as the base
			buf := make([]byte, 0, 16)
			for i := 0; i < history; i++ {
				buf = strconv.AppendInt(buf[:0], int64(i), 10)
				bnd.internVal(string(buf))
			}
			// One epoch-crossing sweep reclaims the whole burst; this
			// one-time O(burst) pause is inherent (the ids must be freed)
			// and stays outside the measured loop.
			bnd.expire(1)
			bnd.expire(2)
			if bnd.footprint() > 64 {
				b.Fatalf("history not reclaimed before measurement: %dB live", bnd.footprint())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Steady state: one hot value per epoch over a table whose
				// population died long ago.
				bnd.internVal("hot")
				bnd.expire(int64(3 + i))
			}
		})
	}
}
